module tspusim

go 1.22
