# Tier-1 verification plus the race detector: the fleet orchestrator is the
# repo's first concurrent code path, so -race is load-bearing, not optional.

GO ?= go

.PHONY: all check vet build test race bench fleet-smoke

all: check

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# A fast end-to-end determinism check: the aggregate report must be
# byte-identical for any -workers value.
fleet-smoke:
	$(GO) build -o /tmp/tspu-lab ./cmd/tspu-lab
	/tmp/tspu-lab -exp table2,fig12 -seeds 3 -workers 1 -endpoints 200 -ases 12 -echo 50 -tranco 200 -registry 200 > /tmp/fleet-w1.txt
	/tmp/tspu-lab -exp table2,fig12 -seeds 3 -workers 8 -endpoints 200 -ases 12 -echo 50 -tranco 200 -registry 200 > /tmp/fleet-w8.txt
	diff /tmp/fleet-w1.txt /tmp/fleet-w8.txt && echo "fleet deterministic"
