# Tier-1 verification plus the race detector and the determinism linter: the
# fleet orchestrator is the repo's first concurrent code path, so -race is
# load-bearing, and every experiment's byte-reproducibility claim rests on
# tspu-vet holding the line (see internal/lint).

GO ?= go

.PHONY: all check vet lint vet-unitchecker vet-hotpath vet-contracts pooldebug escapes escapes-update build test race race-focus race-lanes conformance cover bench bench-all bench-update bench-throughput bench-throughput-update fleet-smoke fuzz-smoke crosscensor armsrace

# Benchmarks gated by the regression harness (hot-path device benches, fleet
# orchestration, and the ablations). BENCH_COUNT samples each; perfstat takes
# min ns/op and max allocs across samples.
BENCH_PATTERN = ^(BenchmarkDevice_|BenchmarkFleet_MultiSeedTable1$$|BenchmarkAblation_SNIMatch$$)
BENCH_COUNT ?= 3
BENCH_TIME ?= 0.2s

# Engine throughput benchmarks gated against BENCH_engine.json. Only the
# Workers:1 variants are gated — they are deterministic and zero-alloc on any
# machine; BenchmarkEngine_WorkerFanout's parallel speedup is a property of
# the host's core count and stays out of any committed baseline.
ENGINE_BENCH_PATTERN = ^(BenchmarkEngine_Passthrough$$|BenchmarkEngine_TLSMix$$|BenchmarkEngine_Chain2$$)

all: check

check: vet lint vet-unitchecker vet-contracts escapes build test conformance race race-lanes crosscensor armsrace

vet:
	$(GO) vet ./...

# tspu-vet enforces the determinism contract (no wall clock, no ambient
# randomness, no map-order-dependent output), the hot-path contract (no
# allocating constructs reachable from a //tspuvet:hotpath root, sound sync
# in the worker pool), and the state-machine contract (switches over
# //tspuvet:closedenum types stay exhaustive). The analysis is whole-program
# by default: packages are checked in dependency order with facts (purity
# taint, packet retention, lane entry points, enum membership) threaded
# across package boundaries. Exceptions need a reasoned //tspuvet:allow
# directive, and unused directives fail the build.
lint:
	$(GO) build -o /tmp/tspu-vet ./cmd/tspu-vet
	/tmp/tspu-vet ./...

# vet-unitchecker runs the identical analyzer suite through the go vet
# -vettool protocol: the go command schedules one unit per package (test
# files included) and the facts travel between units as .vetx files instead
# of in memory. Keeping this lane green proves the two fact transports stay
# equivalent.
vet-unitchecker:
	$(GO) build -o /tmp/tspu-vet ./cmd/tspu-vet
	$(GO) vet -vettool=/tmp/tspu-vet ./...

# vet-hotpath runs only the hot-path allocation/purity analyzer — the fast
# inner loop while working on per-packet code.
vet-hotpath:
	$(GO) build -o /tmp/tspu-vet ./cmd/tspu-vet
	/tmp/tspu-vet -walltime=false -globalrand=false -maporder=false -synccheck=false ./...

# vet-contracts runs only the ownership and lane-isolation analyzers —
# retaincheck, lanecheck, poolcheck (plus allowdirective, so stale or
# malformed suppressions still fail) — the focused inner loop while
# annotating retention or lane contracts.
vet-contracts:
	$(GO) build -o /tmp/tspu-vet ./cmd/tspu-vet
	/tmp/tspu-vet -walltime=false -globalrand=false -maporder=false -hotpath=false -synccheck=false ./...

# pooldebug runs the tspu and sim suites with released pooled records
# poisoned: use-after-release and double release panic instead of silently
# reading reused memory. The normal build compiles the hooks to no-ops.
pooldebug:
	$(GO) test -tags=pooldebug -count=1 ./internal/sim ./internal/tspu

# escapes is the compiler-backed half of the hot-path contract: diff the
# escape-analysis diagnostics of the annotated packages against the
# committed ESCAPES_baseline.json. Any new heap escape fails;
# escapes-update records a reviewed change (commit the diff).
escapes:
	$(GO) build -o /tmp/tspu-vet ./cmd/tspu-vet
	/tmp/tspu-vet -escapes

escapes-update:
	$(GO) build -o /tmp/tspu-vet ./cmd/tspu-vet
	/tmp/tspu-vet -escapes -update

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-focus is the synccheck cross-check: the two packages with real
# concurrency (the fleet worker pool and the conformance suite that drives
# it) under the race detector with live (uncached) runs.
race-focus:
	$(GO) test -race -count=1 ./internal/fleet/... ./internal/conformance/...

# race-lanes is the multi-core cross-check of the lanecheck analyzer: the
# engine worker fan-out (Workers forced past 1) and the sharded device
# driven one goroutine per lane, under the race detector. A cross-lane
# touch the static analysis missed shows up here as a data race.
race-lanes:
	$(GO) test -race -count=1 -run 'Engine|Shard' ./internal/engine ./internal/tspu

# Model-based conformance: 1,000 seeded scenarios replayed through the
# device and the paper-derived oracle (zero divergences required), golden
# trace replays, shrunk-regression replays, and timeout fault re-injection.
# -count=1 defeats the test cache so the differential run is always live.
conformance:
	$(GO) test -count=1 ./internal/conformance

# Coverage gate for the packages that encode the paper's behavioral claims.
# Baselines are the growth seed's numbers (tspu 89.3%, measure 91.5%) less
# half a point of slack, because statement counting jitters a few tenths
# between runs; a drop below the gate means a tested behavior was removed.
cover:
	$(GO) test -count=1 -coverprofile=/tmp/cover-tspu.out ./internal/tspu
	$(GO) test -count=1 -coverprofile=/tmp/cover-measure.out ./internal/measure
	$(GO) tool cover -func=/tmp/cover-tspu.out | awk '/^total:/ { sub(/%/,"",$$3); if ($$3+0 < 88.8) { printf "internal/tspu coverage %s%% fell below the 88.8%% gate (seed 89.3%%)\n", $$3; exit 1 }; printf "internal/tspu coverage %s%% (gate 88.8%%, seed 89.3%%)\n", $$3 }'
	$(GO) tool cover -func=/tmp/cover-measure.out | awk '/^total:/ { sub(/%/,"",$$3); if ($$3+0 < 91.0) { printf "internal/measure coverage %s%% fell below the 91.0%% gate (seed 91.5%%)\n", $$3; exit 1 }; printf "internal/measure coverage %s%% (gate 91.0%%, seed 91.5%%)\n", $$3 }'

# bench is the regression harness: run the gated benchmarks with -benchmem,
# parse and compare against the committed baseline via tspu-bench. Fails on
# >25% ns/op growth or ANY allocs/op or B/op increase. bench-update refreshes
# the baseline after an intentional perf change (commit the diff).
bench:
	$(GO) build -o /tmp/tspu-bench ./cmd/tspu-bench
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) . | tee /tmp/bench-out.txt
	/tmp/tspu-bench -in /tmp/bench-out.txt -baseline BENCH_device.json -threshold 0.25

bench-update:
	$(GO) build -o /tmp/tspu-bench ./cmd/tspu-bench
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) . | tee /tmp/bench-out.txt
	/tmp/tspu-bench -in /tmp/bench-out.txt -baseline BENCH_device.json -update -note "make bench-update; compare with threshold 0.25"

# bench-throughput is the engine's packets/sec regression gate: the batch
# pipeline must sustain its committed aggregate pps (max across samples,
# >25% drop fails) at exactly 0 allocs/op per batch.
bench-throughput:
	$(GO) build -o /tmp/tspu-bench ./cmd/tspu-bench
	$(GO) test -run '^$$' -bench '$(ENGINE_BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) ./internal/engine | tee /tmp/bench-engine.txt
	/tmp/tspu-bench -in /tmp/bench-engine.txt -baseline BENCH_engine.json -threshold 0.25

bench-throughput-update:
	$(GO) build -o /tmp/tspu-bench ./cmd/tspu-bench
	$(GO) test -run '^$$' -bench '$(ENGINE_BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) -benchtime $(BENCH_TIME) ./internal/engine | tee /tmp/bench-engine.txt
	/tmp/tspu-bench -in /tmp/bench-engine.txt -baseline BENCH_engine.json -update -note "make bench-throughput-update; compare with threshold 0.25"

# bench-all runs the full unguarded suite (every table/figure regeneration
# bench) for manual inspection.
bench-all:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# A fast end-to-end determinism check: the aggregate report must be
# byte-identical for any -workers value, and — now that per-experiment
# timing lives on stderr instead of inside the artifact — the sequential
# path must be byte-identical across two independent runs too.
fleet-smoke:
	$(GO) build -o /tmp/tspu-lab ./cmd/tspu-lab
	/tmp/tspu-lab -exp table2,fig12 -seeds 3 -workers 1 -endpoints 200 -ases 12 -echo 50 -tranco 200 -registry 200 > /tmp/fleet-w1.txt
	/tmp/tspu-lab -exp table2,fig12 -seeds 3 -workers 8 -endpoints 200 -ases 12 -echo 50 -tranco 200 -registry 200 > /tmp/fleet-w8.txt
	diff /tmp/fleet-w1.txt /tmp/fleet-w8.txt && echo "fleet deterministic"
	/tmp/tspu-lab -exp table2,fig12 -endpoints 200 -ases 12 -echo 50 -tranco 200 -registry 200 2>/dev/null > /tmp/seq-a.txt
	/tmp/tspu-lab -exp table2,fig12 -endpoints 200 -ases 12 -echo 50 -tranco 200 -registry 200 2>/dev/null > /tmp/seq-b.txt
	diff /tmp/seq-a.txt /tmp/seq-b.txt && echo "sequential output byte-identical"

# crosscensor is the multi-censor comparative smoke: run the identical probe
# battery against every censor model (TSPU, pre-2019 ISP DPI, Turkmenistan,
# three Indian ISPs) and require the fingerprint matrix to be byte-identical
# across worker counts, match the committed golden, and keep every censor
# pair distinguishable (>= 3 pinned differing cells per pair).
crosscensor:
	$(GO) build -o /tmp/tspu-lab ./cmd/tspu-lab
	/tmp/tspu-lab -exp crosscensor -seeds 2 -workers 1 -endpoints 20 -ases 2 -echo 5 -tranco 50 -registry 50 > /tmp/crosscensor-w1.txt
	/tmp/tspu-lab -exp crosscensor -seeds 2 -workers 4 -endpoints 20 -ases 2 -echo 5 -tranco 50 -registry 50 > /tmp/crosscensor-w4.txt
	diff /tmp/crosscensor-w1.txt /tmp/crosscensor-w4.txt && echo "crosscensor matrix worker-independent"
	$(GO) test -count=1 -run 'TestCrossCensor' . ./internal/measure

# armsrace is the arms-race conformance smoke: the evasion-search-vs-
# counter-evolving-censor ledger must be byte-identical across worker counts
# through the experiment surface, match the committed golden, and every
# golden trace under testdata/evasions/ must replay byte-identically from
# nothing but its own header.
armsrace:
	$(GO) build -o /tmp/tspu-lab ./cmd/tspu-lab
	/tmp/tspu-lab -exp armsrace -seeds 2 -workers 1 -endpoints 20 -ases 2 -echo 5 -tranco 50 -registry 50 > /tmp/armsrace-w1.txt
	/tmp/tspu-lab -exp armsrace -seeds 2 -workers 4 -endpoints 20 -ases 2 -echo 5 -tranco 50 -registry 50 > /tmp/armsrace-w4.txt
	diff /tmp/armsrace-w1.txt /tmp/armsrace-w4.txt && echo "armsrace ledger worker-independent"
	$(GO) test -count=1 -run 'TestArmsRace|TestEvasionCorpus' .
	$(GO) test -count=1 ./internal/armsrace

# 30 seconds of native fuzzing over the wire parsers that face attacker-
# controlled bytes (IP/TCP, ClientHello, HTTP response). FuzzGenome guards
# the evasion-corpus serialization contract (Decode/String round-trip).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime 10s ./internal/packet
	$(GO) test -run '^$$' -fuzz '^FuzzParseClientHello$$' -fuzztime 10s ./internal/tlsx
	$(GO) test -run '^$$' -fuzz '^FuzzParseResponse$$' -fuzztime 10s ./internal/httpx
	$(GO) test -run '^$$' -fuzz '^FuzzGenome$$' -fuzztime 10s ./internal/evolve
