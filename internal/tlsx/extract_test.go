package tlsx

import (
	"bytes"
	"testing"
)

// checkExtractAgrees asserts the ExtractSNI/ParseClientHello contract on one
// input: found iff the reference parse succeeds with a non-empty name, and
// the bytes match.
func checkExtractAgrees(t *testing.T, b []byte) {
	t.Helper()
	sni, found := ExtractSNI(b)
	info, err := ParseClientHello(b)
	refFound := err == nil && info.ServerName != ""
	if found != refFound {
		t.Fatalf("ExtractSNI found=%v, reference found=%v (err=%v) on %x", found, refFound, err, b)
	}
	if found && string(sni) != info.ServerName {
		t.Fatalf("ExtractSNI = %q, reference = %q", sni, info.ServerName)
	}
}

func TestExtractSNIEquivalence(t *testing.T) {
	specs := map[string]*ClientHelloSpec{
		"basic":        {ServerName: "twitter.com"},
		"alpn":         {ServerName: "rutracker.org", ALPN: []string{"h2", "http/1.1"}},
		"padded":       {ServerName: "facebook.com", PaddingLen: 200},
		"session":      {ServerName: "x.org", SessionID: bytes.Repeat([]byte{7}, 32)},
		"ech":          {ECH: true},
		"ech-outer":    {ServerName: "fronting.example", ECH: true},
		"no-sni":       {},
		"prepended":    {ServerName: "twitter.com", PrependRecord: true},
		"extra-ext":    {ServerName: "t.co", ExtraExts: []Extension{{Type: 0x002b, Data: []byte{2, 3, 4}}}},
		"upper":        {ServerName: "TWITTER.COM"},
		"trailing-dot": {ServerName: "twitter.com."},
	}
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			b := spec.Build()
			checkExtractAgrees(t, b)
			// Truncations at every length exercise each bounds check the two
			// parsers must share.
			for n := 0; n <= len(b); n++ {
				checkExtractAgrees(t, b[:n])
			}
		})
	}
}

func TestExtractSNIEquivalenceUnderMutation(t *testing.T) {
	base := (&ClientHelloSpec{ServerName: "api.twitter.com", ALPN: []string{"h2"}}).Build()
	// Flip every byte through a few values: any disagreement between the two
	// parsers on which mutations still yield an SNI is a contract violation.
	mut := make([]byte, len(base))
	for i := range base {
		for _, v := range []byte{0x00, 0x01, 0xff, base[i] ^ 0x80} {
			copy(mut, base)
			mut[i] = v
			checkExtractAgrees(t, mut)
		}
	}
}

func TestExtractSNIAliasesInput(t *testing.T) {
	b := (&ClientHelloSpec{ServerName: "twitter.com"}).Build()
	sni, found := ExtractSNI(b)
	if !found || string(sni) != "twitter.com" {
		t.Fatalf("ExtractSNI = %q, %v", sni, found)
	}
	// The result must be a subslice of b, not a copy.
	sni[0] = 'X'
	if info, err := ParseClientHello(b); err != nil || info.ServerName != "Xwitter.com" {
		t.Fatal("returned slice does not alias the input buffer")
	}
}

func TestExtractSNINoAllocs(t *testing.T) {
	hello := (&ClientHelloSpec{ServerName: "api.twitter.com", ALPN: []string{"h2", "http/1.1"}}).Build()
	notTLS := bytes.Repeat([]byte{0xab}, 1400)
	allocs := testing.AllocsPerRun(500, func() {
		if _, found := ExtractSNI(hello); !found {
			t.Fatal("SNI not found")
		}
		if _, found := ExtractSNI(notTLS); found {
			t.Fatal("SNI found in junk")
		}
	})
	if allocs != 0 {
		t.Fatalf("ExtractSNI allocates %v/op, want 0", allocs)
	}
}
