package tlsx

import "encoding/binary"

// ExtractSNI is the allocation-free fast path of ParseClientHello: it walks
// the same record, handshake, and extension type/length fields and returns
// the server_name bytes as a subslice of b, without building an Info, error
// values, or ALPN strings. Callers must not mutate the returned slice — it
// aliases the input.
//
// The contract, pinned by TestExtractSNIEquivalence and FuzzSNIExtract, is
// exact equivalence with the structural parser the TSPU device model used
// before: ExtractSNI(b) reports found exactly when ParseClientHello(b)
// returns a nil error and a non-empty ServerName, and the returned bytes
// equal that ServerName. In particular a malformation anywhere in the
// extension list — even after a well-formed server_name extension — yields
// not-found, because the reference parser fails the whole parse.
//
//tspuvet:hotpath
func ExtractSNI(b []byte) (sni []byte, found bool) {
	if len(b) < 5 || b[0] != RecordTypeHandshake {
		return nil, false
	}
	recLen := int(binary.BigEndian.Uint16(b[3:5]))
	rec := b[5:]
	if recLen > len(rec) {
		return nil, false
	}
	rec = rec[:recLen]
	if len(rec) < 4 || rec[0] != HandshakeTypeClientHello {
		return nil, false
	}
	hsLen := int(rec[1])<<16 | int(rec[2])<<8 | int(rec[3])
	body := rec[4:]
	if hsLen > len(body) {
		return nil, false
	}
	body = body[:hsLen]

	// Fixed fields: version(2) + random(32) + session_id(1+n) +
	// cipher_suites(2+n) + compression(1+n) + extensions_len(2).
	off := 2 + 32
	if off+1 > len(body) {
		return nil, false
	}
	off += 1 + int(body[off])
	if off+2 > len(body) {
		return nil, false
	}
	csLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if csLen%2 != 0 || off+csLen+1 > len(body) {
		return nil, false
	}
	off += csLen
	off += 1 + int(body[off])
	if off+2 > len(body) {
		return nil, false
	}
	extLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if off+extLen > len(body) {
		return nil, false
	}
	exts := body[off : off+extLen]

	eo := 0
	for eo+4 <= len(exts) {
		typ := binary.BigEndian.Uint16(exts[eo : eo+2])
		elen := int(binary.BigEndian.Uint16(exts[eo+2 : eo+4]))
		if eo+4+elen > len(exts) {
			return nil, false
		}
		data := exts[eo+4 : eo+4+elen]
		switch typ {
		case ExtensionServerName:
			name, ok := extractSNIExt(data)
			if !ok {
				return nil, false
			}
			sni = name // last extension wins, matching parseCH
		case ExtensionALPN:
			// Validated (a malformed ALPN fails the reference parse) but
			// never materialized.
			if !validALPNExt(data) {
				return nil, false
			}
		}
		eo += 4 + elen
	}
	if eo != len(exts) {
		return nil, false
	}
	if len(sni) == 0 {
		return nil, false
	}
	return sni, true
}

// extractSNIExt mirrors parseSNIExt without allocating.
func extractSNIExt(data []byte) ([]byte, bool) {
	if len(data) < 2 {
		return nil, false
	}
	listLen := int(binary.BigEndian.Uint16(data[:2]))
	if 2+listLen > len(data) {
		return nil, false
	}
	p := data[2 : 2+listLen]
	if len(p) < 3 || p[0] != 0 {
		return nil, false
	}
	n := int(binary.BigEndian.Uint16(p[1:3]))
	if 3+n > len(p) {
		return nil, false
	}
	return p[3 : 3+n], true
}

// validALPNExt mirrors parseALPNExt's structural checks without building the
// protocol strings.
func validALPNExt(data []byte) bool {
	if len(data) < 2 {
		return false
	}
	listLen := int(binary.BigEndian.Uint16(data[:2]))
	if 2+listLen > len(data) {
		return false
	}
	p := data[2 : 2+listLen]
	for len(p) > 0 {
		n := int(p[0])
		if 1+n > len(p) {
			return false
		}
		p = p[1+n:]
	}
	return true
}
