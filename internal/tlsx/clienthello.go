// Package tlsx builds and parses TLS ClientHello messages at the byte level.
// The TSPU locates the SNI by structurally parsing the ClientHello — walking
// record, handshake, and extension type/length fields — rather than substring
// matching over the packet (§5.2, Fig. 13). This package provides both the
// builder used to craft trigger packets and the structural parser that the
// TSPU device model shares, plus the field-alteration strategies used to map
// which byte positions the TSPU actually inspects.
package tlsx

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// TLS constants used on the wire.
const (
	RecordTypeHandshake      = 0x16
	HandshakeTypeClientHello = 0x01
	ExtensionServerName      = 0x0000
	ExtensionALPN            = 0x0010
	ExtensionPadding         = 0x0015
	ExtensionSupportedVer    = 0x002b
	// ExtensionECH is encrypted_client_hello (draft-ietf-tls-esni): the SNI
	// moves into an encrypted blob, leaving nothing for SNI-based censors to
	// match — the countermeasure the paper cites via [40].
	ExtensionECH = 0xfe0d

	VersionTLS10 = 0x0301
	VersionTLS12 = 0x0303
	VersionTLS13 = 0x0304
)

// Errors returned by ParseClientHello.
var (
	ErrNotHandshake   = errors.New("tlsx: not a handshake record")
	ErrNotClientHello = errors.New("tlsx: not a ClientHello")
	ErrMalformed      = errors.New("tlsx: malformed ClientHello")
	ErrNoSNI          = errors.New("tlsx: no server_name extension")
)

// ClientHelloSpec describes a ClientHello to build. Zero values get
// reasonable defaults from Build.
type ClientHelloSpec struct {
	ServerName    string
	RecordVersion uint16 // version in the TLS record header (default 0x0301)
	HelloVersion  uint16 // client_version in the handshake (default 0x0303)
	Random        [32]byte
	SessionID     []byte
	CipherSuites  []uint16
	ALPN          []string
	PaddingLen    int  // adds a padding extension of this many zero bytes
	PrependRecord bool // prepend an unrelated ChangeCipherSpec-like record
	// ECH encrypts the real server name: the ClientHello carries an
	// encrypted_client_hello extension and NO plaintext SNI (an outer SNI of
	// a fronting domain may be set via ServerName).
	ECH       bool
	ExtraExts []Extension
}

// Extension is a raw TLS extension.
type Extension struct {
	Type uint16
	Data []byte
}

var defaultCiphers = []uint16{
	0x1301, 0x1302, 0x1303, // TLS 1.3 suites
	0xc02b, 0xc02f, 0xc02c, 0xc030, // ECDHE suites
	0x009c, 0x009d, 0x003c, 0x003d, // RSA suites (match Fig. 13's dump flavor)
}

// Build serializes the spec into TLS record bytes ready to be used as a TCP
// payload.
func (s *ClientHelloSpec) Build() []byte {
	recVer := s.RecordVersion
	if recVer == 0 {
		recVer = VersionTLS10
	}
	helloVer := s.HelloVersion
	if helloVer == 0 {
		helloVer = VersionTLS12
	}
	ciphers := s.CipherSuites
	if ciphers == nil {
		ciphers = defaultCiphers
	}

	// Extensions.
	var exts []byte
	if s.ECH {
		// The encrypted blob: opaque bytes standing in for the HPKE
		// ciphertext; its length matches a real inner hello.
		blob := make([]byte, 180)
		for i := range blob {
			blob[i] = byte(0xa5 ^ i)
		}
		exts = append(exts, buildExt(ExtensionECH, blob)...)
	} else if s.ServerName != "" {
		exts = append(exts, buildSNI(s.ServerName)...)
	}
	if len(s.ALPN) > 0 {
		exts = append(exts, buildALPN(s.ALPN)...)
	}
	for _, e := range s.ExtraExts {
		exts = append(exts, buildExt(e.Type, e.Data)...)
	}
	if s.PaddingLen > 0 {
		exts = append(exts, buildExt(ExtensionPadding, make([]byte, s.PaddingLen))...)
	}

	// Handshake body.
	var body []byte
	body = binary.BigEndian.AppendUint16(body, helloVer)
	body = append(body, s.Random[:]...)
	body = append(body, byte(len(s.SessionID)))
	body = append(body, s.SessionID...)
	body = binary.BigEndian.AppendUint16(body, uint16(2*len(ciphers)))
	for _, c := range ciphers {
		body = binary.BigEndian.AppendUint16(body, c)
	}
	body = append(body, 1, 0) // compression methods: [null]
	body = binary.BigEndian.AppendUint16(body, uint16(len(exts)))
	body = append(body, exts...)

	// Handshake header: type(1) + len(3).
	hs := make([]byte, 4, 4+len(body))
	hs[0] = HandshakeTypeClientHello
	hs[1] = byte(len(body) >> 16)
	hs[2] = byte(len(body) >> 8)
	hs[3] = byte(len(body))
	hs = append(hs, body...)

	// Record header: type(1) + version(2) + len(2).
	rec := make([]byte, 5, 5+len(hs))
	rec[0] = RecordTypeHandshake
	binary.BigEndian.PutUint16(rec[1:3], recVer)
	binary.BigEndian.PutUint16(rec[3:5], uint16(len(hs)))
	rec = append(rec, hs...)

	if s.PrependRecord {
		// A one-byte ChangeCipherSpec record ahead of the handshake record;
		// a structural parser that only reads the first record misses the
		// ClientHello entirely (§8 client-side strategy).
		pre := []byte{0x14, 0x03, 0x01, 0x00, 0x01, 0x01}
		rec = append(pre, rec...)
	}
	return rec
}

func buildSNI(name string) []byte {
	// server_name extension: list_len(2) + type(1)=0 + name_len(2) + name.
	inner := make([]byte, 0, 5+len(name))
	inner = binary.BigEndian.AppendUint16(inner, uint16(3+len(name)))
	inner = append(inner, 0) // host_name
	inner = binary.BigEndian.AppendUint16(inner, uint16(len(name)))
	inner = append(inner, name...)
	return buildExt(ExtensionServerName, inner)
}

func buildALPN(protos []string) []byte {
	var list []byte
	for _, p := range protos {
		list = append(list, byte(len(p)))
		list = append(list, p...)
	}
	inner := binary.BigEndian.AppendUint16(nil, uint16(len(list)))
	inner = append(inner, list...)
	return buildExt(ExtensionALPN, inner)
}

func buildExt(typ uint16, data []byte) []byte {
	b := binary.BigEndian.AppendUint16(nil, typ)
	b = binary.BigEndian.AppendUint16(b, uint16(len(data)))
	return append(b, data...)
}

// Info is the result of structurally parsing a ClientHello.
type Info struct {
	RecordVersion uint16
	HelloVersion  uint16
	ServerName    string
	ALPN          []string
	// SNIOffset/SNILen locate the server name bytes within the parsed input,
	// used by Fig. 13-style inspection maps.
	SNIOffset, SNILen int
	// NumExtensions counts parsed extensions.
	NumExtensions int
}

// ParseClientHello structurally parses b, which must begin with a TLS
// handshake record containing a ClientHello (possibly preceded by non-
// handshake records, which are skipped only if skipRecords is true via
// ParseClientHelloDeep). It walks every type/length field; corrupting any of
// them yields an error rather than a located SNI, which is exactly the
// behavioral split Fig. 13 maps.
func ParseClientHello(b []byte) (*Info, error) {
	return parseCH(b, false)
}

// ParseClientHelloDeep is like ParseClientHello but skips leading
// non-handshake records before parsing, modeling a DPI whose inspection
// window spans multiple records.
func ParseClientHelloDeep(b []byte) (*Info, error) {
	return parseCH(b, true)
}

func parseCH(b []byte, skipRecords bool) (*Info, error) {
	base := 0
	for {
		if len(b)-base < 5 {
			return nil, fmt.Errorf("%w: short record header", ErrMalformed)
		}
		if b[base] == RecordTypeHandshake {
			break
		}
		if !skipRecords {
			return nil, ErrNotHandshake
		}
		rl := int(binary.BigEndian.Uint16(b[base+3 : base+5]))
		base += 5 + rl
		if base > len(b) {
			return nil, fmt.Errorf("%w: record overruns buffer", ErrMalformed)
		}
	}
	info := &Info{RecordVersion: binary.BigEndian.Uint16(b[base+1 : base+3])}
	recLen := int(binary.BigEndian.Uint16(b[base+3 : base+5]))
	rec := b[base+5:]
	if recLen > len(rec) {
		return nil, fmt.Errorf("%w: record length %d overruns buffer", ErrMalformed, recLen)
	}
	rec = rec[:recLen]
	if len(rec) < 4 {
		return nil, fmt.Errorf("%w: short handshake header", ErrMalformed)
	}
	if rec[0] != HandshakeTypeClientHello {
		return nil, ErrNotClientHello
	}
	hsLen := int(rec[1])<<16 | int(rec[2])<<8 | int(rec[3])
	body := rec[4:]
	if hsLen > len(body) {
		return nil, fmt.Errorf("%w: handshake length %d overruns record", ErrMalformed, hsLen)
	}
	body = body[:hsLen]
	bodyBase := base + 5 + 4

	off := 0
	need := func(n int) error {
		if off+n > len(body) {
			return fmt.Errorf("%w: truncated at offset %d", ErrMalformed, off)
		}
		return nil
	}
	if err := need(2 + 32 + 1); err != nil {
		return nil, err
	}
	info.HelloVersion = binary.BigEndian.Uint16(body[off : off+2])
	off += 2 + 32 // version + random
	sidLen := int(body[off])
	off++
	if err := need(sidLen + 2); err != nil {
		return nil, err
	}
	off += sidLen
	csLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if csLen%2 != 0 {
		return nil, fmt.Errorf("%w: odd cipher suite length", ErrMalformed)
	}
	if err := need(csLen + 1); err != nil {
		return nil, err
	}
	off += csLen
	compLen := int(body[off])
	off++
	if err := need(compLen + 2); err != nil {
		return nil, err
	}
	off += compLen
	extLen := int(binary.BigEndian.Uint16(body[off : off+2]))
	off += 2
	if off+extLen > len(body) {
		return nil, fmt.Errorf("%w: extensions overrun body", ErrMalformed)
	}
	exts := body[off : off+extLen]
	extBase := bodyBase + off

	eo := 0
	for eo+4 <= len(exts) {
		typ := binary.BigEndian.Uint16(exts[eo : eo+2])
		elen := int(binary.BigEndian.Uint16(exts[eo+2 : eo+4]))
		if eo+4+elen > len(exts) {
			return nil, fmt.Errorf("%w: extension %d overruns", ErrMalformed, typ)
		}
		data := exts[eo+4 : eo+4+elen]
		info.NumExtensions++
		switch typ {
		case ExtensionServerName:
			name, rel, nlen, err := parseSNIExt(data)
			if err != nil {
				return nil, err
			}
			info.ServerName = name
			info.SNIOffset = extBase + eo + 4 + rel
			info.SNILen = nlen
		case ExtensionALPN:
			protos, err := parseALPNExt(data)
			if err != nil {
				return nil, err
			}
			info.ALPN = protos
		}
		eo += 4 + elen
	}
	if eo != len(exts) {
		return nil, fmt.Errorf("%w: trailing extension bytes", ErrMalformed)
	}
	if info.ServerName == "" && info.SNILen == 0 {
		return info, ErrNoSNI
	}
	return info, nil
}

func parseSNIExt(data []byte) (name string, rel, nlen int, err error) {
	if len(data) < 2 {
		return "", 0, 0, fmt.Errorf("%w: short SNI list", ErrMalformed)
	}
	listLen := int(binary.BigEndian.Uint16(data[:2]))
	if 2+listLen > len(data) {
		return "", 0, 0, fmt.Errorf("%w: SNI list overruns", ErrMalformed)
	}
	p := data[2 : 2+listLen]
	if len(p) < 3 {
		return "", 0, 0, fmt.Errorf("%w: short SNI entry", ErrMalformed)
	}
	if p[0] != 0 {
		return "", 0, 0, fmt.Errorf("%w: unknown SNI name type %d", ErrMalformed, p[0])
	}
	n := int(binary.BigEndian.Uint16(p[1:3]))
	if 3+n > len(p) {
		return "", 0, 0, fmt.Errorf("%w: SNI name overruns", ErrMalformed)
	}
	return string(p[3 : 3+n]), 2 + 3, n, nil
}

func parseALPNExt(data []byte) ([]string, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("%w: short ALPN", ErrMalformed)
	}
	listLen := int(binary.BigEndian.Uint16(data[:2]))
	if 2+listLen > len(data) {
		return nil, fmt.Errorf("%w: ALPN overruns", ErrMalformed)
	}
	p := data[2 : 2+listLen]
	var out []string
	for len(p) > 0 {
		n := int(p[0])
		if 1+n > len(p) {
			return nil, fmt.Errorf("%w: ALPN entry overruns", ErrMalformed)
		}
		out = append(out, string(p[1:1+n]))
		p = p[1+n:]
	}
	return out, nil
}
