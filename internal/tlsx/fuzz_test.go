package tlsx

import (
	"bytes"
	"testing"
)

// FuzzParseClientHello drives the structural parser with arbitrary bytes —
// the exact position the device's inspection path is in when an adversary
// crafts payloads. Seeds cover well-formed hellos, every alteration, ECH,
// and multi-record inputs. Run with: go test -fuzz=FuzzParseClientHello
func FuzzParseClientHello(f *testing.F) {
	base := (&ClientHelloSpec{ServerName: "twitter.com"}).Build()
	f.Add(base)
	for _, alt := range Alterations() {
		f.Add(alt.Apply(base))
	}
	f.Add((&ClientHelloSpec{ServerName: "x.ru", PrependRecord: true}).Build())
	f.Add((&ClientHelloSpec{ServerName: "x.ru", ECH: true}).Build())
	f.Add((&ClientHelloSpec{ServerName: "x.ru", PaddingLen: 700, ALPN: []string{"h2"}}).Build())
	f.Add([]byte{})
	f.Add([]byte{0x16})

	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := ParseClientHello(data)
		if err == nil && info.ServerName != "" {
			// Invariant: a located SNI must be present verbatim in the input
			// at the reported offset.
			if info.SNIOffset+info.SNILen > len(data) {
				t.Fatalf("SNI offset %d+%d beyond input %d", info.SNIOffset, info.SNILen, len(data))
			}
			if !bytes.Equal(data[info.SNIOffset:info.SNIOffset+info.SNILen], []byte(info.ServerName)) {
				t.Fatalf("offset does not point at the SNI")
			}
		}
		ParseClientHelloDeep(data)
	})
}
