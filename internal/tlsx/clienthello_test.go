package tlsx

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuildParseRoundTrip(t *testing.T) {
	spec := &ClientHelloSpec{ServerName: "twitter.com", ALPN: []string{"h2", "http/1.1"}}
	ch := spec.Build()
	info, err := ParseClientHello(ch)
	if err != nil {
		t.Fatal(err)
	}
	if info.ServerName != "twitter.com" {
		t.Fatalf("SNI = %q", info.ServerName)
	}
	if len(info.ALPN) != 2 || info.ALPN[0] != "h2" {
		t.Fatalf("ALPN = %v", info.ALPN)
	}
	if info.RecordVersion != VersionTLS10 || info.HelloVersion != VersionTLS12 {
		t.Fatalf("versions = %04x/%04x", info.RecordVersion, info.HelloVersion)
	}
}

func TestSNIOffsetLocatesName(t *testing.T) {
	spec := &ClientHelloSpec{ServerName: "facebook.com", SessionID: make([]byte, 32)}
	ch := spec.Build()
	info, err := ParseClientHello(ch)
	if err != nil {
		t.Fatal(err)
	}
	got := string(ch[info.SNIOffset : info.SNIOffset+info.SNILen])
	if got != "facebook.com" {
		t.Fatalf("bytes at SNIOffset = %q", got)
	}
}

func TestNoSNI(t *testing.T) {
	spec := &ClientHelloSpec{}
	_, err := ParseClientHello(spec.Build())
	if !errors.Is(err, ErrNoSNI) {
		t.Fatalf("want ErrNoSNI, got %v", err)
	}
}

func TestNotHandshake(t *testing.T) {
	if _, err := ParseClientHello([]byte{0x17, 3, 1, 0, 1, 0}); !errors.Is(err, ErrNotHandshake) {
		t.Fatalf("want ErrNotHandshake, got %v", err)
	}
}

func TestNotClientHello(t *testing.T) {
	spec := &ClientHelloSpec{ServerName: "x.com"}
	ch := spec.Build()
	ch[5] = 0x02 // ServerHello
	if _, err := ParseClientHello(ch); !errors.Is(err, ErrNotClientHello) {
		t.Fatalf("want ErrNotClientHello, got %v", err)
	}
}

func TestPrependRecordHidesFromShallowParser(t *testing.T) {
	spec := &ClientHelloSpec{ServerName: "meduza.io", PrependRecord: true}
	ch := spec.Build()
	if _, err := ParseClientHello(ch); !errors.Is(err, ErrNotHandshake) {
		t.Fatalf("shallow parser should fail on prepended record, got %v", err)
	}
	info, err := ParseClientHelloDeep(ch)
	if err != nil {
		t.Fatal(err)
	}
	if info.ServerName != "meduza.io" {
		t.Fatalf("deep parse SNI = %q", info.ServerName)
	}
}

func TestPaddingPreservesParse(t *testing.T) {
	spec := &ClientHelloSpec{ServerName: "bbc.com", PaddingLen: 500}
	info, err := ParseClientHello(spec.Build())
	if err != nil {
		t.Fatal(err)
	}
	if info.ServerName != "bbc.com" {
		t.Fatalf("SNI with padding = %q", info.ServerName)
	}
	if info.NumExtensions != 2 {
		t.Fatalf("NumExtensions = %d", info.NumExtensions)
	}
}

func TestStructuralAlterationsBreakParse(t *testing.T) {
	spec := &ClientHelloSpec{ServerName: "dw.com"}
	base := spec.Build()
	for _, alt := range Alterations() {
		mutated := alt.Apply(base)
		if string(mutated) == string(base) {
			t.Errorf("%s: no-op mutation", alt.Name)
			continue
		}
		info, err := ParseClientHello(mutated)
		if alt.Structural {
			if err == nil && info.ServerName == "dw.com" {
				t.Errorf("%s: structural corruption but SNI still located", alt.Name)
			}
		} else {
			if err != nil {
				t.Errorf("%s: cosmetic mutation broke parse: %v", alt.Name, err)
			} else if info.ServerName != "dw.com" {
				t.Errorf("%s: cosmetic mutation lost SNI: %q", alt.Name, info.ServerName)
			}
		}
	}
}

func TestAlterationsDoNotMutateInput(t *testing.T) {
	spec := &ClientHelloSpec{ServerName: "rferl.org"}
	base := spec.Build()
	orig := append([]byte(nil), base...)
	for _, alt := range Alterations() {
		alt.Apply(base)
	}
	if string(base) != string(orig) {
		t.Fatal("an alteration mutated its input")
	}
}

func TestPropertyBuildParse(t *testing.T) {
	f := func(nameBytes []byte, sessLen uint8, pad uint16) bool {
		name := strings.Map(func(r rune) rune {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '-' || r == '.' {
				return r
			}
			return 'a'
		}, string(nameBytes))
		if name == "" {
			name = "example.com"
		}
		if len(name) > 200 {
			name = name[:200]
		}
		spec := &ClientHelloSpec{
			ServerName: name,
			SessionID:  make([]byte, int(sessLen)%33),
			PaddingLen: int(pad) % 1000,
		}
		info, err := ParseClientHello(spec.Build())
		return err == nil && info.ServerName == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTruncationNeverPanics(t *testing.T) {
	spec := &ClientHelloSpec{ServerName: "long-domain-name.example.org", PaddingLen: 64}
	ch := spec.Build()
	for i := 0; i <= len(ch); i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic at truncation %d: %v", i, r)
				}
			}()
			ParseClientHello(ch[:i])
			ParseClientHelloDeep(ch[:i])
		}()
	}
}

func TestPropertyRandomBytesNeverPanic(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on random input: %v", r)
			}
		}()
		ParseClientHello(b)
		ParseClientHelloDeep(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCustomCiphersAndVersions(t *testing.T) {
	spec := &ClientHelloSpec{
		ServerName:    "instagram.com",
		RecordVersion: VersionTLS12,
		HelloVersion:  VersionTLS13,
		CipherSuites:  []uint16{0x1301},
	}
	info, err := ParseClientHello(spec.Build())
	if err != nil {
		t.Fatal(err)
	}
	if info.RecordVersion != VersionTLS12 || info.HelloVersion != VersionTLS13 {
		t.Fatalf("versions = %04x/%04x", info.RecordVersion, info.HelloVersion)
	}
}

func TestECHHidesSNI(t *testing.T) {
	spec := &ClientHelloSpec{ServerName: "meduza.io", ECH: true}
	ch := spec.Build()
	info, err := ParseClientHello(ch)
	if !errors.Is(err, ErrNoSNI) {
		t.Fatalf("ECH hello should carry no SNI, got err=%v sni=%q", err, infoSNI(info))
	}
	// The domain must not appear anywhere in the bytes.
	if strings.Contains(string(ch), "meduza.io") {
		t.Fatal("plaintext domain leaked into ECH hello")
	}
	if info.NumExtensions == 0 {
		t.Fatal("ECH extension missing")
	}
}

func infoSNI(i *Info) string {
	if i == nil {
		return ""
	}
	return i.ServerName
}
