package tlsx

import "encoding/binary"

// Alteration is a named byte-level mutation of a serialized ClientHello,
// used to map which positions the TSPU inspects (Fig. 13). Apply returns a
// mutated copy; it never modifies its input.
type Alteration struct {
	Name string
	// Structural reports whether the mutation corrupts a type/length field
	// that a structural parser depends on (the paper found these change the
	// censorship behavior) as opposed to fields the TSPU ignores.
	Structural bool
	Apply      func(ch []byte) []byte
}

func mutate(ch []byte, f func(b []byte)) []byte {
	cp := append([]byte(nil), ch...)
	f(cp)
	return cp
}

// Alterations returns the fuzzing strategies of §5.2. Each mutates a
// serialized ClientHello that was built by ClientHelloSpec.Build with
// defaults (no session ID, default ciphers, SNI first extension).
func Alterations() []Alteration {
	return []Alteration{
		{
			Name:       "corrupt-record-type",
			Structural: true,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) { b[0] = 0x17 })
			},
		},
		{
			Name:       "corrupt-record-length",
			Structural: true,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) {
					binary.BigEndian.PutUint16(b[3:5], uint16(len(b))) // overruns
				})
			},
		},
		{
			Name:       "corrupt-handshake-type",
			Structural: true,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) { b[5] = 0x02 }) // ServerHello
			},
		},
		{
			Name:       "corrupt-handshake-length",
			Structural: true,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) { b[8] = 0xff })
			},
		},
		{
			Name:       "corrupt-sessionid-length",
			Structural: true,
			Apply: func(ch []byte) []byte {
				// Session ID length byte sits at record(5)+hs(4)+ver(2)+rand(32).
				return mutate(ch, func(b []byte) { b[5+4+2+32] = 0xfa })
			},
		},
		{
			Name:       "corrupt-ciphersuites-length",
			Structural: true,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) {
					off := 5 + 4 + 2 + 32
					off += 1 + int(b[off]) // session id
					binary.BigEndian.PutUint16(b[off:off+2], 0xfffe)
				})
			},
		},
		{
			Name:       "corrupt-extensions-length",
			Structural: true,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) {
					off := extBlockOffset(b)
					if off >= 0 {
						binary.BigEndian.PutUint16(b[off:off+2], 0xfffe)
					}
				})
			},
		},
		{
			Name:       "corrupt-sni-ext-length",
			Structural: true,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) {
					off := extBlockOffset(b)
					if off >= 0 {
						// First extension header starts 2 bytes later; its
						// length field 2 bytes after the type.
						binary.BigEndian.PutUint16(b[off+4:off+6], 0xfffe)
					}
				})
			},
		},
		{
			Name:       "change-record-version",
			Structural: false,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) {
					binary.BigEndian.PutUint16(b[1:3], VersionTLS12)
				})
			},
		},
		{
			Name:       "change-hello-version",
			Structural: false,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) {
					binary.BigEndian.PutUint16(b[9:11], VersionTLS13)
				})
			},
		},
		{
			Name:       "randomize-random",
			Structural: false,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) {
					for i := 11; i < 11+32 && i < len(b); i++ {
						b[i] ^= 0x5a
					}
				})
			},
		},
		{
			Name:       "swap-cipher-suites",
			Structural: false,
			Apply: func(ch []byte) []byte {
				return mutate(ch, func(b []byte) {
					off := 5 + 4 + 2 + 32
					off += 1 + int(b[off])
					n := int(binary.BigEndian.Uint16(b[off : off+2]))
					cs := b[off+2 : off+2+n]
					for i := 0; i+3 < len(cs); i += 4 {
						cs[i], cs[i+2] = cs[i+2], cs[i]
						cs[i+1], cs[i+3] = cs[i+3], cs[i+1]
					}
				})
			},
		},
	}
}

// extBlockOffset returns the byte offset of the 2-byte extensions-length
// field, or -1 on malformed input. Assumes single handshake record at start.
func extBlockOffset(b []byte) int {
	off := 5 + 4 + 2 + 32
	if off >= len(b) {
		return -1
	}
	off += 1 + int(b[off]) // session id
	if off+2 > len(b) {
		return -1
	}
	off += 2 + int(binary.BigEndian.Uint16(b[off:off+2])) // ciphers
	if off+1 > len(b) {
		return -1
	}
	off += 1 + int(b[off]) // compression
	if off+2 > len(b) {
		return -1
	}
	return off
}
