package registry

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tspusim/internal/sim"
	"tspusim/internal/workload"
)

func sampleEntries(t *testing.T, n int) []Entry {
	t.Helper()
	rng := sim.NewRand(7)
	ds := workload.GenRegistry(rng, workload.RegistryOptions{N: n})
	entries := FromWorkload(rng, ds)
	if len(entries) != n {
		t.Fatalf("entries = %d, want %d", len(entries), n)
	}
	return entries
}

func TestMarshalParseRoundTrip(t *testing.T) {
	entries := sampleEntries(t, 200)
	dump := Marshal(entries)
	parsed, err := Parse(bytes.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(entries) {
		t.Fatalf("parsed %d of %d", len(parsed), len(entries))
	}
	// Marshal sorts; re-marshal of the parse must be byte-identical.
	if !bytes.Equal(Marshal(parsed), dump) {
		t.Fatal("round trip not stable")
	}
	for _, e := range parsed {
		if e.Domain == "" || e.Added.IsZero() || len(e.IPs) == 0 {
			t.Fatalf("lossy round trip: %+v", e)
		}
	}
}

func TestParseSkipsCommentsAndBlank(t *testing.T) {
	dump := "# comment\n\n1.2.3.4;site.ru;http://site.ru/;Суд;55-1/2022;2022-03-01\n"
	entries, err := Parse(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Domain != "site.ru" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestParseMultipleIPs(t *testing.T) {
	dump := "1.2.3.4 | 5.6.7.8;multi.ru;;;;2022-01-15\n"
	entries, err := Parse(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries[0].IPs) != 2 {
		t.Fatalf("IPs = %v", entries[0].IPs)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"only;three;fields\n",
		"1.2.3.4;;url;a;o;2022-01-01\n",       // empty domain
		"notanip;site.ru;;;;2022-01-01\n",     // bad IP
		"1.2.3.4;site.ru;;;;January 1 2022\n", // bad date
	} {
		if _, err := Parse(strings.NewReader(bad)); !errors.Is(err, ErrBadLine) {
			t.Fatalf("accepted %q (err=%v)", bad, err)
		}
	}
}

func TestAddedSince(t *testing.T) {
	entries := sampleEntries(t, 300)
	cut := time.Date(2022, 2, 24, 0, 0, 0, 0, time.UTC)
	recent := AddedSince(entries, cut)
	if len(recent) == 0 || len(recent) == len(entries) {
		t.Fatalf("recent = %d of %d", len(recent), len(entries))
	}
	for _, e := range recent {
		if e.Added.Before(cut) {
			t.Fatalf("entry before cutoff: %v", e.Added)
		}
	}
	// Everything not selected is older.
	if len(AddedSince(entries, time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC))) != len(entries) {
		t.Fatal("early cutoff should select everything")
	}
}

func TestLookupSingularQuery(t *testing.T) {
	entries := sampleEntries(t, 100)
	target := entries[42].Domain
	hits := Lookup(entries, strings.ToUpper(target))
	if len(hits) == 0 {
		t.Fatal("case-insensitive lookup failed")
	}
	if Lookup(entries, "definitely-not-listed.example") != nil {
		t.Fatal("phantom hit")
	}
}

func TestFromWorkloadDates(t *testing.T) {
	rng := sim.NewRand(9)
	ds := workload.GenRegistry(rng, workload.RegistryOptions{N: 400, AfterFeb24Fraction: 0.25})
	entries := FromWorkload(rng, ds)
	war := time.Date(2022, 2, 24, 0, 0, 0, 0, time.UTC)
	warCount := 0
	for i, e := range entries {
		if ds[i].AddedAfterFeb24 {
			if e.Added.Before(war) {
				t.Fatalf("wartime domain dated %v", e.Added)
			}
			warCount++
		} else if !e.Added.Before(war) {
			t.Fatalf("pre-war domain dated %v", e.Added)
		}
	}
	if warCount < 50 || warCount > 150 {
		t.Fatalf("wartime entries = %d of 400", warCount)
	}
}

func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic: %v", r)
			}
		}()
		Parse(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Marshal(sampleEntries(t, 150))
	b := Marshal(sampleEntries(t, 150))
	if !bytes.Equal(a, b) {
		t.Fatal("generation not deterministic")
	}
}
