package registry_test

import (
	"fmt"
	"strings"
	"time"

	"tspusim/internal/registry"
)

func ExampleParse() {
	dump := `# z-i format: ip;domain;url;agency;order;date
5.45.67.89;kasino-azart.ru;http://kasino-azart.ru/;ФНС;2-6-27/2022;2022-01-17
94.100.180.1 | 94.100.180.2;newsportal.io;;Генпрокуратура;27-31-2020/Ид2145;2022-03-04
`
	entries, _ := registry.Parse(strings.NewReader(dump))
	for _, e := range entries {
		fmt.Printf("%s added %s by %s (%d ips)\n",
			e.Domain, e.Added.Format("2006-01-02"), e.Agency, len(e.IPs))
	}
	war := time.Date(2022, 2, 24, 0, 0, 0, 0, time.UTC)
	fmt.Println("wartime additions:", len(registry.AddedSince(entries, war)))
	// Output:
	// kasino-azart.ru added 2022-01-17 by ФНС (1 ips)
	// newsportal.io added 2022-03-04 by Генпрокуратура (2 ips)
	// wartime additions: 1
}
