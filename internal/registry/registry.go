// Package registry implements the Roskomnadzor blocking-registry dump
// format. §6.1 builds its Registry Sample from the "leaked" z-i repository
// [21] — a semicolon-separated dump distributed to ISPs since 2012 and
// validated against signed samples by Ramesh et al. [81]. This package
// reads and writes that format, diffs dumps by date (the paper samples
// "domains added since 2022-01-01"), and bridges to the workload generator
// so labs can build their policy the way an ISP ingests the real file.
//
// Line format (one entry per line, `;`-separated):
//
//	ip[ | ip...];domain;url;agency;order;date
//
// Dates are YYYY-MM-DD. Empty fields are permitted everywhere but domain.
package registry

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"
	"time"

	"tspusim/internal/sim"
	"tspusim/internal/workload"
)

// Entry is one registry record.
type Entry struct {
	IPs    []netip.Addr
	Domain string
	URL    string
	Agency string
	Order  string
	Added  time.Time
}

// ErrBadLine reports an unparseable dump line.
var ErrBadLine = errors.New("registry: malformed line")

// agencies issuing blocking orders, as they appear in real dumps.
var agencies = []string{
	"Роскомнадзор", "Генпрокуратура", "Минюст", "ФНС", "МВД", "Суд",
}

// Marshal renders entries in dump format, sorted by (date, domain) so dumps
// are deterministic and diff-able.
func Marshal(entries []Entry) []byte {
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if !sorted[i].Added.Equal(sorted[j].Added) {
			return sorted[i].Added.Before(sorted[j].Added)
		}
		return sorted[i].Domain < sorted[j].Domain
	})
	var b strings.Builder
	for _, e := range sorted {
		ips := make([]string, len(e.IPs))
		for i, ip := range e.IPs {
			ips[i] = ip.String()
		}
		fmt.Fprintf(&b, "%s;%s;%s;%s;%s;%s\n",
			strings.Join(ips, " | "), e.Domain, e.URL, e.Agency, e.Order,
			e.Added.Format("2006-01-02"))
	}
	return []byte(b.String())
}

// Parse reads a dump. Lines that are blank or comments (#) are skipped;
// malformed lines abort with ErrBadLine and a line number.
func Parse(r io.Reader) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ";")
		if len(fields) != 6 {
			return nil, fmt.Errorf("%w %d: %d fields", ErrBadLine, lineNo, len(fields))
		}
		e := Entry{
			Domain: strings.TrimSpace(fields[1]),
			URL:    strings.TrimSpace(fields[2]),
			Agency: strings.TrimSpace(fields[3]),
			Order:  strings.TrimSpace(fields[4]),
		}
		if e.Domain == "" {
			return nil, fmt.Errorf("%w %d: empty domain", ErrBadLine, lineNo)
		}
		for _, ipStr := range strings.Split(fields[0], "|") {
			ipStr = strings.TrimSpace(ipStr)
			if ipStr == "" {
				continue
			}
			ip, err := netip.ParseAddr(ipStr)
			if err != nil {
				return nil, fmt.Errorf("%w %d: ip %q", ErrBadLine, lineNo, ipStr)
			}
			e.IPs = append(e.IPs, ip)
		}
		if ds := strings.TrimSpace(fields[5]); ds != "" {
			t, err := time.Parse("2006-01-02", ds)
			if err != nil {
				return nil, fmt.Errorf("%w %d: date %q", ErrBadLine, lineNo, ds)
			}
			e.Added = t
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// AddedSince selects entries added on or after t — the paper's sampling
// predicate ("added to the registry since January 1, 2022").
func AddedSince(entries []Entry, t time.Time) []Entry {
	var out []Entry
	for _, e := range entries {
		if !e.Added.Before(t) {
			out = append(out, e)
		}
	}
	return out
}

// Domains extracts the domain column.
func Domains(entries []Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Domain
	}
	return out
}

// Lookup emulates the public registry's singular CAPTCHA-gated query (§6.1):
// one domain in, matching entries out. Bulk iteration is what the dump is
// for; Lookup exists to mirror the real interface.
func Lookup(entries []Entry, domain string) []Entry {
	var out []Entry
	for _, e := range entries {
		if strings.EqualFold(e.Domain, domain) {
			out = append(out, e)
		}
	}
	return out
}

// FromWorkload converts generated workload domains into registry entries
// with plausible metadata: resolved IPs, issuing agency, order number, and
// an added-date — after 2022-02-24 for wartime additions, spread over the
// preceding months otherwise.
func FromWorkload(rng *sim.Rand, domains []workload.Domain) []Entry {
	r := rng.Fork("registry-dump")
	base := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	war := time.Date(2022, 2, 24, 0, 0, 0, 0, time.UTC)
	var out []Entry
	for i, d := range domains {
		if !d.InRegistry {
			continue
		}
		var added time.Time
		if d.AddedAfterFeb24 {
			added = war.AddDate(0, 0, r.Intn(60))
		} else {
			added = base.AddDate(0, 0, r.Intn(54))
		}
		e := Entry{
			Domain: d.Name,
			URL:    "http://" + d.Name + "/",
			Agency: sim.Pick(r, agencies),
			Order:  fmt.Sprintf("%d-%d/2022", 100+r.Intn(900), i),
			Added:  added,
		}
		n := 1 + r.Intn(2)
		for j := 0; j < n; j++ {
			e.IPs = append(e.IPs, netip.AddrFrom4([4]byte{
				byte(45 + r.Intn(150)), byte(r.Intn(256)), byte(r.Intn(256)), byte(1 + r.Intn(250)),
			}))
		}
		out = append(out, e)
	}
	return out
}
