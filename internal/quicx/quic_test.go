package quicx

import (
	"testing"
	"testing/quick"
)

func TestV1Triggers(t *testing.T) {
	p := BuildInitial(Version1, 1200)
	if !MatchesTSPUFingerprint(443, p) {
		t.Fatal("v1 initial of 1200 bytes to :443 must trigger")
	}
}

func TestBoundaryLength(t *testing.T) {
	// 1001 bytes is the threshold; 1000 must not trigger.
	if MatchesTSPUFingerprint(443, BuildInitial(Version1, 1000)) {
		t.Fatal("1000-byte payload must not trigger")
	}
	if !MatchesTSPUFingerprint(443, BuildInitial(Version1, 1001)) {
		t.Fatal("1001-byte payload must trigger")
	}
}

func TestOtherVersionsEvade(t *testing.T) {
	for _, v := range []uint32{VersionDraft29, VersionQUICPing, 0x00000002} {
		if MatchesTSPUFingerprint(443, BuildInitial(v, 1200)) {
			t.Fatalf("version %08x must not trigger", v)
		}
	}
}

func TestOtherPortsEvade(t *testing.T) {
	for _, port := range []uint16{80, 8443, 4443, 444} {
		if MatchesTSPUFingerprint(port, BuildInitial(Version1, 1200)) {
			t.Fatalf("port %d must not trigger", port)
		}
	}
}

func TestVersionExtraction(t *testing.T) {
	if Version(BuildInitial(Version1, 100)) != Version1 {
		t.Fatal("v1 extraction failed")
	}
	if Version(BuildInitial(VersionDraft29, 100)) != VersionDraft29 {
		t.Fatal("draft-29 extraction failed")
	}
	if Version([]byte{0x40, 0, 0, 0, 1}) != 0 {
		t.Fatal("short-header packet must yield version 0")
	}
	if Version([]byte{0xc0, 0}) != 0 {
		t.Fatal("truncated packet must yield version 0")
	}
}

func TestFingerprintIgnoresFirstByte(t *testing.T) {
	// Per the paper, the match starts at the second byte: even a payload
	// without long-header bits but with the version bytes matches.
	p := BuildInitial(Version1, 1200)
	p[0] = 0x00
	if !MatchesTSPUFingerprint(443, p) {
		t.Fatal("fingerprint should not depend on the first byte")
	}
}

func TestFingerprintIgnoresTail(t *testing.T) {
	p := BuildInitial(Version1, 1200)
	for i := 5; i < len(p); i++ {
		p[i] = byte(i)
	}
	if !MatchesTSPUFingerprint(443, p) {
		t.Fatal("fingerprint should ignore bytes after the version")
	}
}

func TestPropertyOnlyV1Matches(t *testing.T) {
	f := func(v uint32, size uint16) bool {
		n := int(size)%2000 + 1001
		p := BuildInitial(v, n)
		matched := MatchesTSPUFingerprint(443, p)
		return matched == (v == Version1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildInitialClampsSize(t *testing.T) {
	if len(BuildInitial(Version1, 0)) != 6 {
		t.Fatal("size clamp failed")
	}
}
