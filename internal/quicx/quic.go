// Package quicx builds minimal QUIC long-header Initial packets and
// implements the exact fingerprint the TSPU uses to detect QUIC (§5.2,
// Fig. 14): a UDP payload whose second through fifth bytes spell the QUIC
// version, filtered only for version 1 (0x00000001), destined to UDP port
// 443, with at least 1001 bytes of payload.
package quicx

import "encoding/binary"

// QUIC version numbers relevant to the paper.
const (
	Version1        uint32 = 0x00000001 // targeted by the TSPU
	VersionDraft29  uint32 = 0xff00001d // evades (per [54])
	VersionQUICPing uint32 = 0xbabababa // quicping probe; evades
)

// Fingerprint constants per Fig. 14 and [68].
const (
	// MinTriggerPayload is the minimum UDP payload length that triggers
	// QUIC filtering.
	MinTriggerPayload = 1001
	// TriggerPort is the UDP destination port the filter applies to.
	TriggerPort = 443
)

// BuildInitial returns a UDP payload shaped like a QUIC long-header Initial:
// first byte with the long-header and fixed bits set, then the version, then
// filler up to size bytes (Fig. 14 uses 0xff filler). size is clamped below
// at the 6-byte header minimum.
func BuildInitial(version uint32, size int) []byte {
	if size < 6 {
		size = 6
	}
	b := make([]byte, size)
	b[0] = 0xc0 // long header (0x80) | fixed bit (0x40), Initial type 0
	binary.BigEndian.PutUint32(b[1:5], version)
	for i := 5; i < size; i++ {
		b[i] = 0xff
	}
	return b
}

// Version extracts the long-header version from a UDP payload, or 0 if the
// payload is too short or not a long-header packet.
func Version(payload []byte) uint32 {
	if len(payload) < 5 || payload[0]&0x80 == 0 {
		return 0
	}
	return binary.BigEndian.Uint32(payload[1:5])
}

// MatchesTSPUFingerprint reports whether a UDP packet with the given
// destination port and payload matches the TSPU's QUIC filter. Only the
// plaintext version field and the length matter — the rest of the payload is
// not inspected (Fig. 14 is almost entirely 0xff filler).
func MatchesTSPUFingerprint(dstPort uint16, payload []byte) bool {
	if dstPort != TriggerPort {
		return false
	}
	if len(payload) < MinTriggerPayload {
		return false
	}
	if len(payload) < 5 {
		return false
	}
	// The fingerprint bytes are positions 1..4 == 0x00 00 00 01; the paper
	// notes it matches "starting from the second byte" regardless of header
	// form bits.
	return payload[1] == 0x00 && payload[2] == 0x00 && payload[3] == 0x00 && payload[4] == 0x01
}
