// Package conformance holds the TSPU device model to the paper's measured
// semantics mechanically, by model-based differential testing. The paper is
// the spec: Table 2 gives the conntrack and blocking-state timeouts, Table 8
// and Fig. 4 give the flag-sequence prefix semantics, §5.2 gives the six
// blocking behaviors, and Fig. 3 / §5.3.1 give the fragment-queue behavior.
//
// The package contains four pieces:
//
//   - an oracle (oracle.go, tables.go): an independent second implementation
//     of the TSPU state machine, transcribed directly from the paper's tables
//     and deliberately structured as data (transition tables, timeout rows,
//     behavior rules) rather than code, so it cannot share bugs with
//     tspu.Device;
//
//   - a seeded scenario generator (gen.go): derives every trace from
//     sim.StreamSeed so the same base seed always yields the same scenarios,
//     and emits randomized flag sequences, clock advances straddling the
//     Table 2 timeout boundaries, fragment permutations/overlaps/floods,
//     QUIC/ICMP/IP-block traffic, and mid-flow policy swaps;
//
//   - a differential executor (executor.go): replays one trace through a
//     real tspu.Device attached to a netem link and through the oracle, and
//     diffs the two observation streams (delivered packets, rewrites, and
//     device state) step by step;
//
//   - a shrinker (shrink.go): minimizes a failing trace by dropping steps,
//     shrinking clock gaps, merging fragments, and simplifying payloads, so
//     counterexamples serialize as small replayable golden files under
//     testdata/.
package conformance

import (
	"net/netip"
	"time"

	"tspusim/internal/packet"
)

// The fixed two-host world every trace runs in. One local (RU-side) host,
// one remote host standing in for every external server (including the
// IP-blocked endpoint), with the device-under-test on the single link.
var (
	// LocalAddr is the RU-side client address.
	LocalAddr = packet.MustAddr("10.0.0.2")
	// RemoteAddr is the external server address.
	RemoteAddr = packet.MustAddr("203.0.113.10")
	// BlockedAddr is the IP-blocked endpoint (the paper's Tor node stand-in).
	BlockedAddr = packet.MustAddr("198.51.100.7")
)

// FlowProto distinguishes the transport of a flow slot.
type FlowProto int

// Flow transports.
const (
	FlowTCP FlowProto = iota
	FlowUDP
)

// FlowSpec is one fixed flow slot traces index into. Keeping the universe of
// flows static makes steps trivially serializable and shrinkable: a step
// names a flow by index instead of carrying a 5-tuple.
type FlowSpec struct {
	Proto  FlowProto
	LPort  uint16
	RPort  uint16
	Remote netip.Addr
}

// Flows is the fixed flow universe. Indexes 0-3 are TCP (two normal :443
// flows, one non-443 flow the SNI filter must ignore, one flow to the
// IP-blocked endpoint); 4-5 are UDP (:443 for the QUIC filter, non-443).
var Flows = []FlowSpec{
	{FlowTCP, 40001, 443, RemoteAddr},
	{FlowTCP, 40002, 443, RemoteAddr},
	{FlowTCP, 40003, 9999, RemoteAddr},
	{FlowTCP, 40004, 443, BlockedAddr},
	{FlowUDP, 40005, 443, RemoteAddr},
	{FlowUDP, 40006, 9999, RemoteAddr},
}

// StepKind enumerates trace step types.
type StepKind int

// Step kinds.
const (
	// StepTCP sends one scripted TCP packet on a TCP flow slot.
	StepTCP StepKind = iota
	// StepUDP sends one UDP datagram on a UDP flow slot.
	StepUDP
	// StepICMP sends an ICMP echo request.
	StepICMP
	// StepFrag sends one IP fragment.
	StepFrag
	// StepFragFlood sends Count fragments of one never-completing datagram,
	// to exercise the 45-fragment queue limit (§7.2 fingerprint).
	StepFragFlood
	// StepAdvance advances the virtual clock.
	StepAdvance
	// StepPolicy applies a mid-flow policy change through the Controller.
	StepPolicy
)

// CHMode describes the ClientHello payload variant of a TCP step.
type CHMode int

// ClientHello modes. Only CHPlain is parseable within the device's 512-byte
// inspection depth; the others model the §8 client-side evasions.
const (
	// CHNone: the step carries no ClientHello (DataLen bytes of non-TLS
	// filler, possibly zero).
	CHNone CHMode = iota
	// CHPlain: a well-formed single-record ClientHello with a plaintext SNI.
	CHPlain
	// CHPadded: a padding extension pushes the record past the 512-byte
	// inspection depth, so the bounded parser fails (§8 padding evasion).
	CHPadded
	// CHPrepend: an unrelated record precedes the handshake record; a
	// single-record parser never sees the ClientHello (§8).
	CHPrepend
	// CHECH: encrypted_client_hello carries no plaintext SNI [40].
	CHECH
)

// UDPKind describes the UDP payload of a UDP step.
type UDPKind int

// UDP payload kinds, spanning the Fig. 14 fingerprint boundary.
const (
	// UDPSmall: 100 bytes of non-QUIC filler.
	UDPSmall UDPKind = iota
	// UDPQUICv1: a 1200-byte QUIC v1 Initial — matches the fingerprint.
	UDPQUICv1
	// UDPQUICv1Short: a 900-byte QUIC v1 Initial — under the 1001-byte
	// threshold, must not match.
	UDPQUICv1Short
	// UDPQUICDraft29: a 1200-byte draft-29 Initial — wrong version, evades.
	UDPQUICDraft29
)

// PolicyOp is a mid-flow policy mutation.
type PolicyOp int

// Policy operations.
const (
	// PolThrottle toggles ThrottleActive to On.
	PolThrottle PolicyOp = iota
	// PolQUICFilter toggles the QUIC filter to On.
	PolQUICFilter
	// PolAddDomain adds Domain to the Set.
	PolAddDomain
	// PolRemoveDomain removes Domain from the Set.
	PolRemoveDomain
)

// Step is one trace event. Exactly the fields for its Kind are meaningful;
// the flat shape keeps serialization and shrinking trivial.
type Step struct {
	Kind StepKind

	// Local reports the travel direction (local→remote when true) for
	// packet-bearing steps.
	Local bool
	// Flow indexes Flows for StepTCP/StepUDP.
	Flow int

	// TCP fields.
	Flags   packet.TCPFlags
	CH      CHMode
	Domain  string // SNI for CH modes; policy domain for StepPolicy
	DataLen int    // filler payload length when CH == CHNone

	// UDP fields.
	UDP UDPKind

	// ICMP fields.
	Blocked bool // echo to/from the IP-blocked endpoint

	// Fragment fields. Offsets and lengths are bytes (multiples of 8, as on
	// the wire); FragID selects the (src, dst, IPID) queue key.
	FragID  uint16
	FragOff int
	FragLen int
	FragMF  bool
	TTL     uint8
	Count   int // StepFragFlood

	// StepAdvance.
	Adv time.Duration

	// StepPolicy.
	Pol PolicyOp
	Set string // "sni1" | "sni2" | "sni4" | "throttle"
	On  bool   // toggle value for PolThrottle / PolQUICFilter
}

// IsPacket reports whether the step puts at least one packet on the wire —
// the unit the shrinker's "≤ N-packet counterexample" metric counts.
func (s Step) IsPacket() bool {
	switch s.Kind {
	case StepTCP, StepUDP, StepICMP, StepFrag, StepFragFlood:
		return true
	}
	return false
}

// Trace is one replayable scenario: the seed that generated it (zero for
// hand-written traces) and its step sequence.
type Trace struct {
	Seed  uint64
	Steps []Step
}

// Packets counts the packet-bearing steps (a fragment flood counts as its
// fragment count).
func (t *Trace) Packets() int {
	n := 0
	for _, s := range t.Steps {
		if !s.IsPacket() {
			continue
		}
		if s.Kind == StepFragFlood {
			n += s.Count
		} else {
			n++
		}
	}
	return n
}

// Clone deep-copies the trace.
func (t *Trace) Clone() *Trace {
	c := &Trace{Seed: t.Seed, Steps: make([]Step, len(t.Steps))}
	copy(c.Steps, t.Steps)
	return c
}
