package conformance

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tspusim/internal/ispdpi"
	"tspusim/internal/tspu"
)

var update = flag.Bool("update", false, "rewrite golden .log files")

// baseSeed anchors the generated-scenario corpus. Changing it changes every
// scenario; tests that hunt for particular behaviors search from it.
const baseSeed uint64 = 0xC0FFEE

// TestDifferential runs a large seeded corpus of generated scenarios through
// the simulated device and the paper-derived oracle and requires every trace
// to agree line for line.
func TestDifferential(t *testing.T) {
	const scenarios = 1000
	for n := 0; n < scenarios; n++ {
		tr := Generate(baseSeed, n)
		res := Check(tr, Options{})
		if res.DiffLine >= 0 {
			t.Fatalf("scenario %d (seed 0x%x) diverges:\n%s\ntrace:\n%s",
				n, tr.Seed, res.DiffDesc, tr.Marshal())
		}
		// Spot-check determinism: re-running the device on the same trace must
		// reproduce the log byte for byte.
		if n%97 == 0 {
			if again := RunDevice(tr, Options{}); again != res.DeviceLog {
				t.Fatalf("scenario %d: device log not deterministic across runs", n)
			}
		}
	}
}

// timeoutMutations is the off-by-one fault model: each entry perturbs one
// Table 2 constant by one second.
var timeoutMutations = []struct {
	name string
	mod  func(*tspu.StateTimeouts)
	// maxPackets bounds the shrunk counterexample. Most faults minimize to a
	// trigger, one clock advance, and one probe; SNI-II is observable only
	// through its post-trigger allowance, so its minimal witness needs seven
	// probes (six delivered, the seventh dropped by the drifted device).
	maxPackets int
}{
	{"SynSent+1s", func(s *tspu.StateTimeouts) { s.SynSent += time.Second }, 6},
	{"SynRecv+1s", func(s *tspu.StateTimeouts) { s.SynRecv += time.Second }, 6},
	{"Established+1s", func(s *tspu.StateTimeouts) { s.Established += time.Second }, 6},
	{"SNI1+1s", func(s *tspu.StateTimeouts) { s.SNI1 += time.Second }, 6},
	{"SNI2+1s", func(s *tspu.StateTimeouts) { s.SNI2 += time.Second }, 8},
	{"SNI4+1s", func(s *tspu.StateTimeouts) { s.SNI4 += time.Second }, 6},
	{"QUIC+1s", func(s *tspu.StateTimeouts) { s.QUIC += time.Second }, 6},
	{"Frag+1s", func(s *tspu.StateTimeouts) { s.Frag += time.Second }, 6},
}

// TestInjectedTimeoutCaught proves the harness has teeth: for every timeout
// in the device's table, a one-second drift must be caught by the generated
// corpus, and the failing scenario must shrink to a counterexample of at most
// six packets that passes again once the fault is removed.
func TestInjectedTimeoutCaught(t *testing.T) {
	const searchLimit = 400
	for _, m := range timeoutMutations {
		m := m
		t.Run(m.name, func(t *testing.T) {
			bad := tspu.DefaultTimeouts()
			m.mod(&bad)
			opts := Options{DeviceTimeouts: &bad}
			var caught *Trace
			for n := 0; n < searchLimit; n++ {
				tr := Generate(baseSeed, n)
				if Check(tr, opts).DiffLine >= 0 {
					caught = tr
					break
				}
			}
			if caught == nil {
				t.Fatalf("fault %s not caught in %d scenarios", m.name, searchLimit)
			}
			shrunk := Shrink(caught, func(c *Trace) bool {
				return Check(c, opts).DiffLine >= 0
			}, 1500)
			if got := shrunk.Packets(); got > m.maxPackets {
				t.Errorf("shrunk counterexample still has %d packets (> %d):\n%s",
					got, m.maxPackets, shrunk.Marshal())
			}
			if res := Check(shrunk, Options{}); res.DiffLine >= 0 {
				t.Errorf("shrunk counterexample diverges even without the fault "+
					"(oracle bug, not the injection):\n%s", res.DiffDesc)
			}
			t.Logf("fault %s: %d-step, %d-packet counterexample:\n%s",
				m.name, len(shrunk.Steps), shrunk.Packets(), shrunk.Marshal())
		})
	}
}

// TestComparatorsDiverge runs non-TSPU middleboxes from internal/ispdpi
// through the same executor and requires the oracle to notice they are not a
// TSPU — the discriminating power §7's fingerprinting relies on.
func TestComparatorsDiverge(t *testing.T) {
	// A keyword DPI resets on the ClientHello itself; a TSPU delivers the
	// trigger and rewrites only downstream packets.
	keyword, err := Parse(`tspu-conformance-trace v1
seed 0x51
tcp L flow=0 flags=0x02
tcp R flow=0 flags=0x12
tcp L flow=0 flags=0x10
tcp L flow=0 flags=0x18 ch=plain:dw.com
tcp R flow=0 flags=0x18 data=100
`)
	if err != nil {
		t.Fatal(err)
	}
	res := Check(keyword, Options{
		Middlebox: &ispdpi.KeywordDPI{ISP: "test", Keywords: []string{"dw.com"}},
		NoState:   true,
	})
	if res.DiffLine < 0 {
		t.Errorf("keyword DPI indistinguishable from TSPU oracle:\n%s", res.DeviceLog)
	}

	// A reassembling fragment middlebox forwards one whole packet; a TSPU
	// releases the individual fragments with rewritten TTLs.
	frags, err := Parse(`tspu-conformance-trace v1
seed 0x52
frag L id=11 off=8 len=16 mf=0 ttl=12
frag L id=11 off=0 len=8 mf=1 ttl=64
`)
	if err != nil {
		t.Fatal(err)
	}
	res = Check(frags, Options{
		Middlebox: ispdpi.NewFragLimitMiddlebox("cisco", 24),
		NoState:   true,
	})
	if res.DiffLine < 0 {
		t.Errorf("reassembling middlebox indistinguishable from TSPU oracle:\n%s", res.DeviceLog)
	}
}

// TestGoldenTraces replays each hand-written golden trace, requires device
// and oracle to agree, and pins the shared log against the checked-in .log
// file. Regenerate with: go test ./internal/conformance -run Golden -update
func TestGoldenTraces(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "golden", "*.trace"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden traces found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(strings.TrimSuffix(filepath.Base(f), ".trace"), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := Parse(string(data))
			if err != nil {
				t.Fatal(err)
			}
			res := Check(tr, Options{})
			if res.DiffLine >= 0 {
				t.Fatalf("golden trace diverges:\n%s", res.DiffDesc)
			}
			logPath := strings.TrimSuffix(f, ".trace") + ".log"
			if *update {
				if err := os.WriteFile(logPath, []byte(res.DeviceLog), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(logPath)
			if err != nil {
				t.Fatalf("missing golden log (run with -update): %v", err)
			}
			if string(want) != res.DeviceLog {
				line, desc := Diff(res.DeviceLog, string(want))
				t.Errorf("log drifted from %s at line %d:\n%s", logPath, line+1, desc)
			}
		})
	}
}

// TestRegressTraces replays the shrunk counterexamples that past fault
// injections produced. They must stay divergence-free on a correct device.
func TestRegressTraces(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "regress", "*.trace"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no regression traces found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(strings.TrimSuffix(filepath.Base(f), ".trace"), func(t *testing.T) {
			data, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := Parse(string(data))
			if err != nil {
				t.Fatal(err)
			}
			if res := Check(tr, Options{}); res.DiffLine >= 0 {
				t.Errorf("regression trace diverges:\n%s", res.DiffDesc)
			}
		})
	}
}

// TestTraceRoundTrip pins the trace serialization: Marshal∘Parse must be the
// identity on every generated scenario.
func TestTraceRoundTrip(t *testing.T) {
	for n := 0; n < 200; n++ {
		tr := Generate(baseSeed, n)
		text := tr.Marshal()
		back, err := Parse(text)
		if err != nil {
			t.Fatalf("scenario %d: %v\n%s", n, err, text)
		}
		if again := back.Marshal(); again != text {
			line, desc := Diff(again, text)
			t.Fatalf("scenario %d: round trip drifted at line %d:\n%s", n, line+1, desc)
		}
	}
}
