package conformance

import "time"

// Shrink minimizes tr while keep keeps returning true (keep must hold for tr
// itself). It alternates ddmin-style chunk removal with per-step payload
// simplification until a fixpoint or the evaluation budget is reached, and
// returns the smallest trace found. keep is called on candidate clones; it
// must not mutate its argument.
func Shrink(tr *Trace, keep func(*Trace) bool, maxEvals int) *Trace {
	evals := 0
	try := func(c *Trace) bool {
		if evals >= maxEvals {
			return false
		}
		evals++
		return keep(c)
	}

	cur := tr.Clone()
	for {
		changed := removePass(&cur, try)
		if simplifyPass(cur, try) {
			changed = true
		}
		if !changed || evals >= maxEvals {
			return cur
		}
	}
}

// removePass is one round of ddmin: delete chunks of halving size wherever
// the failure persists without them.
func removePass(cur **Trace, try func(*Trace) bool) bool {
	changed := false
	for chunk := len((*cur).Steps) / 2; chunk >= 1; chunk /= 2 {
		i := 0
		for i < len((*cur).Steps) {
			end := i + chunk
			if end > len((*cur).Steps) {
				end = len((*cur).Steps)
			}
			cand := (*cur).Clone()
			cand.Steps = append(cand.Steps[:i:i], cand.Steps[end:]...)
			if len(cand.Steps) > 0 && try(cand) {
				*cur = cand
				changed = true
			} else {
				i = end
			}
		}
	}
	return changed
}

// simplifyPass rewrites surviving steps in place toward smaller equivalents:
// shorter payloads, halved clock advances, smaller floods.
func simplifyPass(cur *Trace, try func(*Trace) bool) bool {
	changed := false
	attempt := func(i int, mutate func(*Step)) {
		cand := cur.Clone()
		mutate(&cand.Steps[i])
		if cand.Steps[i] != cur.Steps[i] && try(cand) {
			cur.Steps[i] = cand.Steps[i]
			changed = true
		}
	}
	for i := range cur.Steps {
		switch cur.Steps[i].Kind {
		case StepTCP:
			if cur.Steps[i].DataLen > 1 {
				attempt(i, func(s *Step) { s.DataLen = 1 })
			}
		case StepAdvance:
			for _, d := range []time.Duration{
				cur.Steps[i].Adv / 2, 5 * time.Second, time.Second,
			} {
				if d > 0 && d < cur.Steps[i].Adv {
					attempt(i, func(s *Step) { s.Adv = d })
				}
			}
		case StepFragFlood:
			for _, n := range []int{46, cur.Steps[i].Count / 2, 2} {
				if n > 0 && n < cur.Steps[i].Count {
					attempt(i, func(s *Step) { s.Count = n })
				}
			}
		}
	}
	return changed
}
