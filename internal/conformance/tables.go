package conformance

import "time"

// This file is the oracle's spec sheet: every number and rule the oracle
// enforces, transcribed from the paper and held as data. oracle.go is a thin
// interpreter over these tables; it deliberately shares no constants or code
// paths with internal/tspu, so a bug in the device model cannot be mirrored
// here by construction. DESIGN.md ("Conformance oracle") maps each table back
// to its paper table or figure.

// oState is the oracle's connection-tracking state (§5.3.3).
//
//tspuvet:closedenum
type oState int

// Oracle conntrack states.
const (
	oSynSent oState = iota
	oSynRecv
	oEstablished
)

// oEvent classifies one observed TCP segment for the transition table. The
// classification mirrors Table 8's vocabulary: SYN/ACK outranks SYN outranks
// ACK; anything else (bare FIN, RST, NULL) carries no transition.
//
//tspuvet:closedenum
type oEvent int

// Oracle conntrack events.
const (
	evSYNACK oEvent = iota
	evSYN
	evACK
	evOther
)

// oBlock is the oracle's blocking-behavior identifier (§5.2's six behaviors).
//
//tspuvet:closedenum
type oBlock int

// Oracle block types, in the fixed order state lines report them.
const (
	oIPBlock oBlock = iota
	oSNI1
	oSNI2
	oSNI3
	oSNI4
	oQUIC
)

// timeoutRow pins one measured lifetime. Cite names the exact source row so a
// drifted constant fails loudly with a paper reference.
type timeoutRow struct {
	Name    string
	Seconds int
	Cite    string
}

// timeoutTable transcribes Table 2 (§5.3.3) plus the fragment-queue timeout
// of §5.3.1. These are the only lifetimes the oracle knows.
var timeoutTable = []timeoutRow{
	{"SYN_SENT", 60, "Table 2: TCP SYN_SENT 60 s"},
	{"SYN_RCVD", 105, "Table 2: TCP SYN_RCVD 105 s"},
	{"ESTABLISHED", 480, "Table 2: TCP ESTABLISHED 480 s"},
	{"SNI-I", 75, "Table 2: SNI-I blocking state 75 s"},
	{"SNI-II", 420, "Table 2: SNI-II blocking state 420 s"},
	{"SNI-IV", 40, "Table 2: SNI-IV blocking state 40 s"},
	{"QUIC", 420, "Table 2: QUIC blocking state 420 s"},
	{"FRAG", 5, "§5.3.1: fragment queues discarded after ~5 s"},
}

// timeoutOf resolves a row by name. Panics on an unknown name: the tables are
// internally consistent or the oracle is wrong.
func timeoutOf(name string) time.Duration {
	for _, r := range timeoutTable {
		if r.Name == name {
			return time.Duration(r.Seconds) * time.Second
		}
	}
	panic("conformance: no timeout row " + name)
}

// stateTimeoutName maps a conntrack state to its Table 2 row.
var stateTimeoutName = map[oState]string{
	oSynSent:     "SYN_SENT",
	oSynRecv:     "SYN_RCVD",
	oEstablished: "ESTABLISHED",
}

// ctRule is one row of the conntrack transition table (§5.3.2/§5.3.3,
// Table 8, Fig. 4). Rules are evaluated in order; the first match applies.
// From == anyState matches every state.
type ctRule struct {
	Event oEvent
	From  oState
	// NeedSawSYNACK gates the rule on a previously-seen SYN/ACK.
	NeedSawSYNACK bool
	// NeedBare gates on a pure ACK segment (flags exactly ACK, no payload).
	NeedBare bool
	// NeedOpposite gates on the segment coming from the peer opposite the
	// recorded origin.
	NeedOpposite bool
	To           oState
	// Restart replaces the whole entry: tracking begins again as a
	// remote-originated ESTABLISHED flow, discarding flags and any installed
	// blocking state.
	Restart bool
	// MarkRemoteSYN sets the role-confusion flag when a local-origin flow
	// sees a SYN from the remote peer (Fig. 4's green paths).
	MarkRemoteSYN bool
	Cite          string
}

const anyState oState = -1

// ctTransitions is the oracle's transition table for segments on an existing
// entry.
var ctTransitions = []ctRule{
	// SYN/ACK completes (or re-completes) a handshake from any half-open
	// state and always records that one was seen.
	{Event: evSYNACK, From: oSynSent, To: oEstablished,
		Cite: "Fig. 4: Ls;Rsa reaches ESTABLISHED"},
	{Event: evSYNACK, From: oSynRecv, To: oEstablished,
		Cite: "Fig. 4: SYN_RCVD + SYN/ACK reaches ESTABLISHED"},
	{Event: evSYNACK, From: oEstablished, To: oEstablished,
		Cite: "§5.3.3: activity refreshes the established timer"},
	// A remote SYN on a local-origin flow confuses the role heuristic; a SYN
	// in SYN_SENT (either side) moves to SYN_RCVD.
	{Event: evSYN, From: oSynSent, To: oSynRecv, MarkRemoteSYN: true,
		Cite: "Table 8: Ls;Rs;Lt PASS via role confusion; Fig. 4 green path"},
	{Event: evSYN, From: oSynRecv, To: oSynRecv, MarkRemoteSYN: true,
		Cite: "Fig. 4: repeated SYNs hold SYN_RCVD"},
	{Event: evSYN, From: oEstablished, To: oEstablished, MarkRemoteSYN: true,
		Cite: "Fig. 4: SYNs on established flows only mark confusion"},
	// An unsolicited bare ACK from the opener's peer in SYN_SENT restarts
	// tracking as a remote-originated connection — the only reading
	// consistent with Table 8's "Ls;Ra;Lt -> PASS" given that remote-first
	// sequences are never valid prefixes.
	{Event: evACK, From: oSynSent, NeedBare: true, NeedOpposite: true,
		To: oEstablished, Restart: true,
		Cite: "Table 8: Ls;Ra;Lt PASS (entry replaced, origin remote)"},
	// ACK in SYN_RCVD promotes only after a real SYN/ACK.
	{Event: evACK, From: oSynRecv, NeedSawSYNACK: true, To: oEstablished,
		Cite: "Fig. 4: three-way handshake completion"},
}

// ctInitialState maps the first segment of a flow to its entry state. Flows
// first seen as data or bare ACKs age like established connections; UDP and
// blocked-IP transports enter here too (as evOther).
var ctInitialState = map[oEvent]oState{
	evSYNACK: oSynRecv,
	evSYN:    oSynSent,
	evACK:    oEstablished,
	evOther:  oEstablished,
}

// enforceKind is how an installed blocking state treats subsequent packets.
//
//tspuvet:closedenum
type enforceKind int

// Enforcement mechanisms (§5.2).
const (
	// enforceRewriteDownstream rewrites remote→local packets to
	// payload-stripped RST/ACK; local→remote packets pass untouched.
	enforceRewriteDownstream enforceKind = iota
	// enforceAllowanceDrop delivers a fixed number of further packets from
	// either side, then drops symmetrically.
	enforceAllowanceDrop
	// enforceThrottle polices the flow's payload bytes with a token bucket.
	enforceThrottle
	// enforceDropBoth drops every packet from both sides.
	enforceDropBoth
)

// behaviorRow describes one SNI/QUIC blocking behavior: its trigger
// precedence, whether the triggering packet itself is delivered, the hold
// lifetime (a timeoutTable row name), and the enforcement mechanism.
type behaviorRow struct {
	Block oBlock
	// Precedence orders trigger evaluation (lower fires first). SNI-IV is a
	// backup: it is evaluated only if SNI-I did not fire (§5.2).
	Precedence int
	// HoldRow names the timeoutTable row for the blocking-state lifetime.
	// Note the paper's quirk: SNI-III throttling has no dedicated row in
	// Table 2 — its hold ages like an ESTABLISHED flow.
	HoldRow string
	// TriggerDelivered reports whether the trigger packet passes (SNI-IV is
	// the only behavior that swallows its trigger).
	TriggerDelivered bool
	Enforce          enforceKind
	// ConfusionExempt: the behavior does not fire when the role heuristic
	// was confused by a remote SYN (Fig. 4 green paths exempt only SNI-I).
	ConfusionExempt bool
	Cite            string
}

// behaviorTable transcribes §5.2's four SNI behaviors and the QUIC filter.
var behaviorTable = []behaviorRow{
	{Block: oSNI3, Precedence: 0, HoldRow: "ESTABLISHED", TriggerDelivered: true,
		Enforce: enforceThrottle,
		Cite:    "§5.2: SNI-III throttling (Feb 26–Mar 4 window), ~650 B/s policing"},
	{Block: oSNI1, Precedence: 1, HoldRow: "SNI-I", TriggerDelivered: true,
		Enforce: enforceRewriteDownstream, ConfusionExempt: true,
		Cite: "§5.2: SNI-I RST/ACK rewriting; Fig. 4: skipped on confused roles"},
	{Block: oSNI4, Precedence: 2, HoldRow: "SNI-IV", TriggerDelivered: false,
		Enforce: enforceDropBoth,
		Cite:    "§5.2: SNI-IV backup drops everything including the trigger"},
	{Block: oSNI2, Precedence: 3, HoldRow: "SNI-II", TriggerDelivered: true,
		Enforce: enforceAllowanceDrop,
		Cite:    "§5.2: SNI-II delivers a few more packets, then drops both ways"},
}

// sni2Allowance is the number of post-trigger packets SNI-II delivers. The
// paper measures "five to eight"; conformance runs configure the device to
// the fixed midpoint so the oracle can predict it exactly.
const sni2Allowance = 6

// throttleRow transcribes the SNI-III policing parameters (§5.2): a policer
// (drops, never queues) at 600–700 B/s — modeled at 650 — with one MSS of
// burst headroom.
var throttleRow = struct {
	RateBps  int
	BurstB   int
	Cite     string
}{650, 1460, "§5.2: policing at 600–700 bytes/s, cf. 2021 Twitter throttling"}

// chVisibleTable records which ClientHello shapes expose a plaintext SNI to
// a bounded single-record structural parser (§5.2 Fig. 13, §8 evasions).
var chVisibleTable = map[CHMode]bool{
	CHNone:    false,
	CHPlain:   true,  // well-formed single record within inspection depth
	CHPadded:  false, // §8: padding pushes the record past the parse depth
	CHPrepend: false, // §8: non-handshake first record defeats the parser
	CHECH:     false, // [40]: encrypted_client_hello carries no plaintext SNI
}

// quicRule transcribes the QUIC fingerprint (§5.2, Fig. 14): UDP to port
// 443, at least 1001 payload bytes, version bytes 0x00000001 at offsets 1–4.
var quicRule = struct {
	Port   uint16
	MinLen int
	Cite   string
}{443, 1001, "Fig. 14: ≥1001-byte UDP:443 payload with version 1"}

// udpKindRow gives the oracle's view of each UDP payload shape in the trace
// vocabulary: its wire length and whether the version bytes spell QUIC v1.
var udpKindTable = map[UDPKind]struct {
	Len  int
	IsV1 bool
}{
	UDPSmall:       {100, false},
	UDPQUICv1:      {1200, true},
	UDPQUICv1Short: {900, true}, // v1 bytes but under the 1001-byte floor
	UDPQUICDraft29: {1200, false},
}

// fragRules transcribes the fragment-engine behavior (§5.3.1, Fig. 3, §7.2).
var fragRules = struct {
	QueueLimit int    // §7.2: the 45-fragment fingerprint
	TimeoutRow string // timeoutTable row for queue lifetime
	Cite       string
}{45, "FRAG", "§5.3.1/Fig. 3: buffer until last, forward unreassembled, " +
	"rewrite TTLs to the first fragment's, poison on duplicate/overlap or >45 fragments"}

// ipBlockRow transcribes IP-based blocking (§5.2): applied to all protocols
// regardless of payload or port; outbound response-shaped TCP (ACK set) is
// rewritten to a payload-stripped RST/ACK, outbound initiation-shaped
// traffic is dropped, inbound from the blocked address passes.
var ipBlockRow = struct {
	Cite string
}{"§5.2: IP blocking drops outbound, rewrites response-shaped packets, ICMP dropped both ways"}
