package conformance

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"tspusim/internal/packet"
)

// traceMagic is the first line of every serialized trace file.
const traceMagic = "tspu-conformance-trace v1"

// Marshal renders the trace in the line-based text format golden files use.
// The format is stable and human-editable so counterexamples can be replayed
// and tweaked by hand (see EXPERIMENTS.md).
func (t *Trace) Marshal() string {
	var b strings.Builder
	b.WriteString(traceMagic + "\n")
	fmt.Fprintf(&b, "seed 0x%x\n", t.Seed)
	for _, s := range t.Steps {
		b.WriteString(s.String() + "\n")
	}
	return b.String()
}

// String renders one step as a trace-file line.
func (s Step) String() string {
	dir := "R"
	if s.Local {
		dir = "L"
	}
	switch s.Kind {
	case StepTCP:
		line := fmt.Sprintf("tcp %s flow=%d flags=0x%02x", dir, s.Flow, uint8(s.Flags))
		if s.CH != CHNone {
			line += fmt.Sprintf(" ch=%s:%s", chModeName(s.CH), s.Domain)
		} else if s.DataLen > 0 {
			line += fmt.Sprintf(" data=%d", s.DataLen)
		}
		return line
	case StepUDP:
		return fmt.Sprintf("udp %s flow=%d kind=%s", dir, s.Flow, udpKindName(s.UDP))
	case StepICMP:
		if s.Blocked {
			return fmt.Sprintf("icmp %s blocked", dir)
		}
		return fmt.Sprintf("icmp %s normal", dir)
	case StepFrag:
		return fmt.Sprintf("frag %s id=%d off=%d len=%d mf=%d ttl=%d",
			dir, s.FragID, s.FragOff, s.FragLen, b2i(s.FragMF), s.TTL)
	case StepFragFlood:
		return fmt.Sprintf("fragflood %s id=%d count=%d ttl=%d", dir, s.FragID, s.Count, s.TTL)
	case StepAdvance:
		return fmt.Sprintf("adv %s", s.Adv)
	case StepPolicy:
		switch s.Pol {
		case PolThrottle:
			return fmt.Sprintf("pol throttle %s", onOff(s.On))
		case PolQUICFilter:
			return fmt.Sprintf("pol quicfilter %s", onOff(s.On))
		case PolAddDomain:
			return fmt.Sprintf("pol add %s %s", s.Set, s.Domain)
		case PolRemoveDomain:
			return fmt.Sprintf("pol remove %s %s", s.Set, s.Domain)
		}
	}
	return "?"
}

// Parse reads a trace serialized by Marshal. Lines starting with '#' and
// blank lines are ignored, so golden files can carry commentary.
func Parse(text string) (*Trace, error) {
	lines := strings.Split(text, "\n")
	t := &Trace{}
	sawMagic := false
	for ln, raw := range lines {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !sawMagic {
			if line != traceMagic {
				return nil, fmt.Errorf("conformance: line %d: missing %q header", ln+1, traceMagic)
			}
			sawMagic = true
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "seed" {
			v, err := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 64)
			if err != nil {
				return nil, fmt.Errorf("conformance: line %d: bad seed: %v", ln+1, err)
			}
			t.Seed = v
			continue
		}
		s, err := parseStep(fields)
		if err != nil {
			return nil, fmt.Errorf("conformance: line %d: %v", ln+1, err)
		}
		t.Steps = append(t.Steps, s)
	}
	if !sawMagic {
		return nil, fmt.Errorf("conformance: empty trace")
	}
	return t, nil
}

func parseStep(fields []string) (Step, error) {
	var s Step
	kv := func(i int, key string) (string, error) {
		if i >= len(fields) {
			return "", fmt.Errorf("missing %s field", key)
		}
		v, ok := strings.CutPrefix(fields[i], key+"=")
		if !ok {
			return "", fmt.Errorf("expected %s=..., got %q", key, fields[i])
		}
		return v, nil
	}
	kvInt := func(i int, key string) (int, error) {
		v, err := kv(i, key)
		if err != nil {
			return 0, err
		}
		return strconv.Atoi(v)
	}
	dir := func(i int) error {
		if i >= len(fields) {
			return fmt.Errorf("missing direction")
		}
		switch fields[i] {
		case "L":
			s.Local = true
		case "R":
			s.Local = false
		default:
			return fmt.Errorf("bad direction %q", fields[i])
		}
		return nil
	}

	switch fields[0] {
	case "tcp":
		s.Kind = StepTCP
		if err := dir(1); err != nil {
			return s, err
		}
		var err error
		if s.Flow, err = kvInt(2, "flow"); err != nil {
			return s, err
		}
		fl, err := kv(3, "flags")
		if err != nil {
			return s, err
		}
		n, err := strconv.ParseUint(strings.TrimPrefix(fl, "0x"), 16, 8)
		if err != nil {
			return s, fmt.Errorf("bad flags: %v", err)
		}
		s.Flags = packet.TCPFlags(n)
		for _, f := range fields[4:] {
			switch {
			case strings.HasPrefix(f, "ch="):
				mode, dom, ok := strings.Cut(strings.TrimPrefix(f, "ch="), ":")
				if !ok {
					return s, fmt.Errorf("bad ch field %q", f)
				}
				m, err := chModeFromName(mode)
				if err != nil {
					return s, err
				}
				s.CH, s.Domain = m, dom
			case strings.HasPrefix(f, "data="):
				d, err := strconv.Atoi(strings.TrimPrefix(f, "data="))
				if err != nil {
					return s, err
				}
				s.DataLen = d
			default:
				return s, fmt.Errorf("unknown tcp field %q", f)
			}
		}
		return s, nil
	case "udp":
		s.Kind = StepUDP
		if err := dir(1); err != nil {
			return s, err
		}
		var err error
		if s.Flow, err = kvInt(2, "flow"); err != nil {
			return s, err
		}
		k, err := kv(3, "kind")
		if err != nil {
			return s, err
		}
		s.UDP, err = udpKindFromName(k)
		return s, err
	case "icmp":
		s.Kind = StepICMP
		if err := dir(1); err != nil {
			return s, err
		}
		if len(fields) < 3 {
			return s, fmt.Errorf("missing icmp target")
		}
		s.Blocked = fields[2] == "blocked"
		return s, nil
	case "frag":
		s.Kind = StepFrag
		if err := dir(1); err != nil {
			return s, err
		}
		var err error
		var id, mf, ttl int
		if id, err = kvInt(2, "id"); err != nil {
			return s, err
		}
		if s.FragOff, err = kvInt(3, "off"); err != nil {
			return s, err
		}
		if s.FragLen, err = kvInt(4, "len"); err != nil {
			return s, err
		}
		if mf, err = kvInt(5, "mf"); err != nil {
			return s, err
		}
		if ttl, err = kvInt(6, "ttl"); err != nil {
			return s, err
		}
		s.FragID, s.FragMF, s.TTL = uint16(id), mf != 0, uint8(ttl)
		return s, nil
	case "fragflood":
		s.Kind = StepFragFlood
		if err := dir(1); err != nil {
			return s, err
		}
		var err error
		var id, ttl int
		if id, err = kvInt(2, "id"); err != nil {
			return s, err
		}
		if s.Count, err = kvInt(3, "count"); err != nil {
			return s, err
		}
		if ttl, err = kvInt(4, "ttl"); err != nil {
			return s, err
		}
		s.FragID, s.TTL = uint16(id), uint8(ttl)
		return s, nil
	case "adv":
		s.Kind = StepAdvance
		if len(fields) < 2 {
			return s, fmt.Errorf("missing duration")
		}
		d, err := time.ParseDuration(fields[1])
		if err != nil {
			return s, err
		}
		s.Adv = d
		return s, nil
	case "pol":
		s.Kind = StepPolicy
		if len(fields) < 3 {
			return s, fmt.Errorf("short pol line")
		}
		switch fields[1] {
		case "throttle":
			s.Pol, s.On = PolThrottle, fields[2] == "on"
		case "quicfilter":
			s.Pol, s.On = PolQUICFilter, fields[2] == "on"
		case "add", "remove":
			if len(fields) < 4 {
				return s, fmt.Errorf("short pol add/remove line")
			}
			s.Pol = PolAddDomain
			if fields[1] == "remove" {
				s.Pol = PolRemoveDomain
			}
			s.Set, s.Domain = fields[2], fields[3]
		default:
			return s, fmt.Errorf("unknown pol op %q", fields[1])
		}
		return s, nil
	}
	return s, fmt.Errorf("unknown step kind %q", fields[0])
}

func chModeName(m CHMode) string {
	switch m {
	case CHPlain:
		return "plain"
	case CHPadded:
		return "padded"
	case CHPrepend:
		return "prepend"
	case CHECH:
		return "ech"
	}
	return "none"
}

func chModeFromName(s string) (CHMode, error) {
	switch s {
	case "plain":
		return CHPlain, nil
	case "padded":
		return CHPadded, nil
	case "prepend":
		return CHPrepend, nil
	case "ech":
		return CHECH, nil
	}
	return CHNone, fmt.Errorf("unknown ch mode %q", s)
}

func udpKindName(k UDPKind) string {
	switch k {
	case UDPQUICv1:
		return "quicv1"
	case UDPQUICv1Short:
		return "quicv1short"
	case UDPQUICDraft29:
		return "draft29"
	}
	return "small"
}

func udpKindFromName(s string) (UDPKind, error) {
	switch s {
	case "small":
		return UDPSmall, nil
	case "quicv1":
		return UDPQUICv1, nil
	case "quicv1short":
		return UDPQUICv1Short, nil
	case "draft29":
		return UDPQUICDraft29, nil
	}
	return UDPSmall, fmt.Errorf("unknown udp kind %q", s)
}

func onOff(on bool) string {
	if on {
		return "on"
	}
	return "off"
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
