package conformance

import (
	"sort"
	"strings"
	"time"

	"tspusim/internal/packet"
)

// Oracle is the paper-derived second implementation of the TSPU state
// machine. It interprets the tables in tables.go over a trace and predicts
// the exact observation stream — delivered packets (with rewrites and TTL
// rewriting) and device-state counters — that a conforming device must
// produce. It holds no reference to internal/tspu.
//
// The oracle does depend on the shared trace vocabulary (Flows, Step) and on
// the executor's payload builders for wire *lengths*; those are inputs, not
// semantics — every behavioral decision comes from tables.go.
type Oracle struct {
	now   time.Duration
	pol   oPolicy
	flows map[int]*oFlow
	frags map[oFragKey]*oQueue

	handled, fragBuf, dropped, rewritten, throttled int
	trig                                            [6]int // indexed by oBlock
}

type oPolicy struct {
	sni1, sni2, sni4, thr map[string]bool
	throttleActive        bool
	quicFilter            bool
}

// oFlow is one oracle conntrack entry.
type oFlow struct {
	state        oState
	originLocal  bool
	expires      time.Duration
	sawRemoteSYN bool
	sawSYNACK    bool
	block        *oBlockState
	ipKnown      bool
}

// oBlockState is an installed blocking hold.
type oBlockState struct {
	typ       oBlock
	until     time.Duration
	allowance int
	// token bucket state for enforceThrottle, replicated with the same
	// arithmetic order as a policing bucket: refill, cap, then deduct.
	tokens float64
	last   time.Duration
}

type oFragKey struct {
	local bool
	id    uint16
}

type ofrag struct {
	off, ln int
	ttl     uint8
	mf      bool
}

type oQueue struct {
	frags    []ofrag
	firstTTL uint8
	haveTTL  bool
	total    int
	poisoned bool
	deadline time.Duration
}

// NewOracle returns an oracle holding the conformance base policy.
func NewOracle() *Oracle {
	o := &Oracle{
		flows: make(map[int]*oFlow),
		frags: make(map[oFragKey]*oQueue),
		pol: oPolicy{
			sni1:           domainSet(baseSNI1),
			sni2:           domainSet(baseSNI2),
			sni4:           domainSet(baseSNI4),
			thr:            domainSet(baseThrottle),
			throttleActive: true,
			quicFilter:     true,
		},
	}
	return o
}

func domainSet(ds []string) map[string]bool {
	m := make(map[string]bool, len(ds))
	for _, d := range ds {
		m[strings.ToLower(d)] = true
	}
	return m
}

// matches reports whether name or a parent domain of name is in set.
func (p *oPolicy) matches(set map[string]bool, name string) bool {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	for d := range set {
		if name == d || strings.HasSuffix(name, "."+d) {
			return true
		}
	}
	return false
}

// classify maps an SNI to the behaviors it triggers under the current
// policy, keyed by oBlock.
func (p *oPolicy) classify(sni string) map[oBlock]bool {
	return map[oBlock]bool{
		oSNI1: p.matches(p.sni1, sni),
		oSNI2: p.matches(p.sni2, sni),
		oSNI4: p.matches(p.sni4, sni),
		oSNI3: p.throttleActive && p.matches(p.thr, sni),
	}
}

// Apply consumes one trace step and returns the delivered-packet observation
// lines the device must produce for it, in delivery order.
func (o *Oracle) Apply(s Step) []string {
	switch s.Kind {
	case StepAdvance:
		o.advance(s.Adv)
		return nil
	case StepPolicy:
		o.applyPolicy(s)
		return nil
	case StepTCP:
		return o.stepTCP(s)
	case StepUDP:
		return o.stepUDP(s)
	case StepICMP:
		return o.stepICMP(s)
	case StepFrag:
		return o.stepFrag(s.Local, s.FragID, s.FragOff, s.FragLen, s.FragMF, s.TTL)
	case StepFragFlood:
		var out []string
		for i := 0; i < s.Count; i++ {
			out = append(out, o.stepFrag(s.Local, s.FragID, i*8, 8, true, s.TTL)...)
		}
		return out
	}
	return nil
}

// advance moves the virtual clock and fires fragment-queue timeouts whose
// deadline falls at or before the new time (the event queue fires events
// with timestamps <= the run deadline). Conntrack and blocking holds expire
// lazily, at next lookup, exactly like the device.
func (o *Oracle) advance(d time.Duration) {
	o.now += d
	for k, q := range o.frags {
		if q.deadline <= o.now {
			delete(o.frags, k)
		}
	}
}

func (o *Oracle) applyPolicy(s Step) {
	switch s.Pol {
	case PolThrottle:
		o.pol.throttleActive = s.On
	case PolQUICFilter:
		o.pol.quicFilter = s.On
	case PolAddDomain, PolRemoveDomain:
		var set map[string]bool
		switch s.Set {
		case "sni1":
			set = o.pol.sni1
		case "sni2":
			set = o.pol.sni2
		case "sni4":
			set = o.pol.sni4
		case "throttle":
			set = o.pol.thr
		default:
			return
		}
		d := strings.ToLower(s.Domain)
		if s.Pol == PolAddDomain {
			set[d] = true
		} else {
			delete(set, d)
		}
	}
}

// classifyTCP maps a segment to its transition-table event, also reporting
// whether it is a bare ACK (flags exactly ACK, empty payload).
func classifyTCP(flags packet.TCPFlags, plen int) (oEvent, bool) {
	switch {
	case flags.Has(packet.FlagsSYNACK):
		return evSYNACK, false
	case flags.Has(packet.FlagSYN):
		return evSYN, false
	case flags.Has(packet.FlagACK):
		return evACK, flags == packet.FlagACK && plen == 0
	}
	return evOther, false
}

// observe runs the conntrack transition table for one segment on the flow
// slot and returns the (possibly replaced) entry. Mirrors the lazy-expiry
// discipline: a stale entry is removed at lookup and tracking restarts.
func (o *Oracle) observe(slot int, ev oEvent, bare, dirLocal bool) *oFlow {
	f := o.flows[slot]
	if f != nil && o.now >= f.expires {
		delete(o.flows, slot)
		f = nil
	}
	if f == nil {
		st := ctInitialState[ev]
		f = &oFlow{
			state:       st,
			originLocal: dirLocal,
			sawSYNACK:   ev == evSYNACK,
			expires:     o.now + timeoutOf(stateTimeoutName[st]),
		}
		o.flows[slot] = f
		return f
	}
	if ev == evSYNACK {
		f.sawSYNACK = true
	}
	for _, r := range ctTransitions {
		if r.Event != ev {
			continue
		}
		if r.From != anyState && r.From != f.state {
			continue
		}
		if r.NeedBare && !bare {
			continue
		}
		if r.NeedOpposite && f.originLocal == dirLocal {
			continue
		}
		if r.NeedSawSYNACK && !f.sawSYNACK {
			continue
		}
		if r.MarkRemoteSYN && !dirLocal && f.originLocal {
			f.sawRemoteSYN = true
		}
		if r.Restart {
			delete(o.flows, slot)
			nf := &oFlow{
				state:       r.To,
				originLocal: false,
				expires:     o.now + timeoutOf(stateTimeoutName[r.To]),
			}
			o.flows[slot] = nf
			return nf
		}
		f.state = r.To
		break
	}
	// Activity refreshes the state timer but never shortens an installed
	// blocking hold.
	exp := o.now + timeoutOf(stateTimeoutName[f.state])
	if f.block != nil && f.block.until > exp {
		exp = f.block.until
	}
	f.expires = exp
	return f
}

// install puts a blocking hold on the flow and extends its lifetime to cover
// the hold, as the device's conntrack does.
func (o *Oracle) install(f *oFlow, typ oBlock, holdRow string, allowance int) {
	o.trig[typ]++
	b := &oBlockState{typ: typ, until: o.now + timeoutOf(holdRow), allowance: allowance}
	if typ == oSNI3 {
		b.tokens = float64(throttleRow.BurstB)
		b.last = o.now
	}
	f.block = b
	if b.until > f.expires {
		f.expires = b.until
	}
}

// enforceOf maps a block type to its enforcement mechanism.
func enforceOf(typ oBlock) enforceKind {
	if typ == oQUIC {
		return enforceDropBoth
	}
	for _, row := range behaviorTable {
		if row.Block == typ {
			return row.Enforce
		}
	}
	return enforceDropBoth
}

// admit replicates the policing bucket: refill at the table rate capped at
// the burst, then pass zero-length packets unconditionally, then deduct.
func (b *oBlockState) admit(n int, now time.Duration) bool {
	if now > b.last {
		b.tokens += float64(throttleRow.RateBps) * (now - b.last).Seconds()
		if b.tokens > float64(throttleRow.BurstB) {
			b.tokens = float64(throttleRow.BurstB)
		}
		b.last = now
	}
	if n == 0 {
		return true
	}
	if float64(n) <= b.tokens {
		b.tokens -= float64(n)
		return true
	}
	return false
}

func (o *Oracle) stepTCP(s Step) []string {
	o.handled++
	fl := Flows[s.Flow]
	plen := len(buildTCPPayload(s))
	ev, bare := classifyTCP(s.Flags, plen)
	sport, dport := fl.LPort, fl.RPort
	if !s.Local {
		sport, dport = fl.RPort, fl.LPort
	}
	passLine := deliverLine(s.Local, fmtTCPObs(sport, dport, s.Flags, plen))

	// IP-based blocking comes first and sidesteps all SNI machinery
	// (ipBlockRow): observe for the flow table, decide once per entry, then
	// rewrite response-shaped outbound packets and drop the rest; inbound
	// from the blocked address passes.
	if fl.Remote == BlockedAddr {
		f := o.observe(s.Flow, ev, bare, s.Local)
		if !f.ipKnown {
			f.ipKnown = true
			o.trig[oIPBlock]++
		}
		if s.Local {
			if s.Flags.Has(packet.FlagACK) {
				o.rewritten++
				return []string{deliverLine(true, fmtTCPObs(sport, dport, packet.FlagsRSTACK, 0))}
			}
			o.dropped++
			return nil
		}
		return []string{passLine}
	}

	f := o.observe(s.Flow, ev, bare, s.Local)

	// An unexpired hold enforces before any new trigger detection.
	if b := f.block; b != nil && o.now < b.until {
		switch enforceOf(b.typ) {
		case enforceRewriteDownstream:
			if !s.Local {
				o.rewritten++
				return []string{deliverLine(false, fmtTCPObs(sport, dport, packet.FlagsRSTACK, 0))}
			}
			return []string{passLine}
		case enforceAllowanceDrop:
			if b.allowance > 0 {
				b.allowance--
				return []string{passLine}
			}
			o.dropped++
			return nil
		case enforceThrottle:
			if b.admit(plen, o.now) {
				return []string{passLine}
			}
			o.throttled++
			return nil
		case enforceDropBoth:
			o.dropped++
			return nil
		}
	}

	// Trigger detection: local→remote payloads to :443 only, and never on
	// remote-originated flows (§5.3.2: remote-first sequences are not valid
	// prefixes).
	if s.Local && plen > 0 && fl.RPort == quicRule.Port {
		if !f.originLocal {
			return []string{passLine}
		}
		sni := ""
		if chVisibleTable[s.CH] {
			sni = s.Domain
		}
		if sni != "" {
			cls := o.pol.classify(sni)
			confused := f.originLocal && f.sawRemoteSYN
			rows := make([]behaviorRow, len(behaviorTable))
			copy(rows, behaviorTable)
			sort.Slice(rows, func(i, j int) bool { return rows[i].Precedence < rows[j].Precedence })
			for _, row := range rows {
				if !cls[row.Block] {
					continue
				}
				if row.ConfusionExempt && confused {
					continue
				}
				allowance := 0
				if row.Enforce == enforceAllowanceDrop {
					allowance = sni2Allowance
				}
				o.install(f, row.Block, row.HoldRow, allowance)
				if row.TriggerDelivered {
					return []string{passLine}
				}
				o.dropped++
				return nil
			}
		}
	}
	return []string{passLine}
}

func (o *Oracle) stepUDP(s Step) []string {
	o.handled++
	fl := Flows[s.Flow]
	row := udpKindTable[s.UDP]
	sport, dport := fl.LPort, fl.RPort
	if !s.Local {
		sport, dport = fl.RPort, fl.LPort
	}
	f := o.observe(s.Flow, evOther, false, s.Local)
	if b := f.block; b != nil && o.now < b.until {
		o.dropped++
		return nil
	}
	if o.pol.quicFilter && s.Local && fl.RPort == quicRule.Port &&
		row.Len >= quicRule.MinLen && row.IsV1 {
		// The fingerprinted Initial itself is delivered; everything after is
		// dropped for the hold's lifetime.
		o.install(f, oQUIC, "QUIC", 0)
	}
	return []string{deliverLine(s.Local, fmtUDPObs(sport, dport, row.Len))}
}

func (o *Oracle) stepICMP(s Step) []string {
	o.handled++
	if s.Blocked {
		// ICMP involving blocked addresses is dropped in both directions.
		o.dropped++
		return nil
	}
	return []string{deliverLine(s.Local, fmtICMPObs(8))}
}

func (o *Oracle) stepFrag(local bool, id uint16, off, ln int, mf bool, ttl uint8) []string {
	o.handled++
	if !mf && off == 0 {
		// Not a fragment at all: an opaque packet the device passes through.
		return []string{deliverLine(local, fmtRawObs(id, 0, ln, false, ttl))}
	}
	o.fragBuf++
	key := oFragKey{local: local, id: id}
	q := o.frags[key]
	if q == nil {
		q = &oQueue{total: -1, deadline: o.now + timeoutOf(fragRules.TimeoutRow)}
		o.frags[key] = q
	}
	if q.poisoned {
		return nil
	}
	for _, fr := range q.frags {
		if off < fr.off+fr.ln && fr.off < off+ln {
			q.poisoned = true
			q.frags = nil
			return nil
		}
	}
	if len(q.frags)+1 > fragRules.QueueLimit {
		q.poisoned = true
		q.frags = nil
		return nil
	}
	q.frags = append(q.frags, ofrag{off: off, ln: ln, ttl: ttl, mf: mf})
	if off == 0 {
		q.firstTTL = ttl
		q.haveTTL = true
	}
	if !mf {
		q.total = off + ln
	}
	if !q.complete() {
		return nil
	}
	// Complete: forward every fragment individually in offset order, TTLs
	// rewritten to the zero-offset fragment's arrival TTL (Fig. 3).
	delete(o.frags, key)
	sort.Slice(q.frags, func(i, j int) bool { return q.frags[i].off < q.frags[j].off })
	var out []string
	for _, fr := range q.frags {
		out = append(out, deliverLine(local, fmtRawObs(id, fr.off, fr.ln, fr.mf, q.firstTTL)))
	}
	return out
}

func (q *oQueue) complete() bool {
	if q.total < 0 || !q.haveTTL {
		return false
	}
	frs := make([]ofrag, len(q.frags))
	copy(frs, q.frags)
	sort.Slice(frs, func(i, j int) bool { return frs[i].off < frs[j].off })
	covered := 0
	for _, fr := range frs {
		if fr.off != covered {
			return false
		}
		covered += fr.ln
	}
	return covered == q.total
}

// StateLine renders the oracle's predicted device-state counters in the
// executor's fixed format.
func (o *Oracle) StateLine() string {
	return fmtStateObs(o.now, len(o.flows), len(o.frags),
		o.handled, o.fragBuf, o.dropped, o.rewritten, o.throttled, o.trig)
}
