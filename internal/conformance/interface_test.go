package conformance

import (
	"testing"

	"tspusim/internal/censor"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
)

// ifaceBox routes every middlebox call through an interface-typed
// censor.Censor value instead of the concrete *tspu.Device. If the interface
// extraction ever grows adapter logic — a copy, a cast, a default — this is
// where it would diverge.
type ifaceBox struct {
	c censor.Censor
}

func (b ifaceBox) Name() string { return b.c.Name() }

func (b ifaceBox) Handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	return b.c.Handle(pipe, pkt, dir)
}

func wrapAsCensor(mb netem.Middlebox) netem.Middlebox {
	c, ok := mb.(censor.Censor)
	if !ok {
		panic("conformance: device under test does not implement censor.Censor")
	}
	return ifaceBox{c: c}
}

// TestInterfaceTypedDeviceConformance replays the full generated corpus
// through a TSPU reached only via the censor.Censor interface and requires
// zero divergence from the oracle AND byte-identical logs against the
// concrete-typed run — the promotion of the interface must be a pure
// type-level seam.
func TestInterfaceTypedDeviceConformance(t *testing.T) {
	const scenarios = 1000
	wrapped := Options{WrapDevice: wrapAsCensor}
	for n := 0; n < scenarios; n++ {
		tr := Generate(baseSeed, n)
		res := Check(tr, wrapped)
		if res.DiffLine >= 0 {
			t.Fatalf("scenario %d (seed 0x%x) diverges via interface dispatch:\n%s\ntrace:\n%s",
				n, tr.Seed, res.DiffDesc, tr.Marshal())
		}
		// Every 53rd scenario, also diff against the concrete-typed device
		// log (a full double run of the corpus would double the suite's
		// wall time for no additional fault classes).
		if n%53 == 0 {
			concrete := RunDevice(tr, Options{})
			if concrete != res.DeviceLog {
				t.Fatalf("scenario %d: interface-typed log differs from concrete-typed log", n)
			}
		}
	}
}

// TestInterfaceIntrospectionHooks: the introspection methods the measure
// probes rely on must be reachable through the interface and agree with the
// concrete device — here via a trivial smoke trace.
func TestInterfaceIntrospectionHooks(t *testing.T) {
	tr := Generate(baseSeed, 0)
	var seen censor.Censor
	opts := Options{WrapDevice: func(mb netem.Middlebox) netem.Middlebox {
		seen = mb.(censor.Censor)
		return mb
	}}
	if res := Check(tr, opts); res.DiffLine >= 0 {
		t.Fatalf("smoke trace diverges: %s", res.DiffDesc)
	}
	if seen == nil {
		t.Fatal("WrapDevice never called")
	}
	if seen.ConntrackSize() < 0 || seen.PendingFragQueues() < 0 {
		t.Fatal("introspection hooks returned negative sizes")
	}
	if c := seen.Counters(); c.Dropped < 0 || c.Rewritten < 0 {
		t.Fatal("counters negative")
	}
}
