package conformance

import (
	"fmt"
	"strings"
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/quicx"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
	"tspusim/internal/tspu"
)

// Base policy vocabulary: the domains every conformance run blocks. The
// device-side tspu.Policy and the oracle's mirror are both built from these
// lists (mirroring the paper's observed policy: dw.com et al. under SNI-I,
// out-registry domains under SNI-II, the twitter.com/t.co overlap between
// SNI-I and SNI-IV, fbcdn.net throttled).
var (
	baseSNI1     = []string{"dw.com", "twitter.com"}
	baseSNI2     = []string{"play.google.com", "nordvpn.com"}
	baseSNI4     = []string{"twitter.com", "t.co"}
	baseThrottle = []string{"fbcdn.net"}
)

// BasePolicy returns the tspu.Policy every conformance device starts from.
func BasePolicy() *tspu.Policy {
	p := tspu.NewPolicy()
	p.SNI1Domains.Add(baseSNI1...)
	p.SNI2Domains.Add(baseSNI2...)
	p.SNI4Domains.Add(baseSNI4...)
	p.ThrottleDomains.Add(baseThrottle...)
	p.ThrottleActive = true
	p.BlockedIPs[BlockedAddr] = true
	return p
}

// Options configures one differential run.
type Options struct {
	// DeviceTimeouts overrides the device's timeout table (the oracle always
	// uses the paper's values) — the injectable constant the mutation test
	// uses to prove the harness catches an off-by-one.
	DeviceTimeouts *tspu.StateTimeouts
	// Middlebox replaces the TSPU device under test (comparator runs against
	// the ispdpi middleboxes). Policy steps become device-side no-ops.
	Middlebox netem.Middlebox
	// NoState omits the per-step device-state lines; required for comparator
	// middleboxes, which expose no TSPU-shaped counters.
	NoState bool
	// WrapDevice, if set, wraps the constructed middlebox before it is
	// attached to the link. The censor-interface conformance test uses it to
	// route every Handle call through interface dispatch (censor.Censor)
	// while state lines still read the concrete device — proving the
	// interface seam adds no behavioral surface.
	WrapDevice func(netem.Middlebox) netem.Middlebox
}

// Result is the outcome of one differential run.
type Result struct {
	DeviceLog string
	OracleLog string
	// DiffLine is the 0-based index of the first differing log line, or -1
	// when the logs are byte-identical.
	DiffLine int
	// DiffDesc describes the first divergence.
	DiffDesc string
}

// Check replays tr against both the device and the oracle and diffs the
// observation streams.
func Check(tr *Trace, opts Options) *Result {
	dev := RunDevice(tr, opts)
	ora := RunOracle(tr, opts)
	line, desc := Diff(dev, ora)
	return &Result{DeviceLog: dev, OracleLog: ora, DiffLine: line, DiffDesc: desc}
}

// RunDevice replays tr against a real tspu.Device (or Options.Middlebox) on
// a two-host netem link and returns the observation log: one line per packet
// delivered at either endpoint, plus (unless NoState) one device-state line
// per step.
func RunDevice(tr *Trace, opts Options) string {
	s := sim.New()
	net := netem.New(s)
	local := net.AddHost("local")
	li := local.AddIface(LocalAddr)
	local.AddDefaultRoute(li)
	remote := net.AddHost("remote")
	ri := remote.AddIface(RemoteAddr)
	remote.AddDefaultRoute(ri)
	// The remote host stands in for every external server, including the
	// IP-blocked endpoint.
	remote.SetPromiscuous(true)
	link := net.Connect(li, ri, 0)

	var log []string
	local.SetHandler(func(p *packet.Packet) { log = append(log, deliverLine(false, obsOf(p))) })
	remote.SetHandler(func(p *packet.Packet) { log = append(log, deliverLine(true, obsOf(p))) })

	var dev *tspu.Device
	var ctrl *tspu.Controller
	mb := opts.Middlebox
	if mb == nil {
		cfg := tspu.Config{
			Name:     "dut",
			Sim:      s,
			Rand:     sim.NewRand(sim.StreamSeed(tr.Seed, "conformance-device")),
			LocalDir: netem.AtoB,
			// Pin the SNI-II allowance so the oracle can predict it exactly.
			SNI2AllowanceMin: sni2Allowance,
			SNI2AllowanceMax: sni2Allowance,
		}
		if opts.DeviceTimeouts != nil {
			cfg.Timeouts = *opts.DeviceTimeouts
		}
		dev = tspu.NewDevice(cfg)
		ctrl = tspu.NewController(BasePolicy())
		ctrl.Register(dev)
		mb = dev
	}
	if opts.WrapDevice != nil {
		mb = opts.WrapDevice(mb)
	}
	link.Attach(mb)

	for _, st := range tr.Steps {
		switch st.Kind {
		case StepAdvance:
			s.RunUntil(s.Now() + st.Adv)
		case StepPolicy:
			if ctrl != nil {
				ctrl.Update(func(p *tspu.Policy) { applyPolicyStep(p, st) })
			}
		default:
			for _, pkt := range buildPackets(st) {
				if stepTravelsLocal(st) {
					local.Send(pkt)
				} else {
					remote.Send(pkt)
				}
			}
			s.RunUntil(s.Now())
		}
		if !opts.NoState && dev != nil {
			stats := dev.Stats()
			log = append(log, fmtStateObs(s.Now(), dev.ConntrackSize(), dev.PendingFragQueues(),
				stats.Handled, stats.FragBuffers, stats.Dropped, stats.Rewritten, stats.Throttled,
				[6]int{
					stats.Triggers[tspu.IPBlock],
					stats.Triggers[tspu.SNI1],
					stats.Triggers[tspu.SNI2],
					stats.Triggers[tspu.SNI3],
					stats.Triggers[tspu.SNI4],
					stats.Triggers[tspu.QUICBlock],
				}))
		}
	}
	return strings.Join(log, "\n") + "\n"
}

// RunOracle replays tr against the table-driven oracle and returns the
// predicted observation log in the same format as RunDevice.
func RunOracle(tr *Trace, opts Options) string {
	o := NewOracle()
	var log []string
	for _, st := range tr.Steps {
		log = append(log, o.Apply(st)...)
		if !opts.NoState {
			log = append(log, o.StateLine())
		}
	}
	return strings.Join(log, "\n") + "\n"
}

// Diff returns the 0-based index of the first differing line between two
// logs, or -1 if they are byte-identical, plus a human-readable description.
func Diff(dev, ora string) (int, string) {
	if dev == ora {
		return -1, ""
	}
	dl := strings.Split(dev, "\n")
	ol := strings.Split(ora, "\n")
	n := len(dl)
	if len(ol) > n {
		n = len(ol)
	}
	for i := 0; i < n; i++ {
		var a, b string
		if i < len(dl) {
			a = dl[i]
		}
		if i < len(ol) {
			b = ol[i]
		}
		if a != b {
			return i, fmt.Sprintf("first divergence at line %d:\n  device: %q\n  oracle: %q", i+1, a, b)
		}
	}
	return len(dl), "logs differ only in length"
}

// stepTravelsLocal reports the injection side for a packet-bearing step.
func stepTravelsLocal(s Step) bool { return s.Local }

// buildPackets compiles one packet-bearing step into wire packets.
func buildPackets(s Step) []*packet.Packet {
	switch s.Kind {
	case StepTCP:
		fl := Flows[s.Flow]
		payload := buildTCPPayload(s)
		if s.Local {
			return []*packet.Packet{packet.NewTCP(LocalAddr, fl.Remote, fl.LPort, fl.RPort, s.Flags, 0, 0, payload)}
		}
		return []*packet.Packet{packet.NewTCP(fl.Remote, LocalAddr, fl.RPort, fl.LPort, s.Flags, 0, 0, payload)}
	case StepUDP:
		fl := Flows[s.Flow]
		payload := buildUDPPayload(s.UDP)
		if s.Local {
			return []*packet.Packet{packet.NewUDP(LocalAddr, fl.Remote, fl.LPort, fl.RPort, payload)}
		}
		return []*packet.Packet{packet.NewUDP(fl.Remote, LocalAddr, fl.RPort, fl.LPort, payload)}
	case StepICMP:
		peer := RemoteAddr
		if s.Blocked {
			peer = BlockedAddr
		}
		if s.Local {
			return []*packet.Packet{packet.NewICMPEcho(LocalAddr, peer, 7, 1)}
		}
		return []*packet.Packet{packet.NewICMPEcho(peer, LocalAddr, 7, 1)}
	case StepFrag:
		return []*packet.Packet{buildFrag(s.Local, s.FragID, s.FragOff, s.FragLen, s.FragMF, s.TTL)}
	case StepFragFlood:
		out := make([]*packet.Packet, 0, s.Count)
		for i := 0; i < s.Count; i++ {
			out = append(out, buildFrag(s.Local, s.FragID, i*8, 8, true, s.TTL))
		}
		return out
	}
	return nil
}

func buildFrag(local bool, id uint16, off, ln int, mf bool, ttl uint8) *packet.Packet {
	src, dst := LocalAddr, RemoteAddr
	if !local {
		src, dst = RemoteAddr, LocalAddr
	}
	return &packet.Packet{
		IP: packet.IPv4{
			ID: id, MF: mf, FragOffset: uint16(off),
			TTL: ttl, Protocol: packet.ProtoTCP,
			Src: src, Dst: dst,
		},
		RawPayload: make([]byte, ln),
	}
}

// chPaddingLen pushes the padded ClientHello variant well past the device's
// 512-byte inspection depth.
const chPaddingLen = 600

// buildTCPPayload compiles a TCP step's payload bytes. Shared with the
// oracle for wire lengths only.
func buildTCPPayload(s Step) []byte {
	var spec tlsx.ClientHelloSpec
	switch s.CH {
	case CHNone:
		if s.DataLen <= 0 {
			return nil
		}
		b := make([]byte, s.DataLen)
		for i := range b {
			b[i] = 'x'
		}
		return b
	case CHPlain:
		spec = tlsx.ClientHelloSpec{ServerName: s.Domain}
	case CHPadded:
		spec = tlsx.ClientHelloSpec{ServerName: s.Domain, PaddingLen: chPaddingLen}
	case CHPrepend:
		spec = tlsx.ClientHelloSpec{ServerName: s.Domain, PrependRecord: true}
	case CHECH:
		spec = tlsx.ClientHelloSpec{ECH: true}
	}
	return spec.Build()
}

// buildUDPPayload compiles a UDP step's payload bytes, matching the lengths
// and version bytes the oracle's udpKindTable declares.
func buildUDPPayload(k UDPKind) []byte {
	switch k {
	case UDPQUICv1:
		return quicx.BuildInitial(quicx.Version1, udpKindTable[UDPQUICv1].Len)
	case UDPQUICv1Short:
		return quicx.BuildInitial(quicx.Version1, udpKindTable[UDPQUICv1Short].Len)
	case UDPQUICDraft29:
		return quicx.BuildInitial(quicx.VersionDraft29, udpKindTable[UDPQUICDraft29].Len)
	}
	b := make([]byte, udpKindTable[UDPSmall].Len)
	for i := range b {
		b[i] = 'u'
	}
	return b
}

// applyPolicyStep applies a StepPolicy mutation to the device-side policy.
func applyPolicyStep(p *tspu.Policy, s Step) {
	switch s.Pol {
	case PolThrottle:
		p.ThrottleActive = s.On
	case PolQUICFilter:
		p.QUICFilter = s.On
	case PolAddDomain, PolRemoveDomain:
		var set *tspu.DomainSet
		switch s.Set {
		case "sni1":
			set = p.SNI1Domains
		case "sni2":
			set = p.SNI2Domains
		case "sni4":
			set = p.SNI4Domains
		case "throttle":
			set = p.ThrottleDomains
		default:
			return
		}
		if s.Pol == PolAddDomain {
			set.Add(s.Domain)
		} else {
			set.Remove(s.Domain)
		}
	}
}

// Observation-line formatters, shared verbatim by the device-side recorder
// and the oracle so a diff can only come from behavior, never formatting.

func deliverLine(localToRemote bool, body string) string {
	if localToRemote {
		return "d L>R " + body
	}
	return "d R>L " + body
}

// obsOf formats a delivered packet.
func obsOf(p *packet.Packet) string {
	switch {
	case p.TCP != nil:
		return fmtTCPObs(p.TCP.SrcPort, p.TCP.DstPort, p.TCP.Flags, len(p.TCP.Payload))
	case p.UDP != nil:
		return fmtUDPObs(p.UDP.SrcPort, p.UDP.DstPort, len(p.UDP.Payload))
	case p.ICMP != nil:
		return fmtICMPObs(uint8(p.ICMP.Type))
	default:
		return fmtRawObs(p.IP.ID, int(p.IP.FragOffset), len(p.RawPayload), p.IP.MF, p.IP.TTL)
	}
}

func fmtTCPObs(sport, dport uint16, flags packet.TCPFlags, plen int) string {
	return fmt.Sprintf("tcp %d>%d flags=0x%02x len=%d", sport, dport, uint8(flags), plen)
}

func fmtUDPObs(sport, dport uint16, plen int) string {
	return fmt.Sprintf("udp %d>%d len=%d", sport, dport, plen)
}

func fmtICMPObs(typ uint8) string {
	return fmt.Sprintf("icmp type=%d", typ)
}

func fmtRawObs(id uint16, off, ln int, mf bool, ttl uint8) string {
	return fmt.Sprintf("raw id=%d off=%d len=%d mf=%d ttl=%d", id, off, ln, b2i(mf), ttl)
}

func fmtStateObs(t time.Duration, ct, frag, handled, fragBuf, dropped, rewritten, throttled int, trig [6]int) string {
	return fmt.Sprintf("st t=%s ct=%d frag=%d h=%d fb=%d drop=%d rw=%d thr=%d trig=[ip=%d s1=%d s2=%d s3=%d s4=%d q=%d]",
		t, ct, frag, handled, fragBuf, dropped, rewritten, throttled,
		trig[0], trig[1], trig[2], trig[3], trig[4], trig[5])
}
