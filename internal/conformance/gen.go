package conformance

import (
	"fmt"
	"time"

	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

// GenDomains is the SNI pool scenarios draw from: every base-policy domain,
// subdomains that must match by the label-walk rule, near-misses that must
// NOT match (xt.co vs t.co, notdw.com vs dw.com), and unblocked controls.
var GenDomains = []string{
	"dw.com", "news.dw.com",
	"twitter.com", "api.twitter.com",
	"t.co", "xt.co",
	"play.google.com", "nordvpn.com",
	"fbcdn.net", "static.fbcdn.net",
	"example.org", "notdw.com",
}

// advMenu is the clock-advance vocabulary: every Table 2 boundary, one
// second either side of it, and the fragment-queue timeout, so generated
// traces routinely land exactly on, just before, and just after each
// measured lifetime.
var advMenu = []time.Duration{
	1 * time.Second, 3 * time.Second, 4 * time.Second, 5 * time.Second,
	6 * time.Second, 10 * time.Second, 15 * time.Second, 30 * time.Second,
	39 * time.Second, 40 * time.Second, 41 * time.Second,
	59 * time.Second, 60 * time.Second, 61 * time.Second,
	74 * time.Second, 75 * time.Second, 76 * time.Second,
	104 * time.Second, 105 * time.Second, 106 * time.Second,
	300 * time.Second,
	419 * time.Second, 420 * time.Second, 421 * time.Second,
	479 * time.Second, 480 * time.Second, 481 * time.Second,
}

// sessionDomains weights session bursts toward blocked names so every SNI
// behavior triggers routinely, with one unblocked control.
var sessionDomains = []string{
	"dw.com", "news.dw.com", "twitter.com", "t.co",
	"play.google.com", "nordvpn.com", "fbcdn.net", "example.org",
}

// holdBoundaryMenu lands probes exactly on, just before, and just after the
// SNI-IV (40 s), SNI-I (75 s), and SNI-II/QUIC (420 s) hold lifetimes.
var holdBoundaryMenu = []time.Duration{
	39 * time.Second, 40 * time.Second, 41 * time.Second,
	74 * time.Second, 75 * time.Second, 76 * time.Second,
	419 * time.Second, 420 * time.Second, 421 * time.Second,
}

// ctBoundaryMenu straddles the half-open conntrack lifetimes (SYN_SENT 60 s,
// SYN_RCVD 105 s).
var ctBoundaryMenu = []time.Duration{
	59 * time.Second, 60 * time.Second, 61 * time.Second,
	104 * time.Second, 105 * time.Second, 106 * time.Second,
}

// quicBoundaryMenu straddles the QUIC blocking-state lifetime (420 s).
var quicBoundaryMenu = []time.Duration{
	419 * time.Second, 420 * time.Second, 421 * time.Second,
}

var flagMenu = []packet.TCPFlags{
	packet.FlagSYN,
	packet.FlagsSYNACK,
	packet.FlagACK,
	packet.FlagsPSHACK,
	packet.FlagsFINACK,
	packet.FlagRST,
	packet.FlagsRSTACK,
	0,
}

// Generate derives the nth scenario from the base seed via sim.StreamSeed,
// so scenario n is a pure function of (base, n) — independent of how many
// other scenarios were generated and in what order.
func Generate(base uint64, n int) *Trace {
	return FromSeed(sim.StreamSeed(base, fmt.Sprintf("scenario-%05d", n)))
}

// FromSeed builds one randomized trace from a scenario seed.
func FromSeed(seed uint64) *Trace {
	rng := sim.NewRand(seed)
	target := rng.IntRange(12, 40)
	t := &Trace{Seed: seed}
	for len(t.Steps) < target {
		appendRandom(rng, t)
	}
	return t
}

func appendRandom(rng *sim.Rand, t *Trace) {
	switch roll := rng.Intn(100); {
	case roll < 30:
		t.Steps = append(t.Steps, randTCP(rng))
	case roll < 40:
		appendSession(rng, t)
	case roll < 45:
		appendHalfOpen(rng, t)
	case roll < 55:
		t.Steps = append(t.Steps, Step{Kind: StepAdvance, Adv: sim.Pick(rng, advMenu)})
	case roll < 68:
		t.Steps = append(t.Steps, randFrag(rng))
	case roll < 73:
		appendFragBurst(rng, t)
	case roll < 78:
		t.Steps = append(t.Steps, Step{
			Kind: StepFragFlood, Local: rng.Intn(10) < 7,
			FragID: uint16(sim.Pick(rng, []int{21, 22})),
			Count:  sim.Pick(rng, []int{10, 44, 45, 46, 60}),
			TTL:    64,
		})
	case roll < 88:
		t.Steps = append(t.Steps, randUDP(rng))
	case roll < 93:
		t.Steps = append(t.Steps, Step{
			Kind: StepICMP, Local: rng.Intn(10) < 7, Blocked: rng.Intn(2) == 0,
		})
	default:
		t.Steps = append(t.Steps, randPolicy(rng))
	}
}

func randTCP(rng *sim.Rand) Step {
	s := Step{
		Kind:  StepTCP,
		Local: rng.Intn(10) < 7,
		Flow:  rng.Intn(4),
		Flags: sim.Pick(rng, flagMenu),
	}
	switch c := rng.Intn(10); {
	case c < 4:
		switch m := rng.Intn(10); {
		case m < 7:
			s.CH = CHPlain
		case m < 8:
			s.CH = CHPadded
		case m < 9:
			s.CH = CHPrepend
		default:
			s.CH = CHECH
		}
		s.Domain = sim.Pick(rng, GenDomains)
	case c < 7:
		s.DataLen = sim.Pick(rng, []int{1, 4, 100, 517, 1460})
	}
	return s
}

// appendSession emits a coherent TLS-style opening — local SYN, remote
// SYN/ACK, local ACK, local ClientHello — so the flow's entry is
// local-origin, unconfused, and eligible for every SNI trigger. Most bursts
// follow up with a clock advance onto a blocking-state boundary and a
// bidirectional probe, the shape that distinguishes a hold that expired from
// one still enforced.
func appendSession(rng *sim.Rand, t *Trace) {
	if rng.Intn(5) == 0 {
		appendQUICSession(rng, t)
		return
	}
	flow := rng.Intn(2)
	t.Steps = append(t.Steps,
		Step{Kind: StepTCP, Local: true, Flow: flow, Flags: packet.FlagSYN},
		Step{Kind: StepTCP, Local: false, Flow: flow, Flags: packet.FlagsSYNACK},
		Step{Kind: StepTCP, Local: true, Flow: flow, Flags: packet.FlagACK},
		Step{Kind: StepTCP, Local: true, Flow: flow, Flags: packet.FlagsPSHACK,
			CH: CHPlain, Domain: sim.Pick(rng, sessionDomains)},
	)
	if rng.Intn(10) < 6 {
		t.Steps = append(t.Steps,
			Step{Kind: StepAdvance, Adv: sim.Pick(rng, holdBoundaryMenu)},
			Step{Kind: StepTCP, Local: false, Flow: flow, Flags: packet.FlagsPSHACK, DataLen: 100},
			Step{Kind: StepTCP, Local: true, Flow: flow, Flags: packet.FlagACK, DataLen: 100},
		)
	}
}

// appendQUICSession emits a QUIC v1 Initial that trips the filter, then
// usually probes across the 420 s hold boundary from both sides.
func appendQUICSession(rng *sim.Rand, t *Trace) {
	t.Steps = append(t.Steps, Step{Kind: StepUDP, Local: true, Flow: 4, UDP: UDPQUICv1})
	if rng.Intn(10) < 7 {
		t.Steps = append(t.Steps,
			Step{Kind: StepAdvance, Adv: sim.Pick(rng, quicBoundaryMenu)},
			Step{Kind: StepUDP, Local: true, Flow: 4,
				UDP: sim.Pick(rng, []UDPKind{UDPQUICv1, UDPSmall})},
			Step{Kind: StepUDP, Local: false, Flow: 4, UDP: UDPSmall},
		)
	}
}

// appendHalfOpen leaves a handshake half-open, ages it across a SYN_SENT or
// SYN_RCVD lifetime boundary, then pokes it with a segment whose effect
// depends on whether the entry survived — followed by a ClientHello whose
// trigger eligibility depends on the origin/confusion bookkeeping that
// resulted. This is the shape that distinguishes the Table 2 half-open
// timeouts.
func appendHalfOpen(rng *sim.Rand, t *Trace) {
	flow := rng.Intn(2)
	first := Step{Kind: StepTCP, Local: true, Flow: flow, Flags: packet.FlagSYN}
	if rng.Intn(4) == 0 {
		first = Step{Kind: StepTCP, Local: false, Flow: flow, Flags: packet.FlagsSYNACK}
	}
	t.Steps = append(t.Steps, first,
		Step{Kind: StepAdvance, Adv: sim.Pick(rng, ctBoundaryMenu)})
	switch rng.Intn(3) {
	case 0:
		t.Steps = append(t.Steps,
			Step{Kind: StepTCP, Local: false, Flow: flow, Flags: packet.FlagSYN})
	case 1:
		t.Steps = append(t.Steps,
			Step{Kind: StepTCP, Local: false, Flow: flow, Flags: packet.FlagsSYNACK})
	case 2:
		t.Steps = append(t.Steps,
			Step{Kind: StepTCP, Local: true, Flow: flow, Flags: packet.FlagACK})
	}
	t.Steps = append(t.Steps,
		Step{Kind: StepTCP, Local: true, Flow: flow, Flags: packet.FlagsPSHACK,
			CH: CHPlain, Domain: sim.Pick(rng, sessionDomains)})
}

func randFrag(rng *sim.Rand) Step {
	return Step{
		Kind:    StepFrag,
		Local:   rng.Intn(10) < 7,
		FragID:  uint16(sim.Pick(rng, []int{11, 12, 13})),
		FragOff: 8 * rng.Intn(6),
		FragLen: 8 * rng.IntRange(1, 3),
		FragMF:  rng.Intn(10) < 7,
		TTL:     uint8(sim.Pick(rng, []int{3, 12, 33, 64})),
	}
}

// appendFragBurst emits a coherent fragment set covering one datagram
// contiguously — the final fragment clears MF — in a random arrival order,
// with per-fragment TTLs, so the buffer-until-last release and the TTL
// rewrite of Fig. 3 are exercised on every run.
func appendFragBurst(rng *sim.Rand, t *Trace) {
	local := rng.Intn(10) < 7
	id := uint16(sim.Pick(rng, []int{14, 15}))
	n := rng.IntRange(2, 4)
	steps := make([]Step, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		ln := 8 * rng.IntRange(1, 3)
		steps = append(steps, Step{
			Kind: StepFrag, Local: local, FragID: id,
			FragOff: off, FragLen: ln, FragMF: i != n-1,
			TTL: uint8(sim.Pick(rng, []int{3, 12, 33, 64})),
		})
		off += ln
	}
	rng.Shuffle(len(steps), func(i, j int) { steps[i], steps[j] = steps[j], steps[i] })
	t.Steps = append(t.Steps, steps...)
}

func randUDP(rng *sim.Rand) Step {
	s := Step{
		Kind:  StepUDP,
		Local: rng.Intn(10) < 8,
		Flow:  4 + rng.Intn(2),
	}
	switch k := rng.Intn(10); {
	case k < 3:
		s.UDP = UDPSmall
	case k < 6:
		s.UDP = UDPQUICv1
	case k < 8:
		s.UDP = UDPQUICv1Short
	default:
		s.UDP = UDPQUICDraft29
	}
	return s
}

func randPolicy(rng *sim.Rand) Step {
	s := Step{Kind: StepPolicy}
	switch p := rng.Intn(10); {
	case p < 2:
		s.Pol, s.On = PolThrottle, rng.Intn(2) == 0
	case p < 4:
		s.Pol, s.On = PolQUICFilter, rng.Intn(2) == 0
	case p < 7:
		s.Pol = PolAddDomain
		s.Set = sim.Pick(rng, []string{"sni1", "sni2", "sni4", "throttle"})
		s.Domain = sim.Pick(rng, GenDomains)
	default:
		s.Pol = PolRemoveDomain
		s.Set = sim.Pick(rng, []string{"sni1", "sni2", "sni4", "throttle"})
		s.Domain = sim.Pick(rng, GenDomains)
	}
	return s
}
