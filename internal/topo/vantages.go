package topo

import (
	"net/netip"

	"tspusim/internal/hostnet"
	"tspusim/internal/httpx"
	"tspusim/internal/ispdpi"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/registry"
	"tspusim/internal/sim"
	"tspusim/internal/tspu"
	"tspusim/internal/workload"
)

// Per-device trigger-miss rates chosen so the measured Table 1 lands near
// the paper's values. ER-Telecom's single device is markedly less reliable
// than the others — the paper traced the difference to Rostelecom and OBIT
// having two devices on path (§5.2.1).
var deviceFailureRates = map[string]map[tspu.BlockType]float64{
	Rostelecom: {
		tspu.SNI1: 0.00084, tspu.SNI2: 0.000025, tspu.SNI4: 0.0027,
		tspu.QUICBlock: 0.0002, tspu.IPBlock: 0.0,
	},
	ERTelecom: {
		tspu.SNI1: 0.0, tspu.SNI2: 0.0176, tspu.SNI4: 0.0219,
		tspu.QUICBlock: 0.0093, tspu.IPBlock: 0.00045,
	},
	OBIT: {
		tspu.SNI1: 0.0014, tspu.SNI2: 0.00005, tspu.SNI4: 0.0004,
		tspu.QUICBlock: 0.0, tspu.IPBlock: 0.0002,
	},
}

// Fractions of the recently-added registry sample each party enforces. The
// TSPU and the Rostelecom/OBIT resolver numbers are Fig. 6's (9,655, 1,302
// and 3,943 of 10,000); ER-Telecom's resolver count is not reported in the
// paper — we model it as the best-maintained of the three.
const (
	tspuRegistryFraction = 0.9655
	rtRegistryFraction   = 0.1302
	obitRegistryFraction = 0.3943
	ertRegistryFraction  = 0.87
)

func (l *Lab) buildWorkloadAndPolicy() {
	r := l.Rand.Fork("workload")
	l.Tranco = workload.GenTranco(r, workload.TrancoOptions{N: l.Opts.TrancoN, CLBL: l.Opts.TrancoN / 8})
	l.Registry = workload.GenRegistry(r, workload.RegistryOptions{N: l.Opts.RegistryN})

	l.RegistryDump = registry.FromWorkload(r, l.Registry)

	// Mark a slice of Tranco as registry-listed (popular sites that ended up
	// in the registry) so ISP blocklists have Tranco coverage too.
	for i := range l.Tranco {
		if !l.Tranco[i].FromCLBL && r.Bool(0.03) {
			l.Tranco[i].InRegistry = true
		}
	}

	// TSPU enforcement: nearly the whole registry sample...
	registryBlocked := sim.Sample(r, l.Registry, int(tspuRegistryFraction*float64(len(l.Registry))))
	l.RegistryTSPUBlocked = len(registryBlocked)
	// ...plus out-registry Tranco targets: Google services, circumvention
	// tools, news, and pornography (§6.3).
	var trancoBlocked []workload.Domain
	for _, d := range l.Tranco {
		inReg := d.InRegistry
		sensitive := d.Category == workload.CatCircumvention ||
			d.Category == workload.CatPornography ||
			d.Category == workload.CatInformativeMedia ||
			d.Category == workload.CatProvocative
		if inReg || (d.FromCLBL && sensitive && r.Bool(0.75)) || (!d.FromCLBL && sensitive && r.Bool(0.08)) {
			trancoBlocked = append(trancoBlocked, d)
		}
	}

	l.Controller.Update(func(p *tspu.Policy) {
		for _, wk := range workload.WellKnownDomains() {
			if wk.SNI1 {
				p.SNI1Domains.Add(wk.Name)
			}
			if wk.SNI2 {
				p.SNI2Domains.Add(wk.Name)
			}
			if wk.SNI4 {
				p.SNI4Domains.Add(wk.Name)
			}
			if wk.Throttle {
				p.ThrottleDomains.Add(wk.Name)
			}
		}
		p.SNI1Domains.Add(workload.Names(registryBlocked)...)
		p.SNI1Domains.Add(workload.Names(trancoBlocked)...)
		// The Tor entry node plus six more out-registry IPs (VPN providers
		// and Google services in the paper).
		p.BlockedIPs[l.TorAddr] = true
		for i := 0; i < 6; i++ {
			p.BlockedIPs[netip.AddrFrom4([4]byte{203, 0, 113, byte(200 + i)})] = true
		}
	})
}

// ispBlocklist builds one ISP's stale blocklist: a fraction of the registry
// sample plus whatever Tranco registry-listed names it tracked.
func (l *Lab) ispBlocklist(name string, registryFrac float64) *tspu.DomainSet {
	r := l.Rand.Fork("ispbl/" + name)
	bl := tspu.NewDomainSet()
	bl.Add(workload.Names(sim.Sample(r, l.Registry, int(registryFrac*float64(len(l.Registry)))))...)
	for _, d := range l.Tranco {
		if d.InRegistry && r.Bool(registryFrac) {
			bl.Add(d.Name)
		}
	}
	return bl
}

func (l *Lab) buildVantages() {
	core := l.Net.Node("ru-core")

	// --- ER-Telecom: vp - access - [TSPU] - agg - core (one device).
	l.buildVantage(vantageSpec{
		name:        ERTelecom,
		prefix:      netem.MustPrefix("10.2.0.0/16"),
		vpAddr:      packet.MustAddr("10.2.0.2"),
		resolver:    packet.MustAddr("10.2.0.53"),
		blockpage:   packet.MustAddr("192.0.2.2"),
		regFraction: ertRegistryFraction,
		core:        core,
		secondDev:   false,
	})

	// --- Rostelecom: vp - access - [TSPU sym] - agg = [TSPU up-only] = edge - core.
	l.buildVantage(vantageSpec{
		name:        Rostelecom,
		prefix:      netem.MustPrefix("10.1.0.0/16"),
		vpAddr:      packet.MustAddr("10.1.0.2"),
		resolver:    packet.MustAddr("10.1.0.53"),
		blockpage:   packet.MustAddr("192.0.2.1"),
		regFraction: rtRegistryFraction,
		core:        core,
		secondDev:   true,
	})

	// --- OBIT: vp - access - [TSPU sym] - agg, then two transit ISPs with
	// upstream-only devices: US-bound via "rostelecom-transit", Paris-bound
	// via "rascom-transit" (§7.1.1).
	l.buildOBIT(core)
}

type vantageSpec struct {
	name        string
	prefix      netip.Prefix
	vpAddr      netip.Addr
	resolver    netip.Addr
	blockpage   netip.Addr
	regFraction float64
	core        *netem.Node
	secondDev   bool
}

func (l *Lab) buildVantage(spec vantageSpec) {
	n := l.Net
	vp := n.AddHost(spec.name + "-vp")
	access := n.AddRouter(spec.name + "-access")
	agg := n.AddRouter(spec.name + "-agg")

	vpi := vp.AddIface(spec.vpAddr)
	accDown := access.AddIface(firstAddr(spec.prefix, 1))
	n.Connect(vpi, accDown, l.Opts.LinkDelay)
	vp.AddDefaultRoute(vpi)

	symLink, accUp, aggDown := l.link(access, agg)
	sym := l.newDevice(spec.name+"-tspu-sym", netem.AtoB, deviceFailureRates[spec.name])
	symLink.Attach(sym)

	access.AddRoute(spec.prefix, accDown)
	access.AddDefaultRoute(accUp)

	devices := []*tspu.Device{sym}
	defer func() { l.Vantages[spec.name].SymLink = symLink }()

	if spec.secondDev {
		// Asymmetric pair agg = edge: upstream crosses the device link,
		// downstream returns over a clean parallel link.
		edge := n.AddRouter(spec.name + "-edge")
		upLink, aggUp, edgeDownA := l.link(agg, edge)
		_, aggDown2, edgeDownB := l.link(agg, edge)
		upOnly := l.newDevice(spec.name+"-tspu-uponly", netem.AtoB, deviceFailureRates[spec.name])
		upLink.Attach(upOnly)
		devices = append(devices, upOnly)

		agg.AddRoute(spec.prefix, aggDown)
		agg.AddDefaultRoute(aggUp)
		_ = aggDown2
		_, edgeUp, coreDown := l.link(edge, spec.core)
		edge.AddDefaultRoute(edgeUp)
		edge.AddRoute(spec.prefix, edgeDownB) // return path avoids the device
		_ = edgeDownA
		spec.core.AddRoute(spec.prefix, coreDown)
	} else {
		agg.AddRoute(spec.prefix, aggDown)
		_, aggUp, coreDown := l.link(agg, spec.core)
		agg.AddDefaultRoute(aggUp)
		spec.core.AddRoute(spec.prefix, coreDown)
	}

	l.finishVantage(spec, vp, access, devices)
}

func (l *Lab) buildOBIT(core *netem.Node) {
	n := l.Net
	spec := vantageSpec{
		name:        OBIT,
		prefix:      netem.MustPrefix("10.3.0.0/16"),
		vpAddr:      packet.MustAddr("10.3.0.2"),
		resolver:    packet.MustAddr("10.3.0.53"),
		blockpage:   packet.MustAddr("192.0.2.3"),
		regFraction: obitRegistryFraction,
	}
	vp := n.AddHost(spec.name + "-vp")
	access := n.AddRouter(spec.name + "-access")
	agg := n.AddRouter(spec.name + "-agg")

	vpi := vp.AddIface(spec.vpAddr)
	accDown := access.AddIface(firstAddr(spec.prefix, 1))
	n.Connect(vpi, accDown, l.Opts.LinkDelay)
	vp.AddDefaultRoute(vpi)

	symLink, accUp, aggDown := l.link(access, agg)
	sym := l.newDevice("obit-tspu-sym", netem.AtoB, deviceFailureRates[OBIT])
	symLink.Attach(sym)
	defer func() { l.Vantages[OBIT].SymLink = symLink }()
	access.AddRoute(spec.prefix, accDown)
	access.AddDefaultRoute(accUp)
	agg.AddRoute(spec.prefix, aggDown)

	// Transit A ("rostelecom-transit"): default/US-bound. Upstream crosses
	// the device link; return to OBIT comes back over the clean parallel.
	rt := n.AddRouter("rostelecom-transit")
	rtUpLink, aggUpA, rtDownA := l.link(agg, rt)
	_, aggDownA, rtDownB := l.link(agg, rt)
	rtDev := l.newDevice("rt-transit-tspu-uponly", netem.AtoB, deviceFailureRates[OBIT])
	rtUpLink.Attach(rtDev)
	_ = aggDownA
	_ = rtDownA
	_, rtUp, coreDownA := l.link(rt, core)
	rt.AddDefaultRoute(rtUp)
	rt.AddRoute(spec.prefix, rtDownB)
	core.AddRoute(spec.prefix, coreDownA)

	// Transit B ("rascom-transit"): Paris-bound upstream only. Return
	// traffic from Paris reaches OBIT via transit A, so a plain device on
	// this link only ever sees upstream traffic.
	rascom := n.AddRouter("rascom-transit")
	rascomLink, aggUpB, _ := l.link(agg, rascom)
	rascomDev := l.newDevice("rascom-transit-tspu-uponly", netem.AtoB, deviceFailureRates[OBIT])
	rascomLink.Attach(rascomDev)
	_, rascomUp, _ := l.link(rascom, core)
	rascom.AddDefaultRoute(rascomUp)

	agg.AddDefaultRoute(aggUpA)
	agg.AddRoute(netem.MustPrefix("198.51.100.0/24"), aggUpB)

	l.finishVantage(spec, vp, access, []*tspu.Device{sym, rtDev, rascomDev})
}

// finishVantage installs the vantage's stack, resolver host, and blockpage
// host, and records the Vantage.
func (l *Lab) finishVantage(spec vantageSpec, vp *netem.Node, access *netem.Node, devices []*tspu.Device) {
	n := l.Net
	// Resolver host hangs off the access router.
	res := n.AddHost(spec.name + "-resolver")
	resi := res.AddIface(spec.resolver)
	accRes := access.AddIface(firstAddr(spec.prefix, 54))
	n.Connect(resi, accRes, l.Opts.LinkDelay)
	res.AddDefaultRoute(resi)
	access.AddRoute(netip.PrefixFrom(spec.resolver, 32), accRes)

	// Blockpage host hangs off ru-core so every ISP can reach it.
	bp := n.AddHost(spec.name + "-blockpage")
	bpi := bp.AddIface(spec.blockpage)
	core := n.Node("ru-core")
	coreAddr, _ := l.transferPair()
	corei := core.AddIface(coreAddr)
	n.Connect(bpi, corei, l.Opts.LinkDelay)
	bp.AddDefaultRoute(bpi)
	core.AddRoute(netip.PrefixFrom(spec.blockpage, 32), corei)

	bpStack := hostnet.NewStack(n, bp)
	httpx.Serve(bpStack, 80, func(req *httpx.Request) *httpx.Response {
		return &httpx.Response{
			Status: 200, Reason: "OK",
			Headers: map[string]string{"Server": spec.name + "-blockpage"},
			Body:    ispdpi.BlockpageHTML(spec.name, req.Host),
		}
	})

	stack := hostnet.NewStack(n, vp)
	resolverStack := hostnet.NewStack(n, res)
	bl := l.ispBlocklist(spec.name, spec.regFraction)
	resolver := ispdpi.NewBlockpageResolver(resolverStack, spec.name, spec.blockpage, bl, func(name string) []netip.Addr {
		return []netip.Addr{realAddrFor(name)}
	})

	l.Vantages[spec.name] = &Vantage{
		Name:         spec.name,
		Stack:        stack,
		Devices:      devices,
		SymDeviceHop: 2,
		Resolver:     resolver,
		ResolverAddr: spec.resolver,
		Blockpage:    spec.blockpage,
		ISPBlocklist: bl,
	}
}

// realAddrFor deterministically maps a domain to an uncensored "real" IP in
// the US measurement network.
func realAddrFor(name string) netip.Addr {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return netip.AddrFrom4([4]byte{203, 0, 113, byte(20 + h%180)})
}

// firstAddr returns prefix base + offset in the last octet.
func firstAddr(p netip.Prefix, last byte) netip.Addr {
	a := p.Addr().As4()
	a[3] = last
	return netip.AddrFrom4(a)
}
