package topo

import (
	"strings"
	"testing"

	"tspusim/internal/dnsx"
	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/tlsx"
)

func smallLab(t *testing.T) *Lab {
	t.Helper()
	return Build(Options{Seed: 1, Endpoints: 200, ASes: 12, EchoServers: 30, TrancoN: 300, RegistryN: 300})
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(Options{Seed: 5, Endpoints: 100, ASes: 8, TrancoN: 100, RegistryN: 100})
	b := Build(Options{Seed: 5, Endpoints: 100, ASes: 8, TrancoN: 100, RegistryN: 100})
	if len(a.Endpoints) != len(b.Endpoints) {
		t.Fatal("endpoint counts differ")
	}
	for i := range a.Endpoints {
		ea, eb := a.Endpoints[i], b.Endpoints[i]
		if ea.Addr != eb.Addr || ea.Port != eb.Port || ea.BehindTSPU != eb.BehindTSPU {
			t.Fatalf("endpoint %d differs: %+v vs %+v", i, ea, eb)
		}
	}
	if len(a.Devices) != len(b.Devices) {
		t.Fatal("device counts differ")
	}
}

func TestVantagesReachUS(t *testing.T) {
	l := smallLab(t)
	l.US1.Listen(443, hostnet.ListenOptions{})
	for name, v := range l.Vantages {
		conn := v.Stack.Dial(l.US1.Addr(), 443, hostnet.DialOptions{})
		l.Sim.Run()
		if conn.State != hostnet.StateEstablished {
			t.Fatalf("%s cannot reach US measurement machine: %v", name, conn.State)
		}
		conn.Close()
	}
}

func TestVantagesBlockedOnTriggerSNI(t *testing.T) {
	l := smallLab(t)
	l.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	ch := (&tlsx.ClientHelloSpec{ServerName: "twitter.com"}).Build()
	for name, v := range l.Vantages {
		conn := v.Stack.Dial(l.US1.Addr(), 443, hostnet.DialOptions{})
		conn.OnEstablished = func() { conn.Send(ch) }
		l.Sim.Run()
		if !conn.ResetSeen {
			t.Fatalf("%s: twitter.com CH not blocked", name)
		}
		conn.Close()
	}
}

func TestControlDomainUnblocked(t *testing.T) {
	l := smallLab(t)
	l.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	ch := (&tlsx.ClientHelloSpec{ServerName: "control-not-blocked.example"}).Build()
	for name, v := range l.Vantages {
		conn := v.Stack.Dial(l.US1.Addr(), 443, hostnet.DialOptions{})
		conn.OnEstablished = func() { conn.Send(ch) }
		l.Sim.Run()
		if conn.ResetSeen || len(conn.Received) == 0 {
			t.Fatalf("%s: control domain interfered with", name)
		}
		conn.Close()
	}
}

func TestUniformBlockingAcrossVantages(t *testing.T) {
	// The same registry domain must be blocked (or not) identically at all
	// three vantages: the §5.1 uniformity criterion.
	l := smallLab(t)
	l.US1.Listen(443, hostnet.ListenOptions{})
	for _, d := range l.Registry[:40] {
		verdicts := map[string]bool{}
		for name, v := range l.Vantages {
			ch := (&tlsx.ClientHelloSpec{ServerName: d.Name}).Build()
			conn := v.Stack.Dial(l.US1.Addr(), 443, hostnet.DialOptions{})
			conn.OnEstablished = func() { conn.Send(ch) }
			l.Sim.Run()
			verdicts[name] = conn.ResetSeen
			conn.Close()
		}
		if verdicts[Rostelecom] != verdicts[ERTelecom] || verdicts[ERTelecom] != verdicts[OBIT] {
			t.Fatalf("domain %s verdicts differ: %v", d.Name, verdicts)
		}
	}
}

func TestTorIPBlocked(t *testing.T) {
	l := smallLab(t)
	for name, v := range l.Vantages {
		conn := v.Stack.Dial(l.TorAddr, 9001, hostnet.DialOptions{})
		l.Sim.Run()
		if len(conn.Packets) != 0 {
			t.Fatalf("%s reached the blocked Tor IP", name)
		}
		conn.Close()
	}
	// The Paris measurement machine in the same DC is NOT blocked (control).
	l.Paris.Listen(9001, hostnet.ListenOptions{})
	v := l.Vantages[ERTelecom]
	conn := v.Stack.Dial(l.Paris.Addr(), 9001, hostnet.DialOptions{})
	l.Sim.Run()
	if conn.State != hostnet.StateEstablished {
		t.Fatal("Paris control machine unreachable")
	}
}

func TestISPResolverBlockpages(t *testing.T) {
	l := smallLab(t)
	v := l.Vantages[OBIT]
	cl := dnsx.NewClient(v.Stack, v.ResolverAddr)
	// Pick a domain on the ISP blocklist.
	var target string
	for _, d := range l.Registry {
		if v.ISPBlocklist.Contains(d.Name) {
			target = d.Name
			break
		}
	}
	if target == "" {
		t.Fatal("ISP blocklist empty")
	}
	var got *dnsx.Message
	cl.Lookup(target, func(m *dnsx.Message) { got = m })
	l.Sim.Run()
	if got == nil || len(got.Answers) == 0 || got.Answers[0].Addr != v.Blockpage {
		t.Fatalf("blockpage not returned: %+v", got)
	}
}

func TestBlockpageServesHTML(t *testing.T) {
	l := smallLab(t)
	v := l.Vantages[ERTelecom]
	conn := v.Stack.Dial(v.Blockpage, 80, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send([]byte("GET / HTTP/1.1\r\n\r\n")) }
	l.Sim.Run()
	if len(conn.Received) == 0 {
		t.Fatal("no blockpage content")
	}
}

func TestISPBlocklistsAreStaleSubsets(t *testing.T) {
	l := smallLab(t)
	rt := l.Vantages[Rostelecom].ISPBlocklist.Len()
	obit := l.Vantages[OBIT].ISPBlocklist.Len()
	ert := l.Vantages[ERTelecom].ISPBlocklist.Len()
	if !(rt < obit && obit < ert) {
		t.Fatalf("blocklist sizes rt=%d obit=%d ert=%d, want rt < obit < ert", rt, obit, ert)
	}
	if l.RegistryTSPUBlocked <= ert {
		t.Fatalf("TSPU coverage %d not above best ISP %d", l.RegistryTSPUBlocked, ert)
	}
}

func TestVantageDeviceCounts(t *testing.T) {
	l := smallLab(t)
	if n := len(l.Vantages[ERTelecom].Devices); n != 1 {
		t.Fatalf("ER-Telecom devices = %d, want 1", n)
	}
	if n := len(l.Vantages[Rostelecom].Devices); n != 2 {
		t.Fatalf("Rostelecom devices = %d, want 2", n)
	}
	if n := len(l.Vantages[OBIT].Devices); n != 3 {
		t.Fatalf("OBIT devices = %d, want 3 (sym + two transit)", n)
	}
}

func TestEndpointsRespondToProbes(t *testing.T) {
	l := smallLab(t)
	responded := 0
	for _, ep := range l.Endpoints[:50] {
		conn := l.Paris.Dial(ep.Addr, ep.Port, hostnet.DialOptions{})
		l.Sim.Run()
		if conn.State == hostnet.StateEstablished {
			responded++
		}
		conn.Close()
	}
	if responded != 50 {
		t.Fatalf("only %d/50 endpoints respond to plain SYN", responded)
	}
}

func TestEndpointPopulationShape(t *testing.T) {
	l := Build(Options{Seed: 3, Endpoints: 4000, ASes: 160, TrancoN: 100, RegistryN: 100})
	behind := 0
	byPort := map[uint16]int{}
	byPortTSPU := map[uint16]int{}
	echo := 0
	for _, ep := range l.Endpoints {
		if ep.BehindTSPU {
			behind++
			byPortTSPU[ep.Port]++
		}
		byPort[ep.Port]++
		if ep.Echo {
			echo++
		}
	}
	frac := float64(behind) / float64(len(l.Endpoints))
	if frac < 0.15 || frac > 0.38 {
		t.Fatalf("TSPU-positive fraction = %.3f, want near the paper's 0.2531", frac)
	}
	if byPort[7547] == 0 || byPort[80] == 0 {
		t.Fatal("missing port populations")
	}
	frac7547 := float64(byPortTSPU[7547]) / float64(byPort[7547])
	frac80 := float64(byPortTSPU[80]) / float64(byPort[80])
	// Fig. 9: hosts with port 7547 open are far more likely to sit behind a
	// TSPU than hosts on server ports like 80 (paper: >3x at 4M endpoints;
	// at lab scale the per-AS sampling noise admits ~1.5x as the floor).
	if frac7547 < 1.5*frac80 {
		t.Fatalf("port 7547 rate %.2f not strongly above port 80 rate %.2f", frac7547, frac80)
	}
	if echo < 20 {
		t.Fatalf("echo servers = %d", echo)
	}
}

func TestDeviceDepthDistribution(t *testing.T) {
	l := Build(Options{Seed: 9, Endpoints: 4000, ASes: 150, TrancoN: 100, RegistryN: 100})
	within2, total := 0, 0
	for _, ep := range l.Endpoints {
		if ep.DeviceHops > 0 && ep.BehindTSPU {
			total++
			if ep.DeviceHops <= 2 {
				within2++
			}
		}
	}
	if total == 0 {
		t.Fatal("no devices placed")
	}
	frac := float64(within2) / float64(total)
	if frac < 0.45 || frac > 0.95 {
		t.Fatalf("within-2-hops fraction = %.2f, want near the paper's ~0.69", frac)
	}
}

func TestEchoServersEcho(t *testing.T) {
	l := smallLab(t)
	var echoEp *Endpoint
	for _, ep := range l.Endpoints {
		if ep.Echo && !ep.BehindTSPU && !ep.BehindUpstreamOnly {
			echoEp = ep
			break
		}
	}
	if echoEp == nil {
		t.Skip("no clean echo endpoint in this seed")
	}
	conn := l.Paris.Dial(echoEp.Addr, 7, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send([]byte("probe")) }
	l.Sim.Run()
	if string(conn.Received) != "probe" {
		t.Fatalf("echo = %q", conn.Received)
	}
}

func TestFragScanGroundTruthSignal(t *testing.T) {
	// For a symmetric-TSPU endpoint: fragmented SYN with 45 fragments gets a
	// SYN/ACK, 46 gets silence. For a clean endpoint both respond.
	l := smallLab(t)
	var tspuEp, cleanEp *Endpoint
	for _, ep := range l.Endpoints {
		if ep.BehindTSPU && tspuEp == nil {
			tspuEp = ep
		}
		if !ep.BehindTSPU && !ep.BehindUpstreamOnly && cleanEp == nil {
			cleanEp = ep
		}
	}
	if tspuEp == nil || cleanEp == nil {
		t.Fatal("missing endpoint types")
	}
	probe := func(ep *Endpoint, frags int, id uint16) bool {
		got := false
		prev := l.Paris.Tap // no accessor; use a one-shot conn-less probe
		_ = prev
		sport := l.Paris.EphemeralPort()
		p := packet.NewTCP(l.Paris.Addr(), ep.Addr, sport, ep.Port, packet.FlagSYN, 1, 0, nil)
		p.IP.ID = id
		fs, err := packet.FragmentCount(p, frags)
		if err != nil {
			t.Fatal(err)
		}
		l.Paris.Tap(func(pk *packet.Packet) {
			if pk.TCP != nil && pk.TCP.Flags.Has(packet.FlagsSYNACK) && pk.IP.Src == ep.Addr && pk.TCP.DstPort == sport {
				got = true
			}
		})
		for _, f := range fs {
			l.Paris.Send(f)
		}
		l.Sim.Run()
		return got
	}
	if !probe(tspuEp, 45, 1001) {
		t.Fatal("TSPU endpoint: 45 fragments got no response")
	}
	if probe(tspuEp, 46, 1002) {
		t.Fatal("TSPU endpoint: 46 fragments got a response")
	}
	if !probe(cleanEp, 45, 1003) || !probe(cleanEp, 46, 1004) {
		t.Fatal("clean endpoint failed 45/46 control")
	}
}

func TestRegistryDumpMatchesSample(t *testing.T) {
	l := smallLab(t)
	if len(l.RegistryDump) != len(l.Registry) {
		t.Fatalf("dump entries = %d, registry = %d", len(l.RegistryDump), len(l.Registry))
	}
	// Every dump entry's domain is in the sample and carries metadata.
	names := map[string]bool{}
	for _, d := range l.Registry {
		names[d.Name] = true
	}
	for _, e := range l.RegistryDump {
		if !names[e.Domain] {
			t.Fatalf("dump domain %q not in sample", e.Domain)
		}
		if e.Added.IsZero() || len(e.IPs) == 0 || e.Agency == "" {
			t.Fatalf("incomplete entry: %+v", e)
		}
	}
}

func TestUpstreamOnlyDevicesNeverSeeDownstream(t *testing.T) {
	// The structural invariant behind §7.1.1: every upstream-only device's
	// entire traffic history is local→remote. Drive bidirectional traffic
	// everywhere, then check the OBIT transit devices saw only one way.
	l := smallLab(t)
	l.US1.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("resp")) },
	})
	l.Paris.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("resp")) },
	})
	for _, dst := range []*hostnet.Stack{l.US1, l.Paris} {
		for _, v := range l.Vantages {
			conn := v.Stack.Dial(dst.Addr(), 443, hostnet.DialOptions{})
			conn.OnEstablished = func() { conn.Send([]byte("hello-data")) }
			l.Sim.Run()
			conn.Close()
		}
	}
	// OBIT's transit devices are indices 1 and 2 (sym is 0).
	obit := l.Vantages[OBIT]
	for _, dev := range obit.Devices[1:] {
		if dev.Stats().Handled == 0 {
			continue // the rascom device only sees Paris-bound flows
		}
		if dev.Stats().Rewritten > 0 {
			t.Fatalf("%s rewrote downstream traffic it should never see", dev.Name())
		}
	}
	if obit.Devices[0].Stats().Handled == 0 {
		t.Fatal("symmetric device idle")
	}
}

func TestTopologyDOT(t *testing.T) {
	l := smallLab(t)
	dot := l.TopologyDOT(false)
	for _, want := range []string{"graph tspusim", "TSPU", "ru-core", "tor-node"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q", want)
		}
	}
	full := l.TopologyDOT(true)
	if len(full) <= len(dot) {
		t.Fatal("includeEndpoints did not grow the graph")
	}
}
