package topo

import (
	"net/netip"
	"time"

	"tspusim/internal/censor"
	"tspusim/internal/dnsx"
	"tspusim/internal/hostnet"
	"tspusim/internal/httpx"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

// The cross-censor battery needs a topology that is identical for every
// model under test: one client, three routers, one server, and the censor
// under test on the middle link. Routers decrement TTL and answer with ICMP
// Time Exceeded, so TTL-limited localization works exactly as on the full
// Lab; the fixed three-router path makes the expected hop answers constants.

// Censor-testbed constants, shared with the probe battery so cell values
// are self-describing.
const (
	// CensorTestbedLocalDir is the client→server direction on the censor's
	// link in every testbed BuildCensorTestbed assembles. Models with
	// directional behavior (TSPU, the IN profiles) are built against it.
	CensorTestbedLocalDir = netem.AtoB
	// CensorTestbedHopTTL is the smallest client TTL at which a probe
	// crosses the censor link (it must survive routers r1 and r2).
	CensorTestbedHopTTL = 3
	// CensorTestbedPathRouters is the router count between client and
	// server.
	CensorTestbedPathRouters = 3
)

// Well-known testbed addresses.
var (
	// CensorTestbedRealAnswer is what the server-side resolver returns for
	// every name — the "legitimate" DNS answer forged injections race.
	CensorTestbedRealAnswer = packet.MustAddr("203.0.114.99")
)

// CensorTestbed is the minimal in-path environment the cross-censor probe
// battery drives.
type CensorTestbed struct {
	Sim    *sim.Sim
	Net    *netem.Network
	Client *hostnet.Stack
	Server *hostnet.Stack
	// Censor is the model under test, attached to Link.
	Censor censor.Censor
	// Link is the censor-bearing middle link (r2–r3).
	Link *netem.Link
	// ServerHTTPHosts records Host headers the origin actually served —
	// ground truth for "did the request reach the server".
	ServerHTTPHosts []string
}

// BuildCensorTestbedBare assembles client — r1 — r2 —[censor]— r3 — server
// on a fresh Sim and attaches the built censor to the middle link, but
// installs no services: callers that need genome-controlled listeners (the
// arms-race harness mutates ListenOptions per trial) bring their own. The
// censor is constructed via a callback because stateful models (the TSPU)
// must be built on the testbed's own simulator. Each pre constructor is
// attached to the censor link *before* the censor, in order — the slot for
// counter-evolved watcher middleboxes (fragment reassembly, stream scan)
// whose Pipe.Inject re-emissions must re-enter the chain at the censor.
func BuildCensorTestbedBare(build func(s *sim.Sim) censor.Censor, pre ...func(s *sim.Sim) netem.Middlebox) *CensorTestbed {
	s := sim.New()
	n := netem.New(s)
	c := build(s)
	t := &CensorTestbed{Sim: s, Net: n, Censor: c}

	client := n.AddHost("cx-client")
	server := n.AddHost("cx-server")
	r1 := n.AddRouter("cx-r1")
	r2 := n.AddRouter("cx-r2")
	r3 := n.AddRouter("cx-r3")

	delay := defaultCensorDelay
	pair := 0
	link := func(from, to *netem.Node) (*netem.Link, *netem.Iface, *netem.Iface) {
		a := netip.AddrFrom4([4]byte{10, 254, byte(pair), 1})
		b := netip.AddrFrom4([4]byte{10, 254, byte(pair), 2})
		pair++
		fi := from.AddIface(a)
		ti := to.AddIface(b)
		return n.Connect(fi, ti, delay), fi, ti
	}

	ci := client.AddIface(packet.MustAddr("10.9.0.2"))
	r1c := r1.AddIface(packet.MustAddr("10.9.0.1"))
	n.Connect(ci, r1c, delay)
	client.AddDefaultRoute(ci)

	_, r1up, r2down := link(r1, r2)
	censorLink, r2up, r3down := link(r2, r3)
	t.Link = censorLink

	si := server.AddIface(packet.MustAddr("203.0.114.10"))
	r3s := r3.AddIface(packet.MustAddr("203.0.114.1"))
	n.Connect(si, r3s, delay)
	server.AddDefaultRoute(si)

	clientNet := netem.MustPrefix("10.9.0.0/24")
	r1.AddDefaultRoute(r1up)
	r1.AddRoute(clientNet, r1c)
	r2.AddDefaultRoute(r2up)
	r2.AddRoute(clientNet, r2down)
	r3.AddRoute(netem.MustPrefix("203.0.114.0/24"), r3s)
	r3.AddRoute(clientNet, r3down)

	for _, mk := range pre {
		censorLink.Attach(mk(s))
	}
	censorLink.Attach(c)

	t.Client = hostnet.NewStack(n, client)
	t.Server = hostnet.NewStack(n, server)
	return t
}

// BuildCensorTestbed is BuildCensorTestbedBare plus the probe battery's
// standard services: the server answers TCP 443 with a ServerHello-shaped
// blob, serves HTTP on 80, echoes on 7, answers udp/443 so QUIC drops are
// observable, and resolves every DNS name to CensorTestbedRealAnswer on 53.
func BuildCensorTestbed(build func(s *sim.Sim) censor.Censor) *CensorTestbed {
	t := BuildCensorTestbedBare(build)

	// TLS-ish origin: any ClientHello gets a ServerHello-shaped reply.
	t.Server.Listen(443, hostnet.ListenOptions{
		OnData: func(conn *hostnet.TCPConn, data []byte) {
			conn.Send([]byte("SERVERHELLO-CERTIFICATE-DONE"))
		},
	})
	// HTTP origin, recording which Hosts were actually served.
	httpx.Serve(t.Server, 80, func(req *httpx.Request) *httpx.Response {
		t.ServerHTTPHosts = append(t.ServerHTTPHosts, req.Host)
		return &httpx.Response{
			Status: 200, Reason: "OK",
			Headers: map[string]string{"Server": "origin"},
			Body:    "origin content of " + req.Host,
		}
	})
	// Echo service for fragment probes (mirrors the §7.2 scan targets).
	t.Server.Listen(7, hostnet.ListenOptions{
		OnData: func(conn *hostnet.TCPConn, data []byte) { conn.Send(data) },
	})
	// QUIC-ish origin: any udp/443 datagram gets a short server flight, so
	// "initial dropped" and "initial passed" are distinguishable.
	t.Server.BindUDP(443, func(p *packet.Packet) {
		t.Server.SendUDP(p.IP.Src, 443, p.UDP.SrcPort, []byte("QUIC-SERVER-FLIGHT"))
	})
	// Authoritative-for-everything resolver.
	dnsx.NewServer(t.Server, func(name string) []netip.Addr {
		return []netip.Addr{CensorTestbedRealAnswer}
	})
	return t
}

// defaultCensorDelay keeps testbed round trips tiny so per-cell testbeds are
// cheap; probes depend only on ordering, never on absolute latency.
const defaultCensorDelay = 100 * time.Microsecond

// ServerAddr returns the origin's address.
func (t *CensorTestbed) ServerAddr() netip.Addr { return t.Server.Addr() }
