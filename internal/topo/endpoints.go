package topo

import (
	"net/netip"

	"tspusim/internal/hostnet"
	"tspusim/internal/ispdpi"
	"tspusim/internal/netem"
	"tspusim/internal/sim"
)

// Per-kind endpoint port mixes. Port 7547 (TR-069, CPE management) dominates
// residential networks, which is the paper's explanation for why that port
// shows the most TSPU interference (Fig. 9).
var portMixes = map[ASKind][]uint16{
	ASResidential: {7547, 7547, 7547, 7547, 7547, 7547, 8080, 8080, 58000, 80, 443, 1723, 21},
	ASMixed:       {80, 80, 443, 443, 22, 8080, 7547, 7547, 3389, 445},
	ASDatacenter:  {80, 80, 80, 443, 443, 443, 22, 22, 3389, 445, 21, 58000},
}

// ScanPorts are the ten most popular RU ports of §7.2 in display order.
var ScanPorts = []uint16{21, 22, 80, 443, 445, 1723, 3389, 7547, 8080, 58000}

// deviceDepthDist is the Fig. 12 placement mix: hop distance of the TSPU
// link from the endpoint. ~70% within the first two hops.
var deviceDepthDist = []struct {
	depth  int
	weight float64
}{
	{1, 0.42}, {2, 0.29}, {3, 0.12}, {4, 0.07}, {5, 0.04},
	{6, 0.03}, {7, 0.015}, {8, 0.01}, {9, 0.005}, {10, 0.01},
}

func sampleDepth(r *sim.Rand) int {
	u := r.Float64()
	acc := 0.0
	for _, d := range deviceDepthDist {
		acc += d.weight
		if u < acc {
			return d.depth
		}
	}
	return 2
}

func (l *Lab) buildEndpoints() {
	r := l.Rand.Fork("endpoints")
	core := l.Net.Node("ru-core")

	// Shared "censorship-as-a-service" transit providers (Fig. 11): a
	// symmetric device on the provider-core link serves several client ASes.
	// The provider is the A side of that link, so local→remote (provider to
	// core) is AtoB.
	var providers []*netem.Node
	var providerCoreIfs []*netem.Iface
	for i := 0; i < 3; i++ {
		p := l.Net.AddRouter(providerName(i))
		link, pUp, coreDown := l.link(p, core)
		dev := l.newDevice(providerName(i)+"-tspu", netem.AtoB, nil)
		link.Attach(dev)
		p.AddDefaultRoute(pUp)
		providers = append(providers, p)
		providerCoreIfs = append(providerCoreIfs, coreDown)
	}

	// Real AS populations are heavily skewed; draw Fibonacci-ish weights so
	// a few ASes hold many endpoints (the §7.3 "large AS" statistic needs a
	// size distribution to be meaningful).
	weights := make([]int, l.Opts.ASes)
	totalW := 0
	for i := range weights {
		weights[i] = []int{1, 1, 2, 3, 5, 8}[r.Intn(6)]
		totalW += weights[i]
	}
	made := 0
	popIdx := 0
	for i := 0; i < l.Opts.ASes && made < l.Opts.Endpoints; i++ {
		perAS := l.Opts.Endpoints * weights[i] / totalW
		if perAS < 1 {
			perAS = 1
		}
		kind := sampleKind(r, weights[i])
		// Large ASes split into independently-deployed POPs: the paper's
		// ">75% of large ASes contain endpoints behind TSPUs" coexists with
		// a 25% endpoint rate only if coverage inside an AS is partial.
		pops := 1
		if weights[i] >= 5 {
			pops = 3
		}
		for p := 0; p < pops && made < l.Opts.Endpoints; p++ {
			deploy := sampleDeploy(r, kind)
			as := &AS{
				Index:  popIdx,
				Number: 200000 + i,
				Kind:   kind,
				Deploy: deploy,
				Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(20 + popIdx/200), byte(popIdx % 200), 0}), 24),
			}
			popIdx++
			count := perAS / pops
			if count < 1 {
				count = 1
			}
			if made+count > l.Opts.Endpoints {
				count = l.Opts.Endpoints - made
			}
			l.buildAS(r, as, core, providers, count)
			if deploy == DeployUpstreamProvider {
				// The core must route the client AS via its provider.
				core.AddRoute(as.Prefix, providerCoreIfs[as.Index%len(providerCoreIfs)])
			}
			l.ASes = append(l.ASes, as)
			made += count
		}
	}
}

func providerName(i int) string {
	return []string{"provider-rostelecom", "provider-ttk", "provider-transtelecom"}[i]
}

// sampleKind draws an AS type; heavy (large) ASes skew residential — the
// nation-scale eyeball networks are exactly where Roskomnadzor mandated
// deployment, which is why §7.3 finds >75% of large ASes behind TSPUs.
func sampleKind(r *sim.Rand, weight int) ASKind {
	u := r.Float64()
	if weight >= 5 { // the top of the size distribution
		switch {
		case u < 0.75:
			return ASResidential
		case u < 0.92:
			return ASMixed
		default:
			return ASDatacenter
		}
	}
	switch {
	case u < 0.40:
		return ASResidential
	case u < 0.67:
		return ASMixed
	default:
		return ASDatacenter
	}
}

// sampleDeploy draws the TSPU presence for one AS (or one POP of a large
// AS — deployment is per-installation, which is how the paper's large ASes
// can contain both covered and uncovered endpoints).
func sampleDeploy(r *sim.Rand, k ASKind) DeploymentKind {
	u := r.Float64()
	switch k {
	case ASResidential:
		switch {
		case u < 0.30:
			return DeploySymmetric
		case u < 0.42:
			return DeployUpstreamOnly
		case u < 0.47:
			return DeployUpstreamProvider
		default:
			return DeployNone
		}
	case ASMixed:
		switch {
		case u < 0.12:
			return DeploySymmetric
		case u < 0.22:
			return DeployUpstreamOnly
		case u < 0.25:
			return DeployUpstreamProvider
		default:
			return DeployNone
		}
	default:
		if u < 0.02 {
			return DeploySymmetric
		}
		return DeployNone
	}
}

// buildAS wires one endpoint AS: core - [chain] - ASr - endpoints, with the
// device placed per the AS's deployment kind and depth.
func (l *Lab) buildAS(r *sim.Rand, as *AS, core *netem.Node, providers []*netem.Node, count int) {
	n := l.Net
	asr := n.AddRouter(asName(as, "r"))
	as.Router = asr

	parent := core
	if as.Deploy == DeployUpstreamProvider {
		parent = providers[as.Index%len(providers)]
	}

	// Chain of depth-2..depth routers between ASr and parent; the device
	// link is the one 'depth' hops from an endpoint (endpoint-ASr is hop 1).
	chainLen := 0
	if as.Deploy == DeploySymmetric || as.Deploy == DeployUpstreamOnly {
		if as.DeviceDepth == 0 {
			as.DeviceDepth = sampleDepth(r)
		}
		if as.DeviceDepth > 2 {
			chainLen = as.DeviceDepth - 2
		}
	}
	nodes := []*netem.Node{asr}
	for c := 0; c < chainLen; c++ {
		nodes = append(nodes, n.AddRouter(asName(as, "t"+itoa(c))))
	}
	nodes = append(nodes, parent)

	// Wire consecutive nodes; attach the device on the correct link.
	for j := 0; j+1 < len(nodes); j++ {
		lower, upper := nodes[j], nodes[j+1]
		linkDepth := j + 2 // endpoint->ASr is depth 1; ASr->next is 2...
		needDevice := (as.Deploy == DeploySymmetric || as.Deploy == DeployUpstreamOnly) &&
			as.DeviceDepth >= 2 && linkDepth == as.DeviceDepth
		if needDevice && as.Deploy == DeployUpstreamOnly {
			// Parallel pair: device on the upstream link, clean return.
			upLink, lowUp, _ := l.link(lower, upper)
			dev := l.newDevice(asName(as, "tspu-up"), netem.AtoB, nil)
			upLink.Attach(dev)
			as.Device = dev
			_, _, upDownIf := l.link(lower, upper)
			lower.AddDefaultRoute(lowUp)
			upper.AddRoute(as.Prefix, upDownIf)
		} else {
			link, lowUp, upDown := l.link(lower, upper)
			if needDevice {
				dev := l.newDevice(asName(as, "tspu-sym"), netem.AtoB, nil)
				link.Attach(dev)
				as.Device = dev
			}
			lower.AddDefaultRoute(lowUp)
			upper.AddRoute(as.Prefix, upDown)
		}
	}

	perEndpointDevice := as.Deploy == DeploySymmetric && as.DeviceDepth == 1

	// Endpoints hang off ASr on individual links.
	base := as.Prefix.Addr().As4()
	for k := 0; k < count; k++ {
		host := n.AddHost(asName(as, "e"+itoa(k)))
		addr := netip.AddrFrom4([4]byte{base[0], base[1], base[2], byte(10 + k)})
		hi := host.AddIface(addr)
		ra, _ := l.transferPair()
		ri := asr.AddIface(ra)
		link := n.Connect(hi, ri, l.Opts.LinkDelay)
		host.AddDefaultRoute(hi)
		asr.AddRoute(netip.PrefixFrom(addr, 32), ri)

		ep := &Endpoint{
			Addr: addr,
			AS:   as,
			Port: sim.Pick(r, portMixes[as.Kind]),
		}
		if perEndpointDevice {
			// Host is the A side of its access link; local→remote is
			// host→ASr = AtoB.
			dev := l.newDevice(asName(as, "tspu-cpe"+itoa(k)), netem.AtoB, nil)
			link.Attach(dev)
			as.Device = dev
		}
		ep.Stack = hostnet.NewStack(n, host)
		ep.Stack.Listen(ep.Port, hostnet.ListenOptions{})
		switch {
		case as.Deploy == DeploySymmetric, as.Deploy == DeployUpstreamProvider:
			ep.BehindTSPU = true
			ep.DeviceHops = as.DeviceDepth
			if as.Deploy == DeployUpstreamProvider {
				ep.DeviceHops = 3 // endpoint - ASr - provider - [device] core
			}
		case as.Deploy == DeployUpstreamOnly:
			ep.BehindUpstreamOnly = true
			ep.DeviceHops = as.DeviceDepth
		}
		as.Endpoints = append(as.Endpoints, ep)
		l.Endpoints = append(l.Endpoints, ep)
	}

	// Echo servers and Nmap labels are assigned lab-wide afterwards.
	l.assignEchoAndLabels(r, as)
}

// assignEchoAndLabels marks some endpoints as echo servers with
// router/switch labels. Echo servers are embedded infrastructure, so they
// get router/switch labels more often.
func (l *Lab) assignEchoAndLabels(r *sim.Rand, as *AS) {
	for _, ep := range as.Endpoints {
		switch {
		case r.Bool(0.55):
			ep.NmapLabel = "router"
		case r.Bool(0.55):
			ep.NmapLabel = "switch"
		default:
			ep.NmapLabel = "host"
		}
	}
	// Echo share: favor upstream-only ASes so the Table 4 funnel has
	// positives to find (the paper found them concentrated in 15 ASes).
	p := float64(l.Opts.EchoServers) / float64(maxInt(1, l.Opts.Endpoints))
	if as.Deploy == DeployUpstreamOnly {
		p *= 4
	}
	for _, ep := range as.Endpoints {
		if r.Bool(p) {
			ep.Echo = true
			ep.Stack.Listen(7, hostnet.ListenOptions{Echo: true})
		}
	}
}

// USEndpoint is a host in the US control population for the fragment-limit
// fingerprint validation (§7.2's 0.708% finding).
type USEndpoint struct {
	Addr       netip.Addr
	Stack      *hostnet.Stack
	FragLimit  int // middlebox limit on path, 0 = none
	LooksLike  bool
	Middlebox  *ispdpi.FragLimitMiddlebox
	DeviceHops int
}

// BuildUSPopulation attaches n US hosts behind us-router, a small fraction
// of which sit behind fragment-limiting middleboxes (one AS17306-like group
// with a 45-ish limit).
func (l *Lab) BuildUSPopulation(n int) []*USEndpoint {
	r := l.Rand.Fork("us-endpoints")
	usr := l.Net.Node("us-router")
	var out []*USEndpoint
	for i := 0; i < n; i++ {
		host := l.Net.AddHost("us-e" + itoa(i))
		addr := netip.AddrFrom4([4]byte{203, 0, byte(120 + i/200), byte(10 + i%200)})
		hi := host.AddIface(addr)
		ra, _ := l.transferPair()
		ri := usr.AddIface(ra)
		link := l.Net.Connect(hi, ri, l.Opts.LinkDelay)
		host.AddDefaultRoute(hi)
		usr.AddRoute(netip.PrefixFrom(addr, 32), ri)
		ep := &USEndpoint{Addr: addr, Stack: hostnet.NewStack(l.Net, host)}
		ep.Stack.Listen(7547, hostnet.ListenOptions{})
		switch {
		case r.Bool(0.00708):
			// The AS17306-like population: a middlebox with the same queue
			// limit as the TSPU.
			ep.FragLimit = 45
			ep.Middlebox = ispdpi.NewFragLimitMiddlebox("as17306", 45)
			link.Attach(ep.Middlebox)
		case r.Bool(0.02):
			ep.FragLimit = 24
			ep.Middlebox = ispdpi.NewFragLimitMiddlebox("cisco", 24)
			link.Attach(ep.Middlebox)
		}
		out = append(out, ep)
	}
	return out
}

func asName(as *AS, suffix string) string {
	// Index (not Number) keys node names: POPs of one ASN are distinct
	// routers.
	return "as" + itoa(as.Number) + "p" + itoa(as.Index) + "-" + suffix
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [12]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
