// Package topo builds the measurement environment of the paper as one
// simulated internet ("Lab"): three residential vantage ISPs matching §3's
// setup (Rostelecom and OBIT with a second, upstream-only TSPU on path,
// ER-Telecom with a single device), US and Paris measurement machines, a
// "Tor entry node" whose IP is out-registry blocked, per-ISP blockpage
// resolvers with stale blocklists, the centrally-controlled TSPU policy, and
// a synthetic endpoint population with the port mix and deployment depths of
// §7 for the remote-measurement experiments.
//
// Everything derives from one seed; building the same Lab twice yields the
// same network.
package topo

import (
	"fmt"
	"net/netip"
	"strings"
	"time"

	"tspusim/internal/hostnet"
	"tspusim/internal/httpx"
	"tspusim/internal/ispdpi"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/registry"
	"tspusim/internal/sim"
	"tspusim/internal/tspu"
	"tspusim/internal/workload"
)

// Options scale the lab. Zero values get defaults scaled ~1/1000 from the
// paper's populations so the full experiment suite runs in seconds.
type Options struct {
	Seed uint64
	// Endpoints is the RU endpoint population for remote scans (paper:
	// 4,005,138).
	Endpoints int
	// ASes is the number of endpoint ASes (paper: 4,986).
	ASes int
	// EchoServers is the number of port-7 echo endpoints (paper: 1,404).
	EchoServers int
	// TrancoN and RegistryN size the §6 domain lists.
	TrancoN, RegistryN int
	// LinkDelay is the per-hop one-way delay.
	LinkDelay time.Duration
}

func (o *Options) defaults() {
	if o.Endpoints == 0 {
		o.Endpoints = 2000
	}
	if o.ASes == 0 {
		o.ASes = 40
	}
	if o.EchoServers == 0 {
		o.EchoServers = 140
	}
	if o.TrancoN == 0 {
		o.TrancoN = 2000
	}
	if o.RegistryN == 0 {
		o.RegistryN = 2000
	}
	if o.LinkDelay == 0 {
		o.LinkDelay = time.Millisecond
	}
}

// VantageName identifies the three in-country vantage ISPs.
const (
	Rostelecom = "rostelecom"
	ERTelecom  = "ertelecom"
	OBIT       = "obit"
)

// Vantage is one in-country residential vantage point (§3).
type Vantage struct {
	Name  string
	Stack *hostnet.Stack
	// Devices lists TSPU devices on this vantage's outbound path, nearest
	// first. Rostelecom and OBIT have more than one (§7.1.1).
	Devices []*tspu.Device
	// SymDeviceHop is the hop count from the vantage to the first
	// symmetric device's link (paper: within the first three hops).
	SymDeviceHop int
	// Resolver is the ISP's blockpage resolver.
	Resolver *ispdpi.BlockpageResolver
	// ResolverAddr is where the vantage's DNS queries go.
	ResolverAddr netip.Addr
	// Blockpage is this ISP's blockpage IP.
	Blockpage netip.Addr
	// ISPBlocklist is the ISP-maintained (stale) blocklist.
	ISPBlocklist *tspu.DomainSet
	// SymLink is the link carrying the first symmetric device — tap it to
	// capture what the device sees and emits.
	SymLink *netem.Link
}

// ASKind is the network type of an endpoint AS.
type ASKind int

// AS kinds.
const (
	ASResidential ASKind = iota
	ASMixed
	ASDatacenter
)

func (k ASKind) String() string {
	switch k {
	case ASResidential:
		return "residential"
	case ASMixed:
		return "mixed"
	default:
		return "datacenter"
	}
}

// DeploymentKind describes TSPU presence on an AS's uplink.
type DeploymentKind int

// Deployment kinds.
const (
	DeployNone DeploymentKind = iota
	// DeploySymmetric sees both directions (detectable by frag scans).
	DeploySymmetric
	// DeployUpstreamOnly sees only RU→outside traffic (detectable by the
	// echo technique, invisible to frag scans).
	DeployUpstreamOnly
	// DeployUpstreamProvider means the AS has no device of its own and
	// relies on a symmetric device in its upstream transit ISP (Fig. 11's
	// "censorship-as-a-service").
	DeployUpstreamProvider
)

func (k DeploymentKind) String() string {
	switch k {
	case DeployNone:
		return "none"
	case DeploySymmetric:
		return "symmetric"
	case DeployUpstreamOnly:
		return "upstream-only"
	case DeployUpstreamProvider:
		return "upstream-provider"
	}
	return "?"
}

// AS is one endpoint autonomous system.
type AS struct {
	Index  int
	Number int // synthetic ASN
	Kind   ASKind
	Deploy DeploymentKind
	// DeviceDepth is the hop distance of the device link from endpoints
	// (1 = endpoint access link, 2 = AS uplink, 3+ = deeper in transit).
	DeviceDepth int
	Device      *tspu.Device
	Router      *netem.Node
	Prefix      netip.Prefix
	Endpoints   []*Endpoint
}

// Endpoint is one scannable RU endpoint.
type Endpoint struct {
	Addr  netip.Addr
	AS    *AS
	Port  uint16
	Stack *hostnet.Stack
	// Echo marks a port-7 echo server.
	Echo bool
	// NmapLabel is the OS-detection label ("router", "switch", or "host");
	// the ethics filter of §4 keeps only router/switch targets.
	NmapLabel string
	// BehindTSPU is ground truth: a device with downstream visibility is on
	// the inbound path.
	BehindTSPU bool
	// BehindUpstreamOnly is ground truth for upstream-only devices.
	BehindUpstreamOnly bool
	// DeviceHops is ground truth hops from the endpoint to the device link.
	DeviceHops int
}

// Lab is the assembled measurement environment.
type Lab struct {
	Sim  *sim.Sim
	Net  *netem.Network
	Rand *sim.Rand
	Opts Options

	Controller *tspu.Controller
	Devices    []*tspu.Device

	// External machines (§3): two US measurement machines in one network, a
	// Paris measurement machine, and the blocked Tor entry node in the same
	// Paris data center.
	US1, US2, Paris, Tor *hostnet.Stack
	TorAddr              netip.Addr
	// WebFarm stands in for every "real" web server the synthetic domains
	// resolve to (203.0.113.0/24): a promiscuous host serving HTTP for any
	// destination address, so OONI-style fetch tests have an origin to hit.
	WebFarm *hostnet.Stack

	Vantages map[string]*Vantage
	ASes     []*AS
	// Endpoints is the scan population, deterministic order.
	Endpoints []*Endpoint

	// Tranco and Registry are the §6 testing input lists.
	Tranco   []workload.Domain
	Registry []workload.Domain
	// RegistryDump is the z-i-format dump of the registry sample, the file
	// format ISPs actually ingest (internal/registry).
	RegistryDump []registry.Entry
	// RegistryTSPUBlocked is how many registry-sample domains the TSPU
	// enforces (paper: 9,655 of 10,000, scaled).
	RegistryTSPUBlocked int

	// addr allocation state
	nextTransfer int
}

// PaperScale returns the factor to multiply endpoint counts by when
// reporting at the paper's population size.
func (l *Lab) PaperScale() float64 { return 4005138.0 / float64(len(l.Endpoints)) }

func (l *Lab) transferPair() (netip.Addr, netip.Addr) {
	i := l.nextTransfer
	l.nextTransfer++
	hi, lo := i/64, (i%64)*4
	a := netip.AddrFrom4([4]byte{10, 255, byte(hi), byte(lo + 1)})
	b := netip.AddrFrom4([4]byte{10, 255, byte(hi), byte(lo + 2)})
	return a, b
}

// link connects two nodes with a fresh transfer pair and returns the link
// plus both interfaces (a on 'from', b on 'to').
func (l *Lab) link(from, to *netem.Node) (*netem.Link, *netem.Iface, *netem.Iface) {
	fa, ta := l.transferPair()
	fi := from.AddIface(fa)
	ti := to.AddIface(ta)
	return l.Net.Connect(fi, ti, l.Opts.LinkDelay), fi, ti
}

// Build assembles the lab on a fresh Sim.
func Build(opts Options) *Lab { return BuildOn(sim.New(), opts) }

// BuildOn assembles the lab on an existing Sim, which must be idle (fresh,
// or Reset after a previous run). Fleet workers reuse one Sim per job slot
// so the event freelist built up by one job serves the next instead of being
// reallocated per lab.
func BuildOn(s *sim.Sim, opts Options) *Lab {
	opts.defaults()
	l := &Lab{
		Sim:      s,
		Rand:     sim.NewRand(opts.Seed),
		Opts:     opts,
		Vantages: make(map[string]*Vantage),
	}
	l.Net = netem.New(l.Sim)

	l.buildExternal()
	l.buildCore()
	l.buildWorkloadAndPolicy()
	l.buildVantages()
	l.buildEndpoints()
	return l
}

func (l *Lab) buildExternal() {
	n := l.Net
	l.Net.AddRouter("ext-hub")
	us := n.AddRouter("us-router")
	paris := n.AddRouter("paris-router")

	hub := n.Node("ext-hub")
	_, hubUS, usUp := l.link(hub, us)
	_, hubP, parisUp := l.link(hub, paris)

	us1 := n.AddHost("us-measure-1")
	us2 := n.AddHost("us-measure-2")
	pm := n.AddHost("paris-measure")
	tor := n.AddHost("tor-node")

	us1i := us1.AddIface(packet.MustAddr("203.0.113.10"))
	us2i := us2.AddIface(packet.MustAddr("203.0.113.11"))
	pmi := pm.AddIface(packet.MustAddr("198.51.100.10"))
	tori := tor.AddIface(packet.MustAddr("198.51.100.7"))
	usr1 := us.AddIface(packet.MustAddr("203.0.113.1"))
	usr2 := us.AddIface(packet.MustAddr("203.0.113.2"))
	pr1 := paris.AddIface(packet.MustAddr("198.51.100.1"))
	pr2 := paris.AddIface(packet.MustAddr("198.51.100.2"))

	n.Connect(us1i, usr1, l.Opts.LinkDelay)
	n.Connect(us2i, usr2, l.Opts.LinkDelay)
	n.Connect(pmi, pr1, l.Opts.LinkDelay)
	n.Connect(tori, pr2, l.Opts.LinkDelay)

	us1.AddDefaultRoute(us1i)
	us2.AddDefaultRoute(us2i)
	pm.AddDefaultRoute(pmi)
	tor.AddDefaultRoute(tori)

	us.AddRoute(netem.MustPrefix("203.0.113.10/32"), usr1)
	us.AddRoute(netem.MustPrefix("203.0.113.11/32"), usr2)
	us.AddDefaultRoute(usUp)

	// The web farm absorbs the rest of 203.0.113.0/24 (longest prefix keeps
	// the measurement machines' /32 routes ahead of it).
	farm := n.AddHost("web-farm")
	farmAddr, _ := l.transferPair()
	fi := farm.AddIface(farmAddr)
	usFarm := us.AddIface(packet.MustAddr("203.0.113.3"))
	n.Connect(fi, usFarm, l.Opts.LinkDelay)
	farm.AddDefaultRoute(fi)
	farm.SetPromiscuous(true)
	us.AddRoute(netem.MustPrefix("203.0.113.0/24"), usFarm)
	l.WebFarm = hostnet.NewStack(n, farm)
	// TLS-ish service: any ClientHello gets a ServerHello-shaped reply, so
	// SNI tests against resolved addresses have a live origin.
	l.WebFarm.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, data []byte) {
			c.Send([]byte("SERVERHELLO-CERTIFICATE-DONE"))
		},
	})
	httpx.Serve(l.WebFarm, 80, func(req *httpx.Request) *httpx.Response {
		return &httpx.Response{
			Status: 200, Reason: "OK",
			Headers: map[string]string{"Server": "origin"},
			Body:    "<html><head><title>" + req.Host + "</title></head><body>content of " + req.Host + "</body></html>",
		}
	})
	paris.AddRoute(netem.MustPrefix("198.51.100.10/32"), pr1)
	paris.AddRoute(netem.MustPrefix("198.51.100.7/32"), pr2)
	paris.AddDefaultRoute(parisUp)

	hub.AddRoute(netem.MustPrefix("203.0.113.0/24"), hubUS)
	hub.AddRoute(netem.MustPrefix("198.51.100.0/24"), hubP)

	l.US1 = hostnet.NewStack(n, us1)
	l.US2 = hostnet.NewStack(n, us2)
	l.Paris = hostnet.NewStack(n, pm)
	l.Tor = hostnet.NewStack(n, tor)
	l.TorAddr = tori.Addr()
}

func (l *Lab) buildCore() {
	n := l.Net
	core := n.AddRouter("ru-core")
	border := n.AddRouter("ru-border")
	_, coreUp, borderDown := l.link(core, border)
	_, borderUp, hubRU := l.link(border, n.Node("ext-hub"))

	core.AddDefaultRoute(coreUp)
	border.AddDefaultRoute(borderUp)
	border.AddRoute(netem.MustPrefix("10.0.0.0/8"), borderDown)
	n.Node("ext-hub").AddRoute(netem.MustPrefix("10.0.0.0/8"), hubRU)
	n.Node("ext-hub").AddRoute(netem.MustPrefix("192.0.2.0/24"), hubRU)
	border.AddRoute(netem.MustPrefix("192.0.2.0/24"), borderDown)

	l.Controller = tspu.NewController(nil)
}

// newDevice creates, registers, and records a TSPU device.
func (l *Lab) newDevice(name string, localDir netem.Direction, rates map[tspu.BlockType]float64) *tspu.Device {
	d := tspu.NewDevice(tspu.Config{
		Name:         name,
		Sim:          l.Sim,
		Rand:         l.Rand.Fork("device/" + name),
		LocalDir:     localDir,
		FailureRates: rates,
	})
	l.Controller.Register(d)
	l.Devices = append(l.Devices, d)
	return d
}

// TopologyDOT renders the lab's node/link graph as Graphviz DOT: routers as
// boxes, hosts as ellipses, TSPU-bearing links in red — a Fig. 1-style
// overview of the measurement setup.
func (l *Lab) TopologyDOT(includeEndpoints bool) string {
	var b strings.Builder
	b.WriteString("graph tspusim {\n  layout=neato;\n  overlap=false;\n")
	skip := func(name string) bool {
		if includeEndpoints {
			return false
		}
		// Endpoint hosts and their per-AS routers dominate the graph;
		// collapse them unless asked.
		return strings.Contains(name, "-e") && strings.Contains(name, "as")
	}
	seen := map[string]bool{}
	for _, link := range l.Net.Links() {
		a, z := link.A().Node(), link.B().Node()
		if skip(a.Name()) || skip(z.Name()) {
			continue
		}
		for _, nd := range []*netem.Node{a, z} {
			if !seen[nd.Name()] {
				seen[nd.Name()] = true
				shape := "ellipse"
				if nd.IsRouter() {
					shape = "box"
				}
				fmt.Fprintf(&b, "  %q [shape=%s];\n", nd.Name(), shape)
			}
		}
		attr := ""
		for _, mb := range link.Middleboxes() {
			if strings.Contains(mb.Name(), "tspu") {
				attr = ` [color=red penwidth=2 label="TSPU"]`
			}
		}
		fmt.Fprintf(&b, "  %q -- %q%s;\n", a.Name(), z.Name(), attr)
	}
	b.WriteString("}\n")
	return b.String()
}
