package dnsx

import (
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"tspusim/internal/hostnet"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(42, "blocked.example.ru")
	wire, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.ID != 42 || m.Response || m.Question != "blocked.example.ru" || m.QType != QTypeA {
		t.Fatalf("decoded = %+v", m)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	q := NewQuery(7, "site.ru")
	r := q.Respond(netip.MustParseAddr("192.0.2.80"), netip.MustParseAddr("192.0.2.81"))
	wire, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Response || len(m.Answers) != 2 {
		t.Fatalf("decoded = %+v", m)
	}
	if m.Answers[0].Addr != netip.MustParseAddr("192.0.2.80") {
		t.Fatalf("answer = %v", m.Answers[0])
	}
}

func TestNXDomain(t *testing.T) {
	q := NewQuery(9, "nope.ru")
	r := q.RespondNXDomain()
	wire, _ := r.Encode()
	m, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if m.RCode != 3 || len(m.Answers) != 0 {
		t.Fatalf("decoded = %+v", m)
	}
}

func TestBadNames(t *testing.T) {
	long := make([]byte, 70)
	for i := range long {
		long[i] = 'a'
	}
	q := NewQuery(1, string(long)+".com")
	if _, err := q.Encode(); !errors.Is(err, ErrBadName) {
		t.Fatalf("oversized label accepted: %v", err)
	}
	q = NewQuery(1, "a..b")
	if _, err := q.Encode(); !errors.Is(err, ErrBadName) {
		t.Fatal("empty label accepted")
	}
}

func TestDecodeTruncated(t *testing.T) {
	q := NewQuery(3, "x.ru")
	wire, _ := q.Encode()
	for i := 0; i < len(wire); i++ {
		if _, err := Decode(wire[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestPropertyNameRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a plausible name from raw bytes.
		name := "host"
		for i := 0; i < len(raw)%4; i++ {
			name += ".d" + string(rune('a'+int(raw[i])%26))
		}
		q := NewQuery(1, name)
		wire, err := q.Encode()
		if err != nil {
			return false
		}
		m, err := Decode(wire)
		return err == nil && m.Question == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResolverOverNetwork(t *testing.T) {
	s := sim.New()
	n := netem.New(s)
	clientNode := n.AddHost("client")
	resolverNode := n.AddHost("resolver")
	ci := clientNode.AddIface(packet.MustAddr("10.0.0.2"))
	ri := resolverNode.AddIface(packet.MustAddr("10.0.0.53"))
	n.Connect(ci, ri, time.Millisecond)
	clientNode.AddDefaultRoute(ci)
	resolverNode.AddDefaultRoute(ri)

	clientStack := hostnet.NewStack(n, clientNode)
	resolverStack := hostnet.NewStack(n, resolverNode)

	blockpage := netip.MustParseAddr("192.0.2.200")
	real := netip.MustParseAddr("203.0.113.80")
	srv := NewServer(resolverStack, func(name string) []netip.Addr {
		if name == "blocked.ru" {
			return []netip.Addr{blockpage}
		}
		if name == "ok.ru" {
			return []netip.Addr{real}
		}
		return nil
	})

	cl := NewClient(clientStack, resolverStack.Addr())
	var got1, got2, got3 *Message
	cl.Lookup("blocked.ru", func(m *Message) { got1 = m })
	cl.Lookup("ok.ru", func(m *Message) { got2 = m })
	cl.Lookup("unknown.ru", func(m *Message) { got3 = m })
	s.Run()

	if got1 == nil || got1.Answers[0].Addr != blockpage {
		t.Fatalf("blockpage answer = %+v", got1)
	}
	if got2 == nil || got2.Answers[0].Addr != real {
		t.Fatalf("real answer = %+v", got2)
	}
	if got3 == nil || got3.RCode != 3 {
		t.Fatalf("nxdomain answer = %+v", got3)
	}
	if srv.Queries != 3 {
		t.Fatalf("queries = %d", srv.Queries)
	}
}
