// Package dnsx is a minimal DNS substrate: wire-format message encoding and
// decoding for A queries/responses, and a resolver server that runs on a
// hostnet stack. It exists because Russian ISPs' own censorship — the
// baseline the paper compares the TSPU against in §6 — is blockpage-based
// DNS manipulation at the ISP resolver.
package dnsx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"strings"
)

// Errors returned by Decode.
var (
	ErrTruncated = errors.New("dnsx: truncated message")
	ErrBadName   = errors.New("dnsx: malformed name")
)

// Message is a simplified DNS message: one question, zero or more A answers.
type Message struct {
	ID       uint16
	Response bool
	RCode    uint8
	Question string
	QType    uint16 // 1 = A
	Answers  []Answer
}

// Answer is one A record.
type Answer struct {
	Name string
	TTL  uint32
	Addr netip.Addr
}

// QTypeA is the A record query type.
const QTypeA uint16 = 1

// NewQuery builds an A query for name.
func NewQuery(id uint16, name string) *Message {
	return &Message{ID: id, Question: name, QType: QTypeA}
}

// Respond builds a response to m answering with addrs.
func (m *Message) Respond(addrs ...netip.Addr) *Message {
	r := &Message{ID: m.ID, Response: true, Question: m.Question, QType: m.QType}
	for _, a := range addrs {
		r.Answers = append(r.Answers, Answer{Name: m.Question, TTL: 300, Addr: a})
	}
	return r
}

// RespondNXDomain builds an NXDOMAIN response to m.
func (m *Message) RespondNXDomain() *Message {
	return &Message{ID: m.ID, Response: true, RCode: 3, Question: m.Question, QType: m.QType}
}

// Encode serializes the message to DNS wire format (no compression).
func (m *Message) Encode() ([]byte, error) {
	var b []byte
	b = binary.BigEndian.AppendUint16(b, m.ID)
	var flags uint16
	if m.Response {
		flags |= 0x8000
	}
	flags |= uint16(m.RCode) & 0x000f
	b = binary.BigEndian.AppendUint16(b, flags)
	b = binary.BigEndian.AppendUint16(b, 1)                      // QDCOUNT
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Answers))) // ANCOUNT
	b = binary.BigEndian.AppendUint16(b, 0)                      // NSCOUNT
	b = binary.BigEndian.AppendUint16(b, 0)                      // ARCOUNT
	qn, err := encodeName(m.Question)
	if err != nil {
		return nil, err
	}
	b = append(b, qn...)
	b = binary.BigEndian.AppendUint16(b, m.QType)
	b = binary.BigEndian.AppendUint16(b, 1) // IN
	for _, a := range m.Answers {
		an, err := encodeName(a.Name)
		if err != nil {
			return nil, err
		}
		b = append(b, an...)
		b = binary.BigEndian.AppendUint16(b, QTypeA)
		b = binary.BigEndian.AppendUint16(b, 1)
		b = binary.BigEndian.AppendUint32(b, a.TTL)
		b = binary.BigEndian.AppendUint16(b, 4)
		v4 := a.Addr.As4()
		b = append(b, v4[:]...)
	}
	return b, nil
}

// Decode parses a DNS wire-format message produced by Encode.
func Decode(b []byte) (*Message, error) {
	if len(b) < 12 {
		return nil, ErrTruncated
	}
	m := &Message{
		ID:       binary.BigEndian.Uint16(b[0:2]),
		Response: b[2]&0x80 != 0,
		RCode:    b[3] & 0x0f,
	}
	qd := binary.BigEndian.Uint16(b[4:6])
	an := binary.BigEndian.Uint16(b[6:8])
	off := 12
	if qd != 1 {
		return nil, fmt.Errorf("dnsx: unsupported QDCOUNT %d", qd)
	}
	name, n, err := decodeName(b, off)
	if err != nil {
		return nil, err
	}
	m.Question = name
	off += n
	if off+4 > len(b) {
		return nil, ErrTruncated
	}
	m.QType = binary.BigEndian.Uint16(b[off : off+2])
	off += 4
	for i := 0; i < int(an); i++ {
		aname, n, err := decodeName(b, off)
		if err != nil {
			return nil, err
		}
		off += n
		if off+10 > len(b) {
			return nil, ErrTruncated
		}
		typ := binary.BigEndian.Uint16(b[off : off+2])
		ttl := binary.BigEndian.Uint32(b[off+4 : off+8])
		rdlen := int(binary.BigEndian.Uint16(b[off+8 : off+10]))
		off += 10
		if off+rdlen > len(b) {
			return nil, ErrTruncated
		}
		if typ == QTypeA && rdlen == 4 {
			m.Answers = append(m.Answers, Answer{
				Name: aname,
				TTL:  ttl,
				Addr: netip.AddrFrom4([4]byte(b[off : off+4])),
			})
		}
		off += rdlen
	}
	return m, nil
}

func encodeName(name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return []byte{0}, nil
	}
	var b []byte
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("%w: label %q", ErrBadName, label)
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0), nil
}

func decodeName(b []byte, off int) (string, int, error) {
	var labels []string
	n := 0
	for {
		if off+n >= len(b) {
			return "", 0, ErrTruncated
		}
		l := int(b[off+n])
		n++
		if l == 0 {
			break
		}
		if l > 63 {
			return "", 0, fmt.Errorf("%w: compression not supported", ErrBadName)
		}
		if off+n+l > len(b) {
			return "", 0, ErrTruncated
		}
		labels = append(labels, string(b[off+n:off+n+l]))
		n += l
	}
	return strings.Join(labels, "."), n, nil
}
