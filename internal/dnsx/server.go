package dnsx

import (
	"net/netip"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
)

// Resolve is a server-side resolution policy: it maps a queried name to the
// addresses to answer with, or nil for NXDOMAIN.
type Resolve func(name string) []netip.Addr

// Server is a DNS resolver bound to UDP port 53 of a hostnet stack.
type Server struct {
	stack   *hostnet.Stack
	resolve Resolve
	// Queries counts handled queries.
	Queries int
}

// NewServer installs a resolver on st. The resolve policy decides answers —
// an ISP blockpage resolver returns the blockpage IP for censored names.
func NewServer(st *hostnet.Stack, resolve Resolve) *Server {
	s := &Server{stack: st, resolve: resolve}
	st.BindUDP(53, s.handle)
	return s
}

func (s *Server) handle(pkt *packet.Packet) {
	q, err := Decode(pkt.UDP.Payload)
	if err != nil || q.Response {
		return
	}
	s.Queries++
	var resp *Message
	if addrs := s.resolve(q.Question); len(addrs) > 0 {
		resp = q.Respond(addrs...)
	} else {
		resp = q.RespondNXDomain()
	}
	wire, err := resp.Encode()
	if err != nil {
		return
	}
	s.stack.SendUDP(pkt.IP.Src, 53, pkt.UDP.SrcPort, wire)
}

// Client performs lookups against a resolver from a hostnet stack.
type Client struct {
	stack  *hostnet.Stack
	server netip.Addr
	nextID uint16
	// pending maps query IDs to result callbacks.
	pending map[uint16]func(*Message)
}

// NewClient builds a resolver client targeting server.
func NewClient(st *hostnet.Stack, server netip.Addr) *Client {
	c := &Client{stack: st, server: server, nextID: 1, pending: make(map[uint16]func(*Message))}
	st.BindUDP(5353, c.handle)
	return c
}

// Lookup sends an A query; done is invoked with the response message when it
// arrives (never on loss — the simulation surfaces censorship as silence).
func (c *Client) Lookup(name string, done func(*Message)) {
	id := c.nextID
	c.nextID++
	c.pending[id] = done
	q := NewQuery(id, name)
	wire, err := q.Encode()
	if err != nil {
		delete(c.pending, id)
		return
	}
	c.stack.SendUDP(c.server, 5353, 53, wire)
}

func (c *Client) handle(pkt *packet.Packet) {
	m, err := Decode(pkt.UDP.Payload)
	if err != nil || !m.Response {
		return
	}
	if done, ok := c.pending[m.ID]; ok {
		delete(c.pending, m.ID)
		done(m)
	}
}
