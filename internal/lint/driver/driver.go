// Package driver loads, type-checks, and analyzes Go packages for tspu-vet
// without golang.org/x/tools: package discovery and export data come from
// `go list -export -deps -json` (which works offline against the build
// cache), type information from go/types with the stdlib gc importer, and
// the analyzers from internal/lint.
//
// Only non-test files are analyzed. The determinism contract governs what
// can reach experiment output; tests measure wall time and exercise the
// orchestrator's real clocks deliberately, and go vet's own unitchecker path
// (cmd/tspu-vet as -vettool) covers test files when wanted.
package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"tspusim/internal/lint"
	"tspusim/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the driver consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Diagnostic is one rendered finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Check runs analyzers over the packages matching patterns (resolved by the
// go command relative to dir; empty dir means the current directory) and
// returns the surviving diagnostics after //tspuvet:allow suppression,
// sorted by position.
//
// The analysis is whole-program: every module package in the dependency
// closure is analyzed in dependency order with one shared fact store, so the
// facts a dependency exports (purity taint, packet retention, lane entry
// points, closed enums) are visible when its dependents are analyzed.
// Diagnostics are reported only for the packages that matched patterns;
// dependency-only packages contribute facts alone.
func Check(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	pkgs, exports, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}

	fset := token.NewFileSet()
	// One shared importer: export data is position-independent and the
	// module has no vendoring, so a single path->file map serves every
	// target package and lets the importer cache dependencies.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	store := analysis.NewStore(analyzers...)
	var diags []Diagnostic
	for _, lp := range dependencyOrder(pkgs) {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		pkgDiags, err := checkPackage(fset, imp, lp, analyzers, ran, store)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", lp.ImportPath, err)
		}
		if lp.DepOnly {
			continue // analyzed for facts only; not a requested target
		}
		diags = append(diags, pkgDiags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// dependencyOrder sorts module packages so every package comes after the
// packages it imports — the order fact propagation requires. `go list -deps`
// already emits depth-first post-order, but the sort is recomputed here so
// the result (and therefore every fact-dependent diagnostic) is identical no
// matter how the input happened to be ordered. Ties keep input order, which
// go list makes deterministic.
func dependencyOrder(pkgs []*listPackage) []*listPackage {
	byPath := make(map[string]*listPackage, len(pkgs))
	for _, lp := range pkgs {
		byPath[lp.ImportPath] = lp
	}
	out := make([]*listPackage, 0, len(pkgs))
	visited := make(map[string]bool, len(pkgs))
	var visit func(lp *listPackage)
	visit = func(lp *listPackage) {
		if visited[lp.ImportPath] {
			return
		}
		visited[lp.ImportPath] = true
		for _, path := range lp.Imports {
			if resolved, ok := lp.ImportMap[path]; ok {
				path = resolved
			}
			if dep, ok := byPath[path]; ok && !dep.Standard {
				visit(dep)
			}
		}
		out = append(out, lp)
	}
	for _, lp := range pkgs {
		visit(lp)
	}
	return out
}

// CheckFiles analyzes one already-listed package given its files and an
// import resolver — the unitchecker entry point shared with Check. A nil
// store runs the analyzers in per-package mode (no cross-package facts).
func CheckFiles(fset *token.FileSet, imp types.Importer, importPath string, filenames []string,
	analyzers []*analysis.Analyzer, ran map[string]bool, store *analysis.Store) ([]Diagnostic, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %w", err)
	}

	var raw []analysis.Diagnostic
	for _, a := range analyzers {
		name := a.Name
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				d.Category = name
				raw = append(raw, d)
			},
		}
		if store != nil {
			pass.Facts = store.View(name, pkg)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", name, err)
		}
	}
	kept := lint.Suppress(fset, files, raw, ran)
	out := make([]Diagnostic, 0, len(kept))
	for _, d := range kept {
		out = append(out, Diagnostic{Pos: fset.Position(d.Pos), Analyzer: d.Category, Message: d.Message})
	}
	return out, nil
}

func checkPackage(fset *token.FileSet, imp types.Importer, lp *listPackage,
	analyzers []*analysis.Analyzer, ran map[string]bool, store *analysis.Store) ([]Diagnostic, error) {
	names := make([]string, len(lp.GoFiles))
	for i, f := range lp.GoFiles {
		names[i] = filepath.Join(lp.Dir, f)
	}
	return CheckFiles(fset, imp, lp.ImportPath, names, analyzers, ran, store)
}

// goList shells out once for targets and their full dependency closure with
// export data, so type-checking needs no network and no second pass.
func goList(dir string, patterns []string) ([]*listPackage, map[string]string, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, strings.TrimSpace(stderr.String()))
	}
	var pkgs []*listPackage
	exports := map[string]string{}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		lp := &listPackage{}
		if err := dec.Decode(lp); err != nil {
			return nil, nil, fmt.Errorf("go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, exports, nil
}
