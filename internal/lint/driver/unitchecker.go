package driver

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"strings"

	"tspusim/internal/lint/analysis"
)

// UnitConfig mirrors the JSON configuration the go command hands a vet tool
// for each package (x/tools' unitchecker.Config).
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker analyzes one package under the go vet protocol: read the
// .cfg, type-check against the export data the go command already built,
// emit surviving diagnostics, and write the (empty — the suite exchanges no
// facts) .vetx output the go command expects. Exit codes follow cmd/vet:
// 0 clean, 1 tool failure, 2 diagnostics.
func RunUnitchecker(cfgFile string, analyzers []*analysis.Analyzer, ran map[string]bool, emit func([]Diagnostic)) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tspu-vet:", err)
		return 1
	}
	var cfg UnitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tspu-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, nil, 0o666)
		}
	}
	if cfg.VetxOnly {
		// Facts-only request for a dependency; the suite has no facts.
		writeVetx()
		return 0
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if resolved, ok := cfg.ImportMap[path]; ok {
			path = resolved
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	diags, err := CheckFiles(fset, imp, cfg.ImportPath, cfg.GoFiles, analyzers, ran)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure && strings.Contains(err.Error(), "type-checking") {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "tspu-vet:", err)
		return 1
	}
	writeVetx()
	emit(diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}
