package driver

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"tspusim/internal/lint/analysis"
)

// UnitConfig mirrors the JSON configuration the go command hands a vet tool
// for each package (x/tools' unitchecker.Config).
type UnitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnitchecker analyzes one package under the go vet protocol: read the
// .cfg, type-check against the export data the go command already built,
// import the facts its dependencies serialized into their .vetx files, emit
// surviving diagnostics, and write this package's own facts to the .vetx
// output the go command expects. VetxOnly requests (dependencies pulled in
// for their facts alone) still run the analyzers, but only to export facts —
// their diagnostics are the owning package's business, not this unit's.
// Exit codes follow cmd/vet: 0 clean, 1 tool failure, 2 diagnostics.
func RunUnitchecker(cfgFile string, analyzers []*analysis.Analyzer, ran map[string]bool, emit func([]Diagnostic)) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tspu-vet:", err)
		return 1
	}
	var cfg UnitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tspu-vet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	writeVetx := func(facts []byte) {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, facts, 0o666)
		}
	}
	if stdlibUnit(&cfg) {
		// The analyzers' contracts are about module code; stdlib units get
		// an empty fact file and no analysis, in both modes. Standalone mode
		// gets the same boundary from go list's Standard flag.
		writeVetx(nil)
		return 0
	}

	store := analysis.NewStore(analyzers...)
	vetxPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		vetxPaths = append(vetxPaths, path)
	}
	sort.Strings(vetxPaths)
	for _, path := range vetxPaths {
		if cfg.Standard[path] || cfg.Standard[plainImportPath(path)] {
			// Even if a stdlib unit was analyzed (an older tool build, a
			// shared cache), its facts stay outside the contract: taint that
			// merely passes through testing.T.Run or exec.Cmd is the
			// standard library's business, not the simulation's.
			continue
		}
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			// A missing dependency vetx degrades that dependency to
			// fact-free (the pre-facts format) rather than failing vet.
			continue
		}
		// Register the dependency's facts under every path the type-checker
		// may report for its objects: the unit ID the go command keys
		// PackageVetx by, and — for "pkg [pkg.test]" test variants — the
		// plain import path its export data carries.
		if err := store.ImportPackage(path, data); err != nil {
			fmt.Fprintln(os.Stderr, "tspu-vet:", err)
			return 1
		}
		if plain := plainImportPath(path); plain != path {
			if err := store.ImportPackage(plain, data); err != nil {
				fmt.Fprintln(os.Stderr, "tspu-vet:", err)
				return 1
			}
		}
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if resolved, ok := cfg.ImportMap[path]; ok {
			path = resolved
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	diags, err := CheckFiles(fset, imp, cfg.ImportPath, cfg.GoFiles, analyzers, ran, store)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure && strings.Contains(err.Error(), "type-checking") {
			writeVetx(nil)
			return 0
		}
		fmt.Fprintln(os.Stderr, "tspu-vet:", err)
		return 1
	}
	facts, err := store.ExportPackage(cfg.ImportPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tspu-vet:", err)
		return 1
	}
	writeVetx(facts)
	if cfg.VetxOnly {
		return 0
	}
	emit(diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// stdlibUnit reports whether the unit being checked is a standard-library
// package the go command pulled in for facts. The cfg's Standard map lists
// the unit's std *dependencies*, never the unit itself, so membership is
// decided by where the sources live: under the toolchain's GOROOT.
func stdlibUnit(cfg *UnitConfig) bool {
	if cfg.Standard[cfg.ImportPath] {
		return true
	}
	root := runtime.GOROOT()
	if root == "" || len(cfg.GoFiles) == 0 {
		return false
	}
	src := filepath.Join(root, "src") + string(filepath.Separator)
	return strings.HasPrefix(cfg.GoFiles[0], src)
}

// plainImportPath strips the " [pkg.test]" suffix a test-variant unit ID
// carries, yielding the import path as export data records it.
func plainImportPath(id string) string {
	if i := strings.Index(id, " ["); i >= 0 {
		return id[:i]
	}
	return id
}
