package driver_test

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"tspusim/internal/lint"
	"tspusim/internal/lint/driver"
)

// The simulator core and the report renderer are the two packages the
// determinism contract protects most directly; they must always come back
// clean, which also exercises the whole load → typecheck → analyze →
// suppress pipeline against real module packages.
func TestCheckCorePackagesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	diags, err := driver.Check("", []string{
		"tspusim/internal/sim",
		"tspusim/internal/report",
	}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// The fleet orchestrator deals in real wall time on purpose; every one of
// its clock reads must be excused by a reasoned directive, so the package is
// clean under the full suite but dirty when suppression cannot apply — the
// live proof that the allowlist is what keeps the build green.
func TestCheckFleetSuppressedByDirectives(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	diags, err := driver.Check("", []string{"tspusim/internal/fleet"}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// writeModule lays out a synthetic module for black-box driver runs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtyA = `package synth

import "time"

func A() time.Time {
	return time.Now()
}

//tspuvet:hotpath
func Hot(s string) string {
	return "x" + s
}
`

const dirtyB = `package synth

import "time"

func C() time.Duration {
	return time.Since(time.Time{}) //tspuvet:allow walltime: fixture exercising suppression
}

//tspuvet:allow maporder: stale directive that suppresses nothing
func Unused() {}
`

// The multichecker over a synthetic module: diagnostics from all files
// arrive sorted by position, suppression drops the excused violation, and
// the stale directive surfaces as its own finding.
func TestCheckSyntheticModuleOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module synthmod\n\ngo 1.22\n",
		"a.go":   dirtyA,
		"b.go":   dirtyB,
	})
	diags, err := driver.Check(dir, []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, filepath.Base(d.Pos.Filename)+":"+d.Analyzer)
	}
	want := []string{"a.go:walltime", "a.go:hotpath", "b.go:allowdirective"}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %v, want analyzers %v", diags, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag[%d] = %s, want %s (full: %s)", i, got[i], want[i], diags[i])
		}
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
}

// buildVet compiles the real tspu-vet binary for black-box exit-code tests.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tspu-vet")
	out, err := exec.Command("go", "build", "-o", bin, "tspusim/cmd/tspu-vet").CombinedOutput()
	if err != nil {
		t.Fatalf("building tspu-vet: %v\n%s", err, out)
	}
	return bin
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("not an exit error: %v", err)
	}
	return ee.ExitCode()
}

// Exit codes through both entry points: standalone (0 clean / 1 dirty) and
// the go vet -vettool protocol, where the go command itself writes the .cfg
// files, invokes the tool per package, and surfaces its exit status — the
// full unitchecker round-trip.
func TestExitCodesAndVettoolRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the tspu-vet binary")
	}
	bin := buildVet(t)
	dirty := writeModule(t, map[string]string{
		"go.mod": "module synthmod\n\ngo 1.22\n",
		"a.go":   dirtyA,
	})
	clean := writeModule(t, map[string]string{
		"go.mod": "module synthclean\n\ngo 1.22\n",
		"a.go":   "package synth\n\nfunc Fine() int { return 1 }\n",
	})

	run := func(dir string, args ...string) (int, string) {
		cmd := exec.Command(args[0], args[1:]...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return exitCode(t, err), string(out)
	}

	if code, out := run(dirty, bin, "./..."); code != 1 {
		t.Errorf("standalone on dirty module: exit %d, want 1\n%s", code, out)
	}
	if code, out := run(clean, bin, "./..."); code != 0 {
		t.Errorf("standalone on clean module: exit %d, want 0\n%s", code, out)
	}

	code, out := run(dirty, "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Errorf("go vet -vettool on dirty module: exit 0, want nonzero\n%s", out)
	}
	if !strings.Contains(out, "walltime") || !strings.Contains(out, "hotpath") {
		t.Errorf("vettool output missing expected diagnostics:\n%s", out)
	}
	if code, out := run(clean, "go", "vet", "-vettool="+bin, "./..."); code != 0 {
		t.Errorf("go vet -vettool on clean module: exit %d, want 0\n%s", code, out)
	}
}

// RunUnitchecker driven directly with a hand-written .cfg: the protocol's
// exit codes (2 diagnostics, 0 clean, 0 facts-only) and the .vetx output
// the go command expects, without the go command in the loop.
func TestRunUnitcheckerCfg(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	if err := os.WriteFile(src, []byte("package p\n\n//tspuvet:hotpath\nfunc Hot() *int { return new(int) }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	ran := map[string]bool{}
	for _, a := range lint.Analyzers() {
		ran[a.Name] = true
	}
	writeCfg := func(cfg driver.UnitConfig) string {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, cfg.ID+".cfg")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	vetx := filepath.Join(dir, "unit.vetx")
	cfg := writeCfg(driver.UnitConfig{ID: "unit", ImportPath: "synthunit/p", GoFiles: []string{src}, VetxOutput: vetx})
	var got []driver.Diagnostic
	code := driver.RunUnitchecker(cfg, lint.Analyzers(), ran, func(d []driver.Diagnostic) { got = d })
	if code != 2 {
		t.Errorf("dirty package: exit %d, want 2", code)
	}
	if len(got) != 1 || got[0].Analyzer != "hotpath" {
		t.Errorf("diagnostics = %v, want one hotpath finding", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}

	vetxOnly := filepath.Join(dir, "facts.vetx")
	cfg = writeCfg(driver.UnitConfig{ID: "facts", ImportPath: "synthunit/p", GoFiles: []string{src}, VetxOnly: true, VetxOutput: vetxOnly})
	if code := driver.RunUnitchecker(cfg, lint.Analyzers(), ran, func([]driver.Diagnostic) {}); code != 0 {
		t.Errorf("facts-only request: exit %d, want 0", code)
	}
	if _, err := os.Stat(vetxOnly); err != nil {
		t.Errorf("facts-only vetx not written: %v", err)
	}

	cleanSrc := filepath.Join(dir, "q.go")
	if err := os.WriteFile(cleanSrc, []byte("package q\n\nfunc Fine() int { return 1 }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg = writeCfg(driver.UnitConfig{ID: "clean", ImportPath: "synthunit/q", GoFiles: []string{cleanSrc}})
	if code := driver.RunUnitchecker(cfg, lint.Analyzers(), ran, func([]driver.Diagnostic) {}); code != 0 {
		t.Errorf("clean package: exit %d, want 0", code)
	}
}
