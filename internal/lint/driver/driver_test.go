package driver_test

import (
	"testing"

	"tspusim/internal/lint"
	"tspusim/internal/lint/driver"
)

// The simulator core and the report renderer are the two packages the
// determinism contract protects most directly; they must always come back
// clean, which also exercises the whole load → typecheck → analyze →
// suppress pipeline against real module packages.
func TestCheckCorePackagesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	diags, err := driver.Check("", []string{
		"tspusim/internal/sim",
		"tspusim/internal/report",
	}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// The fleet orchestrator deals in real wall time on purpose; every one of
// its clock reads must be excused by a reasoned directive, so the package is
// clean under the full suite but dirty when suppression cannot apply — the
// live proof that the allowlist is what keeps the build green.
func TestCheckFleetSuppressedByDirectives(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	diags, err := driver.Check("", []string{"tspusim/internal/fleet"}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
