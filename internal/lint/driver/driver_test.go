package driver_test

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"tspusim/internal/lint"
	"tspusim/internal/lint/analysis"
	"tspusim/internal/lint/driver"
)

// The simulator core and the report renderer are the two packages the
// determinism contract protects most directly; they must always come back
// clean, which also exercises the whole load → typecheck → analyze →
// suppress pipeline against real module packages.
func TestCheckCorePackagesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	diags, err := driver.Check("", []string{
		"tspusim/internal/sim",
		"tspusim/internal/report",
	}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// The fleet orchestrator deals in real wall time on purpose; every one of
// its clock reads must be excused by a reasoned directive, so the package is
// clean under the full suite but dirty when suppression cannot apply — the
// live proof that the allowlist is what keeps the build green.
func TestCheckFleetSuppressedByDirectives(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	diags, err := driver.Check("", []string{"tspusim/internal/fleet"}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

// writeModule lays out a synthetic module for black-box driver runs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const dirtyA = `package synth

import "time"

func A() time.Time {
	return time.Now()
}

//tspuvet:hotpath
func Hot(s string) string {
	return "x" + s
}
`

const dirtyB = `package synth

import "time"

func C() time.Duration {
	return time.Since(time.Time{}) //tspuvet:allow walltime: fixture exercising suppression
}

//tspuvet:allow maporder: stale directive that suppresses nothing
func Unused() {}
`

// The multichecker over a synthetic module: diagnostics from all files
// arrive sorted by position, suppression drops the excused violation, and
// the stale directive surfaces as its own finding.
func TestCheckSyntheticModuleOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	dir := writeModule(t, map[string]string{
		"go.mod": "module synthmod\n\ngo 1.22\n",
		"a.go":   dirtyA,
		"b.go":   dirtyB,
	})
	diags, err := driver.Check(dir, []string{"./..."}, lint.Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, filepath.Base(d.Pos.Filename)+":"+d.Analyzer)
	}
	want := []string{"a.go:walltime", "a.go:hotpath", "b.go:allowdirective"}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %v, want analyzers %v", diags, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag[%d] = %s, want %s (full: %s)", i, got[i], want[i], diags[i])
		}
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
}

// buildVet compiles the real tspu-vet binary for black-box exit-code tests.
func buildVet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tspu-vet")
	out, err := exec.Command("go", "build", "-o", bin, "tspusim/cmd/tspu-vet").CombinedOutput()
	if err != nil {
		t.Fatalf("building tspu-vet: %v\n%s", err, out)
	}
	return bin
}

func exitCode(t *testing.T, err error) int {
	t.Helper()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("not an exit error: %v", err)
	}
	return ee.ExitCode()
}

// Exit codes through both entry points: standalone (0 clean / 1 dirty) and
// the go vet -vettool protocol, where the go command itself writes the .cfg
// files, invokes the tool per package, and surfaces its exit status — the
// full unitchecker round-trip.
func TestExitCodesAndVettoolRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the tspu-vet binary")
	}
	bin := buildVet(t)
	dirty := writeModule(t, map[string]string{
		"go.mod": "module synthmod\n\ngo 1.22\n",
		"a.go":   dirtyA,
	})
	clean := writeModule(t, map[string]string{
		"go.mod": "module synthclean\n\ngo 1.22\n",
		"a.go":   "package synth\n\nfunc Fine() int { return 1 }\n",
	})

	run := func(dir string, args ...string) (int, string) {
		cmd := exec.Command(args[0], args[1:]...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		return exitCode(t, err), string(out)
	}

	if code, out := run(dirty, bin, "./..."); code != 1 {
		t.Errorf("standalone on dirty module: exit %d, want 1\n%s", code, out)
	}
	if code, out := run(clean, bin, "./..."); code != 0 {
		t.Errorf("standalone on clean module: exit %d, want 0\n%s", code, out)
	}

	code, out := run(dirty, "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Errorf("go vet -vettool on dirty module: exit 0, want nonzero\n%s", out)
	}
	if !strings.Contains(out, "walltime") || !strings.Contains(out, "hotpath") {
		t.Errorf("vettool output missing expected diagnostics:\n%s", out)
	}
	if code, out := run(clean, "go", "vet", "-vettool="+bin, "./..."); code != 0 {
		t.Errorf("go vet -vettool on clean module: exit %d, want 0\n%s", code, out)
	}
}

// RunUnitchecker driven directly with a hand-written .cfg: the protocol's
// exit codes (2 diagnostics, 0 clean, 0 facts-only) and the .vetx output
// the go command expects, without the go command in the loop.
func TestRunUnitcheckerCfg(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.go")
	if err := os.WriteFile(src, []byte("package p\n\n//tspuvet:hotpath\nfunc Hot() *int { return new(int) }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	ran := map[string]bool{}
	for _, a := range lint.Analyzers() {
		ran[a.Name] = true
	}
	writeCfg := func(cfg driver.UnitConfig) string {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, cfg.ID+".cfg")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	vetx := filepath.Join(dir, "unit.vetx")
	cfg := writeCfg(driver.UnitConfig{ID: "unit", ImportPath: "synthunit/p", GoFiles: []string{src}, VetxOutput: vetx})
	var got []driver.Diagnostic
	code := driver.RunUnitchecker(cfg, lint.Analyzers(), ran, func(d []driver.Diagnostic) { got = d })
	if code != 2 {
		t.Errorf("dirty package: exit %d, want 2", code)
	}
	if len(got) != 1 || got[0].Analyzer != "hotpath" {
		t.Errorf("diagnostics = %v, want one hotpath finding", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx output not written: %v", err)
	}

	vetxOnly := filepath.Join(dir, "facts.vetx")
	cfg = writeCfg(driver.UnitConfig{ID: "facts", ImportPath: "synthunit/p", GoFiles: []string{src}, VetxOnly: true, VetxOutput: vetxOnly})
	if code := driver.RunUnitchecker(cfg, lint.Analyzers(), ran, func([]driver.Diagnostic) {}); code != 0 {
		t.Errorf("facts-only request: exit %d, want 0", code)
	}
	if _, err := os.Stat(vetxOnly); err != nil {
		t.Errorf("facts-only vetx not written: %v", err)
	}

	cleanSrc := filepath.Join(dir, "q.go")
	if err := os.WriteFile(cleanSrc, []byte("package q\n\nfunc Fine() int { return 1 }\n"), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg = writeCfg(driver.UnitConfig{ID: "clean", ImportPath: "synthunit/q", GoFiles: []string{cleanSrc}})
	if code := driver.RunUnitchecker(cfg, lint.Analyzers(), ran, func([]driver.Diagnostic) {}); code != 0 {
		t.Errorf("clean package: exit %d, want 0", code)
	}
}

// The synthfacts module is the cross-package regression bed for the facts
// layer: packet (the aliasing seed), dep (annotated-but-fact-exporting
// sources of impurity, retention, allocation, and a closed enum), and top
// (one surviving consumer diagnostic per fact kind, each paired with a
// suppressed twin so the allow directives in top only stay fresh when the
// facts actually arrive).
const synthPacket = `// Package packet is the aliasing seed the retain analyzer keys on.
package packet

// Packet is the minimal packet shape.
type Packet struct {
	Payload []byte
}
`

const synthDep = `// Package dep exports facts from sites that are excused locally.
package dep

import (
	"fmt"
	"time"

	"synthfacts/packet"
)

// Kind is a closed verdict enum for the consumer's switches.
//
//tspuvet:closedenum
type Kind int

// Kinds.
const (
	KA Kind = iota
	KB
	KC
)

// held is the parking lot Keep retains into.
var held *packet.Packet

// Stamp reads the wall clock; excused here, but the taint still travels.
func Stamp() time.Time {
	return time.Now() //tspuvet:allow walltime: fixture boundary; callers see the taint via facts
}

// Keep parks the packet; excused here, the retention still travels.
func Keep(p *packet.Packet) {
	held = p //tspuvet:retains fixture parking lot; callers inherit the handoff via facts
}

// Label allocates; no hot marker here, so only hot callers pay.
func Label(n int) string {
	return fmt.Sprintf("n=%d", n)
}
`

const synthTop = `// Package top consumes dep through the fact store.
package top

import (
	"time"

	"synthfacts/dep"
	"synthfacts/packet"
)

// Step picks up dep's wall-clock taint: the surviving walltime finding.
func Step() time.Duration {
	return dep.Stamp().Sub(time.Time{})
}

// Report makes the identical call under an impurity stamp: silenced.
//
//tspuvet:impure fixture: progress metrics only
func Report() time.Time {
	return dep.Stamp()
}

// Forward hands the live packet across the boundary: the retain finding.
func Forward(p *packet.Packet) {
	dep.Keep(p)
}

// ForwardAllowed is the same handoff, excused at the call site.
func ForwardAllowed(p *packet.Packet) {
	dep.Keep(p) //tspuvet:retains fixture consumer keeps the lot drained
}

// Hot is on the per-packet path, so dep.Label's allocation is its problem.
//
//tspuvet:hotpath PerPacket
func Hot(n int) string {
	return dep.Label(n)
}

// HotAllowed pays the same allocation with a reasoned excuse.
//
//tspuvet:hotpath PerPacket
func HotAllowed(n int) string {
	return dep.Label(n) //tspuvet:allow hotpath: fixture cold branch measured separately
}

// Describe misses KC: the surviving statecheck finding.
func Describe(k dep.Kind) string {
	switch k {
	case dep.KA:
		return "a"
	case dep.KB:
		return "b"
	}
	return ""
}

// DescribeAllowed hides members behind an annotated default.
func DescribeAllowed(k dep.Kind) string {
	switch k {
	case dep.KA:
		return "a"
	default: //tspuvet:allow statecheck: fixture remaining kinds share a path
		return "other"
	}
}
`

func writeSynthfacts(t *testing.T) string {
	t.Helper()
	return writeModule(t, map[string]string{
		"go.mod":           "module synthfacts\n\ngo 1.22\n",
		"packet/packet.go": synthPacket,
		"dep/dep.go":       synthDep,
		"top/top.go":       synthTop,
	})
}

// synthfactsWant is the surviving diagnostic set: one finding per fact kind,
// all in the consuming package, in position order.
var synthfactsWant = []struct{ analyzer, substr string }{
	{"walltime", "call to dep.Stamp reaches wall-clock time (reached via dep.Stamp → time.Now)"},
	{"retaincheck", "packet-aliasing value passed to dep.Keep, which retains it"},
	{"hotpath", "call to dep.Label allocates: fmt.Sprintf"},
	{"statecheck", "switch over closed enum dep.Kind does not handle KC"},
}

func checkSynthfactsDiags(t *testing.T, label string, diags []driver.Diagnostic) {
	t.Helper()
	if len(diags) != len(synthfactsWant) {
		t.Errorf("%s: %d diagnostics, want %d: %v", label, len(diags), len(synthfactsWant), diags)
		return
	}
	for i, w := range synthfactsWant {
		d := diags[i]
		if d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.substr) ||
			filepath.Base(d.Pos.Filename) != "top.go" {
			t.Errorf("%s: diag[%d] = %s, want %s in top.go containing %q", label, i, d, w.analyzer, w.substr)
		}
	}
}

// Whole-program standalone analysis over the synthfacts module: exactly one
// surviving diagnostic per fact kind, every one in the consuming package and
// invisible to per-package analysis, and the same output no matter what
// order the packages are named in — dependency ordering, not argument
// ordering, decides when facts are available.
func TestCheckSynthfactsCrossPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	dir := writeSynthfacts(t)
	orders := [][]string{
		{"./..."},
		{"./packet", "./dep", "./top"},
		{"./top", "./dep", "./packet"},
	}
	var first []driver.Diagnostic
	for _, patterns := range orders {
		diags, err := driver.Check(dir, patterns, lint.Analyzers())
		if err != nil {
			t.Fatalf("Check(%v): %v", patterns, err)
		}
		checkSynthfactsDiags(t, strings.Join(patterns, " "), diags)
		if first == nil {
			first = diags
			continue
		}
		for i := range diags {
			if diags[i] != first[i] {
				t.Errorf("pattern order %v changed diag[%d]: %s vs %s", patterns, i, diags[i], first[i])
			}
		}
	}
}

// The same module through the go vet protocol: the go command schedules the
// units, the .vetx files carry the facts between them, and the surviving
// findings match standalone mode exactly.
func TestVettoolSynthfactsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the tspu-vet binary")
	}
	bin := buildVet(t)
	dir := writeSynthfacts(t)

	cmd := exec.Command(bin, "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code != 1 {
		t.Errorf("standalone: exit %d, want 1\n%s", code, out)
	}

	cmd = exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = dir
	vetOut, err := cmd.CombinedOutput()
	if code := exitCode(t, err); code == 0 {
		t.Errorf("go vet -vettool: exit 0, want nonzero\n%s", vetOut)
	}
	for _, run := range [][]byte{out, vetOut} {
		for _, w := range synthfactsWant {
			if !strings.Contains(string(run), w.substr) {
				t.Errorf("output missing %q:\n%s", w.substr, run)
			}
		}
		if strings.Contains(string(run), "ForwardAllowed") || strings.Contains(string(run), "dep.go:") {
			t.Errorf("suppressed or dependency-side finding leaked:\n%s", run)
		}
	}
}

// goListExports shells out the way the driver does and returns the import
// map and export-data paths the unitchecker cfg needs, letting the test
// hand-write the .cfg files the go command would normally produce.
func goListExports(t *testing.T, dir string) (importMap, packageFile map[string]string) {
	t.Helper()
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Export", "./...")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("go list -export: %v", err)
	}
	importMap = map[string]string{}
	packageFile = map[string]string{}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p struct{ ImportPath, Export string }
		if err := dec.Decode(&p); err != nil {
			t.Fatal(err)
		}
		importMap[p.ImportPath] = p.ImportPath
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
	}
	return importMap, packageFile
}

// The unitchecker protocol with hand-written .cfg and .vetx files: dep
// analyzes clean (its sites are excused) but still writes every fact kind to
// its .vetx; feeding that file to top's unit resurfaces all four consumer
// diagnostics; and a .vetx hand-crafted from scratch pins the on-disk fact
// format — the diagnostic it produces can only have come from the file.
func TestUnitcheckerSynthfactsVetx(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command for export data")
	}
	dir := writeSynthfacts(t)
	importMap, packageFile := goListExports(t, dir)
	ran := map[string]bool{}
	for _, a := range lint.Analyzers() {
		ran[a.Name] = true
	}
	writeCfg := func(cfg driver.UnitConfig) string {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, strings.ReplaceAll(cfg.ID, "/", "_")+".cfg")
		if err := os.WriteFile(path, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return path
	}

	depVetx := filepath.Join(dir, "dep.vetx")
	cfg := writeCfg(driver.UnitConfig{
		ID: "synthfacts/dep", ImportPath: "synthfacts/dep",
		GoFiles:   []string{filepath.Join(dir, "dep", "dep.go")},
		ImportMap: importMap, PackageFile: packageFile,
		VetxOutput: depVetx,
	})
	if code := driver.RunUnitchecker(cfg, lint.Analyzers(), ran, func(d []driver.Diagnostic) {
		if len(d) > 0 {
			t.Errorf("dep unit reported diagnostics: %v", d)
		}
	}); code != 0 {
		t.Errorf("dep unit: exit %d, want 0 (all sites excused)", code)
	}
	vetx, err := os.ReadFile(depVetx)
	if err != nil {
		t.Fatal(err)
	}
	for _, typ := range []string{"ImpureFact", "RetainsFact", "AllocFact", "EnumFact"} {
		if !strings.Contains(string(vetx), typ) {
			t.Errorf("dep.vetx missing %s:\n%s", typ, vetx)
		}
	}

	topGo := []string{filepath.Join(dir, "top", "top.go")}
	cfg = writeCfg(driver.UnitConfig{
		ID: "synthfacts/top", ImportPath: "synthfacts/top",
		GoFiles:   topGo,
		ImportMap: importMap, PackageFile: packageFile,
		PackageVetx: map[string]string{"synthfacts/dep": depVetx},
	})
	var got []driver.Diagnostic
	if code := driver.RunUnitchecker(cfg, lint.Analyzers(), ran, func(d []driver.Diagnostic) { got = d }); code != 2 {
		t.Errorf("top unit: exit %d, want 2", code)
	}
	// The unit protocol emits per analyzer; normalize to position order
	// before comparing against the standalone expectation.
	sort.Slice(got, func(i, j int) bool { return got[i].Pos.Line < got[j].Pos.Line })
	checkSynthfactsDiags(t, "top unit", got)

	// A .vetx written by hand, never by the tool: if the diagnostic appears,
	// the wire format is the one documented here. Only walltime runs, so the
	// lone finding is traceable to the lone hand-written fact.
	handVetx := filepath.Join(dir, "hand.vetx")
	handFact := `[{"obj":"Stamp","analyzer":"walltime","type":"ImpureFact",` +
		`"data":{"reason":"time.Now","chain":["dep.Stamp","time.Now"]}}]`
	if err := os.WriteFile(handVetx, []byte(handFact), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg = writeCfg(driver.UnitConfig{
		ID: "synthfacts/top-hand", ImportPath: "synthfacts/top",
		GoFiles:   topGo,
		ImportMap: importMap, PackageFile: packageFile,
		PackageVetx: map[string]string{"synthfacts/dep": handVetx},
	})
	got = nil
	if code := driver.RunUnitchecker(cfg, []*analysis.Analyzer{lint.Walltime},
		map[string]bool{"walltime": true}, func(d []driver.Diagnostic) { got = d }); code != 2 {
		t.Errorf("hand-written vetx unit: exit %d, want 2", code)
	}
	if len(got) != 1 || got[0].Analyzer != "walltime" ||
		!strings.Contains(got[0].Message, "reached via dep.Stamp → time.Now") {
		t.Errorf("hand-written vetx: diagnostics = %v, want one walltime finding with the hand-written chain", got)
	}
}
