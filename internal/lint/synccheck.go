package lint

import (
	"go/ast"
	"go/types"

	"tspusim/internal/lint/analysis"
)

// Synccheck guards the fleet orchestrator's worker pool — the module's only
// concurrent code path — against the three synchronization mistakes that a
// deterministic-by-construction test suite is least likely to surface:
//
//   - copying a sync.Mutex/RWMutex/WaitGroup/Once/Cond by value (as a
//     receiver, parameter, or assignment), which silently forks the lock
//     state so two goroutines synchronize on different copies;
//   - calling WaitGroup.Add inside the goroutine it accounts for, which
//     races the matching Wait: the counter can hit zero before the spawned
//     goroutine ever ran;
//   - a channel send inside a select with no default, which parks a pooled
//     worker indefinitely if every receiver is gone — in a worker pool the
//     droppable-send-or-buffered-channel shape is the one that cannot
//     deadlock (fleet's attempt goroutines send on a buffered channel for
//     exactly this reason).
//
// The race detector cross-checks these findings dynamically in CI; the
// analyzer makes them build failures before a scheduler ever gets the chance
// to interleave them badly.
var Synccheck = &analysis.Analyzer{
	Name: "synccheck",
	Doc: "flag sync primitives copied by value, WaitGroup.Add inside the " +
		"spawned goroutine, and channel sends in select without default",
	Run: runSynccheck,
}

func runSynccheck(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSyncSignature(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkSyncSignature(pass, nil, n.Type)
			case *ast.AssignStmt:
				checkSyncAssign(pass, n)
			case *ast.GoStmt:
				checkGoAdd(pass, n)
			case *ast.SelectStmt:
				checkSelectSend(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

// syncLockPath names the sync types whose value copy is always a bug.
var syncLockTypes = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
}

// containsSyncLock reports whether t holds one of the sync primitives by
// value (directly, embedded in a struct, or as an array element), and names
// the first one found. Pointers stop the search: sharing through a pointer
// is the correct shape.
func containsSyncLock(t types.Type, depth int) (string, bool) {
	if t == nil || depth > 6 {
		return "", false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return "sync." + obj.Name(), true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, ok := containsSyncLock(u.Field(i).Type(), depth+1); ok {
				return name, true
			}
		}
	case *types.Array:
		return containsSyncLock(u.Elem(), depth+1)
	}
	return "", false
}

// checkSyncSignature flags by-value receivers and parameters that carry a
// lock.
func checkSyncSignature(pass *analysis.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if name, ok := containsSyncLock(t, 0); ok {
				pass.Reportf(field.Pos(), "%s copies %s by value; pass a pointer so goroutines share one lock state", what, name)
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
}

// checkSyncAssign flags assignments whose RHS copies a lock-bearing value:
// dereferences, plain variable reads, and field selections. Composite
// literals constructing a zero value are initialization, not a copy of live
// state, and stay legal.
func checkSyncAssign(pass *analysis.Pass, n *ast.AssignStmt) {
	for i, rhs := range n.Rhs {
		// `_ = v` discards the copy immediately; no second lock state lives.
		if len(n.Lhs) == len(n.Rhs) {
			if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
				continue
			}
		}
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		t := pass.TypesInfo.TypeOf(rhs)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if name, ok := containsSyncLock(t, 0); ok {
			pass.Reportf(rhs.Pos(), "assignment copies %s by value; two copies synchronize nothing", name)
		}
	}
}

// checkGoAdd flags wg.Add calls lexically inside the spawned goroutine.
func checkGoAdd(pass *analysis.Pass, n *ast.GoStmt) {
	lit, ok := n.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if inner, ok := x.(*ast.FuncLit); ok && inner != lit {
			return false // a nested goroutine is its own problem
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		if recv := receiverNamed(fn); recv == "sync.WaitGroup" {
			pass.Reportf(call.Pos(), "WaitGroup.Add inside the spawned goroutine races Wait: "+
				"the counter can reach zero before this goroutine is scheduled; Add before the go statement")
		}
		return true
	})
}

// checkSelectSend flags selects that can park on a send with no escape
// hatch.
func checkSelectSend(pass *analysis.Pass, n *ast.SelectStmt) {
	var sends []*ast.SendStmt
	hasDefault := false
	for _, clause := range n.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		if send, ok := cc.Comm.(*ast.SendStmt); ok {
			sends = append(sends, send)
		}
	}
	if hasDefault {
		return
	}
	for _, send := range sends {
		pass.Reportf(send.Pos(), "channel send in select without default can block a pooled worker forever; "+
			"add a default case or send on a buffered channel outside select")
	}
}
