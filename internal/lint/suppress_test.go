package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"tspusim/internal/lint/analysis"
)

// parseSrc parses one synthetic file for suppression tests (no type
// checking: Suppress operates purely on positions and comments).
func parseSrc(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// linePos returns a token.Pos on the given 1-based line of f.
func linePos(fset *token.FileSet, f *ast.File, line int) token.Pos {
	return fset.File(f.Pos()).LineStart(line)
}

const suppressSrc = `package p

func a() {
	_ = 1 //tspuvet:allow walltime: trailing directive for this line
	//tspuvet:allow maporder: standalone directive for the next line
	_ = 2
	//tspuvet:allow globalrand: this one suppresses nothing and must be flagged
	_ = 3
}
`

func TestSuppressTrailingAndStandalone(t *testing.T) {
	fset, f := parseSrc(t, suppressSrc)
	ran := map[string]bool{"walltime": true, "maporder": true, "globalrand": true}
	diags := []analysis.Diagnostic{
		{Pos: linePos(fset, f, 4), Category: "walltime", Message: "wall clock"},
		{Pos: linePos(fset, f, 6), Category: "maporder", Message: "map order"},
		{Pos: linePos(fset, f, 8), Category: "walltime", Message: "not covered by the globalrand directive"},
	}
	kept := Suppress(fset, []*ast.File{f}, diags, ran)
	var msgs []string
	for _, d := range kept {
		msgs = append(msgs, d.Category+": "+d.Message)
	}
	if len(kept) != 2 {
		t.Fatalf("Suppress kept %d diagnostics, want 2 (the uncovered walltime + the unused directive): %v", len(kept), msgs)
	}
	if kept[0].Category != "walltime" || !strings.Contains(kept[0].Message, "not covered") {
		t.Errorf("kept[0] = %v, want the uncovered walltime diagnostic", msgs[0])
	}
	if kept[1].Category != "allowdirective" || !strings.Contains(kept[1].Message, "unused //tspuvet:allow globalrand") {
		t.Errorf("kept[1] = %v, want the unused-directive diagnostic", msgs[1])
	}
}

// A directive for an analyzer that did not run must not be reported unused:
// running a subset of the suite must never flag live allowlist entries.
func TestSuppressSubsetRunKeepsDirectivesQuiet(t *testing.T) {
	fset, f := parseSrc(t, suppressSrc)
	kept := Suppress(fset, []*ast.File{f}, nil, map[string]bool{"allowdirective": true})
	if len(kept) != 0 {
		t.Fatalf("Suppress with no suite analyzers ran flagged %d directives as unused, want 0", len(kept))
	}
}

// A directive must only suppress its own analyzer's diagnostics.
func TestSuppressWrongAnalyzerDoesNotApply(t *testing.T) {
	fset, f := parseSrc(t, suppressSrc)
	ran := map[string]bool{"walltime": true, "maporder": true, "globalrand": true}
	diags := []analysis.Diagnostic{
		// maporder diagnostic on the line covered only by a walltime directive.
		{Pos: linePos(fset, f, 4), Category: "maporder", Message: "map order"},
	}
	kept := Suppress(fset, []*ast.File{f}, diags, ran)
	found := false
	for _, d := range kept {
		if d.Category == "maporder" {
			found = true
		}
	}
	if !found {
		t.Error("a walltime directive suppressed a maporder diagnostic")
	}
}

const retainsSrc = `package p

func a() {
	_ = 1 //tspuvet:retains trailing retention for this line
	//tspuvet:retains standalone retention for the next line
	_ = 2
	//tspuvet:retains this one suppresses nothing and must be flagged
	_ = 3
}
`

// //tspuvet:retains is sugar for a retaincheck suppression: same placement
// rules, same unused-directive rot, but it must not silence other analyzers.
func TestSuppressRetainsDirective(t *testing.T) {
	fset, f := parseSrc(t, retainsSrc)
	ran := map[string]bool{"retaincheck": true, "lanecheck": true}
	diags := []analysis.Diagnostic{
		{Pos: linePos(fset, f, 4), Category: "retaincheck", Message: "stored past the call"},
		{Pos: linePos(fset, f, 4), Category: "lanecheck", Message: "not covered by a retains directive"},
		{Pos: linePos(fset, f, 6), Category: "retaincheck", Message: "stored past the call"},
	}
	kept := Suppress(fset, []*ast.File{f}, diags, ran)
	if len(kept) != 2 {
		var msgs []string
		for _, d := range kept {
			msgs = append(msgs, d.Category+": "+d.Message)
		}
		t.Fatalf("Suppress kept %d diagnostics, want 2 (the lanecheck one + the unused retains directive): %v", len(kept), msgs)
	}
	if kept[0].Category != "lanecheck" {
		t.Errorf("kept[0].Category = %q, want lanecheck: a retains directive must only suppress retaincheck", kept[0].Category)
	}
	if kept[1].Category != "allowdirective" || !strings.Contains(kept[1].Message, "unused //tspuvet:retains") {
		t.Errorf("kept[1] = %s: %s, want the unused //tspuvet:retains diagnostic", kept[1].Category, kept[1].Message)
	}
}

// Allowdirective diagnostics themselves are unsuppressible by construction.
func TestSuppressCannotSilenceAllowdirective(t *testing.T) {
	fset, f := parseSrc(t, suppressSrc)
	ran := map[string]bool{"walltime": true}
	diags := []analysis.Diagnostic{
		{Pos: linePos(fset, f, 4), Category: "allowdirective", Message: "malformed"},
	}
	kept := Suppress(fset, []*ast.File{f}, diags, ran)
	if len(kept) == 0 || kept[0].Category != "allowdirective" {
		t.Fatal("an allowdirective diagnostic was suppressed; the suppressor must not be suppressible")
	}
}
