// Package escape implements tspu-vet's escape-analysis gate: it runs the
// compiler's own escape analysis (`go build -gcflags=-m -l`) over the
// annotated hot-path packages, normalizes the heap-escape diagnostics into a
// stable report, and diffs that report against a committed baseline
// (ESCAPES_baseline.json, the same commit-the-expectation shape as the
// BENCH_device.json gate).
//
// The hotpath analyzer reasons about syntax; the compiler decides what
// actually reaches the heap. The two compose: hotpath catches allocating
// constructs a human can name and chain back to a root, the escape gate
// catches everything else — including allocations the analyzer's per-package
// call graph cannot see across package boundaries. Any escape not present in
// the baseline fails the gate; intentional changes are recorded by
// regenerating the baseline with -update, which makes every new heap escape
// a reviewed, committed decision.
//
// Reports drop line and column numbers on purpose: unrelated edits move
// code, and a baseline keyed on positions would churn on every refactor.
// The key is (file, message), with a count for multiplicity, so the gate
// fires on genuinely new escapes and stays quiet under code motion.
package escape

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Escape is one normalized escape-analysis finding: every occurrence of the
// same compiler message in the same file collapses into one entry with a
// count.
type Escape struct {
	File    string `json:"file"`    // slash-separated, relative to the module root
	Message string `json:"message"` // compiler text, e.g. "moved to heap: x"
	Count   int    `json:"count"`
}

// Report is the normalized escape profile of a set of packages.
type Report struct {
	// GoVersion records the toolchain the report was produced with; escape
	// analysis results legitimately differ across compiler versions, so a
	// mismatch is surfaced as a warning when diffing.
	GoVersion string   `json:"go_version"`
	Packages  []string `json:"packages"`
	Escapes   []Escape `json:"escapes"`
}

// diagRe matches a compiler diagnostic line: path/file.go:line:col: message.
var diagRe = regexp.MustCompile(`^(\S+\.go):\d+:\d+: (.*)$`)

// heapEscape reports whether a -m message describes a heap allocation, as
// opposed to inlining notes or "does not escape" confirmations.
func heapEscape(msg string) bool {
	return strings.Contains(msg, "escapes to heap") || strings.HasPrefix(msg, "moved to heap")
}

// Collect builds the escape report for patterns by running
// `go build -gcflags=-m -l` in dir (empty means the current directory).
// Inlining is disabled (-l) so the findings attribute to the function that
// wrote the allocation, not to wherever it happened to inline. The go
// command replays compiler diagnostics from the build cache, so repeated
// runs are cheap and a clean tree needs no forced rebuild.
func Collect(dir string, patterns []string) (*Report, error) {
	args := append([]string{"build", "-gcflags=-m -l"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, strings.TrimSpace(out.String()))
	}

	counts := map[Escape]int{}
	for _, line := range strings.Split(out.String(), "\n") {
		m := diagRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil || !heapEscape(m[2]) {
			continue
		}
		// Generic instantiation can attribute diagnostics to stdlib source
		// (absolute paths); only module files, printed relative to dir, are
		// this gate's business.
		if filepath.IsAbs(m[1]) {
			continue
		}
		key := Escape{File: filepath.ToSlash(m[1]), Message: m[2]}
		counts[key]++
	}
	rep := &Report{GoVersion: runtime.Version(), Packages: append([]string(nil), patterns...)}
	for key, n := range counts { //tspuvet:allow maporder: entries are fully sorted two lines below
		key.Count = n
		rep.Escapes = append(rep.Escapes, key)
	}
	sort.Slice(rep.Escapes, func(i, j int) bool {
		a, b := rep.Escapes[i], rep.Escapes[j]
		if a.File != b.File {
			return a.File < b.File
		}
		return a.Message < b.Message
	})
	sort.Strings(rep.Packages)
	return rep, nil
}

// Load reads a baseline report from path.
func Load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &rep, nil
}

// Save writes the report to path, stably formatted for review-friendly
// diffs.
func (r *Report) Save(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// Diff compares current against the baseline. Added lists escapes (or count
// increases) absent from the baseline — each one fails the gate. Removed
// lists baseline entries the current build no longer produces; they do not
// fail, but leaving them rots the baseline, so callers surface them with a
// suggestion to -update.
func Diff(baseline, current *Report) (added, removed []string) {
	base := map[Escape]int{}
	for _, e := range baseline.Escapes {
		base[Escape{File: e.File, Message: e.Message}] = e.Count
	}
	cur := map[Escape]int{}
	for _, e := range current.Escapes {
		key := Escape{File: e.File, Message: e.Message}
		cur[key] = e.Count
		if n := base[key]; e.Count > n {
			if n == 0 {
				added = append(added, fmt.Sprintf("%s: %s (x%d)", e.File, e.Message, e.Count))
			} else {
				added = append(added, fmt.Sprintf("%s: %s (x%d, baseline x%d)", e.File, e.Message, e.Count, n))
			}
		}
	}
	for _, e := range baseline.Escapes {
		if cur[Escape{File: e.File, Message: e.Message}] == 0 {
			removed = append(removed, fmt.Sprintf("%s: %s", e.File, e.Message))
		}
	}
	sort.Strings(added)
	sort.Strings(removed)
	return added, removed
}
