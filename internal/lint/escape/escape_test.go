package escape_test

import (
	"os"
	"path/filepath"
	"testing"

	"tspusim/internal/lint/escape"
)

func report(escapes ...escape.Escape) *escape.Report {
	return &escape.Report{GoVersion: "go1.x", Packages: []string{"./p"}, Escapes: escapes}
}

// The gate's core promise: a heap escape absent from the baseline is
// reported, a count increase of a known escape is reported, and code motion
// (same escapes, any order) is not.
func TestDiffFlagsNewEscape(t *testing.T) {
	baseline := report(
		escape.Escape{File: "p/a.go", Message: "moved to heap: x", Count: 1},
	)
	current := report(
		escape.Escape{File: "p/a.go", Message: "moved to heap: x", Count: 1},
		escape.Escape{File: "p/a.go", Message: "&entry{} escapes to heap", Count: 2},
	)
	added, removed := escape.Diff(baseline, current)
	if len(added) != 1 || len(removed) != 0 {
		t.Fatalf("added=%v removed=%v, want exactly one added", added, removed)
	}
	if want := "p/a.go: &entry{} escapes to heap (x2)"; added[0] != want {
		t.Errorf("added[0] = %q, want %q", added[0], want)
	}

	grown := report(
		escape.Escape{File: "p/a.go", Message: "moved to heap: x", Count: 3},
	)
	added, _ = escape.Diff(baseline, grown)
	if len(added) != 1 {
		t.Fatalf("count increase not flagged: %v", added)
	}
}

func TestDiffCleanAndRemoved(t *testing.T) {
	baseline := report(
		escape.Escape{File: "p/a.go", Message: "moved to heap: x", Count: 1},
		escape.Escape{File: "p/b.go", Message: "leaks param: q", Count: 1},
	)
	added, removed := escape.Diff(baseline, baseline)
	if len(added) != 0 || len(removed) != 0 {
		t.Fatalf("identical reports must diff clean, got added=%v removed=%v", added, removed)
	}

	shrunk := report(
		escape.Escape{File: "p/a.go", Message: "moved to heap: x", Count: 1},
	)
	added, removed = escape.Diff(baseline, shrunk)
	if len(added) != 0 || len(removed) != 1 {
		t.Fatalf("removed escape must be reported without failing, got added=%v removed=%v", added, removed)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rep := report(
		escape.Escape{File: "p/a.go", Message: "moved to heap: x", Count: 2},
	)
	path := filepath.Join(t.TempDir(), "ESCAPES_baseline.json")
	if err := rep.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := escape.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoVersion != rep.GoVersion || len(got.Escapes) != 1 || got.Escapes[0] != rep.Escapes[0] {
		t.Errorf("round trip mismatch: %+v vs %+v", got, rep)
	}
}

// Collect runs the real compiler over a synthetic module containing one
// unmistakable heap escape and one function that must not escape, pinning
// both the parse of -m output and the normalization.
func TestCollectSyntheticModule(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to the go command")
	}
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "go.mod"), "module synthescape\n\ngo 1.22\n")
	writeFile(t, filepath.Join(dir, "p", "p.go"), `package p

func Leak() *int {
	x := 42
	return &x
}

func Stays() int {
	y := 7
	return y
}
`)
	rep, err := escape.Collect(dir, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, e := range rep.Escapes {
		if e.File == "p/p.go" && e.Message == "moved to heap: x" && e.Count == 1 {
			found = true
		}
		if e.Message == "moved to heap: y" {
			t.Errorf("non-escaping local reported: %+v", e)
		}
	}
	if !found {
		t.Errorf("escape of x not collected; report: %+v", rep.Escapes)
	}

	// The synthetic-new-escape negative test against a live Collect run: a
	// baseline recorded before the escape was written must fail the gate.
	baseline := &escape.Report{GoVersion: rep.GoVersion, Packages: rep.Packages}
	added, _ := escape.Diff(baseline, rep)
	if len(added) == 0 {
		t.Error("gate did not fail on a new escape against an empty baseline")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
