// Package lint is tspu-vet: a suite of static analyzers that enforce the
// determinism contract of DESIGN.md at compile time. Every claim the
// reproduction makes rests on experiment output being a pure function of the
// lab seed; these analyzers turn the three ways that property silently rots
// — wall-clock reads, ambient randomness, and map-iteration order reaching
// rendered output — into build failures.
//
// The suite:
//
//   - walltime: forbids time.Now/Since/Sleep/NewTimer/... — simulation code
//     must take time from the virtual clock (sim.Sim).
//   - globalrand: forbids importing math/rand, math/rand/v2, and
//     crypto/rand — all entropy must derive from sim.Rand / sim.StreamSeed.
//   - maporder: flags `for k := range m` over maps whose body feeds ordered
//     output (append, string building, report tables) without sorting.
//   - hotpath: a call graph rooted at every //tspuvet:hotpath function;
//     allocating constructs on reachable paths are diagnostics with their
//     call chain. //tspuvet:coldpath <reason> cuts a callee out.
//   - synccheck: sync primitives copied by value, WaitGroup.Add inside the
//     goroutine it accounts for, channel sends in select without default.
//   - retaincheck: taint analysis over *packet.Packet parameters and their
//     payload-derived slices; a packet must not flow into a store that
//     outlives the call unless it passes through a Clone/Marshal-style copy
//     first. Deliberate retention carries //tspuvet:retains <reason>.
//   - lanecheck: code reachable from a //tspuvet:lane entry point may touch
//     sharded state (//tspuvet:laneowned types) only through the lane's own
//     shard, indexed by the lane parameter; writes to shared structs and
//     draws from a shared sim.Rand are diagnostics.
//   - poolcheck: pool lifecycle — use-after-Release/Put, double release,
//     and references escaping after the release point.
//   - statecheck: every switch over a //tspuvet:closedenum type must
//     enumerate all members or justify its default with
//     //tspuvet:allow statecheck: <reason>.
//   - allowdirective: validates //tspuvet:allow suppression directives; a
//     malformed directive, an unknown analyzer name, or (via Suppress) a
//     directive that no longer suppresses anything is itself a diagnostic.
//
// The suite is whole-program: analyzers export facts about package objects
// (ImpureFact, AllocFact, RetainsFact, LaneOwnedFact, LaneEntryFact,
// EnumFact) that the driver threads through packages in dependency order —
// in memory when tspu-vet runs standalone, through .vetx files when it runs
// as a go vet -vettool. Transitive wall-clock and RNG use, cross-package
// packet retention, allocation chains that cross package seams, lane
// contracts on imported shard state, and enum exhaustiveness away from the
// declaring package are all diagnosed at the first call site in checked
// code, with the full reached-via chain.
//
// Exceptions are declared inline, next to the code they excuse:
//
//	start := time.Now() //tspuvet:allow walltime: orchestrator wall time is diagnostic only
//
// A directive suppresses diagnostics of the named analyzer on its own line
// or on the line immediately below it (so it can trail the offending line or
// sit on its own line above it). The reason is mandatory.
// //tspuvet:retains <reason> is sugar for a retaincheck suppression with the
// same placement rules: it marks a deliberate packet-retention site and rots
// into a diagnostic the moment the line stops retaining.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"tspusim/internal/lint/analysis"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Walltime, Globalrand, Maporder, Hotpath, Synccheck, Retaincheck, Lanecheck, Poolcheck, Statecheck, Allowdirective}
}

// Suppressible names the analyzers a //tspuvet:allow directive may target.
// Allowdirective itself is excluded: suppressing the suppression checker
// would let the allowlist rot, which is the one thing it exists to prevent.
var Suppressible = map[string]bool{
	"walltime":    true,
	"globalrand":  true,
	"maporder":    true,
	"hotpath":     true,
	"synccheck":   true,
	"retaincheck": true,
	"lanecheck":   true,
	"poolcheck":   true,
	"statecheck":  true,
}

// suppressibleNames is the sorted human-readable list for diagnostics.
const suppressibleNames = "globalrand, hotpath, lanecheck, maporder, poolcheck, retaincheck, statecheck, synccheck, walltime"

const directivePrefix = "//tspuvet:"

// Directive is one parsed suppression comment: //tspuvet:allow, or
// //tspuvet:retains (which suppresses retaincheck).
type Directive struct {
	Pos      token.Pos
	Line     int    // source line the directive sits on
	Verb     string // "allow" or "retains", for rendering
	Analyzer string // suppressed analyzer name
	Reason   string
}

// ParseDirectives extracts every well-formed //tspuvet:allow directive from
// file and reports each malformed one through report (used by the
// allowdirective analyzer; the driver passes a no-op to collect directives
// for suppression).
func ParseDirectives(fset *token.FileSet, file *ast.File, report func(analysis.Diagnostic)) []Directive {
	var dirs []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			body := strings.TrimPrefix(c.Text, directivePrefix)
			// A later "//" ends the directive (trailing commentary, and the
			// golden fixtures' want annotations); reasons cannot contain it.
			if i := strings.Index(body, "//"); i >= 0 {
				body = strings.TrimSpace(body[:i])
			}
			verb, rest, _ := strings.Cut(body, " ")
			if verb == "hotpath" || verb == "coldpath" {
				// Hot-path annotations are validated by the hotpath analyzer
				// itself (attachment, reasons); they are not suppressions.
				continue
			}
			if verb == "lane" || verb == "laneowned" {
				// Lane markers are validated by the lanecheck analyzer
				// (attachment to the right declaration kind).
				continue
			}
			if verb == "impure" {
				// Purity stamps are validated by the walltime analyzer
				// (attachment to a function declaration, reason present) and
				// consumed by both purity analyzers; they are declarations,
				// not suppressions, so Suppress never sees them.
				continue
			}
			if verb == "closedenum" {
				// Closed-enum markers are validated by the statecheck
				// analyzer (attachment to an enum type declaration).
				continue
			}
			if verb == "retains" {
				// A deliberate packet-retention site: sugar for a retaincheck
				// suppression, so the used/unused bookkeeping in Suppress
				// applies to it unchanged.
				reason := strings.TrimSpace(rest)
				if reason == "" {
					report(analysis.Diagnostic{Pos: c.Pos(), Message: fmt.Sprintf(
						"//tspuvet:retains is missing a reason: deliberate packet retention must explain " +
							"who owns the copy and when it is dropped")})
					continue
				}
				dirs = append(dirs, Directive{
					Pos:      c.Pos(),
					Line:     fset.Position(c.Pos()).Line,
					Verb:     verb,
					Analyzer: Retaincheck.Name,
					Reason:   reason,
				})
				continue
			}
			if verb != "allow" {
				report(analysis.Diagnostic{Pos: c.Pos(), Message: fmt.Sprintf(
					"unknown tspuvet directive %q (recognized: //tspuvet:allow <analyzer>: <reason>, "+
						"//tspuvet:retains <reason>, //tspuvet:hotpath, //tspuvet:coldpath <reason>, "+
						"//tspuvet:lane, //tspuvet:laneowned, //tspuvet:impure <reason>, "+
						"//tspuvet:closedenum)", verb)})
				continue
			}
			name, reason, ok := strings.Cut(rest, ":")
			name = strings.TrimSpace(name)
			reason = strings.TrimSpace(reason)
			if !ok || name == "" {
				report(analysis.Diagnostic{Pos: c.Pos(), Message: fmt.Sprintf(
					"malformed //tspuvet:allow directive %q: want //tspuvet:allow <analyzer>: <reason>", c.Text)})
				continue
			}
			if !Suppressible[name] {
				report(analysis.Diagnostic{Pos: c.Pos(), Message: fmt.Sprintf(
					"//tspuvet:allow names unknown analyzer %q (suppressible: %s)", name, suppressibleNames)})
				continue
			}
			if reason == "" {
				report(analysis.Diagnostic{Pos: c.Pos(), Message: fmt.Sprintf(
					"//tspuvet:allow %s is missing a reason: the allowlist must explain itself", name)})
				continue
			}
			dirs = append(dirs, Directive{
				Pos:      c.Pos(),
				Line:     fset.Position(c.Pos()).Line,
				Verb:     verb,
				Analyzer: name,
				Reason:   reason,
			})
		}
	}
	return dirs
}

// Suppress applies //tspuvet:allow directives from files to diags: a
// diagnostic is dropped when a directive naming its analyzer sits on the
// diagnostic's line or the line above. Directives that suppress nothing are
// themselves returned as allowdirective diagnostics — but only for analyzers
// in ran, so running a subset of the suite never reports live directives as
// stale. The returned slice preserves the input order of kept diagnostics.
func Suppress(fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic, ran map[string]bool) []analysis.Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	byKey := map[key][]*Directive{}
	var all []*Directive
	for _, f := range files {
		fdirs := ParseDirectives(fset, f, func(analysis.Diagnostic) {})
		fname := fset.Position(f.Pos()).Filename
		for i := range fdirs {
			d := &fdirs[i]
			all = append(all, d)
			byKey[key{fname, d.Line, d.Analyzer}] = append(byKey[key{fname, d.Line, d.Analyzer}], d)
		}
	}
	used := map[*Directive]bool{}
	var kept []analysis.Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		if Suppressible[d.Category] {
			for _, line := range []int{pos.Line, pos.Line - 1} {
				for _, dir := range byKey[key{pos.Filename, line, d.Category}] {
					used[dir] = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range all {
		if !used[dir] && ran[dir.Analyzer] {
			msg := fmt.Sprintf("unused //tspuvet:allow %s directive: it no longer suppresses any diagnostic; delete it",
				dir.Analyzer)
			if dir.Verb == "retains" {
				msg = "unused //tspuvet:retains directive: the annotated line no longer retains a packet; delete it"
			}
			kept = append(kept, analysis.Diagnostic{
				Pos:      dir.Pos,
				Category: Allowdirective.Name,
				Message:  msg,
			})
		}
	}
	return kept
}
