package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tspusim/internal/lint/analysis"
)

// Hotpath makes the zero-allocation contract of the per-packet path a
// compile-time property. PR 4 flattened the fast paths and pinned them with
// testing.AllocsPerRun budgets, but a runtime spot check only fires for the
// inputs the test happens to drive; a fmt.Sprintf or an interface boxing
// introduced in a helper three calls deep slips through until a benchmark
// regresses. This analyzer closes that gap statically:
//
//   - A function annotated //tspuvet:hotpath is a hot-path root (the PR-4
//     fast paths: Device.Handle, the sim scheduler, MarshalAppend/ParseInto,
//     ExtractSNI, DomainSet.Match, Policy.ClassifyBytes).
//   - The analyzer builds the package's call graph and walks every function
//     reachable from a root, reporting allocating or timing-perturbing
//     constructs: fmt calls, string concatenation and string<->[]byte
//     conversions, append onto fresh unsized slices, make, new/&T{} that
//     escape the frame, interface boxing, escaping closures and method
//     values, go statements, defer inside loops, map iteration, and
//     allocating stdlib helpers (strings.ToLower, sort.Slice, errors.New,
//     strconv formatting).
//   - //tspuvet:coldpath <reason> on a function cuts traversal there: the
//     fragment engine buffers by design, the conntrack sweeper is amortized
//     housekeeping, and the retained slow-path reference oracles are not on
//     the contract. The reason is mandatory.
//   - Individual lines are excused with //tspuvet:allow hotpath: <reason>
//     (pool-miss refills, cold error paths).
//
// Each diagnostic names the call chain from the root ("reached via
// Device.Handle → conntrack.observe") so a violation deep in a helper is
// attributable without re-deriving the graph by hand.
//
// With facts enabled the analysis is whole-program: every package-level
// function (hot or not) is probed for its first allocating construct, lines
// excused by //tspuvet:allow hotpath excluded, and functions that allocate —
// directly or through calls — export an AllocFact. A hot-reachable function
// calling an imported module function that carries an AllocFact is a
// diagnostic carrying both chains: where the allocation lives in the callee
// and how the hot path reached the call. Cold (//tspuvet:coldpath) functions
// export no fact: declaring a function off-contract cuts the taint exactly
// like it cuts same-package traversal. Without facts (a bare per-package
// run) the analyzer behaves as before, and the escapegate — compiler escape
// analysis over all annotated packages together — still checks the
// composition end to end.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "forbid allocating constructs in functions reachable from a " +
		"//tspuvet:hotpath root (fmt, string concat, boxing, escaping " +
		"closures, defer in loops, map iteration, ...), following calls " +
		"across packages via AllocFacts",
	Run:       runHotpath,
	FactTypes: []analysis.Fact{(*AllocFact)(nil)},
}

// AllocFact marks a package-level function that allocates on some path —
// directly (What is the construct, Chain is just the function) or through
// calls (Chain walks down to the allocating construct, one qualified
// function per hop). Hot-reachable code in importing packages treats a call
// to a fact-bearing function exactly like a local allocating construct.
type AllocFact struct {
	What  string   `json:"what"`
	Chain []string `json:"chain"`
}

// AFact marks AllocFact as a serializable analysis fact.
func (*AllocFact) AFact() {}

const (
	hotpathVerb  = "hotpath"
	coldpathVerb = "coldpath"
)

// funcNode is one function in the package call graph.
type funcNode struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	name  string // display name: "Device.Handle" or "checksum"
	root  bool
	cold  bool
	edges []*funcNode // callees, in source order, deduplicated
	// parent is the BFS predecessor on the first path found from a root;
	// nil for roots themselves.
	parent  *funcNode
	reached bool
	// alloc is the function's allocation taint when facts are enabled: its
	// first unexcused allocating construct, local or reached through calls.
	alloc *AllocFact
}

func runHotpath(pass *analysis.Pass) (any, error) {
	nodes, order := hotpathNodes(pass)
	if len(nodes) == 0 {
		return nil, nil
	}

	// Call-graph edges, in source order so BFS parent chains are stable.
	for _, n := range order {
		seen := map[*funcNode]bool{}
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			target, ok := nodes[callee]
			if !ok || seen[target] {
				return true
			}
			seen[target] = true
			n.edges = append(n.edges, target)
			return true
		})
	}

	// BFS from the roots. Cold functions terminate traversal: they are
	// declared off-contract, with a reason, at their declaration.
	var queue []*funcNode
	for _, n := range order {
		if n.root {
			n.reached = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, callee := range n.edges {
			if callee.reached || callee.cold {
				continue
			}
			callee.reached = true
			callee.parent = n
			queue = append(queue, callee)
		}
	}

	if pass.FactsEnabled() {
		hotpathFacts(pass, order)
	}

	for _, n := range order {
		if n.reached {
			checkHotFunc(pass, n)
		}
	}
	return nil, nil
}

// hotpathFacts probes every non-cold function for allocation taint and
// exports the AllocFacts importing packages will consume. Probing runs the
// same hotChecker walk as the diagnostics pass, but collecting instead of
// reporting, and honoring //tspuvet:allow hotpath lines — an excused
// pool-refill must not taint its callers.
func hotpathFacts(pass *analysis.Pass, order []*funcNode) {
	allowed := map[string]map[int]bool{}
	for _, f := range pass.Files {
		fname := pass.Fset.Position(f.Pos()).Filename
		for _, d := range ParseDirectives(pass.Fset, f, func(analysis.Diagnostic) {}) {
			if d.Analyzer == hotpathVerb {
				if allowed[fname] == nil {
					allowed[fname] = map[int]bool{}
				}
				allowed[fname][d.Line] = true
			}
		}
	}
	excused := func(pos token.Pos) bool {
		p := pass.Fset.Position(pos)
		return allowed[p.Filename][p.Line] || allowed[p.Filename][p.Line-1]
	}

	qual := func(n *funcNode) string { return pass.Pkg.Name() + "." + n.name }
	for _, n := range order {
		if n.cold {
			continue
		}
		c := &hotChecker{
			pass:        pass,
			freshSlices: map[types.Object]bool{},
			mapKeyConvs: map[*ast.CallExpr]bool{},
		}
		var best token.Pos
		c.emit = func(pos token.Pos, msg string) {
			if excused(pos) {
				return
			}
			if n.alloc == nil || pos < best {
				best = pos
				n.alloc = &AllocFact{What: msg, Chain: []string{qual(n)}}
			}
		}
		c.onFactCall = func(pos token.Pos, af *AllocFact) {
			if excused(pos) {
				return
			}
			if n.alloc == nil || pos < best {
				best = pos
				n.alloc = &AllocFact{What: af.What, Chain: append([]string{qual(n)}, af.Chain...)}
			}
		}
		c.prepass(n.decl.Body)
		c.walk(n.decl.Body, 0)
	}

	// Same-package taint: a clean function calling an allocating one
	// allocates too. First-hit in source order keeps chains deterministic;
	// never replacing an assigned fact terminates cycles.
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if n.cold || n.alloc != nil {
				continue
			}
			for _, callee := range n.edges {
				if callee.cold || callee.alloc == nil {
					continue
				}
				n.alloc = &AllocFact{What: callee.alloc.What, Chain: append([]string{qual(n)}, callee.alloc.Chain...)}
				changed = true
				break
			}
		}
	}

	for _, n := range order {
		if n.alloc != nil && !n.cold {
			pass.ExportObjectFact(n.fn, n.alloc)
		}
	}
}

// hotpathNodes collects every declared function plus its hotpath/coldpath
// marks, reporting malformed or misplaced marker comments. The returned
// slice preserves source order.
func hotpathNodes(pass *analysis.Pass) (map[*types.Func]*funcNode, []*funcNode) {
	nodes := map[*types.Func]*funcNode{}
	var order []*funcNode
	consumed := map[*ast.Comment]bool{}
	anyMark := false

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &funcNode{fn: fn, decl: fd, name: funcDisplayName(fd)}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					verb, rest, ok := markerOf(c)
					if !ok {
						continue
					}
					consumed[c] = true
					anyMark = true
					switch verb {
					case hotpathVerb:
						n.root = true
					case coldpathVerb:
						if strings.TrimSpace(rest) == "" {
							pass.Reportf(c.Pos(), "//tspuvet:coldpath on %s is missing a reason: "+
								"cutting a function out of the hot-path contract must explain itself", n.name)
						}
						n.cold = true
					}
				}
			}
			if n.root && n.cold {
				pass.Reportf(fd.Pos(), "%s is marked both //tspuvet:hotpath and //tspuvet:coldpath; pick one", n.name)
				n.cold = false
			}
			nodes[fn] = n
			order = append(order, n)
		}
	}

	// A marker comment not consumed by a function declaration's doc group is
	// attached to nothing and silently enforces nothing.
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				verb, _, ok := markerOf(c)
				if !ok || consumed[c] {
					continue
				}
				anyMark = true
				pass.Reportf(c.Pos(), "//tspuvet:%s must be the doc comment of a function declaration", verb)
			}
		}
	}
	if !anyMark && !pass.FactsEnabled() {
		// A mark-free package has no hot roots to check; without facts there
		// is nothing else to compute. With facts, the node table still feeds
		// AllocFact probing so allocation taint crosses this package.
		return nil, nil
	}
	return nodes, order
}

// markerOf parses a //tspuvet:hotpath or //tspuvet:coldpath comment.
func markerOf(c *ast.Comment) (verb, rest string, ok bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return "", "", false
	}
	body := strings.TrimPrefix(c.Text, directivePrefix)
	// A later "//" ends the marker, mirroring ParseDirectives: reasons
	// cannot contain it, and the golden fixtures put want annotations there.
	if i := strings.Index(body, "//"); i >= 0 {
		body = strings.TrimSpace(body[:i])
	}
	verb, rest, _ = strings.Cut(body, " ")
	if verb != hotpathVerb && verb != coldpathVerb {
		return "", "", false
	}
	return verb, rest, true
}

// funcDisplayName renders "Recv.Name" for methods, "Name" for functions.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = ix.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// calleeFunc resolves a call's static callee, or nil for dynamic calls
// (function values, interface methods) and builtins.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// chainLabel renders the diagnostic suffix locating n relative to its root.
func chainLabel(n *funcNode) string {
	if n.parent == nil {
		return fmt.Sprintf("hot path root %s", n.name)
	}
	var names []string
	for m := n; m != nil; m = m.parent {
		names = append(names, m.name)
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return "reached via " + strings.Join(names, " → ")
}

// allocatingStdlib maps package path → function names whose every call
// allocates (or, for sort, boxes and closes over its arguments). Formatting
// and case-folding helpers dominate real regressions; the list is small on
// purpose — the escapegate catches what a static list cannot.
var allocatingStdlib = map[string]map[string]bool{
	"fmt": nil, // nil means every function in the package
	"errors": {
		"New": true, "Join": true,
	},
	"strings": {
		"ToLower": true, "ToUpper": true, "ToTitle": true, "Title": true,
		"Replace": true, "ReplaceAll": true, "Split": true, "SplitN": true,
		"SplitAfter": true, "SplitAfterN": true, "Join": true, "Repeat": true,
		"Fields": true, "FieldsFunc": true, "Map": true, "Clone": true,
		"NewReader": true, "NewReplacer": true,
	},
	"bytes": {
		"ToLower": true, "ToUpper": true, "ToTitle": true, "Title": true,
		"Replace": true, "ReplaceAll": true, "Split": true, "SplitN": true,
		"SplitAfter": true, "SplitAfterN": true, "Join": true, "Repeat": true,
		"Fields": true, "FieldsFunc": true, "Map": true, "Clone": true,
		"NewReader": true, "NewBuffer": true, "NewBufferString": true,
	},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "FormatBool": false, "Quote": true,
		"QuoteToASCII": true, "Unquote": true,
	},
	"sort": {
		"Slice": true, "SliceStable": true, "Sort": true, "Stable": true,
		"Strings": true, "Ints": true, "Float64s": true,
	},
}

// hotChecker walks one function's body. The diagnostics pass (checkHotFunc)
// and the AllocFact probe share it through the emit hooks.
type hotChecker struct {
	pass  *analysis.Pass
	chain string
	// emit receives each finding's position and chain-free message; the
	// diagnostics pass appends the chain and advice and reports, the fact
	// probe records the first unexcused finding.
	emit func(pos token.Pos, msg string)
	// onFactCall, when set (fact probe), receives calls to imported functions
	// carrying an AllocFact instead of emit, so the probe can splice the
	// callee's chain instead of nesting messages.
	onFactCall func(pos token.Pos, af *AllocFact)
	// freshSlices are local slice vars declared empty (var s []T,
	// s := []T{}, s := make([]T, 0)); appending to them grows from zero.
	freshSlices map[types.Object]bool
	// mapKeyConvs are string(b) conversions used directly as a map index:
	// the compiler elides that allocation, so the analyzer must too.
	mapKeyConvs map[*ast.CallExpr]bool
}

func checkHotFunc(pass *analysis.Pass, n *funcNode) {
	c := &hotChecker{
		pass:        pass,
		chain:       chainLabel(n),
		freshSlices: map[types.Object]bool{},
		mapKeyConvs: map[*ast.CallExpr]bool{},
	}
	c.emit = func(pos token.Pos, msg string) {
		c.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(
			"%s (%s); fix it, mark the function //tspuvet:coldpath <reason>, or justify with //tspuvet:allow hotpath: <reason>",
			msg, c.chain)})
	}
	c.prepass(n.decl.Body)
	c.walk(n.decl.Body, 0)
}

func (c *hotChecker) reportf(pos token.Pos, format string, args ...any) {
	c.emit(pos, fmt.Sprintf(format, args...))
}

// prepass records fresh-slice declarations and map-key conversions before
// the main walk needs them.
func (c *hotChecker) prepass(body *ast.BlockStmt) {
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.IndexExpr:
			if t := c.pass.TypesInfo.TypeOf(x.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					if call, ok := ast.Unparen(x.Index).(*ast.CallExpr); ok && c.isConversion(call) {
						c.mapKeyConvs[call] = true
					}
				}
			}
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(x.Rhs) {
					continue
				}
				if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && c.isFreshSliceExpr(x.Rhs[i]) {
					c.freshSlices[obj] = true
				}
			}
		case *ast.ValueSpec:
			if len(x.Values) != 0 {
				return true
			}
			for _, id := range x.Names {
				obj := c.pass.TypesInfo.ObjectOf(id)
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					c.freshSlices[obj] = true
				}
			}
		}
		return true
	})
}

// isFreshSliceExpr reports whether e is a slice born empty with no capacity:
// []T{}, []T(nil), or make([]T, 0) without a capacity argument.
func (c *hotChecker) isFreshSliceExpr(e ast.Expr) bool {
	t := c.pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
		return false
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" {
			if _, isBuiltin := c.pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
				if len(e.Args) == 2 {
					tv := c.pass.TypesInfo.Types[e.Args[1]]
					return tv.Value != nil && tv.Value.String() == "0"
				}
				return len(e.Args) < 3
			}
		}
	case *ast.Ident:
		return e.Name == "nil"
	}
	return false
}

// isConversion reports whether call is a type conversion (Fun is a type).
func (c *hotChecker) isConversion(call *ast.CallExpr) bool {
	tv, ok := c.pass.TypesInfo.Types[call.Fun]
	return ok && tv.IsType()
}

// walk is the main recursive pass; loops tracks enclosing for/range depth.
func (c *hotChecker) walk(n ast.Node, loops int) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.ForStmt:
		c.walk(n.Init, loops)
		c.walkExpr(n.Cond)
		c.walk(n.Post, loops)
		c.walkBlock(n.Body, loops+1)
		return
	case *ast.RangeStmt:
		if t := c.pass.TypesInfo.TypeOf(n.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				c.reportf(n.Pos(), "map iteration on the hot path: order is randomized and every bucket is touched")
			}
		}
		c.walkExpr(n.X)
		c.walkBlock(n.Body, loops+1)
		return
	case *ast.DeferStmt:
		if loops > 0 {
			c.reportf(n.Pos(), "defer inside a loop allocates a deferred frame per iteration")
		}
		c.walkExpr(n.Call)
		return
	case *ast.GoStmt:
		c.reportf(n.Pos(), "go statement on the hot path spawns a goroutine: it allocates and yields to the scheduler")
		c.walkExpr(n.Call)
		return
	case *ast.AssignStmt:
		c.checkAssign(n)
		for _, e := range n.Lhs {
			c.walkExpr(e)
		}
		for _, e := range n.Rhs {
			c.walkExpr(e)
		}
		return
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			c.checkValue(e, nil, "returned")
			c.walkExpr(e)
		}
		return
	case *ast.SendStmt:
		c.reportf(n.Pos(), "channel send on the hot path synchronizes with the scheduler")
		c.walkExpr(n.Chan)
		c.walkExpr(n.Value)
		return
	case *ast.DeclStmt:
		// Locals initialized in a var declaration behave like := stores: only
		// boxing into an interface-typed variable is flagged here.
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						var target types.Type
						if len(vs.Names) == 1 {
							if obj := c.pass.TypesInfo.ObjectOf(vs.Names[0]); obj != nil {
								target = obj.Type()
							}
						}
						c.checkBoxing(v, target, "stored")
						c.walkExpr(v)
					}
				}
			}
		}
		return
	case *ast.BlockStmt:
		c.walkBlock(n, loops)
		return
	}

	// Generic traversal for everything else, keeping loop depth. Expressions
	// are handled by walkExpr so statements nested in them (closures) still
	// get visited.
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.BlockStmt:
			c.walkBlock(x, loops)
			return false
		case *ast.ForStmt, *ast.RangeStmt, *ast.DeferStmt, *ast.GoStmt,
			*ast.AssignStmt, *ast.ReturnStmt, *ast.SendStmt, *ast.DeclStmt:
			c.walk(x, loops)
			return false
		case ast.Expr:
			c.walkExpr(x)
			return false
		}
		return true
	})
}

func (c *hotChecker) walkBlock(b *ast.BlockStmt, loops int) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		c.walk(s, loops)
	}
}

// walkExpr checks one expression subtree (concatenation, conversions,
// calls), recursing into closure bodies with loop depth reset.
func (c *hotChecker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			c.walkBlock(x.Body, 0)
			return false
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isString(c.pass.TypesInfo.TypeOf(x)) {
				if tv := c.pass.TypesInfo.Types[x]; tv.Value == nil { // constant folding is free
					c.reportf(x.OpPos, "string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			c.checkCall(x)
		}
		return true
	})
}

// checkCall handles conversions, builtins, and function calls.
func (c *hotChecker) checkCall(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	if c.isConversion(call) {
		c.checkConversion(call)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				c.checkAppend(call)
			case "make":
				c.reportf(call.Pos(), "make on the hot path allocates")
			case "new":
				c.reportf(call.Pos(), "new(T) on the hot path allocates")
			}
			return
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg() != c.pass.Pkg {
		path := fn.Pkg().Path()
		if names, known := allocatingStdlib[path]; known {
			if names == nil || names[fn.Name()] {
				c.reportf(call.Pos(), "%s.%s allocates on the hot path", fn.Pkg().Name(), fn.Name())
				// The call is already condemned; per-argument boxing/closure
				// reports on the same line would only be noise.
				return
			}
		}
		var af AllocFact
		if c.pass.ImportObjectFact(fn, &af) {
			if c.onFactCall != nil {
				c.onFactCall(call.Pos(), &af)
			} else {
				c.reportf(call.Pos(), "call to %s allocates: %s (in the callee via %s)",
					af.Chain[0], af.What, strings.Join(af.Chain, " → "))
			}
			return
		}
	}
	// Arguments: closures, method values, escaping composites, boxing.
	sig, _ := info.TypeOf(call.Fun).(*types.Signature)
	for i, arg := range call.Args {
		var param types.Type
		if sig != nil {
			if i < sig.Params().Len() {
				param = sig.Params().At(i).Type()
			} else if sig.Variadic() && sig.Params().Len() > 0 {
				if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
					param = s.Elem()
				}
			}
		}
		c.checkValue(arg, param, "passed")
	}
}

// checkConversion flags string <-> []byte/[]rune conversions, which copy.
func (c *hotChecker) checkConversion(call *ast.CallExpr) {
	if len(call.Args) != 1 || c.mapKeyConvs[call] {
		return
	}
	dst := c.pass.TypesInfo.TypeOf(call)
	src := c.pass.TypesInfo.TypeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	// A constant operand converts at compile time.
	if tv := c.pass.TypesInfo.Types[call.Args[0]]; tv.Value != nil {
		return
	}
	if isString(dst) && isByteOrRuneSlice(src) {
		c.reportf(call.Pos(), "string(bytes) conversion copies; keep the []byte form (map lookups m[string(b)] are exempt)")
	} else if isByteOrRuneSlice(dst) && isString(src) {
		c.reportf(call.Pos(), "[]byte(string) conversion copies; use a reused scratch buffer")
	}
}

func (c *hotChecker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	base := ast.Unparen(call.Args[0])
	id, ok := base.(*ast.Ident)
	if !ok {
		return
	}
	if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil && c.freshSlices[obj] {
		c.reportf(call.Pos(), "append grows %s from zero capacity, reallocating as it goes; "+
			"make it with capacity or reuse a scratch buffer", id.Name)
	}
}

// checkAssign flags escaping RHS values and interface boxing on stores.
func (c *hotChecker) checkAssign(n *ast.AssignStmt) {
	if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(c.pass.TypesInfo.TypeOf(n.Lhs[0])) {
		c.reportf(n.TokPos, "string concatenation allocates")
		return
	}
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) {
			break
		}
		lhs := n.Lhs[i]
		var target types.Type
		if t := c.pass.TypesInfo.TypeOf(lhs); t != nil {
			target = t
		}
		if c.assignEscapes(lhs) {
			c.checkValue(rhs, target, "stored")
		} else {
			// A plain local store cannot force a heap escape by itself, but
			// storing a concrete value into an interface-typed local boxes.
			c.checkBoxing(rhs, target, "stored")
		}
	}
}

// assignEscapes reports whether the assignment target can carry its value
// beyond the current frame: fields, indexed elements, dereferences, and
// package-level variables do; plain local identifiers do not.
func (c *hotChecker) assignEscapes(lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return false
		}
		obj := c.pass.TypesInfo.ObjectOf(lhs)
		return obj != nil && obj.Parent() == c.pass.Pkg.Scope()
	default:
		return true
	}
}

// checkValue flags allocation-forcing value forms in an escaping position
// (call argument, return, store through memory): closures, method values,
// &T{} and new(T), plus interface boxing against target.
func (c *hotChecker) checkValue(e ast.Expr, target types.Type, how string) {
	switch v := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		c.reportf(v.Pos(), "closure %s on the hot path allocates its captures", how)
		return
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if _, ok := ast.Unparen(v.X).(*ast.CompositeLit); ok {
				c.reportf(v.Pos(), "&composite literal %s on the hot path escapes to the heap", how)
				return
			}
		}
	case *ast.CompositeLit:
		// By-value composites are fine unless boxed below; new(T) is flagged
		// unconditionally by checkCall.
	case *ast.SelectorExpr:
		if fn, ok := c.pass.TypesInfo.Uses[v.Sel].(*types.Func); ok {
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				c.reportf(v.Pos(), "method value %s.%s %s on the hot path allocates its receiver binding",
					exprString(v.X), v.Sel.Name, how)
				return
			}
		}
	}
	c.checkBoxing(e, target, how)
}

// checkBoxing flags storing a concrete value into an interface.
func (c *hotChecker) checkBoxing(e ast.Expr, target types.Type, how string) {
	if target == nil {
		return
	}
	iface, ok := target.Underlying().(*types.Interface)
	if !ok {
		return
	}
	src := c.pass.TypesInfo.TypeOf(e)
	if src == nil {
		return
	}
	if _, isIface := src.Underlying().(*types.Interface); isIface {
		return // interface-to-interface carries the existing box
	}
	tv := c.pass.TypesInfo.Types[e]
	if tv.IsNil() || tv.Value != nil {
		return // nil and constants do not box at runtime (constants intern)
	}
	if basic, ok := src.Underlying().(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return
	}
	what := "interface"
	if !iface.Empty() {
		what = target.String()
	}
	c.reportf(e.Pos(), "%s value %s as %s boxes on the hot path", src.String(), how, what)
}

// isByteOrRuneSlice reports whether t is []byte or []rune, the two slice
// shapes whose string conversions copy.
func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.BasicLit:
		return e.Value
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return "&" + exprString(e.X)
		}
	}
	return "expr"
}
