package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tspusim/internal/lint/analysis"
)

// Lanecheck turns "lanes are disjoint by construction" from a doc comment in
// internal/engine into a checked property. The engine fans worker goroutines
// out over conntrack lanes; correctness rests on every lane touching only its
// own shard of conntrack/fragment/wheel state. The claim is declared with two
// markers and verified over the lane-reachable call graph:
//
//   - //tspuvet:lane on a function declares a lane entry point (Engine.runLane,
//     Device.HandleSharded). It must have an integer lane parameter (named
//     lane, l, laneID, shard, or shardID).
//   - //tspuvet:laneowned on a type declaration declares per-lane state
//     (laneState, devLane, ctShard, flowEntry, ...): a value of this type is
//     owned by exactly one lane, so writes through it are safe.
//
// In every function reachable from a lane root through same-package calls:
//
//   - Indexing a shared container whose elements are lane-owned
//     (e.lane[...], d.ct.shards[...]) must use the lane parameter (or an
//     alias/conversion of it, or a lane/shard field of lane-owned state).
//     Any other index — a sibling shard, a literal, a loop variable — is a
//     cross-lane access, read or write.
//   - Writes rooted at shared state (pointers to non-lane-owned named
//     structs, package variables, caller-visible slices) are diagnostics;
//     sync/atomic calls are naturally exempt because they are calls, not
//     assignments. *packet.Packet writes are exempt: the packet itself is
//     owned by whoever holds it (retaincheck governs that contract).
//   - Drawing from a shared *sim.Rand is a diagnostic: the entropy stream's
//     order would depend on lane interleaving.
//
// Packages with no markers are untouched. Dynamic calls (interface methods,
// func values) are boundaries, as everywhere in tspu-vet. Call results are
// treated as lane-local (the producer owns what it returns).
//
// Across packages the markers travel as facts: LaneOwnedFact on every marked
// type, so lane code in one package recognizes shard state declared in
// another, and LaneEntryFact on every lane root, so lane-reachable code that
// statically calls an imported entry point must hand it this lane's own index
// — anything else is a cross-lane handoff.
var Lanecheck = &analysis.Analyzer{
	Name: "lanecheck",
	Doc: "code reachable from a //tspuvet:lane entry point may touch " +
		"//tspuvet:laneowned sharded state only through the lane's own shard, " +
		"indexed by the lane parameter; writes to shared structs and shared " +
		"RNG draws are diagnostics; markers cross package seams as facts",
	Run:       runLanecheck,
	FactTypes: []analysis.Fact{(*LaneOwnedFact)(nil), (*LaneEntryFact)(nil)},
}

// LaneOwnedFact marks a type declared //tspuvet:laneowned: a value of it is
// owned by exactly one lane, so importing packages' lane code treats it as
// shard state rather than shared memory.
type LaneOwnedFact struct{}

// AFact marks LaneOwnedFact as a serializable analysis fact.
func (*LaneOwnedFact) AFact() {}

// LaneEntryFact marks a //tspuvet:lane entry point. LaneParam is the
// flattened index of its integer lane parameter, or -1 when the lane
// identity is a lane-owned receiver instead.
type LaneEntryFact struct {
	LaneParam int `json:"laneParam"`
}

// AFact marks LaneEntryFact as a serializable analysis fact.
func (*LaneEntryFact) AFact() {}

const (
	laneVerb      = "lane"
	laneownedVerb = "laneowned"
)

// laneParamNames are accepted names for the lane-index parameter.
var laneParamNames = map[string]bool{
	"lane": true, "l": true, "laneID": true, "shard": true, "shardID": true,
}

func runLanecheck(pass *analysis.Pass) (any, error) {
	c := &laneChecker{pass: pass, owned: map[*types.TypeName]bool{}}
	nodes, order := c.collect()
	if nodes == nil {
		return nil, nil
	}
	if pass.FactsEnabled() {
		for tn := range c.owned {
			pass.ExportObjectFact(tn, &LaneOwnedFact{})
		}
		for _, n := range order {
			if n.root {
				pass.ExportObjectFact(n.fn, &LaneEntryFact{LaneParam: laneParamIndex(pass.TypesInfo, n.decl)})
			}
		}
	}

	// Call-graph edges and BFS from the lane roots, mirroring hotpath.
	for _, n := range order {
		seen := map[*funcNode]bool{}
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			target, ok := nodes[callee]
			if !ok || seen[target] {
				return true
			}
			seen[target] = true
			n.edges = append(n.edges, target)
			return true
		})
	}
	var queue []*funcNode
	for _, n := range order {
		if n.root {
			n.reached = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, callee := range n.edges {
			if callee.reached {
				continue
			}
			callee.reached = true
			callee.parent = n
			queue = append(queue, callee)
		}
	}
	for _, n := range order {
		if n.reached {
			c.checkFunc(n)
		}
	}
	return nil, nil
}

type laneChecker struct {
	pass  *analysis.Pass
	owned map[*types.TypeName]bool
}

// isOwned reports whether a type is lane-owned: marked in this package, or
// carrying an imported LaneOwnedFact from the package that declared it.
func (c *laneChecker) isOwned(tn *types.TypeName) bool {
	if tn == nil {
		return false
	}
	if c.owned[tn] {
		return true
	}
	if tn.Pkg() != nil && tn.Pkg() != c.pass.Pkg {
		var lf LaneOwnedFact
		return c.pass.ImportObjectFact(tn, &lf)
	}
	return false
}

// collect gathers lane/laneowned markers (validating placement) and builds
// the function-node table. Returns nil when the package carries no markers.
func (c *laneChecker) collect() (map[*types.Func]*funcNode, []*funcNode) {
	nodes := map[*types.Func]*funcNode{}
	var order []*funcNode
	consumed := map[*ast.Comment]bool{}
	anyMark := false

	// Pass 1: type markers, so function-marker validation can ask whether a
	// receiver is lane-owned regardless of declaration order.
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.GenDecl)
			if !ok || d.Tok != token.TYPE {
				continue
			}
			markSpecs := func(doc *ast.CommentGroup, specs []ast.Spec) {
				if doc == nil {
					return
				}
				for _, cm := range doc.List {
					verb, ok := laneMarkerOf(cm)
					if !ok {
						continue
					}
					consumed[cm] = true
					anyMark = true
					if verb == laneVerb {
						c.pass.Reportf(cm.Pos(), "//tspuvet:lane belongs on a function declaration, not on a type")
						continue
					}
					for _, spec := range specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							c.owned[tn] = true
						}
					}
				}
			}
			markSpecs(d.Doc, d.Specs)
			for _, spec := range d.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					markSpecs(ts.Doc, []ast.Spec{spec})
				}
			}
		}
	}

	// Pass 2: function markers and the node table.
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok || d.Body == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[d.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &funcNode{fn: fn, decl: d, name: funcDisplayName(d)}
			if d.Doc != nil {
				for _, cm := range d.Doc.List {
					verb, ok := laneMarkerOf(cm)
					if !ok {
						continue
					}
					consumed[cm] = true
					anyMark = true
					switch verb {
					case laneVerb:
						n.root = true
						// The lane identity is either an integer lane parameter
						// or a lane-owned receiver (a per-lane pipe or shard
						// whose methods run on that lane).
						if laneParamObj(c.pass.TypesInfo, d) == nil && !c.laneOwnedRecv(d) {
							c.pass.Reportf(cm.Pos(), "//tspuvet:lane on %s: a lane entry point needs an "+
								"integer lane parameter named lane, l, laneID, shard, or shardID, "+
								"or a //tspuvet:laneowned receiver", n.name)
						}
					case laneownedVerb:
						c.pass.Reportf(cm.Pos(), "//tspuvet:laneowned belongs on a type declaration, not on function %s", n.name)
					}
				}
			}
			nodes[fn] = n
			order = append(order, n)
		}
	}

	// A marker attached to nothing silently enforces nothing.
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				verb, ok := laneMarkerOf(cm)
				if !ok || consumed[cm] {
					continue
				}
				anyMark = true
				c.pass.Reportf(cm.Pos(), "//tspuvet:%s must be the doc comment of a %s declaration",
					verb, map[string]string{laneVerb: "function", laneownedVerb: "type"}[verb])
			}
		}
	}
	if !anyMark {
		return nil, nil
	}
	return nodes, order
}

// laneOwnedRecv reports whether fd is a method on a lane-owned type.
func (c *laneChecker) laneOwnedRecv(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := c.pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && c.isOwned(named.Obj())
}

// laneMarkerOf parses a //tspuvet:lane or //tspuvet:laneowned comment.
func laneMarkerOf(c *ast.Comment) (string, bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return "", false
	}
	body := strings.TrimPrefix(c.Text, directivePrefix)
	if i := strings.Index(body, "//"); i >= 0 {
		body = strings.TrimSpace(body[:i])
	}
	verb, _, _ := strings.Cut(body, " ")
	if verb != laneVerb && verb != laneownedVerb {
		return "", false
	}
	return verb, true
}

// laneParamIndex returns the flattened parameter index of the declared
// lane-index parameter (receiver excluded, matching call-argument positions),
// or -1 when the function has none.
func laneParamIndex(info *types.Info, fd *ast.FuncDecl) int {
	if fd.Type.Params == nil {
		return -1
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if laneParamNames[name.Name] {
				if obj := info.Defs[name]; obj != nil {
					if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
						return i
					}
				}
			}
			i++
		}
	}
	return -1
}

// laneParamObj finds the declared lane-index parameter of a function.
func laneParamObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if !laneParamNames[name.Name] {
				continue
			}
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return obj
			}
		}
	}
	return nil
}

// laneClass classifies what memory an expression's chain roots in.
type laneClass int

const (
	classLocal     laneClass = iota // frame-local value, or exempt (packets)
	classLaneLocal                  // this lane's own shard state
	classShared                     // state visible to other lanes
)

// laneWalker checks one lane-reachable function.
type laneWalker struct {
	c *laneChecker
	n *funcNode
	// params holds the function's parameter and receiver objects.
	params map[types.Object]bool
	// laneObj is the lane-index parameter, if any.
	laneObj types.Object
	// laneAliases are locals bound to the lane index (x := l, x := int(lane)).
	laneAliases map[types.Object]bool
	// aliases classifies pointer locals by what their initializer roots in.
	aliases map[types.Object]laneClass
	// badIndex records cross-lane IndexExpr nodes already reported, so the
	// shared-write rule does not double-report the same access.
	badIndex map[ast.Node]bool
}

func (c *laneChecker) checkFunc(n *funcNode) {
	w := &laneWalker{
		c:           c,
		n:           n,
		params:      map[types.Object]bool{},
		laneAliases: map[types.Object]bool{},
		aliases:     map[types.Object]laneClass{},
		badIndex:    map[ast.Node]bool{},
	}
	info := c.pass.TypesInfo
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					w.params[obj] = true
				}
			}
		}
	}
	collect(n.decl.Recv)
	collect(n.decl.Type.Params)
	w.laneObj = laneParamObj(info, n.decl)
	w.prepass()
	w.walk()
}

// prepass classifies locals by their first := initializer, in source order
// (aliases of aliases resolve because definitions precede uses).
func (w *laneWalker) prepass() {
	info := w.c.pass.TypesInfo
	ast.Inspect(w.n.decl.Body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				continue
			}
			if w.isLaneIndex(as.Rhs[i]) {
				w.laneAliases[obj] = true
				continue
			}
			if _, done := w.aliases[obj]; !done {
				w.aliases[obj] = w.class(as.Rhs[i])
			}
		}
		return true
	})
}

// class resolves the memory class an expression's access chain roots in.
// It never reports; the walk does.
func (w *laneWalker) class(e ast.Expr) laneClass {
	info := w.c.pass.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if w.c.pass.PkgNameOf(e) != nil {
			return classShared // package-qualified access
		}
		obj := info.ObjectOf(e)
		if obj == nil {
			return classLocal
		}
		if obj.Parent() == w.c.pass.Pkg.Scope() || (obj.Pkg() != nil && obj.Pkg() != w.c.pass.Pkg) {
			return classShared // package-level variable
		}
		if w.params[obj] {
			return w.paramClass(obj)
		}
		if cls, ok := w.aliases[obj]; ok {
			return cls
		}
		return classLocal
	case *ast.SelectorExpr:
		base := w.class(e.X)
		if base == classLaneLocal {
			// A pointer field out of lane-local state into a non-lane-owned
			// named struct (lanePipe.e -> *Engine) re-enters shared territory.
			if t := info.TypeOf(e); t != nil {
				if p, ok := t.Underlying().(*types.Pointer); ok {
					if named, ok := p.Elem().(*types.Named); ok && !w.c.isOwned(named.Obj()) && !isPacketNamed(named) {
						if _, isStruct := named.Underlying().(*types.Struct); isStruct {
							return classShared
						}
					}
				}
			}
		}
		return base
	case *ast.IndexExpr:
		if w.elemLaneOwned(info.TypeOf(e.X)) {
			base := w.class(e.X)
			if base == classLaneLocal || base == classLocal {
				return classLaneLocal
			}
			if w.isLaneIndex(e.Index) {
				return classLaneLocal
			}
			return classShared
		}
		return w.class(e.X)
	case *ast.StarExpr:
		return w.class(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return w.class(e.X)
		}
		return classLocal
	case *ast.CallExpr:
		return classLaneLocal // the producer owns its result
	}
	return classLocal
}

// paramClass classifies a parameter or receiver object.
func (w *laneWalker) paramClass(obj types.Object) laneClass {
	t := obj.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if w.c.isOwned(named.Obj()) {
			return classLaneLocal
		}
		if isPacketNamed(named) {
			return classLocal // the packet is owned by its current holder
		}
		if _, isStruct := named.Underlying().(*types.Struct); isStruct {
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
				return classShared
			}
		}
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		if w.elemLaneOwned(obj.Type()) {
			// A bare lane-owned slice parameter is the whole sharded
			// container; indexing it still needs the lane parameter.
			return classShared
		}
		return classShared // aliases caller-visible memory
	}
	return classLocal
}

// elemLaneOwned reports whether unwrapping slices/arrays of t reaches a
// lane-owned named type.
func (w *laneWalker) elemLaneOwned(t types.Type) bool {
	for t != nil {
		if named, ok := t.(*types.Named); ok {
			if w.c.isOwned(named.Obj()) {
				return true
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Pointer:
			t = u.Elem()
		default:
			return false
		}
	}
	return false
}

// isLaneIndex reports whether e is the lane index: the lane parameter, an
// alias of it, an integer conversion of either, or a lane/shard-named field
// of lane-owned state.
func (w *laneWalker) isLaneIndex(e ast.Expr) bool {
	info := w.c.pass.TypesInfo
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return false
		}
		return obj == w.laneObj || w.laneAliases[obj]
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return w.isLaneIndex(e.Args[0])
		}
		return false
	case *ast.SelectorExpr:
		return laneParamNames[e.Sel.Name] && w.class(e.X) == classLaneLocal
	}
	return false
}

// walk scans the body for cross-lane indexing, shared writes, and shared RNG
// draws.
func (w *laneWalker) walk() {
	info := w.c.pass.TypesInfo
	// Pass 1: cross-lane indexing, reads and writes alike.
	ast.Inspect(w.n.decl.Body, func(x ast.Node) bool {
		ix, ok := x.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if !w.elemLaneOwned(info.TypeOf(ix.X)) {
			return true
		}
		base := w.class(ix.X)
		if base == classLaneLocal || base == classLocal {
			return true
		}
		if w.isLaneIndex(ix.Index) {
			return true
		}
		w.badIndex[ix] = true
		w.reportf(ix.Pos(), "cross-lane access: %s is indexed with %s, not the lane parameter — "+
			"a lane may touch only its own shard", exprString(ix.X), exprString(ix.Index))
		return true
	})
	// Pass 2: writes and RNG draws.
	ast.Inspect(w.n.decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				w.checkWrite(lhs, x.Pos())
			}
		case *ast.IncDecStmt:
			w.checkWrite(x.X, x.Pos())
		case *ast.SendStmt:
			if w.class(x.Chan) == classShared {
				w.reportf(x.Pos(), "send on a shared channel from lane-reachable code synchronizes across lanes")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && len(x.Args) > 0 {
					w.checkWrite(x.Args[0], x.Pos())
				}
			}
			w.checkRand(x)
			w.checkLaneHandoff(x)
		}
		return true
	})
}

// checkLaneHandoff flags a static call from lane-reachable code to an
// imported lane entry point whose lane argument is not this lane's index:
// the callee selects a shard with it, so anything else crosses lanes.
func (w *laneWalker) checkLaneHandoff(call *ast.CallExpr) {
	fn := calleeFunc(w.c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == w.c.pass.Pkg {
		return
	}
	var ef LaneEntryFact
	if !w.c.pass.ImportObjectFact(fn, &ef) || ef.LaneParam < 0 || ef.LaneParam >= len(call.Args) {
		return
	}
	arg := call.Args[ef.LaneParam]
	if w.isLaneIndex(arg) {
		return
	}
	w.reportf(call.Pos(), "cross-lane handoff: %s.%s is a lane entry point but %s is not this lane's index",
		fn.Pkg().Name(), fn.Name(), exprString(arg))
}

// checkWrite flags a write whose destination chain roots in shared state.
func (w *laneWalker) checkWrite(lhs ast.Expr, pos token.Pos) {
	if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		return // rebinding a local is a frame write
	}
	hasBad := false
	ast.Inspect(lhs, func(x ast.Node) bool {
		if w.badIndex[x] {
			hasBad = true
		}
		return true
	})
	if hasBad {
		return // the cross-lane index report already covers this access
	}
	if w.class(lhs) == classShared {
		w.reportf(pos, "lane-reachable code writes shared state through %s; route the write through "+
			"the lane's own shard or use sync/atomic", exprString(lhs))
	}
}

// checkRand flags method calls on a shared *sim.Rand: consuming a shared
// entropy stream from lane code makes the draw order depend on interleaving.
func (w *laneWalker) checkRand(call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	t := w.c.pass.TypesInfo.TypeOf(sel.X)
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Name() != "Rand" ||
		named.Obj().Pkg() == nil || named.Obj().Pkg().Name() != "sim" {
		return
	}
	if w.class(sel.X) == classShared {
		w.reportf(call.Pos(), "lane-reachable code draws from a shared sim.Rand: the stream order would "+
			"depend on lane interleaving; derive per-flow randomness instead")
	}
}

func (w *laneWalker) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	w.c.pass.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(
		"%s (%s); fix it or justify with //tspuvet:allow lanecheck: <reason>", msg, laneChainLabel(w.n))})
}

// laneChainLabel mirrors chainLabel with lane wording.
func laneChainLabel(n *funcNode) string {
	if n.parent == nil {
		return fmt.Sprintf("lane entry point %s", n.name)
	}
	var names []string
	for m := n; m != nil; m = m.parent {
		names = append(names, m.name)
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return "reached via " + strings.Join(names, " → ")
}

// isPacketNamed reports whether named is packet.Packet.
func isPacketNamed(named *types.Named) bool {
	obj := named.Obj()
	return obj != nil && obj.Name() == "Packet" && obj.Pkg() != nil && obj.Pkg().Name() == "packet"
}
