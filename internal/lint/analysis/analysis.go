// Package analysis is a self-contained reimplementation of the core of
// golang.org/x/tools/go/analysis, shaped API-for-API so the tspu-vet
// analyzers read like upstream vet analyzers and could be ported onto the
// real framework by changing one import. The module is deliberately
// dependency-free (see DESIGN.md), and the build environment pins that down
// hard, so the framework lives here instead of in go.mod.
//
// Only the subset the determinism suite needs is implemented: syntax+types
// passes with positional diagnostics, plus object facts (see Fact) so the
// contract analyzers can follow calls across package boundaries. SSA is out
// of scope — every tspu-vet analyzer is a function of one type-checked
// package and the facts its dependencies exported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check. Mirrors x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tspuvet:allow directives. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph help text shown by tspu-vet -help.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) (any, error)
	// FactTypes lists prototypes of the fact types this analyzer exports or
	// imports, so the driver can decode them from serialized .vetx files.
	// Analyzers with no FactTypes are pure per-package passes.
	FactTypes []Fact
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one Analyzer and one package. Mirrors the
// fields of x/tools' analysis.Pass that the suite uses.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)

	// Facts is this pass's view into the whole-program fact store, set by the
	// driver when it runs packages in dependency order. Nil means facts are
	// unavailable (a bare per-package run); analyzers must degrade to their
	// per-package behavior then.
	Facts *FactSet
}

// FactsEnabled reports whether this pass can exchange facts across packages.
func (p *Pass) FactsEnabled() bool { return p.Facts != nil }

// ExportObjectFact attaches fact to obj (a package-level object of the
// package being analyzed) for importing packages to see. No-op when facts
// are disabled.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.Facts != nil {
		p.Facts.export(obj, fact)
	}
}

// ImportObjectFact copies the fact of ptr's type attached to obj into ptr,
// reporting whether one existed. Works for objects of this package (exported
// earlier in this pass) and of its dependencies.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.imp(obj, ptr)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos // optional: token.NoPos if unknown
	Category string    // the reporting analyzer's name; set by the driver
	Message  string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ReportRangef reports a formatted diagnostic over an AST node's extent.
func (p *Pass) ReportRangef(n ast.Node, format string, args ...any) {
	p.Report(Diagnostic{Pos: n.Pos(), End: n.End(), Message: fmt.Sprintf(format, args...)})
}

// PkgNameOf resolves the *types.PkgName a selector's base identifier refers
// to, or nil if the identifier is not a package name. It is the type-correct
// way to answer "is this expression `time.Now` the package time, even if the
// file renamed the import?".
func (p *Pass) PkgNameOf(id *ast.Ident) *types.PkgName {
	if p.TypesInfo == nil {
		return nil
	}
	if pn, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn
	}
	return nil
}
