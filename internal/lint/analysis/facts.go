package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a datum one analyzer attaches to a package-level object so that the
// analysis of a *depending* package can see through the import boundary —
// the same role x/tools' analysis.Fact plays. A fact type is a pointer to a
// JSON-serializable struct and declares itself with the AFact marker method.
//
// Facts attach to package-level functions, methods on package-level named
// types, and package-level type names: those are the only objects an
// importing package can reach, and the only ones with a stable cross-package
// key ("Handle", "Device.Handle", "ConnState"). Exporting a fact on any other
// object is a no-op by design.
type Fact interface{ AFact() }

// objectKey renders the stable serialization key of a package-level object:
// "Name" for functions, type names, vars, and consts; "Recv.Name" for
// methods. It returns "" for objects that cannot carry facts (locals, fields,
// interface methods without a concrete receiver).
func objectKey(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return ""
			}
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return ""
	}
	return obj.Name()
}

// factKey identifies one stored fact: one analyzer may attach one fact of
// each type to each object.
type factKey struct {
	pkg      string // package import path
	obj      string // objectKey within the package
	analyzer string
	typ      string // fact type's struct name
}

// Store holds every exported object fact of one whole-program run. The driver
// threads one Store through all packages in dependency order (standalone
// mode) or rebuilds the relevant slice of it from .vetx files (unitchecker
// mode); the two views are interchangeable because facts serialize to JSON.
type Store struct {
	m map[factKey]Fact
	// typesByName maps "analyzer/TypeName" to the fact's concrete type, for
	// decoding serialized facts. Built from the analyzers' FactTypes.
	typesByName map[string]reflect.Type
}

// NewStore builds an empty store that can decode the fact types declared by
// analyzers.
func NewStore(analyzers ...*Analyzer) *Store {
	s := &Store{m: map[factKey]Fact{}, typesByName: map[string]reflect.Type{}}
	for _, a := range analyzers {
		for _, f := range a.FactTypes {
			s.typesByName[a.Name+"/"+factTypeName(f)] = reflect.TypeOf(f)
		}
	}
	return s
}

// factTypeName is the serialized name of a fact's dynamic type.
func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// FactSet is one analyzer's view of the store while analyzing one package:
// exports attach to that analyzer's name, imports resolve against it.
type FactSet struct {
	store    *Store
	analyzer string
	pkg      *types.Package
}

// View scopes the store to one (analyzer, package) pass.
func (s *Store) View(analyzer string, pkg *types.Package) *FactSet {
	return &FactSet{store: s, analyzer: analyzer, pkg: pkg}
}

// export records fact on obj. Objects without a stable key are skipped (see
// Fact); re-exporting overwrites, so re-analyzing a package is idempotent.
func (fs *FactSet) export(obj types.Object, fact Fact) {
	key := objectKey(obj)
	if key == "" {
		return
	}
	fs.store.m[factKey{obj.Pkg().Path(), key, fs.analyzer, factTypeName(fact)}] = fact
}

// imp copies the stored fact for obj into ptr and reports whether one
// existed. ptr selects the fact type, exactly like x/tools.
func (fs *FactSet) imp(obj types.Object, ptr Fact) bool {
	key := objectKey(obj)
	if key == "" {
		return false
	}
	got, ok := fs.store.m[factKey{obj.Pkg().Path(), key, fs.analyzer, factTypeName(ptr)}]
	if !ok {
		return false
	}
	dv := reflect.ValueOf(ptr)
	sv := reflect.ValueOf(got)
	if dv.Type() != sv.Type() || dv.Kind() != reflect.Pointer {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// encodedFact is the serialized form of one fact in a .vetx file.
type encodedFact struct {
	Obj      string          `json:"obj"`
	Analyzer string          `json:"analyzer"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// ExportPackage serializes every fact attached to objects of pkgPath, sorted
// so the bytes are deterministic regardless of analysis order.
func (s *Store) ExportPackage(pkgPath string) ([]byte, error) {
	var out []encodedFact
	for k, f := range s.m {
		if k.pkg != pkgPath {
			continue
		}
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("encoding fact %s/%s on %s: %w", k.analyzer, k.typ, k.obj, err)
		}
		out = append(out, encodedFact{Obj: k.obj, Analyzer: k.analyzer, Type: k.typ, Data: data})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Obj != b.Obj {
			return a.Obj < b.Obj
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Type < b.Type
	})
	return json.Marshal(out)
}

// ImportPackage merges serialized facts back in as pkgPath's. Facts whose
// analyzer or type is unknown to this store (an analyzer deselected by flags)
// are skipped, not errors: the go command caches .vetx files across flag
// sets.
func (s *Store) ImportPackage(pkgPath string, data []byte) error {
	if len(data) == 0 {
		return nil // an empty .vetx means "no facts", the pre-facts format
	}
	var in []encodedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("decoding facts for %s: %w", pkgPath, err)
	}
	for _, e := range in {
		rt, ok := s.typesByName[e.Analyzer+"/"+e.Type]
		if !ok {
			continue
		}
		v := reflect.New(rt.Elem())
		if err := json.Unmarshal(e.Data, v.Interface()); err != nil {
			return fmt.Errorf("decoding %s/%s fact on %s.%s: %w", e.Analyzer, e.Type, pkgPath, e.Obj, err)
		}
		s.m[factKey{pkgPath, e.Obj, e.Analyzer, e.Type}] = v.Interface().(Fact)
	}
	return nil
}
