package lint_test

import (
	"testing"

	"tspusim/internal/lint"
	"tspusim/internal/lint/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "walltime")
}

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Globalrand, "globalrand")
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Maporder, "maporder")
}

func TestAllowdirective(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Allowdirective, "allowdirective")
}
