package lint_test

import (
	"testing"

	"tspusim/internal/lint"
	"tspusim/internal/lint/analysistest"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Walltime, "walltime")
}

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Globalrand, "globalrand")
}

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Maporder, "maporder")
}

func TestAllowdirective(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Allowdirective, "allowdirective")
}

func TestHotpath(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Hotpath, "hotpath")
}

func TestSynccheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Synccheck, "synccheck")
}

// TestHotpathRegress is the fault re-injection fixture: a shrunk conntrack
// with a deliberate fmt.Sprintf on the per-packet path, caught with the full
// call chain in the diagnostic.
func TestHotpathRegress(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Hotpath, "hotpathregress")
}

func TestRetaincheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Retaincheck, "retaincheck")
}

func TestLanecheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Lanecheck, "lanecheck")
}

func TestPoolcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Poolcheck, "poolcheck")
}

// TestRetainRegress is the fault re-injection fixture for retaincheck: the
// capture-middlebox shape PR 6's clone-free handoff makes dangerous, stashing
// the live packet through a helper, caught with the Handle → observe chain.
func TestRetainRegress(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Retaincheck, "retainregress")
}

// TestLaneRegress is the fault re-injection fixture for lanecheck: a
// HandleSharded lane stealing work from the neighbouring conntrack shard and
// bumping an engine-level counter without synchronization.
func TestLaneRegress(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Lanecheck, "laneregress")
}

func TestStatecheck(t *testing.T) {
	analysistest.Run(t, "testdata", lint.Statecheck, "statecheck")
}

// TestPurityFacts runs walltime whole-program: clockutil's wall-clock read
// taints its exported API, and the consuming package is held to it through
// the ImpureFact.
func TestPurityFacts(t *testing.T) {
	analysistest.RunFacts(t, "testdata", lint.Walltime, "purityfacts")
}

// TestHotpathFacts runs hotpath whole-program: an unmarked helper package's
// allocations surface at hot call sites in the consumer via AllocFacts,
// including a two-hop chain inside the helper.
func TestHotpathFacts(t *testing.T) {
	analysistest.RunFacts(t, "testdata", lint.Hotpath, "hotfacts")
}

// TestRetainFacts runs retaincheck whole-program: the stash helper's
// package-level stores export RetainsFacts, so forwarding a live packet
// across the package boundary is now a caller-side diagnostic too.
func TestRetainFacts(t *testing.T) {
	analysistest.RunFacts(t, "testdata", lint.Retaincheck, "retainfacts")
}

// TestStatecheckFacts runs statecheck whole-program: enumdef's closed enum
// membership travels as an EnumFact, and the consumer's switches are held
// exhaustive against it.
func TestStatecheckFacts(t *testing.T) {
	analysistest.RunFacts(t, "testdata", lint.Statecheck, "statefacts")
}
