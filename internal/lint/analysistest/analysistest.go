// Package analysistest is a golden-test driver for the tspu-vet analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture packages
// live under testdata/src/<path>, and every line that should trigger a
// diagnostic carries a trailing
//
//	// want "regexp"
//
// comment (several quoted regexps may follow one want). The harness runs one
// analyzer over the type-checked fixture and fails the test on any
// unexpected diagnostic or unmatched expectation.
//
// Fixture imports resolve testdata-locally first (so fixtures can model
// module-internal packages like tspusim/internal/report) and fall back to
// type-checking the standard library from GOROOT source, which keeps the
// harness free of both the network and the go command.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"tspusim/internal/lint/analysis"
)

// Run applies a to each fixture package (a path under dir/src) and checks
// its diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgPaths {
		lp, err := l.load(path)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, path, err)
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.fset,
			Files:     lp.files,
			Pkg:       lp.pkg,
			TypesInfo: lp.info,
			Report: func(d analysis.Diagnostic) {
				d.Category = a.Name
				diags = append(diags, d)
			},
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: running on %s: %v", a.Name, path, err)
			continue
		}
		checkExpectations(t, a.Name, l.fset, lp.files, diags)
	}
}

// RunFacts applies a to pkgPaths and every fixture-local package they pull
// in, in dependency order with one shared fact store — the whole-program
// analogue of Run. Want comments are checked in dependency packages too, so
// one fixture tree pins both the local diagnostic that seeds a fact and the
// cross-package diagnostic the fact produces.
func RunFacts(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgPaths {
		if _, err := l.load(path); err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, path, err)
			return
		}
	}
	store := analysis.NewStore(a)
	// l.order is type-check completion order: a package's imports finish
	// before it does, so walking it forward is dependency order.
	diagsByPath := map[string][]analysis.Diagnostic{}
	for _, path := range l.order {
		lp := l.pkgs[path]
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.fset,
			Files:     lp.files,
			Pkg:       lp.pkg,
			TypesInfo: lp.info,
			Facts:     store.View(a.Name, lp.pkg),
			Report: func(d analysis.Diagnostic) {
				d.Category = a.Name
				diags = append(diags, d)
			},
		}
		if _, err := a.Run(pass); err != nil {
			t.Errorf("%s: running on %s: %v", a.Name, path, err)
			return
		}
		diagsByPath[path] = diags
	}
	for _, path := range l.order {
		checkExpectations(t, a.Name, l.fset, l.pkgs[path].files, diagsByPath[path])
	}
}

// expectation is one "want" regexp attached to a fixture line.
type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"|` + "`[^`]*`")

// checkExpectations enforces the analysistest contract: every diagnostic
// matches a want on its line, and every want is matched by a diagnostic.
func checkExpectations(t *testing.T, name string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	byLine := map[string][]*expectation{}
	var all []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRe.FindAllString(m[1], -1) {
					var pat string
					if q[0] == '`' {
						pat = q[1 : len(q)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(q)
						if err != nil {
							t.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
							continue
						}
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						continue
					}
					e := &expectation{file: pos.Filename, line: pos.Line, rx: rx}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					byLine[key] = append(byLine[key], e)
					all = append(all, e)
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		matched := false
		for _, e := range byLine[key] {
			if !e.met && e.rx.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d:%d: %s", name, pos.Filename, pos.Line, pos.Column, d.Message)
		}
	}
	for _, e := range all {
		if !e.met {
			t.Errorf("%s: no diagnostic at %s:%d matching %q", name, e.file, e.line, e.rx)
		}
	}
}

// loader type-checks fixture packages, memoized, with stdlib fallback.
type loader struct {
	root string
	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*loaded
	// order records fixture packages in type-check completion order; imports
	// complete before their importers, so this is a topological order.
	order []string
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
	err   error
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root: root,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*loaded{},
	}
}

// Import makes loader a types.Importer for fixture-internal imports.
func (l *loader) Import(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.root, filepath.FromSlash(path))); err == nil {
		lp, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return lp.pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) (*loaded, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, lp.err
	}
	lp := &loaded{}
	l.pkgs[path] = lp
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		lp.err = err
		return lp, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		lp.err = fmt.Errorf("no .go files in %s", dir)
		return lp, lp.err
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			lp.err = err
			return lp, err
		}
		lp.files = append(lp.files, f)
	}
	lp.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	lp.pkg, lp.err = conf.Check(path, l.fset, lp.files, lp.info)
	if lp.err == nil {
		l.order = append(l.order, path)
	}
	return lp, lp.err
}
