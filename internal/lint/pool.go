package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tspusim/internal/lint/analysis"
)

// Poolcheck is the pool-lifecycle lint for the repo's recycled-object
// families: sim events and timers, tspu flowEntries, netem deliveries, and
// the fleet's sync.Pool of Sims. Every one of them shares a failure mode —
// a record is returned to its free list and then touched again, silently
// reading or corrupting whatever the next allocation put there. The
// generation counters catch some of this at runtime (and -tags=pooldebug
// poisons records to catch more), but the static shape is checkable
// directly:
//
//   - A release is a call named Put/Release/Recycle/Free (any case) whose
//     single argument is a pointer-typed variable, or an append onto a
//     free-list slice (a slice whose name contains "free"):
//     sh.free = append(sh.free, e).
//   - After the release, any mention of the variable in the same function is
//     a diagnostic: reads, writes, re-releases (double release), captures by
//     closures, goroutine arguments. Reassigning the variable re-arms it.
//   - Releases on only some paths of a branch are not definite: the released
//     set after an if/switch is the intersection over the branches that fall
//     through (a branch ending in return/panic doesn't count). A release on
//     every path followed by another release is a definite double release.
//   - Loops are conservative: releases inside a loop body are not treated as
//     definite after it (the body may not have run), but uses inside the
//     loop of something released before it are still flagged.
//
// The analysis is a structural walk of each function body — no SSA — which
// matches how the real pools are used: release-then-return, or copy the
// fields out first and release last. Deliberate exceptions (tests proving
// generation bumps, for instance) carry //tspuvet:allow poolcheck: <reason>.
var Poolcheck = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "flag use-after-release, double release, and escaping references " +
		"to pooled objects after Put/Release/Recycle/Free or a free-list append",
	Run: runPoolcheck,
}

// poolReleaseNames are callee names that return their argument to a pool.
var poolReleaseNames = map[string]bool{
	"Put": true, "put": true,
	"Release": true, "release": true,
	"Recycle": true, "recycle": true,
	"Free": true, "free": true,
}

func runPoolcheck(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &poolWalker{pass: pass}
			w.block(fd.Body.List, map[types.Object]token.Pos{})
			// Closure bodies get their own walk: a release inside a literal
			// followed by a use inside the same literal is the same bug.
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				if lit, ok := x.(*ast.FuncLit); ok {
					w.block(lit.Body.List, map[types.Object]token.Pos{})
				}
				return true
			})
		}
	}
	return nil, nil
}

type poolWalker struct {
	pass *analysis.Pass
}

// block walks statements sequentially, mutating rel (object -> release pos).
func (w *poolWalker) block(stmts []ast.Stmt, rel map[types.Object]token.Pos) {
	for _, s := range stmts {
		w.stmt(s, rel)
	}
}

func (w *poolWalker) stmt(s ast.Stmt, rel map[types.Object]token.Pos) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		w.block(s.List, rel)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, rel)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, rel)
		}
		w.checkUses(s.Cond, rel, nil)
		then := copyRel(rel)
		w.block(s.Body.List, then)
		var paths []map[types.Object]token.Pos
		if !terminates(s.Body) {
			paths = append(paths, then)
		}
		if s.Else != nil {
			els := copyRel(rel)
			w.stmt(s.Else, els)
			if !stmtTerminates(s.Else) {
				paths = append(paths, els)
			}
		} else {
			paths = append(paths, copyRel(rel)) // fall-through path
		}
		mergeRel(rel, paths)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, rel)
		}
		w.checkUses(s.Cond, rel, nil)
		loop := copyRel(rel)
		w.block(s.Body.List, loop)
		if s.Post != nil {
			w.stmt(s.Post, loop)
		}
	case *ast.RangeStmt:
		w.checkUses(s.X, rel, nil)
		loop := copyRel(rel)
		w.block(s.Body.List, loop)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		w.branches(s, rel)
	case *ast.DeferStmt:
		// Deferred calls run at function exit; ordering against later
		// releases is out of scope for a structural walk.
	default:
		w.leaf(s, rel)
	}
}

// branches handles switch/select: each clause runs on a copy; the released
// set after is the intersection over falling-through clauses, and only when
// the construct covers all paths (a default clause).
func (w *poolWalker) branches(s ast.Stmt, rel map[types.Object]token.Pos) {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, rel)
		}
		w.checkUses(s.Tag, rel, nil)
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, rel)
		}
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	var paths []map[types.Object]token.Pos
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				w.checkUses(e, rel, nil)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				w.stmt(cl.Comm, copyRel(rel))
			}
			stmts = cl.Body
		}
		cp := copyRel(rel)
		w.block(stmts, cp)
		if !blockTerminates(stmts) {
			paths = append(paths, cp)
		}
	}
	if !hasDefault {
		paths = append(paths, copyRel(rel)) // the skipped-every-case path
	}
	mergeRel(rel, paths)
}

// leaf handles a straight-line statement: check every identifier against the
// released set, apply reassignment clears, then record this statement's own
// releases.
func (w *poolWalker) leaf(s ast.Stmt, rel map[types.Object]token.Pos) {
	rels := w.releasesOf(s)
	if as, ok := s.(*ast.AssignStmt); ok {
		// RHS uses are checked; a plain-ident LHS re-arms rather than uses
		// (e = newEntry() after a release is the fix, not the bug). One
		// reported set spans the statement so an object is flagged once.
		reported := map[types.Object]bool{}
		for _, rhs := range as.Rhs {
			w.checkUsesWith(rhs, rel, rels, reported)
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if obj := w.pass.TypesInfo.ObjectOf(id); obj != nil {
					delete(rel, obj) // re-armed with a fresh value
				}
				continue
			}
			w.checkUsesWith(lhs, rel, rels, reported)
		}
	} else {
		w.checkUses(s, rel, rels)
	}
	for obj, pos := range rels {
		rel[obj] = pos
	}
}

// checkUses reports identifiers referring to already-released objects. rels
// holds the current statement's own releases, to distinguish double release
// from plain use-after-release.
func (w *poolWalker) checkUses(n ast.Node, rel map[types.Object]token.Pos, rels map[types.Object]token.Pos) {
	w.checkUsesWith(n, rel, rels, map[types.Object]bool{})
}

func (w *poolWalker) checkUsesWith(n ast.Node, rel, rels map[types.Object]token.Pos, reported map[types.Object]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		relPos, released := rel[obj]
		if !released || reported[obj] {
			return true
		}
		reported[obj] = true
		line := w.pass.Fset.Position(relPos).Line
		if _, again := rels[obj]; again {
			w.pass.Reportf(id.Pos(), "%s released twice (first released at line %d): "+
				"double release corrupts the free list; fix the paths or justify with //tspuvet:allow poolcheck: <reason>",
				obj.Name(), line)
		} else {
			w.pass.Reportf(id.Pos(), "%s used after release (released at line %d): "+
				"the pooled record may already be reused; copy what you need before releasing, "+
				"or justify with //tspuvet:allow poolcheck: <reason>", obj.Name(), line)
		}
		return true
	})
}

// releasesOf extracts the objects a straight-line statement returns to a
// pool.
func (w *poolWalker) releasesOf(s ast.Stmt) map[types.Object]token.Pos {
	rels := map[types.Object]token.Pos{}
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			w.releaseCall(call, rels)
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				w.freeListAppend(call, rels)
			}
		}
	}
	return rels
}

// releaseCall matches pool.Put(x) / sh.release(e) / recycle(ev): a call
// named like a release whose single argument is a pointer-typed variable.
func (w *poolWalker) releaseCall(call *ast.CallExpr, rels map[types.Object]token.Pos) {
	name := ""
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	if !poolReleaseNames[name] || len(call.Args) != 1 {
		return
	}
	w.addPointerArg(call.Args[0], rels)
}

// freeListAppend matches sh.free = append(sh.free, e): an append whose
// destination slice is named like a free list.
func (w *poolWalker) freeListAppend(call *ast.CallExpr, rels map[types.Object]token.Pos) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := w.pass.TypesInfo.ObjectOf(id).(*types.Builtin); !isBuiltin {
		return
	}
	if len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return
	}
	dst := ""
	switch base := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		dst = base.Name
	case *ast.SelectorExpr:
		dst = base.Sel.Name
	}
	if !strings.Contains(strings.ToLower(dst), "free") {
		return
	}
	for _, a := range call.Args[1:] {
		w.addPointerArg(a, rels)
	}
}

// addPointerArg records a plain pointer-typed identifier argument.
func (w *poolWalker) addPointerArg(arg ast.Expr, rels map[types.Object]token.Pos) {
	id, ok := ast.Unparen(arg).(*ast.Ident)
	if !ok {
		return
	}
	obj := w.pass.TypesInfo.Uses[id]
	if obj == nil {
		return
	}
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
		return
	}
	rels[obj] = id.Pos()
}

func copyRel(rel map[types.Object]token.Pos) map[types.Object]token.Pos {
	cp := make(map[types.Object]token.Pos, len(rel))
	for k, v := range rel {
		cp[k] = v
	}
	return cp
}

// mergeRel replaces rel with the intersection of the given path states: a
// release is definite only when every falling-through path performed it.
func mergeRel(rel map[types.Object]token.Pos, paths []map[types.Object]token.Pos) {
	if len(paths) == 0 {
		return // no path falls through; code after is unreachable
	}
	merged := map[types.Object]token.Pos{}
	for obj, pos := range paths[0] {
		inAll := true
		for _, p := range paths[1:] {
			if _, ok := p[obj]; !ok {
				inAll = false
				break
			}
		}
		if inAll {
			merged[obj] = pos
		}
	}
	for obj := range rel {
		if _, ok := merged[obj]; !ok {
			delete(rel, obj)
		}
	}
	for obj, pos := range merged {
		rel[obj] = pos
	}
}

// terminates reports whether a block's fall-through edge is dead.
func terminates(b *ast.BlockStmt) bool {
	if b == nil {
		return false
	}
	return blockTerminates(b.List)
}

func blockTerminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

// stmtTerminates reports whether control cannot fall out of s: returns,
// panics, and bare branch statements (which transfer control elsewhere, so
// their releases never reach the statement after the construct).
func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		if !terminates(s.Body) {
			return false
		}
		if s.Else == nil {
			return false
		}
		return stmtTerminates(s.Else)
	}
	return false
}
