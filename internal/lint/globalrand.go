package lint

import (
	"strconv"

	"tspusim/internal/lint/analysis"
)

// Globalrand forbids importing the ambient randomness packages. All entropy
// in this module must flow from one root seed through sim.Rand (the
// self-contained xoshiro generator) or sim.StreamSeed, so that every
// experiment is byte-for-byte regenerable and adding randomness in one
// subsystem cannot perturb another. math/rand's global source, math/rand/v2
// (auto-seeded, no Seed at all), and crypto/rand are all unreproducible by
// construction, so the import itself is the violation.
var Globalrand = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand, math/rand/v2, and crypto/rand imports; " +
		"experiment entropy must derive from sim.Rand / sim.StreamSeed",
	Run: runGlobalrand,
}

var bannedRandImports = map[string]string{
	"math/rand":    "its global source is shared mutable state outside the seed's control",
	"math/rand/v2": "it auto-seeds from the OS and cannot be made reproducible",
	"crypto/rand":  "it is entropy from the OS, unreproducible by design",
}

func runGlobalrand(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := bannedRandImports[path]; banned {
				pass.ReportRangef(imp, "import of %s: %s; derive randomness from sim.Rand / sim.StreamSeed", path, why)
			}
		}
	}
	return nil, nil
}
