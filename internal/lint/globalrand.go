package lint

import (
	"go/ast"
	"strconv"

	"tspusim/internal/lint/analysis"
)

// Globalrand forbids importing the ambient randomness packages. All entropy
// in this module must flow from one root seed through sim.Rand (the
// self-contained xoshiro generator) or sim.StreamSeed, so that every
// experiment is byte-for-byte regenerable and adding randomness in one
// subsystem cannot perturb another. math/rand's global source, math/rand/v2
// (auto-seeded, no Seed at all), and crypto/rand are all unreproducible by
// construction, so the import itself is the violation.
//
// With facts enabled the check is also transitive: a function that uses an
// ambient-rand package (under an allowed import) exports an ImpureFact, the
// taint propagates through calls exactly like walltime's, and cross-package
// calls into tainted code are diagnostics. A //tspuvet:impure stamp on the
// caller silences them (the stamp itself is validated by walltime, once for
// the suite).
var Globalrand = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand, math/rand/v2, and crypto/rand imports and, transitively, " +
		"calls into code that uses them; " +
		"experiment entropy must derive from sim.Rand / sim.StreamSeed",
	Run:       runGlobalrand,
	FactTypes: []analysis.Fact{(*ImpureFact)(nil)},
}

var bannedRandImports = map[string]string{
	"math/rand":    "its global source is shared mutable state outside the seed's control",
	"math/rand/v2": "it auto-seeds from the OS and cannot be made reproducible",
	"crypto/rand":  "it is entropy from the OS, unreproducible by design",
}

func runGlobalrand(pass *analysis.Pass) (any, error) {
	direct := map[*ast.FuncDecl]string{}
	for _, f := range pass.Files {
		banned := false
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := bannedRandImports[path]; bad {
				banned = true
				pass.ReportRangef(imp, "import of %s: %s; derive randomness from sim.Rand / sim.StreamSeed", path, why)
			}
		}
		if !banned {
			continue
		}
		// The file imports ambient randomness (necessarily under a
		// //tspuvet:allow globalrand); every function that uses it is impure.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn := pass.PkgNameOf(id)
				if pn == nil {
					return true
				}
				if _, bad := bannedRandImports[pn.Imported().Path()]; bad {
					if _, seeded := direct[fd]; !seeded {
						direct[fd] = pn.Imported().Path() + "." + sel.Sel.Name
					}
				}
				return true
			})
		}
	}
	pr := &purityRun{
		pass:   pass,
		what:   "ambient randomness",
		advice: "derive entropy from sim.Rand / sim.StreamSeed instead, or mark the calling function //tspuvet:impure <reason>",
		// walltime owns //tspuvet:impure validation and assertion semantics;
		// here the stamp only silences transitive diagnostics.
		validateStamps: false,
		stampAsserts:   false,
	}
	pr.run(direct)
	return nil, nil
}
