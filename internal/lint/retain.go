package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tspusim/internal/lint/analysis"
)

// Retaincheck makes the packet-ownership contract of netem.Middlebox and the
// engine lanes a compile-time property. PR 6 removed per-hop cloning: one
// *packet.Packet instance traverses every link on its path, and whoever holds
// it at the moment owns it — so a middlebox (or any helper it calls) that
// stashes the pointer, or a subslice of its payload, past its own return
// aliases every downstream hop. The contract used to be one sentence of doc
// prose; this analyzer enforces it:
//
//   - Every function with a *packet.Packet (or packet.Packet, or
//     []*packet.Packet) parameter is a taint root: the packet parameters and
//     everything reference-derived from them — pkt.TCP, pkt.TCP.Payload,
//     subslices, tlsx.ExtractSNI results — are tainted.
//   - Taint propagates through assignments, slicing, range, composites, and
//     same-package calls (interprocedurally, with the offending call chain in
//     the diagnostic, like hotpath).
//   - A tainted value flowing into a store that outlives the call is a
//     diagnostic: writes through pointers, slices, maps, receivers, or
//     package variables; channel sends; go statements; and closures that
//     capture a tainted variable and escape (the Sim.After shape).
//   - Copies launder taint: Clone/CloneInto/Marshal/MarshalAppend/AppendTo
//     calls, string(b) conversions, copy, and append(dst, b...) of byte
//     slices all produce fresh memory.
//   - Deliberate retention is declared where it happens with
//     //tspuvet:retains <reason>; the directive is validated by
//     allowdirective and rots into a diagnostic when the line stops
//     retaining, exactly like //tspuvet:allow.
//
// The analysis is flow-insensitive within a function (a variable once tainted
// stays tainted). Within a package it is interprocedural; across packages it
// exchanges RetainsFacts: every function whose packet parameters can reach an
// outliving store exports the fact — including deliberate, annotated
// retention sites, because a //tspuvet:retains inside a helper package
// excuses the helper's own store, not the cross-package callers handing
// packets in. A caller passing tainted memory to an imported fact-bearing
// function inherits the diagnostic (and the fact), with the callee's chain
// spliced in; it can declare its own deliberate hand-off with
// //tspuvet:retains at the call line. Before facts, cross-package calls were
// unchecked boundaries justified by "ownership is handed off at exactly
// those boundaries" — an assumption, now a checked property. The only
// remaining heuristic is result taint: a cross-package call with tainted
// operands returns tainted memory whenever its result type can carry a
// reference.
var Retaincheck = &analysis.Analyzer{
	Name: "retaincheck",
	Doc: "forbid storing a *packet.Packet parameter (or payload-derived " +
		"slices) anywhere that outlives the call — across package seams via " +
		"RetainsFacts — unless cloned first or annotated //tspuvet:retains <reason>",
	Run:       runRetaincheck,
	FactTypes: []analysis.Fact{(*RetainsFact)(nil)},
}

// RetainsFact marks a function that can retain packet-aliasing memory
// reaching it through its parameters or receiver: somewhere in it (or in a
// same-package callee, per Chain) a tainted value hits a store that outlives
// the call. What describes that store; Chain walks from the function down to
// the site, one qualified function per hop. Deliberate annotated retention
// exports the fact too — that is the point: the annotation excuses the site,
// not the callers feeding it.
type RetainsFact struct {
	What  string   `json:"what"`
	Chain []string `json:"chain"`
}

// AFact marks RetainsFact as a serializable analysis fact.
func (*RetainsFact) AFact() {}

// retainCopyNames are callees whose result (or destination argument) is a
// fresh copy of the packet bytes rather than an alias.
var retainCopyNames = map[string]bool{
	"Clone":         true,
	"CloneInto":     true,
	"Marshal":       true,
	"MarshalAppend": true,
	"AppendTo":      true,
}

func runRetaincheck(pass *analysis.Pass) (any, error) {
	c := &retainChecker{
		pass:     pass,
		decls:    map[*types.Func]*ast.FuncDecl{},
		memo:     map[retainKey]*retainSummary{},
		reported: map[string]bool{},
		facts:    map[*types.Func]*RetainsFact{},
	}
	var order []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				c.decls[fn] = fd
				order = append(order, fd)
			}
		}
	}
	for _, fd := range order {
		fn := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		mask := c.packetMask(fd)
		if mask != 0 {
			c.currentRoot = fn
			c.analyze(fn, fd, mask, nil)
		}
	}
	c.currentRoot = nil
	if pass.FactsEnabled() {
		for _, fd := range order {
			fn := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if f := c.facts[fn]; f != nil {
				pass.ExportObjectFact(fn, f)
			}
		}
	}
	return nil, nil
}

// retainKey memoizes one (function, parameter-taint-mask) analysis.
type retainKey struct {
	fn   *types.Func
	mask uint64
}

// retainSummary is the result of one analysis: whether any return statement
// yields a tainted value (so callers can taint the call result).
type retainSummary struct {
	returnsTaint bool
	done         bool
}

type retainChecker struct {
	pass     *analysis.Pass
	decls    map[*types.Func]*ast.FuncDecl
	memo     map[retainKey]*retainSummary
	reported map[string]bool
	// currentRoot is the taint root whose analysis is in flight, so transitive
	// retention found in a same-package helper also attaches to the root.
	currentRoot *types.Func
	// facts accumulates one RetainsFact per retaining function, exported after
	// the root loop (before Suppress runs, so annotated sites still export).
	facts map[*types.Func]*RetainsFact
}

// noteRetention records fn's first retention event as its RetainsFact, with
// the chain elements qualified by package name for cross-package diagnostics.
func (c *retainChecker) noteRetention(fn *types.Func, chain []string, msg string) {
	if fn == nil || c.facts[fn] != nil {
		return
	}
	q := make([]string, len(chain))
	for i, el := range chain {
		q[i] = c.pass.Pkg.Name() + "." + el
	}
	c.facts[fn] = &RetainsFact{What: msg, Chain: q}
}

// packetMask returns the taint mask seeded by packet-typed parameters: bit 0
// is the receiver, bit i+1 is parameter i.
func (c *retainChecker) packetMask(fd *ast.FuncDecl) uint64 {
	var mask uint64
	i := 0
	if fd.Recv != nil {
		i = 1 // receiver occupies bit 0 but is never a packet seed here
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			t := c.pass.TypesInfo.TypeOf(field.Type)
			for j := 0; j < n; j++ {
				if i < 64 && isPacketSeed(t) {
					mask |= 1 << uint(i)
				}
				i++
			}
		}
	}
	return mask
}

// isPacketSeed reports whether a parameter of type t roots packet taint:
// *packet.Packet, packet.Packet (a shallow copy shares payload pointers), or
// slices thereof.
func isPacketSeed(t types.Type) bool {
	if t == nil {
		return false
	}
	if s, ok := t.Underlying().(*types.Slice); ok {
		return isPacketSeed(s.Elem())
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Packet" && obj.Pkg() != nil && obj.Pkg().Name() == "packet"
}

// analyze runs (or reuses) one function analysis under the given taint mask
// and returns its summary. chain is the interprocedural path from the root,
// nil for roots themselves.
func (c *retainChecker) analyze(fn *types.Func, fd *ast.FuncDecl, mask uint64, chain []string) *retainSummary {
	key := retainKey{fn, mask}
	if sum, ok := c.memo[key]; ok {
		// In-progress entries (cycles) answer optimistically: no return taint.
		return sum
	}
	sum := &retainSummary{}
	c.memo[key] = sum
	s := &retainScope{
		c:          c,
		fd:         fd,
		chain:      append(append([]string(nil), chain...), funcDisplayName(fd)),
		tainted:    map[types.Object]bool{},
		frameLocal: map[types.Object]bool{},
		invoked:    map[*ast.FuncLit]bool{},
	}
	s.seed(mask)
	s.findFrameLocals()
	s.findInvokedLits()
	s.propagate()
	s.report()
	sum.returnsTaint = s.returnsTaint()
	sum.done = true
	return sum
}

// retainScope is one function analysis: the taint environment plus
// book-keeping for the walk.
type retainScope struct {
	c     *retainChecker
	fd    *ast.FuncDecl
	chain []string
	// tainted holds every object (param, local) carrying packet-aliasing
	// memory, including by-value container locals a packet was stored into.
	tainted map[types.Object]bool
	// frameLocal marks pointer locals born from &T{}/new(T) that never leave
	// the frame: stores through them cannot outlive the call.
	frameLocal map[types.Object]bool
	// invoked marks function literals that are called where they appear
	// (including defer): their bodies run within this call's lifetime.
	invoked map[*ast.FuncLit]bool
}

func (s *retainScope) info() *types.Info { return s.c.pass.TypesInfo }

// seed marks the mask's parameter objects tainted.
func (s *retainScope) seed(mask uint64) {
	i := 0
	mark := func(names []*ast.Ident) {
		if len(names) == 0 {
			i++
			return
		}
		for _, name := range names {
			if i < 64 && mask&(1<<uint(i)) != 0 {
				if obj := s.info().Defs[name]; obj != nil {
					s.tainted[obj] = true
				}
			}
			i++
		}
	}
	if s.fd.Recv != nil {
		mark(s.fd.Recv.List[0].Names)
	}
	if s.fd.Type.Params != nil {
		for _, field := range s.fd.Type.Params.List {
			mark(field.Names)
		}
	}
}

// findFrameLocals marks pointer locals whose pointee cannot outlive the call:
// initialized from &composite/new and never passed, returned, stored,
// sent, or captured — only dereferenced.
func (s *retainScope) findFrameLocals() {
	candidates := map[types.Object]bool{}
	ast.Inspect(s.fd.Body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := s.info().Defs[id]
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.UnaryExpr:
				// Only &T{...} births frame-local memory; &container[i] or
				// &x.field points into memory someone else can see.
				if rhs.Op == token.AND {
					if _, isLit := ast.Unparen(rhs.X).(*ast.CompositeLit); isLit {
						candidates[obj] = true
					}
				}
			case *ast.CallExpr:
				if bid, ok := rhs.Fun.(*ast.Ident); ok && bid.Name == "new" {
					if _, isBuiltin := s.info().ObjectOf(bid).(*types.Builtin); isBuiltin {
						candidates[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(candidates) == 0 {
		return
	}
	// Disqualify any candidate used outside selector/star/assign-LHS position.
	escaped := map[types.Object]bool{}
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.SelectorExpr:
				// p.f: the base use is fine; still scan the rest.
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if obj := s.info().Uses[id]; obj != nil && candidates[obj] {
						return false // base position: not an escape
					}
				}
			case *ast.StarExpr:
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if obj := s.info().Uses[id]; obj != nil && candidates[obj] {
						return false
					}
				}
			case *ast.Ident:
				if obj := s.info().Uses[x]; obj != nil && candidates[obj] {
					escaped[obj] = true
				}
			}
			return true
		})
	}
	visit(s.fd.Body)
	for obj := range candidates {
		if !escaped[obj] {
			s.frameLocal[obj] = true
		}
	}
}

// findInvokedLits marks immediately-called function literals (and deferred
// ones, which run within the call's lifetime).
func (s *retainScope) findInvokedLits() {
	ast.Inspect(s.fd.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			s.invoked[lit] = true
		}
		// Closures handed to sort run synchronously, within this call's
		// lifetime (sort.Slice comparators over packet slices).
		if fn := calleeFunc(s.info(), call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sort" {
			for _, a := range call.Args {
				if lit, ok := ast.Unparen(a).(*ast.FuncLit); ok {
					s.invoked[lit] = true
				}
			}
		}
		return true
	})
}

// propagate grows the tainted set to a fixed point over the whole body,
// closure bodies included.
func (s *retainScope) propagate() {
	info := s.info()
	for {
		changed := false
		mark := func(obj types.Object) {
			if obj != nil && !s.tainted[obj] && canCarryRef(obj.Type()) {
				s.tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(s.fd.Body, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					var rhs ast.Expr
					if len(x.Rhs) == len(x.Lhs) {
						rhs = x.Rhs[i]
					} else if len(x.Rhs) == 1 {
						rhs = x.Rhs[0]
					}
					if rhs == nil || !s.taintedExpr(rhs) {
						continue
					}
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						mark(info.ObjectOf(id))
						continue
					}
					// Storing taint into a by-value local container taints the
					// container itself (it may escape later); outliving stores
					// are reported, not propagated.
					if root, outlive := s.storeRoot(lhs); !outlive && root != nil {
						mark(root)
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					var rhs ast.Expr
					if len(x.Values) == len(x.Names) {
						rhs = x.Values[i]
					} else if len(x.Values) == 1 {
						rhs = x.Values[0]
					}
					if rhs != nil && s.taintedExpr(rhs) {
						mark(info.Defs[name])
					}
				}
			case *ast.RangeStmt:
				if s.taintedExpr(x.X) {
					for _, v := range []ast.Expr{x.Key, x.Value} {
						if id, ok := v.(*ast.Ident); ok {
							mark(info.ObjectOf(id))
						}
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

// taintedExpr reports whether e may alias packet memory under the current
// environment.
func (s *retainScope) taintedExpr(e ast.Expr) bool {
	info := s.info()
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		return obj != nil && s.tainted[obj]
	case *ast.SelectorExpr:
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && s.c.pass.PkgNameOf(id) != nil {
			return false // package-qualified name
		}
		if !canCarryRef(info.TypeOf(e)) {
			return false
		}
		return s.taintedExpr(e.X)
	case *ast.IndexExpr:
		if !canCarryRef(info.TypeOf(e)) {
			return false
		}
		return s.taintedExpr(e.X)
	case *ast.SliceExpr:
		return s.taintedExpr(e.X)
	case *ast.StarExpr:
		if !canCarryRef(info.TypeOf(e)) {
			return false
		}
		return s.taintedExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return s.taintedExpr(e.X)
		}
		return false
	case *ast.TypeAssertExpr:
		return s.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if s.taintedExpr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return s.taintedCall(e)
	}
	return false
}

// taintedCall decides whether a call's results alias packet memory, running
// same-package callees interprocedurally.
func (s *retainScope) taintedCall(call *ast.CallExpr) bool {
	info := s.info()
	// Conversions: string(b) copies; ref-carrying conversions alias.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		t := info.TypeOf(call)
		if isString(t) || !canCarryRef(t) {
			return false
		}
		return len(call.Args) == 1 && s.taintedExpr(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			if id.Name != "append" || len(call.Args) == 0 {
				return false // len/cap/copy/min/... never alias their operands
			}
			if s.taintedExpr(call.Args[0]) {
				return true
			}
			for _, a := range call.Args[1:] {
				if !s.taintedExpr(a) {
					continue
				}
				// append(dst, b...) with basic elements copies the bytes out;
				// appending tainted values (packets, subslices) aliases.
				if call.Ellipsis.IsValid() && sliceOfBasic(info.TypeOf(a)) {
					continue
				}
				return true
			}
			return false
		}
	}
	if name := retainCalleeName(call); retainCopyNames[name] {
		return false
	}
	anyTainted := s.taintedReceiver(call)
	for _, a := range call.Args {
		if s.taintedExpr(a) {
			anyTainted = true
		}
	}
	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() == s.c.pass.Pkg {
		if decl := s.c.decls[fn]; decl != nil {
			mask := s.callMask(call, decl)
			sum := s.c.analyze(fn, decl, mask, s.chain)
			return sum.returnsTaint
		}
	}
	if !anyTainted {
		return false
	}
	// Cross-package with taint on the wire: a RetainsFact on the callee means
	// the handed-off memory hits a store that outlives this call too.
	if fn != nil && fn.Pkg() != nil && fn.Pkg() != s.c.pass.Pkg {
		var rf RetainsFact
		if s.c.pass.ImportObjectFact(fn, &rf) && len(rf.Chain) > 0 {
			desc := rf.What
			if len(rf.Chain) > 1 {
				desc += ", reached via " + strings.Join(rf.Chain, " → ")
			}
			s.reportf(call.Pos(), "packet-aliasing value passed to %s, which retains it (in the callee: %s)", rf.Chain[0], desc)
		}
	}
	// Otherwise dynamic or fact-free: results alias iff an operand was tainted
	// and the results can carry references (tlsx.ExtractSNI, pkt.AppPayload).
	return canCarryRef(info.TypeOf(call))
}

// taintedReceiver reports whether a method call's receiver is tainted.
func (s *retainScope) taintedReceiver(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && s.c.pass.PkgNameOf(id) != nil {
		return false
	}
	return s.taintedExpr(sel.X)
}

// callMask maps tainted arguments (and receiver) onto the callee's mask.
func (s *retainScope) callMask(call *ast.CallExpr, decl *ast.FuncDecl) uint64 {
	var mask uint64
	bit := 0
	if decl.Recv != nil {
		if s.taintedReceiver(call) {
			mask |= 1
		}
		bit = 1
	}
	// Count the callee's declared parameter slots.
	nparams := 0
	if decl.Type.Params != nil {
		for _, f := range decl.Type.Params.List {
			n := len(f.Names)
			if n == 0 {
				n = 1
			}
			nparams += n
		}
	}
	for i, a := range call.Args {
		if !s.taintedExpr(a) {
			continue
		}
		slot := i
		if slot >= nparams {
			slot = nparams - 1 // variadic overflow lands on the last param
		}
		if slot >= 0 && bit+slot < 64 {
			mask |= 1 << uint(bit+slot)
		}
	}
	return mask
}

// report walks the body once, flagging tainted values that reach outliving
// stores, channel sends, goroutines, and escaping closures.
func (s *retainScope) report() {
	ast.Inspect(s.fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				var rhs ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					rhs = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					rhs = x.Rhs[0]
				}
				if rhs == nil || !s.taintedExpr(rhs) {
					continue
				}
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					// Plain local rebinds are handled by propagation; a bare
					// package variable is an outliving store.
					if obj := s.info().ObjectOf(id); obj != nil && obj.Parent() == s.c.pass.Pkg.Scope() {
						s.reportf(x.Pos(), "packet-aliasing value stored in %s, which outlives the call", describeLHS(lhs))
					}
					continue
				}
				if root, outlive := s.storeRoot(lhs); outlive {
					// Storing into the packet itself (payload rewrites) is the
					// device mutating what it already owns, not retention.
					if root != nil && s.tainted[root] {
						continue
					}
					s.reportf(x.Pos(), "packet-aliasing value stored in %s, which outlives the call", describeLHS(lhs))
				}
			}
		case *ast.SendStmt:
			if s.taintedExpr(x.Value) {
				s.reportf(x.Pos(), "packet-aliasing value sent on a channel: the receiver outlives this call")
			}
		case *ast.GoStmt:
			if s.goCallTaints(x.Call) {
				s.reportf(x.Pos(), "packet-aliasing value handed to a goroutine, which outlives the call")
			}
		case *ast.FuncLit:
			if s.invoked[x] {
				return true // runs inline; its body is walked like any block
			}
			if obj := s.capturedTaint(x); obj != nil {
				s.reportf(x.Pos(), "closure captures packet-aliasing %q and escapes (scheduled or stored past the call)", obj.Name())
			}
		case *ast.CallExpr:
			// Force interprocedural analysis even for calls in statement
			// position (results discarded).
			s.taintedCall(x)
		}
		return true
	})
}

// goCallTaints reports whether a go statement carries taint: tainted
// arguments, a tainted receiver, or a capturing closure.
func (s *retainScope) goCallTaints(call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if s.taintedExpr(a) {
			return true
		}
	}
	if s.taintedReceiver(call) {
		return true
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return s.capturedTaint(lit) != nil
	}
	return false
}

// capturedTaint returns a tainted variable captured by lit from the enclosing
// function, or nil.
func (s *retainScope) capturedTaint(lit *ast.FuncLit) types.Object {
	var found types.Object
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if found != nil {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		obj := s.info().Uses[id]
		if obj == nil || !s.tainted[obj] {
			return true
		}
		// Declared inside the literal: not a capture.
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true
		}
		found = obj
		return false
	})
	return found
}

// storeRoot resolves the root of a store target's access chain and whether
// the destination memory outlives the call. It returns the root object for
// by-value local containers (outlive=false) so propagation can taint them.
func (s *retainScope) storeRoot(lhs ast.Expr) (types.Object, bool) {
	e := ast.Unparen(lhs)
	derefs := false // passed through pointer/slice/map memory on the way down
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if baseRef(s.info().TypeOf(x.X)) {
				derefs = true
			}
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			if baseRef(s.info().TypeOf(x.X)) {
				derefs = true
			}
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			derefs = true
			e = ast.Unparen(x.X)
		case *ast.Ident:
			obj := s.info().ObjectOf(x)
			if obj == nil {
				return nil, true
			}
			if obj.Parent() == s.c.pass.Pkg.Scope() {
				return obj, true // package variable
			}
			if s.frameLocal[obj] {
				return obj, false
			}
			if derefs || baseRef(obj.Type()) {
				// A store through pointer/slice/map memory rooted at a param,
				// receiver, or non-frame-local pointer: the destination is
				// visible after return.
				return obj, true
			}
			return obj, false // by-value local container
		default:
			// Call results, type assertions, anything else: conservatively
			// outliving.
			return nil, true
		}
	}
}

// baseRef reports whether indexing/selecting through t reaches memory beyond
// the current frame: pointers, slices, and maps do; value structs/arrays do
// not.
func baseRef(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// returnsTaint reports whether any top-level return yields a tainted value.
func (s *retainScope) returnsTaint() bool {
	found := false
	var depth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			depth++
			ast.Inspect(x.Body, walk)
			depth--
			return false
		case *ast.ReturnStmt:
			if depth > 0 {
				return true
			}
			for _, r := range x.Results {
				if s.taintedExpr(r) {
					found = true
				}
			}
			if len(x.Results) == 0 {
				// Naked return: check named results.
				if res := s.fd.Type.Results; res != nil {
					for _, f := range res.List {
						for _, name := range f.Names {
							if obj := s.info().Defs[name]; obj != nil && s.tainted[obj] {
								found = true
							}
						}
					}
				}
			}
		}
		return true
	}
	ast.Inspect(s.fd.Body, walk)
	return found
}

func (s *retainScope) reportf(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	// Facts record before dedup: a second root reaching an already-reported
	// site still owns the retention and must export its own fact. The scope's
	// function retains directly (its params reach the store); the in-flight
	// root retains transitively through the chain.
	if fn, ok := s.info().Defs[s.fd.Name].(*types.Func); ok {
		s.c.noteRetention(fn, s.chain[len(s.chain)-1:], msg)
	}
	if len(s.chain) > 1 {
		s.c.noteRetention(s.c.currentRoot, s.chain, msg)
	}
	// Dedupe on the chain-free message: a helper that is both a root and
	// reachable from another root reports once, with the first chain found.
	key := fmt.Sprintf("%d|%s", pos, msg)
	if s.c.reported[key] {
		return
	}
	s.c.reported[key] = true
	if len(s.chain) > 1 {
		msg += " (reached via " + strings.Join(s.chain, " → ") + ")"
	}
	msg += "; clone first (Clone/CloneInto/Marshal) or annotate //tspuvet:retains <reason>"
	s.c.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}

// describeLHS renders a store target for diagnostics.
func describeLHS(lhs ast.Expr) string {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return "field " + exprString(e)
	case *ast.IndexExpr:
		if base := exprString(e.X); base != "expr" {
			return "element of " + base
		}
		return "an indexed element"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.Ident:
		return "package variable " + e.Name
	}
	return "a location"
}

// sliceOfBasic reports whether t is a slice of a basic type (bytes, runes):
// spread-appending such a slice copies its elements.
func sliceOfBasic(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, ok = sl.Elem().Underlying().(*types.Basic)
	return ok
}

// canCarryRef reports whether a value of type t can hold a reference to
// packet memory: pointers, slices, maps, chans, funcs, interfaces, and
// aggregates containing them. Strings cannot (conversion copies).
func canCarryRef(t types.Type) bool {
	return carriesRef(t, map[types.Type]bool{})
}

func carriesRef(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	// Value-semantic stdlib types whose internal pointers never alias caller
	// memory (netip.Addr interns address metadata; time.Time points at a
	// Location): deriving a flow key or timestamp from a packet is not
	// retention.
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil {
			switch obj.Pkg().Path() + "." + obj.Name() {
			case "net/netip.Addr", "net/netip.AddrPort", "net/netip.Prefix", "time.Time":
				return false
			}
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRef(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Array:
		return carriesRef(u.Elem(), seen)
	}
	return false
}

// retainCalleeName extracts the bare callee name for the copy allowlist.
func retainCalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
