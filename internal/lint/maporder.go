package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tspusim/internal/lint/analysis"
)

// Maporder flags map iteration whose body feeds order-sensitive output. Go
// randomizes map iteration order per run, so a `for k := range m` that
// appends to a slice, builds a string, or fills a report table renders
// differently on every execution — exactly the nondeterminism the
// reproduction's byte-identical-output contract forbids.
//
// Two shapes stay legal without a directive because they are provably
// order-insensitive:
//
//   - the canonical sort pattern: appending the keys (or rows) to a slice
//     that is later passed to sort.* / slices.* in the same function;
//   - pure reductions: sums, counters, min/max, and writes into other maps,
//     which commute and therefore produce no sink at all.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag `for k := range m` over maps whose body feeds ordered output " +
		"(append, string building, fmt writes, report tables) without sorting",
	Run: runMaporder,
}

// sink is one order-sensitive operation found inside a map-range body.
type sink struct {
	pos  token.Pos
	kind string // human label for the diagnostic
	// target is the object an append accumulates into, when provable; a
	// later sort.*/slices.* call on it launders the iteration order.
	target types.Object
}

func runMaporder(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, scope := range funcScopes(f) {
			checkScope(pass, scope)
		}
	}
	return nil, nil
}

// funcScopes returns every function body in f. Each body is analyzed as its
// own scope: a sort call in an unrelated closure must not excuse a loop.
func funcScopes(f *ast.File) []*ast.BlockStmt {
	var scopes []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				scopes = append(scopes, n.Body)
			}
		case *ast.FuncLit:
			scopes = append(scopes, n.Body)
		}
		return true
	})
	return scopes
}

// checkScope flags map ranges directly inside scope (nested function
// literals are separate scopes and skipped here).
func checkScope(pass *analysis.Pass, scope *ast.BlockStmt) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		for _, s := range findSinks(pass, rs.Body) {
			if s.target != nil && sortedAfter(pass, scope, rs, s.target) {
				continue
			}
			pass.Report(analysis.Diagnostic{
				Pos: rs.Pos(),
				End: rs.X.End(),
				Message: fmt.Sprintf("map iteration order is random but the loop body %s; "+
					"sort the keys first or justify with //tspuvet:allow maporder: <reason>", s.kind),
			})
			break // one diagnostic per loop is enough
		}
		return true
	}
	ast.Inspect(scope, walk)
}

// findSinks scans a map-range body for order-sensitive operations. Function
// literals inside the body are included: a closure defined and invoked per
// iteration inherits the iteration order.
func findSinks(pass *analysis.Pass, body *ast.BlockStmt) []sink {
	var sinks []sink
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// s += expr on strings is ordered concatenation; numeric += is a
			// commutative reduction and stays legal.
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass.TypesInfo.TypeOf(n.Lhs[0])) {
				sinks = append(sinks, sink{pos: n.Pos(), kind: "concatenates onto a string"})
				return true
			}
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) {
					continue
				}
				s := sink{pos: call.Pos(), kind: "appends to a slice"}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						s.target = pass.TypesInfo.ObjectOf(id)
					}
				}
				sinks = append(sinks, s)
			}
		case *ast.CallExpr:
			if k, ok := callSinkKind(pass, n); ok {
				sinks = append(sinks, sink{pos: n.Pos(), kind: k})
			}
		}
		return true
	})
	return sinks
}

// callSinkKind classifies a call as an ordered sink: writes into a
// strings.Builder or bytes.Buffer, fmt printing to a shared writer, or the
// order-sensitive entry points of the report/fleet aggregation layers
// (Table.AddRow keeps row order; Hist.Add and Contingency.Add are counters
// and commute).
func callSinkKind(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn := pass.PkgNameOf(id); pn != nil && pn.Imported().Path() == "fmt" {
			if strings.HasPrefix(sel.Sel.Name, "Fprint") || strings.HasPrefix(sel.Sel.Name, "Print") {
				return "writes via fmt." + sel.Sel.Name, true
			}
			return "", false
		}
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	if recv := receiverNamed(fn); recv != "" {
		if (recv == "strings.Builder" || recv == "bytes.Buffer") && strings.HasPrefix(fn.Name(), "Write") {
			return "writes into a " + recv, true
		}
		if strings.HasSuffix(fn.Pkg().Path(), "internal/report") && fn.Name() == "AddRow" {
			return "adds ordered rows to a report table", true
		}
	}
	if strings.HasSuffix(fn.Pkg().Path(), "internal/fleet") && strings.Contains(fn.Name(), "Aggregate") {
		return "feeds fleet aggregation", true
	}
	return "", false
}

// receiverNamed returns "pkg.Type" for a method's receiver, or "".
func receiverNamed(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name()
}

// sortedAfter reports whether target is passed to a sort.* or slices.* call
// after the range loop in the same function — the canonical
// collect-then-sort pattern that makes the iteration order immaterial.
func sortedAfter(pass *analysis.Pass, scope *ast.BlockStmt, rs *ast.RangeStmt, target types.Object) bool {
	found := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn := pass.PkgNameOf(id)
		if pn == nil {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if aid, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(aid) == target {
				found = true
			}
		}
		return true
	})
	return found
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return isBuiltin
}

func isString(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
