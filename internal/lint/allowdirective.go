package lint

import (
	"tspusim/internal/lint/analysis"
)

// Allowdirective validates //tspuvet:allow suppression comments so the
// allowlist can never rot: a directive with no reason, an unknown verb, or
// an unknown analyzer name is itself a diagnostic. The complementary check —
// a well-formed directive that no longer suppresses anything — needs the
// other analyzers' diagnostics and therefore lives in Suppress, which the
// driver runs after the whole suite.
var Allowdirective = &analysis.Analyzer{
	Name: "allowdirective",
	Doc: "validate //tspuvet:allow directives: the analyzer name must exist, " +
		"the reason is mandatory, and (via the driver) unused directives are flagged",
	Run: runAllowdirective,
}

func runAllowdirective(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ParseDirectives(pass.Fset, f, pass.Report)
	}
	return nil, nil
}
