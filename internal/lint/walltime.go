package lint

import (
	"go/ast"

	"tspusim/internal/lint/analysis"
)

// Walltime forbids reading or scheduling against the wall clock. The
// simulator's whole value over the paper's fieldwork is that timeout
// semantics run on a virtual clock (internal/sim), so one stray time.Now in
// a simulation package makes experiment output vary run to run. Code that
// legitimately deals in wall time — the fleet orchestrator's diagnostic
// metrics, command-line progress on stderr — declares it inline:
//
//	start := time.Now() //tspuvet:allow walltime: metrics are diagnostics, never aggregated
//
// With facts enabled the check is transitive: every function that reaches
// wall-clock time (directly, through same-package calls, or through an
// imported function carrying an ImpureFact) exports an ImpureFact of its
// own, and a cross-package call into such a function is a diagnostic with
// the full chain. Orchestration layers that are deliberately wall-clocked
// declare it once at their boundary:
//
//	//tspuvet:impure fleet orchestration reports wall-clock progress
//	func RunFleet(...)
//
// which silences the transitive diagnostics inside that function and moves
// the obligation to its callers. Walltime also owns //tspuvet:impure
// validation (attachment, reason) for the whole suite.
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time (time.Now, time.Since, time.Sleep, timers), " +
		"directly and transitively through calls; " +
		"simulation code must use the virtual clock (sim.Sim)",
	Run:       runWalltime,
	FactTypes: []analysis.Fact{(*ImpureFact)(nil)},
}

// walltimeFuncs are the package-time functions that observe or depend on the
// wall clock. Pure constructors and conversions (time.Duration, time.Unix,
// time.Date, ParseDuration) are deterministic and stay legal.
var walltimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runWalltime(pass *analysis.Pass) (any, error) {
	direct := map[*ast.FuncDecl]string{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, isFunc := decl.(*ast.FuncDecl)
			ast.Inspect(decl, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn := pass.PkgNameOf(id)
				if pn == nil || pn.Imported().Path() != "time" {
					return true
				}
				if walltimeFuncs[sel.Sel.Name] {
					pass.ReportRangef(sel, "time.%s is wall-clock time; use the virtual clock (sim.Sim) so runs stay deterministic", sel.Sel.Name)
					if isFunc {
						if _, seeded := direct[fd]; !seeded {
							direct[fd] = "time." + sel.Sel.Name
						}
					}
				}
				return true
			})
		}
	}
	pr := &purityRun{
		pass: pass,
		what: "wall-clock time",
		advice: "take the clock from the virtual sim.Sim instead, or mark the calling " +
			"function //tspuvet:impure <reason> if it is orchestration code",
		validateStamps: true,
		stampAsserts:   true,
	}
	pr.run(direct)
	return nil, nil
}
