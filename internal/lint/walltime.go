package lint

import (
	"go/ast"

	"tspusim/internal/lint/analysis"
)

// Walltime forbids reading or scheduling against the wall clock. The
// simulator's whole value over the paper's fieldwork is that timeout
// semantics run on a virtual clock (internal/sim), so one stray time.Now in
// a simulation package makes experiment output vary run to run. Code that
// legitimately deals in wall time — the fleet orchestrator's diagnostic
// metrics, command-line progress on stderr — declares it inline:
//
//	start := time.Now() //tspuvet:allow walltime: metrics are diagnostics, never aggregated
var Walltime = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time (time.Now, time.Since, time.Sleep, timers); " +
		"simulation code must use the virtual clock (sim.Sim)",
	Run: runWalltime,
}

// walltimeFuncs are the package-time functions that observe or depend on the
// wall clock. Pure constructors and conversions (time.Duration, time.Unix,
// time.Date, ParseDuration) are deterministic and stay legal.
var walltimeFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runWalltime(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn := pass.PkgNameOf(id)
			if pn == nil || pn.Imported().Path() != "time" {
				return true
			}
			if walltimeFuncs[sel.Sel.Name] {
				pass.ReportRangef(sel, "time.%s is wall-clock time; use the virtual clock (sim.Sim) so runs stay deterministic", sel.Sel.Name)
			}
			return true
		})
	}
	return nil, nil
}
