package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tspusim/internal/lint/analysis"
)

// ImpureFact marks a package-level function that transitively reaches wall
// clock or ambient randomness — the two ways experiment output stops being a
// pure function of the lab seed. The walltime and globalrand analyzers each
// export their own ImpureFact stream (the fact store namespaces by analyzer),
// so "reaches time.Now" and "reaches math/rand" taint independently.
//
// Chain records how: the function's own qualified name first, then one callee
// per hop, ending at the banned operation (or at a //tspuvet:impure stamp,
// whose declared reason becomes Reason). Dependent packages extend the chain
// by prepending themselves, so a diagnostic three package seams away still
// names the original time.Now.
type ImpureFact struct {
	Reason string   `json:"reason"`
	Chain  []string `json:"chain"`
}

// AFact marks ImpureFact as a serializable analysis fact.
func (*ImpureFact) AFact() {}

const impureVerb = "impure"

// impureMarkerOf parses a //tspuvet:impure comment, returning its reason.
func impureMarkerOf(c *ast.Comment) (reason string, ok bool) {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return "", false
	}
	body := strings.TrimPrefix(c.Text, directivePrefix)
	// A later "//" ends the marker, mirroring ParseDirectives.
	if i := strings.Index(body, "//"); i >= 0 {
		body = strings.TrimSpace(body[:i])
	}
	verb, rest, _ := strings.Cut(body, " ")
	if verb != impureVerb {
		return "", false
	}
	return strings.TrimSpace(rest), true
}

// purityNode is one package-level function in the purity call graph.
type purityNode struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	name    string // qualified display name: "fleet.Runner.runJob"
	fact    *ImpureFact
	stamped bool
	edges   []*purityNode // same-package static callees, source order
}

// importedImpureCall is one call site whose static callee lives in another
// package and carries an ImpureFact there.
type importedImpureCall struct {
	node *purityNode
	pos  token.Pos
	fact *ImpureFact
}

// purityRun is the transitive half shared by walltime and globalrand: given
// each analyzer's own direct sites, it parses //tspuvet:impure stamps, builds
// the package call graph, imports dependency facts, propagates the taint, and
// reports cross-package calls into tainted code.
type purityRun struct {
	pass *analysis.Pass
	// what names the taint in diagnostics ("wall-clock time").
	what string
	// advice closes the diagnostic with the analyzer's fix.
	advice string
	// validateStamps: exactly one analyzer (walltime) owns //tspuvet:impure
	// attachment and reason validation, so the suite reports each problem once.
	validateStamps bool
	// stampAsserts: for walltime the stamp is an assertion — a stamped
	// function is impure even before the analyzer can see why, which is what
	// lets cmd-layer mains terminate every chain. globalrand only lets the
	// stamp silence diagnostics.
	stampAsserts bool
}

// run executes the transitive analysis. direct maps function declarations
// with a direct banned operation in their body to that operation's label
// ("time.Now"); the caller has already reported those sites positionally.
func (pr *purityRun) run(direct map[*ast.FuncDecl]string) {
	pass := pr.pass

	// Collect package-level functions, in source order.
	// Declarations are keyed by file AND line: packages hold many files, and
	// line numbers alone collide across them (a test file's declaration at
	// line 63 must not steal a stamp aimed at fleet.go's line 63).
	type fileLine struct {
		file string
		line int
	}
	var order []*purityNode
	nodes := map[*types.Func]*purityNode{}
	byLine := map[fileLine]*purityNode{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &purityNode{fn: fn, decl: fd, name: pass.Pkg.Name() + "." + funcDisplayName(fd)}
			nodes[fn] = n
			order = append(order, n)
			pos := pass.Fset.Position(fd.Pos())
			byLine[fileLine{pos.Filename, pos.Line}] = n
		}
	}

	// Attach //tspuvet:impure stamps: a stamp binds to the function declared
	// on its own line or the line below (the usual directive placement).
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				reason, ok := impureMarkerOf(c)
				if !ok {
					continue
				}
				pos := pass.Fset.Position(c.Pos())
				n := byLine[fileLine{pos.Filename, pos.Line}]
				if n == nil {
					n = byLine[fileLine{pos.Filename, pos.Line + 1}]
				}
				if n == nil {
					if pr.validateStamps {
						pass.Reportf(c.Pos(), "//tspuvet:impure must be the doc comment of a function declaration")
					}
					continue
				}
				if reason == "" {
					if pr.validateStamps {
						pass.Reportf(c.Pos(), "//tspuvet:impure on %s is missing a reason: declaring a function "+
							"off the determinism contract must explain itself", n.name)
					}
					continue
				}
				n.stamped = true
				if pr.stampAsserts {
					n.fact = &ImpureFact{Reason: reason, Chain: []string{n.name}}
				}
			}
		}
	}

	// Seed direct sites. A stamp's declared reason wins over the raw site
	// label — the human explanation is the better chain terminus.
	for fd, site := range direct {
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			continue
		}
		n := nodes[fn]
		if n == nil || n.fact != nil {
			continue
		}
		n.fact = &ImpureFact{Reason: site, Chain: []string{n.name, site}}
	}

	if !pass.FactsEnabled() {
		// Per-package mode: direct sites were already reported; there is no
		// store to propagate through.
		return
	}

	// Call graph edges plus cross-package fact imports, in source order.
	var imported []importedImpureCall
	for _, n := range order {
		seen := map[*purityNode]bool{}
		ast.Inspect(n.decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.TypesInfo, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if callee.Pkg() == pass.Pkg {
				if target := nodes[callee]; target != nil && !seen[target] {
					seen[target] = true
					n.edges = append(n.edges, target)
				}
				return true
			}
			var fact ImpureFact
			if pass.ImportObjectFact(callee, &fact) {
				imported = append(imported, importedImpureCall{node: n, pos: call.Pos(), fact: &fact})
				if n.fact == nil {
					n.fact = &ImpureFact{Reason: fact.Reason, Chain: append([]string{n.name}, fact.Chain...)}
				}
			}
			return true
		})
	}

	// Propagate within the package to a fixed point. Iterating in source
	// order and never replacing an assigned fact keeps chains deterministic
	// and terminates on call cycles.
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			if n.fact != nil {
				continue
			}
			for _, callee := range n.edges {
				if callee.fact != nil {
					n.fact = &ImpureFact{Reason: callee.fact.Reason, Chain: append([]string{n.name}, callee.fact.Chain...)}
					changed = true
					break
				}
			}
		}
	}

	// A cross-package call into tainted code is the diagnostic; same-package
	// propagation stays silent because the direct site already reported
	// locally. Stamped functions have declared themselves impure — their
	// callers inherit the fact and the conversation moves one frame up.
	for _, ic := range imported {
		if ic.node.stamped {
			continue
		}
		pass.Reportf(ic.pos, "call to %s reaches %s (reached via %s); %s",
			ic.fact.Chain[0], pr.what, strings.Join(ic.fact.Chain, " → "), pr.advice)
	}

	for _, n := range order {
		if n.fact != nil {
			pass.ExportObjectFact(n.fn, n.fact)
		}
	}
}
