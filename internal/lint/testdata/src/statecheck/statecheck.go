// Package statecheck is the same-package golden fixture for the closed-enum
// exhaustiveness analyzer: marker validation, member collection with value
// aliases, and the two diagnostic shapes (missing case, hiding default).
package statecheck

// Phase is a closed state machine with an alias member: Final names the same
// value as Done, so a switch covering either covers both.
//
//tspuvet:closedenum
type Phase int

// Phases.
const (
	Idle Phase = iota
	Busy
	Done
	Final = Done
)

// Unmarked is an ordinary enum-looking type; switches over it are free.
type Unmarked int

// Unmarked members.
const (
	UA Unmarked = iota
	UB
)

// Exhaustive covers every member; Final is an alias of Done, so this is
// total.
func Exhaustive(p Phase) string {
	switch p {
	case Idle:
		return "idle"
	case Busy:
		return "busy"
	case Final:
		return "done"
	}
	return ""
}

// MissingCase drops Done and has no default.
func MissingCase(p Phase) string {
	switch p { // want `switch over closed enum Phase does not handle Done`
	case Idle:
		return "idle"
	case Busy:
		return "busy"
	}
	return ""
}

// HidingDefault routes two members through a bare default.
func HidingDefault(p Phase) string {
	switch p {
	case Idle:
		return "idle"
	default: // want `default in a switch over closed enum Phase hides unhandled Busy, Done`
		return "other"
	}
}

// ExhaustiveWithDefault is total and keeps a defensive default: fine.
func ExhaustiveWithDefault(p Phase) string {
	switch p {
	case Idle, Busy, Done:
		return "known"
	default:
		return "impossible"
	}
}

// DynamicCase dispatches on a non-constant expression: membership is
// undecidable, so the switch is skipped.
func DynamicCase(p, q Phase) string {
	switch p {
	case q:
		return "same"
	}
	return "different"
}

// FreeSwitch ranges over an unmarked type: no contract, no diagnostics.
func FreeSwitch(u Unmarked) string {
	switch u {
	case UA:
		return "a"
	default:
		return "other"
	}
}

//tspuvet:closedenum // want `//tspuvet:closedenum must be the doc comment of a type declaration`
var notAType int

// Hollow is marked closed but has no constant members.
//
//tspuvet:closedenum
type Hollow int // want `no package-level constants of this type`
