// Package globalrand seeds the three ambient-entropy imports the analyzer
// forbids: experiment randomness must flow from the lab seed through
// sim.Rand / sim.StreamSeed, never from process-global or OS entropy.
package globalrand

import (
	crand "crypto/rand" // want `import of crypto/rand: it is entropy from the OS`
	"math/rand"         // want `import of math/rand: its global source is shared mutable state`
	v2 "math/rand/v2"   // want `import of math/rand/v2: it auto-seeds from the OS`
)

func roll() int {
	return rand.Intn(6) + v2.IntN(6)
}

func nonce() []byte {
	b := make([]byte, 16)
	crand.Read(b)
	return b
}
