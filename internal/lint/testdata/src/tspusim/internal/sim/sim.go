// Package sim is a fixture stub of the real tspusim/internal/sim: lanecheck
// recognizes shared RNG draws by the type name Rand in a package named sim,
// and retaincheck's closure rule needs an After-shaped scheduler.
package sim

import "time"

// Rand is a seeded deterministic stream.
type Rand struct{ state uint64 }

// Bool draws one biased bit.
func (r *Rand) Bool(p float64) bool {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return float64(r.state>>11)/(1<<53) < p
}

// Uint64 draws one word.
func (r *Rand) Uint64() uint64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return r.state
}

// Sim is the virtual clock.
type Sim struct{ now time.Duration }

// Now returns virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// After schedules fn on the virtual clock.
func (s *Sim) After(d time.Duration, fn func()) {}
