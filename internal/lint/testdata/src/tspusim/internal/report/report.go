// Package report is a fixture stub of the real tspusim/internal/report: the
// maporder analyzer recognizes its order-sensitive entry points by package
// path suffix and method name, so the fixture only needs matching shapes.
package report

type Table struct{ rows [][]string }

func NewTable(title string, headers ...string) *Table { return &Table{} }

// AddRow keeps row order — feeding it from a map range is a violation.
func (t *Table) AddRow(cells ...any) { t.rows = append(t.rows, nil) }

type Hist struct{ counts map[int]int }

func NewHist(title string) *Hist { return &Hist{counts: map[int]int{}} }

// Add is a commutative counter — legal from a map range.
func (h *Hist) Add(b int) { h.counts[b]++ }
