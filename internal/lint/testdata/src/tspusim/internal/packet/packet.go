// Package packet is a fixture stub of the real tspusim/internal/packet: the
// retaincheck analyzer recognizes taint roots by the type name Packet in a
// package named packet, and launders taint through Clone/Marshal-shaped
// calls, so the stub only needs matching shapes.
package packet

// TCP is the transport header; Payload aliases wire bytes.
type TCP struct {
	Payload []byte
	Flags   uint8
}

// IPv4 is the network header (scalars only: no references).
type IPv4 struct {
	TTL      uint8
	Protocol uint8
}

// Packet is one in-flight packet.
type Packet struct {
	IP  IPv4
	TCP *TCP
}

// Clone deep-copies the packet: the result aliases nothing.
func (p *Packet) Clone() *Packet {
	q := &Packet{IP: p.IP}
	if p.TCP != nil {
		q.TCP = &TCP{Payload: append([]byte(nil), p.TCP.Payload...), Flags: p.TCP.Flags}
	}
	return q
}

// Marshal serializes into fresh bytes.
func (p *Packet) Marshal() ([]byte, error) { return append([]byte(nil), p.TCP.Payload...), nil }

// AppPayload returns the transport payload, aliasing the packet.
func (p *Packet) AppPayload() []byte {
	if p.TCP == nil {
		return nil
	}
	return p.TCP.Payload
}

// FlowKey4 is the compact flow key: two words, no references.
type FlowKey4 struct{ Hi, Lo uint64 }

// FlowKey4Of keys a packet.
func FlowKey4Of(p *Packet) FlowKey4 { return FlowKey4{} }

// PairHash folds the key to a host-pair hash.
func (k FlowKey4) PairHash() uint64 { return k.Hi ^ k.Lo }
