// Package walltime seeds every wall-clock pattern the analyzer must catch,
// including a regression fixture reproducing the real bug tspu-vet was built
// to prevent: tspusim.Run stamping wall-clock elapsed time into what is
// documented as deterministic experiment output.
package walltime

import (
	"fmt"
	"time"
	wall "time"
)

// runExperiment reproduces the original tspusim.go violation: the returned
// string embeds elapsed wall time, so two runs of the same seed differ.
func runExperiment(run func() string) string {
	start := time.Now() // want `time\.Now is wall-clock time`
	out := run()
	return fmt.Sprintf("[%.2fs]\n%s", time.Since(start).Seconds(), out) // want `time\.Since is wall-clock time`
}

func sleeps() {
	time.Sleep(time.Second) // want `time\.Sleep is wall-clock time`
}

func timers() {
	t := time.NewTimer(time.Second) // want `time\.NewTimer is wall-clock time`
	defer t.Stop()                  // methods on an existing timer are not re-flagged
	<-time.After(time.Minute)       // want `time\.After is wall-clock time`
	time.AfterFunc(time.Second, func() {}) // want `time\.AfterFunc is wall-clock time`
}

// renamed imports must not hide the clock.
func renamed() wall.Time {
	return wall.Now() // want `time\.Now is wall-clock time`
}

// referencing the function without calling it is just as nondeterministic.
var clock func() time.Time = time.Now // want `time\.Now is wall-clock time`

// legal: durations, conversions, and arithmetic are pure.
func legal(d time.Duration) time.Duration {
	parsed, _ := time.ParseDuration("30s")
	return d + parsed + 3*time.Second
}

// shadowed: a local identifier named time is not the time package.
type fakeClock struct{}

func (fakeClock) Now() int { return 0 }

func shadowed() int {
	var time fakeClock
	return time.Now()
}
