// Package statefacts is the consumer side of the statecheck-facts fixture:
// switches over an imported closed enum, held to the declaring package's
// contract through the EnumFact.
package statefacts

import "statefacts/enumdef"

// Total enumerates every imported member: clean.
func Total(k enumdef.Kind) string {
	switch k {
	case enumdef.Accept:
		return "accept"
	case enumdef.Drop:
		return "drop"
	case enumdef.Rewrite:
		return "rewrite"
	}
	return ""
}

// MissingCase drops Rewrite with no default.
func MissingCase(k enumdef.Kind) string {
	switch k { // want `switch over closed enum enumdef.Kind does not handle Rewrite`
	case enumdef.Accept:
		return "accept"
	case enumdef.Drop:
		return "drop"
	}
	return ""
}

// HidingDefault hides two imported members behind a bare default.
func HidingDefault(k enumdef.Kind) string {
	switch k {
	case enumdef.Accept:
		return "accept"
	default: // want `default in a switch over closed enum enumdef.Kind hides unhandled Drop, Rewrite`
		return "other"
	}
}
