// Package enumdef is the dependency side of the statecheck-facts fixture:
// it declares the closed enum whose membership travels to consuming
// packages as an EnumFact.
package enumdef

// Kind is a tiny closed verdict enum.
//
//tspuvet:closedenum
type Kind int

// Kinds.
const (
	Accept Kind = iota
	Drop
	Rewrite
)
