// Package maporder seeds every ordered-sink shape the analyzer must flag —
// and every provably order-insensitive shape it must not.
package maporder

import (
	"fmt"
	"sort"
	"strings"

	"tspusim/internal/report"
)

// appendNoSort leaks map order into a slice that is never sorted.
func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration order is random but the loop body appends to a slice`
		keys = append(keys, k)
	}
	return keys
}

// appendThenSort is the canonical legal pattern: collect, then sort.
func appendThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// builderWrite renders directly from iteration order.
func builderWrite(m map[string]int) string {
	var b strings.Builder
	for k, v := range m { // want `map iteration order is random but the loop body writes via fmt\.Fprintf`
		fmt.Fprintf(&b, "%s=%d\n", k, v)
		b.WriteString(k)
	}
	return b.String()
}

// stringConcat is ordered concatenation, the += form of the same bug.
func stringConcat(m map[string]int) string {
	out := ""
	for k := range m { // want `map iteration order is random but the loop body concatenates onto a string`
		out += k
	}
	return out
}

// tableRows feeds the report layer, whose row order is presentation order.
func tableRows(m map[string]float64) *report.Table {
	t := report.NewTable("fixture", "key", "value")
	for k, v := range m { // want `map iteration order is random but the loop body adds ordered rows to a report table`
		t.AddRow(k, v)
	}
	return t
}

// reductions commute: sums, min/max, counters, and map-to-map writes need no
// directive and no sort.
func reductions(m map[string]int) (int, int, map[int]int, *report.Hist) {
	sum, max := 0, 0
	counts := map[int]int{}
	h := report.NewHist("fixture")
	for _, v := range m {
		sum += v
		if v > max {
			max = v
		}
		counts[v]++
		h.Add(v)
	}
	return sum, max, counts, h
}

// sliceRange is not a map: slices iterate in index order.
func sliceRange(xs []string) string {
	var b strings.Builder
	for _, x := range xs {
		b.WriteString(x)
	}
	return b.String()
}

// sortedElsewhere: sorting a different slice does not excuse the loop.
func sortedElsewhere(m map[string]int, other []string) []string {
	var keys []string
	for k := range m { // want `map iteration order is random but the loop body appends to a slice`
		keys = append(keys, k)
	}
	sort.Strings(other)
	return keys
}

// allowed demonstrates an inline justification (suppression is applied by
// the driver, not the analyzer, so this fixture line still wants a
// diagnostic here; the driver-level test proves it is then dropped).
func allowed(m map[string]int) []string {
	var keys []string
	//tspuvet:allow maporder: probe order is shuffled downstream by the caller
	for k := range m { // want `map iteration order is random but the loop body appends to a slice`
		keys = append(keys, k)
	}
	return keys
}
