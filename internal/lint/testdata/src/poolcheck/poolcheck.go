// Package poolcheck exercises the pool-lifecycle lint: after a record is
// returned to its pool — a Put/Release/Recycle/Free call or an append onto a
// free-list slice — touching it again in the same function is a diagnostic,
// unless the variable is first re-armed with a fresh value.
package poolcheck

// entry is one pooled record.
type entry struct {
	gen   uint64
	key   uint64
	state int32
}

// shardT owns a free list and a table of live entries.
type shardT struct {
	free  []*entry
	table map[uint64]*entry
}

// release is the canonical release point: scrub, then push onto the free
// list. Nothing touches e afterwards, so the function itself is clean.
func (s *shardT) release(e *entry) {
	*e = entry{}
	s.free = append(s.free, e)
}

// pool is a sync.Pool-shaped type.
type pool struct{}

func (p *pool) Put(x *entry) {}
func (p *pool) Get() *entry  { return &entry{} }
func newEntry() *entry       { return &entry{} }

// useAfter reads a field after the record went back to the pool.
func (s *shardT) useAfter(e *entry) uint64 {
	s.release(e)
	return e.gen // want `e used after release \(released at line \d+\)`
}

// copyFirst is the correct shape: copy what you need, release last.
func (s *shardT) copyFirst(e *entry) uint64 {
	g := e.gen
	s.release(e)
	return g
}

// writeAfter scribbles on a released record.
func (s *shardT) writeAfter(e *entry) {
	s.release(e)
	e.state = 0 // want `e used after release`
}

// freeListAppend releases via the free-list idiom rather than a named call.
func (s *shardT) freeListAppend(e *entry) {
	e.gen++
	s.free = append(s.free, e)
	e.state = 0 // want `e used after release`
}

// viaPut releases through a sync.Pool and then re-inserts the dead record.
func viaPut(p *pool, s *shardT, e *entry) {
	p.Put(e)
	s.table[e.key] = e // want `e used after release`
}

// doubleRelease frees on every path of the branch, then frees again.
func (s *shardT) doubleRelease(e *entry, cond bool) {
	if cond {
		s.release(e)
	} else {
		s.release(e)
	}
	s.release(e) // want `e released twice \(first released at line \d+\)`
}

// switchRelease shows the definite-release merge across a switch with a
// default clause.
func (s *shardT) switchRelease(e *entry, k int) {
	switch k {
	case 0:
		s.release(e)
	default:
		s.release(e)
	}
	_ = e.gen // want `e used after release`
}

// maybeRelease frees on a path that returns: the fall-through never saw the
// release, so the later read is fine.
func (s *shardT) maybeRelease(e *entry, cond bool) uint64 {
	if cond {
		s.release(e)
		return 0
	}
	return e.gen
}

// partialRelease frees on only one falling-through path: not definite, so
// the later read is (conservatively) not flagged.
func (s *shardT) partialRelease(e *entry, cond bool) uint64 {
	if cond {
		s.release(e)
	}
	return e.gen
}

// rearm rebinds the variable to a fresh record after releasing: the old
// record is gone, the name is live again.
func (s *shardT) rearm(e *entry) *entry {
	s.release(e)
	e = newEntry()
	return e
}

// capture lets a closure smuggle the released record out of the block.
func (s *shardT) capture(e *entry, schedule func(func())) {
	s.release(e)
	schedule(func() { _ = e.gen }) // want `e used after release`
}

// loopScoped releases per-iteration variables: each dies with its iteration.
func (s *shardT) loopScoped(es []*entry) int {
	for _, e := range es {
		s.release(e)
	}
	return len(es)
}

// loopUse reads a record released before the loop from inside it: the body
// inherits the released set.
func (s *shardT) loopUse(es []*entry, e *entry) {
	s.release(e)
	for range es {
		_ = e.gen // want `e used after release`
	}
}

// genProbe is the deliberate exception shape: a test reading the generation
// counter after release to prove the bump, justified where it happens.
func (s *shardT) genProbe(e *entry) uint64 {
	g := e.gen
	s.release(e)
	//tspuvet:allow poolcheck: generation-bump probe; the pool is not drained concurrently in this test
	return e.gen - g // want `e used after release`
}
