// Package retaincheck exercises the packet-retention taint analysis: every
// function with a packet parameter is a taint root, and tainted values must
// not reach stores that outlive the call unless laundered through a
// clone/marshal or annotated //tspuvet:retains.
package retaincheck

import (
	"time"

	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

// mb is a middlebox-shaped device with places to stash packets.
type mb struct {
	last   *packet.Packet
	ring   []*packet.Packet
	byFlow map[uint64]*packet.Packet
	chunks [][]byte
	sniBuf []byte
	host   string
	recs   []record
	ch     chan *packet.Packet
	clock  *sim.Sim
}

// record is a by-value container a packet pointer can hide in.
type record struct {
	pkt *packet.Packet
	ttl uint8
}

// lastSeen is a package variable: storing a live packet there outlives
// every call.
var lastSeen *packet.Packet

// stashField keeps the live pointer in device state.
func (m *mb) stashField(pkt *packet.Packet) {
	m.last = pkt // want `packet-aliasing value stored in field m\.last, which outlives the call`
}

// stashClone copies first: the ring owns fresh memory.
func (m *mb) stashClone(pkt *packet.Packet) {
	m.last = pkt.Clone()
}

// stashAppend buffers the live pointer in a slice field.
func (m *mb) stashAppend(pkt *packet.Packet) {
	m.ring = append(m.ring, pkt) // want `packet-aliasing value stored in field m\.ring`
}

// stashMap retains through a map element.
func (m *mb) stashMap(pkt *packet.Packet, key uint64) {
	m.byFlow[key] = pkt // want `packet-aliasing value stored in element of m\.byFlow`
}

// stashSNI keeps a payload subslice: it aliases the packet's bytes just as
// much as the packet pointer does.
func (m *mb) stashSNI(pkt *packet.Packet) {
	sni := pkt.TCP.Payload[2:10]
	m.sniBuf = sni // want `packet-aliasing value stored in field m\.sniBuf`
}

// stashChunk appends the subslice itself rather than its bytes.
func (m *mb) stashChunk(pkt *packet.Packet) {
	m.chunks = append(m.chunks, pkt.TCP.Payload) // want `packet-aliasing value stored in field m\.chunks`
}

// spreadCopy launders: append(dst, b...) of bytes copies the elements out.
func (m *mb) spreadCopy(pkt *packet.Packet) {
	m.sniBuf = append(m.sniBuf[:0], pkt.TCP.Payload...)
}

// recordHost launders through a string conversion, which copies.
func (m *mb) recordHost(pkt *packet.Packet) {
	m.host = string(pkt.TCP.Payload)
}

// marshalled launders through Marshal, which serializes into fresh bytes.
func (m *mb) marshalled(pkt *packet.Packet) {
	b, _ := pkt.Marshal()
	m.sniBuf = b
}

// viaAccessor shows a cross-package accessor result staying tainted: the
// payload view aliases the packet even though no field was touched directly.
func (m *mb) viaAccessor(pkt *packet.Packet) {
	b := pkt.AppPayload()
	m.sniBuf = b // want `packet-aliasing value stored in field m\.sniBuf`
}

// viaLocal hides the pointer in a by-value local first; the escape happens
// when the container itself is stored.
func (m *mb) viaLocal(pkt *packet.Packet) {
	var rec record
	rec.pkt = pkt
	rec.ttl = pkt.IP.TTL
	m.recs = append(m.recs, rec) // want `packet-aliasing value stored in field m\.recs`
}

// frameLocal builds a scratch record behind a pointer that never leaves the
// frame: the pointee dies with the call, so the store is fine.
func frameLocal(pkt *packet.Packet) uint8 {
	tmp := &record{}
	tmp.pkt = pkt
	return tmp.pkt.IP.TTL
}

// keyOnly derives a value type from the packet: flow keys carry no
// references, so nothing taints.
func (m *mb) keyOnly(pkt *packet.Packet) {
	k := packet.FlowKey4Of(pkt)
	m.byFlow[k.PairHash()] = nil
}

// mutate rewrites the packet in place: the holder owns the packet, so
// storing into it is not retention.
func mutate(pkt *packet.Packet) {
	pkt.TCP.Payload = pkt.TCP.Payload[:0]
	pkt.IP.TTL--
}

// track stores into a package variable.
func track(pkt *packet.Packet) {
	lastSeen = pkt // want `packet-aliasing value stored in package variable lastSeen`
}

// sendChan hands the live pointer to whoever drains the channel.
func (m *mb) sendChan(pkt *packet.Packet) {
	m.ch <- pkt // want `packet-aliasing value sent on a channel`
}

// spawn hands the live pointer to a goroutine.
func spawn(pkt *packet.Packet) {
	go consume(pkt) // want `packet-aliasing value handed to a goroutine`
}

// consume is the goroutine body; as a packet root itself it is analyzed and
// clean.
func consume(pkt *packet.Packet) {
	_ = pkt.IP.TTL
}

// afterClosure schedules a closure over the live packet on the virtual
// clock: the Sim.After shape. The closure outlives the call.
func (m *mb) afterClosure(pkt *packet.Packet) {
	m.clock.After(time.Millisecond, func() { // want `closure captures packet-aliasing "pkt" and escapes`
		_ = pkt.IP.TTL
	})
}

// inlineClosure is invoked where it appears: it runs within the call's
// lifetime, so the capture is fine (the store inside is still checked).
func inlineClosure(pkt *packet.Packet) uint8 {
	ttl := func() uint8 { return pkt.IP.TTL }()
	return ttl
}

// entry passes the payload to a helper with no packet parameter of its own:
// the store inside the helper is reported with the call chain.
func (m *mb) entry(pkt *packet.Packet) {
	m.keep(pkt.TCP.Payload)
}

// keep is only dangerous when handed tainted bytes.
func (m *mb) keep(b []byte) {
	m.sniBuf = b // want `packet-aliasing value stored in field m\.sniBuf, which outlives the call \(reached via mb\.entry → mb\.keep\)`
}

// head returns a payload alias; the taint follows the return value into the
// caller's store.
func head(pkt *packet.Packet) []byte {
	return pkt.TCP.Payload[:4]
}

func (m *mb) viaReturn(pkt *packet.Packet) {
	m.sniBuf = head(pkt) // want `packet-aliasing value stored in field m\.sniBuf`
}

// delivery mirrors netem's pooled in-flight record: retention is the whole
// point, and the directive says who owns the copy and when it is dropped.
type delivery struct {
	pkt *packet.Packet
}

func (m *mb) schedule(pkt *packet.Packet, d *delivery) {
	//tspuvet:retains in-flight delivery record; cleared when the timer fires
	d.pkt = pkt // want `packet-aliasing value stored in field d\.pkt`
}
