// Package purityfacts is the consumer side of the purity-facts fixture:
// per-package analysis sees nothing wrong with these calls — the wall-clock
// read is two hops away in clockutil — so every diagnostic here exists only
// because the ImpureFact crossed the package seam.
package purityfacts

import "purityfacts/clockutil"

// Step is simulation-side code: calling the transitively impure helper is a
// diagnostic carrying the full cross-package chain.
func Step() float64 {
	return clockutil.Elapsed() // want `call to clockutil.Elapsed reaches wall-clock time \(reached via clockutil.Elapsed → clockutil.stamp → time.Now\)`
}

// Report is declared orchestration code: the stamp silences the transitive
// diagnostic inside and re-exports the impurity to Report's own callers.
//
//tspuvet:impure fixture: progress metrics only, never experiment output
func Report() float64 {
	return clockutil.Elapsed()
}
