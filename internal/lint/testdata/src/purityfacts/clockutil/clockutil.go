// Package clockutil is the dependency side of the purity-facts fixture: a
// helper package whose wall-clock read is wrapped behind an innocent-looking
// exported function. The direct diagnostic lands here; the ImpureFact makes
// every cross-package caller answerable for it too.
package clockutil

import "time"

// epoch pins the fixture's reference instant.
var epoch = time.Unix(0, 0)

// stamp reads the ambient wall clock: the direct diagnostic lands here and
// seeds the ImpureFact that follows the call graph upward.
func stamp() time.Time {
	return time.Now() // want `time.Now is wall-clock time`
}

// Elapsed is the transitively impure exported API: it has no banned call of
// its own, only a fact whose chain walks stamp → time.Now. Same-package
// propagation is silent by design.
func Elapsed() float64 {
	return stamp().Sub(epoch).Seconds()
}
