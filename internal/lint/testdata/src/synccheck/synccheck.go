// Package synccheck exercises the three worker-pool synchronization bugs the
// synccheck analyzer forbids, plus the legal shapes on either side of each
// rule: pointer passing, zero-value initialization, Add before go, and
// selects that either have a default or only receive.
package synccheck

import "sync"

type pool struct {
	mu    sync.Mutex
	wg    sync.WaitGroup
	tasks chan int
}

// byValue copies the whole pool, locks and all.
func byValue(p pool) { // want `parameter copies sync.Mutex by value`
	p.mu.Lock()
	defer p.mu.Unlock()
}

// valueRecv copies the receiver's locks on every call.
func (p pool) valueRecv() {} // want `receiver copies sync.Mutex by value`

// ptrRecv shares one lock state: legal.
func (p *pool) ptrRecv(f func(*sync.Mutex)) {
	f(&p.mu)
}

func copies(p *pool, mu *sync.Mutex) {
	q := *p // want `assignment copies sync.Mutex by value`
	_ = q
	mu2 := *mu // want `assignment copies sync.Mutex by value`
	_ = mu2
	var fresh sync.Mutex = sync.Mutex{} // zero-value initialization, not a copy: legal
	_ = fresh
	ptr := &p.mu // taking the address shares, not copies: legal
	_ = ptr
}

func addInsideGoroutine(p *pool) {
	go func() {
		p.wg.Add(1) // want `WaitGroup.Add inside the spawned goroutine races Wait`
		defer p.wg.Done()
	}()
	p.wg.Add(1) // Add before the go statement: legal
	go func() {
		defer p.wg.Done()
		go func() {
			// A nested goroutine is analyzed at its own go statement, not
			// attributed to the outer one.
			work()
		}()
	}()
	p.wg.Wait()
}

func selects(p *pool, done chan struct{}) {
	select {
	case p.tasks <- 1: // want `channel send in select without default can block a pooled worker forever`
	case <-done:
	}
	select {
	case p.tasks <- 2: // default makes the send droppable: legal
	default:
	}
	select {
	case v := <-p.tasks: // receive-only select blocks by design: legal
		_ = v
	case <-done:
	}
}

func work() {}
