// Package allocutil is the dependency side of the hotpath-facts fixture: a
// package with no hot-path markers of its own, so per-package analysis never
// looks at it. With facts enabled every function is probed anyway and the
// allocation becomes an AllocFact for hot callers elsewhere.
package allocutil

import "fmt"

// Label renders a per-item tag. Allocating is fine here — nothing in this
// package is hot — but the fact carries the cost to any hot caller.
func Label(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Wrap adds one same-package hop so the exported fact's chain has depth.
func Wrap(n int) string {
	return Label(n)
}
