// Package hotfacts is the consumer side of the hotpath-facts fixture: hot
// functions whose only allocations happen inside an imported helper,
// invisible to per-package analysis and diagnosed through AllocFacts with
// the callee's own chain spliced into the message.
package hotfacts

import "hotfacts/allocutil"

//tspuvet:hotpath
func PerPacket(n int) string {
	return allocutil.Label(n) // want `call to allocutil.Label allocates: fmt.Sprintf`
}

//tspuvet:hotpath
func PerBatch(n int) string {
	return allocutil.Wrap(n) // want `call to allocutil.Wrap allocates: .* \(in the callee via allocutil.Wrap → allocutil.Label\)`
}
