// Package laneregress is the fault re-injection fixture for lanecheck,
// distilled from the engine shape PR 6 sharded: HandleSharded works one
// conntrack shard per worker lane, and correctness rests on no lane ever
// touching a sibling's shard. The seeded bug is a work-stealing read of the
// neighbouring shard plus an unsynchronized engine-level counter bump.
package laneregress

// flowEntry is one pooled conntrack record.
//
//tspuvet:laneowned
type flowEntry struct {
	gen   uint64
	state int32
}

// ctShard is one lane's conntrack shard.
//
//tspuvet:laneowned
type ctShard struct {
	table map[uint64]*flowEntry
	free  []*flowEntry
}

// device is the shared TSPU device: shards is the lane-sharded container.
type device struct {
	shards []ctShard
	drops  uint64
}

// HandleSharded is the per-lane entry point shape from internal/tspu.
//
//tspuvet:lane
func (d *device) HandleSharded(shard int) {
	own := &d.shards[shard]
	own.table[7] = nil // own shard: fine

	steal := &d.shards[(shard+1)%len(d.shards)] // want `cross-lane access: d\.shards is indexed with expr, not the lane parameter`
	_ = steal

	d.drops++ // want `lane-reachable code writes shared state through d\.drops`
}

// HandleFixed is the corrected shape: stats stay in the shard, and only the
// lane's own shard is touched.
//
//tspuvet:lane
func (d *device) HandleFixed(shard int) {
	own := &d.shards[shard]
	own.table[7] = nil
	if len(own.free) > 0 {
		e := own.free[len(own.free)-1]
		e.state = 1
	}
}
