// Package retainregress is the fault re-injection fixture for retaincheck,
// distilled from the shape PR 6's ownership handoff made dangerous: with
// per-hop cloning gone, one live *packet.Packet traverses every link, and a
// capture middlebox that stashes it (directly or through a helper) aliases
// every downstream hop. The seeded bug is exactly that — Handle hands the
// live packet to an observe helper that keeps it.
package retainregress

import "tspusim/internal/packet"

// Dir mirrors netem's direction enum.
type Dir int

// capture mirrors netem/capture.go before it was annotated: a ring of
// recent packets kept for the conformance comparator.
type capture struct {
	ring []*packet.Packet
	last *packet.Packet
}

// Handle is the netem.Middlebox entry-point shape: it owns pkt only for the
// duration of the call.
func (c *capture) Handle(pkt *packet.Packet, dir Dir) bool {
	c.observe(pkt)
	return true
}

// observe stashes the live pointer: the regression under test. Handle is
// declared first, so the diagnostics carry the Handle → observe chain.
func (c *capture) observe(pkt *packet.Packet) {
	c.last = pkt                 // want `packet-aliasing value stored in field c\.last, which outlives the call \(reached via capture\.Handle → capture\.observe\)`
	c.ring = append(c.ring, pkt) // want `packet-aliasing value stored in field c\.ring`
}

// observeCloned is the fix: the ring owns deep copies, so downstream hops
// can mutate or recycle the original freely.
func (c *capture) observeCloned(pkt *packet.Packet) {
	c.last = pkt.Clone()
	c.ring = append(c.ring, pkt.Clone())
}
