// Package retainfacts is the consumer side of the retain-facts fixture: a
// middlebox-shaped function that forwards its packet into a helper package.
// Per-package analysis treated that call as an ownership boundary; the
// RetainsFact makes the helper's store the caller's problem too.
package retainfacts

import (
	"tspusim/internal/packet"

	"retainfacts/stash"
)

// Forward hands the live packet to the annotated parking lot: the callee's
// own site is excused, the cross-package handoff is not.
func Forward(p *packet.Packet) {
	stash.Keep(p) // want `packet-aliasing value passed to stash.Keep, which retains it`
}

// Observe hands a payload-derived slice to the unannotated helper.
func Observe(p *packet.Packet) {
	stash.Remember(p) // want `packet-aliasing value passed to stash.Remember, which retains it`
}

// CloneAndKeep launders the packet first: fresh memory, no diagnostic.
func CloneAndKeep(p *packet.Packet) {
	stash.Keep(p.Clone())
}
