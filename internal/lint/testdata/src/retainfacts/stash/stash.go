// Package stash is the dependency side of the retain-facts fixture: a helper
// package that parks a forwarded packet in package state. The site itself is
// deliberate and annotated — which excuses the store here but still exports
// the RetainsFact, because the annotation cannot speak for cross-package
// callers handing packets in.
package stash

import "tspusim/internal/packet"

// held is the parking lot the fixture retains into.
var held *packet.Packet

// lastPayload aliases the most recent packet's payload bytes.
var lastPayload []byte

// Keep parks the live packet past its own return. Annotated: the raw
// analyzer still sees the store (suppression is the driver's job), and the
// fact exports regardless.
func Keep(p *packet.Packet) {
	held = p //tspuvet:retains fixture: parking lot drained on the next tick // want `packet-aliasing value stored in package variable held`
}

// Remember aliases the payload rather than the packet itself; unannotated,
// so this is the plain true positive and the fact's What describes it.
func Remember(p *packet.Packet) {
	lastPayload = p.TCP.Payload // want `packet-aliasing value stored in package variable lastPayload`
}
