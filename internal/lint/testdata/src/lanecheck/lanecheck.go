// Package lanecheck exercises the shard-affinity checker: //tspuvet:lane
// marks lane entry points, //tspuvet:laneowned marks per-lane state, and
// everything reachable from an entry point may touch lane-owned sharded
// containers only through the lane's own index.
package lanecheck

import "tspusim/internal/sim"

// laneState is one lane's private batch state.
//
//tspuvet:laneowned
type laneState struct {
	q     []int32
	drops uint64
}

// shard is one conntrack shard.
//
//tspuvet:laneowned
type shard struct {
	table map[uint64]int
	free  []*laneState
}

// pipe is the per-lane injection handle: lane-owned, but its e field points
// back into shared engine state.
//
//tspuvet:laneowned
type pipe struct {
	e    *engine
	lane int32
}

// engine is the shared top level: lanes must not write it directly.
type engine struct {
	lane   []laneState
	shards []shard
	drops  uint64
	rng    *sim.Rand
}

// item is a per-packet verdict slot; not lane-owned, so an items slice
// parameter stays caller-visible shared memory.
type item struct {
	verdict int32
}

// runLane is the lane entry point: everything below is checked.
//
//tspuvet:lane
func (e *engine) runLane(l int, items []item) {
	ln := &e.lane[l] // own shard via the lane parameter: fine
	ln.drops++       // write through lane-owned state: fine
	ln.q = append(ln.q, 1)

	sh := &e.shards[l]
	sh.table[1] = 2 // map keyed by flow hash inside the own shard: fine

	idx := l // alias of the lane index
	e.lane[idx].drops++

	sib := &e.shards[0] // want `cross-lane access: e\.shards is indexed with 0, not the lane parameter`
	sib.table[1] = 2    // want `lane-reachable code writes shared state through sib\.table\[1\]`

	e.lane[l+1].q = nil // want `cross-lane access: e\.lane is indexed with expr`

	e.drops++ // want `lane-reachable code writes shared state through e\.drops`

	items[0].verdict = 1 // want `lane-reachable code writes shared state through items\[0\]\.verdict`

	if e.rng.Bool(0.5) { // want `lane-reachable code draws from a shared sim\.Rand`
		ln.drops++
	}

	helper(e, l)
}

// helper is reached from runLane; it uses its own lane parameter, and its
// diagnostics carry the call chain.
func helper(e *engine, l int) {
	e.lane[l].q = e.lane[l].q[:0] // own lane: fine
	e.lane[2].drops++             // want `cross-lane access: e\.lane is indexed with 2.*reached via engine\.runLane → helper`
}

// dispatch shows the lanePipe shape: the pipe itself is lane-owned, but
// reaching back through pipe.e re-enters shared territory.
//
//tspuvet:lane
func (e *engine) dispatch(lane int) {
	p := &pipe{e: e, lane: int32(lane)}
	p.inject()
}

// inject indexes the shared lane table with the pipe's own lane field
// (lane-owned state carrying the lane index), which is fine; writing
// engine-level state through p.e is not. The marker is valid without an
// integer parameter because the receiver is lane-owned.
//
//tspuvet:lane
func (p *pipe) inject() {
	ln := &p.e.lane[p.lane]
	ln.drops++
	p.e.drops++ // want `lane-reachable code writes shared state through p\.e\.drops`
}

// unreachable is not lane-reachable: nothing here is checked.
func unreachable(e *engine) {
	e.drops++
	e.lane[3].drops++
}

// mismarked puts the type marker on a function.
//
//tspuvet:laneowned // want `//tspuvet:laneowned belongs on a type declaration, not on function mismarked`
func mismarked() {}

// noParam declares a lane root without a lane-index parameter.
//
//tspuvet:lane // want `a lane entry point needs an integer lane parameter named lane, l, laneID, shard, or shardID`
func noParam() {}

// floating shows a marker attached to nothing.
func floating() {
	//tspuvet:lane // want `//tspuvet:lane must be the doc comment of a function declaration`
	_ = 0
}
