// Package allowdirective seeds every malformed suppression the analyzer must
// reject: the directive grammar is //tspuvet:allow <analyzer>: <reason>, and
// each part is mandatory so the allowlist documents itself.
package allowdirective

import "time"

//tspuvet:allow walltime: fixture clock is compared against the virtual clock
var epoch = time.Now()

//tspuvet:allow walltime // want `malformed //tspuvet:allow directive`
var noReasonNoColon = time.Now()

//tspuvet:allow walltime: // want `//tspuvet:allow walltime is missing a reason`
var noReason = time.Now()

//tspuvet:allow chronomancer: the clock told me to // want `names unknown analyzer "chronomancer"`
var unknownAnalyzer = time.Now()

//tspuvet:allow allowdirective: suppress the suppressor // want `names unknown analyzer "allowdirective"`
var selfSuppression = time.Now()

//tspuvet:ignore walltime: wrong verb // want `unknown tspuvet directive "ignore"`
var unknownVerb = time.Now()

// A deliberate retention site is valid with a reason; staleness is enforced
// by Suppress, not here.
//
//tspuvet:retains capture ring owns the tap until the comparator drains it
var retainsOK = time.Now()

//tspuvet:retains // want `//tspuvet:retains is missing a reason`
var retainsNoReason = time.Now()

// A plain comment mentioning tspuvet:allow inside prose is not a directive
// because directives must start the comment: //tspuvet:allow is only parsed
// at column one of the comment text.
var prose = time.Now()
