// Package hotpath exercises every construct the hotpath analyzer forbids in
// functions reachable from a //tspuvet:hotpath root, plus the shapes that
// must stay legal: coldpath cuts, map-key string conversions, scratch-buffer
// appends, and code that is simply unreachable from any root.
package hotpath

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

type Flow struct{ id int }

type Device struct {
	table   map[string]*Flow
	scratch []byte
	sink    any
	count   int
}

//tspuvet:hotpath
func (d *Device) Handle(b []byte) int {
	n := d.observe(b)
	d.reference(b)
	return n + helper(n)
}

// observe is reachable one hop from the root.
func (d *Device) observe(b []byte) int {
	if d.table[string(b)] != nil { // map-key conversion is elided by the compiler: legal
		d.count++
	}
	s := string(b)                        // want `string\(bytes\) conversion copies.*reached via Device.Handle → Device.observe`
	msg := fmt.Sprintf("flow %s", s)      // want `fmt.Sprintf allocates on the hot path`
	d.scratch = append(d.scratch[:0], b...) // reused scratch buffer: legal
	_ = msg
	return len(s)
}

// helper is reachable two hops from the root via Handle's return expression.
func helper(n int) int {
	var fresh []int
	for i := 0; i < n; i++ {
		fresh = append(fresh, i) // want `append grows fresh from zero capacity`
		defer cleanup()          // want `defer inside a loop`
	}
	buf := make([]byte, n) // want `make on the hot path allocates`
	_ = buf
	return len(fresh)
}

// reference is the retained slow-path oracle; the cut keeps its allocations
// off the contract.
//
//tspuvet:coldpath reference implementation kept as the equivalence oracle
func (d *Device) reference(b []byte) string {
	lower := strings.ToLower(string(b)) // legal: coldpath
	return fmt.Sprintf("%q", lower)     // legal: coldpath
}

//tspuvet:coldpath // want `//tspuvet:coldpath on Device.sweep is missing a reason`
func (d *Device) sweep() {}

//tspuvet:hotpath
func Mixed(vals []int, ch chan int, d *Device) *Flow {
	for k := range d.table { // want `map iteration on the hot path`
		_ = k
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] }) // want `sort.Slice allocates`
	take(vals[0])                                                     // want `int value passed as interface boxes`
	cb(func() { _ = vals })                                           // want `closure passed on the hot path`
	go cleanup()                                                      // want `go statement on the hot path`
	ch <- 1                                                           // want `channel send on the hot path`
	d.sink = d.observe                                                // want `method value d.observe stored on the hot path`
	d.sink = vals[0]                                                  // want `int value stored as interface boxes`
	label := "a" + errs().Error()                                     // want `string concatenation allocates`
	label += "b"                                                      // want `string concatenation allocates`
	_ = label
	n := new(Flow) // want `new\(T\) on the hot path allocates`
	_ = n
	return &Flow{id: 1} // want `&composite literal returned on the hot path escapes`
}

// errs is reachable from Mixed.
func errs() error {
	return errors.New("boom") // want `errors.New allocates on the hot path \(reached via Mixed → errs\)`
}

// unreachable is not reachable from any root: anything goes.
func unreachable() string {
	return fmt.Sprintf("%d", len("free"))
}

// cleanup is reachable (from helper's defer and Mixed's go) but clean.
func cleanup() {}

// take and cb are reachable interface/function sinks, themselves clean.
func take(x any)    { _ = x }
func cb(f func())   { _ = f }

// allowed shows line-level suppression surviving in analyzer output: the
// raw diagnostic is still produced here (suppression happens in the driver),
// so the fixture wants it like any other.
//
//tspuvet:hotpath
func allowed() string {
	return fmt.Sprintf("ok") //tspuvet:allow hotpath: fixture exercises the raw diagnostic // want `fmt.Sprintf allocates`
}

//tspuvet:hotpath // want `must be the doc comment of a function declaration`
var notAFunc = 0

type misplaced struct {
	//tspuvet:coldpath fields cannot be cold // want `must be the doc comment of a function declaration`
	f int
}
