// Package hotpathregress is the fault re-injection fixture for the hotpath
// analyzer: a shrunk mirror of internal/tspu's conntrack shape with the one
// regression PR 4 actually fought — a fmt.Sprintf sneaking into a helper one
// call below the per-packet entry point — deliberately re-introduced. The
// golden diagnostic pins both the finding and the call chain that explains it.
package hotpathregress

import "fmt"

type flowEntry struct {
	hits  int
	label string
}

type conntrack struct {
	flows map[uint64]*flowEntry
	free  []*flowEntry
}

type Device struct {
	ct conntrack
}

//tspuvet:hotpath
func (d *Device) Handle(key uint64, payload []byte) int {
	e := d.ct.observe(key)
	e.hits++
	return e.hits + len(payload)
}

// observe is the injected regression: labeling the flow on lookup drags
// fmt.Sprintf into every packet.
func (c *conntrack) observe(key uint64) *flowEntry {
	if e := c.flows[key]; e != nil {
		return e
	}
	e := c.alloc()
	e.label = fmt.Sprintf("flow-%d", key) // want `fmt.Sprintf allocates on the hot path \(reached via Device.Handle → conntrack.observe\)`
	c.flows[key] = e
	return e
}

// alloc refills from the free list; the pool-miss path is the one allocation
// the real code excuses with a reasoned allow, reproduced here verbatim.
func (c *conntrack) alloc() *flowEntry {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free = c.free[:n-1]
		return e
	}
	return &flowEntry{} //tspuvet:allow hotpath: pool miss refill, amortized across the run // want `&composite literal returned on the hot path escapes`
}
