package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tspusim/internal/lint/analysis"
)

// Statecheck makes state-machine transitions total. The simulator is full of
// small closed enums — conntrack states, device verdicts, censor rule
// actions, conformance oracle states — and every one of them is dispatched
// through switches. Adding a member to the enum without visiting every
// switch is the classic silent-rot path: the new state falls into a default
// (or out of the switch entirely) and the machine quietly misbehaves.
//
//   - //tspuvet:closedenum on a type declaration declares the enum closed:
//     its members are exactly the package-level constants of that type
//     (aliases — distinct names for the same constant value — count once).
//   - Every switch over a value of a closed enum must either enumerate every
//     member or carry a default annotated with
//     //tspuvet:allow statecheck: <reason>. A bare default is a diagnostic
//     at the default clause; a missing member without a default is a
//     diagnostic at the switch. The annotation rots like every other
//     //tspuvet:allow the moment the switch becomes exhaustive.
//   - A case that dispatches on a non-constant expression makes the switch
//     undecidable; such switches are skipped.
//
// The members travel across package seams as an EnumFact on the type, so a
// switch in internal/conformance over a tspu.ConnState is held to the same
// standard as one next to the declaration. Without facts (per-package mode)
// only same-package switches are checked.
var Statecheck = &analysis.Analyzer{
	Name: "statecheck",
	Doc: "every switch over a //tspuvet:closedenum type must enumerate all " +
		"members or justify its default with //tspuvet:allow statecheck: <reason>",
	Run:       runStatecheck,
	FactTypes: []analysis.Fact{(*EnumFact)(nil)},
}

const closedenumVerb = "closedenum"

// EnumFact carries a closed enum's membership to importing packages: the
// declaration-ordered members, deduplicated by constant value.
type EnumFact struct {
	Members []EnumMember `json:"members"`
}

// AFact marks EnumFact as a serializable analysis fact.
func (*EnumFact) AFact() {}

// EnumMember is one enum member: its canonical name (the first constant
// declared with this value) and the exact constant value for matching case
// clauses that spell a member differently (aliases, qualified names).
type EnumMember struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

func runStatecheck(pass *analysis.Pass) (any, error) {
	c := &stateChecker{pass: pass, enums: map[*types.TypeName]*EnumFact{}}
	marked := c.collectMarked()
	for _, tn := range marked {
		members := c.collectMembers(tn)
		if len(members) == 0 {
			pass.Reportf(tn.Pos(), "//tspuvet:closedenum on %s: no package-level constants of this type; a closed enum needs members", tn.Name())
			continue
		}
		c.enums[tn] = &EnumFact{Members: members}
	}
	if pass.FactsEnabled() {
		for _, tn := range marked {
			if ef := c.enums[tn]; ef != nil {
				pass.ExportObjectFact(tn, ef)
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			if sw, ok := x.(*ast.SwitchStmt); ok {
				c.checkSwitch(sw)
			}
			return true
		})
	}
	return nil, nil
}

type stateChecker struct {
	pass  *analysis.Pass
	enums map[*types.TypeName]*EnumFact
}

// collectMarked gathers //tspuvet:closedenum-marked type names in source
// order, validating marker placement like the lane markers do.
func (c *stateChecker) collectMarked() []*types.TypeName {
	var marked []*types.TypeName
	consumed := map[*ast.Comment]bool{}
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.GenDecl)
			if !ok || d.Tok != token.TYPE {
				continue
			}
			markSpecs := func(doc *ast.CommentGroup, specs []ast.Spec) {
				if doc == nil {
					return
				}
				for _, cm := range doc.List {
					if !closedenumMarker(cm) {
						continue
					}
					consumed[cm] = true
					for _, spec := range specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							marked = append(marked, tn)
						}
					}
				}
			}
			markSpecs(d.Doc, d.Specs)
			for _, spec := range d.Specs {
				if ts, ok := spec.(*ast.TypeSpec); ok {
					markSpecs(ts.Doc, []ast.Spec{spec})
				}
			}
		}
	}
	for _, f := range c.pass.Files {
		for _, cg := range f.Comments {
			for _, cm := range cg.List {
				if closedenumMarker(cm) && !consumed[cm] {
					c.pass.Reportf(cm.Pos(), "//tspuvet:closedenum must be the doc comment of a type declaration")
				}
			}
		}
	}
	return marked
}

// closedenumMarker parses a //tspuvet:closedenum comment.
func closedenumMarker(c *ast.Comment) bool {
	if !strings.HasPrefix(c.Text, directivePrefix) {
		return false
	}
	body := strings.TrimPrefix(c.Text, directivePrefix)
	if i := strings.Index(body, "//"); i >= 0 {
		body = strings.TrimSpace(body[:i])
	}
	verb, _, _ := strings.Cut(body, " ")
	return verb == closedenumVerb
}

// collectMembers walks package-level const declarations in source order and
// returns the enum's members: every constant of exactly this type,
// deduplicated by value (the first name declared for a value is canonical).
func (c *stateChecker) collectMembers(tn *types.TypeName) []EnumMember {
	var members []EnumMember
	seen := map[string]bool{}
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.GenDecl)
			if !ok || d.Tok != token.CONST {
				continue
			}
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					cst, ok := c.pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || !types.Identical(cst.Type(), tn.Type()) {
						continue
					}
					v := cst.Val().ExactString()
					if seen[v] {
						continue
					}
					seen[v] = true
					members = append(members, EnumMember{Name: name.Name, Value: v})
				}
			}
		}
	}
	return members
}

// enumOf resolves the closed enum a switch tag belongs to: a local marked
// type, or an imported type carrying an EnumFact.
func (c *stateChecker) enumOf(t types.Type) (*types.TypeName, *EnumFact) {
	if t == nil {
		return nil, nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	tn := named.Obj()
	if tn == nil {
		return nil, nil
	}
	if ef := c.enums[tn]; ef != nil {
		return tn, ef
	}
	if tn.Pkg() != nil && tn.Pkg() != c.pass.Pkg {
		var ef EnumFact
		if c.pass.ImportObjectFact(tn, &ef) {
			return tn, &ef
		}
	}
	return nil, nil
}

// checkSwitch verifies one value switch over a closed enum.
func (c *stateChecker) checkSwitch(sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tn, ef := c.enumOf(c.pass.TypesInfo.TypeOf(sw.Tag))
	if ef == nil {
		return
	}
	covered := map[string]bool{}
	var defaultPos token.Pos
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			defaultPos = cc.Pos()
			continue
		}
		for _, e := range cc.List {
			tv, ok := c.pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				return // dynamic case: membership is undecidable, skip the switch
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	var missing []string
	for _, m := range ef.Members {
		if !covered[m.Value] {
			missing = append(missing, m.Name)
		}
	}
	if len(missing) == 0 {
		return
	}
	label := tn.Name()
	if tn.Pkg() != nil && tn.Pkg() != c.pass.Pkg {
		label = tn.Pkg().Name() + "." + label
	}
	if hasDefault {
		c.pass.Reportf(defaultPos, "default in a switch over closed enum %s hides unhandled %s; enumerate the members or justify with //tspuvet:allow statecheck: <reason>",
			label, strings.Join(missing, ", "))
		return
	}
	c.pass.Reportf(sw.Pos(), "switch over closed enum %s does not handle %s; add the missing cases or an annotated default",
		label, strings.Join(missing, ", "))
}
