package hostnet

import (
	"time"

	"tspusim/internal/packet"
)

// ReassemblyProfile models the host IP stack's fragment reassembly limits.
// The queue limit is the discriminator the paper's remote fingerprint relies
// on: Linux defaults to 64 fragments, Cisco boxes to 24, Juniper to 250,
// while the TSPU caps at 45 (§7.2).
type ReassemblyProfile struct {
	// MaxFragments caps the fragments buffered per packet; exceeding it
	// discards the queue.
	MaxFragments int
	// Timeout discards incomplete queues (Linux: 30s).
	Timeout time.Duration
}

// Linux-like default reassembly profile.
func DefaultReassembly() ReassemblyProfile {
	return ReassemblyProfile{MaxFragments: 64, Timeout: 30 * time.Second}
}

type reasmQueue struct {
	frags    []*packet.Packet
	poisoned bool
}

// SetReassembly overrides the stack's fragment reassembly profile.
func (st *Stack) SetReassembly(p ReassemblyProfile) { st.reasm = p }

// handleFragment buffers fragments and, when a packet completes, delivers
// the reassembled packet through the normal demultiplexer.
func (st *Stack) handleFragment(pkt *packet.Packet) {
	key := packet.FragKeyOf(pkt)
	q, ok := st.reasmQueues[key]
	if !ok {
		q = &reasmQueue{}
		st.reasmQueues[key] = q
		st.net.Sim.After(st.reasm.Timeout, func() {
			if cur, live := st.reasmQueues[key]; live && cur == q {
				delete(st.reasmQueues, key)
			}
		})
	}
	if q.poisoned {
		return
	}
	if len(q.frags)+1 > st.reasm.MaxFragments {
		q.poisoned = true
		q.frags = nil
		return
	}
	q.frags = append(q.frags, pkt.Clone())
	whole, err := packet.Reassemble(q.frags)
	if err != nil {
		return // incomplete (or inconsistent): keep waiting for more
	}
	delete(st.reasmQueues, key)
	st.dispatch(whole)
}
