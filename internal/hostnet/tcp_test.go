package hostnet

import (
	"bytes"
	"testing"
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

// pair builds two hosts connected by one router.
func pair(t *testing.T) (*sim.Sim, *Stack, *Stack) {
	t.Helper()
	s := sim.New()
	n := netem.New(s)
	a := n.AddHost("a")
	r := n.AddRouter("r")
	b := n.AddHost("b")
	ai := a.AddIface(packet.MustAddr("10.0.0.2"))
	ra := r.AddIface(packet.MustAddr("10.0.0.1"))
	rb := r.AddIface(packet.MustAddr("203.0.113.1"))
	bi := b.AddIface(packet.MustAddr("203.0.113.10"))
	n.Connect(ai, ra, time.Millisecond)
	n.Connect(rb, bi, time.Millisecond)
	a.AddDefaultRoute(ai)
	b.AddDefaultRoute(bi)
	r.AddRoute(netem.MustPrefix("10.0.0.0/24"), ra)
	r.AddRoute(netem.MustPrefix("203.0.113.0/24"), rb)
	return s, NewStack(n, a), NewStack(n, b)
}

func TestThreeWayHandshake(t *testing.T) {
	s, client, server := pair(t)
	var serverConn *TCPConn
	server.Listen(443, ListenOptions{OnConnect: func(c *TCPConn) { serverConn = c }})
	c := client.Dial(server.Addr(), 443, DialOptions{})
	s.Run()
	if c.State != StateEstablished {
		t.Fatalf("client state = %v", c.State)
	}
	if serverConn == nil || serverConn.State != StateEstablished {
		t.Fatal("server not established")
	}
}

func TestDataTransferAndEcho(t *testing.T) {
	s, client, server := pair(t)
	server.Listen(7, ListenOptions{Echo: true})
	c := client.Dial(server.Addr(), 7, DialOptions{})
	c.OnEstablished = func() { c.Send([]byte("ping-payload")) }
	s.Run()
	if !bytes.Equal(c.Received, []byte("ping-payload")) {
		t.Fatalf("echo mismatch: %q", c.Received)
	}
}

func TestSmallWindowForcesSegmentation(t *testing.T) {
	s, client, server := pair(t)
	var serverConn *TCPConn
	server.Listen(443, ListenOptions{
		Window:    100,
		OnConnect: func(c *TCPConn) { serverConn = c },
	})
	payload := bytes.Repeat([]byte{0x16}, 517) // typical ClientHello size
	c := client.Dial(server.Addr(), 443, DialOptions{})
	c.OnEstablished = func() { c.Send(payload) }
	s.Run()
	if serverConn == nil {
		t.Fatal("no server conn")
	}
	if !bytes.Equal(serverConn.Received, payload) {
		t.Fatal("payload mismatch")
	}
	if serverConn.Segments < 6 {
		t.Fatalf("segments = %d, want >= 6 with 100-byte window", serverConn.Segments)
	}
}

func TestSplitHandshake(t *testing.T) {
	s, client, server := pair(t)
	var serverConn *TCPConn
	var clientPkts []packet.TCPFlags
	server.Listen(443, ListenOptions{
		SplitHandshake: true,
		OnConnect:      func(c *TCPConn) { serverConn = c },
	})
	c := client.Dial(server.Addr(), 443, DialOptions{})
	c.OnPacket = func(p *packet.Packet) { clientPkts = append(clientPkts, p.TCP.Flags) }
	s.Run()
	if c.State != StateEstablished {
		t.Fatalf("client state = %v", c.State)
	}
	if serverConn == nil || serverConn.State != StateEstablished {
		t.Fatal("server not established via split handshake")
	}
	// Client must have seen a bare SYN (not SYN/ACK) first.
	if len(clientPkts) == 0 || clientPkts[0] != packet.FlagSYN {
		t.Fatalf("client saw %v, want bare SYN first", clientPkts)
	}
}

func TestSplitHandshakeDataFlows(t *testing.T) {
	s, client, server := pair(t)
	var got []byte
	server.Listen(443, ListenOptions{
		SplitHandshake: true,
		OnData:         func(c *TCPConn, d []byte) { got = append(got, d...) },
	})
	c := client.Dial(server.Addr(), 443, DialOptions{})
	c.OnEstablished = func() { c.Send([]byte("clienthello-bytes")) }
	s.Run()
	if !bytes.Equal(got, []byte("clienthello-bytes")) {
		t.Fatalf("server got %q", got)
	}
}

func TestRSTObserved(t *testing.T) {
	s, client, server := pair(t)
	_ = server // no listener on 9999: host responds RST
	c := client.Dial(server.Addr(), 9999, DialOptions{})
	s.Run()
	if !c.ResetSeen || c.State != StateReset {
		t.Fatalf("RST not observed: state=%v", c.State)
	}
}

func TestPingEcho(t *testing.T) {
	s, client, server := pair(t)
	_ = server
	var replies int
	client.OnICMP(func(p *packet.Packet) {
		if p.ICMP.Type == packet.ICMPEchoReply {
			replies++
		}
	})
	client.Ping(server.Addr(), 7, 1)
	client.Ping(server.Addr(), 7, 2)
	s.Run()
	if replies != 2 {
		t.Fatalf("replies = %d", replies)
	}
}

func TestICMPEchoDisabled(t *testing.T) {
	s, client, server := pair(t)
	server.SetICMPEcho(false)
	var replies int
	client.OnICMP(func(p *packet.Packet) { replies++ })
	client.Ping(server.Addr(), 7, 1)
	s.Run()
	if replies != 0 {
		t.Fatal("echo reply despite disabled")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	s, client, server := pair(t)
	var got []byte
	server.BindUDP(53, func(p *packet.Packet) {
		got = p.UDP.Payload
		server.SendUDP(p.IP.Src, 53, p.UDP.SrcPort, []byte("resp"))
	})
	var resp []byte
	client.BindUDP(5353, func(p *packet.Packet) { resp = p.UDP.Payload })
	client.SendUDP(server.Addr(), 5353, 53, []byte("query"))
	s.Run()
	if !bytes.Equal(got, []byte("query")) || !bytes.Equal(resp, []byte("resp")) {
		t.Fatalf("udp exchange: got=%q resp=%q", got, resp)
	}
}

func TestEphemeralPortsFresh(t *testing.T) {
	_, client, _ := pair(t)
	seen := map[uint16]bool{}
	for i := 0; i < 1000; i++ {
		p := client.EphemeralPort()
		if seen[p] {
			t.Fatalf("port %d reused", p)
		}
		seen[p] = true
	}
}

func TestDialOptionsPinned(t *testing.T) {
	s, client, server := pair(t)
	var syn *packet.Packet
	server.Tap(func(p *packet.Packet) {
		if p.TCP != nil && p.TCP.Flags == packet.FlagSYN && syn == nil {
			syn = p
		}
	})
	server.Listen(443, ListenOptions{})
	client.Dial(server.Addr(), 443, DialOptions{SrcPort: 4444, ISN: 12345, TTL: 9})
	s.Run()
	if syn == nil {
		t.Fatal("no SYN seen")
	}
	if syn.TCP.SrcPort != 4444 || syn.TCP.Seq != 12345 {
		t.Fatalf("SYN fields: port=%d seq=%d", syn.TCP.SrcPort, syn.TCP.Seq)
	}
	if syn.IP.TTL != 8 { // one router hop decrements 9 -> 8
		t.Fatalf("TTL = %d, want 8", syn.IP.TTL)
	}
}

func TestResponseDelay(t *testing.T) {
	s, client, server := pair(t)
	server.Listen(443, ListenOptions{ResponseDelay: 500})
	c := client.Dial(server.Addr(), 443, DialOptions{})
	var establishedAt time.Duration
	c.OnEstablished = func() { establishedAt = s.Now() }
	s.Run()
	if c.State != StateEstablished {
		t.Fatalf("state = %v", c.State)
	}
	if establishedAt < 500*time.Millisecond {
		t.Fatalf("established at %v, want >= 500ms", establishedAt)
	}
}

func TestCloseRemovesConn(t *testing.T) {
	s, client, server := pair(t)
	server.Listen(443, ListenOptions{})
	c := client.Dial(server.Addr(), 443, DialOptions{})
	s.Run()
	c.Close()
	if c.State != StateClosed {
		t.Fatal("close did not reset state")
	}
	if len(client.conns) != 0 {
		t.Fatal("conn still in table")
	}
}

func TestGracefulShutdown(t *testing.T) {
	s, client, server := pair(t)
	var serverConn *TCPConn
	server.Listen(443, ListenOptions{OnConnect: func(c *TCPConn) { serverConn = c }})
	c := client.Dial(server.Addr(), 443, DialOptions{})
	s.Run()
	c.Shutdown()
	s.Run()
	if serverConn.State != StateCloseWait {
		t.Fatalf("server state = %v, want CLOSE-WAIT", serverConn.State)
	}
	serverConn.Shutdown()
	s.Run()
	if c.State != StateClosed {
		t.Fatalf("client state = %v, want CLOSED", c.State)
	}
	if serverConn.State != StateClosed {
		t.Fatalf("server state = %v, want CLOSED", serverConn.State)
	}
}

func TestFINWithData(t *testing.T) {
	s, client, server := pair(t)
	var got []byte
	server.Listen(443, ListenOptions{OnData: func(c *TCPConn, d []byte) { got = append(got, d...) }})
	c := client.Dial(server.Addr(), 443, DialOptions{})
	c.OnEstablished = func() {
		c.SendRaw(packet.FlagsFINACK, []byte("last-words"))
		c.SndNxt++ // FIN consumes a sequence number
		c.State = StateFinWait
	}
	s.Run()
	if string(got) != "last-words" {
		t.Fatalf("server got %q", got)
	}
}

func TestShutdownFromSynSentIsNoop(t *testing.T) {
	s, client, server := pair(t)
	_ = server // no listener: handshake never completes... actually RST arrives
	c := client.Dial(server.Addr(), 9998, DialOptions{})
	s.Run()
	st := c.State
	c.Shutdown() // must not panic or send from a dead state
	s.Run()
	if c.State != st {
		t.Fatalf("state changed from %v to %v", st, c.State)
	}
}
