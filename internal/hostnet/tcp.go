package hostnet

import (
	"net/netip"
	"time"

	"tspusim/internal/packet"
)

// TCPState is the endpoint connection state (simplified RFC 793 set).
type TCPState int

// Connection states.
const (
	StateClosed TCPState = iota
	StateSynSent
	StateSynReceived
	StateEstablished
	StateReset
	// StateFinWait: we sent FIN, awaiting the peer's.
	StateFinWait
	// StateCloseWait: peer sent FIN, we have not closed yet.
	StateCloseWait
)

func (s TCPState) String() string {
	switch s {
	case StateClosed:
		return "CLOSED"
	case StateSynSent:
		return "SYN-SENT"
	case StateSynReceived:
		return "SYN-RECEIVED"
	case StateEstablished:
		return "ESTABLISHED"
	case StateReset:
		return "RESET"
	case StateFinWait:
		return "FIN-WAIT"
	case StateCloseWait:
		return "CLOSE-WAIT"
	}
	return "?"
}

// DialOptions configure an active open.
type DialOptions struct {
	// SrcPort pins the source port; 0 picks an ephemeral one.
	SrcPort uint16
	// ISN pins the initial sequence number (default 1000).
	ISN uint32
	// MSS caps segment size (default 1400).
	MSS int
	// TTL overrides the IP TTL (default 64).
	TTL uint8
}

// ListenOptions configure a passive listener.
type ListenOptions struct {
	// SplitHandshake makes the server answer SYN with a bare SYN (no ACK),
	// the §8 server-side strategy; the unmodified client then completes a
	// split handshake.
	SplitHandshake bool
	// Window is the advertised receive window (default 65535). The brdgrd
	// strategy announces a small value here so the client segments its
	// ClientHello.
	Window uint16
	// OnConnect fires when the connection is established.
	OnConnect func(c *TCPConn)
	// OnData fires for every data segment received.
	OnData func(c *TCPConn, data []byte)
	// Echo makes the server echo every data segment back (port-7 service).
	Echo bool
	// ResponseDelay delays the server's handshake reply, used by the
	// timeout-wait circumvention strategy.
	ResponseDelay int // in milliseconds of virtual time
}

// TCPConn is one endpoint of a mini-TCP connection.
type TCPConn struct {
	stack *Stack
	// Local and remote identifiers.
	LocalAddr  netip.Addr
	RemoteAddr netip.Addr
	LocalPort  uint16
	RemotePort uint16

	State TCPState
	// SndNxt is the next sequence number to send; RcvNxt the next expected.
	SndNxt, RcvNxt uint32
	// PeerWindow is the most recent window advertised by the peer.
	PeerWindow uint16
	// mss caps outgoing segment payloads.
	mss int
	ttl uint8

	// Received accumulates payload bytes in arrival order.
	Received []byte
	// Segments counts data segments received.
	Segments int
	// Packets records every packet received on this connection.
	Packets []*packet.Packet
	// ResetSeen reports whether a RST arrived.
	ResetSeen bool

	// OnEstablished fires once when reaching ESTABLISHED.
	OnEstablished func()
	// OnData fires per received data segment.
	OnData func(data []byte)
	// OnPacket fires for every received packet.
	OnPacket func(pkt *packet.Packet)

	advertWindow uint16
	echo         bool
	serverSplit  bool
	onConnect    func(c *TCPConn)
	// listener is set on server-side conns so a reused 4-tuple can recycle.
	listener *Listener
}

func (st *Stack) newConn(remote netip.Addr, lport, rport uint16, mss int, ttl uint8) *TCPConn {
	if mss <= 0 {
		mss = 1400
	}
	if ttl == 0 {
		ttl = 64
	}
	c := &TCPConn{
		stack:        st,
		LocalAddr:    st.Addr(),
		RemoteAddr:   remote,
		LocalPort:    lport,
		RemotePort:   rport,
		PeerWindow:   65535,
		mss:          mss,
		ttl:          ttl,
		advertWindow: 65535,
	}
	st.conns[c.key()] = c
	return c
}

// Stack returns the stack that owns this connection, so measurement code
// can send raw packets (fragments, TTL-limited probes) on its behalf.
func (c *TCPConn) Stack() *Stack { return c.stack }

func (c *TCPConn) key() packet.FlowKey {
	return packet.FlowKey{
		Proto: packet.ProtoTCP,
		Src:   c.LocalAddr, Dst: c.RemoteAddr,
		SrcPort: c.LocalPort, DstPort: c.RemotePort,
	}
}

// Dial initiates an active open to dst:port and returns the connection. The
// handshake completes asynchronously under the simulator; use OnEstablished
// or inspect State after running the sim.
func (st *Stack) Dial(dst netip.Addr, port uint16, opts DialOptions) *TCPConn {
	sport := opts.SrcPort
	if sport == 0 {
		sport = st.EphemeralPort()
	}
	isn := opts.ISN
	if isn == 0 {
		isn = 1000
	}
	c := st.newConn(dst, sport, port, opts.MSS, opts.TTL)
	c.SndNxt = isn
	c.State = StateSynSent
	c.sendFlags(packet.FlagSYN, c.SndNxt, 0, nil)
	c.SndNxt++
	return c
}

// Listener accepts inbound connections on a port.
type Listener struct {
	stack *Stack
	port  uint16
	opts  ListenOptions
	// Conns lists accepted connections in arrival order.
	Conns []*TCPConn
}

// Listen binds a listener to port.
func (st *Stack) Listen(port uint16, opts ListenOptions) *Listener {
	if opts.Window == 0 {
		opts.Window = 65535
	}
	l := &Listener{stack: st, port: port, opts: opts}
	st.listeners[port] = l
	return l
}

func (l *Listener) accept(syn *packet.Packet) {
	if !syn.TCP.Flags.Has(packet.FlagSYN) || syn.TCP.Flags.Has(packet.FlagACK) {
		return // not a connection attempt
	}
	st := l.stack
	c := st.newConn(syn.IP.Src, syn.TCP.DstPort, syn.TCP.SrcPort, 1400, 0)
	// Answer from whatever address the SYN targeted: on promiscuous "farm"
	// hosts that address is not the stack's own. Re-key the conn to match.
	if syn.IP.Dst != c.LocalAddr {
		delete(st.conns, c.key())
		c.LocalAddr = syn.IP.Dst
		st.conns[c.key()] = c
	}
	c.listener = l
	c.advertWindow = l.opts.Window
	c.echo = l.opts.Echo
	c.serverSplit = l.opts.SplitHandshake
	c.onConnect = l.opts.OnConnect
	if l.opts.OnData != nil {
		onData := l.opts.OnData
		c.OnData = func(data []byte) { onData(c, data) }
	}
	c.RcvNxt = syn.TCP.Seq + 1
	c.SndNxt = 5000
	c.PeerWindow = syn.TCP.Window
	//tspuvet:retains the endpoint owns delivered packets; the SYN's journey ends in this connection's transcript
	c.Packets = append(c.Packets, syn)
	l.Conns = append(l.Conns, c)

	reply := func() {
		if c.serverSplit {
			// Split handshake: bare SYN, no ACK of the client's SYN.
			c.State = StateSynSent
			c.sendFlags(packet.FlagSYN, c.SndNxt, 0, nil)
		} else {
			c.State = StateSynReceived
			c.sendFlags(packet.FlagsSYNACK, c.SndNxt, c.RcvNxt, nil)
		}
		c.SndNxt++
	}
	if l.opts.ResponseDelay > 0 {
		st.net.Sim.After(time.Duration(l.opts.ResponseDelay)*time.Millisecond, reply)
	} else {
		reply()
	}
}

// receive advances the endpoint state machine for one inbound packet.
func (c *TCPConn) receive(pkt *packet.Packet) {
	//tspuvet:retains the endpoint owns delivered packets; the connection transcript is the end of the path
	c.Packets = append(c.Packets, pkt)
	if c.OnPacket != nil {
		c.OnPacket(pkt)
	}
	t := pkt.TCP
	if t.Flags.Has(packet.FlagRST) {
		c.ResetSeen = true
		c.State = StateReset
		return
	}
	if c.State == StateReset {
		return
	}
	if t.Flags.Has(packet.FlagFIN) {
		// Peer is closing: ACK its FIN. If we already sent ours, the
		// connection is done; otherwise enter CLOSE-WAIT until Shutdown.
		c.RcvNxt = t.Seq + uint32(len(t.Payload)) + 1
		if len(t.Payload) > 0 {
			c.Received = append(c.Received, t.Payload...)
			c.Segments++
			if c.OnData != nil {
				c.OnData(t.Payload)
			}
		}
		c.sendFlags(packet.FlagACK, c.SndNxt, c.RcvNxt, nil)
		if c.State == StateFinWait {
			c.Close()
		} else {
			c.State = StateCloseWait
		}
		return
	}
	switch {
	case t.Flags.Has(packet.FlagsSYNACK):
		if c.State == StateSynSent || c.State == StateSynReceived {
			c.RcvNxt = t.Seq + 1
			c.PeerWindow = t.Window
			c.establish()
			c.sendFlags(packet.FlagACK, c.SndNxt, c.RcvNxt, nil)
		}
	case t.Flags.Has(packet.FlagSYN):
		// Bare SYN while we are SYN-SENT: simultaneous open / split
		// handshake. RFC 793: move to SYN-RECEIVED and send SYN/ACK,
		// re-using our ISN.
		if c.State == StateSynSent {
			c.RcvNxt = t.Seq + 1
			c.PeerWindow = t.Window
			c.State = StateSynReceived
			c.sendFlags(packet.FlagsSYNACK, c.SndNxt-1, c.RcvNxt, nil)
		}
	case t.Flags.Has(packet.FlagACK):
		if c.State == StateSynReceived {
			c.establish()
		}
		if len(t.Payload) > 0 {
			c.RcvNxt = t.Seq + uint32(len(t.Payload))
			c.Received = append(c.Received, t.Payload...)
			c.Segments++
			if c.OnData != nil {
				c.OnData(t.Payload)
			}
			if c.echo {
				c.Send(t.Payload)
			} else {
				c.sendFlags(packet.FlagACK, c.SndNxt, c.RcvNxt, nil)
			}
		}
	}
}

func (c *TCPConn) establish() {
	if c.State == StateEstablished {
		return
	}
	c.State = StateEstablished
	if c.OnEstablished != nil {
		c.OnEstablished()
	}
	if c.onConnect != nil {
		c.onConnect(c)
	}
}

// Send transmits data, segmenting by min(peer window, MSS). A peer that
// advertised a small window therefore forces the payload — e.g. a
// ClientHello — across multiple segments, which is exactly how the brdgrd
// strategy (§8) defeats single-packet SNI inspection.
func (c *TCPConn) Send(data []byte) {
	seg := c.mss
	if int(c.PeerWindow) > 0 && int(c.PeerWindow) < seg {
		seg = int(c.PeerWindow)
	}
	if seg <= 0 {
		seg = 1
	}
	for off := 0; off < len(data); off += seg {
		end := off + seg
		if end > len(data) {
			end = len(data)
		}
		chunk := data[off:end]
		c.sendFlags(packet.FlagsPSHACK, c.SndNxt, c.RcvNxt, chunk)
		c.SndNxt += uint32(len(chunk))
	}
}

// SendRaw transmits one segment with explicit flags, bypassing windowing —
// measurement scripts use it for precise sequences.
func (c *TCPConn) SendRaw(flags packet.TCPFlags, payload []byte) {
	c.sendFlags(flags, c.SndNxt, c.RcvNxt, payload)
	c.SndNxt += uint32(len(payload))
}

func (c *TCPConn) sendFlags(flags packet.TCPFlags, seq, ack uint32, payload []byte) {
	p := packet.NewTCP(c.LocalAddr, c.RemoteAddr, c.LocalPort, c.RemotePort, flags, seq, ack, payload)
	p.TCP.Window = c.advertWindow
	p.IP.TTL = c.ttl
	p.IP.ID = c.stack.NextIPID()
	c.stack.Send(p)
}

// Shutdown initiates a graceful close: send FIN and wait for the peer's.
// From CLOSE-WAIT it completes the close the peer started.
func (c *TCPConn) Shutdown() {
	switch c.State {
	case StateEstablished:
		c.sendFlags(packet.FlagsFINACK, c.SndNxt, c.RcvNxt, nil)
		c.SndNxt++
		c.State = StateFinWait
	case StateCloseWait:
		c.sendFlags(packet.FlagsFINACK, c.SndNxt, c.RcvNxt, nil)
		c.SndNxt++
		c.Close()
	}
}

// Close removes the connection from the stack's table (abortive; the
// paper's tests end connections by moving to fresh ports). Use Shutdown for
// a FIN exchange.
func (c *TCPConn) Close() {
	delete(c.stack.conns, c.key())
	c.State = StateClosed
}
