// Package hostnet provides endpoint network stacks for netem hosts: a
// demultiplexer for inbound packets, a deliberately small TCP implementation
// (enough for three-way, split, and simultaneous-open handshakes, data
// segmentation by the peer's advertised window, and RST observation — no
// retransmission, which measurement code must observe rather than mask), UDP
// send/receive, automatic ICMP echo replies, and application servers (echo,
// TLS-ish sink) used throughout the experiments.
package hostnet

import (
	"net/netip"
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
)

// Stack binds protocol handling to a netem host node. Create at most one per
// node: it installs itself as the node's handler.
type Stack struct {
	node *netem.Node
	net  *netem.Network

	conns     map[packet.FlowKey]*TCPConn
	listeners map[uint16]*Listener
	udp       map[uint16]UDPHandler
	icmpEcho  bool
	onICMP    func(*packet.Packet)
	taps      []func(*packet.Packet)

	reasm       ReassemblyProfile
	reasmQueues map[packet.FragKey]*reasmQueue

	// rawBinds receive all TCP packets to a port with no stack processing —
	// no auto-RST, no connection handling. Measurement scripts use them to
	// observe raw packet sequences (§5.3's methodology needs full control of
	// every flag sent and silence otherwise).
	rawBinds map[uint16]func(*packet.Packet)

	nextPort uint16
	nextIPID uint16
}

// UDPHandler consumes inbound UDP packets for a bound port.
type UDPHandler func(pkt *packet.Packet)

// NewStack installs a stack on node. ICMP echo replies are enabled by
// default, as on any real host.
func NewStack(n *netem.Network, node *netem.Node) *Stack {
	st := &Stack{
		node:        node,
		net:         n,
		conns:       make(map[packet.FlowKey]*TCPConn),
		listeners:   make(map[uint16]*Listener),
		udp:         make(map[uint16]UDPHandler),
		icmpEcho:    true,
		reasm:       DefaultReassembly(),
		reasmQueues: make(map[packet.FragKey]*reasmQueue),
		rawBinds:    make(map[uint16]func(*packet.Packet)),
		nextPort:    33000,
		nextIPID:    1,
	}
	node.SetHandler(st.handle)
	return st
}

// Node returns the underlying netem node.
func (st *Stack) Node() *netem.Node { return st.node }

// Addr returns the host's primary address.
func (st *Stack) Addr() netip.Addr { return st.node.Addr() }

// SetICMPEcho enables or disables automatic echo replies.
func (st *Stack) SetICMPEcho(on bool) { st.icmpEcho = on }

// OnICMP installs a hook for all inbound ICMP (after echo auto-reply).
func (st *Stack) OnICMP(fn func(*packet.Packet)) { st.onICMP = fn }

// Tap registers a function that sees every inbound packet before handling.
func (st *Stack) Tap(fn func(*packet.Packet)) { st.taps = append(st.taps, fn) }

// ClearTaps removes all taps. Experiments that install taps in loops must
// clear them to avoid unbounded callback chains.
func (st *Stack) ClearTaps() { st.taps = nil }

// RawBind claims a TCP port for raw observation: inbound packets to it are
// handed to fn verbatim and nothing else happens (no RST, no state). It
// shadows any listener on the port until RawUnbind.
func (st *Stack) RawBind(port uint16, fn func(*packet.Packet)) { st.rawBinds[port] = fn }

// RawUnbind releases a raw-bound port.
func (st *Stack) RawUnbind(port uint16) { delete(st.rawBinds, port) }

// EphemeralPort returns a fresh source port; wraps far above well-known
// space. The paper's methodology requires "a fresh source port for each
// test to prevent residual censorship affecting results" (§3).
func (st *Stack) EphemeralPort() uint16 {
	p := st.nextPort
	st.nextPort++
	if st.nextPort < 33000 {
		st.nextPort = 33000
	}
	return p
}

// NextIPID returns a fresh IP identification value for fragmentation.
func (st *Stack) NextIPID() uint16 {
	id := st.nextIPID
	st.nextIPID++
	if st.nextIPID == 0 {
		st.nextIPID = 1
	}
	return id
}

// Send transmits a pre-built packet from this host. If the packet's source
// address is unset, the host's address is filled in.
func (st *Stack) Send(pkt *packet.Packet) {
	if !pkt.IP.Src.IsValid() {
		pkt.IP.Src = st.Addr()
	}
	st.node.Send(pkt)
}

// SendTCP builds and sends a raw TCP packet. Returns the packet sent.
func (st *Stack) SendTCP(dst netip.Addr, sport, dport uint16, flags packet.TCPFlags, seq, ack uint32, payload []byte) *packet.Packet {
	p := packet.NewTCP(st.Addr(), dst, sport, dport, flags, seq, ack, payload)
	p.IP.ID = st.NextIPID()
	st.Send(p)
	return p
}

// SendUDP builds and sends a UDP packet.
func (st *Stack) SendUDP(dst netip.Addr, sport, dport uint16, payload []byte) *packet.Packet {
	p := packet.NewUDP(st.Addr(), dst, sport, dport, payload)
	p.IP.ID = st.NextIPID()
	st.Send(p)
	return p
}

// Ping sends an ICMP echo request.
func (st *Stack) Ping(dst netip.Addr, id, seq uint16) {
	p := packet.NewICMPEcho(st.Addr(), dst, id, seq)
	p.IP.ID = st.NextIPID()
	st.Send(p)
}

// BindUDP installs a handler for a UDP port.
func (st *Stack) BindUDP(port uint16, h UDPHandler) { st.udp[port] = h }

// handle is the node-level inbound entry point: taps see raw arrivals
// (fragments included), then fragments are reassembled before protocol
// dispatch.
func (st *Stack) handle(pkt *packet.Packet) {
	for _, tap := range st.taps {
		tap(pkt)
	}
	if pkt.IsFragment() {
		st.handleFragment(pkt)
		return
	}
	st.dispatch(pkt)
}

// dispatch demultiplexes a whole (unfragmented or reassembled) packet.
func (st *Stack) dispatch(pkt *packet.Packet) {
	switch {
	case pkt.ICMP != nil:
		if pkt.ICMP.Type == packet.ICMPEchoRequest && st.icmpEcho {
			reply := &packet.Packet{
				IP: packet.IPv4{TTL: 64, Protocol: packet.ProtoICMP,
					Src: pkt.IP.Dst, Dst: pkt.IP.Src},
				ICMP: &packet.ICMP{Type: packet.ICMPEchoReply, ID: pkt.ICMP.ID, Seq: pkt.ICMP.Seq},
			}
			st.Send(reply)
		}
		if st.onICMP != nil {
			st.onICMP(pkt)
		}
	case pkt.UDP != nil:
		if h, ok := st.udp[pkt.UDP.DstPort]; ok {
			h(pkt)
		}
	case pkt.TCP != nil:
		st.handleTCP(pkt)
	}
}

func (st *Stack) handleTCP(pkt *packet.Packet) {
	if fn, ok := st.rawBinds[pkt.TCP.DstPort]; ok {
		fn(pkt)
		return
	}
	key := packet.FlowOf(pkt).Reverse() // our local flow key is our->their
	if c, ok := st.conns[key]; ok {
		// A fresh bare SYN on a listener-spawned connection is a new
		// connection attempt from a reused 4-tuple (e.g. Quack probing
		// repeatedly from client port 443): recycle the old conn.
		if c.listener != nil && pkt.TCP.Flags == packet.FlagSYN &&
			(c.State == StateEstablished || c.State == StateReset) {
			delete(st.conns, key)
			c.listener.accept(pkt)
			return
		}
		c.receive(pkt)
		return
	}
	if l, ok := st.listeners[pkt.TCP.DstPort]; ok {
		l.accept(pkt)
		return
	}
	// Closed port: a real stack RSTs non-RST segments. Keep it, servers in
	// the paper's scans are detected by their SYN/ACK vs RST behavior.
	if !pkt.TCP.Flags.Has(packet.FlagRST) {
		st.SendTCP(pkt.IP.Src, pkt.TCP.DstPort, pkt.TCP.SrcPort,
			packet.FlagsRSTACK, 0, pkt.TCP.Seq+1, nil)
	}
}

func (st *Stack) now() time.Duration { return st.net.Sim.Now() }
