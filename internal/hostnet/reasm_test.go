package hostnet

import (
	"testing"
	"time"

	"tspusim/internal/packet"
)

func sendFragmentedSYN(t *testing.T, client *Stack, dst *Stack, n int, id uint16) {
	t.Helper()
	// Distinct source port per probe so each is a fresh flow at the server.
	p := packet.NewTCP(client.Addr(), dst.Addr(), 42000+id, 443, packet.FlagSYN, 1, 0, nil)
	p.IP.ID = id
	frags, err := packet.FragmentCount(p, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		client.Send(f)
	}
}

func TestHostReassemblesFragmentedSYN(t *testing.T) {
	s, client, server := pair(t)
	server.Listen(443, ListenOptions{})
	var sawSYNACK bool
	client.Tap(func(p *packet.Packet) {
		if p.TCP != nil && p.TCP.Flags.Has(packet.FlagsSYNACK) {
			sawSYNACK = true
		}
	})
	sendFragmentedSYN(t, client, server, 3, 77)
	s.Run()
	if !sawSYNACK {
		t.Fatal("server did not respond to fragmented SYN")
	}
}

func TestHostFragmentLimit(t *testing.T) {
	s, client, server := pair(t)
	server.SetReassembly(ReassemblyProfile{MaxFragments: 10, Timeout: 30 * time.Second})
	server.Listen(443, ListenOptions{})
	responses := 0
	client.Tap(func(p *packet.Packet) {
		if p.TCP != nil && p.TCP.Flags.Has(packet.FlagsSYNACK) {
			responses++
		}
	})
	sendFragmentedSYN(t, client, server, 10, 1) // at limit: responds
	sendFragmentedSYN(t, client, server, 11, 2) // over limit: silence
	s.Run()
	if responses != 1 {
		t.Fatalf("responses = %d, want 1 (limit 10)", responses)
	}
}

func TestLinuxDefaultLimit64(t *testing.T) {
	s, client, server := pair(t)
	server.Listen(443, ListenOptions{})
	responses := 0
	client.Tap(func(p *packet.Packet) {
		if p.TCP != nil && p.TCP.Flags.Has(packet.FlagsSYNACK) {
			responses++
		}
	})
	sendFragmentedSYN(t, client, server, 45, 1)
	sendFragmentedSYN(t, client, server, 46, 2)
	sendFragmentedSYN(t, client, server, 64, 3)
	sendFragmentedSYN(t, client, server, 65, 4)
	s.Run()
	// A bare Linux host answers 45, 46, and 64 but not 65 — distinguishing
	// it from a path through a TSPU (45 yes, 46 no).
	if responses != 3 {
		t.Fatalf("responses = %d, want 3", responses)
	}
}

func TestIncompleteQueueTimesOut(t *testing.T) {
	s, client, server := pair(t)
	server.Listen(443, ListenOptions{})
	p := packet.NewTCP(client.Addr(), server.Addr(), 42000, 443, packet.FlagSYN, 1, 0, nil)
	p.IP.ID = 99
	frags, err := packet.FragmentCount(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	client.Send(frags[0])
	client.Send(frags[1]) // final fragment withheld
	s.RunUntil(60 * time.Second)
	if len(server.reasmQueues) != 0 {
		t.Fatal("incomplete queue survived timeout")
	}
}
