package in

import (
	"net/netip"

	"tspusim/internal/packet"
	"tspusim/internal/tspu"
)

// InjectAction is what a triggered profile fabricates.
//
//tspuvet:closedenum
type InjectAction int

// Actions observed across the measured ISPs (§5).
const (
	// ActionBlockpage injects a branded HTTP 200 block notice (§5.2).
	ActionBlockpage InjectAction = iota
	// ActionRST injects a bare TCP RST (§5.3).
	ActionRST
)

func (a InjectAction) String() string {
	if a == ActionBlockpage {
		return "blockpage"
	}
	return "rst"
}

// Profile is one ISP's behavior row: which protocol fields trigger it, what
// it injects, and the identifying marks its injections carry.
type Profile struct {
	ISP string
	// TriggerHTTP: inspects HTTP Host headers.
	TriggerHTTP bool
	// TriggerSNI: inspects TLS SNI.
	TriggerSNI bool
	// TriggerDNS: the ISP resolver path forges answers.
	TriggerDNS bool
	// Action is the TCP-layer enforcement.
	Action InjectAction
	// CensorID is the per-ISP mark embedded in injected blockpages — the
	// attribution signature of §6.3 (empty for RST-only ISPs).
	CensorID string
	// BlockpageAddr is where forged DNS answers point.
	BlockpageAddr netip.Addr
	// Blocklist is the ISP's own (divergent) blocklist.
	Blocklist *tspu.DomainSet
	// Citation records where the paper establishes this row.
	Citation string
}

// Verdict classifies one domain against a profile.
type Verdict struct {
	// Blocked: the name is on this ISP's list.
	Blocked bool
	// HTTP/SNI/DNS: which trigger fields would fire for it.
	HTTP, SNI, DNS bool
	// Action is the enforcement a TCP trigger produces.
	Action InjectAction
}

// Classify reports how this profile treats a name. Matching semantics are
// tspu.DomainSet's (exact or subdomain, case-folded).
func (p *Profile) Classify(name string) Verdict {
	blocked := p.Blocklist.Contains(name)
	return Verdict{
		Blocked: blocked,
		HTTP:    blocked && p.TriggerHTTP,
		SNI:     blocked && p.TriggerSNI,
		DNS:     blocked && p.TriggerDNS,
		Action:  p.Action,
	}
}

// coreList is the nationally-ordered block set every measured ISP enforced
// some subset of (§4.1: government orders name the sites; ISPs implement
// them divergently).
var coreList = []string{
	"thepiratebay.org", // §4.1 (court-ordered copyright blocks, all ISPs)
	"xvideos.com",      // §4.1 (2015 DoT order list)
	"pastebin.com",     // §4.1 (2016-17 order churn example)
	"torproject.org",   // §4.1 (circumvention category)
	"rferl.org",        // §4.1 (news category, subset of ISPs)
}

// airtelOnly / jioOnly model the paper's list-divergence finding: each ISP's
// enforced set is its own snapshot of the orders (§4.3, Fig. 4 — pairwise
// overlap between ISP blocklists is far below 100%).
var (
	airtelOnly = []string{"vimeo.com"}    // §4.3 (blocked on Airtel, open on Jio at measurement time)
	jioOnly    = []string{"telegram.org"} // §4.3 (blocked on Jio, open on Airtel at measurement time)
	mtnlOnly   = []string{"archive.org"}  // §4.3 (the 2017 archive.org block, MTNL row)
)

func listOf(extra []string) *tspu.DomainSet {
	s := tspu.NewDomainSet(coreList...)
	for _, d := range extra {
		s.Add(d)
	}
	return s
}

// Profiles returns the modeled ISP rows. Each is a distinct fingerprint:
// trigger field × injection type × censor ID.
func Profiles() []Profile {
	return []Profile{
		{
			ISP:         "airtel",
			TriggerHTTP: true,
			Action:      ActionBlockpage,
			CensorID:    `<iframe src="http://www.airtel.in/dot/"></iframe>`,
			Blocklist:   listOf(airtelOnly),
			Citation:    "arXiv:1808.01708 §5.2, §6.3 (HTTP-header trigger; injected page iframes airtel.in/dot)",
		},
		{
			ISP:         "jio",
			TriggerHTTP: true,
			TriggerSNI:  true,
			Action:      ActionRST,
			Blocklist:   listOf(jioOnly),
			Citation:    "arXiv:1808.01708 §5.3, §6.2 (only measured ISP censoring HTTPS via SNI; resets, no page)",
		},
		{
			ISP:           "mtnl",
			TriggerHTTP:   true,
			TriggerDNS:    true,
			Action:        ActionBlockpage,
			CensorID:      "Site Blocked as per the instruction of Competent Authority",
			BlockpageAddr: packet.MustAddr("243.0.0.1"),
			Blocklist:     listOf(mtnlOnly),
			Citation:      "arXiv:1808.01708 §5.1-5.2, §6.3 (DNS + HTTP; DoT notice wording as censor ID)",
		},
	}
}

// ProfileFor returns the named ISP row, panicking on typos — experiment code
// passes constants.
func ProfileFor(isp string) Profile {
	for _, p := range Profiles() {
		if p.ISP == isp {
			return p
		}
	}
	panic("in: unknown ISP profile " + isp)
}

// BoundaryRows returns the domains at profile-table boundaries — names on
// exactly one ISP's list plus the shared core — as the fuzz seed corpus.
func BoundaryRows() []string {
	out := append([]string{}, coreList...)
	out = append(out, airtelOnly...)
	out = append(out, jioOnly...)
	out = append(out, mtnlOnly...)
	return out
}
