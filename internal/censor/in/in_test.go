package in

import (
	"strings"
	"testing"
	"time"

	"tspusim/internal/dnsx"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/tlsx"
)

type capturePipe struct {
	injected []*packet.Packet
	dirs     []netem.Direction
}

func (p *capturePipe) Inject(pkt *packet.Packet, dir netem.Direction) {
	p.injected = append(p.injected, pkt) //tspuvet:retains the capture pipe exists to hold injected packets for assertions; the testbed is single-threaded
	p.dirs = append(p.dirs, dir)
}
func (p *capturePipe) Now() time.Duration               { return 0 }
func (p *capturePipe) After(d time.Duration, fn func()) {}

var (
	clientAddr = packet.MustAddr("10.0.0.2")
	serverAddr = packet.MustAddr("203.0.113.10")
)

func httpReq(host string) []byte {
	return []byte("GET / HTTP/1.1\r\nHost: " + host + "\r\n\r\n")
}

// TestProfileHeterogeneity pins the paper's core finding (§5, §6): the ISP
// rows must differ from each other in trigger fields, action, or censor ID —
// a collapse here would merge two columns of the fingerprint matrix.
func TestProfileHeterogeneity(t *testing.T) {
	profiles := Profiles()
	if len(profiles) < 3 {
		t.Fatalf("want >= 3 ISP rows, got %d", len(profiles))
	}
	type shape struct {
		http, sni, dns bool
		action         InjectAction
		id             string
	}
	seen := map[shape]string{}
	for _, p := range profiles {
		s := shape{p.TriggerHTTP, p.TriggerSNI, p.TriggerDNS, p.Action, p.CensorID}
		if other, dup := seen[s]; dup {
			t.Errorf("profiles %s and %s are behaviorally identical", other, p.ISP)
		}
		seen[s] = p.ISP
		if !strings.Contains(p.Citation, "arXiv:1808.01708") {
			t.Errorf("profile %s cites %q, want the IN paper", p.ISP, p.Citation)
		}
		if p.Action == ActionBlockpage && p.CensorID == "" {
			t.Errorf("profile %s injects blockpages but has no censor ID", p.ISP)
		}
	}
}

// TestListDivergence pins §4.3: each ISP enforces its own snapshot of the
// orders, so the divergence rows are blocked on exactly one ISP.
func TestListDivergence(t *testing.T) {
	for _, tc := range []struct {
		domain  string
		blocked string
	}{
		{"vimeo.com", "airtel"},
		{"telegram.org", "jio"},
		{"archive.org", "mtnl"},
	} {
		for _, p := range Profiles() {
			got := p.Classify(tc.domain).Blocked
			if want := p.ISP == tc.blocked; got != want {
				t.Errorf("%s on %s: blocked=%v, want %v", tc.domain, p.ISP, got, want)
			}
		}
	}
	// The core list is enforced by every ISP.
	for _, p := range Profiles() {
		if !p.Classify("thepiratebay.org").Blocked {
			t.Errorf("core-list domain not blocked on %s", p.ISP)
		}
	}
}

// TestDirectionality pins §4.2: traffic entering the country is never
// inspected, even when it carries a blocked trigger.
func TestDirectionality(t *testing.T) {
	c := New(Config{Profile: ProfileFor("jio"), LocalDir: netem.AtoB})
	pipe := &capturePipe{}
	ch := (&tlsx.ClientHelloSpec{ServerName: "thepiratebay.org"}).Build()
	inbound := packet.NewTCP(serverAddr, clientAddr, 443, 40000, packet.FlagsPSHACK, 1, 1, ch)
	if act := c.Handle(pipe, inbound, netem.BtoA); act != netem.Pass {
		t.Fatalf("inbound trigger not passed: %v", act)
	}
	if len(pipe.injected) != 0 {
		t.Fatal("inbound traffic must never draw an injection")
	}
}

func TestAirtelBlockpage(t *testing.T) {
	c := New(Config{Profile: ProfileFor("airtel"), LocalDir: netem.AtoB})
	pipe := &capturePipe{}
	pkt := packet.NewTCP(clientAddr, serverAddr, 40000, 80, packet.FlagsPSHACK, 1000, 5000, httpReq("thepiratebay.org"))
	if act := c.Handle(pipe, pkt, netem.AtoB); act != netem.Drop {
		t.Fatalf("blocked request not consumed: %v", act)
	}
	if len(pipe.injected) != 2 {
		t.Fatalf("want blockpage + FIN, got %d injections", len(pipe.injected))
	}
	page := pipe.injected[0]
	if page.IP.Dst != clientAddr || pipe.dirs[0] != netem.BtoA {
		t.Fatal("blockpage must travel back to the client")
	}
	body := string(page.TCP.Payload)
	if !strings.Contains(body, ProfileFor("airtel").CensorID) {
		t.Fatal("blockpage missing the airtel censor ID (§6.3)")
	}
	if !pipe.injected[1].TCP.Flags.Has(packet.FlagFIN) {
		t.Fatal("second injection must close the connection")
	}
	if c.BlockpageInjections != 1 {
		t.Fatalf("BlockpageInjections = %d", c.BlockpageInjections)
	}
	// Airtel does not inspect SNI (§6.2) — the HTTPS version passes.
	ch := (&tlsx.ClientHelloSpec{ServerName: "thepiratebay.org"}).Build()
	tlsPkt := packet.NewTCP(clientAddr, serverAddr, 40001, 443, packet.FlagsPSHACK, 1, 1, ch)
	if act := c.Handle(pipe, tlsPkt, netem.AtoB); act != netem.Pass {
		t.Fatalf("airtel must not trigger on SNI: %v", act)
	}
}

func TestJioRSTOnSNI(t *testing.T) {
	c := New(Config{Profile: ProfileFor("jio"), LocalDir: netem.AtoB})
	pipe := &capturePipe{}
	ch := (&tlsx.ClientHelloSpec{ServerName: "telegram.org"}).Build()
	pkt := packet.NewTCP(clientAddr, serverAddr, 40000, 443, packet.FlagsPSHACK, 1000, 5000, ch)
	if act := c.Handle(pipe, pkt, netem.AtoB); act != netem.Drop {
		t.Fatalf("blocked SNI not consumed: %v", act)
	}
	if len(pipe.injected) != 1 || !pipe.injected[0].TCP.Flags.Has(packet.FlagRST) {
		t.Fatalf("jio must inject exactly one RST, got %d injections", len(pipe.injected))
	}
	if len(pipe.injected[0].TCP.Payload) != 0 {
		t.Fatal("jio injects no page (§5.3)")
	}
}

func TestMTNLDNSForgery(t *testing.T) {
	p := ProfileFor("mtnl")
	c := New(Config{Profile: p, LocalDir: netem.AtoB})
	pipe := &capturePipe{}
	wire, err := dnsx.NewQuery(7, "archive.org").Encode()
	if err != nil {
		t.Fatal(err)
	}
	q := packet.NewUDP(clientAddr, serverAddr, 5353, 53, wire)
	if act := c.Handle(pipe, q, netem.AtoB); act != netem.Drop {
		t.Fatalf("mtnl consumes the query (resolver-path forgery), got %v", act)
	}
	if len(pipe.injected) != 1 {
		t.Fatalf("want one forged answer, got %d", len(pipe.injected))
	}
	forged, err := dnsx.Decode(pipe.injected[0].UDP.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(forged.Answers) == 0 || forged.Answers[0].Addr != p.BlockpageAddr {
		t.Fatalf("forged answer must point at the blockpage host %v", p.BlockpageAddr)
	}
	// Benign queries resolve normally.
	wire2, _ := dnsx.NewQuery(8, "example.org").Encode()
	q2 := packet.NewUDP(clientAddr, serverAddr, 5353, 53, wire2)
	if act := c.Handle(pipe, q2, netem.AtoB); act != netem.Pass {
		t.Fatalf("benign query interfered with: %v", act)
	}
}

func TestFragmentsEvade(t *testing.T) {
	c := New(Config{Profile: ProfileFor("airtel"), LocalDir: netem.AtoB})
	pipe := &capturePipe{}
	pkt := packet.NewTCP(clientAddr, serverAddr, 40000, 80, packet.FlagsPSHACK, 1, 1, httpReq("thepiratebay.org"))
	frags, err := packet.FragmentCount(pkt, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frags {
		if act := c.Handle(pipe, fr, netem.AtoB); act != netem.Pass {
			t.Fatalf("fragment not passed: %v", act)
		}
	}
	if len(pipe.injected) != 0 {
		t.Fatal("fragmented requests must evade (§6.1)")
	}
}

func TestProfileForUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ProfileFor must panic on unknown ISPs")
		}
	}()
	ProfileFor("nope")
}
