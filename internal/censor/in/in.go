// Package in models India's web censorship as measured by Yadav et al.,
// "Where The Light Gets In: Analyzing Web Censorship Mechanisms in India"
// (arXiv:1808.01708). India has no single national middlebox: each ISP
// deploys its own equipment, and the paper's core finding is the resulting
// *heterogeneity* — ISPs differ in which protocol field triggers them (HTTP
// Host vs TLS SNI vs DNS), in what they inject (branded blockpage vs bare
// RST vs forged DNS answer), and in the identifying marks ("censor IDs")
// their injected packets carry (§5, §6). That per-ISP variance is exactly
// what the cross-censor fingerprint matrix exists to pin: two IN profiles
// must be distinguishable from each other, not just from the TSPU.
//
// Like the TMC (and unlike the TSPU) the modeled middleboxes are stateless
// injectors: no conntrack, no residual blocking, no fragment reassembly. But
// unlike the TMC they inspect only client→server traffic — the paper's
// probes saw no interference on traffic entering the country (§4.2).
package in

import (
	"tspusim/internal/censor"
	"tspusim/internal/dnsx"
	"tspusim/internal/httpx"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/tlsx"
)

// Config configures one ISP middlebox instance.
type Config struct {
	// Profile selects the ISP behavior row; zero value panics in New —
	// callers pick from Profiles() or ProfileFor.
	Profile Profile
	// LocalDir is the link direction of client→server (in-country→outside)
	// travel; the middlebox inspects only this direction (§4.2).
	LocalDir netem.Direction
}

// Censor is one Indian ISP's censorship middlebox. It implements
// censor.Censor.
type Censor struct {
	cfg Config

	// BlockpageInjections counts forged HTTP 200 responses emitted (§5.2).
	BlockpageInjections int
	// RSTInjections counts forged RSTs emitted (§5.3).
	RSTInjections int
	// DNSInjections counts forged DNS answers emitted (§5.1).
	DNSInjections int
	triggers      int
	dropped       int
}

// New builds an ISP middlebox from a profile row.
func New(cfg Config) *Censor {
	if cfg.Profile.ISP == "" {
		panic("in: Config.Profile must be one of Profiles()")
	}
	return &Censor{cfg: cfg}
}

// Profile returns the active behavior row.
func (c *Censor) Profile() Profile { return c.cfg.Profile }

// Name implements netem.Middlebox.
func (c *Censor) Name() string { return "in/" + c.cfg.Profile.ISP }

// ConntrackSize implements censor.Censor: the measured middleboxes judge
// each packet in isolation — reordered and fragmented requests slipped
// through precisely because nothing tracks flows (§6.1).
func (c *Censor) ConntrackSize() int { return 0 }

// PendingFragQueues implements censor.Censor: no reassembly (§6.1).
func (c *Censor) PendingFragQueues() int { return 0 }

// Counters implements censor.Censor.
func (c *Censor) Counters() censor.Counters {
	return censor.Counters{
		ContentTriggers: c.triggers,
		Injected:        c.BlockpageInjections + c.RSTInjections + c.DNSInjections,
		Dropped:         c.dropped,
	}
}

// Handle implements netem.Middlebox.
func (c *Censor) Handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	if dir != c.cfg.LocalDir {
		return netem.Pass // outside→in traffic is never inspected (§4.2)
	}
	if pkt.IsFragment() {
		return netem.Pass // fragmentation evades every measured ISP (§6.1)
	}
	p := &c.cfg.Profile
	if p.TriggerDNS && pkt.UDP != nil && pkt.UDP.DstPort == 53 {
		return c.handleDNS(pipe, pkt, dir)
	}
	if pkt.TCP == nil || len(pkt.TCP.Payload) == 0 {
		return netem.Pass
	}
	name, ok := c.match(pkt.TCP.Payload)
	if !ok {
		return netem.Pass
	}
	c.triggers++
	switch p.Action {
	case ActionBlockpage:
		c.injectBlockpage(pipe, pkt, dir, name)
	case ActionRST:
		c.injectRST(pipe, pkt, dir)
	}
	c.dropped++
	return netem.Drop
}

// match applies the profile's trigger fields to a TCP payload.
func (c *Censor) match(payload []byte) (string, bool) {
	p := &c.cfg.Profile
	if p.TriggerHTTP {
		if req, err := httpx.ParseRequest(payload); err == nil && p.Blocklist.Contains(req.Host) {
			return req.Host, true
		}
	}
	if p.TriggerSNI {
		if sni, ok := tlsx.ExtractSNI(payload); ok {
			name := string(sni)
			if p.Blocklist.Contains(name) {
				return name, true
			}
		}
	}
	return "", false
}

// handleDNS forges an answer pointing at the ISP's blockpage server (§5.1 —
// the DNS-based ISPs return their own blockpage host, not NXDOMAIN).
func (c *Censor) handleDNS(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	m, err := dnsx.Decode(pkt.UDP.Payload)
	if err != nil || m.Response || !c.cfg.Profile.Blocklist.Contains(m.Question) {
		return netem.Pass
	}
	forged := dnsx.NewQuery(m.ID, m.Question).Respond(c.cfg.Profile.BlockpageAddr)
	wire, err := forged.Encode()
	if err != nil {
		return netem.Pass
	}
	reply := packet.NewUDP(pkt.IP.Dst, pkt.IP.Src, pkt.UDP.DstPort, pkt.UDP.SrcPort, wire)
	c.triggers++
	c.DNSInjections++
	c.dropped++
	pipe.Inject(reply, dir.Reverse())
	return netem.Drop
}

// injectBlockpage fabricates the ISP's branded HTTP 200 toward the client.
// The body carries the profile's censor ID — the per-ISP marks (iframe URLs,
// notice wording) the paper used to attribute injected pages (§5.2, §6.3).
func (c *Censor) injectBlockpage(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction, host string) {
	body := "<html><body>" + c.cfg.Profile.CensorID +
		"<p>This URL has been blocked under instructions of a competent Government Authority.</p>" +
		"<!-- blocked: " + host + " --></body></html>"
	wire := httpx.FormatResponse(200, "OK", map[string]string{"Server": c.cfg.Profile.ISP}, body)
	payloadLen := uint32(len(pkt.TCP.Payload))
	page := packet.NewTCP(pkt.IP.Dst, pkt.IP.Src, pkt.TCP.DstPort, pkt.TCP.SrcPort,
		packet.FlagsPSHACK, pkt.TCP.Ack, pkt.TCP.Seq+payloadLen, wire)
	fin := packet.NewTCP(pkt.IP.Dst, pkt.IP.Src, pkt.TCP.DstPort, pkt.TCP.SrcPort,
		packet.FlagsFINACK, pkt.TCP.Ack+uint32(len(wire)), pkt.TCP.Seq+payloadLen, nil)
	c.BlockpageInjections++
	pipe.Inject(page, dir.Reverse())
	pipe.Inject(fin, dir.Reverse())
}

// injectRST kills the connection from the client's point of view (§5.3).
func (c *Censor) injectRST(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) {
	payloadLen := uint32(len(pkt.TCP.Payload))
	rst := packet.NewTCP(pkt.IP.Dst, pkt.IP.Src, pkt.TCP.DstPort, pkt.TCP.SrcPort,
		packet.FlagsRSTACK, pkt.TCP.Ack, pkt.TCP.Seq+payloadLen, nil)
	c.RSTInjections++
	pipe.Inject(rst, dir.Reverse())
}

var _ censor.Censor = (*Censor)(nil)
