package in

import (
	"strings"
	"testing"
)

// FuzzINClassify mirrors tspu.FuzzPolicyMatch for the per-ISP profile rows:
// classification must never panic on arbitrary bytes, must be internally
// consistent with the profile's trigger flags, and must stay stable. Seeds
// are the boundary rows — the shared core plus each ISP's divergence names.
func FuzzINClassify(f *testing.F) {
	for _, d := range BoundaryRows() {
		f.Add(d)
		f.Add("sub." + d)
		f.Add(strings.ToUpper(d) + ".")
	}
	f.Add("")
	f.Add("\xff\xfe")
	f.Add("a..com")
	f.Fuzz(func(t *testing.T, name string) {
		for _, p := range Profiles() {
			p := p
			v := p.Classify(name) // must not panic, whatever the bytes
			if v2 := p.Classify(name); v != v2 {
				t.Fatalf("%s.Classify(%q) unstable: %+v then %+v", p.ISP, name, v, v2)
			}
			if v.Blocked != p.Blocklist.Contains(name) {
				t.Fatalf("%s.Classify(%q).Blocked disagrees with the blocklist", p.ISP, name)
			}
			// Trigger-field verdicts must be the conjunction of list
			// membership and the profile's capabilities — a classifier that
			// invents a trigger invents a matrix cell.
			if v.HTTP != (v.Blocked && p.TriggerHTTP) ||
				v.SNI != (v.Blocked && p.TriggerSNI) ||
				v.DNS != (v.Blocked && p.TriggerDNS) {
				t.Fatalf("%s.Classify(%q) = %+v inconsistent with profile flags", p.ISP, name, v)
			}
			if v.Action != p.Action {
				t.Fatalf("%s.Classify(%q).Action = %v, want %v", p.ISP, name, v.Action, p.Action)
			}
		}
	})
}
