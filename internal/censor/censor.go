// Package censor defines the contract a nation-scale censor model must
// satisfy to be driven by the measurement toolkit. The paper's central claim
// is that TSPU behavior is a *fingerprint* — a specific bundle of timeouts,
// state-machine quirks, and fragmentation limits — and a fingerprint is only
// meaningful relative to other censors probed the same way. This package is
// the seam that makes "the same way" a compile-time guarantee: internal/tspu
// (Russia's TSPU), internal/ispdpi (the pre-2019 per-ISP DPI baseline),
// internal/censor/tm (Turkmenistan, arXiv:2304.04835) and internal/censor/in
// (India, arXiv:1808.01708) all implement Censor, and the cross-censor probe
// battery in internal/measure accepts any of them.
//
// The interface is deliberately the intersection internal/measure actually
// relies on: the packet-in/verdict-out datapath (netem.Middlebox) plus the
// introspection hooks the probe suite reads — conntrack occupancy (state
// exhaustion, residual-block accounting), fragment-queue depth (the §5.3.1
// 45-fragment fingerprint), and the generic action counters (trigger,
// injection, and throttle state). Everything richer — tspu.Stats block-type
// maps, per-ISP blockpage counters — stays on the concrete types; probes
// that need those are censor-specific by construction.
package censor

import "tspusim/internal/netem"

// Counters is the censor-agnostic slice of a model's internal statistics.
// Each censor maps its own bookkeeping onto these five words; the probe
// battery uses them only to corroborate externally observed behavior (e.g.
// "the client saw an RST *and* the censor says it injected one").
type Counters struct {
	// ContentTriggers counts payload-inspection hits (SNI, Host header,
	// DNS question, keyword) that led to an enforcement action.
	ContentTriggers int
	// Injected counts packets the censor fabricated (forged DNS answers,
	// RSTs, blockpages).
	Injected int
	// Dropped counts packets the censor discarded.
	Dropped int
	// Rewritten counts in-flight packets mutated in place (the TSPU's
	// downstream RST/ACK rewrite, the keyword DPI's payload strip).
	Rewritten int
	// Throttled counts packets subjected to rate shaping (TSPU SNI-III);
	// zero for censors with no throttling tier.
	Throttled int
}

// Censor is a complete in-path censor model: a link middlebox whose verdict
// logic is the behavior under test, plus the introspection surface the
// cross-censor probe battery assumes of every model.
//
// Handle inherits netem.Middlebox's retention contract verbatim: packet
// ownership is sequential, and any state kept past the Handle return must be
// deep-copied (retaincheck enforces this on implementations too).
type Censor interface {
	netem.Middlebox

	// ConntrackSize reports the number of flows the censor currently
	// tracks. Stateless injectors (TM, keyword DPI) report 0; the probe
	// battery uses the delta across a flow flood to classify a model as
	// stateful or stateless, and residual-block probes interpret a
	// nonzero value as "state that can outlive the triggering flow".
	ConntrackSize() int

	// PendingFragQueues reports how many IP fragment queues the censor is
	// buffering. Models that forward fragments uninspected report 0.
	PendingFragQueues() int

	// Counters returns the generic action counters. Implementations fold
	// their native statistics into the shared vocabulary.
	Counters() Counters
}
