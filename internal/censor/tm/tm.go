// Package tm models Turkmenistan's national censorship system as measured by
// Nourin et al., "Measuring and Evading Turkmenistan's Internet Censorship"
// (arXiv:2304.04835). The TMC is the fingerprint opposite of the TSPU on
// almost every probe axis the battery runs:
//
//   - It is an *injector*, not an in-path rewriter: triggers produce forged
//     DNS answers and RST+ACK pairs while the original packet is handled at
//     the injection point, instead of the TSPU's downstream-response rewrite
//     (§4, §5).
//   - It is *bidirectional*: the same rules fire on traffic entering the
//     country, which is how the paper measured it from outside without any
//     in-country vantage (§3.1). The TSPU triggers only on locally-originated
//     flows.
//   - It is *stateless*: every packet is judged in isolation, so there is no
//     residual per-flow blocking, no conntrack to exhaust, and no fragment
//     queue to fingerprint (§6.2 — fragmentation-based evasion works).
package tm

import (
	"tspusim/internal/censor"
	"tspusim/internal/dnsx"
	"tspusim/internal/httpx"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/tlsx"
)

// Config configures one TMC instance.
type Config struct {
	// Name identifies the instance (default "tm").
	Name string
	// Rules is the trigger table; nil gets DefaultRules().
	Rules *Rules
}

// Censor is the Turkmenistan censor model. It implements censor.Censor.
type Censor struct {
	cfg   Config
	rules *Rules

	// DNSInjections counts forged DNS answers emitted (§4).
	DNSInjections int
	// RSTInjections counts forged RST+ACK packets emitted (§5).
	RSTInjections int
	triggers      int
	dropped       int
}

// New builds a TMC instance.
func New(cfg Config) *Censor {
	if cfg.Rules == nil {
		cfg.Rules = DefaultRules()
	}
	return &Censor{cfg: cfg, rules: cfg.Rules}
}

// Rules returns the live trigger table (mutable, like a tspu.Policy).
func (c *Censor) Rules() *Rules { return c.rules }

// Name implements netem.Middlebox.
func (c *Censor) Name() string {
	if c.cfg.Name != "" {
		return c.cfg.Name
	}
	return "tm"
}

// ConntrackSize implements censor.Censor: the TMC keeps no flow state (§6.2).
func (c *Censor) ConntrackSize() int { return 0 }

// PendingFragQueues implements censor.Censor: fragments pass uninspected —
// the paper's fragmentation evasion works because nothing reassembles (§6.2).
func (c *Censor) PendingFragQueues() int { return 0 }

// Counters implements censor.Censor.
func (c *Censor) Counters() censor.Counters {
	return censor.Counters{
		ContentTriggers: c.triggers,
		Injected:        c.DNSInjections + c.RSTInjections,
		Dropped:         c.dropped,
	}
}

// Handle implements netem.Middlebox. Note the deliberate absence of any
// direction check: the TMC's bidirectionality (§3.1) is the single most
// distinguishing cell in the fingerprint matrix, and it falls out of not
// consulting dir for trigger decisions at all.
func (c *Censor) Handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	if pkt.IsFragment() {
		return netem.Pass // no reassembly; fragmentation evades (§6.2)
	}
	if pkt.UDP != nil && (pkt.UDP.DstPort == 53 || pkt.UDP.SrcPort == 53) {
		return c.handleDNS(pipe, pkt, dir)
	}
	if pkt.TCP != nil && len(pkt.TCP.Payload) > 0 {
		return c.handleTCP(pipe, pkt, dir)
	}
	return netem.Pass
}

// handleDNS injects a forged A answer for blocked questions, racing (and in
// practice beating) the legitimate resolver — the paper's clients always saw
// the injected answer first because it originates mid-path (§4.1). The query
// itself is forwarded, again matching the observed race.
func (c *Censor) handleDNS(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	m, err := dnsx.Decode(pkt.UDP.Payload)
	if err != nil || m.Response || !c.rules.DNS.Contains(m.Question) {
		return netem.Pass
	}
	forged := dnsx.NewQuery(m.ID, m.Question).Respond(BlockedAnswer)
	wire, err := forged.Encode()
	if err != nil {
		return netem.Pass
	}
	reply := packet.NewUDP(pkt.IP.Dst, pkt.IP.Src, pkt.UDP.DstPort, pkt.UDP.SrcPort, wire)
	c.triggers++
	c.DNSInjections++
	pipe.Inject(reply, dir.Reverse())
	return netem.Pass
}

// handleTCP matches HTTP Host headers and TLS SNI; a hit injects RST+ACK at
// both endpoints and consumes the trigger, tearing the connection down from
// the middle (§5.1, §5.2).
func (c *Censor) handleTCP(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	matched := false
	if req, err := httpx.ParseRequest(pkt.TCP.Payload); err == nil {
		matched = c.rules.HTTP.Contains(req.Host)
	}
	if !matched {
		if sni, ok := tlsx.ExtractSNI(pkt.TCP.Payload); ok {
			matched = c.rules.SNI.Contains(string(sni))
		}
	}
	if !matched {
		return netem.Pass
	}
	c.triggers++
	c.dropped++
	payloadLen := uint32(len(pkt.TCP.Payload))
	toSender := packet.NewTCP(pkt.IP.Dst, pkt.IP.Src, pkt.TCP.DstPort, pkt.TCP.SrcPort,
		packet.FlagsRSTACK, pkt.TCP.Ack, pkt.TCP.Seq+payloadLen, nil)
	toReceiver := packet.NewTCP(pkt.IP.Src, pkt.IP.Dst, pkt.TCP.SrcPort, pkt.TCP.DstPort,
		packet.FlagsRSTACK, pkt.TCP.Seq, pkt.TCP.Ack, nil)
	c.RSTInjections += 2
	pipe.Inject(toSender, dir.Reverse())
	pipe.Inject(toReceiver, dir)
	return netem.Drop
}

var _ censor.Censor = (*Censor)(nil)
