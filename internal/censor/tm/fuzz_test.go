package tm

import (
	"strings"
	"testing"
)

func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= 0x80 {
			return false
		}
	}
	return true
}

// FuzzTMClassify mirrors tspu.FuzzPolicyMatch for the TM trigger table:
// classification must never panic, must be stable, and AddAll must make any
// well-formed name fully blocked. Seeds are the profile table's boundary
// rows — the domains where a matching regression would first show.
func FuzzTMClassify(f *testing.F) {
	for _, d := range BoundaryRows() {
		f.Add(d)
		f.Add("sub." + d)
		f.Add(strings.ToUpper(d) + ".")
	}
	f.Add("")
	f.Add("\xff\xfe")
	f.Add("a..com")
	f.Fuzz(func(t *testing.T, name string) {
		r := DefaultRules()
		v1 := r.Classify(name) // must not panic, whatever the bytes
		if v2 := r.Classify(name); v1 != v2 {
			t.Fatalf("Classify(%q) unstable: %+v then %+v", name, v1, v2)
		}
		// A DNS-only hit must never imply a transport hit and vice versa
		// unless the table says so; cross-check against the raw lists.
		if v1.DNS != r.DNS.Contains(name) || v1.HTTP != r.HTTP.Contains(name) || v1.SNI != r.SNI.Contains(name) {
			t.Fatalf("Classify(%q) = %+v disagrees with the underlying lists", name, v1)
		}
		// The Add/Contains round-trip only holds for ASCII names: Add folds
		// with Unicode ToLower while lookups fold ASCII-only (deliberately —
		// see tspu.asciiLower; wire DNS names are ASCII).
		normalized := strings.ToLower(strings.TrimSuffix(name, "."))
		if normalized == "" || !isASCII(name) {
			return
		}
		fresh := NewRules()
		fresh.AddAll(name)
		if v := fresh.Classify(name); !v.DNS || !v.HTTP || !v.SNI {
			t.Fatalf("Classify(%q) = %+v right after AddAll", name, v)
		}
		if v := fresh.Classify("sub." + normalized); !v.DNS || !v.HTTP || !v.SNI {
			t.Fatalf("subdomain of %q not classified after AddAll: %+v", name, v)
		}
	})
}
