package tm

import (
	"tspusim/internal/packet"
	"tspusim/internal/tspu"
)

// BlockedAnswer is the address forged DNS answers carry. The paper's probes
// received localhost and other non-routable addresses for blocked names —
// an answer that resolves but can never connect (§4.1).
var BlockedAnswer = packet.MustAddr("127.0.0.1")

// Verdict is the per-trigger-field classification of one domain, mirroring
// tspu.Classification for the TMC's three mechanisms.
type Verdict struct {
	// DNS: forged A answer injected for queries about the name (§4).
	DNS bool
	// HTTP: RST+ACK pair injected when the name appears in a Host header (§5.1).
	HTTP bool
	// SNI: RST+ACK pair injected when the name appears as TLS SNI (§5.2).
	SNI bool
}

// Rules is the TMC trigger table: three independent blocklists, one per
// mechanism. The paper found the lists overlap but are not identical — some
// domains are DNS-blocked only, others blocked at every layer (§7, Table 2).
type Rules struct {
	DNS  *tspu.DomainSet
	HTTP *tspu.DomainSet
	SNI  *tspu.DomainSet
}

// NewRules returns an empty trigger table.
func NewRules() *Rules {
	return &Rules{
		DNS:  tspu.NewDomainSet(),
		HTTP: tspu.NewDomainSet(),
		SNI:  tspu.NewDomainSet(),
	}
}

// Classify reports which mechanisms a name triggers. Matching semantics are
// tspu.DomainSet's: exact or subdomain, case-folded, trailing dot ignored —
// the paper confirmed subdomain wildcarding on all three mechanisms (§7.1).
func (r *Rules) Classify(name string) Verdict {
	return Verdict{
		DNS:  r.DNS.Contains(name),
		HTTP: r.HTTP.Contains(name),
		SNI:  r.SNI.Contains(name),
	}
}

// AddAll inserts a name into every mechanism's list — the common case for
// the fully-blocked core of the list (§7, Table 2).
func (r *Rules) AddAll(name string) {
	r.DNS.Add(name)
	r.HTTP.Add(name)
	r.SNI.Add(name)
}

// defaultRows transcribes representative rows of the paper's findings. Each
// row cites where the behavior class is established. These are profile rows,
// not a registry dump: the paper estimates ~122K blocked domains from a
// 15.5M-domain scan (§7).
var defaultRows = []struct {
	Domain         string
	DNS, HTTP, SNI bool
	Citation       string
}{
	// Fully blocked at all three layers (§7 Table 2: social media and
	// messaging platforms blocked by DNS, HTTP, and HTTPS interference).
	{"facebook.com", true, true, true, "arXiv:2304.04835 §7 Table 2 (social media, all mechanisms)"},
	{"twitter.com", true, true, true, "arXiv:2304.04835 §7 Table 2 (social media, all mechanisms)"},
	{"youtube.com", true, true, true, "arXiv:2304.04835 §7 Table 2 (media platforms, all mechanisms)"},
	{"whatsapp.com", true, true, true, "arXiv:2304.04835 §7 Table 2 (messaging, all mechanisms)"},
	// Foreign news services: RFE/RL's Turkmen service is the canonical
	// politically-motivated block (§1, §7.2 news category).
	{"azathabar.com", true, true, true, "arXiv:2304.04835 §7.2 (RFE/RL Turkmen service, news category)"},
	{"hrw.org", true, true, true, "arXiv:2304.04835 §7.2 (human-rights organizations)"},
	// Circumvention infrastructure is blocked more aggressively at the
	// transport layers than in DNS (§7.2 VPN category; list divergence §7.1).
	{"protonvpn.com", false, true, true, "arXiv:2304.04835 §7.1-7.2 (VPN category; HTTP/HTTPS-only row)"},
	{"torproject.org", true, true, true, "arXiv:2304.04835 §7.2 (circumvention tools)"},
	// DNS-only rows exist too: names whose A lookups are poisoned while the
	// transport mechanisms miss them (§7.1 list divergence).
	{"signal.org", true, false, false, "arXiv:2304.04835 §7.1 (DNS-list-only divergence row)"},
}

// DefaultRules builds the paper-derived trigger table.
func DefaultRules() *Rules {
	r := NewRules()
	for _, row := range defaultRows {
		if row.DNS {
			r.DNS.Add(row.Domain)
		}
		if row.HTTP {
			r.HTTP.Add(row.Domain)
		}
		if row.SNI {
			r.SNI.Add(row.Domain)
		}
	}
	return r
}

// BoundaryRows returns the table rows whose mechanism sets differ from their
// neighbors — the fuzz seed corpus (rows where a classifier regression would
// first show).
func BoundaryRows() []string {
	out := make([]string, 0, len(defaultRows))
	for _, row := range defaultRows {
		out = append(out, row.Domain)
	}
	return out
}
