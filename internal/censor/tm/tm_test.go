package tm

import (
	"strings"
	"testing"
	"time"

	"tspusim/internal/dnsx"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/tlsx"
)

// capturePipe records injections for direct Handle testing.
type capturePipe struct {
	injected []*packet.Packet
	dirs     []netem.Direction
}

func (p *capturePipe) Inject(pkt *packet.Packet, dir netem.Direction) {
	p.injected = append(p.injected, pkt) //tspuvet:retains the capture pipe exists to hold injected packets for assertions; the testbed is single-threaded
	p.dirs = append(p.dirs, dir)
}
func (p *capturePipe) Now() time.Duration               { return 0 }
func (p *capturePipe) After(d time.Duration, fn func()) {}

var (
	clientAddr = packet.MustAddr("10.0.0.2")
	serverAddr = packet.MustAddr("203.0.113.10")
)

func chPayload(domain string) []byte {
	return (&tlsx.ClientHelloSpec{ServerName: domain}).Build()
}

func TestSNITriggerInjectsBothEnds(t *testing.T) {
	c := New(Config{})
	pipe := &capturePipe{}
	pkt := packet.NewTCP(clientAddr, serverAddr, 40000, 443, packet.FlagsPSHACK, 1000, 5000, chPayload("twitter.com"))
	if act := c.Handle(pipe, pkt, netem.AtoB); act != netem.Drop {
		t.Fatalf("blocked SNI not consumed: %v", act)
	}
	if len(pipe.injected) != 2 {
		t.Fatalf("want RST pair, got %d injections", len(pipe.injected))
	}
	toSender, toReceiver := pipe.injected[0], pipe.injected[1]
	if !toSender.TCP.Flags.Has(packet.FlagRST) || !toReceiver.TCP.Flags.Has(packet.FlagRST) {
		t.Fatal("injected packets are not RSTs")
	}
	if toSender.IP.Dst != clientAddr || pipe.dirs[0] != netem.BtoA {
		t.Fatal("first RST must travel back to the sender")
	}
	if toReceiver.IP.Dst != serverAddr || pipe.dirs[1] != netem.AtoB {
		t.Fatal("second RST must continue to the receiver")
	}
	// Sequence numbers must land in both endpoints' windows (§5.2): the RST
	// to the sender speaks with the receiver's voice (seq = sender's ack),
	// the RST to the receiver with the sender's (seq = sender's seq).
	if toSender.TCP.Seq != 5000 {
		t.Fatalf("toSender seq = %d, want peer ack 5000", toSender.TCP.Seq)
	}
	if want := uint32(1000 + len(pkt.TCP.Payload)); toSender.TCP.Ack != want {
		t.Fatalf("toSender ack = %d, want %d", toSender.TCP.Ack, want)
	}
	if toReceiver.TCP.Seq != 1000 || toReceiver.TCP.Ack != 5000 {
		t.Fatalf("toReceiver seq/ack = %d/%d, want 1000/5000", toReceiver.TCP.Seq, toReceiver.TCP.Ack)
	}
	if c.RSTInjections != 2 || c.Counters().Injected != 2 {
		t.Fatalf("counters: RST=%d Injected=%d", c.RSTInjections, c.Counters().Injected)
	}
}

// TestBidirectional is the TMC's defining property (§3.1): the same trigger
// fires on traffic flowing into the country.
func TestBidirectional(t *testing.T) {
	c := New(Config{})
	pipe := &capturePipe{}
	pkt := packet.NewTCP(serverAddr, clientAddr, 443, 40000, packet.FlagsPSHACK, 5000, 1000, chPayload("twitter.com"))
	if act := c.Handle(pipe, pkt, netem.BtoA); act != netem.Drop {
		t.Fatalf("reverse-direction trigger not consumed: %v", act)
	}
	if len(pipe.injected) != 2 {
		t.Fatalf("want RST pair on reverse direction, got %d", len(pipe.injected))
	}
}

func TestHTTPHostTrigger(t *testing.T) {
	c := New(Config{})
	pipe := &capturePipe{}
	req := []byte("GET / HTTP/1.1\r\nHost: facebook.com\r\n\r\n")
	pkt := packet.NewTCP(clientAddr, serverAddr, 40000, 80, packet.FlagsPSHACK, 1, 1, req)
	if act := c.Handle(pipe, pkt, netem.AtoB); act != netem.Drop {
		t.Fatalf("blocked Host not consumed: %v", act)
	}
	benign := packet.NewTCP(clientAddr, serverAddr, 40000, 80, packet.FlagsPSHACK, 1, 1,
		[]byte("GET / HTTP/1.1\r\nHost: example.org\r\n\r\n"))
	if act := c.Handle(pipe, benign, netem.AtoB); act != netem.Pass {
		t.Fatalf("benign Host interfered with: %v", act)
	}
}

func TestDNSInjectionRacesQuery(t *testing.T) {
	c := New(Config{})
	pipe := &capturePipe{}
	wire, err := dnsx.NewQuery(42, "youtube.com").Encode()
	if err != nil {
		t.Fatal(err)
	}
	q := packet.NewUDP(clientAddr, serverAddr, 5353, 53, wire)
	if act := c.Handle(pipe, q, netem.AtoB); act != netem.Pass {
		t.Fatalf("query must be forwarded (the race), got %v", act)
	}
	if len(pipe.injected) != 1 {
		t.Fatalf("want one forged answer, got %d", len(pipe.injected))
	}
	forged, err := dnsx.Decode(pipe.injected[0].UDP.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !forged.Response || forged.ID != 42 {
		t.Fatal("forged answer does not match the query")
	}
	if len(forged.Answers) == 0 || forged.Answers[0].Addr != BlockedAnswer {
		t.Fatalf("forged answer must point at %v", BlockedAnswer)
	}
	if pipe.dirs[0] != netem.BtoA {
		t.Fatal("forged answer must travel back toward the querier")
	}
}

func TestFragmentsPassUninspected(t *testing.T) {
	c := New(Config{})
	pipe := &capturePipe{}
	pkt := packet.NewTCP(clientAddr, serverAddr, 40000, 443, packet.FlagsPSHACK, 1, 1, chPayload("twitter.com"))
	frags, err := packet.FragmentCount(pkt, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range frags {
		if act := c.Handle(pipe, fr, netem.AtoB); act != netem.Pass {
			t.Fatalf("fragment not passed: %v", act)
		}
	}
	if len(pipe.injected) != 0 {
		t.Fatal("fragments must evade (§6.2)")
	}
}

// TestDefaultTableDivergence pins the list-divergence rows (§7.1): the three
// mechanism lists overlap but are not identical.
func TestDefaultTableDivergence(t *testing.T) {
	r := DefaultRules()
	if v := r.Classify("signal.org"); !v.DNS || v.HTTP || v.SNI {
		t.Fatalf("signal.org must be DNS-only, got %+v", v)
	}
	if v := r.Classify("protonvpn.com"); v.DNS || !v.HTTP || !v.SNI {
		t.Fatalf("protonvpn.com must be HTTP/SNI-only, got %+v", v)
	}
	if v := r.Classify("azathabar.com"); !v.DNS || !v.HTTP || !v.SNI {
		t.Fatalf("azathabar.com must be fully blocked, got %+v", v)
	}
	// Subdomain wildcarding applies to every mechanism (§7.1).
	if v := r.Classify("www.facebook.com"); !v.DNS || !v.HTTP || !v.SNI {
		t.Fatalf("subdomain must inherit, got %+v", v)
	}
}

func TestTableCitationsPresent(t *testing.T) {
	for _, row := range defaultRows {
		if !strings.Contains(row.Citation, "arXiv:2304.04835") {
			t.Errorf("row %s cites %q, want the TM paper", row.Domain, row.Citation)
		}
	}
	if len(BoundaryRows()) != len(defaultRows) {
		t.Fatal("BoundaryRows must cover the whole table")
	}
}
