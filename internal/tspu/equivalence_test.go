package tspu

import (
	"fmt"
	"testing"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
)

// The fast datapath (FlowKey4 conntrack, pooled entries, ExtractSNI +
// ClassifyBytes) must be behaviorally indistinguishable from the retained
// reference implementation (string SNI parse + Contains). These property
// tests drive the same seeded packet stream through a fast and a slow-path
// device and require byte-identical outcomes: same action per packet, same
// rewritten wire bytes, same counters. The conformance differential suite
// (internal/conformance) is the second, independent guard: it compares the
// fast device against a paper-derived oracle that shares no code with it.

func equivDevice(seed uint64, slow bool) *Device {
	s := sim.New()
	d := NewDevice(Config{
		Sim:      s,
		LocalDir: netem.AtoB,
		Rand:     sim.NewRand(seed),
		FailureRates: map[BlockType]float64{
			SNI1: 0.05, SNI2: 0.05, SNI4: 0.03, QUICBlock: 0.06, IPBlock: 0.02,
		},
	})
	d.slowPath = slow
	ctl := NewController(nil)
	ctl.Register(d)
	ctl.Update(func(p *Policy) {
		p.SNI1Domains.Add("facebook.com", "twitter.com", "meduza.io")
		p.SNI2Domains.Add("play.google.com")
		p.SNI4Domains.Add("twitter.com", "fbcdn.net")
		p.ThrottleDomains.Add("twitter.com", "fbcdn.net")
		p.ThrottleActive = true
		p.BlockedIPs[packet.MustAddr("198.51.100.7")] = true
	})
	return d
}

// equivStream generates n seeded packets covering every datapath branch:
// handshakes, trigger ClientHellos (matching and not, mixed case, trailing
// dots, padded, segmented), payload soup, QUIC initials, blocked-IP traffic,
// and downstream responses on flows that may hold blocking state.
func equivStream(seed uint64, n int) []*packet.Packet {
	rng := sim.NewRand(seed)
	local := packet.MustAddr("10.0.0.2")
	remote := packet.MustAddr("203.0.113.10")
	blocked := packet.MustAddr("198.51.100.7")
	snis := []string{
		"facebook.com", "api.twitter.com", "TWITTER.COM", "twitter.com.",
		"play.google.com", "fbcdn.net", "meduza.io", "example.org",
		"sub.deep.facebook.com", "notfacebook.com", "",
	}
	pkts := make([]*packet.Packet, 0, n)
	for len(pkts) < n {
		sport := uint16(20000 + rng.Intn(64)) // few ports => flows accumulate state
		switch rng.Intn(10) {
		case 0: // local SYN
			pkts = append(pkts, packet.NewTCP(local, remote, sport, 443, packet.FlagSYN, 1, 0, nil))
		case 1: // remote SYN/ACK
			pkts = append(pkts, packet.NewTCP(remote, local, 443, sport, packet.FlagsSYNACK, 1, 2, nil))
		case 2: // trigger ClientHello
			spec := &tlsx.ClientHelloSpec{ServerName: snis[rng.Intn(len(snis))]}
			if rng.Bool(0.3) {
				spec.PaddingLen = rng.Intn(600)
			}
			if rng.Bool(0.1) {
				spec.PrependRecord = true
			}
			pkts = append(pkts, packet.NewTCP(local, remote, sport, 443, packet.FlagsPSHACK, 2, 2, spec.Build()))
		case 3: // segmented ClientHello: first segment only
			ch := (&tlsx.ClientHelloSpec{ServerName: snis[rng.Intn(len(snis))]}).Build()
			cut := 1 + rng.Intn(len(ch)-1)
			pkts = append(pkts, packet.NewTCP(local, remote, sport, 443, packet.FlagsPSHACK, 2, 2, ch[:cut]))
		case 4: // payload soup
			soup := make([]byte, 1+rng.Intn(512))
			for i := range soup {
				soup[i] = byte(rng.Uint64())
			}
			pkts = append(pkts, packet.NewTCP(local, remote, sport, 443, packet.FlagsPSHACK, 2, 2, soup))
		case 5: // downstream data (hits installed SNI-I state)
			pkts = append(pkts, packet.NewTCP(remote, local, 443, sport, packet.FlagsPSHACK, 9, 9, []byte("HTTP/1.1 200 OK")))
		case 6: // upstream data on a possibly-blocked flow
			pkts = append(pkts, packet.NewTCP(local, remote, sport, 443, packet.FlagsPSHACK, 9, 9, make([]byte, rng.Intn(1400))))
		case 7: // QUIC-shaped UDP
			pay := make([]byte, 1200)
			pay[0] = 0xc0 // long header, v1-ish first byte
			for i := 1; i < 16; i++ {
				pay[i] = byte(rng.Uint64())
			}
			pkts = append(pkts, packet.NewUDP(local, remote, sport, 443, pay))
		case 8: // blocked-IP traffic, both shapes
			if rng.Bool(0.5) {
				pkts = append(pkts, packet.NewTCP(local, blocked, sport, 443, packet.FlagSYN, 1, 0, nil))
			} else {
				pkts = append(pkts, packet.NewTCP(local, blocked, sport, 443, packet.FlagsPSHACK, 3, 3, []byte("GET /")))
			}
		case 9: // bare ACKs (restart rule) and remote SYN (role confusion)
			if rng.Bool(0.5) {
				pkts = append(pkts, packet.NewTCP(remote, local, 443, sport, packet.FlagACK, 5, 5, nil))
			} else {
				pkts = append(pkts, packet.NewTCP(remote, local, 443, sport, packet.FlagSYN, 5, 0, nil))
			}
		}
	}
	return pkts
}

func equivDir(p *packet.Packet) netem.Direction {
	if p.IP.Src == packet.MustAddr("10.0.0.2") {
		return netem.AtoB
	}
	return netem.BtoA
}

// runEquiv pushes the stream through one device and returns a log line per
// packet: the action plus the (possibly rewritten) wire bytes.
func runEquiv(d *Device, stream []*packet.Packet) []string {
	pipe := nullPipe{s: d.cfg.Sim}
	log := make([]string, 0, len(stream))
	for _, src := range stream {
		p := src.Clone() // devices may rewrite; keep the stream pristine
		act := d.Handle(pipe, p, equivDir(p))
		wire, err := p.Marshal()
		if err != nil {
			wire = []byte(err.Error())
		}
		log = append(log, fmt.Sprintf("%v %x", act, wire))
	}
	return log
}

func TestFastSlowPathEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			stream := equivStream(seed, 1200)
			fast := equivDevice(seed, false)
			slow := equivDevice(seed, true)
			fastLog := runEquiv(fast, stream)
			slowLog := runEquiv(slow, stream)
			for i := range fastLog {
				if fastLog[i] != slowLog[i] {
					t.Fatalf("packet %d diverged:\nfast: %s\nslow: %s", i, fastLog[i], slowLog[i])
				}
			}
			fs, ss := fast.Stats(), slow.Stats()
			if fs.Handled != ss.Handled || fs.Dropped != ss.Dropped ||
				fs.Rewritten != ss.Rewritten || fs.Throttled != ss.Throttled {
				t.Fatalf("stats diverged: fast %+v slow %+v", fs, ss)
			}
			for _, typ := range []BlockType{SNI1, SNI2, SNI3, SNI4, QUICBlock, IPBlock} {
				if fs.Triggers[typ] != ss.Triggers[typ] {
					t.Fatalf("%v triggers: fast %d slow %d", typ, fs.Triggers[typ], ss.Triggers[typ])
				}
				if fs.Misses[typ] != ss.Misses[typ] {
					t.Fatalf("%v misses: fast %d slow %d", typ, fs.Misses[typ], ss.Misses[typ])
				}
			}
		})
	}
}

// TestClassifyBytesEquivalence pins Policy.ClassifyBytes == Policy.Classify
// and DomainSet.Match == DomainSet.Contains over ASCII inputs (all that DNS
// carries on the wire), including the case-folding and trailing-dot paths.
func TestClassifyBytesEquivalence(t *testing.T) {
	p := NewPolicy()
	p.SNI1Domains.Add("facebook.com", "Meduza.IO")
	p.SNI2Domains.Add("play.google.com")
	p.SNI4Domains.Add("fbcdn.net")
	p.ThrottleDomains.Add("twitter.com")
	p.ThrottleActive = true
	inputs := []string{
		"facebook.com", "www.facebook.com", "FACEBOOK.COM", "FaceBook.Com.",
		"meduza.io", "notfacebook.com", "facebook.com.extra", "com",
		"play.google.com", "x.play.google.com", "google.com", "twitter.com",
		"API.TWITTER.COM.", "fbcdn.net", "", ".", "..", "a.b.c.d.e.f",
	}
	for _, in := range inputs {
		want := p.Classify(in)
		got := p.ClassifyBytes([]byte(in))
		if got != want {
			t.Errorf("ClassifyBytes(%q) = %+v, Classify = %+v", in, got, want)
		}
	}
}

func TestMatchDoesNotMutateInput(t *testing.T) {
	s := NewDomainSet("twitter.com")
	in := []byte("API.TWITTER.COM")
	if !s.Match(in) {
		t.Fatal("Match missed")
	}
	if string(in) != "API.TWITTER.COM" {
		t.Fatalf("Match mutated its input to %q", in)
	}
}

// TestReassembleAblationStillCatchesSegmentation guards the one datapath the
// fast SNI path must not change: with ReassembleTCP the device still detects
// a ClientHello split across segments.
func TestReassembleAblationStillCatchesSegmentation(t *testing.T) {
	s := sim.New()
	d := NewDevice(Config{Sim: s, LocalDir: netem.AtoB, ReassembleTCP: true})
	ctl := NewController(nil)
	ctl.Register(d)
	ctl.Update(func(p *Policy) { p.SNI1Domains.Add("facebook.com") })
	pipe := nullPipe{s: s}
	ch := (&tlsx.ClientHelloSpec{ServerName: "facebook.com"}).Build()
	local := packet.MustAddr("10.0.0.2")
	remote := packet.MustAddr("203.0.113.10")
	for off := 0; off < len(ch); off += 16 {
		end := off + 16
		if end > len(ch) {
			end = len(ch)
		}
		d.Handle(pipe, packet.NewTCP(local, remote, 40000, 443, packet.FlagsPSHACK, uint32(off), 1, ch[off:end]), netem.AtoB)
	}
	if d.Stats().Triggers[SNI1] != 1 {
		t.Fatalf("reassembling device saw %d SNI-I triggers, want 1", d.Stats().Triggers[SNI1])
	}
}
