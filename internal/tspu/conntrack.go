package tspu

import (
	"time"

	"tspusim/internal/packet"
)

// Origin records which side the TSPU believes initiated a connection. The
// inference is heuristic — the direction of the first packet seen, refined
// by SYN handling — and tricking it is the root of the split-handshake and
// simultaneous-open evasions (§5.3.2).
type Origin int

// Origins.
const (
	OriginLocal Origin = iota
	OriginRemote
)

func (o Origin) String() string {
	if o == OriginLocal {
		return "local"
	}
	return "remote"
}

// ConnState is the TSPU's connection-tracking state. Timeouts for these
// states were measured in §5.3.3 (Table 2) and do not match any documented
// OS conntrack implementation (Table 7).
//
//tspuvet:closedenum
type ConnState int

// Connection-tracking states.
const (
	CTSynSent ConnState = iota
	CTSynRecv
	CTEstablished
)

func (s ConnState) String() string {
	switch s {
	case CTSynSent:
		return "SYN_SENT"
	case CTSynRecv:
		return "SYN_RCVD"
	case CTEstablished:
		return "ESTABLISHED"
	}
	return "?"
}

// StateTimeouts holds the conntrack and blocking-state lifetimes. Defaults
// are the paper's measured values (Table 2).
type StateTimeouts struct {
	SynSent     time.Duration // 60 s
	SynRecv     time.Duration // 105 s
	Established time.Duration // 480 s
	SNI1        time.Duration // 75 s
	SNI2        time.Duration // 420 s
	SNI4        time.Duration // 40 s
	QUIC        time.Duration // 420 s
	Frag        time.Duration // ~5 s fragment queue timeout (§5.3.1)
}

// DefaultTimeouts returns the values measured in the paper.
func DefaultTimeouts() StateTimeouts {
	return StateTimeouts{
		SynSent:     60 * time.Second,
		SynRecv:     105 * time.Second,
		Established: 480 * time.Second,
		SNI1:        75 * time.Second,
		SNI2:        420 * time.Second,
		SNI4:        40 * time.Second,
		QUIC:        420 * time.Second,
		Frag:        5 * time.Second,
	}
}

func (t StateTimeouts) forState(s ConnState) time.Duration {
	switch s {
	case CTSynSent:
		return t.SynSent
	case CTSynRecv:
		return t.SynRecv
	default: //tspuvet:allow statecheck: CTEstablished and any unmodeled state age out on the established timeout
		return t.Established
	}
}

func (t StateTimeouts) forBlock(b BlockType) time.Duration {
	switch b {
	case SNI1:
		return t.SNI1
	case SNI2:
		return t.SNI2
	case SNI4:
		return t.SNI4
	case QUICBlock:
		return t.QUIC
	default: //tspuvet:allow statecheck: SNI3 and IPBlock holds have no measured timeout in Table 2; they age on the established timeout
		return t.Established
	}
}

// blockState is an active blocking decision on one flow. It is embedded by
// value in the flowEntry so installing a block never allocates.
//
//tspuvet:laneowned
type blockState struct {
	typ   BlockType
	until time.Duration
	// allowance is the number of further packets SNI-II lets through before
	// symmetric drops begin.
	allowance int
	// bucket polices SNI-III throttled flows.
	bucket *tokenBucket
}

// flowEntry is one conntrack record. Entries are pooled per-shard: a deleted
// entry's memory is reused by the next flow instead of going to the garbage
// collector, so flow churn does not allocate in steady state.
//
//tspuvet:laneowned
type flowEntry struct {
	key     packet.FlowKey4 // canonical compact 5-tuple
	origin  Origin
	state   ConnState
	expires time.Duration
	// sawRemoteSYN marks local-origin flows that later carried a SYN from
	// the remote peer (split handshake / simultaneous open). These are the
	// green paths of Fig. 4: the role heuristic is confused, SNI-I no longer
	// acts, and only the SNI-IV backup can fire.
	sawRemoteSYN bool
	// sawSYNACK gates promotion to ESTABLISHED on a real handshake.
	sawSYNACK bool
	hasBlock  bool
	block     blockState
	// immune is a bitmask over BlockType recording trigger types this flow
	// escaped via the device's per-connection failure roll (Table 1):
	// retrying the same trigger on the same connection stays unblocked, a
	// fresh connection re-rolls.
	immune uint8
	// ipVerdictKnown/ipBlocked cache the per-flow IP-block decision.
	ipVerdictKnown bool
	ipBlocked      bool
	// gen invalidates stale timeWheel references: release bumps it, so a
	// wheel bucket holding an old (entry, gen) pair resolves to a no-op —
	// the sim.Timer discipline applied to pooled flow entries.
	gen uint32
	// rollSeq counts per-flow random decisions consumed in PerFlowRand mode,
	// so each roll on a flow draws a distinct, order-independent value.
	rollSeq uint32
}

func (e *flowEntry) roleConfused() bool {
	return e.origin == OriginLocal && e.sawRemoteSYN
}

func (e *flowEntry) isImmune(t BlockType) bool { return e.immune&(1<<uint(t)) != 0 }
func (e *flowEntry) setImmune(t BlockType)     { e.immune |= 1 << uint(t) }

// ctShard is one independent slice of the flow table: its own map, entry
// pool, capacity bound, and timeout wheel. Shards share nothing, so the batch
// engine can hand each worker a disjoint set of shards and run them with no
// lock — the decentralized-deployment analogue of the paper's observation
// that TSPU state is per-box, not network-global.
//
//tspuvet:laneowned
type ctShard struct {
	table    map[packet.FlowKey4]*flowEntry
	timeouts StateTimeouts
	// evictions counts expired entries reclaimed (lazily or by sweep).
	evictions int
	// cap implements the optional flow-table bound (resources.go).
	cap capacityState
	// free is the entry pool, refilled as entries are deleted.
	free []*flowEntry
	// wheel indexes entries by expiry so sweeping visits only elapsed
	// buckets instead of scanning the whole table (wheel.go).
	wheel timeWheel
	// allocs / poolReuses account pool behavior: in steady state reuse grows
	// and allocs stay flat — the leak check invariant.
	allocs     uint64
	poolReuses uint64
}

// conntrack is the device's flow table with lazy expiry against the virtual
// clock, split into 2^k shards selected by FlowKey4.PairHash. With one shard
// (the default) it behaves exactly as the unsharded table did.
type conntrack struct {
	shards   []ctShard
	mask     uint64
	timeouts StateTimeouts
}

func newConntrack(t StateTimeouts) *conntrack {
	return newShardedConntrack(t, 1)
}

// newShardedConntrack builds a table with at least n shards, rounded up to a
// power of two so shard selection is a mask.
func newShardedConntrack(t StateTimeouts, n int) *conntrack {
	size := 1
	for size < n {
		size <<= 1
	}
	ct := &conntrack{shards: make([]ctShard, size), mask: uint64(size - 1), timeouts: t}
	for i := range ct.shards {
		sh := &ct.shards[i]
		sh.table = make(map[packet.FlowKey4]*flowEntry)
		sh.timeouts = t
		sh.wheel.init()
	}
	return ct
}

// shardFor selects the shard owning key. PairHash depends only on the
// canonical (src, dst) address pair, so both directions of a flow — and every
// other piece of middlebox state between the same hosts — land on one shard.
//
//tspuvet:hotpath
func (ct *conntrack) shardFor(key packet.FlowKey4) *ctShard {
	return &ct.shards[key.PairHash()&ct.mask]
}

func (ct *conntrack) numShards() int { return len(ct.shards) }

// release recycles a deleted entry. The caller must have removed it from the
// table; zeroing drops the token-bucket pointer so stopped throttles are
// collectible, and the bumped generation kills any wheel reference still
// pointing here.
func (sh *ctShard) release(e *flowEntry) {
	e.checkLive("released")
	g := e.gen
	*e = flowEntry{}
	e.gen = g + 1
	poisonEntry(e)
	sh.free = append(sh.free, e)
}

func (sh *ctShard) allocEntry() *flowEntry {
	if n := len(sh.free); n > 0 {
		e := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		unpoisonEntry(e)
		sh.poolReuses++
		return e
	}
	sh.allocs++
	return &flowEntry{} //tspuvet:allow hotpath: pool-miss refill, amortized to zero across a run
}

// lookup returns the live entry for key, expiring stale state.
func (sh *ctShard) lookup(key packet.FlowKey4, now time.Duration) *flowEntry {
	e, ok := sh.table[key]
	if !ok {
		return nil
	}
	e.checkLive("found in table")
	if now >= e.expires {
		delete(sh.table, key)
		sh.evictions++
		sh.release(e)
		return nil
	}
	return e
}

// observe updates (or creates) the entry for one packet and returns it.
// dirLocal reports whether the packet travels local→remote; key must be
// packet.FlowKey4Of(pkt) (precomputed by batch callers that already hashed it
// for shard selection). The transition rules encode the paper's findings:
//
//   - A flow's origin is the direction of the first packet seen; sequences
//     starting with a remote packet are never valid blocking prefixes.
//   - A bare SYN from the remote peer on a local-origin flow marks the role
//     heuristic as confused (Fig. 4's green paths).
//   - A bare ACK arriving in SYN_SENT restarts tracking with the ACK's
//     direction as origin; the observed PASS on the "Local SYN, Remote ACK,
//     trigger" sequence of Table 8 is only explainable if the TSPU replaces
//     rather than updates its entry on unsolicited ACKs.
//   - Promotion to ESTABLISHED requires having seen a SYN/ACK.
func (sh *ctShard) observe(key packet.FlowKey4, pkt *packet.Packet, dirLocal bool, now time.Duration) *flowEntry {
	e := sh.lookup(key, now)
	t := pkt.TCP

	newEntry := func(state ConnState) *flowEntry {
		origin := OriginRemote
		if dirLocal {
			origin = OriginLocal
		}
		ne := sh.allocEntry()
		ne.key = key
		ne.origin = origin
		ne.state = state
		ne.expires = now + sh.timeouts.forState(state)
		sh.table[key] = ne
		sh.noteInsert(key)
		sh.wheel.insert(ne)
		return ne
	}

	if e == nil {
		state := CTEstablished // data/ACK-opened entries age like established
		if t != nil {
			switch {
			case t.Flags.Has(packet.FlagsSYNACK):
				state = CTSynRecv
			case t.Flags.Has(packet.FlagSYN):
				state = CTSynSent
			}
		}
		e = newEntry(state)
		if t != nil && t.Flags.Has(packet.FlagsSYNACK) {
			e.sawSYNACK = true
		}
		return e
	}

	if t != nil {
		flags := t.Flags
		switch {
		case flags.Has(packet.FlagsSYNACK):
			e.sawSYNACK = true
			if e.state == CTSynSent || e.state == CTSynRecv {
				e.state = CTEstablished
			}
		case flags.Has(packet.FlagSYN):
			if !dirLocal && e.origin == OriginLocal {
				e.sawRemoteSYN = true
			}
			if e.state == CTSynSent {
				e.state = CTSynRecv
			}
		case flags.Has(packet.FlagACK):
			bareACK := flags == packet.FlagACK && len(t.Payload) == 0
			ackFromOpposite := (e.origin == OriginLocal) != dirLocal
			if bareACK && e.state == CTSynSent && ackFromOpposite {
				// Unsolicited bare ACK from the peer of the opener: restart
				// tracking as a remote-originated (exempt) connection. This
				// is the only reading consistent with both Table 8's
				// "Ls;Ra;Lt -> PASS" and Fig. 4's finding that remote-first
				// sequences are never valid prefixes. Data-bearing ACKs
				// never restart — otherwise every trigger ClientHello would
				// reset the flow it rides on.
				delete(sh.table, key)
				sh.release(e)
				ne := newEntry(CTEstablished)
				ne.origin = OriginRemote
				return ne
			}
			if e.state == CTSynRecv && e.sawSYNACK {
				e.state = CTEstablished
			}
		}
	}
	// Activity refreshes the state timer, but never shortens an active
	// blocking hold. Expiry only ever moves later, which is what lets the
	// timeout wheel hold a single lazy reference per entry.
	exp := now + sh.timeouts.forState(e.state)
	if e.hasBlock && e.block.until > exp {
		exp = e.block.until
	}
	e.expires = exp
	return e
}

// observe routes one packet to its owning shard.
func (ct *conntrack) observe(pkt *packet.Packet, dirLocal bool, now time.Duration) *flowEntry {
	key := packet.FlowKey4Of(pkt)
	return ct.shardFor(key).observe(key, pkt, dirLocal, now)
}

// observeKey is observe with the flow key already extracted — the batch path
// computes keys once per batch for shard routing and passes them down.
//
//tspuvet:hotpath
func (ct *conntrack) observeKey(key packet.FlowKey4, pkt *packet.Packet, dirLocal bool, now time.Duration) *flowEntry {
	return ct.shardFor(key).observe(key, pkt, dirLocal, now)
}

// lookup returns the live entry for key, expiring stale state.
func (ct *conntrack) lookup(key packet.FlowKey4, now time.Duration) *flowEntry {
	return ct.shardFor(key).lookup(key, now)
}

// setBlock installs a blocking state on the entry and extends its lifetime
// to cover it. Expiry grows monotonically, so the entry's wheel reference
// stays valid and re-buckets when its original slot fires.
func (ct *conntrack) setBlock(e *flowEntry, typ BlockType, now time.Duration, allowance int, bucket *tokenBucket) {
	e.hasBlock = true
	e.block = blockState{
		typ:       typ,
		until:     now + ct.timeouts.forBlock(typ),
		allowance: allowance,
		bucket:    bucket,
	}
	if e.block.until > e.expires {
		e.expires = e.block.until
	}
}

// activeBlock returns the entry's blocking state if it has not expired.
func (e *flowEntry) activeBlock(now time.Duration) *blockState {
	e.checkLive("read")
	if !e.hasBlock || now >= e.block.until {
		return nil
	}
	return &e.block
}

// size reports the number of table entries (including not-yet-swept stale
// ones) across all shards.
func (ct *conntrack) size() int {
	n := 0
	for i := range ct.shards {
		n += len(ct.shards[i].table)
	}
	return n
}

// evictionCount sums expired-entry reclaims across shards.
func (ct *conntrack) evictionCount() int {
	n := 0
	for i := range ct.shards {
		n += ct.shards[i].evictions
	}
	return n
}

// poolStats reports aggregate entry-pool accounting: fresh allocations,
// pooled reuses, and entries currently sitting in freelists. In steady-state
// churn allocs plateaus at the peak concurrent flow count while reuses keep
// climbing — the shard-pool leak check invariant.
func (ct *conntrack) poolStats() (allocs, reuses uint64, pooled int) {
	for i := range ct.shards {
		sh := &ct.shards[i]
		allocs += sh.allocs
		reuses += sh.poolReuses
		pooled += len(sh.free)
	}
	return
}
