package tspu

import (
	"time"

	"tspusim/internal/packet"
)

// Origin records which side the TSPU believes initiated a connection. The
// inference is heuristic — the direction of the first packet seen, refined
// by SYN handling — and tricking it is the root of the split-handshake and
// simultaneous-open evasions (§5.3.2).
type Origin int

// Origins.
const (
	OriginLocal Origin = iota
	OriginRemote
)

func (o Origin) String() string {
	if o == OriginLocal {
		return "local"
	}
	return "remote"
}

// ConnState is the TSPU's connection-tracking state. Timeouts for these
// states were measured in §5.3.3 (Table 2) and do not match any documented
// OS conntrack implementation (Table 7).
type ConnState int

// Connection-tracking states.
const (
	CTSynSent ConnState = iota
	CTSynRecv
	CTEstablished
)

func (s ConnState) String() string {
	switch s {
	case CTSynSent:
		return "SYN_SENT"
	case CTSynRecv:
		return "SYN_RCVD"
	case CTEstablished:
		return "ESTABLISHED"
	}
	return "?"
}

// StateTimeouts holds the conntrack and blocking-state lifetimes. Defaults
// are the paper's measured values (Table 2).
type StateTimeouts struct {
	SynSent     time.Duration // 60 s
	SynRecv     time.Duration // 105 s
	Established time.Duration // 480 s
	SNI1        time.Duration // 75 s
	SNI2        time.Duration // 420 s
	SNI4        time.Duration // 40 s
	QUIC        time.Duration // 420 s
	Frag        time.Duration // ~5 s fragment queue timeout (§5.3.1)
}

// DefaultTimeouts returns the values measured in the paper.
func DefaultTimeouts() StateTimeouts {
	return StateTimeouts{
		SynSent:     60 * time.Second,
		SynRecv:     105 * time.Second,
		Established: 480 * time.Second,
		SNI1:        75 * time.Second,
		SNI2:        420 * time.Second,
		SNI4:        40 * time.Second,
		QUIC:        420 * time.Second,
		Frag:        5 * time.Second,
	}
}

func (t StateTimeouts) forState(s ConnState) time.Duration {
	switch s {
	case CTSynSent:
		return t.SynSent
	case CTSynRecv:
		return t.SynRecv
	default:
		return t.Established
	}
}

func (t StateTimeouts) forBlock(b BlockType) time.Duration {
	switch b {
	case SNI1:
		return t.SNI1
	case SNI2:
		return t.SNI2
	case SNI4:
		return t.SNI4
	case QUICBlock:
		return t.QUIC
	default:
		return t.Established
	}
}

// blockState is an active blocking decision on one flow. It is embedded by
// value in the flowEntry so installing a block never allocates.
type blockState struct {
	typ   BlockType
	until time.Duration
	// allowance is the number of further packets SNI-II lets through before
	// symmetric drops begin.
	allowance int
	// bucket polices SNI-III throttled flows.
	bucket *tokenBucket
}

// flowEntry is one conntrack record. Entries are pooled per-conntrack: a
// deleted entry's memory is reused by the next flow instead of going to the
// garbage collector, so flow churn does not allocate in steady state.
type flowEntry struct {
	key     packet.FlowKey4 // canonical compact 5-tuple
	origin  Origin
	state   ConnState
	expires time.Duration
	// sawRemoteSYN marks local-origin flows that later carried a SYN from
	// the remote peer (split handshake / simultaneous open). These are the
	// green paths of Fig. 4: the role heuristic is confused, SNI-I no longer
	// acts, and only the SNI-IV backup can fire.
	sawRemoteSYN bool
	// sawSYNACK gates promotion to ESTABLISHED on a real handshake.
	sawSYNACK bool
	hasBlock  bool
	block     blockState
	// immune is a bitmask over BlockType recording trigger types this flow
	// escaped via the device's per-connection failure roll (Table 1):
	// retrying the same trigger on the same connection stays unblocked, a
	// fresh connection re-rolls.
	immune uint8
	// ipVerdictKnown/ipBlocked cache the per-flow IP-block decision.
	ipVerdictKnown bool
	ipBlocked      bool
}

func (e *flowEntry) roleConfused() bool {
	return e.origin == OriginLocal && e.sawRemoteSYN
}

func (e *flowEntry) isImmune(t BlockType) bool { return e.immune&(1<<uint(t)) != 0 }
func (e *flowEntry) setImmune(t BlockType)     { e.immune |= 1 << uint(t) }

// conntrack is the device's flow table with lazy expiry against the virtual
// clock.
type conntrack struct {
	table    map[packet.FlowKey4]*flowEntry
	timeouts StateTimeouts
	// Evictions counts lazily expired entries (visible in device stats).
	evictions int
	// cap implements the optional flow-table bound (resources.go).
	cap capacityState
	// free is the entry pool, refilled as entries are deleted.
	free []*flowEntry
}

func newConntrack(t StateTimeouts) *conntrack {
	return &conntrack{table: make(map[packet.FlowKey4]*flowEntry), timeouts: t}
}

// release recycles a deleted entry. The caller must have removed it from the
// table; zeroing drops the token-bucket pointer so stopped throttles are
// collectible.
func (ct *conntrack) release(e *flowEntry) {
	*e = flowEntry{}
	ct.free = append(ct.free, e)
}

func (ct *conntrack) allocEntry() *flowEntry {
	if n := len(ct.free); n > 0 {
		e := ct.free[n-1]
		ct.free[n-1] = nil
		ct.free = ct.free[:n-1]
		return e
	}
	return &flowEntry{} //tspuvet:allow hotpath: pool-miss refill, amortized to zero across a run
}

// lookup returns the live entry for pkt's flow, expiring stale state.
func (ct *conntrack) lookup(key packet.FlowKey4, now time.Duration) *flowEntry {
	e, ok := ct.table[key]
	if !ok {
		return nil
	}
	if now >= e.expires {
		delete(ct.table, key)
		ct.evictions++
		ct.release(e)
		return nil
	}
	return e
}

// observe updates (or creates) the entry for one packet and returns it.
// dirLocal reports whether the packet travels local→remote. The transition
// rules encode the paper's findings:
//
//   - A flow's origin is the direction of the first packet seen; sequences
//     starting with a remote packet are never valid blocking prefixes.
//   - A bare SYN from the remote peer on a local-origin flow marks the role
//     heuristic as confused (Fig. 4's green paths).
//   - A bare ACK arriving in SYN_SENT restarts tracking with the ACK's
//     direction as origin; the observed PASS on the "Local SYN, Remote ACK,
//     trigger" sequence of Table 8 is only explainable if the TSPU replaces
//     rather than updates its entry on unsolicited ACKs.
//   - Promotion to ESTABLISHED requires having seen a SYN/ACK.
func (ct *conntrack) observe(pkt *packet.Packet, dirLocal bool, now time.Duration) *flowEntry {
	key := packet.FlowKey4Of(pkt)
	e := ct.lookup(key, now)
	t := pkt.TCP

	newEntry := func(state ConnState) *flowEntry {
		origin := OriginRemote
		if dirLocal {
			origin = OriginLocal
		}
		ne := ct.allocEntry()
		ne.key = key
		ne.origin = origin
		ne.state = state
		ne.expires = now + ct.timeouts.forState(state)
		ct.table[key] = ne
		ct.noteInsert(key)
		return ne
	}

	if e == nil {
		state := CTEstablished // data/ACK-opened entries age like established
		if t != nil {
			switch {
			case t.Flags.Has(packet.FlagsSYNACK):
				state = CTSynRecv
			case t.Flags.Has(packet.FlagSYN):
				state = CTSynSent
			}
		}
		e = newEntry(state)
		if t != nil && t.Flags.Has(packet.FlagsSYNACK) {
			e.sawSYNACK = true
		}
		return e
	}

	if t != nil {
		flags := t.Flags
		switch {
		case flags.Has(packet.FlagsSYNACK):
			e.sawSYNACK = true
			if e.state == CTSynSent || e.state == CTSynRecv {
				e.state = CTEstablished
			}
		case flags.Has(packet.FlagSYN):
			if !dirLocal && e.origin == OriginLocal {
				e.sawRemoteSYN = true
			}
			if e.state == CTSynSent {
				e.state = CTSynRecv
			}
		case flags.Has(packet.FlagACK):
			bareACK := flags == packet.FlagACK && len(t.Payload) == 0
			ackFromOpposite := (e.origin == OriginLocal) != dirLocal
			if bareACK && e.state == CTSynSent && ackFromOpposite {
				// Unsolicited bare ACK from the peer of the opener: restart
				// tracking as a remote-originated (exempt) connection. This
				// is the only reading consistent with both Table 8's
				// "Ls;Ra;Lt -> PASS" and Fig. 4's finding that remote-first
				// sequences are never valid prefixes. Data-bearing ACKs
				// never restart — otherwise every trigger ClientHello would
				// reset the flow it rides on.
				delete(ct.table, key)
				ct.release(e)
				ne := newEntry(CTEstablished)
				ne.origin = OriginRemote
				return ne
			}
			if e.state == CTSynRecv && e.sawSYNACK {
				e.state = CTEstablished
			}
		}
	}
	// Activity refreshes the state timer, but never shortens an active
	// blocking hold.
	exp := now + ct.timeouts.forState(e.state)
	if e.hasBlock && e.block.until > exp {
		exp = e.block.until
	}
	e.expires = exp
	return e
}

// setBlock installs a blocking state on the entry and extends its lifetime
// to cover it.
func (ct *conntrack) setBlock(e *flowEntry, typ BlockType, now time.Duration, allowance int, bucket *tokenBucket) {
	e.hasBlock = true
	e.block = blockState{
		typ:       typ,
		until:     now + ct.timeouts.forBlock(typ),
		allowance: allowance,
		bucket:    bucket,
	}
	if e.block.until > e.expires {
		e.expires = e.block.until
	}
}

// activeBlock returns the entry's blocking state if it has not expired.
func (e *flowEntry) activeBlock(now time.Duration) *blockState {
	if !e.hasBlock || now >= e.block.until {
		return nil
	}
	return &e.block
}

// size reports the number of table entries (including not-yet-swept stale
// ones).
func (ct *conntrack) size() int { return len(ct.table) }
