// Package tspu implements the paper's primary contribution as an executable
// model: the TSPU middlebox. The device is in-path (it can drop and rewrite
// packets, §5.2), stateful (it tracks connection roles and states with the
// measured timeouts of §5.3.3), asymmetric (it blocks only connections that
// originate from the local/Russian side), and centrally controlled (every
// device consumes one Policy distributed by a Controller, reproducing the
// cross-ISP uniformity of §5.1).
//
// Triggers: SNI-based (structural ClientHello parse, four behaviors),
// QUIC-v1 fingerprint, and IP-based blocking. Fragment handling implements
// §5.3.1 exactly: buffer-until-last, forward unreassembled, TTL rewrite to
// the first fragment's TTL, 45-fragment queue limit, duplicate/overlap
// discard, and a 5-second queue timeout.
package tspu

import (
	"bytes"
	"net/netip"
	"sort"
	"strings"
	"time"

	"tspusim/internal/sim"
)

// BlockType enumerates the paper's six blocking behaviors.
//
//tspuvet:closedenum
type BlockType int

// Blocking behaviors (§5.2).
const (
	// SNI1 rewrites remote-to-local packets to payload-stripped RST/ACK
	// after a triggering ClientHello.
	SNI1 BlockType = iota
	// SNI2 allows a handful more packets from either side, then drops
	// symmetrically ("out-registry" domains like play.google.com).
	SNI2
	// SNI3 throttles the flow to ~600-700 bytes/second (the Feb 26 - Mar 4
	// 2022 policy for twitter.com and fbcdn.net).
	SNI3
	// SNI4 is the backup mechanism that drops all packets from both sides,
	// including the trigger, for select Facebook/Twitter domains when SNI1
	// fails to act.
	SNI4
	// QUICBlock drops all packets of a flow after a QUIC v1 initial.
	QUICBlock
	// IPBlock drops or rewrites traffic to/from blocked IPs regardless of
	// payload or port.
	IPBlock
)

func (b BlockType) String() string {
	switch b {
	case SNI1:
		return "SNI-I"
	case SNI2:
		return "SNI-II"
	case SNI3:
		return "SNI-III"
	case SNI4:
		return "SNI-IV"
	case QUICBlock:
		return "QUIC"
	case IPBlock:
		return "IP"
	}
	return "?"
}

// DomainSet matches fully-qualified names exactly and any subdomain of an
// entry (twitter.com matches api.twitter.com). Entries are stored lowercase
// in a string-keyed set; the per-packet path queries it through Match, whose
// byte-slice lookups compile to map accesses without a string conversion
// allocating. Like the rest of the simulator, a DomainSet is not safe for
// concurrent use (Match reuses a scratch buffer for case folding).
type DomainSet struct {
	exact map[string]bool
	// lower is Match's case-normalization scratch, reused across calls.
	lower []byte
}

// NewDomainSet builds a set from entries.
func NewDomainSet(domains ...string) *DomainSet {
	s := &DomainSet{exact: make(map[string]bool, len(domains))}
	s.Add(domains...)
	return s
}

// Add inserts domains.
func (s *DomainSet) Add(domains ...string) {
	for _, d := range domains {
		s.exact[strings.ToLower(strings.TrimSuffix(d, "."))] = true
	}
}

// Remove deletes domains.
func (s *DomainSet) Remove(domains ...string) {
	for _, d := range domains {
		delete(s.exact, strings.ToLower(strings.TrimSuffix(d, ".")))
	}
}

// asciiLower lower-cases ASCII letters only. Lookups fold with this rather
// than strings.ToLower so Contains and Match agree on every input: Unicode
// folding can alias into ASCII (U+212A "K" lowers to "k"), which would let a
// crafted SNI match a set entry under one path and not the other. DNS names
// on the wire are ASCII, so real lookups are unaffected.
func asciiLower(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; 'A' <= c && c <= 'Z' {
			b := []byte(s)
			for j := i; j < len(b); j++ {
				if c := b[j]; 'A' <= c && c <= 'Z' {
					b[j] = c + ('a' - 'A')
				}
			}
			return string(b)
		}
	}
	return s
}

// Contains reports whether name or any parent domain of name is in the set.
func (s *DomainSet) Contains(name string) bool {
	if s == nil {
		return false
	}
	name = asciiLower(strings.TrimSuffix(name, "."))
	for name != "" {
		if s.exact[name] {
			return true
		}
		i := strings.IndexByte(name, '.')
		if i < 0 {
			return false
		}
		name = name[i+1:]
	}
	return false
}

// Match reports whether name (raw SNI bytes: any ASCII case, optional
// trailing dot) or any parent domain of it is in the set. It is the
// allocation-free hot-path form of Contains: suffix candidates index the set
// as byte slices (m[string(b)] map accesses do not allocate), and case
// folding — ASCII only, which is all DNS names on the wire can carry — runs
// in a scratch buffer instead of strings.ToLower. Match never mutates name.
//
//tspuvet:hotpath
func (s *DomainSet) Match(name []byte) bool {
	if s == nil {
		return false
	}
	return s.matchWith(name, &s.lower)
}

// matchWith is Match with caller-owned case-folding scratch: the batch
// engine's lanes pass their own buffers so a policy shared by concurrent
// lanes stays read-only on the packet path. The scratch slice is grown in
// place through the pointer and reused across calls.
//
//tspuvet:hotpath
func (s *DomainSet) matchWith(name []byte, lower *[]byte) bool {
	if s == nil || len(s.exact) == 0 {
		return false
	}
	if n := len(name); n > 0 && name[n-1] == '.' {
		name = name[:n-1]
	}
	for i := 0; i < len(name); i++ {
		if c := name[i]; 'A' <= c && c <= 'Z' {
			buf := append((*lower)[:0], name...)
			for j := i; j < len(buf); j++ {
				if c := buf[j]; 'A' <= c && c <= 'Z' {
					buf[j] = c + ('a' - 'A')
				}
			}
			//tspuvet:allow lanecheck: lower aliases the calling lane's devLane.fold scratch; each lane threads its own buffer, so the write stays lane-private
			*lower = buf
			name = buf
			break
		}
	}
	for len(name) > 0 {
		if s.exact[string(name)] {
			return true
		}
		i := bytes.IndexByte(name, '.')
		if i < 0 {
			return false
		}
		name = name[i+1:]
	}
	return false
}

// Len returns the number of entries.
func (s *DomainSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.exact)
}

// Domains returns the entries in sorted order, so anything rendered from a
// policy (reports, surveys, traces) is independent of map iteration order.
func (s *DomainSet) Domains() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.exact))
	for d := range s.exact {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Clone deep-copies the set.
func (s *DomainSet) Clone() *DomainSet {
	c := NewDomainSet()
	if s != nil {
		for d := range s.exact {
			c.exact[d] = true
		}
	}
	return c
}

// Policy is the centrally-distributed blocking policy that every TSPU device
// enforces. Unlike the per-ISP blocklists of the pre-2019 decentralized
// model, one Policy value is shared verbatim by all devices (§5.1), and it
// may include "out-registry" resources absent from Roskomnadzor's public
// registry.
type Policy struct {
	// Version increments on every controller push.
	Version int
	// SNI1Domains, SNI2Domains, SNI4Domains select the SNI behaviors. SNI4
	// is applied as a backup for its domains when SNI1 cannot act.
	SNI1Domains *DomainSet
	SNI2Domains *DomainSet
	SNI4Domains *DomainSet
	// ThrottleDomains selects SNI-III throttling (active only while
	// ThrottleActive, matching the Feb 26 - Mar 4 window).
	ThrottleDomains *DomainSet
	ThrottleActive  bool
	// ThrottleRate is the SNI-III policing rate in bytes/second (paper:
	// 600-700 B/s; default 650).
	ThrottleRate int
	// BlockedIPs are IP-blocked endpoints (the Tor entry node and six other
	// IPs in the paper), none of which need be in the public registry.
	BlockedIPs map[netip.Addr]bool
	// QUICFilter enables the QUIC v1 fingerprint filter (on since Mar 4).
	QUICFilter bool
}

// NewPolicy returns an empty policy with defaults.
func NewPolicy() *Policy {
	return &Policy{
		SNI1Domains:     NewDomainSet(),
		SNI2Domains:     NewDomainSet(),
		SNI4Domains:     NewDomainSet(),
		ThrottleDomains: NewDomainSet(),
		ThrottleRate:    650,
		BlockedIPs:      make(map[netip.Addr]bool),
		QUICFilter:      true,
	}
}

// Clone deep-copies the policy.
func (p *Policy) Clone() *Policy {
	q := *p
	q.SNI1Domains = p.SNI1Domains.Clone()
	q.SNI2Domains = p.SNI2Domains.Clone()
	q.SNI4Domains = p.SNI4Domains.Clone()
	q.ThrottleDomains = p.ThrottleDomains.Clone()
	q.BlockedIPs = make(map[netip.Addr]bool, len(p.BlockedIPs))
	for ip, v := range p.BlockedIPs {
		q.BlockedIPs[ip] = v
	}
	return &q
}

// Classification is the set of behaviors a domain maps to.
type Classification struct {
	SNI1, SNI2, SNI4, Throttle bool
}

// Any reports whether any behavior applies.
func (c Classification) Any() bool { return c.SNI1 || c.SNI2 || c.SNI4 || c.Throttle }

// Classify maps an SNI value to its blocking behaviors under this policy.
//
//tspuvet:coldpath string-based reference path, used by the reassembly ablation and tests; ClassifyBytes is the hot form
func (p *Policy) Classify(domain string) Classification {
	c := Classification{
		SNI1: p.SNI1Domains.Contains(domain),
		SNI2: p.SNI2Domains.Contains(domain),
		SNI4: p.SNI4Domains.Contains(domain),
	}
	if p.ThrottleActive && p.ThrottleDomains.Contains(domain) {
		c.Throttle = true
	}
	return c
}

// ClassifyBytes is the allocation-free form of Classify for SNI bytes
// aliasing a packet payload. It matches Classify on every ASCII input (DNS
// names are ASCII on the wire); TestClassifyBytesEquivalence pins that.
//
//tspuvet:hotpath
func (p *Policy) ClassifyBytes(domain []byte) Classification {
	c := Classification{
		SNI1: p.SNI1Domains.Match(domain),
		SNI2: p.SNI2Domains.Match(domain),
		SNI4: p.SNI4Domains.Match(domain),
	}
	if p.ThrottleActive && p.ThrottleDomains.Match(domain) {
		c.Throttle = true
	}
	return c
}

// classifyBytesWith is ClassifyBytes with caller-owned fold scratch, for
// device lanes classifying concurrently against one shared policy. One
// buffer serves all four set lookups (they run sequentially per packet).
//
//tspuvet:hotpath
func (p *Policy) classifyBytesWith(domain []byte, lower *[]byte) Classification {
	c := Classification{
		SNI1: p.SNI1Domains.matchWith(domain, lower),
		SNI2: p.SNI2Domains.matchWith(domain, lower),
		SNI4: p.SNI4Domains.matchWith(domain, lower),
	}
	if p.ThrottleActive && p.ThrottleDomains.matchWith(domain, lower) {
		c.Throttle = true
	}
	return c
}

// IPBlocked reports whether addr is IP-blocked.
func (p *Policy) IPBlocked(addr netip.Addr) bool { return p.BlockedIPs[addr] }

// Controller is Roskomnadzor's control plane: it owns the canonical Policy
// and pushes updates to every registered device simultaneously, which is
// what produces the temporal uniformity OONI observed across ISPs (§2).
type Controller struct {
	policy  *Policy
	devices []*Device
}

// NewController creates a controller with an initial policy (cloned).
func NewController(p *Policy) *Controller {
	if p == nil {
		p = NewPolicy()
	}
	return &Controller{policy: p.Clone()}
}

// Policy returns the controller's current policy (callers must not mutate;
// use Update).
func (c *Controller) Policy() *Policy { return c.policy }

// Register attaches a device to this controller and immediately installs the
// current policy.
func (c *Controller) Register(d *Device) {
	c.devices = append(c.devices, d)
	d.policy = c.policy
}

// Devices returns all registered devices.
func (c *Controller) Devices() []*Device { return c.devices }

// Update applies fn to a clone of the current policy, bumps the version, and
// atomically installs the result on every registered device.
func (c *Controller) Update(fn func(*Policy)) {
	next := c.policy.Clone()
	fn(next)
	next.Version = c.policy.Version + 1
	c.policy = next
	for _, d := range c.devices {
		d.policy = next
	}
}

// UpdateStaggered distributes a policy update the way a real control plane
// does: each device installs the new policy after its own small delay drawn
// from [0, maxJitter]. The paper's observers saw exactly this signature —
// blocking onsets across the whole country within a tight window ("temporal
// uniformity... in some sort of centralized way", §2) — in contrast to ISP
// blocklists that lag by days. The returned version identifies the push.
func (c *Controller) UpdateStaggered(s *sim.Sim, rng *sim.Rand, maxJitter time.Duration, fn func(*Policy)) int {
	next := c.policy.Clone()
	fn(next)
	next.Version = c.policy.Version + 1
	c.policy = next
	for _, d := range c.devices {
		d := d
		delay := time.Duration(0)
		if maxJitter > 0 {
			delay = time.Duration(rng.Uint64() % uint64(maxJitter))
		}
		s.After(delay, func() { d.policy = next })
	}
	return next.Version
}
