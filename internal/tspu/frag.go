package tspu

import (
	"sort"
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
)

// fragEngine implements the TSPU's IP fragmentation handling (§5.3.1):
//
//   - Fragments are buffered, keyed by (src, dst, IPID), and forwarded
//     individually — never reassembled — once the final fragment has arrived
//     and coverage is contiguous.
//   - When forwarded, every fragment's TTL is rewritten to the TTL the
//     zero-offset fragment had when it reached the device (Fig. 3). This is
//     the behavior the remote localization technique exploits.
//   - A duplicate or overlapping fragment discards the whole queue.
//   - More than FragLimit (45) fragments discards the whole queue; this
//     unusual limit is the fingerprint of §7.2 (Linux uses 64, Cisco 24,
//     Juniper 250).
//   - Queues missing fragments after the timeout (~5 s) are discarded.
//
//tspuvet:laneowned
type fragEngine struct {
	limit   int
	timeout time.Duration
	queues  map[packet.FragKey]*fragQueue
	// discards counts queues dropped for any reason.
	discards int
	// forwarded counts complete queues released.
	forwarded int
}

//tspuvet:laneowned
type fragQueue struct {
	frags    []*packet.Packet
	pipe     netem.Pipe
	dir      netem.Direction
	firstTTL uint8
	haveTTL  bool
	total    int // transport bytes expected, -1 until final fragment seen
	// poisoned queues swallow all further fragments of the key until the
	// timeout clears the state.
	poisoned bool
}

func newFragEngine(limit int, timeout time.Duration) *fragEngine {
	if limit <= 0 {
		limit = 45
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return &fragEngine{limit: limit, timeout: timeout, queues: make(map[packet.FragKey]*fragQueue)}
}

// handle consumes one fragment. It always returns Drop: surviving fragments
// are re-emitted through the pipe when their queue completes.
//
//tspuvet:coldpath fragment reassembly buffers copies by design; fragments are the evasion case, not the fast path
func (fe *fragEngine) handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	key := packet.FragKeyOf(pkt)
	q, ok := fe.queues[key]
	if !ok {
		q = &fragQueue{pipe: pipe, dir: dir, total: -1}
		fe.queues[key] = q
		// The timeout closure checks queue identity, so a released or
		// replaced queue makes it a no-op; no cancellation handle needed.
		timeoutKey := key
		pipe.After(fe.timeout, func() {
			if cur, live := fe.queues[timeoutKey]; live && cur == q {
				delete(fe.queues, timeoutKey)
				fe.discards++
			}
		})
	}
	if q.poisoned {
		return netem.Drop
	}

	off := int(pkt.IP.FragOffset)
	n := len(pkt.RawPayload)
	if pkt.IP.FragOffset == 0 && pkt.RawPayload == nil {
		n = pkt.PayloadLen()
	}
	// Duplicate or overlap check against every buffered fragment.
	for _, f := range q.frags {
		fo, fn := int(f.IP.FragOffset), fragLen(f)
		if off < fo+fn && fo < off+n {
			q.poison()
			fe.discards++
			return netem.Drop
		}
	}
	if len(q.frags)+1 > fe.limit {
		q.poison()
		fe.discards++
		return netem.Drop
	}

	q.frags = append(q.frags, pkt.Clone())
	if off == 0 {
		q.firstTTL = pkt.IP.TTL
		q.haveTTL = true
	}
	if !pkt.IP.MF {
		q.total = off + n
	}
	if q.complete() {
		fe.release(key, q)
	}
	return netem.Drop
}

func fragLen(f *packet.Packet) int {
	if f.RawPayload != nil {
		return len(f.RawPayload)
	}
	return f.PayloadLen()
}

func (q *fragQueue) poison() {
	q.poisoned = true
	q.frags = nil
}

// complete reports whether the final fragment arrived and coverage is
// contiguous from offset zero.
func (q *fragQueue) complete() bool {
	if q.total < 0 || !q.haveTTL {
		return false
	}
	covered := 0
	sort.Slice(q.frags, func(i, j int) bool { return q.frags[i].IP.FragOffset < q.frags[j].IP.FragOffset })
	for _, f := range q.frags {
		if int(f.IP.FragOffset) != covered {
			return false
		}
		covered += fragLen(f)
	}
	return covered == q.total
}

// release forwards all fragments individually, TTLs rewritten to the first
// fragment's, in offset order.
func (fe *fragEngine) release(key packet.FragKey, q *fragQueue) {
	delete(fe.queues, key)
	fe.forwarded++
	for _, f := range q.frags {
		f.IP.TTL = q.firstTTL
		q.pipe.Inject(f, q.dir)
	}
}

// pending reports the number of open queues.
func (fe *fragEngine) pending() int { return len(fe.queues) }
