package tspu_test

import (
	"fmt"

	"tspusim/internal/netem"
	"tspusim/internal/sim"
	"tspusim/internal/tspu"
)

func ExampleDomainSet_Contains() {
	s := tspu.NewDomainSet("twitter.com")
	fmt.Println(s.Contains("api.twitter.com"))
	fmt.Println(s.Contains("TWITTER.COM."))
	fmt.Println(s.Contains("nottwitter.com"))
	// Output:
	// true
	// true
	// false
}

func ExampleController_Update() {
	clock := sim.New()
	ctl := tspu.NewController(nil)
	perm := tspu.NewDevice(tspu.Config{Name: "perm", Sim: clock, LocalDir: netem.AtoB})
	khabarovsk := tspu.NewDevice(tspu.Config{Name: "khv", Sim: clock, LocalDir: netem.AtoB})
	ctl.Register(perm)
	ctl.Register(khabarovsk)

	ctl.Update(func(p *tspu.Policy) { p.SNI1Domains.Add("meduza.io") })

	// Every device in the country now enforces the same policy version.
	fmt.Println(perm.Policy().Version, perm.Policy().SNI1Domains.Contains("meduza.io"))
	fmt.Println(khabarovsk.Policy().Version, khabarovsk.Policy().SNI1Domains.Contains("news.meduza.io"))
	// Output:
	// 1 true
	// 1 true
}

func ExamplePolicy_Classify() {
	p := tspu.NewPolicy()
	p.SNI1Domains.Add("twitter.com")
	p.SNI4Domains.Add("twitter.com")
	c := p.Classify("mobile.twitter.com")
	fmt.Printf("SNI-I=%v SNI-II=%v SNI-IV=%v\n", c.SNI1, c.SNI2, c.SNI4)
	// Output: SNI-I=true SNI-II=false SNI-IV=true
}
