package tspu

import "time"

// timeWheel is the per-shard expiry index that replaces the global map-scan
// sweep: a ring of time buckets, one per wheelGran of virtual time, holding
// generation-checked references to flowEntries whose expiry falls in that
// bucket's window. Sweeping advances the ring to the current time and visits
// only the buckets that elapsed, so reclaim cost is proportional to the flows
// that actually expired — not to the size of the table, which is what makes
// million-flow conntracks sweepable at line rate.
//
// The wheel is deliberately lazy: an entry is inserted once at creation and
// never moved when activity or a blocking hold extends its expiry (expiry is
// monotonically nondecreasing — states only lengthen and the clock only
// advances). When its original bucket fires, a still-live entry is simply
// re-bucketed at its current expiry. An entry released for any other reason
// (lazy lookup expiry, pressure eviction, the bare-ACK restart) bumps its
// generation, turning the stale wheel reference into a no-op — the same
// discipline sim.Timer uses for pooled events.
const (
	// wheelGran is the bucket width. Table 2's timeouts are whole seconds,
	// so nothing is gained by finer buckets.
	wheelGran = time.Second
	// wheelSlots is the ring size. At 1 s per slot it spans 512 s, past the
	// longest measured lifetime (ESTABLISHED / SNI-II / QUIC at 480 s);
	// expiries beyond the horizon clamp to the far edge and re-bucket when
	// it fires.
	wheelSlots = 512
)

//tspuvet:laneowned
type wheelRef struct {
	e   *flowEntry
	gen uint32
}

// timeWheel indexes a shard's entries by expiry; it lives inside a ctShard
// and is only ever advanced by the lane that owns that shard.
//
//tspuvet:laneowned
type timeWheel struct {
	slots [][]wheelRef
	// base is the start of slots[cursor]'s window.
	base   time.Duration
	cursor int
	// live counts references currently on the wheel, so an advance over a
	// long idle gap can skip slot-by-slot walking when nothing is queued.
	live int
}

func (w *timeWheel) init() {
	w.slots = make([][]wheelRef, wheelSlots)
}

// insert queues e for an expiry check at its current expires time.
//
//tspuvet:hotpath
func (w *timeWheel) insert(e *flowEntry) {
	idx := 0
	if e.expires > w.base {
		idx = int((e.expires - w.base) / wheelGran)
		if idx >= wheelSlots {
			idx = wheelSlots - 1
		}
	}
	slot := (w.cursor + idx) & (wheelSlots - 1)
	w.slots[slot] = append(w.slots[slot], wheelRef{e: e, gen: e.gen})
	w.live++
}

// advance retires every bucket whose window ended at or before now, expiring
// dead entries from the shard and re-bucketing live ones, then checks the
// current (partial) bucket so the post-condition matches the map-scan sweep
// exactly: after advance(now) no entry with expires <= now remains. Returns
// the number of entries reclaimed.
//
//tspuvet:coldpath sweep housekeeping, rate-limited to once per sweep interval
func (sh *ctShard) advanceWheel(now time.Duration) int {
	w := &sh.wheel
	reclaimed := 0
	for w.base+wheelGran <= now {
		if w.live == 0 {
			// Nothing queued anywhere: jump the ring to now in one step.
			w.base = now - (now % wheelGran)
			break
		}
		cur := w.cursor
		// Detach the bucket before processing: a re-insert with a clamped
		// (beyond-horizon) expiry maps back to this very slot index, and must
		// land in a fresh bucket rather than the one being drained.
		slot := w.slots[cur]
		w.slots[cur] = nil
		w.live -= len(slot)
		w.base += wheelGran
		w.cursor = (cur + 1) & (wheelSlots - 1)
		for _, ref := range slot {
			reclaimed += sh.checkRef(ref, now)
		}
		if w.slots[cur] == nil {
			// No clamped re-insert reused the index: zero the drained refs so
			// they pin nothing and hand the capacity back to the ring.
			for i := range slot {
				slot[i] = wheelRef{}
			}
			w.slots[cur] = slot[:0]
		}
	}
	// Partial bucket: entries expiring inside the current window need a
	// check too, without retiring the bucket.
	cur := w.slots[w.cursor]
	kept := cur[:0]
	for _, ref := range cur {
		if ref.e.gen != ref.gen {
			w.live-- // stale: entry already released elsewhere
			continue
		}
		if ref.e.expires <= now {
			reclaimed += sh.checkRef(ref, now)
			w.live--
			continue
		}
		kept = append(kept, ref)
	}
	// Zero the dropped tail so released entries are not pinned by the slice.
	for i := len(kept); i < len(cur); i++ {
		cur[i] = wheelRef{}
	}
	w.slots[w.cursor] = kept
	return reclaimed
}

// checkRef resolves one wheel reference: stale references (the entry was
// released and possibly reused since) are dropped, expired entries are
// reclaimed, and still-live entries are re-bucketed at their extended expiry.
func (sh *ctShard) checkRef(ref wheelRef, now time.Duration) int {
	e := ref.e
	if e.gen != ref.gen {
		return 0 // entry was released by lookup/pressure/restart; ref is dead
	}
	if e.expires <= now {
		delete(sh.table, e.key)
		sh.evictions++
		sh.release(e)
		return 1
	}
	sh.wheel.insert(e)
	return 0
}
