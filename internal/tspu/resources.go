package tspu

import (
	"time"

	"tspusim/internal/packet"
)

// Resource management. §8 closes on the observation that the TSPU trades
// resistance to evasion for cheap, commodity hardware near users: it does
// not reassemble TCP, and its ability to "patch" evasions depends on
// whether it is "provisioned with enough computation and memory resources".
// This file makes that trade-off concrete: a bounded flow table with FIFO
// pressure eviction, and a periodic sweeper that reclaims expired state.
// With a bound configured, a state-exhaustion flood can evict an active
// blocking entry — turning the provisioning question into a measurable
// evasion.

// capacity bookkeeping lives on the conntrack.
type capacityState struct {
	maxFlows int
	// fifo holds insertion order for pressure eviction; stale keys are
	// skipped at pop time.
	fifo []packet.FlowKey4
	// pressureEvictions counts entries evicted to make room.
	pressureEvictions int
}

// SetMaxFlows bounds the device's flow table. Zero means unlimited (the
// default, i.e. a well-provisioned device).
func (d *Device) SetMaxFlows(n int) {
	d.ct.cap.maxFlows = n
}

// PressureEvictions reports how many entries were evicted to make room.
func (d *Device) PressureEvictions() int { return d.ct.cap.pressureEvictions }

// noteInsert records a new entry and, if over capacity, evicts the oldest
// live entry that is not the one just inserted. Insertion order is tracked
// even while unbounded, so enabling a bound later still has candidates; the
// loop always consumes one queued key per iteration (the just-inserted key
// terminates it), so it cannot spin even when the table holds entries the
// queue no longer covers.
func (ct *conntrack) noteInsert(key packet.FlowKey4) {
	c := &ct.cap
	c.fifo = append(c.fifo, key)
	if c.maxFlows <= 0 {
		return
	}
	for len(ct.table) > c.maxFlows && len(c.fifo) > 0 {
		victim := c.fifo[0]
		c.fifo = c.fifo[1:]
		if victim == key {
			// Never evict the entry being inserted; put it back and stop —
			// everything older in the queue is already gone.
			c.fifo = append(c.fifo, victim)
			return
		}
		if ve, live := ct.table[victim]; live {
			delete(ct.table, victim)
			ct.release(ve)
			c.pressureEvictions++
		}
	}
}

// Sweep removes expired entries immediately instead of waiting for lazy
// eviction on next access; it returns the number reclaimed. Long scans
// otherwise leave large tables of dead flows.
//
//tspuvet:coldpath periodic housekeeping, rate-limited to once per sweep interval
func (ct *conntrack) Sweep(now time.Duration) int {
	n := 0
	for k, e := range ct.table {
		if now >= e.expires {
			delete(ct.table, k)
			ct.release(e)
			n++
		}
	}
	ct.evictions += n
	// Compact the insertion queue: drop keys whose entries are gone so it
	// does not grow with total churn.
	live := ct.cap.fifo[:0]
	for _, k := range ct.cap.fifo {
		if _, ok := ct.table[k]; ok {
			live = append(live, k)
		}
	}
	ct.cap.fifo = live
	return n
}

// Sweep reclaims expired conntrack entries and fragment queues.
func (d *Device) Sweep() int {
	return d.ct.Sweep(d.now())
}

// EnableAutoSweep makes the device sweep at most once per interval,
// piggybacked on packet handling — housekeeping rides the datapath rather
// than pinning the event loop with a self-rescheduling timer (which would
// keep the simulation alive forever).
func (d *Device) EnableAutoSweep(interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	d.sweepEvery = interval
	d.lastSweep = d.now()
}

// maybeSweep runs from the datapath.
func (d *Device) maybeSweep(now time.Duration) {
	if d.sweepEvery <= 0 || now-d.lastSweep < d.sweepEvery {
		return
	}
	d.lastSweep = now
	d.ct.Sweep(now)
}
