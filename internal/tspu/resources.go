package tspu

import (
	"time"

	"tspusim/internal/packet"
)

// Resource management. §8 closes on the observation that the TSPU trades
// resistance to evasion for cheap, commodity hardware near users: it does
// not reassemble TCP, and its ability to "patch" evasions depends on
// whether it is "provisioned with enough computation and memory resources".
// This file makes that trade-off concrete: a bounded flow table with FIFO
// pressure eviction, and a sweeper that reclaims expired state. With a bound
// configured, a state-exhaustion flood can evict an active blocking entry —
// turning the provisioning question into a measurable evasion.

// capacity bookkeeping lives on each conntrack shard.
type capacityState struct {
	maxFlows int
	// fifo holds insertion order for pressure eviction; stale keys are
	// skipped at pop time.
	fifo []packet.FlowKey4
	// pressureEvictions counts entries evicted to make room.
	pressureEvictions int
}

// SetMaxFlows bounds the device's flow table. Zero means unlimited (the
// default, i.e. a well-provisioned device). With a sharded table the bound is
// divided evenly across shards (rounded up), so the aggregate bound is at
// least n and memory pressure is felt locally — a hot host pair exhausts its
// shard the way a hot TSPU exhausts one box, not the whole deployment.
func (d *Device) SetMaxFlows(n int) {
	shards := len(d.ct.shards)
	per := n
	if n > 0 && shards > 1 {
		per = (n + shards - 1) / shards
	}
	for i := range d.ct.shards {
		d.ct.shards[i].cap.maxFlows = per
	}
}

// PressureEvictions reports how many entries were evicted to make room.
func (d *Device) PressureEvictions() int {
	n := 0
	for i := range d.ct.shards {
		n += d.ct.shards[i].cap.pressureEvictions
	}
	return n
}

// noteInsert records a new entry and, if over capacity, evicts the oldest
// live entry that is not the one just inserted. Insertion order is tracked
// even while unbounded, so enabling a bound later still has candidates; the
// loop always consumes one queued key per iteration (the just-inserted key
// terminates it), so it cannot spin even when the table holds entries the
// queue no longer covers.
func (sh *ctShard) noteInsert(key packet.FlowKey4) {
	c := &sh.cap
	c.fifo = append(c.fifo, key)
	if c.maxFlows <= 0 {
		return
	}
	for len(sh.table) > c.maxFlows && len(c.fifo) > 0 {
		victim := c.fifo[0]
		c.fifo = c.fifo[1:]
		if victim == key {
			// Never evict the entry being inserted; put it back and stop —
			// everything older in the queue is already gone.
			c.fifo = append(c.fifo, victim)
			return
		}
		if ve, live := sh.table[victim]; live {
			delete(sh.table, victim)
			sh.release(ve)
			c.pressureEvictions++
		}
	}
}

// compactFIFO drops queued keys whose entries are gone so the insertion
// queue does not grow with total churn.
func (sh *ctShard) compactFIFO() {
	live := sh.cap.fifo[:0]
	for _, k := range sh.cap.fifo {
		if _, ok := sh.table[k]; ok {
			live = append(live, k)
		}
	}
	sh.cap.fifo = live
}

// Sweep removes expired entries immediately instead of waiting for lazy
// eviction on next access; it returns the number reclaimed. Each shard
// advances its timeout wheel, visiting only the buckets that elapsed —
// reclaim cost scales with expired flows, not table size.
//
//tspuvet:coldpath periodic housekeeping, rate-limited to once per sweep interval
func (ct *conntrack) Sweep(now time.Duration) int {
	n := 0
	for i := range ct.shards {
		sh := &ct.shards[i]
		n += sh.advanceWheel(now)
		sh.compactFIFO()
	}
	return n
}

// sweepScan is the pre-wheel full-table scan, kept as the equivalence oracle
// for the timeout wheel: after either sweep, no entry with expires <= now
// remains, and both report the same reclaim count on the same table state.
//
//tspuvet:coldpath test oracle for wheel-vs-scan sweep equivalence
func (ct *conntrack) sweepScan(now time.Duration) int {
	n := 0
	for i := range ct.shards {
		sh := &ct.shards[i]
		reclaimed := 0
		for k, e := range sh.table {
			if now >= e.expires {
				delete(sh.table, k)
				sh.release(e)
				reclaimed++
			}
		}
		sh.evictions += reclaimed
		sh.compactFIFO()
		n += reclaimed
	}
	return n
}

// Sweep reclaims expired conntrack entries and fragment queues.
func (d *Device) Sweep() int {
	return d.ct.Sweep(d.now())
}

// ConntrackEvictions reports how many entries have been reclaimed by timeout
// (sweeps and lazy expiry on access), as opposed to capacity pressure.
func (d *Device) ConntrackEvictions() int { return d.ct.evictionCount() }

// ConntrackPoolStats exposes the per-shard entry-pool counters, aggregated:
// fresh allocations, freelist reuses, and entries currently parked. At scale
// the invariant of interest is allocs ≈ peak concurrency even when total
// churned flows are far larger — steady-state churn must be served by reuse.
func (d *Device) ConntrackPoolStats() (allocs, reuses uint64, pooled int) {
	return d.ct.poolStats()
}

// EnableAutoSweep makes each lane sweep its own conntrack shard at most once
// per interval, piggybacked on packet handling — housekeeping rides the
// datapath rather than pinning the event loop with a self-rescheduling timer
// (which would keep the simulation alive forever), and stays lane-local so
// the batch engine's workers never sweep each other's shards.
func (d *Device) EnableAutoSweep(interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	d.sweepEvery = interval
	now := d.now()
	for i := range d.lanes {
		d.lanes[i].lastSweep = now
	}
}
