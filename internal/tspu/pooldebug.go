//go:build pooldebug

package tspu

// Pool poisoning (-tags=pooldebug): a released flowEntry is scribbled with
// sentinel values so a stale pointer that keeps using it trips an explicit
// panic instead of silently reading whatever flow reused the slot. The
// normal build compiles these hooks to no-ops (pooldebug_off.go), so the
// datapath and its alloc budgets are unaffected.
//
// The poison works with, not instead of, the generation bump in release():
// gen-carrying references (timeWheel) already self-invalidate; the scribble
// catches the raw *flowEntry aliases the generation cannot see.

// poisonedState is far outside the ConnState enum; any guarded access to an
// entry carrying it panics.
const poisonedState ConnState = 0x7D

// poisonEntry scribbles a just-released entry. Called by release() after the
// zeroing wipe and generation bump, so gen survives.
func poisonEntry(e *flowEntry) {
	e.state = poisonedState
	e.expires = -1
	e.rollSeq = 0xDDDDDDDD
	e.immune = 0xDD
}

// unpoisonEntry restores a pooled entry to the zero state allocEntry's
// callers expect, keeping the bumped generation.
func unpoisonEntry(e *flowEntry) {
	g := e.gen
	*e = flowEntry{}
	e.gen = g
}

// checkLive panics when a poisoned (already released) entry is used. Wired
// into release (double release), lookup's map hit (a released entry still in
// the table), and activeBlock (the first deref every blocked-flow packet
// makes), so stale aliases trip on their next datapath touch.
func (e *flowEntry) checkLive(op string) {
	if e.state == poisonedState {
		panic("tspu: pooled flowEntry " + op + " after release (pooldebug)")
	}
}
