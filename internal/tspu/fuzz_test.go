package tspu

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

// nullPipe satisfies netem.Pipe for direct Handle fuzzing.
type nullPipe struct{ s *sim.Sim }

func (p nullPipe) Inject(pkt *packet.Packet, dir netem.Direction) {}
func (p nullPipe) Now() time.Duration                             { return p.s.Now() }
func (p nullPipe) After(d time.Duration, fn func())               {}

// fuzzDevice builds a device with a policy exercising all trigger kinds.
func fuzzDevice() (*Device, *sim.Sim) {
	s := sim.New()
	d := NewDevice(Config{Sim: s, LocalDir: netem.AtoB})
	ctl := NewController(nil)
	ctl.Register(d)
	ctl.Update(func(p *Policy) {
		p.SNI1Domains.Add("a.com")
		p.SNI2Domains.Add("b.com")
		p.SNI4Domains.Add("a.com")
		p.ThrottleDomains.Add("c.com")
		p.ThrottleActive = true
		p.BlockedIPs[packet.MustAddr("198.51.100.7")] = true
	})
	return d, s
}

// TestDeviceNeverPanics pushes structurally arbitrary packets through the
// full datapath: random flags, seq/ack, ports, payloads (including byte
// soup that the ClientHello parser must survive), fragments with random
// offsets, UDP, and ICMP — in both directions.
func TestDeviceNeverPanics(t *testing.T) {
	d, s := fuzzDevice()
	pipe := nullPipe{s}
	addrs := []netip.Addr{
		packet.MustAddr("10.0.0.2"), packet.MustAddr("203.0.113.10"),
		packet.MustAddr("198.51.100.7"),
	}
	f := func(proto uint8, sport, dport uint16, flags uint8, off uint16, mf bool, payload []byte, srcI, dstI uint8, dirB bool) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("device panicked: %v", r)
			}
		}()
		src := addrs[int(srcI)%len(addrs)]
		dst := addrs[int(dstI)%len(addrs)]
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		var pkt *packet.Packet
		switch proto % 4 {
		case 0:
			pkt = packet.NewTCP(src, dst, sport, dport, packet.TCPFlags(flags), uint32(off), 0, payload)
		case 1:
			pkt = packet.NewUDP(src, dst, sport, dport, payload)
		case 2:
			pkt = packet.NewICMPEcho(src, dst, sport, dport)
		default:
			pkt = packet.NewTCP(src, dst, sport, dport, packet.FlagSYN, 1, 0, payload)
			pkt.IP.FragOffset = (off % 2048) &^ 7
			pkt.IP.MF = mf
			pkt.RawPayload = payload
			pkt.TCP = nil
		}
		dir := netem.AtoB
		if dirB {
			dir = netem.BtoA
		}
		d.Handle(pipe, pkt, dir)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestDevicePayloadSoupNoFalseTriggers verifies random payloads to :443
// never match the SNI policy (the parser rejects them) and never panic.
func TestDevicePayloadSoupNoFalseTriggers(t *testing.T) {
	d, s := fuzzDevice()
	pipe := nullPipe{s}
	src := packet.MustAddr("10.0.0.2")
	dst := packet.MustAddr("203.0.113.10")
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		pkt := packet.NewTCP(src, dst, 40000, 443, packet.FlagsPSHACK, 1, 1, payload)
		d.Handle(pipe, pkt, netem.AtoB)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	for _, typ := range []BlockType{SNI1, SNI2, SNI3, SNI4} {
		if st.Triggers[typ] != 0 {
			t.Fatalf("random payloads triggered %v %d times", typ, st.Triggers[typ])
		}
	}
}

// TestConntrackInvariants property-checks the state machine: entries always
// carry a future expiry, origin never flips without a restart, and the
// table never leaks on lookup-expiry.
func TestConntrackInvariants(t *testing.T) {
	ct := newConntrack(DefaultTimeouts())
	local := packet.MustAddr("10.0.0.2")
	remote := packet.MustAddr("203.0.113.10")
	now := time.Duration(0)
	f := func(flagsRaw uint8, fromLocal bool, advance uint16) bool {
		now += time.Duration(advance) * time.Millisecond
		flags := packet.TCPFlags(flagsRaw)
		var p *packet.Packet
		if fromLocal {
			p = packet.NewTCP(local, remote, 1000, 443, flags, 1, 1, nil)
		} else {
			p = packet.NewTCP(remote, local, 443, 1000, flags, 1, 1, nil)
		}
		key := packet.FlowOf(p).Canonical()
		e := ct.observe(p, key, fromLocal, now)
		if e == nil {
			return false
		}
		if e.expires <= now {
			return false // entry must outlive its creation instant
		}
		if e.state != CTSynSent && e.state != CTSynRecv && e.state != CTEstablished {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
