package tspu

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

// nullPipe satisfies netem.Pipe for direct Handle fuzzing.
type nullPipe struct{ s *sim.Sim }

func (p nullPipe) Inject(pkt *packet.Packet, dir netem.Direction) {}
func (p nullPipe) Now() time.Duration                             { return p.s.Now() }
func (p nullPipe) After(d time.Duration, fn func())               {}

// fuzzDevice builds a device with a policy exercising all trigger kinds.
func fuzzDevice() (*Device, *sim.Sim) {
	s := sim.New()
	d := NewDevice(Config{Sim: s, LocalDir: netem.AtoB})
	ctl := NewController(nil)
	ctl.Register(d)
	ctl.Update(func(p *Policy) {
		p.SNI1Domains.Add("a.com")
		p.SNI2Domains.Add("b.com")
		p.SNI4Domains.Add("a.com")
		p.ThrottleDomains.Add("c.com")
		p.ThrottleActive = true
		p.BlockedIPs[packet.MustAddr("198.51.100.7")] = true
	})
	return d, s
}

// TestDeviceNeverPanics pushes structurally arbitrary packets through the
// full datapath: random flags, seq/ack, ports, payloads (including byte
// soup that the ClientHello parser must survive), fragments with random
// offsets, UDP, and ICMP — in both directions.
func TestDeviceNeverPanics(t *testing.T) {
	d, s := fuzzDevice()
	pipe := nullPipe{s}
	addrs := []netip.Addr{
		packet.MustAddr("10.0.0.2"), packet.MustAddr("203.0.113.10"),
		packet.MustAddr("198.51.100.7"),
	}
	f := func(proto uint8, sport, dport uint16, flags uint8, off uint16, mf bool, payload []byte, srcI, dstI uint8, dirB bool) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("device panicked: %v", r)
			}
		}()
		src := addrs[int(srcI)%len(addrs)]
		dst := addrs[int(dstI)%len(addrs)]
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		var pkt *packet.Packet
		switch proto % 4 {
		case 0:
			pkt = packet.NewTCP(src, dst, sport, dport, packet.TCPFlags(flags), uint32(off), 0, payload)
		case 1:
			pkt = packet.NewUDP(src, dst, sport, dport, payload)
		case 2:
			pkt = packet.NewICMPEcho(src, dst, sport, dport)
		default:
			pkt = packet.NewTCP(src, dst, sport, dport, packet.FlagSYN, 1, 0, payload)
			pkt.IP.FragOffset = (off % 2048) &^ 7
			pkt.IP.MF = mf
			pkt.RawPayload = payload
			pkt.TCP = nil
		}
		dir := netem.AtoB
		if dirB {
			dir = netem.BtoA
		}
		d.Handle(pipe, pkt, dir)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestDevicePayloadSoupNoFalseTriggers verifies random payloads to :443
// never match the SNI policy (the parser rejects them) and never panic.
func TestDevicePayloadSoupNoFalseTriggers(t *testing.T) {
	d, s := fuzzDevice()
	pipe := nullPipe{s}
	src := packet.MustAddr("10.0.0.2")
	dst := packet.MustAddr("203.0.113.10")
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		pkt := packet.NewTCP(src, dst, 40000, 443, packet.FlagsPSHACK, 1, 1, payload)
		d.Handle(pipe, pkt, netem.AtoB)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	for _, typ := range []BlockType{SNI1, SNI2, SNI3, SNI4} {
		if st.Triggers[typ] != 0 {
			t.Fatalf("random payloads triggered %v %d times", typ, st.Triggers[typ])
		}
	}
}

// capturePipe records forwarded packets and schedules timeouts on the
// virtual clock, so fuzzed fragment sequences can assert on what a queue
// released and that drained timeouts leave no state behind.
type capturePipe struct {
	s        *sim.Sim
	injected []*packet.Packet
}

func (p *capturePipe) Inject(pkt *packet.Packet, dir netem.Direction) {
	//tspuvet:retains the fuzz harness owns released fragments; the engine cloned them on buffering, so nothing downstream aliases these
	p.injected = append(p.injected, pkt)
}
func (p *capturePipe) Now() time.Duration               { return p.s.Now() }
func (p *capturePipe) After(d time.Duration, fn func()) { p.s.After(d, fn) }

// FuzzFragEngine drives the §5.3.1 fragment queue with arbitrary fragment
// sequences: each 4 input bytes decode to one fragment (flow, 8-aligned
// offset, length, more-fragments flag, TTL). Invariants: the engine never
// panics, released queues forward at least one fragment each, and once the
// virtual clock drains every queue timeout, no queue state survives.
//
// Run with: go test -fuzz=FuzzFragEngine ./internal/tspu
func FuzzFragEngine(f *testing.F) {
	f.Add([]byte{0, 1, 1, 64, 8, 1, 0, 64})              // two fragments, complete in order
	f.Add([]byte{8, 1, 0, 64, 0, 1, 1, 64})              // complete, final first
	f.Add([]byte{0, 2, 1, 64, 0, 2, 1, 64})              // duplicate => poisoned queue
	f.Add([]byte{0, 1, 1, 7, 8, 1, 1, 200, 16, 1, 0, 9}) // TTL rewrite material
	f.Fuzz(func(t *testing.T, data []byte) {
		s := sim.New()
		pipe := &capturePipe{s: s}
		fe := newFragEngine(0, 0) // paper defaults: 45 fragments, 5 s
		src := packet.MustAddr("10.0.0.2")
		dst := packet.MustAddr("203.0.113.10")
		for i := 0; i+4 <= len(data) && i < 4*64; i += 4 {
			off, ln, ctl, ttl := data[i], data[i+1], data[i+2], data[i+3]
			payload := make([]byte, 8*(1+int(ln)%8))
			pkt := packet.NewTCP(src, dst, 40000, 443, packet.FlagSYN, 1, 0, nil)
			pkt.TCP = nil
			pkt.RawPayload = payload
			pkt.IP.FragOffset = uint16(off%64) * 8
			pkt.IP.MF = ctl&1 == 1
			pkt.IP.TTL = ttl
			pkt.IP.ID = uint16(ctl >> 1 & 3) // up to four interleaved flows
			if got := fe.handle(pipe, pkt, netem.AtoB); got != netem.Drop {
				t.Fatalf("handle returned %v; fragments must always be consumed", got)
			}
		}
		if fe.forwarded > 0 && len(pipe.injected) < fe.forwarded {
			t.Fatalf("%d queues released but only %d fragments forwarded", fe.forwarded, len(pipe.injected))
		}
		s.Run() // fire every queue timeout on the virtual clock
		if fe.pending() != 0 {
			t.Fatalf("%d fragment queues leaked past their timeout", fe.pending())
		}
	})
}

// FuzzPolicyMatch drives the SNI/domain matcher with arbitrary byte-soup
// domains: insertion is always observable (exact and subdomain matches),
// removal always clears it, and nothing panics on non-UTF-8 input.
//
// Run with: go test -fuzz=FuzzPolicyMatch ./internal/tspu
func FuzzPolicyMatch(f *testing.F) {
	f.Add("twitter.com", "api.twitter.com")
	f.Add("TWITTER.com.", "twitter.com")
	f.Add(".com", "a..com")
	f.Add("", "\xff\xfe")
	f.Fuzz(func(t *testing.T, domain, name string) {
		s := NewDomainSet(domain)
		if s.Len() != 1 {
			t.Fatalf("Len() = %d after inserting one domain", s.Len())
		}
		s.Contains(name) // must not panic, whatever the bytes
		normalized := strings.ToLower(strings.TrimSuffix(domain, "."))
		if normalized != "" {
			if !s.Contains(domain) {
				t.Fatalf("Contains(%q) = false right after Add", domain)
			}
			if !s.Contains("sub." + normalized) {
				t.Fatalf("subdomain sub.%q did not match", normalized)
			}
		}
		s.Remove(domain)
		if s.Contains(domain) {
			t.Fatalf("Contains(%q) = true after Remove", domain)
		}
		if s.Len() != 0 {
			t.Fatalf("Len() = %d after Remove", s.Len())
		}
	})
}

// TestConntrackInvariants property-checks the state machine: entries always
// carry a future expiry, origin never flips without a restart, and the
// table never leaks on lookup-expiry.
func TestConntrackInvariants(t *testing.T) {
	ct := newConntrack(DefaultTimeouts())
	local := packet.MustAddr("10.0.0.2")
	remote := packet.MustAddr("203.0.113.10")
	now := time.Duration(0)
	f := func(flagsRaw uint8, fromLocal bool, advance uint16) bool {
		now += time.Duration(advance) * time.Millisecond
		flags := packet.TCPFlags(flagsRaw)
		var p *packet.Packet
		if fromLocal {
			p = packet.NewTCP(local, remote, 1000, 443, flags, 1, 1, nil)
		} else {
			p = packet.NewTCP(remote, local, 443, 1000, flags, 1, 1, nil)
		}
		e := ct.observe(p, fromLocal, now)
		if e == nil {
			return false
		}
		if e.expires <= now {
			return false // entry must outlive its creation instant
		}
		if e.state != CTSynSent && e.state != CTSynRecv && e.state != CTEstablished {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
