package tspu

import (
	"bytes"
	"testing"

	"tspusim/internal/tlsx"
)

// FuzzSNIExtract differentially fuzzes the zero-allocation SNI fast path the
// device now runs (tlsx.ExtractSNI + Policy.ClassifyBytes) against the
// retained reference (tlsx.ParseClientHello + Policy.Classify) on arbitrary
// bytes. Any input where the two disagree — on whether an SNI exists, on its
// bytes, or on the resulting classification — is a datapath divergence the
// equivalence property tests might not have generated.
//
// Run with: go test -fuzz=FuzzSNIExtract ./internal/tspu
func FuzzSNIExtract(f *testing.F) {
	seeds := []*tlsx.ClientHelloSpec{
		{ServerName: "twitter.com"},
		{ServerName: "API.TWITTER.COM."},
		{ServerName: "play.google.com", ALPN: []string{"h2", "http/1.1"}},
		{ServerName: "facebook.com", PaddingLen: 300},
		{ServerName: "fbcdn.net", PrependRecord: true},
		{ServerName: "x.org", SessionID: bytes.Repeat([]byte{9}, 32)},
		{ECH: true},
		{},
	}
	for _, s := range seeds {
		b := s.Build()
		f.Add(b)
		if len(b) > 8 {
			f.Add(b[:len(b)/2]) // truncated handshake
			f.Add(b[:5])        // bare record header
		}
	}
	f.Add([]byte{0x16})
	f.Add(bytes.Repeat([]byte{0xab}, 64))

	p := NewPolicy()
	p.SNI1Domains.Add("facebook.com", "twitter.com")
	p.SNI2Domains.Add("play.google.com")
	p.SNI4Domains.Add("fbcdn.net")
	p.ThrottleDomains.Add("twitter.com")
	p.ThrottleActive = true

	f.Fuzz(func(t *testing.T, data []byte) {
		sni, found := tlsx.ExtractSNI(data)
		info, err := tlsx.ParseClientHello(data)
		refFound := err == nil && info.ServerName != ""
		if found != refFound {
			t.Fatalf("ExtractSNI found=%v but ParseClientHello found=%v (err=%v)", found, refFound, err)
		}
		if !found {
			return
		}
		if string(sni) != info.ServerName {
			t.Fatalf("ExtractSNI = %q, ParseClientHello = %q", sni, info.ServerName)
		}
		// The classification the device acts on must agree too (this covers
		// Match vs Contains on whatever byte soup the SNI field carries —
		// including non-ASCII bytes, where both sides must still agree because
		// the set is pure ASCII).
		if got, want := p.ClassifyBytes(sni), p.Classify(info.ServerName); got != want {
			t.Fatalf("ClassifyBytes(%q) = %+v, Classify = %+v", sni, got, want)
		}
	})
}
