package tspu

import (
	"testing"
	"time"

	"tspusim/internal/packet"
)

// --- token-bucket unit behavior (§5.2: policing, not shaping) ---

func TestTokenBucketBurstThenPolice(t *testing.T) {
	tb := newTokenBucket(650, 0, 0)
	if !tb.admit(1460, 0) {
		t.Fatal("one MSS must pass on the initial burst")
	}
	if tb.admit(1, 0) {
		t.Fatal("drained bucket must police the very next byte")
	}
	if !tb.admit(0, 0) {
		t.Fatal("zero-length packets (pure ACKs) must always conform")
	}
}

func TestTokenBucketRefillRate(t *testing.T) {
	tb := newTokenBucket(650, 0, 0)
	tb.admit(1460, 0) // drain the burst
	if tb.admit(651, time.Second) {
		t.Fatal("one second refills exactly 650 bytes; 651 must not conform")
	}
	if !tb.admit(650, time.Second) {
		t.Fatal("one second of refill must admit 650 bytes")
	}
	if !tb.admit(1300, 3*time.Second) {
		t.Fatal("two further seconds must admit 1300 bytes")
	}
}

func TestTokenBucketRefillCappedAtBurst(t *testing.T) {
	tb := newTokenBucket(650, 0, 0)
	tb.admit(1460, 0)
	if tb.admit(1461, time.Hour) {
		t.Fatal("idle refill must cap at one burst")
	}
	if !tb.admit(1460, time.Hour) {
		t.Fatal("a full burst must be available after long idle")
	}
}

func TestTokenBucketBurstScalesWithRate(t *testing.T) {
	// The 2021 Twitter policy (~130 kbps ≈ 16250 B/s) needs headroom above
	// one MSS or full-sized packets would starve.
	tb := newTokenBucket(16250, 0, 0)
	if !tb.admit(4062, 0) {
		t.Fatal("burst must scale to rate/4 for high policing rates")
	}
	if tb.admit(1, 0) {
		t.Fatal("burst must be exactly rate/4 = 4062 bytes")
	}
}

// --- device-level SNI-III activation and rate, on the virtual clock ---

// newThrottleLab is the standard lab with the SNI-III campaign switched on
// (§5.2: throttling was active only in the Feb 26–Mar 4 window).
func newThrottleLab(t *testing.T) *lab {
	t.Helper()
	l := newLab(t, nil)
	l.ctl.Update(func(p *Policy) { p.ThrottleActive = true })
	return l
}

// throttleSegment builds one client→server TCP segment on the 41000→443
// flow the activation tests use.
func throttleSegment(l *lab, flags packet.TCPFlags, payload []byte) *packet.Packet {
	return packet.NewTCP(l.client.Addr(), l.server.Addr(), 41000, 443, flags, 1, 0, payload)
}

func TestThrottleActivationNeedsFlagAndDomain(t *testing.T) {
	cases := []struct {
		name    string
		active  bool
		domain  string
		trigger int
	}{
		{"flag on, throttled domain", true, "fbcdn.net", 1},
		{"flag on, subdomain matches", true, "static.fbcdn.net", 1},
		{"flag off, throttled domain", false, "fbcdn.net", 0},
		{"flag on, unlisted domain", true, "example.org", 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			l := newLab(t, nil)
			l.ctl.Update(func(p *Policy) { p.ThrottleActive = tc.active })
			l.client.Send(throttleSegment(l, packet.FlagsPSHACK, clientHello(tc.domain)))
			l.sim.Run()
			if got := l.device.Stats().Triggers[SNI3]; got != tc.trigger {
				t.Fatalf("Triggers[SNI3] = %d, want %d", got, tc.trigger)
			}
		})
	}
}

func TestThrottleRateOnVirtualClock(t *testing.T) {
	l := newThrottleLab(t)
	var upBytes int
	l.server.Tap(func(p *packet.Packet) {
		if p.TCP != nil {
			upBytes += len(p.TCP.Payload)
		}
	})
	var downPayloads int
	l.client.Tap(func(p *packet.Packet) {
		if p.TCP != nil && len(p.TCP.Payload) > 0 {
			downPayloads++
		}
	})

	send := func(payload []byte) {
		l.client.Send(throttleSegment(l, packet.FlagsPSHACK, payload))
		l.sim.Run()
	}
	ch := clientHello("fbcdn.net")
	send(ch) // trigger: delivered without debiting the bucket
	if got := l.device.Stats().Triggers[SNI3]; got != 1 {
		t.Fatalf("Triggers[SNI3] = %d, want 1", got)
	}

	send(make([]byte, 1460)) // full burst passes
	send(make([]byte, 1460)) // bucket drained: policed
	l.client.Send(throttleSegment(l, packet.FlagACK, nil))
	l.sim.Run() // pure ACK always conforms

	// Two simulated seconds refill ~1300 bytes (650 B/s on the virtual
	// clock, plus a few bytes for the millisecond link delays).
	l.sim.RunUntil(l.sim.Now() + 2*time.Second)
	send(make([]byte, 1300)) // fits the refill
	send(make([]byte, 1300)) // exceeds the remainder: policed

	// Downstream is policed by the same bucket.
	l.server.Send(packet.NewTCP(l.server.Addr(), l.client.Addr(), 443, 41000,
		packet.FlagsPSHACK, 1, 0, make([]byte, 200)))
	l.sim.Run()

	// Long idle refills at most one burst.
	l.sim.RunUntil(l.sim.Now() + 10*time.Second)
	send(make([]byte, 1460))

	if want := len(ch) + 1460 + 1300 + 1460; upBytes != want {
		t.Errorf("server received %d payload bytes, want %d", upBytes, want)
	}
	if downPayloads != 0 {
		t.Errorf("client received %d policed payloads, want 0", downPayloads)
	}
	if got := l.device.Stats().Throttled; got != 3 {
		t.Errorf("Stats().Throttled = %d, want 3", got)
	}
}
