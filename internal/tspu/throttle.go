package tspu

import "time"

// tokenBucket implements the SNI-III traffic policer: packets whose payload
// exceeds the accumulated byte budget are dropped, not queued — the paper
// identifies the same policing (not shaping) mechanism as the 2021 Twitter
// throttling, with the rate lowered to 600-700 bytes per second (§5.2).
// Buckets hang off a flowEntry's blockState, so they inherit the entry's
// lane ownership.
//
//tspuvet:laneowned
type tokenBucket struct {
	rate   float64 // bytes per second
	burst  float64 // bucket capacity in bytes
	tokens float64
	last   time.Duration
}

//tspuvet:coldpath runs once per throttled-flow trigger, not per packet
func newTokenBucket(rateBps int, burst int, now time.Duration) *tokenBucket {
	if rateBps <= 0 {
		rateBps = 650
	}
	if burst <= 0 {
		// One MSS of headroom so handshakes pass, scaled up for higher
		// policing rates (the 2021 130 kbps policy must admit full-sized
		// packets; a burst below the packet size starves the flow entirely).
		burst = 1460
		if rateBps/4 > burst {
			burst = rateBps / 4
		}
	}
	return &tokenBucket{
		rate:   float64(rateBps),
		burst:  float64(burst),
		tokens: float64(burst),
		last:   now,
	}
}

// admit consumes n bytes if available and reports whether the packet
// conforms to the rate. Zero-length packets (pure ACKs) always conform.
func (tb *tokenBucket) admit(n int, now time.Duration) bool {
	if now > tb.last {
		tb.tokens += tb.rate * (now - tb.last).Seconds()
		if tb.tokens > tb.burst {
			tb.tokens = tb.burst
		}
		tb.last = now
	}
	if n == 0 {
		return true
	}
	if float64(n) <= tb.tokens {
		tb.tokens -= float64(n)
		return true
	}
	return false
}
