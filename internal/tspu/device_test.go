package tspu

import (
	"bytes"
	"testing"
	"time"

	"tspusim/internal/hostnet"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
)

func newTestSim() *sim.Sim { return sim.New() }

// lab is a minimal RU-client / TSPU / remote-server deployment:
//
//	client(10.0.0.2) - r1 - [TSPU] - border - server(203.0.113.10)
//
// The TSPU sits on the r1--border link with r1 on its A side, so local→remote
// is AtoB.
type lab struct {
	sim     *sim.Sim
	net     *netem.Network
	client  *hostnet.Stack
	server  *hostnet.Stack
	device  *Device
	ctl     *Controller
	tspuCap *netem.Capture
}

func newLab(t *testing.T, mutate func(*Config)) *lab {
	t.Helper()
	s := sim.New()
	n := netem.New(s)
	client := n.AddHost("client")
	r1 := n.AddRouter("r1")
	border := n.AddRouter("border")
	server := n.AddHost("server")

	ci := client.AddIface(packet.MustAddr("10.0.0.2"))
	r1c := r1.AddIface(packet.MustAddr("10.0.0.1"))
	r1b := r1.AddIface(packet.MustAddr("10.9.0.1"))
	bl := border.AddIface(packet.MustAddr("10.9.0.2"))
	bs := border.AddIface(packet.MustAddr("203.0.113.1"))
	si := server.AddIface(packet.MustAddr("203.0.113.10"))

	n.Connect(ci, r1c, time.Millisecond)
	mid := n.Connect(r1b, bl, time.Millisecond)
	n.Connect(bs, si, time.Millisecond)

	client.AddDefaultRoute(ci)
	r1.AddRoute(netem.MustPrefix("10.0.0.0/24"), r1c)
	r1.AddDefaultRoute(r1b)
	border.AddRoute(netem.MustPrefix("10.0.0.0/16"), bl)
	border.AddDefaultRoute(bs)
	server.AddDefaultRoute(si)

	cfg := Config{Name: "tspu-1", Sim: s, LocalDir: netem.AtoB, Rand: sim.NewRand(7)}
	if mutate != nil {
		mutate(&cfg)
	}
	dev := NewDevice(cfg)
	mid.Attach(dev)
	cap := netem.NewCapture("tspu-link")
	mid.Tap(cap)

	ctl := NewController(nil)
	ctl.Register(dev)
	ctl.Update(func(p *Policy) {
		p.SNI1Domains.Add("facebook.com", "twitter.com", "meduza.io", "dw.com")
		p.SNI2Domains.Add("play.google.com", "nordvpn.com")
		p.SNI4Domains.Add("twitter.com", "t.co")
		p.ThrottleDomains.Add("fbcdn.net")
		p.BlockedIPs[packet.MustAddr("198.51.100.7")] = true // "Tor node"
	})

	return &lab{
		sim: s, net: n,
		client: hostnet.NewStack(n, client),
		server: hostnet.NewStack(n, server),
		device: dev, ctl: ctl, tspuCap: cap,
	}
}

func clientHello(domain string) []byte {
	return (&tlsx.ClientHelloSpec{ServerName: domain}).Build()
}

// openAndSendCH establishes a TCP connection and sends a ClientHello; it
// returns the client conn.
func (l *lab) openAndSendCH(domain string) *hostnet.TCPConn {
	l.server.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, data []byte) {
			c.Send([]byte("SERVERHELLO-----")) // downstream response
			c.Send([]byte("CERTIFICATE-----"))
		},
	})
	conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send(clientHello(domain)) }
	return conn
}

func TestSNI1RSTInjection(t *testing.T) {
	l := newLab(t, nil)
	conn := l.openAndSendCH("facebook.com")
	l.sim.Run()
	if !conn.ResetSeen {
		t.Fatal("SNI-I: client did not see RST/ACK")
	}
	if len(conn.Received) != 0 {
		t.Fatalf("SNI-I: payload leaked to client: %q", conn.Received)
	}
	// Server must have received the ClientHello (the trigger is delivered).
	found := false
	for _, r := range l.tspuCap.Delivered() {
		if r.Dir == netem.AtoB && r.Pkt.TCP != nil && len(r.Pkt.TCP.Payload) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("SNI-I: trigger ClientHello was not delivered upstream")
	}
	if l.device.Stats().Triggers[SNI1] != 1 {
		t.Fatalf("trigger count = %d", l.device.Stats().Triggers[SNI1])
	}
}

func TestSNI1PreservesMetadata(t *testing.T) {
	l := newLab(t, nil)
	conn := l.openAndSendCH("facebook.com")
	l.sim.Run()
	// Find the rewritten packet and check seq/ack survive.
	var rst *packet.Packet
	for _, p := range conn.Packets {
		if p.TCP.Flags == packet.FlagsRSTACK {
			rst = p
			break
		}
	}
	if rst == nil {
		t.Fatal("no RST/ACK captured")
	}
	if rst.TCP.Seq == 0 && rst.TCP.Ack == 0 {
		t.Fatal("rewritten packet lost sequence numbers")
	}
}

func TestNonTriggeringDomainUnaffected(t *testing.T) {
	l := newLab(t, nil)
	conn := l.openAndSendCH("example.org")
	l.sim.Run()
	if conn.ResetSeen {
		t.Fatal("control domain was blocked")
	}
	if !bytes.Contains(conn.Received, []byte("SERVERHELLO")) {
		t.Fatalf("control domain got no response: %q", conn.Received)
	}
}

func TestSNI2AllowanceThenDrop(t *testing.T) {
	l := newLab(t, nil)
	var serverConn *hostnet.TCPConn
	l.server.Listen(443, hostnet.ListenOptions{
		OnConnect: func(c *hostnet.TCPConn) { serverConn = c },
	})
	conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send(clientHello("play.google.com")) }
	l.sim.Run()
	if serverConn == nil {
		t.Fatal("no server conn")
	}
	// After the trigger, stream many packets upstream: only the allowance
	// (5-8) may arrive.
	before := serverConn.Segments
	for i := 0; i < 30; i++ {
		conn.SendRaw(packet.FlagsPSHACK, []byte("data-seg"))
	}
	l.sim.Run()
	got := serverConn.Segments - before
	if got < 4 || got > 8 {
		t.Fatalf("SNI-II delivered %d post-trigger packets, want 5-8 window", got)
	}
	if l.device.Stats().Triggers[SNI2] != 1 {
		t.Fatal("SNI-II trigger not counted")
	}
}

func TestSNI2SymmetricDrop(t *testing.T) {
	l := newLab(t, nil)
	conn := l.openAndSendCH("nordvpn.com")
	l.sim.Run()
	// Exhaust allowance.
	for i := 0; i < 20; i++ {
		conn.SendRaw(packet.FlagsPSHACK, []byte("x"))
	}
	l.sim.Run()
	// Now downstream packets must be dropped too.
	nRecvBefore := len(conn.Packets)
	srv := l.server
	srv.SendTCP(conn.LocalAddr, 443, conn.LocalPort, packet.FlagsPSHACK, 9000, 9000, []byte("down"))
	l.sim.Run()
	if len(conn.Packets) != nRecvBefore {
		t.Fatal("downstream packet passed after SNI-II drop began")
	}
}

func TestSNI4SplitHandshakeBackup(t *testing.T) {
	// twitter.com is in both SNI-I and SNI-IV. With a split handshake the
	// role heuristic is confused: SNI-I is skipped, SNI-IV fires and drops
	// everything including the trigger.
	l := newLab(t, nil)
	var serverGot []byte
	l.server.Listen(443, hostnet.ListenOptions{
		SplitHandshake: true,
		OnData:         func(c *hostnet.TCPConn, d []byte) { serverGot = append(serverGot, d...) },
	})
	conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send(clientHello("twitter.com")) }
	l.sim.Run()
	if len(serverGot) != 0 {
		t.Fatal("SNI-IV: trigger ClientHello leaked to server")
	}
	if conn.ResetSeen {
		t.Fatal("SNI-IV dropped flow must not see RST (RSTs are dropped too)")
	}
	st := l.device.Stats()
	if st.Triggers[SNI4] != 1 || st.Triggers[SNI1] != 0 {
		t.Fatalf("triggers = %v, want SNI-IV only", st.Triggers)
	}
}

func TestSplitHandshakeEvadesSNI1Only(t *testing.T) {
	// meduza.io is SNI-I only: with a split handshake the connection works.
	l := newLab(t, nil)
	var serverGot []byte
	l.server.Listen(443, hostnet.ListenOptions{
		SplitHandshake: true,
		OnData: func(c *hostnet.TCPConn, d []byte) {
			serverGot = append(serverGot, d...)
			c.Send([]byte("SERVERHELLO"))
		},
	})
	conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send(clientHello("meduza.io")) }
	l.sim.Run()
	if len(serverGot) == 0 {
		t.Fatal("split handshake: CH did not reach server")
	}
	if conn.ResetSeen {
		t.Fatal("split handshake did not evade SNI-I")
	}
	if !bytes.Contains(conn.Received, []byte("SERVERHELLO")) {
		t.Fatal("response did not reach client")
	}
}

func TestStrictRolesAblationPatchesSplitHandshake(t *testing.T) {
	l := newLab(t, func(c *Config) { c.StrictRoles = true })
	l.server.Listen(443, hostnet.ListenOptions{SplitHandshake: true})
	conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send(clientHello("meduza.io")) }
	l.sim.Run()
	if !conn.ResetSeen {
		t.Fatal("StrictRoles device should still block through split handshake")
	}
}

func TestRemoteOriginExempt(t *testing.T) {
	// A connection initiated by the remote side is never blocked, even when
	// a triggering CH later flows upstream (the asymmetry of §5.3.2).
	l := newLab(t, nil)
	var clientConn *hostnet.TCPConn
	l.client.Listen(443, hostnet.ListenOptions{
		OnConnect: func(c *hostnet.TCPConn) { clientConn = c },
	})
	srvConn := l.server.Dial(l.client.Addr(), 443, hostnet.DialOptions{SrcPort: 443})
	l.sim.Run()
	if clientConn == nil {
		t.Fatal("no inbound conn")
	}
	clientConn.Send(clientHello("facebook.com")) // upstream trigger on remote-origin flow
	l.sim.Run()
	if srvConn.ResetSeen {
		t.Fatal("remote-origin flow was blocked")
	}
	if got := l.device.Stats().Triggers[SNI1]; got != 0 {
		t.Fatalf("SNI-I triggered %d times on remote-origin flow", got)
	}
}

func TestSNI3Throttling(t *testing.T) {
	l := newLab(t, nil)
	l.ctl.Update(func(p *Policy) { p.ThrottleActive = true })
	var serverConn *hostnet.TCPConn
	l.server.Listen(443, hostnet.ListenOptions{OnConnect: func(c *hostnet.TCPConn) { serverConn = c }})
	conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send(clientHello("fbcdn.net")) }
	l.sim.Run()
	if serverConn == nil {
		t.Fatal("no server conn")
	}
	// Stream 100 x 1000-byte upstream segments over 10 virtual seconds.
	base := len(serverConn.Received)
	for i := 0; i < 100; i++ {
		d := time.Duration(i) * 100 * time.Millisecond
		l.sim.After(d, func() { conn.SendRaw(packet.FlagsPSHACK, make([]byte, 1000)) })
	}
	l.sim.Run()
	goodput := len(serverConn.Received) - base
	elapsed := 10.0 // seconds of sending
	rate := float64(goodput) / elapsed
	// Policy rate is 650 B/s: accept 300-1100 B/s to allow burst effects.
	if rate < 300 || rate > 1100 {
		t.Fatalf("throttled goodput = %.0f B/s, want ~650", rate)
	}
	if l.device.Stats().Throttled == 0 {
		t.Fatal("no packets policed")
	}
}

func TestThrottleInactiveAfterMarch4(t *testing.T) {
	l := newLab(t, nil) // ThrottleActive defaults to false
	conn := l.openAndSendCH("fbcdn.net")
	l.sim.Run()
	if conn.ResetSeen {
		t.Fatal("fbcdn.net blocked while throttle inactive and not in SNI-I")
	}
	if l.device.Stats().Triggers[SNI3] != 0 {
		t.Fatal("SNI-III triggered while inactive")
	}
}

func TestQUICBlocking(t *testing.T) {
	l := newLab(t, nil)
	received := 0
	l.server.BindUDP(443, func(p *packet.Packet) { received++ })
	// First packet: v1 initial (trigger, delivered). Then more packets that
	// must all be dropped regardless of content.
	sport := uint16(50000)
	l.client.SendUDP(l.server.Addr(), sport, 443, buildQUICv1(1200))
	l.client.SendUDP(l.server.Addr(), sport, 443, []byte("short"))
	l.client.SendUDP(l.server.Addr(), sport, 443, buildQUICv1(1200))
	l.sim.Run()
	if received != 1 {
		t.Fatalf("server received %d UDP packets, want only the trigger", received)
	}
	if l.device.Stats().Triggers[QUICBlock] != 1 {
		t.Fatal("QUIC trigger not counted")
	}
}

func TestQUICOtherVersionsPass(t *testing.T) {
	l := newLab(t, nil)
	received := 0
	l.server.BindUDP(443, func(p *packet.Packet) { received++ })
	l.client.SendUDP(l.server.Addr(), 50001, 443, buildQUICDraft29(1200))
	l.client.SendUDP(l.server.Addr(), 50001, 443, buildQUICDraft29(1200))
	l.sim.Run()
	if received != 2 {
		t.Fatalf("draft-29 packets received = %d, want 2", received)
	}
}

func TestQUICDownstreamBlockedAfterTrigger(t *testing.T) {
	l := newLab(t, nil)
	l.server.BindUDP(443, func(p *packet.Packet) {
		l.server.SendUDP(p.IP.Src, 443, p.UDP.SrcPort, []byte("server-initial"))
	})
	got := 0
	l.client.BindUDP(50002, func(p *packet.Packet) { got++ })
	l.client.SendUDP(l.server.Addr(), 50002, 443, buildQUICv1(1200))
	l.sim.Run()
	if got != 0 {
		t.Fatal("downstream packet passed after QUIC trigger")
	}
}

func TestIPBlockOutgoingDropped(t *testing.T) {
	l := newLab(t, nil)
	blocked := packet.MustAddr("198.51.100.7")
	// Any local→blocked packet must vanish; no RST, nothing.
	conn := l.client.Dial(blocked, 9001, hostnet.DialOptions{})
	l.sim.Run()
	if len(conn.Packets) != 0 {
		t.Fatalf("client got %d packets dialing blocked IP", len(conn.Packets))
	}
	if l.device.Stats().Dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestIPBlockInboundRequestPassesResponseRST(t *testing.T) {
	// The blocked IP initiates: its SYN passes inbound, but the local
	// server's SYN/ACK is rewritten to a payload-stripped RST/ACK.
	l := newLab(t, nil)
	blocked := packet.MustAddr("198.51.100.7")

	s := l.sim
	n := l.net
	tor := n.AddHost("tor")
	ti := tor.AddIface(blocked)
	borderNode := n.Node("border")
	bt := borderNode.AddIface(packet.MustAddr("198.51.100.1"))
	n.Connect(bt, ti, time.Millisecond)
	tor.AddDefaultRoute(ti)
	borderNode.AddRoute(netem.MustPrefix("198.51.100.0/24"), bt)
	torStack := hostnet.NewStack(n, tor)

	var inboundSYN, rstBack *packet.Packet
	l.client.Tap(func(p *packet.Packet) {
		if p.TCP != nil && p.TCP.Flags == packet.FlagSYN {
			inboundSYN = p
		}
	})
	torStack.Tap(func(p *packet.Packet) {
		if p.TCP != nil && p.TCP.Flags.Has(packet.FlagRST) {
			rstBack = p
		}
	})
	l.client.Listen(8080, hostnet.ListenOptions{})
	torStack.Dial(l.client.Addr(), 8080, hostnet.DialOptions{})
	s.Run()
	if inboundSYN == nil {
		t.Fatal("inbound request from blocked IP did not pass")
	}
	if rstBack == nil {
		t.Fatal("response was not rewritten to RST/ACK")
	}
	if len(rstBack.TCP.Payload) != 0 {
		t.Fatal("rewritten response kept payload")
	}
}

func TestIPBlockICMPDropped(t *testing.T) {
	l := newLab(t, nil)
	blocked := packet.MustAddr("198.51.100.7")
	replies := 0
	l.client.OnICMP(func(p *packet.Packet) { replies++ })
	l.client.Ping(blocked, 1, 1)
	l.sim.Run()
	if replies != 0 {
		t.Fatal("ICMP to blocked IP not dropped")
	}
}

func TestIPBlockIgnoresPorts(t *testing.T) {
	l := newLab(t, nil)
	blocked := packet.MustAddr("198.51.100.7")
	for _, port := range []uint16{80, 443, 7, 7547} {
		before := l.device.Stats().Dropped
		l.client.SendTCP(blocked, l.client.EphemeralPort(), port, packet.FlagSYN, 1, 0, nil)
		l.sim.Run()
		if l.device.Stats().Dropped == before {
			t.Fatalf("port %d: packet to blocked IP not dropped", port)
		}
	}
}

func TestSegmentationEvades(t *testing.T) {
	// A ClientHello split across TCP segments is not matched: the TSPU does
	// not reassemble streams (§8).
	l := newLab(t, nil)
	var serverConn *hostnet.TCPConn
	l.server.Listen(443, hostnet.ListenOptions{OnConnect: func(c *hostnet.TCPConn) { serverConn = c }})
	conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{MSS: 64})
	conn.OnEstablished = func() { conn.Send(clientHello("facebook.com")) }
	l.sim.Run()
	if conn.ResetSeen {
		t.Fatal("segmented CH was blocked")
	}
	if serverConn == nil || !bytes.Contains(serverConn.Received, []byte("facebook.com")) {
		t.Fatal("segmented CH did not arrive intact")
	}
}

func TestReassembleAblationDefeatsSegmentation(t *testing.T) {
	l := newLab(t, func(c *Config) { c.ReassembleTCP = true })
	l.server.Listen(443, hostnet.ListenOptions{})
	conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{MSS: 64})
	conn.OnEstablished = func() { conn.Send(clientHello("facebook.com")) }
	l.sim.Run()
	if l.device.Stats().Triggers[SNI1] == 0 {
		t.Fatal("reassembling device missed segmented CH")
	}
}

func TestPrependRecordEvades(t *testing.T) {
	l := newLab(t, nil)
	conn := l.openAndSendCHSpec(&tlsx.ClientHelloSpec{ServerName: "facebook.com", PrependRecord: true})
	l.sim.Run()
	if conn.ResetSeen {
		t.Fatal("prepended-record CH was blocked")
	}
}

func TestInspectDepthPaddingEvades(t *testing.T) {
	// Padding placed before the SNI pushes it past the inspection depth.
	l := newLab(t, nil)
	spec := &tlsx.ClientHelloSpec{
		ServerName: "facebook.com",
		ExtraExts:  []tlsx.Extension{{Type: tlsx.ExtensionPadding, Data: make([]byte, 600)}},
	}
	conn := l.openAndSendCHSpec(spec)
	l.sim.Run()
	if conn.ResetSeen {
		t.Fatal("padding-before-SNI CH was blocked despite depth limit")
	}
}

func (l *lab) openAndSendCHSpec(spec *tlsx.ClientHelloSpec) *hostnet.TCPConn {
	l.server.Listen(443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, data []byte) { c.Send([]byte("SERVERHELLO")) },
	})
	conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
	payload := spec.Build()
	conn.OnEstablished = func() { conn.Send(payload) }
	return conn
}

func TestExtraExtsBeforeSNI(t *testing.T) {
	// The builder places ExtraExts after SNI; verify the device still parses
	// within depth when padding is small (control for the evasion test).
	l := newLab(t, nil)
	spec := &tlsx.ClientHelloSpec{ServerName: "facebook.com", PaddingLen: 32}
	conn := l.openAndSendCHSpec(spec)
	l.sim.Run()
	if !conn.ResetSeen {
		t.Fatal("small-padded CH should still be blocked")
	}
}

func TestFailureInjection(t *testing.T) {
	l := newLab(t, func(c *Config) {
		c.FailureRates = map[BlockType]float64{SNI1: 0.5}
		c.Rand = sim.NewRand(42)
	})
	l.server.Listen(443, hostnet.ListenOptions{})
	blocked := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
		conn.OnEstablished = func() { conn.Send(clientHello("facebook.com")) }
		l.sim.Run()
		if conn.ResetSeen {
			blocked++
		}
		conn.Close()
	}
	frac := float64(blocked) / trials
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("blocked fraction = %v with 50%% failure rate", frac)
	}
}

func TestBlockingStateTimeoutSNI1(t *testing.T) {
	l := newLab(t, nil)
	conn := l.openAndSendCH("facebook.com")
	l.sim.Run()
	if !conn.ResetSeen {
		t.Fatal("not blocked initially")
	}
	// Within 75s the downstream direction is still rewritten.
	l.sim.RunUntil(l.sim.Now() + 60*time.Second)
	seen := len(conn.Packets)
	l.server.SendTCP(conn.LocalAddr, 443, conn.LocalPort, packet.FlagsPSHACK, 7777, 1, []byte("late"))
	l.sim.Run()
	if len(conn.Packets) == seen {
		t.Fatal("no packet arrived")
	}
	last := conn.Packets[len(conn.Packets)-1]
	if !last.TCP.Flags.Has(packet.FlagRST) {
		t.Fatal("downstream not rewritten within SNI-I hold")
	}
	// Beyond 75s from trigger the hold expires.
	l.sim.RunUntil(l.sim.Now() + 30*time.Second) // now > 75s past trigger
	l.server.SendTCP(conn.LocalAddr, 443, conn.LocalPort, packet.FlagsPSHACK, 8888, 1, []byte("after"))
	l.sim.Run()
	last = conn.Packets[len(conn.Packets)-1]
	if last.TCP.Flags.Has(packet.FlagRST) {
		t.Fatal("SNI-I hold outlived its 75s timeout")
	}
}

func buildQUICv1(n int) []byte {
	b := make([]byte, n)
	b[0] = 0xc0
	b[4] = 0x01
	for i := 5; i < n; i++ {
		b[i] = 0xff
	}
	return b
}

func buildQUICDraft29(n int) []byte {
	b := buildQUICv1(n)
	b[1], b[2], b[3], b[4] = 0xff, 0x00, 0x00, 0x1d
	return b
}

func TestICMPToUnblockedIPPasses(t *testing.T) {
	l := newLab(t, nil)
	replies := 0
	l.client.OnICMP(func(p *packet.Packet) {
		if p.ICMP.Type == packet.ICMPEchoReply {
			replies++
		}
	})
	l.client.Ping(l.server.Addr(), 5, 1)
	l.sim.Run()
	if replies != 1 {
		t.Fatalf("replies = %d; ICMP to unblocked hosts must pass", replies)
	}
}

func TestQUICFilterDisabled(t *testing.T) {
	l := newLab(t, nil)
	l.ctl.Update(func(p *Policy) { p.QUICFilter = false })
	received := 0
	l.server.BindUDP(443, func(p *packet.Packet) { received++ })
	sport := uint16(51000)
	l.client.SendUDP(l.server.Addr(), sport, 443, buildQUICv1(1200))
	l.client.SendUDP(l.server.Addr(), sport, 443, buildQUICv1(1200))
	l.sim.Run()
	if received != 2 {
		t.Fatalf("received = %d with filter disabled, want 2", received)
	}
}

func TestSNITriggerIgnoresNon443Ports(t *testing.T) {
	l := newLab(t, nil)
	var got []byte
	l.server.Listen(8443, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { got = append(got, d...); c.Send([]byte("OK")) },
	})
	conn := l.client.Dial(l.server.Addr(), 8443, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send(clientHello("facebook.com")) }
	l.sim.Run()
	if conn.ResetSeen {
		t.Fatal("CH to a non-443 port was blocked")
	}
	if len(got) == 0 {
		t.Fatal("CH did not arrive")
	}
	if l.device.Stats().Triggers[SNI1] != 0 {
		t.Fatal("trigger fired off-port")
	}
}

func TestPolicyRemovalUnblocksNewFlows(t *testing.T) {
	l := newLab(t, nil)
	conn := l.openAndSendCH("meduza.io")
	l.sim.Run()
	if !conn.ResetSeen {
		t.Fatal("not blocked before removal")
	}
	conn.Close()
	l.ctl.Update(func(p *Policy) { p.SNI1Domains.Remove("meduza.io") })
	conn2 := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
	ch := clientHello("meduza.io")
	conn2.OnEstablished = func() { conn2.Send(ch) }
	l.sim.Run()
	if conn2.ResetSeen {
		t.Fatal("still blocked after central removal")
	}
}
