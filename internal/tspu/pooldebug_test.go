//go:build pooldebug

package tspu

import "testing"

// mustPanic runs fn and fails the test unless it panics.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic under -tags=pooldebug", what)
		}
	}()
	fn()
}

// TestUseAfterReleasePanics holds a stale *flowEntry across a release and
// proves the poisoned record traps on its next datapath touch.
func TestUseAfterReleasePanics(t *testing.T) {
	ct := newShardedConntrack(DefaultTimeouts(), 1)
	sh := &ct.shards[0]
	e := sh.allocEntry()
	sh.release(e)
	mustPanic(t, "activeBlock on a released entry", func() { e.activeBlock(0) })
}

func TestDoubleReleasePanics(t *testing.T) {
	ct := newShardedConntrack(DefaultTimeouts(), 1)
	sh := &ct.shards[0]
	e := sh.allocEntry()
	sh.release(e)
	mustPanic(t, "second release of the same entry", func() { sh.release(e) })
}

// TestPoolReuseUnpoisons proves the poison is scrubbed on reuse: the normal
// alloc→release→alloc cycle stays panic-free and hands out zeroed records
// with the generation preserved.
func TestPoolReuseUnpoisons(t *testing.T) {
	ct := newShardedConntrack(DefaultTimeouts(), 1)
	sh := &ct.shards[0]
	e := sh.allocEntry()
	g := e.gen
	sh.release(e)
	e2 := sh.allocEntry()
	if e2 != e {
		t.Fatalf("pool did not reuse the released entry")
	}
	if e2.gen != g+1 {
		t.Fatalf("gen = %d, want %d (bump preserved through poison)", e2.gen, g+1)
	}
	if e2.state == poisonedState || e2.immune != 0 || e2.expires != 0 {
		t.Fatalf("reused entry still carries poison: %+v", e2)
	}
	e2.activeBlock(0) // must not panic
}
