package tspu

import (
	"time"

	"tspusim/internal/censor"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/quicx"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
)

// Config configures one TSPU device instance.
type Config struct {
	// Name identifies the device in stats and traces.
	Name string
	// Sim supplies virtual time.
	Sim *sim.Sim
	// Rand drives failure injection and the SNI-II allowance pick. Nil gets
	// a fixed-seed stream.
	Rand *sim.Rand
	// LocalDir is the link direction corresponding to local→remote
	// (RU→outside) travel. The device's asymmetric behavior — blocking only
	// locally-originated connections — is expressed relative to this.
	LocalDir netem.Direction
	// InspectDepth bounds how many payload bytes the SNI parser examines
	// (default 512). The paper's padding/prepending evasions work because
	// the real device's inspection is similarly bounded.
	InspectDepth int
	// FragLimit is the fragment-queue cap (default 45, the TSPU
	// fingerprint).
	FragLimit int
	// Timeouts default to the paper's measured values.
	Timeouts StateTimeouts
	// FailureRates gives the per-connection probability that a trigger of
	// each type is missed (Table 1). Devices without an entry never fail.
	FailureRates map[BlockType]float64
	// SNI2AllowanceMin/Max bound the "additional five to eight packets"
	// SNI-II delivers after its trigger (§5.2).
	SNI2AllowanceMin, SNI2AllowanceMax int

	// Shards splits the conntrack — and every other piece of mutable device
	// state — into that many independent lanes selected by the packet's
	// canonical host pair, rounded up to a power of two. Lanes share nothing,
	// so the batch engine can run them on separate workers without locks.
	// Zero or one gives the classic single-lane device.
	Shards int
	// PerFlowRand derives failure rolls and the SNI-II allowance from a pure
	// function of (FlowSeed, flow hash, per-flow roll index) instead of
	// consuming the shared Rand stream. Batch processing interleaves flows
	// in an order that differs from sequential delivery; per-flow derivation
	// makes every random outcome independent of that order, which is what
	// lets the batched path stay byte-equivalent to the sequential one.
	// Within a flow the order is fixed (a flow never leaves its lane), so
	// the roll index is deterministic.
	PerFlowRand bool
	// FlowSeed seeds the per-flow derivation (PerFlowRand only), so
	// different devices and different experiment seeds roll differently.
	FlowSeed uint64

	// ReassembleTCP is an ablation switch: reassemble upstream TCP payload
	// per flow before SNI inspection, like the GFW has done since 2013 (§8).
	// The real TSPU does not, which is why TCP segmentation evades it.
	ReassembleTCP bool
	// StrictRoles is an ablation switch: apply SNI triggers regardless of
	// inferred roles, patching the split-handshake/simultaneous-open
	// evasions at the cost of blocking remote-originated flows.
	StrictRoles bool
}

// Stats counts device activity.
type Stats struct {
	Handled     int
	Triggers    map[BlockType]int
	Misses      map[BlockType]int // failure-injected trigger misses
	Dropped     int
	Rewritten   int
	Throttled   int
	FragBuffers int
}

// numBlockTypes sizes the flat per-lane counter arrays (IPBlock is the last
// enumerator).
const numBlockTypes = int(IPBlock) + 1

// laneStats holds one lane's counters as flat words — no maps — so the
// concurrent batch path increments them without synchronization or
// allocation. Stats() folds all lanes into the public map form.
//
//tspuvet:laneowned
type laneStats struct {
	handled     int
	dropped     int
	rewritten   int
	throttled   int
	fragBuffers int
	triggers    [numBlockTypes]int
	misses      [numBlockTypes]int
}

// devLane is the mutable per-shard half of a Device: counters, fragment
// queues, reassembly buffers, and scratch space. Lane i owns exactly the
// packets whose canonical host pair hashes to conntrack shard i, so two
// engine workers driving different lanes of one device never touch the same
// memory.
//
//tspuvet:laneowned
type devLane struct {
	stats laneStats
	frags *fragEngine
	// reasm holds per-flow upstream byte buffers for the ReassembleTCP
	// ablation; flows never change lanes, so per-lane maps stay disjoint.
	reasm map[packet.FlowKey4][]byte
	// fold is the case-normalization scratch threaded into DomainSet
	// matching, replacing the set's shared internal buffer on this lane.
	fold []byte
	// lastSweep drives this lane's datapath-piggybacked housekeeping.
	lastSweep time.Duration
}

// Device is one TSPU middlebox. Attach it to a netem link; it inspects every
// packet crossing in both directions. A device built with Config.Shards > 1
// may be driven concurrently through HandleSharded as long as each worker
// sticks to its own lanes; the plain Handle path (and the simulator it runs
// in) remains single-threaded.
type Device struct {
	cfg    Config
	policy *Policy
	rng    *sim.Rand
	ct     *conntrack
	lanes  []devLane
	// slowPath routes SNI classification through the retained reference
	// implementation (string-building parser + Contains) instead of the
	// allocation-free fast path; the equivalence property tests flip it to
	// pin that both paths produce byte-identical device behavior.
	slowPath bool
	// sweepEvery drives datapath-piggybacked housekeeping (per-lane).
	sweepEvery time.Duration
}

// NewDevice creates a device. If no controller registers it, it enforces an
// empty policy.
func NewDevice(cfg Config) *Device {
	if cfg.InspectDepth == 0 {
		cfg.InspectDepth = 512
	}
	if cfg.SNI2AllowanceMin == 0 {
		cfg.SNI2AllowanceMin = 5
	}
	if cfg.SNI2AllowanceMax < cfg.SNI2AllowanceMin {
		cfg.SNI2AllowanceMax = cfg.SNI2AllowanceMin + 3
	}
	if (cfg.Timeouts == StateTimeouts{}) {
		cfg.Timeouts = DefaultTimeouts()
	}
	rng := cfg.Rand
	if rng == nil {
		rng = sim.NewRand(0x75b7)
	}
	d := &Device{
		cfg:    cfg,
		policy: NewPolicy(),
		rng:    rng,
		ct:     newShardedConntrack(cfg.Timeouts, cfg.Shards),
	}
	d.lanes = make([]devLane, d.ct.numShards())
	for i := range d.lanes {
		ln := &d.lanes[i]
		ln.frags = newFragEngine(cfg.FragLimit, cfg.Timeouts.Frag)
		ln.reasm = make(map[packet.FlowKey4][]byte)
	}
	return d
}

// Name implements netem.Middlebox.
func (d *Device) Name() string {
	if d.cfg.Name != "" {
		return d.cfg.Name
	}
	return "tspu"
}

// Policy returns the device's current policy.
func (d *Device) Policy() *Policy { return d.policy }

// SetPolicy installs a policy directly (tests; production path is the
// Controller).
func (d *Device) SetPolicy(p *Policy) { d.policy = p }

// Stats folds all lane counters into the public map form. Only nonzero
// trigger/miss types appear, matching the increment-on-demand maps the
// single-lane device kept.
func (d *Device) Stats() Stats {
	st := Stats{
		Triggers: make(map[BlockType]int),
		Misses:   make(map[BlockType]int),
	}
	for i := range d.lanes {
		ls := &d.lanes[i].stats
		st.Handled += ls.handled
		st.Dropped += ls.dropped
		st.Rewritten += ls.rewritten
		st.Throttled += ls.throttled
		st.FragBuffers += ls.fragBuffers
		for t := 0; t < numBlockTypes; t++ {
			if n := ls.triggers[t]; n > 0 {
				st.Triggers[BlockType(t)] += n
			}
			if n := ls.misses[t]; n > 0 {
				st.Misses[BlockType(t)] += n
			}
		}
	}
	return st
}

// Counters implements censor.Censor: the generic action-counter view of
// Stats, so the cross-censor probe battery can read trigger/drop/rewrite/
// throttle state without knowing TSPU block types.
func (d *Device) Counters() censor.Counters {
	st := d.Stats()
	c := censor.Counters{
		Dropped:   st.Dropped,
		Rewritten: st.Rewritten,
		Throttled: st.Throttled,
	}
	for _, n := range st.Triggers {
		c.ContentTriggers += n
	}
	return c
}

// The TSPU device is one censor model among N (ROADMAP item 4); the probe
// battery in internal/measure drives it through this interface.
var _ censor.Censor = (*Device)(nil)

// ConntrackSize exposes the flow-table size for resource experiments.
func (d *Device) ConntrackSize() int { return d.ct.size() }

// PendingFragQueues exposes the fragment-engine queue count across lanes.
func (d *Device) PendingFragQueues() int {
	n := 0
	for i := range d.lanes {
		n += d.lanes[i].frags.pending()
	}
	return n
}

// fragDiscards / fragForwarded sum fragment-engine outcomes across lanes.
func (d *Device) fragDiscards() int {
	n := 0
	for i := range d.lanes {
		n += d.lanes[i].frags.discards
	}
	return n
}

func (d *Device) fragForwarded() int {
	n := 0
	for i := range d.lanes {
		n += d.lanes[i].frags.forwarded
	}
	return n
}

// NumLanes reports the device's lane (= conntrack shard) count.
func (d *Device) NumLanes() int { return len(d.lanes) }

// LaneOf returns the index of the lane owning key's canonical host pair.
// Fragments carry no ports, but PairHash ignores them, so every fragment and
// every direction of a flow maps to one lane.
//
//tspuvet:hotpath
func (d *Device) LaneOf(key packet.FlowKey4) int {
	return int(key.PairHash() & d.ct.mask)
}

func (d *Device) now() time.Duration { return d.cfg.Sim.Now() }

// isLocalDir reports whether dir is the local→remote direction.
func (d *Device) isLocalDir(dir netem.Direction) bool { return dir == d.cfg.LocalDir }

// Handle implements netem.Middlebox: the full TSPU datapath for one packet.
//
//tspuvet:hotpath
func (d *Device) Handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	key := packet.FlowKey4Of(pkt)
	return d.handleLane(pipe, pkt, dir, key, d.LaneOf(key))
}

// HandleSharded is the batch engine's entry point: identical to Handle, with
// the flow key and lane precomputed by the caller (which already hashed the
// key to route the packet to this worker). lane MUST equal LaneOf(key); the
// caller owns that lane for the duration of the call.
//
//tspuvet:hotpath
//tspuvet:lane
func (d *Device) HandleSharded(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction, key packet.FlowKey4, lane int) netem.Action {
	return d.handleLane(pipe, pkt, dir, key, lane)
}

//tspuvet:hotpath
func (d *Device) handleLane(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction, key packet.FlowKey4, lane int) netem.Action {
	ln := &d.lanes[lane]
	sh := &d.ct.shards[lane]
	ln.stats.handled++
	now := d.now()
	d.maybeSweepLane(now, sh, ln)

	// 1. IP-based blocking applies to everything, fragments and ICMP
	// included, "regardless of packet payload or TCP ports" (§5.2).
	if act, decided := d.handleIPBlock(pkt, dir, key, sh, ln, now); decided {
		return act
	}

	// 2. Fragments go to the fragment engine; content inspection never sees
	// them, which is why IP fragmentation evades SNI blocking (§8).
	if pkt.IsFragment() {
		ln.stats.fragBuffers++
		return ln.frags.handle(pipe, pkt, dir)
	}

	switch {
	case pkt.TCP != nil:
		return d.handleTCP(pkt, dir, key, sh, ln, now)
	case pkt.UDP != nil:
		return d.handleUDP(pkt, dir, key, sh, ln, now)
	default:
		return netem.Pass
	}
}

// maybeSweepLane runs this lane's housekeeping from the datapath: the lane's
// own conntrack shard advances its timeout wheel, touching no shared state.
func (d *Device) maybeSweepLane(now time.Duration, sh *ctShard, ln *devLane) {
	if d.sweepEvery <= 0 || now-ln.lastSweep < d.sweepEvery {
		return
	}
	ln.lastSweep = now
	sh.advanceWheel(now)
	sh.compactFIFO()
}

// handleIPBlock implements IP-based blocking (§5.2): a Russian client's
// outgoing packets to a blocked IP are dropped, while responses to a
// connection the blocked IP initiated are rewritten to payload-stripped
// RST/ACKs — the signal the Tor-node correlation experiments look for. The
// device discriminates initiation from response by the ACK flag rather than
// by conntrack origin: an upstream-only installation never sees the inbound
// SYN, yet the paper observes it still rewrites the outbound SYN/ACK, so the
// decision cannot depend on having tracked the flow from its start.
func (d *Device) handleIPBlock(pkt *packet.Packet, dir netem.Direction, key packet.FlowKey4, sh *ctShard, ln *devLane, now time.Duration) (netem.Action, bool) {
	// Fast path: with no IP blocks in the policy (the overwhelmingly common
	// case) there is nothing to decide, and in particular no reason to pay
	// two address-map probes per packet.
	if len(d.policy.BlockedIPs) == 0 {
		return netem.Pass, false
	}
	dstBlocked := d.policy.IPBlocked(pkt.IP.Dst)
	srcBlocked := d.policy.IPBlocked(pkt.IP.Src)
	if !dstBlocked && !srcBlocked {
		return netem.Pass, false
	}

	// ICMP involving blocked IPs is dropped in both directions.
	if pkt.IP.Protocol == packet.ProtoICMP {
		ln.stats.dropped++
		return netem.Drop, true
	}

	if pkt.TCP != nil || pkt.UDP != nil {
		// The per-connection failure roll is cached on the flow entry.
		e := sh.observe(key, pkt, d.isLocalDir(dir), now)
		if !e.ipVerdictKnown {
			e.ipVerdictKnown = true
			e.ipBlocked = !d.failRoll(e, IPBlock, ln)
			if e.ipBlocked {
				ln.stats.triggers[IPBlock]++
			}
		}
		if !e.ipBlocked {
			return netem.Pass, true
		}
	}

	if d.isLocalDir(dir) && dstBlocked {
		if pkt.TCP != nil && pkt.TCP.Flags.Has(packet.FlagACK) {
			// Response-shaped packet: strip the payload and flip to RST/ACK.
			pkt.TCP.Payload = nil
			pkt.TCP.Flags = packet.FlagsRSTACK
			ln.stats.rewritten++
			return netem.Pass, true
		}
		// Initiation-shaped (SYN, or non-TCP): dropped at the TSPU.
		ln.stats.dropped++
		return netem.Drop, true
	}
	// Inbound from a blocked IP: the request is allowed through.
	return netem.Pass, true
}

// flowRand draws the next value of e's private random stream: one splitmix64
// finalization over (FlowSeed, flow hash, roll index). A pure function of
// flow identity and roll count — nothing shared is consumed, so the result
// is the same whichever worker, batch, or packet ordering gets here.
//
//tspuvet:hotpath
func (d *Device) flowRand(e *flowEntry) uint64 {
	seq := uint64(e.rollSeq)
	e.rollSeq++
	z := (d.cfg.FlowSeed ^ e.key.Hash()) + seq*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// failRoll returns true when the device misses this trigger (per-connection
// failure injection, Table 1). In PerFlowRand mode the roll comes from the
// flow's private stream; otherwise from the device's shared stream.
func (d *Device) failRoll(e *flowEntry, t BlockType, ln *devLane) bool {
	rate, ok := d.cfg.FailureRates[t]
	if !ok || rate <= 0 {
		return false
	}
	var miss bool
	if d.cfg.PerFlowRand {
		miss = float64(d.flowRand(e)>>11)/(1<<53) < rate
	} else {
		//tspuvet:allow lanecheck: the shared-stream branch runs only with PerFlowRand off, and the batch engine requires PerFlowRand devices (engine doc); single-threaded Handle is the only caller here
		miss = d.rng.Bool(rate)
	}
	if miss {
		ln.stats.misses[t]++
	}
	return miss
}

// sni2Allowance picks the "additional five to eight packets" SNI-II budget.
func (d *Device) sni2Allowance(e *flowEntry) int {
	if d.cfg.PerFlowRand {
		span := uint64(d.cfg.SNI2AllowanceMax - d.cfg.SNI2AllowanceMin + 1)
		return d.cfg.SNI2AllowanceMin + int(d.flowRand(e)%span)
	}
	//tspuvet:allow lanecheck: the shared-stream branch runs only with PerFlowRand off, and the batch engine requires PerFlowRand devices (engine doc); single-threaded Handle is the only caller here
	return d.rng.IntRange(d.cfg.SNI2AllowanceMin, d.cfg.SNI2AllowanceMax)
}

func (d *Device) handleTCP(pkt *packet.Packet, dir netem.Direction, key packet.FlowKey4, sh *ctShard, ln *devLane, now time.Duration) netem.Action {
	e := sh.observe(key, pkt, d.isLocalDir(dir), now)

	// Active blocking state takes precedence over new trigger detection.
	if b := e.activeBlock(now); b != nil {
		return d.applyBlock(e, b, pkt, dir, ln, now)
	}

	// Trigger detection happens only on local→remote packets: "any sequence
	// starting with a packet sent by the remote peer is NOT a valid prefix"
	// (§5.3.2).
	if d.isLocalDir(dir) && len(pkt.TCP.Payload) > 0 && pkt.TCP.DstPort == 443 {
		if act := d.detectSNITrigger(e, pkt, ln, now); act != netem.Pass {
			return act
		}
	}
	return netem.Pass
}

// detectSNITrigger inspects one upstream payload for a triggering
// ClientHello and installs the matching blocking state.
func (d *Device) detectSNITrigger(e *flowEntry, pkt *packet.Packet, ln *devLane, now time.Duration) netem.Action {
	if e.origin == OriginRemote && !d.cfg.StrictRoles {
		return netem.Pass // remotely-originated connections are exempt
	}
	cls, ok := d.classifySNI(e, pkt, ln)
	if !ok || !cls.Any() {
		return netem.Pass
	}

	confused := e.roleConfused() && !d.cfg.StrictRoles

	// SNI-III throttling takes precedence while its policy window is
	// active: the same domains moved to SNI-I only after throttling was
	// switched off on March 4 (§5.2).
	if cls.Throttle && !e.isImmune(SNI3) {
		if d.failRoll(e, SNI3, ln) {
			e.setImmune(SNI3)
		} else {
			ln.stats.triggers[SNI3]++
			bucket := newTokenBucket(d.policy.ThrottleRate, 0, now)
			d.ct.setBlock(e, SNI3, now, 0, bucket)
			return netem.Pass
		}
	}

	// SNI-I: primary mechanism, skipped when the role heuristic was
	// confused by a remote SYN (Fig. 4 green paths).
	if cls.SNI1 && !confused && !e.isImmune(SNI1) {
		if d.failRoll(e, SNI1, ln) {
			e.setImmune(SNI1)
		} else {
			ln.stats.triggers[SNI1]++
			d.ct.setBlock(e, SNI1, now, 0, nil)
			return netem.Pass // the trigger itself is delivered
		}
	}
	// SNI-IV: backup for its select domain list; fires when SNI-I did not
	// take action. Drops everything including the trigger.
	if cls.SNI4 && !e.isImmune(SNI4) {
		if d.failRoll(e, SNI4, ln) {
			e.setImmune(SNI4)
		} else {
			ln.stats.triggers[SNI4]++
			d.ct.setBlock(e, SNI4, now, 0, nil)
			ln.stats.dropped++
			return netem.Drop
		}
	}
	// Role confusion exempts only SNI-I (Fig. 4); SNI-II still fires —
	// Table 8 measures "Ls;Rs;Lt" as DROP with an SNI-II trigger.
	// SNI-II: allowance then symmetric drop.
	if cls.SNI2 && !e.isImmune(SNI2) {
		if d.failRoll(e, SNI2, ln) {
			e.setImmune(SNI2)
		} else {
			ln.stats.triggers[SNI2]++
			d.ct.setBlock(e, SNI2, now, d.sni2Allowance(e), nil)
			return netem.Pass
		}
	}
	return netem.Pass
}

// classifySNI parses the packet payload (depth-limited, single record) for a
// ClientHello SNI and classifies it under the current policy. The fast path
// pairs tlsx.ExtractSNI with Policy case-folding into the lane's scratch so
// a pass-through packet — TLS or not — is inspected without a single
// allocation and without touching shared policy buffers; slowClassifySNI is
// the retained reference implementation. With the ReassembleTCP ablation the
// device instead accumulates upstream bytes per flow and parses the stream
// prefix, which defeats TCP segmentation evasion.
func (d *Device) classifySNI(e *flowEntry, pkt *packet.Packet, ln *devLane) (Classification, bool) {
	if d.cfg.ReassembleTCP {
		acc := append(ln.reasm[e.key], pkt.TCP.Payload...)
		if len(acc) > 4096 {
			acc = acc[:4096]
		}
		ln.reasm[e.key] = acc
		//tspuvet:allow hotpath: the ReassembleTCP ablation deep-parses the stream prefix every packet; its malformed-input error path allocates by design and the ablation is measured separately from the production fast path
		if info, err := tlsx.ParseClientHelloDeep(acc); err == nil && info.ServerName != "" {
			return d.policy.Classify(info.ServerName), true
		}
		return Classification{}, false
	}
	if d.slowPath {
		sni, ok := d.slowExtractSNI(pkt)
		if !ok {
			return Classification{}, false
		}
		return d.policy.Classify(sni), true
	}
	buf := pkt.TCP.Payload
	if len(buf) > d.cfg.InspectDepth {
		buf = buf[:d.cfg.InspectDepth]
	}
	sni, ok := tlsx.ExtractSNI(buf)
	if !ok {
		return Classification{}, false
	}
	return d.policy.classifyBytesWith(sni, &ln.fold), true
}

// slowExtractSNI is the pre-optimization reference: a full structural parse
// that materializes the Info struct and its strings. It is kept (unexported,
// exercised via the slowPath flag) as the oracle the equivalence property
// tests compare the zero-allocation path against.
//
//tspuvet:coldpath retained pre-optimization oracle, reached only with the slowPath flag
func (d *Device) slowExtractSNI(pkt *packet.Packet) (string, bool) {
	buf := pkt.TCP.Payload
	if len(buf) > d.cfg.InspectDepth {
		buf = buf[:d.cfg.InspectDepth]
	}
	info, err := tlsx.ParseClientHello(buf)
	if err != nil || info.ServerName == "" {
		return "", false
	}
	return info.ServerName, true
}

// applyBlock enforces an installed blocking state on one packet.
func (d *Device) applyBlock(e *flowEntry, b *blockState, pkt *packet.Packet, dir netem.Direction, ln *devLane, now time.Duration) netem.Action {
	//tspuvet:allow statecheck: IPBlock never installs a flow blockState; prefix enforcement happens in handleIPBlock before conntrack blocks
	switch b.typ {
	case SNI1:
		// Acts only on downstream (remote→local) packets: truncate payload,
		// set RST/ACK; TTL, seq, and ack are left untouched (§5.2).
		if !d.isLocalDir(dir) {
			pkt.TCP.Payload = nil
			pkt.TCP.Flags = packet.FlagsRSTACK
			ln.stats.rewritten++
		}
		return netem.Pass
	case SNI2:
		if b.allowance > 0 {
			b.allowance--
			return netem.Pass
		}
		ln.stats.dropped++
		return netem.Drop
	case SNI3:
		if b.bucket.admit(len(pkt.AppPayload()), now) {
			return netem.Pass
		}
		ln.stats.throttled++
		return netem.Drop
	case SNI4, QUICBlock:
		ln.stats.dropped++
		return netem.Drop
	}
	return netem.Pass
}

func (d *Device) handleUDP(pkt *packet.Packet, dir netem.Direction, key packet.FlowKey4, sh *ctShard, ln *devLane, now time.Duration) netem.Action {
	e := sh.observe(key, pkt, d.isLocalDir(dir), now)

	if b := e.activeBlock(now); b != nil {
		return d.applyBlock(e, b, pkt, dir, ln, now)
	}
	if !d.policy.QUICFilter || !d.isLocalDir(dir) {
		return netem.Pass
	}
	if quicx.MatchesTSPUFingerprint(pkt.UDP.DstPort, pkt.UDP.Payload) && !e.isImmune(QUICBlock) {
		if d.failRoll(e, QUICBlock, ln) {
			e.setImmune(QUICBlock)
		} else {
			ln.stats.triggers[QUICBlock]++
			d.ct.setBlock(e, QUICBlock, now, 0, nil)
			// The fingerprinted packet itself is delivered; everything after
			// is dropped "regardless of their length or the presence of the
			// QUIC fingerprint" (§5.2).
		}
	}
	return netem.Pass
}
