package tspu

import (
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/quicx"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
)

// Config configures one TSPU device instance.
type Config struct {
	// Name identifies the device in stats and traces.
	Name string
	// Sim supplies virtual time.
	Sim *sim.Sim
	// Rand drives failure injection and the SNI-II allowance pick. Nil gets
	// a fixed-seed stream.
	Rand *sim.Rand
	// LocalDir is the link direction corresponding to local→remote
	// (RU→outside) travel. The device's asymmetric behavior — blocking only
	// locally-originated connections — is expressed relative to this.
	LocalDir netem.Direction
	// InspectDepth bounds how many payload bytes the SNI parser examines
	// (default 512). The paper's padding/prepending evasions work because
	// the real device's inspection is similarly bounded.
	InspectDepth int
	// FragLimit is the fragment-queue cap (default 45, the TSPU
	// fingerprint).
	FragLimit int
	// Timeouts default to the paper's measured values.
	Timeouts StateTimeouts
	// FailureRates gives the per-connection probability that a trigger of
	// each type is missed (Table 1). Devices without an entry never fail.
	FailureRates map[BlockType]float64
	// SNI2AllowanceMin/Max bound the "additional five to eight packets"
	// SNI-II delivers after its trigger (§5.2).
	SNI2AllowanceMin, SNI2AllowanceMax int

	// ReassembleTCP is an ablation switch: reassemble upstream TCP payload
	// per flow before SNI inspection, like the GFW has done since 2013 (§8).
	// The real TSPU does not, which is why TCP segmentation evades it.
	ReassembleTCP bool
	// StrictRoles is an ablation switch: apply SNI triggers regardless of
	// inferred roles, patching the split-handshake/simultaneous-open
	// evasions at the cost of blocking remote-originated flows.
	StrictRoles bool
}

// Stats counts device activity.
type Stats struct {
	Handled     int
	Triggers    map[BlockType]int
	Misses      map[BlockType]int // failure-injected trigger misses
	Dropped     int
	Rewritten   int
	Throttled   int
	FragBuffers int
}

// Device is one TSPU middlebox. Attach it to a netem link; it inspects every
// packet crossing in both directions. It is not safe for concurrent use (the
// simulator is single-threaded).
type Device struct {
	cfg      Config
	policy   *Policy
	rng      *sim.Rand
	ct       *conntrack
	frags    *fragEngine
	stats    Stats
	timeouts StateTimeouts
	// reasm holds per-flow upstream byte buffers for the ReassembleTCP
	// ablation.
	reasm map[packet.FlowKey4][]byte
	// slowPath routes SNI classification through the retained reference
	// implementation (string-building parser + Contains) instead of the
	// allocation-free fast path; the equivalence property tests flip it to
	// pin that both paths produce byte-identical device behavior.
	slowPath bool
	// sweepEvery/lastSweep drive datapath-piggybacked housekeeping.
	sweepEvery time.Duration
	lastSweep  time.Duration
}

// NewDevice creates a device. If no controller registers it, it enforces an
// empty policy.
func NewDevice(cfg Config) *Device {
	if cfg.InspectDepth == 0 {
		cfg.InspectDepth = 512
	}
	if cfg.SNI2AllowanceMin == 0 {
		cfg.SNI2AllowanceMin = 5
	}
	if cfg.SNI2AllowanceMax < cfg.SNI2AllowanceMin {
		cfg.SNI2AllowanceMax = cfg.SNI2AllowanceMin + 3
	}
	if (cfg.Timeouts == StateTimeouts{}) {
		cfg.Timeouts = DefaultTimeouts()
	}
	rng := cfg.Rand
	if rng == nil {
		rng = sim.NewRand(0x75b7)
	}
	d := &Device{
		cfg:      cfg,
		policy:   NewPolicy(),
		rng:      rng,
		ct:       newConntrack(cfg.Timeouts),
		frags:    newFragEngine(cfg.FragLimit, cfg.Timeouts.Frag),
		timeouts: cfg.Timeouts,
		reasm:    make(map[packet.FlowKey4][]byte),
	}
	d.stats.Triggers = make(map[BlockType]int)
	d.stats.Misses = make(map[BlockType]int)
	return d
}

// Name implements netem.Middlebox.
func (d *Device) Name() string {
	if d.cfg.Name != "" {
		return d.cfg.Name
	}
	return "tspu"
}

// Policy returns the device's current policy.
func (d *Device) Policy() *Policy { return d.policy }

// SetPolicy installs a policy directly (tests; production path is the
// Controller).
func (d *Device) SetPolicy(p *Policy) { d.policy = p }

// Stats returns a copy of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// ConntrackSize exposes the flow-table size for resource experiments.
func (d *Device) ConntrackSize() int { return d.ct.size() }

// PendingFragQueues exposes the fragment-engine queue count.
func (d *Device) PendingFragQueues() int { return d.frags.pending() }

func (d *Device) now() time.Duration { return d.cfg.Sim.Now() }

// isLocalDir reports whether dir is the local→remote direction.
func (d *Device) isLocalDir(dir netem.Direction) bool { return dir == d.cfg.LocalDir }

// Handle implements netem.Middlebox: the full TSPU datapath for one packet.
//
//tspuvet:hotpath
func (d *Device) Handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	d.stats.Handled++
	now := d.now()
	d.maybeSweep(now)

	// 1. IP-based blocking applies to everything, fragments and ICMP
	// included, "regardless of packet payload or TCP ports" (§5.2).
	if act, decided := d.handleIPBlock(pkt, dir, now); decided {
		return act
	}

	// 2. Fragments go to the fragment engine; content inspection never sees
	// them, which is why IP fragmentation evades SNI blocking (§8).
	if pkt.IsFragment() {
		d.stats.FragBuffers++
		return d.frags.handle(pipe, pkt, dir)
	}

	switch {
	case pkt.TCP != nil:
		return d.handleTCP(pkt, dir, now)
	case pkt.UDP != nil:
		return d.handleUDP(pkt, dir, now)
	default:
		return netem.Pass
	}
}

// handleIPBlock implements IP-based blocking (§5.2): a Russian client's
// outgoing packets to a blocked IP are dropped, while responses to a
// connection the blocked IP initiated are rewritten to payload-stripped
// RST/ACKs — the signal the Tor-node correlation experiments look for. The
// device discriminates initiation from response by the ACK flag rather than
// by conntrack origin: an upstream-only installation never sees the inbound
// SYN, yet the paper observes it still rewrites the outbound SYN/ACK, so the
// decision cannot depend on having tracked the flow from its start.
func (d *Device) handleIPBlock(pkt *packet.Packet, dir netem.Direction, now time.Duration) (netem.Action, bool) {
	// Fast path: with no IP blocks in the policy (the overwhelmingly common
	// case) there is nothing to decide, and in particular no reason to pay
	// two address-map probes per packet.
	if len(d.policy.BlockedIPs) == 0 {
		return netem.Pass, false
	}
	dstBlocked := d.policy.IPBlocked(pkt.IP.Dst)
	srcBlocked := d.policy.IPBlocked(pkt.IP.Src)
	if !dstBlocked && !srcBlocked {
		return netem.Pass, false
	}

	// ICMP involving blocked IPs is dropped in both directions.
	if pkt.IP.Protocol == packet.ProtoICMP {
		d.stats.Dropped++
		return netem.Drop, true
	}

	if pkt.TCP != nil || pkt.UDP != nil {
		// The per-connection failure roll is cached on the flow entry.
		e := d.ct.observe(pkt, d.isLocalDir(dir), now)
		if !e.ipVerdictKnown {
			e.ipVerdictKnown = true
			e.ipBlocked = !d.failRoll(IPBlock)
			if e.ipBlocked {
				d.stats.Triggers[IPBlock]++
			}
		}
		if !e.ipBlocked {
			return netem.Pass, true
		}
	}

	if d.isLocalDir(dir) && dstBlocked {
		if pkt.TCP != nil && pkt.TCP.Flags.Has(packet.FlagACK) {
			// Response-shaped packet: strip the payload and flip to RST/ACK.
			pkt.TCP.Payload = nil
			pkt.TCP.Flags = packet.FlagsRSTACK
			d.stats.Rewritten++
			return netem.Pass, true
		}
		// Initiation-shaped (SYN, or non-TCP): dropped at the TSPU.
		d.stats.Dropped++
		return netem.Drop, true
	}
	// Inbound from a blocked IP: the request is allowed through.
	return netem.Pass, true
}

// failRoll returns true when the device misses this trigger (per-connection
// failure injection, Table 1).
func (d *Device) failRoll(t BlockType) bool {
	rate, ok := d.cfg.FailureRates[t]
	if !ok || rate <= 0 {
		return false
	}
	if d.rng.Bool(rate) {
		d.stats.Misses[t]++
		return true
	}
	return false
}

func (d *Device) handleTCP(pkt *packet.Packet, dir netem.Direction, now time.Duration) netem.Action {
	e := d.ct.observe(pkt, d.isLocalDir(dir), now)

	// Active blocking state takes precedence over new trigger detection.
	if b := e.activeBlock(now); b != nil {
		return d.applyBlock(e, b, pkt, dir, now)
	}

	// Trigger detection happens only on local→remote packets: "any sequence
	// starting with a packet sent by the remote peer is NOT a valid prefix"
	// (§5.3.2).
	if d.isLocalDir(dir) && len(pkt.TCP.Payload) > 0 && pkt.TCP.DstPort == 443 {
		if act := d.detectSNITrigger(e, pkt, now); act != netem.Pass {
			return act
		}
	}
	return netem.Pass
}

// detectSNITrigger inspects one upstream payload for a triggering
// ClientHello and installs the matching blocking state.
func (d *Device) detectSNITrigger(e *flowEntry, pkt *packet.Packet, now time.Duration) netem.Action {
	if e.origin == OriginRemote && !d.cfg.StrictRoles {
		return netem.Pass // remotely-originated connections are exempt
	}
	cls, ok := d.classifySNI(e, pkt)
	if !ok || !cls.Any() {
		return netem.Pass
	}

	confused := e.roleConfused() && !d.cfg.StrictRoles

	// SNI-III throttling takes precedence while its policy window is
	// active: the same domains moved to SNI-I only after throttling was
	// switched off on March 4 (§5.2).
	if cls.Throttle && !e.isImmune(SNI3) {
		if d.failRoll(SNI3) {
			e.setImmune(SNI3)
		} else {
			d.stats.Triggers[SNI3]++
			bucket := newTokenBucket(d.policy.ThrottleRate, 0, now)
			d.ct.setBlock(e, SNI3, now, 0, bucket)
			return netem.Pass
		}
	}

	// SNI-I: primary mechanism, skipped when the role heuristic was
	// confused by a remote SYN (Fig. 4 green paths).
	if cls.SNI1 && !confused && !e.isImmune(SNI1) {
		if d.failRoll(SNI1) {
			e.setImmune(SNI1)
		} else {
			d.stats.Triggers[SNI1]++
			d.ct.setBlock(e, SNI1, now, 0, nil)
			return netem.Pass // the trigger itself is delivered
		}
	}
	// SNI-IV: backup for its select domain list; fires when SNI-I did not
	// take action. Drops everything including the trigger.
	if cls.SNI4 && !e.isImmune(SNI4) {
		if d.failRoll(SNI4) {
			e.setImmune(SNI4)
		} else {
			d.stats.Triggers[SNI4]++
			d.ct.setBlock(e, SNI4, now, 0, nil)
			d.stats.Dropped++
			return netem.Drop
		}
	}
	// Role confusion exempts only SNI-I (Fig. 4); SNI-II still fires —
	// Table 8 measures "Ls;Rs;Lt" as DROP with an SNI-II trigger.
	// SNI-II: allowance then symmetric drop.
	if cls.SNI2 && !e.isImmune(SNI2) {
		if d.failRoll(SNI2) {
			e.setImmune(SNI2)
		} else {
			d.stats.Triggers[SNI2]++
			allowance := d.rng.IntRange(d.cfg.SNI2AllowanceMin, d.cfg.SNI2AllowanceMax)
			d.ct.setBlock(e, SNI2, now, allowance, nil)
			return netem.Pass
		}
	}
	return netem.Pass
}

// classifySNI parses the packet payload (depth-limited, single record) for a
// ClientHello SNI and classifies it under the current policy. The fast path
// pairs tlsx.ExtractSNI with Policy.ClassifyBytes so a pass-through packet —
// TLS or not — is inspected without a single allocation; slowClassifySNI is
// the retained reference implementation. With the ReassembleTCP ablation the
// device instead accumulates upstream bytes per flow and parses the stream
// prefix, which defeats TCP segmentation evasion.
func (d *Device) classifySNI(e *flowEntry, pkt *packet.Packet) (Classification, bool) {
	if d.cfg.ReassembleTCP {
		acc := append(d.reasm[e.key], pkt.TCP.Payload...)
		if len(acc) > 4096 {
			acc = acc[:4096]
		}
		d.reasm[e.key] = acc
		if info, err := tlsx.ParseClientHelloDeep(acc); err == nil && info.ServerName != "" {
			return d.policy.Classify(info.ServerName), true
		}
		return Classification{}, false
	}
	if d.slowPath {
		sni, ok := d.slowExtractSNI(pkt)
		if !ok {
			return Classification{}, false
		}
		return d.policy.Classify(sni), true
	}
	buf := pkt.TCP.Payload
	if len(buf) > d.cfg.InspectDepth {
		buf = buf[:d.cfg.InspectDepth]
	}
	sni, ok := tlsx.ExtractSNI(buf)
	if !ok {
		return Classification{}, false
	}
	return d.policy.ClassifyBytes(sni), true
}

// slowExtractSNI is the pre-optimization reference: a full structural parse
// that materializes the Info struct and its strings. It is kept (unexported,
// exercised via the slowPath flag) as the oracle the equivalence property
// tests compare the zero-allocation path against.
//
//tspuvet:coldpath retained pre-optimization oracle, reached only with the slowPath flag
func (d *Device) slowExtractSNI(pkt *packet.Packet) (string, bool) {
	buf := pkt.TCP.Payload
	if len(buf) > d.cfg.InspectDepth {
		buf = buf[:d.cfg.InspectDepth]
	}
	info, err := tlsx.ParseClientHello(buf)
	if err != nil || info.ServerName == "" {
		return "", false
	}
	return info.ServerName, true
}

// applyBlock enforces an installed blocking state on one packet.
func (d *Device) applyBlock(e *flowEntry, b *blockState, pkt *packet.Packet, dir netem.Direction, now time.Duration) netem.Action {
	switch b.typ {
	case SNI1:
		// Acts only on downstream (remote→local) packets: truncate payload,
		// set RST/ACK; TTL, seq, and ack are left untouched (§5.2).
		if !d.isLocalDir(dir) {
			pkt.TCP.Payload = nil
			pkt.TCP.Flags = packet.FlagsRSTACK
			d.stats.Rewritten++
		}
		return netem.Pass
	case SNI2:
		if b.allowance > 0 {
			b.allowance--
			return netem.Pass
		}
		d.stats.Dropped++
		return netem.Drop
	case SNI3:
		if b.bucket.admit(len(pkt.AppPayload()), now) {
			return netem.Pass
		}
		d.stats.Throttled++
		return netem.Drop
	case SNI4, QUICBlock:
		d.stats.Dropped++
		return netem.Drop
	}
	return netem.Pass
}

func (d *Device) handleUDP(pkt *packet.Packet, dir netem.Direction, now time.Duration) netem.Action {
	e := d.ct.observe(pkt, d.isLocalDir(dir), now)

	if b := e.activeBlock(now); b != nil {
		return d.applyBlock(e, b, pkt, dir, now)
	}
	if !d.policy.QUICFilter || !d.isLocalDir(dir) {
		return netem.Pass
	}
	if quicx.MatchesTSPUFingerprint(pkt.UDP.DstPort, pkt.UDP.Payload) && !e.isImmune(QUICBlock) {
		if d.failRoll(QUICBlock) {
			e.setImmune(QUICBlock)
		} else {
			d.stats.Triggers[QUICBlock]++
			d.ct.setBlock(e, QUICBlock, now, 0, nil)
			// The fingerprinted packet itself is delivered; everything after
			// is dropped "regardless of their length or the presence of the
			// QUIC fingerprint" (§5.2).
		}
	}
	return netem.Pass
}
