package tspu

import (
	"testing"
	"time"

	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
)

func TestMaxFlowsPressureEviction(t *testing.T) {
	l := newLab(t, nil)
	l.device.SetMaxFlows(64)
	// Open 200 flows through the device.
	for i := 0; i < 200; i++ {
		l.client.SendTCP(l.server.Addr(), uint16(20000+i), 80, packet.FlagSYN, 1, 0, nil)
	}
	l.sim.Run()
	if l.device.ConntrackSize() > 64 {
		t.Fatalf("table size %d exceeds bound", l.device.ConntrackSize())
	}
	if l.device.PressureEvictions() == 0 {
		t.Fatal("no pressure evictions recorded")
	}
}

func TestStateExhaustionEvadesBlocking(t *testing.T) {
	// §8's provisioning question made concrete: an under-provisioned device
	// loses blocking state under a flow flood, and a previously-blocked
	// connection resumes — while an unbounded device keeps blocking.
	run := func(maxFlows int) bool {
		l := newLab(t, nil)
		if maxFlows > 0 {
			l.device.SetMaxFlows(maxFlows)
		}
		conn := l.openAndSendCH("facebook.com")
		l.sim.Run()
		if !conn.ResetSeen {
			t.Fatal("not blocked initially")
		}
		// Flood: thousands of unrelated SYNs push the table.
		for i := 0; i < 3000; i++ {
			l.client.SendTCP(l.server.Addr(), uint16(10000+i), 80, packet.FlagSYN, 1, 0, nil)
		}
		l.sim.Run()
		// Probe whether the SNI-I hold survived: a downstream data packet
		// is rewritten only if the blocking entry is still present.
		before := len(conn.Packets)
		l.server.SendTCP(conn.LocalAddr, 443, conn.LocalPort, packet.FlagsPSHACK, 9000, 1, []byte("post-flood"))
		l.sim.Run()
		if len(conn.Packets) == before {
			t.Fatal("probe lost")
		}
		last := conn.Packets[len(conn.Packets)-1]
		return last.TCP.Flags.Has(packet.FlagRST) // still blocked?
	}
	if !run(0) {
		t.Fatal("well-provisioned device lost blocking state")
	}
	if run(256) {
		t.Fatal("under-provisioned device kept blocking state through the flood")
	}
}

func TestSweeperReclaimsExpiredState(t *testing.T) {
	l := newLab(t, nil)
	l.device.EnableAutoSweep(30 * time.Second)
	for i := 0; i < 100; i++ {
		l.client.SendTCP(l.server.Addr(), uint16(21000+i), 80, packet.FlagSYN, 1, 0, nil)
	}
	l.sim.Run()
	if l.device.ConntrackSize() != 100 {
		t.Fatalf("size = %d before expiry", l.device.ConntrackSize())
	}
	// SYN_SENT entries expire after 60s; the next packet past the sweep
	// interval triggers housekeeping.
	l.sim.RunUntil(l.sim.Now() + 2*time.Minute)
	l.client.SendTCP(l.server.Addr(), 29999, 80, packet.FlagSYN, 1, 0, nil)
	l.sim.Run()
	if got := l.device.ConntrackSize(); got != 1 {
		t.Fatalf("size = %d after sweep, want only the probe flow", got)
	}
}

func TestManualSweep(t *testing.T) {
	l := newLab(t, nil)
	for i := 0; i < 50; i++ {
		l.client.SendTCP(l.server.Addr(), uint16(22000+i), 80, packet.FlagSYN, 1, 0, nil)
	}
	l.sim.Run()
	l.sim.RunUntil(l.sim.Now() + 5*time.Minute)
	if n := l.device.Sweep(); n != 50 {
		t.Fatalf("sweep reclaimed %d, want 50", n)
	}
	if l.device.Sweep() != 0 {
		t.Fatal("second sweep reclaimed entries")
	}
}

func TestPressureEvictionNeverEvictsOwnInsert(t *testing.T) {
	l := newLab(t, nil)
	l.device.SetMaxFlows(1)
	var lastConn *hostnet.TCPConn
	l.server.Listen(443, hostnet.ListenOptions{})
	for i := 0; i < 5; i++ {
		lastConn = l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
		l.sim.Run()
	}
	// The most recent flow must still have its entry (the bound holds but
	// the newest insert survives).
	if l.device.ConntrackSize() == 0 {
		t.Fatal("table empty")
	}
	ch := clientHello("facebook.com")
	lastConn.Send(ch)
	l.sim.Run()
	if !lastConn.ResetSeen {
		t.Fatal("latest flow lost its entry to its own insertion")
	}
}
