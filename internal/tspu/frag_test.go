package tspu

import (
	"testing"
	"time"

	"tspusim/internal/hostnet"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
)

// sendFragments pushes pre-built fragments from the lab client with the
// given inter-fragment spacing.
func (l *lab) sendFragments(frags []*packet.Packet, gap time.Duration) {
	for i, f := range frags {
		f := f
		//tspuvet:retains the test owns the pre-built fragments until each scheduled Send hands them to the wire
		l.sim.After(time.Duration(i)*gap, func() { l.client.Send(f) })
	}
}

func fragmentedSYN(t *testing.T, l *lab, n int, id uint16) []*packet.Packet {
	t.Helper()
	p := packet.NewTCP(l.client.Addr(), l.server.Addr(), 41000, 7547, packet.FlagSYN, 1, 0, nil)
	p.IP.ID = id
	frags, err := packet.FragmentCount(p, n)
	if err != nil {
		t.Fatal(err)
	}
	return frags
}

func TestFragmentsBufferedUntilLast(t *testing.T) {
	l := newLab(t, nil)
	var arrivals []time.Duration
	l.server.Tap(func(p *packet.Packet) { arrivals = append(arrivals, l.sim.Now()) })
	frags := fragmentedSYN(t, l, 3, 900)
	l.sendFragments(frags, 100*time.Millisecond)
	l.sim.Run()
	if len(arrivals) != 3 {
		t.Fatalf("arrivals = %d, want 3 fragments", len(arrivals))
	}
	// All fragments must arrive together (after the last was sent), not
	// spaced by the sending gap.
	if arrivals[2]-arrivals[0] > time.Millisecond {
		t.Fatalf("fragments not released together: %v", arrivals)
	}
	if arrivals[0] < 200*time.Millisecond {
		t.Fatal("fragments released before the last arrived")
	}
}

func TestFragmentsNotReassembled(t *testing.T) {
	l := newLab(t, nil)
	count := 0
	l.server.Tap(func(p *packet.Packet) {
		if p.IsFragment() {
			count++
		}
	})
	frags := fragmentedSYN(t, l, 4, 901)
	l.sendFragments(frags, time.Millisecond)
	l.sim.Run()
	if count != 4 {
		t.Fatalf("server saw %d fragments, want 4 individually forwarded", count)
	}
}

func TestFragmentTTLRewrite(t *testing.T) {
	// Fig. 3: the second fragment is forwarded with the TTL of the first as
	// seen at the device.
	l := newLab(t, nil)
	var ttls []uint8
	l.server.Tap(func(p *packet.Packet) { ttls = append(ttls, p.IP.TTL) })
	frags := fragmentedSYN(t, l, 2, 902)
	frags[0].IP.TTL = 64
	frags[1].IP.TTL = 12 // would survive, but must be rewritten anyway
	l.sendFragments(frags, time.Millisecond)
	l.sim.Run()
	if len(ttls) != 2 {
		t.Fatalf("got %d fragments", len(ttls))
	}
	if ttls[0] != ttls[1] {
		t.Fatalf("TTLs differ after device: %v", ttls)
	}
	// Client→r1 decrements nothing (host send), r1 decrements to 63; device
	// rewrites both to 63; border decrements to 62.
	if ttls[0] != 62 {
		t.Fatalf("TTL = %d, want 62", ttls[0])
	}
}

func TestFragmentTTLRewriteEnablesLocalization(t *testing.T) {
	// A second fragment with TTL just large enough to reach the device gets
	// boosted; with TTL too small it dies en route and the queue times out.
	l := newLab(t, nil)
	received := 0
	l.server.Tap(func(p *packet.Packet) { received++ })

	frags := fragmentedSYN(t, l, 2, 903)
	frags[1].IP.TTL = 2 // reaches device (1 router before it)
	l.sendFragments(frags, time.Millisecond)
	l.sim.Run()
	if received != 2 {
		t.Fatalf("TTL=2 probe: received %d, want both fragments", received)
	}

	received = 0
	frags = fragmentedSYN(t, l, 2, 904)
	frags[1].IP.TTL = 1 // dies at r1
	l.sendFragments(frags, time.Millisecond)
	l.sim.Run()
	if received != 0 {
		t.Fatalf("TTL=1 probe: received %d, want 0", received)
	}
}

func TestFragmentLimit45(t *testing.T) {
	l := newLab(t, nil)
	received := 0
	l.server.Tap(func(p *packet.Packet) { received++ })

	// 45 fragments: accepted and forwarded.
	frags := fragmentedSYN(t, l, 45, 905)
	l.sendFragments(frags, time.Millisecond)
	l.sim.Run()
	if received != 45 {
		t.Fatalf("45-fragment packet: received %d", received)
	}

	// 46 fragments: queue discarded, nothing arrives.
	received = 0
	frags = fragmentedSYN(t, l, 46, 906)
	l.sendFragments(frags, time.Millisecond)
	l.sim.Run()
	if received != 0 {
		t.Fatalf("46-fragment packet: received %d, want 0", received)
	}
}

func TestDuplicateFragmentDiscardsQueue(t *testing.T) {
	l := newLab(t, nil)
	received := 0
	l.server.Tap(func(p *packet.Packet) { received++ })
	frags := fragmentedSYN(t, l, 3, 907)
	seq := []*packet.Packet{frags[0], frags[1].Clone(), frags[1], frags[2]}
	l.sendFragments(seq, time.Millisecond)
	l.sim.Run()
	if received != 0 {
		t.Fatalf("duplicate: received %d, want 0 (RFC 5722 says ignore, TSPU discards)", received)
	}
	if l.device.fragDiscards() == 0 {
		t.Fatal("no discard recorded")
	}
}

func TestOverlappingFragmentDiscardsQueue(t *testing.T) {
	l := newLab(t, nil)
	received := 0
	l.server.Tap(func(p *packet.Packet) { received++ })
	frags := fragmentedSYN(t, l, 3, 908)
	// Craft an overlap: shift the second fragment's offset back by 8.
	overlap := frags[1].Clone()
	overlap.IP.FragOffset -= 8
	seq := []*packet.Packet{frags[0], frags[1], overlap, frags[2]}
	l.sendFragments(seq, time.Millisecond)
	l.sim.Run()
	if received != 0 {
		t.Fatalf("overlap: received %d, want 0", received)
	}
}

func TestFragmentQueueTimeout(t *testing.T) {
	l := newLab(t, nil)
	received := 0
	l.server.Tap(func(p *packet.Packet) { received++ })
	frags := fragmentedSYN(t, l, 3, 909)
	// Send only the first two; the last never arrives.
	l.sendFragments(frags[:2], time.Millisecond)
	l.sim.RunUntil(10 * time.Second)
	if received != 0 {
		t.Fatal("incomplete queue leaked fragments")
	}
	if l.device.PendingFragQueues() != 0 {
		t.Fatal("queue not discarded after 5s timeout")
	}
	// A late completion after the timeout starts a fresh (incomplete) queue.
	l.client.Send(frags[2])
	l.sim.RunUntil(20 * time.Second)
	if received != 0 {
		t.Fatal("stale fragment delivered")
	}
}

func TestFragmentOutOfOrderDelivery(t *testing.T) {
	l := newLab(t, nil)
	var offsets []uint16
	l.server.Tap(func(p *packet.Packet) { offsets = append(offsets, p.IP.FragOffset) })
	frags := fragmentedSYN(t, l, 4, 910)
	seq := []*packet.Packet{frags[2], frags[0], frags[3], frags[1]}
	l.sendFragments(seq, time.Millisecond)
	l.sim.Run()
	if len(offsets) != 4 {
		t.Fatalf("received %d fragments", len(offsets))
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			t.Fatalf("fragments forwarded out of offset order: %v", offsets)
		}
	}
}

func TestFragmentedCHEvadesSNIBlocking(t *testing.T) {
	// §8: IP fragmentation bypasses the TSPU because content inspection
	// never sees fragments.
	l := newLab(t, nil)
	var serverConn *hostnet.TCPConn
	l.server.Listen(443, hostnet.ListenOptions{OnConnect: func(c *hostnet.TCPConn) { serverConn = c }})
	conn := l.client.Dial(l.server.Addr(), 443, hostnet.DialOptions{})
	l.sim.Run()
	if conn.State != hostnet.StateEstablished {
		t.Fatal("handshake failed")
	}
	// Build the CH packet manually and fragment it.
	ch := clientHello("facebook.com")
	p := packet.NewTCP(conn.LocalAddr, conn.RemoteAddr, conn.LocalPort, conn.RemotePort,
		packet.FlagsPSHACK, conn.SndNxt, conn.RcvNxt, ch)
	p.IP.ID = l.client.NextIPID()
	frags, err := packet.Fragment(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 2 {
		t.Fatalf("CH did not fragment (%d fragments)", len(frags))
	}
	for _, f := range frags {
		l.client.Send(f)
	}
	l.sim.Run()
	if l.device.Stats().Triggers[SNI1] != 0 {
		t.Fatal("fragmented CH triggered SNI blocking")
	}
	if serverConn == nil || serverConn.Segments != 0 {
		// Fragments arrive unreassembled; our mini-TCP does not reassemble
		// either, so the server sees raw fragments, not a data segment.
		// What matters is that they were delivered (not dropped).
	}
	delivered := 0
	for _, r := range l.tspuCap.Delivered() {
		if r.Pkt.IsFragment() {
			delivered++
		}
	}
	if delivered != len(frags) {
		t.Fatalf("delivered %d fragments of %d", delivered, len(frags))
	}
}

func TestFragmentsFromRemoteSideAlsoBuffered(t *testing.T) {
	// §5.3.1: behaviors are observable in either direction.
	l := newLab(t, nil)
	received := 0
	l.client.Tap(func(p *packet.Packet) { received++ })
	p := packet.NewTCP(l.server.Addr(), l.client.Addr(), 443, 41000, packet.FlagSYN, 1, 0, nil)
	p.IP.ID = 911
	frags, err := packet.FragmentCount(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frags {
		f := f
		l.sim.After(time.Duration(i)*time.Millisecond, func() { l.server.Send(f) })
	}
	l.sim.Run()
	if received != 3 {
		t.Fatalf("downstream fragments received = %d", received)
	}
}

func TestFragEngineStatsAndVerdicts(t *testing.T) {
	l := newLab(t, nil)
	frags := fragmentedSYN(t, l, 2, 912)
	l.sendFragments(frags, time.Millisecond)
	l.sim.Run()
	if l.device.fragForwarded() != 1 {
		t.Fatalf("forwarded queues = %d", l.device.fragForwarded())
	}
	if l.device.Stats().FragBuffers != 2 {
		t.Fatalf("FragBuffers = %d", l.device.Stats().FragBuffers)
	}
}

// Verify the middlebox interface contract directly for fragments: Handle
// returns Drop (buffered), never Pass.
func TestFragHandleAlwaysDrops(t *testing.T) {
	l := newLab(t, nil)
	frags := fragmentedSYN(t, l, 2, 913)
	pipe := fakePipe{sim: l.sim}
	if l.device.Handle(pipe, frags[0], netem.AtoB) != netem.Drop {
		t.Fatal("fragment not buffered")
	}
}

type fakePipe struct {
	sim interface{ Now() time.Duration }
}

func (f fakePipe) Inject(pkt *packet.Packet, dir netem.Direction) {}
func (f fakePipe) Now() time.Duration                             { return f.sim.Now() }
func (f fakePipe) After(d time.Duration, fn func())               {}
