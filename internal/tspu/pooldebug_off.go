//go:build !pooldebug

package tspu

// No-op counterparts of the pooldebug hooks (pooldebug.go): the normal build
// inlines these away, keeping the datapath allocation- and branch-free.

func poisonEntry(*flowEntry)   {}
func unpoisonEntry(*flowEntry) {}

func (e *flowEntry) checkLive(string) {}
