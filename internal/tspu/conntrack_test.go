package tspu

import (
	"testing"
	"time"

	"tspusim/internal/packet"
)

var (
	ctLocal  = packet.MustAddr("10.0.0.2")
	ctRemote = packet.MustAddr("203.0.113.10")
)

func tcpPkt(local bool, flags packet.TCPFlags) (*packet.Packet, packet.FlowKey4, bool) {
	var p *packet.Packet
	if local {
		p = packet.NewTCP(ctLocal, ctRemote, 40000, 443, flags, 100, 0, nil)
	} else {
		p = packet.NewTCP(ctRemote, ctLocal, 443, 40000, flags, 200, 0, nil)
	}
	return p, packet.FlowKey4Of(p), local
}

func TestOriginFromFirstPacket(t *testing.T) {
	ct := newConntrack(DefaultTimeouts())
	p, _, local := tcpPkt(false, packet.FlagSYN)
	e := ct.observe(p, local, 0)
	if e.origin != OriginRemote {
		t.Fatal("remote-first flow not OriginRemote")
	}
	ct2 := newConntrack(DefaultTimeouts())
	p2, _, local2 := tcpPkt(true, packet.FlagSYN)
	e2 := ct2.observe(p2, local2, 0)
	if e2.origin != OriginLocal {
		t.Fatal("local-first flow not OriginLocal")
	}
}

func TestStateProgression(t *testing.T) {
	ct := newConntrack(DefaultTimeouts())
	syn, _, _ := tcpPkt(true, packet.FlagSYN)
	e := ct.observe(syn, true, 0)
	if e.state != CTSynSent {
		t.Fatalf("after SYN: %v", e.state)
	}
	sa, _, _ := tcpPkt(false, packet.FlagsSYNACK)
	e = ct.observe(sa, false, time.Second)
	if e.state != CTEstablished || !e.sawSYNACK {
		t.Fatalf("after SYN/ACK: %v", e.state)
	}
}

func TestSimultaneousOpenStaysSynRecv(t *testing.T) {
	// Ls;Rs;La must remain SYN_RCVD (no SYN/ACK seen), which is what gives
	// the 105s measurement of Table 2.
	ct := newConntrack(DefaultTimeouts())
	syn, _, _ := tcpPkt(true, packet.FlagSYN)
	e := ct.observe(syn, true, 0)
	rsyn, _, _ := tcpPkt(false, packet.FlagSYN)
	e = ct.observe(rsyn, false, time.Second)
	if e.state != CTSynRecv {
		t.Fatalf("after remote SYN: %v", e.state)
	}
	if !e.sawRemoteSYN || !e.roleConfused() {
		t.Fatal("role confusion not flagged")
	}
	ack, _, _ := tcpPkt(true, packet.FlagACK)
	e = ct.observe(ack, true, 2*time.Second)
	if e.state != CTSynRecv {
		t.Fatalf("ACK without SYN/ACK promoted to %v", e.state)
	}
}

func TestUnsolicitedACKRestartsTracking(t *testing.T) {
	// Ls;Ra: the remote bare ACK in SYN_SENT replaces the entry with a
	// remote-origin one (Table 8's "Ls;Ra;Lt -> PASS").
	ct := newConntrack(DefaultTimeouts())
	syn, _, _ := tcpPkt(true, packet.FlagSYN)
	ct.observe(syn, true, 0)
	ack, _, _ := tcpPkt(false, packet.FlagACK)
	e := ct.observe(ack, false, time.Second)
	if e.origin != OriginRemote {
		t.Fatalf("origin after unsolicited ACK = %v, want remote", e.origin)
	}
	if e.state != CTEstablished {
		t.Fatalf("state = %v", e.state)
	}
}

func TestEntryExpiry(t *testing.T) {
	ct := newConntrack(DefaultTimeouts())
	syn, key, _ := tcpPkt(false, packet.FlagSYN)
	ct.observe(syn, false, 0)
	if ct.lookup(key, 59*time.Second) == nil {
		t.Fatal("SYN_SENT entry gone before 60s")
	}
	if ct.lookup(key, 61*time.Second) != nil {
		t.Fatal("SYN_SENT entry alive after 60s")
	}
	if ct.evictionCount() != 1 {
		t.Fatalf("evictions = %d", ct.evictionCount())
	}
}

func TestActivityRefreshesTimer(t *testing.T) {
	ct := newConntrack(DefaultTimeouts())
	syn, key, _ := tcpPkt(true, packet.FlagSYN)
	ct.observe(syn, true, 0)
	sa, _, _ := tcpPkt(false, packet.FlagsSYNACK)
	ct.observe(sa, false, 30*time.Second) // promotes to ESTABLISHED
	// 480s from the refresh, not from creation.
	if ct.lookup(key, 500*time.Second) == nil {
		t.Fatal("refresh did not extend lifetime")
	}
	if ct.lookup(key, 511*time.Second) != nil {
		t.Fatal("established entry immortal")
	}
}

func TestBlockExtendsEntryLifetime(t *testing.T) {
	tt := DefaultTimeouts()
	ct := newConntrack(tt)
	p, _, _ := tcpPkt(true, packet.FlagsPSHACK)
	e := ct.observe(p, true, 0)
	ct.setBlock(e, SNI2, 0, 6, nil)
	if e.activeBlock(419*time.Second) == nil {
		t.Fatal("SNI-II block expired early")
	}
	if e.activeBlock(421*time.Second) != nil {
		t.Fatal("SNI-II block outlived 420s")
	}
	if e.expires < 420*time.Second {
		t.Fatal("entry expires before its block")
	}
}

func TestBlockTimeoutValuesMatchTable2(t *testing.T) {
	tt := DefaultTimeouts()
	want := map[BlockType]time.Duration{
		SNI1:      75 * time.Second,
		SNI2:      420 * time.Second,
		SNI4:      40 * time.Second,
		QUICBlock: 420 * time.Second,
	}
	for b, d := range want {
		if got := tt.forBlock(b); got != d {
			t.Errorf("forBlock(%v) = %v, want %v", b, got, d)
		}
	}
	if tt.forState(CTSynSent) != 60*time.Second ||
		tt.forState(CTSynRecv) != 105*time.Second ||
		tt.forState(CTEstablished) != 480*time.Second {
		t.Fatal("state timeouts do not match Table 2")
	}
}

func TestRemoteSYNOnRemoteOriginNotConfused(t *testing.T) {
	ct := newConntrack(DefaultTimeouts())
	rs, _, _ := tcpPkt(false, packet.FlagSYN)
	e := ct.observe(rs, false, 0)
	rs2, _, _ := tcpPkt(false, packet.FlagSYN)
	e = ct.observe(rs2, false, time.Second)
	if e.roleConfused() {
		t.Fatal("remote-origin flow marked confused")
	}
}

func TestBucketThrottle(t *testing.T) {
	tb := newTokenBucket(650, 1460, 0)
	// First MSS-sized burst conforms.
	if !tb.admit(1400, 0) {
		t.Fatal("burst rejected")
	}
	// Immediately after, a large packet exceeds the rate.
	if tb.admit(1000, 0) {
		t.Fatal("over-rate packet admitted")
	}
	// Pure ACKs always conform.
	if !tb.admit(0, 0) {
		t.Fatal("zero-length packet rejected")
	}
	// After 2 seconds, 1300 bytes of budget accrued.
	if !tb.admit(1200, 2*time.Second) {
		t.Fatal("packet within refilled budget rejected")
	}
	if tb.admit(1200, 2*time.Second) {
		t.Fatal("budget double-spent")
	}
}

func TestBucketCapsAtBurst(t *testing.T) {
	tb := newTokenBucket(650, 1460, 0)
	tb.admit(0, time.Hour) // long idle: tokens must cap at burst
	if tb.admit(1461, time.Hour) {
		t.Fatal("bucket exceeded burst capacity")
	}
	if !tb.admit(1460, time.Hour) {
		t.Fatal("full burst rejected after idle")
	}
}

func TestBucketDefaults(t *testing.T) {
	tb := newTokenBucket(0, 0, 0)
	if tb.rate != 650 || tb.burst != 1460 {
		t.Fatalf("defaults = %v/%v", tb.rate, tb.burst)
	}
}
