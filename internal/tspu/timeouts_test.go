package tspu

import (
	"testing"
	"time"
)

// TestTimeoutsPinnedToTable2 pins every default lifetime to the paper's
// measured value. A drift here silently changes every experiment built on
// the device, so each failure message cites the exact source row.
func TestTimeoutsPinnedToTable2(t *testing.T) {
	got := DefaultTimeouts()
	rows := []struct {
		name string
		have time.Duration
		want time.Duration
		cite string
	}{
		{"SynSent", got.SynSent, 60 * time.Second, "Table 2 row 'TCP SYN_SENT': 60 s"},
		{"SynRecv", got.SynRecv, 105 * time.Second, "Table 2 row 'TCP SYN_RCVD': 105 s"},
		{"Established", got.Established, 480 * time.Second, "Table 2 row 'TCP ESTABLISHED': 480 s"},
		{"SNI1", got.SNI1, 75 * time.Second, "Table 2 row 'SNI-I blocking state': 75 s"},
		{"SNI2", got.SNI2, 420 * time.Second, "Table 2 row 'SNI-II blocking state': 420 s"},
		{"SNI4", got.SNI4, 40 * time.Second, "Table 2 row 'SNI-IV blocking state': 40 s"},
		{"QUIC", got.QUIC, 420 * time.Second, "Table 2 row 'QUIC blocking state': 420 s"},
		{"Frag", got.Frag, 5 * time.Second, "§5.3.1: fragment queues discarded after ~5 s"},
	}
	for _, r := range rows {
		if r.have != r.want {
			t.Errorf("DefaultTimeouts().%s = %v, want %v (%s)", r.name, r.have, r.want, r.cite)
		}
	}
}

// TestStateTimeoutMapping pins the state→lifetime dispatch, including the
// quirk that SNI-III throttling has no dedicated row in Table 2: its hold
// ages like an ESTABLISHED flow.
func TestStateTimeoutMapping(t *testing.T) {
	to := DefaultTimeouts()
	if got := to.forState(CTSynSent); got != to.SynSent {
		t.Errorf("forState(SYN_SENT) = %v, want %v", got, to.SynSent)
	}
	if got := to.forState(CTSynRecv); got != to.SynRecv {
		t.Errorf("forState(SYN_RCVD) = %v, want %v", got, to.SynRecv)
	}
	if got := to.forState(CTEstablished); got != to.Established {
		t.Errorf("forState(ESTABLISHED) = %v, want %v", got, to.Established)
	}
	blocks := []struct {
		b    BlockType
		want time.Duration
	}{
		{SNI1, to.SNI1},
		{SNI2, to.SNI2},
		{SNI4, to.SNI4},
		{QUICBlock, to.QUIC},
		{SNI3, to.Established}, // no Table 2 row: falls to the default
	}
	for _, c := range blocks {
		if got := to.forBlock(c.b); got != c.want {
			t.Errorf("forBlock(%v) = %v, want %v", c.b, got, c.want)
		}
	}
}
