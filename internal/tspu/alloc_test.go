package tspu

import (
	"testing"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
)

// Allocation budgets for the per-packet datapath. These pin the tentpole's
// contract — the device's steady-state hot path never touches the heap — so a
// regression shows up as a failing test, not just a drifting benchmark.

func allocDevice() (*Device, *sim.Sim) {
	s := sim.New()
	d := NewDevice(Config{Sim: s, LocalDir: netem.AtoB})
	ctl := NewController(nil)
	ctl.Register(d)
	ctl.Update(func(p *Policy) { p.SNI1Domains.Add("facebook.com") })
	return d, s
}

func TestDevicePassThroughZeroAllocs(t *testing.T) {
	d, s := allocDevice()
	pipe := nullPipe{s: s}
	data := packet.NewTCP(packet.MustAddr("10.0.0.2"), packet.MustAddr("203.0.113.10"),
		40000, 443, packet.FlagsPSHACK, 1, 1, make([]byte, 1400))
	d.Handle(pipe, data, netem.AtoB) // warm up: create the flow entry
	allocs := testing.AllocsPerRun(500, func() {
		d.Handle(pipe, data, netem.AtoB)
	})
	if allocs != 0 {
		t.Fatalf("pass-through Handle allocates %v/op, want 0", allocs)
	}
}

func TestDeviceNonMatchingClientHelloZeroAllocs(t *testing.T) {
	d, s := allocDevice()
	pipe := nullPipe{s: s}
	ch := (&tlsx.ClientHelloSpec{ServerName: "not-blocked.example"}).Build()
	trig := packet.NewTCP(packet.MustAddr("10.0.0.2"), packet.MustAddr("203.0.113.10"),
		40000, 443, packet.FlagsPSHACK, 1, 1, ch)
	d.Handle(pipe, trig, netem.AtoB)
	allocs := testing.AllocsPerRun(500, func() {
		d.Handle(pipe, trig, netem.AtoB)
	})
	if allocs != 0 {
		t.Fatalf("non-matching ClientHello Handle allocates %v/op, want 0", allocs)
	}
}

func TestDeviceFlowChurnZeroAllocs(t *testing.T) {
	// Cycling through many distinct flows reuses pooled conntrack entries, so
	// even flow setup is allocation-free once the pool is warm.
	d, s := allocDevice()
	pipe := nullPipe{s: s}
	pkts := make([]*packet.Packet, 256)
	for i := range pkts {
		pkts[i] = packet.NewTCP(packet.MustAddr("10.0.0.2"), packet.MustAddr("203.0.113.10"),
			uint16(20000+i), 443, packet.FlagSYN, 1, 0, nil)
		d.Handle(pipe, pkts[i], netem.AtoB)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		d.Handle(pipe, pkts[i%len(pkts)], netem.AtoB)
		i++
	})
	if allocs != 0 {
		t.Fatalf("many-flows Handle allocates %v/op, want 0", allocs)
	}
}

func TestDomainSetMatchZeroAllocs(t *testing.T) {
	set := NewDomainSet("facebook.com", "twitter.com", "play.google.com")
	lower := []byte("api.twitter.com")
	upper := []byte("API.TWITTER.COM")
	dotted := []byte("www.facebook.com.")
	miss := []byte("example.org")
	// Warm up the case-folding scratch once.
	set.Match(upper)
	allocs := testing.AllocsPerRun(500, func() {
		if !set.Match(lower) || !set.Match(upper) || !set.Match(dotted) {
			t.Fatal("Match missed")
		}
		if set.Match(miss) {
			t.Fatal("Match false positive")
		}
	})
	if allocs != 0 {
		t.Fatalf("DomainSet.Match allocates %v/op, want 0", allocs)
	}
}

func TestExtractSNIPathZeroAllocs(t *testing.T) {
	p := NewPolicy()
	p.SNI1Domains.Add("facebook.com")
	ch := (&tlsx.ClientHelloSpec{ServerName: "www.facebook.com", ALPN: []string{"h2"}}).Build()
	allocs := testing.AllocsPerRun(500, func() {
		sni, ok := tlsx.ExtractSNI(ch)
		if !ok {
			t.Fatal("SNI not found")
		}
		if cls := p.ClassifyBytes(sni); !cls.SNI1 {
			t.Fatal("classification missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("ExtractSNI+ClassifyBytes allocates %v/op, want 0", allocs)
	}
}

func TestConntrackObserveZeroAllocs(t *testing.T) {
	ct := newConntrack(DefaultTimeouts())
	p := packet.NewTCP(packet.MustAddr("10.0.0.2"), packet.MustAddr("203.0.113.10"),
		40000, 443, packet.FlagsPSHACK, 1, 1, nil)
	ct.observe(p, true, 0)
	allocs := testing.AllocsPerRun(500, func() {
		ct.observe(p, true, 0)
	})
	if allocs != 0 {
		t.Fatalf("conntrack.observe allocates %v/op, want 0", allocs)
	}
}

// TestTriggerDetectionAllocBudget bounds the one remaining allocating moment:
// installing a new blocking state (the token bucket for SNI-III aside, a
// trigger only pays for what it installs, and a rewritten RST/ACK pays
// nothing).
func TestTriggerDetectionAllocBudget(t *testing.T) {
	d, s := allocDevice()
	pipe := nullPipe{s: s}
	ch := (&tlsx.ClientHelloSpec{ServerName: "facebook.com"}).Build()
	src := packet.MustAddr("10.0.0.2")
	dst := packet.MustAddr("203.0.113.10")
	sport := uint16(20000)
	trig := packet.NewTCP(src, dst, sport, 443, packet.FlagsPSHACK, 1, 1, ch)
	resp := packet.NewTCP(dst, src, 443, sport, packet.FlagsPSHACK, 1, 1, []byte("hello"))
	// Warm: one full trigger+rewrite cycle grows pools and stats maps.
	d.Handle(pipe, trig, netem.AtoB)
	d.Handle(pipe, resp, netem.BtoA)
	allocs := testing.AllocsPerRun(200, func() {
		d.Handle(pipe, trig, netem.AtoB) // flow already blocked: applyBlock path
		d.Handle(pipe, resp, netem.BtoA) // downstream rewrite to RST/ACK
	})
	if allocs != 0 {
		t.Fatalf("blocked-flow Handle allocates %v/op, want 0", allocs)
	}
}
