package tspu

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
)

// Sharded-conntrack invariants: the shard count is an implementation knob,
// never a behavior knob. The same trace must produce the same verdict stream
// at 1, 4, and 8 shards; the timeout wheel must reclaim exactly what the
// full-table scan would; and the per-shard entry pools must conserve entries
// under churn (nothing leaks, nothing is double-freed).

// multiPairStream is equivStream spread over many canonical host pairs so
// packets land on different lanes/shards (equivStream's single pair maps to
// exactly one). Flow state still accumulates: ports and remotes are drawn
// from small sets.
func multiPairStream(seed uint64, n int) []*packet.Packet {
	rng := sim.NewRand(seed)
	local := packet.MustAddr("10.0.0.2")
	remotes := make([]netip.Addr, 0, 16)
	for i := 1; i <= 16; i++ {
		remotes = append(remotes, packet.MustAddr(fmt.Sprintf("203.0.113.%d", i)))
	}
	snis := []string{
		"facebook.com", "api.twitter.com", "TWITTER.COM", "twitter.com.",
		"play.google.com", "fbcdn.net", "meduza.io", "example.org", "",
	}
	pkts := make([]*packet.Packet, 0, n)
	for len(pkts) < n {
		remote := remotes[rng.Intn(len(remotes))]
		sport := uint16(20000 + rng.Intn(32))
		switch rng.Intn(8) {
		case 0:
			pkts = append(pkts, packet.NewTCP(local, remote, sport, 443, packet.FlagSYN, 1, 0, nil))
		case 1:
			pkts = append(pkts, packet.NewTCP(remote, local, 443, sport, packet.FlagsSYNACK, 1, 2, nil))
		case 2:
			spec := &tlsx.ClientHelloSpec{ServerName: snis[rng.Intn(len(snis))]}
			if rng.Bool(0.3) {
				spec.PaddingLen = rng.Intn(600)
			}
			pkts = append(pkts, packet.NewTCP(local, remote, sport, 443, packet.FlagsPSHACK, 2, 2, spec.Build()))
		case 3:
			soup := make([]byte, 1+rng.Intn(512))
			for i := range soup {
				soup[i] = byte(rng.Uint64())
			}
			pkts = append(pkts, packet.NewTCP(local, remote, sport, 443, packet.FlagsPSHACK, 2, 2, soup))
		case 4:
			pkts = append(pkts, packet.NewTCP(remote, local, 443, sport, packet.FlagsPSHACK, 9, 9, []byte("HTTP/1.1 200 OK")))
		case 5:
			pay := make([]byte, 1200)
			pay[0] = 0xc0
			for i := 1; i < 16; i++ {
				pay[i] = byte(rng.Uint64())
			}
			pkts = append(pkts, packet.NewUDP(local, remote, sport, 443, pay))
		case 6:
			pkts = append(pkts, packet.NewTCP(local, remote, sport, 443, packet.FlagsPSHACK, 9, 9, make([]byte, rng.Intn(1400))))
		case 7:
			if rng.Bool(0.5) {
				pkts = append(pkts, packet.NewTCP(remote, local, 443, sport, packet.FlagACK, 5, 5, nil))
			} else {
				pkts = append(pkts, packet.NewTCP(remote, local, 443, sport, packet.FlagSYN, 5, 0, nil))
			}
		}
	}
	return pkts
}

func multiPairDir(p *packet.Packet) netem.Direction {
	if p.IP.Src == packet.MustAddr("10.0.0.2") {
		return netem.AtoB
	}
	return netem.BtoA
}

// shardEquivDevice builds a device with the given shard count whose random
// outcomes are per-flow (order- and shard-independent by construction).
func shardEquivDevice(shards int, flowSeed uint64) *Device {
	s := sim.New()
	d := NewDevice(Config{
		Sim:         s,
		LocalDir:    netem.AtoB,
		Shards:      shards,
		PerFlowRand: true,
		FlowSeed:    flowSeed,
		FailureRates: map[BlockType]float64{
			SNI1: 0.05, SNI2: 0.05, SNI4: 0.03, QUICBlock: 0.06, IPBlock: 0.02,
		},
	})
	ctl := NewController(nil)
	ctl.Register(d)
	ctl.Update(func(p *Policy) {
		p.SNI1Domains.Add("facebook.com", "twitter.com", "meduza.io")
		p.SNI2Domains.Add("play.google.com")
		p.SNI4Domains.Add("twitter.com", "fbcdn.net")
	})
	return d
}

func runShardEquiv(d *Device, stream []*packet.Packet) []string {
	pipe := nullPipe{s: d.cfg.Sim}
	log := make([]string, 0, len(stream))
	for _, src := range stream {
		p := src.Clone()
		act := d.Handle(pipe, p, multiPairDir(p))
		wire, err := p.Marshal()
		if err != nil {
			wire = []byte(err.Error())
		}
		log = append(log, fmt.Sprintf("%v %x", act, wire))
	}
	return log
}

// TestShardCountEquivalence pins cross-shard determinism: one trace, one
// verdict stream, whether the conntrack is monolithic or split 4 or 8 ways.
func TestShardCountEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			stream := multiPairStream(seed, 1500)
			ref := runShardEquiv(shardEquivDevice(1, seed), stream)
			for _, shards := range []int{4, 8} {
				got := runShardEquiv(shardEquivDevice(shards, seed), stream)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("shards=%d packet %d diverged:\n1 shard: %s\n%d shards: %s",
							shards, i, ref[i], shards, got[i])
					}
				}
			}
		})
	}
}

// TestHandleShardedMatchesHandle pins that the batch entry point — key and
// lane precomputed by the caller — is the same datapath as Handle.
func TestHandleShardedMatchesHandle(t *testing.T) {
	stream := multiPairStream(7, 1500)
	seq := shardEquivDevice(8, 7)
	bat := shardEquivDevice(8, 7)
	seqPipe := nullPipe{s: seq.cfg.Sim}
	batPipe := nullPipe{s: bat.cfg.Sim}
	for i, src := range stream {
		ps, pb := src.Clone(), src.Clone()
		dir := multiPairDir(src)
		as := seq.Handle(seqPipe, ps, dir)
		key := packet.FlowKey4Of(pb)
		ab := bat.HandleSharded(batPipe, pb, dir, key, bat.LaneOf(key))
		ws, _ := ps.Marshal()
		wb, _ := pb.Marshal()
		if as != ab || string(ws) != string(wb) {
			t.Fatalf("packet %d: Handle %v %x, HandleSharded %v %x", i, as, ws, ab, wb)
		}
	}
}

// TestShardLaneParallelRace drives HandleSharded with one goroutine per
// lane — the batch engine's concurrency contract, stripped to the device —
// and checks the per-lane verdict streams against a sequential reference.
// Its real payload is `go test -race`: any cross-lane touch the lanecheck
// analyzer missed statically shows up here as a data race.
func TestShardLaneParallelRace(t *testing.T) {
	stream := multiPairStream(11, 4000)
	seq := shardEquivDevice(8, 99)
	par := shardEquivDevice(8, 99)
	lanes := seq.NumLanes()

	byLane := make([][]*packet.Packet, lanes)
	for _, p := range stream {
		l := seq.LaneOf(packet.FlowKey4Of(p))
		byLane[l] = append(byLane[l], p)
	}

	runLanePkts := func(d *Device, lane int, pkts []*packet.Packet) []string {
		pipe := nullPipe{s: d.cfg.Sim}
		log := make([]string, 0, len(pkts))
		for _, src := range pkts {
			p := src.Clone()
			key := packet.FlowKey4Of(p)
			act := d.HandleSharded(pipe, p, multiPairDir(p), key, lane)
			wire, err := p.Marshal()
			if err != nil {
				wire = []byte(err.Error())
			}
			log = append(log, fmt.Sprintf("%v %x", act, wire))
		}
		return log
	}

	ref := make([][]string, lanes)
	for l := 0; l < lanes; l++ {
		ref[l] = runLanePkts(seq, l, byLane[l])
	}

	got := make([][]string, lanes)
	var wg sync.WaitGroup
	for l := 0; l < lanes; l++ {
		l := l
		wg.Add(1)
		go func() {
			defer wg.Done()
			got[l] = runLanePkts(par, l, byLane[l])
		}()
	}
	wg.Wait()

	for l := 0; l < lanes; l++ {
		if len(got[l]) != len(ref[l]) {
			t.Fatalf("lane %d: %d verdicts parallel, %d sequential", l, len(got[l]), len(ref[l]))
		}
		for i := range ref[l] {
			if got[l][i] != ref[l][i] {
				t.Fatalf("lane %d packet %d diverged:\nsequential: %s\nparallel:   %s", l, i, ref[l][i], got[l][i])
			}
		}
	}
}

// observeStream drives an identical randomized observe/sweep history into a
// conntrack, sweeping with the given function at the given times.
func observeStream(ct *conntrack, seed uint64, steps int, sweep func(now time.Duration) int, sweepEvery int) (reclaims int, finalNow time.Duration) {
	rng := sim.NewRand(seed)
	local := packet.MustAddr("10.0.0.2")
	now := time.Duration(0)
	for i := 0; i < steps; i++ {
		now += time.Duration(rng.Intn(2000)) * time.Millisecond
		remote := packet.MustAddr(fmt.Sprintf("203.0.113.%d", 1+rng.Intn(32)))
		sport := uint16(20000 + rng.Intn(64))
		var p *packet.Packet
		switch rng.Intn(3) {
		case 0:
			p = packet.NewTCP(local, remote, sport, 443, packet.FlagSYN, 1, 0, nil)
		case 1:
			p = packet.NewTCP(remote, local, 443, sport, packet.FlagsSYNACK, 1, 2, nil)
		case 2:
			p = packet.NewTCP(local, remote, sport, 443, packet.FlagsPSHACK, 2, 2, []byte("x"))
		}
		e := ct.observe(p, p.IP.Src == local, now)
		// Occasionally install a block so long (clamped-past-the-wheel-
		// horizon) expiries and extension re-bucketing get exercised.
		if rng.Bool(0.05) {
			ct.setBlock(e, SNI2, now, 5, nil)
		}
		if sweepEvery > 0 && i%sweepEvery == 0 {
			reclaims += sweep(now)
		}
	}
	reclaims += sweep(now + 600*time.Second) // final: everything expires
	return reclaims, now + 600*time.Second
}

func tableKeys(ct *conntrack) map[packet.FlowKey4]bool {
	keys := make(map[packet.FlowKey4]bool)
	for i := range ct.shards {
		for k := range ct.shards[i].table {
			keys[k] = true
		}
	}
	return keys
}

// TestWheelSweepEquivalence pins the timeout wheel against the retained
// full-table scan: same observe history, same sweep times, same reclaim
// counts, same surviving entries.
func TestWheelSweepEquivalence(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		for _, sweepEvery := range []int{7, 113} { // frequent and rare (rare forces bucket clamping)
			wheelCT := newShardedConntrack(DefaultTimeouts(), 4)
			scanCT := newShardedConntrack(DefaultTimeouts(), 4)
			wr, _ := observeStream(wheelCT, seed, 4000, wheelCT.Sweep, sweepEvery)
			sr, _ := observeStream(scanCT, seed, 4000, scanCT.sweepScan, sweepEvery)
			if wr != sr {
				t.Fatalf("seed=%d every=%d: wheel reclaimed %d, scan %d", seed, sweepEvery, wr, sr)
			}
			wk, sk := tableKeys(wheelCT), tableKeys(scanCT)
			if len(wk) != len(sk) {
				t.Fatalf("seed=%d every=%d: wheel table %d entries, scan %d", seed, sweepEvery, len(wk), len(sk))
			}
			for k := range wk {
				if !sk[k] {
					t.Fatalf("seed=%d every=%d: wheel kept a key the scan evicted", seed, sweepEvery)
				}
			}
			if wheelCT.evictionCount() != scanCT.evictionCount() {
				t.Fatalf("seed=%d every=%d: evictions wheel=%d scan=%d",
					seed, sweepEvery, wheelCT.evictionCount(), scanCT.evictionCount())
			}
		}
	}
}

// TestShardPoolConservation is the leak check: under heavy churn with
// sweeping, every entry ever allocated is either live in a table or parked
// in a freelist — and steady-state churn is served by reuse, not growth.
func TestShardPoolConservation(t *testing.T) {
	ct := newShardedConntrack(DefaultTimeouts(), 8)
	local := packet.MustAddr("10.0.0.2")
	now := time.Duration(0)
	var allocsAfterWarmup uint64
	for round := 0; round < 6; round++ {
		for i := 0; i < 800; i++ {
			remote := packet.MustAddr(fmt.Sprintf("203.0.%d.%d", i/250, 1+i%250))
			ct.observe(packet.NewTCP(local, remote, uint16(30000+i%500), 443, packet.FlagSYN, 1, 0, nil), true, now)
		}
		allocs, _, pooled := ct.poolStats()
		if live := ct.size(); int(allocs) != live+pooled {
			t.Fatalf("round %d: %d allocs but %d live + %d pooled — entries leaked or double-freed", round, allocs, live, pooled)
		}
		now += 700 * time.Second // beyond every timeout
		ct.Sweep(now)
		if got := ct.size(); got != 0 {
			t.Fatalf("round %d: %d entries survived a sweep past all timeouts", round, got)
		}
		allocs, _, pooled = ct.poolStats()
		if int(allocs) != pooled {
			t.Fatalf("round %d: after full expiry %d allocs != %d pooled", round, allocs, pooled)
		}
		if round == 0 {
			allocsAfterWarmup = allocs
		}
	}
	allocs, reuses, _ := ct.poolStats()
	if allocs != allocsAfterWarmup {
		t.Fatalf("pool grew after warmup: %d allocs, want %d — churn is not being served from the freelists", allocs, allocsAfterWarmup)
	}
	if reuses == 0 {
		t.Fatal("pool reuse counter never moved")
	}
}
