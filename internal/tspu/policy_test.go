package tspu

import (
	"testing"

	"tspusim/internal/packet"
)

func TestDomainSetMatching(t *testing.T) {
	s := NewDomainSet("twitter.com", "play.google.com")
	cases := []struct {
		name string
		want bool
	}{
		{"twitter.com", true},
		{"api.twitter.com", true},
		{"a.b.twitter.com", true},
		{"TWITTER.COM", true},
		{"twitter.com.", true},
		{"nottwitter.com", false},
		{"twitter.org", false},
		{"play.google.com", true},
		{"google.com", false}, // parent of an entry is not matched
		{"x.play.google.com", true},
		{"", false},
	}
	for _, c := range cases {
		if got := s.Contains(c.name); got != c.want {
			t.Errorf("Contains(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDomainSetAddRemove(t *testing.T) {
	s := NewDomainSet()
	s.Add("bbc.com")
	if !s.Contains("news.bbc.com") {
		t.Fatal("added domain not matched")
	}
	s.Remove("bbc.com")
	if s.Contains("bbc.com") || s.Len() != 0 {
		t.Fatal("removal failed")
	}
}

func TestDomainSetCloneIndependent(t *testing.T) {
	a := NewDomainSet("x.com")
	b := a.Clone()
	b.Add("y.com")
	if a.Contains("y.com") {
		t.Fatal("clone aliases original")
	}
}

func TestNilDomainSet(t *testing.T) {
	var s *DomainSet
	if s.Contains("x.com") || s.Len() != 0 || s.Domains() != nil {
		t.Fatal("nil set misbehaves")
	}
}

func TestClassify(t *testing.T) {
	p := NewPolicy()
	p.SNI1Domains.Add("facebook.com", "twitter.com")
	p.SNI2Domains.Add("play.google.com")
	p.SNI4Domains.Add("twitter.com")
	p.ThrottleDomains.Add("fbcdn.net")

	c := p.Classify("twitter.com")
	if !c.SNI1 || !c.SNI4 || c.SNI2 || c.Throttle {
		t.Fatalf("twitter.com classify = %+v", c)
	}
	c = p.Classify("play.google.com")
	if !c.SNI2 || c.SNI1 {
		t.Fatalf("play.google.com classify = %+v", c)
	}
	// Throttling inactive by default (post Mar 4 state).
	if p.Classify("fbcdn.net").Throttle {
		t.Fatal("throttle classified while inactive")
	}
	p.ThrottleActive = true
	if !p.Classify("fbcdn.net").Throttle {
		t.Fatal("throttle not classified while active")
	}
	if p.Classify("unrelated.org").Any() {
		t.Fatal("unrelated domain classified")
	}
}

func TestControllerUniformPush(t *testing.T) {
	ctl := NewController(nil)
	var devs []*Device
	for i := 0; i < 5; i++ {
		d := NewDevice(Config{Sim: newTestSim()})
		ctl.Register(d)
		devs = append(devs, d)
	}
	ctl.Update(func(p *Policy) {
		p.SNI1Domains.Add("meduza.io")
		p.BlockedIPs[packet.MustAddr("198.51.100.9")] = true
	})
	for i, d := range devs {
		if !d.Policy().SNI1Domains.Contains("meduza.io") {
			t.Fatalf("device %d missed domain push", i)
		}
		if !d.Policy().IPBlocked(packet.MustAddr("198.51.100.9")) {
			t.Fatalf("device %d missed IP push", i)
		}
		if d.Policy().Version != 1 {
			t.Fatalf("device %d version = %d", i, d.Policy().Version)
		}
	}
	// Every device must share the identical policy value (uniformity, §5.1).
	for i := 1; i < len(devs); i++ {
		if devs[i].Policy() != devs[0].Policy() {
			t.Fatal("devices hold different policy pointers after push")
		}
	}
	ctl.Update(func(p *Policy) { p.SNI1Domains.Remove("meduza.io") })
	if devs[3].Policy().SNI1Domains.Contains("meduza.io") {
		t.Fatal("removal not pushed")
	}
	if ctl.Policy().Version != 2 {
		t.Fatalf("version = %d", ctl.Policy().Version)
	}
}

func TestPolicyCloneDeep(t *testing.T) {
	p := NewPolicy()
	p.SNI1Domains.Add("a.com")
	p.BlockedIPs[packet.MustAddr("1.2.3.4")] = true
	q := p.Clone()
	q.SNI1Domains.Add("b.com")
	q.BlockedIPs[packet.MustAddr("5.6.7.8")] = true
	if p.SNI1Domains.Contains("b.com") || p.IPBlocked(packet.MustAddr("5.6.7.8")) {
		t.Fatal("clone aliases original")
	}
}

func TestBlockTypeStrings(t *testing.T) {
	names := map[BlockType]string{
		SNI1: "SNI-I", SNI2: "SNI-II", SNI3: "SNI-III",
		SNI4: "SNI-IV", QUICBlock: "QUIC", IPBlock: "IP",
	}
	for b, want := range names {
		if b.String() != want {
			t.Errorf("%d.String() = %q, want %q", b, b.String(), want)
		}
	}
}
