package httpx

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"tspusim/internal/hostnet"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

func TestRequestRoundTrip(t *testing.T) {
	b := FormatRequest("GET", "blocked.ru", "/index.html")
	req, err := ParseRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if req.Method != "GET" || req.Path != "/index.html" || req.Host != "blocked.ru" {
		t.Fatalf("req = %+v", req)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	b := FormatResponse(200, "OK", map[string]string{"Server": "tspusim"}, "<html>hello</html>")
	resp, err := ParseResponse(b)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || resp.Body != "<html>hello</html>" || resp.Headers["server"] != "tspusim" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTruncatedBody(t *testing.T) {
	b := FormatResponse(200, "OK", nil, strings.Repeat("x", 100))
	_, err := ParseResponse(b[:len(b)-40])
	if !errors.Is(err, ErrIncomplete) {
		t.Fatalf("want ErrIncomplete, got %v", err)
	}
}

func TestMalformed(t *testing.T) {
	for _, bad := range []string{
		"nonsense\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"GET /\r\n\r\n", // missing version
	} {
		if _, err := ParseResponse([]byte(bad)); err == nil {
			if _, err2 := ParseRequest([]byte(bad)); err2 == nil {
				t.Fatalf("accepted %q", bad)
			}
		}
	}
}

func TestPropertyParseNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic: %v", r)
			}
		}()
		ParseRequest(b)
		ParseResponse(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestServeAndGet(t *testing.T) {
	s := sim.New()
	n := netem.New(s)
	client := n.AddHost("c")
	server := n.AddHost("s")
	ci := client.AddIface(packet.MustAddr("10.0.0.2"))
	si := server.AddIface(packet.MustAddr("203.0.113.80"))
	n.Connect(ci, si, time.Millisecond)
	client.AddDefaultRoute(ci)
	server.AddDefaultRoute(si)
	cs := hostnet.NewStack(n, client)
	ss := hostnet.NewStack(n, server)

	Serve(ss, 80, func(req *Request) *Response {
		if req.Path == "/page" {
			return &Response{Status: 200, Reason: "OK", Body: "<html>site " + req.Host + "</html>"}
		}
		return nil
	})

	cl := &Client{Stack: cs, Run: s.Run}
	res := cl.Get(ss.Addr(), 80, "example.ru", "/page")
	if res.Response == nil || res.Response.Status != 200 {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(res.Response.Body, "example.ru") {
		t.Fatalf("body = %q", res.Response.Body)
	}
	// 404 path.
	res = cl.Get(ss.Addr(), 80, "example.ru", "/missing")
	if res.Response == nil || res.Response.Status != 404 {
		t.Fatalf("missing path result = %+v", res)
	}
	// Closed port: RST.
	res = cl.Get(ss.Addr(), 81, "example.ru", "/")
	if !res.Reset {
		t.Fatalf("closed port result = %+v", res)
	}
}

func TestGetThroughSegmentingWindow(t *testing.T) {
	// A request split across segments must still be parsed (the server
	// accumulates until the head completes).
	s := sim.New()
	n := netem.New(s)
	client := n.AddHost("c")
	server := n.AddHost("s")
	ci := client.AddIface(packet.MustAddr("10.0.0.2"))
	si := server.AddIface(packet.MustAddr("203.0.113.80"))
	n.Connect(ci, si, time.Millisecond)
	client.AddDefaultRoute(ci)
	server.AddDefaultRoute(si)
	cs := hostnet.NewStack(n, client)
	ss := hostnet.NewStack(n, server)
	Serve(ss, 80, func(req *Request) *Response {
		return &Response{Status: 200, Reason: "OK", Body: "ok"}
	})
	conn := cs.Dial(ss.Addr(), 80, hostnet.DialOptions{MSS: 8})
	conn.OnEstablished = func() { conn.Send(FormatRequest("GET", "x.ru", "/")) }
	s.Run()
	resp, err := ParseResponse(conn.Received)
	if err != nil || resp.Status != 200 {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
}
