package httpx

import "testing"

// FuzzParseResponse exercises the response parser on arbitrary bytes; any
// parse that succeeds must have a consistent Content-Length view. Run with:
// go test -fuzz=FuzzParseResponse
func FuzzParseResponse(f *testing.F) {
	f.Add(FormatResponse(200, "OK", map[string]string{"Server": "x"}, "<html>body</html>"))
	f.Add(FormatResponse(404, "Not Found", nil, ""))
	f.Add([]byte("HTTP/1.1 200\r\n\r\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ParseResponse(data)
		if err == nil && resp.Status < 100 {
			t.Fatalf("accepted absurd status %d", resp.Status)
		}
		ParseRequest(data)
	})
}
