// Package httpx is a deliberately small HTTP/1.1 layer over hostnet TCP:
// enough to serve and fetch blockpages and to run OONI-style web
// connectivity tests inside the simulator. It formats and parses single
// request/response exchanges (no keep-alive, no chunking) — which is also
// all a blockpage ever needs.
package httpx

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"tspusim/internal/hostnet"
)

// Request is a parsed HTTP request.
type Request struct {
	Method  string
	Path    string
	Host    string
	Headers map[string]string
}

// Response is a parsed HTTP response.
type Response struct {
	Status  int
	Reason  string
	Headers map[string]string
	Body    string
}

// Errors.
var (
	ErrMalformed  = errors.New("httpx: malformed message")
	ErrIncomplete = errors.New("httpx: incomplete message")
)

// FormatRequest renders a GET-style request.
func FormatRequest(method, host, path string) []byte {
	if path == "" {
		path = "/"
	}
	return []byte(fmt.Sprintf("%s %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n", method, path, host))
}

// ParseRequest parses a request head (body ignored; blockpage flows are
// GET-only).
func ParseRequest(b []byte) (*Request, error) {
	head, _, ok := strings.Cut(string(b), "\r\n\r\n")
	if !ok {
		return nil, ErrIncomplete
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
		return nil, fmt.Errorf("%w: request line %q", ErrMalformed, lines[0])
	}
	req := &Request{Method: parts[0], Path: parts[1], Headers: map[string]string{}}
	for _, line := range lines[1:] {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		req.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	req.Host = req.Headers["host"]
	return req, nil
}

// FormatResponse renders a response with Content-Length.
func FormatResponse(status int, reason string, headers map[string]string, body string) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", status, reason)
	keys := make([]string, 0, len(headers))
	for k := range headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s: %s\r\n", k, headers[k])
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n\r\n%s", len(body), body)
	return []byte(b.String())
}

// ParseResponse parses a full response; ErrIncomplete signals a body cut
// short (what a censored transfer looks like).
func ParseResponse(b []byte) (*Response, error) {
	head, body, ok := strings.Cut(string(b), "\r\n\r\n")
	if !ok {
		return nil, ErrIncomplete
	}
	lines := strings.Split(head, "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
		return nil, fmt.Errorf("%w: status line %q", ErrMalformed, lines[0])
	}
	status, err := strconv.Atoi(parts[1])
	if err != nil || status < 100 || status > 599 {
		return nil, fmt.Errorf("%w: status %q", ErrMalformed, parts[1])
	}
	resp := &Response{Status: status, Headers: map[string]string{}}
	if len(parts) == 3 {
		resp.Reason = parts[2]
	}
	for _, line := range lines[1:] {
		k, v, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("%w: header %q", ErrMalformed, line)
		}
		resp.Headers[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	if cl, ok := resp.Headers["content-length"]; ok {
		n, err := strconv.Atoi(cl)
		if err != nil {
			return nil, fmt.Errorf("%w: content-length %q", ErrMalformed, cl)
		}
		if len(body) < n {
			resp.Body = body
			return resp, ErrIncomplete
		}
		body = body[:n]
	}
	resp.Body = body
	return resp, nil
}

// Handler produces a response for a request.
type Handler func(req *Request) *Response

// Serve installs an HTTP server on a hostnet stack port.
func Serve(st *hostnet.Stack, port uint16, h Handler) {
	st.Listen(port, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, data []byte) {
			req, err := ParseRequest(c.Received)
			if err != nil {
				if errors.Is(err, ErrIncomplete) {
					return // wait for more segments
				}
				c.Send(FormatResponse(400, "Bad Request", nil, "bad request"))
				return
			}
			resp := h(req)
			if resp == nil {
				resp = &Response{Status: 404, Reason: "Not Found", Body: "not found"}
			}
			c.Send(FormatResponse(resp.Status, resp.Reason, resp.Headers, resp.Body))
		},
	})
}

// GetResult is the outcome of a Get.
type GetResult struct {
	Response *Response
	// Reset reports the connection was RST (SNI/TCP-level censorship).
	Reset bool
	// ConnectFailed reports no handshake (IP-level censorship or silence).
	ConnectFailed bool
	// Truncated reports an incomplete body (throttling or mid-stream drop).
	Truncated bool
}

// Get runs a blocking-style fetch under the simulator: dial, send the
// request, drain events, classify. The caller drives the sim; Get drains it.
type Client struct {
	Stack *hostnet.Stack
	Run   func() // drains the simulator (lab.Sim.Run)
}

// Get fetches http://host:port/path from addr.
func (c *Client) Get(addr netip.Addr, port uint16, host, path string) GetResult {
	conn := c.Stack.Dial(addr, port, hostnet.DialOptions{})
	req := FormatRequest("GET", host, path)
	conn.OnEstablished = func() { conn.Send(req) }
	c.Run()
	defer conn.Close()
	if conn.State == hostnet.StateSynSent {
		return GetResult{ConnectFailed: true}
	}
	if conn.ResetSeen && len(conn.Received) == 0 {
		return GetResult{Reset: true}
	}
	resp, err := ParseResponse(conn.Received)
	switch {
	case err == nil:
		return GetResult{Response: resp, Reset: conn.ResetSeen}
	case errors.Is(err, ErrIncomplete):
		return GetResult{Response: resp, Truncated: true, Reset: conn.ResetSeen}
	default:
		return GetResult{Reset: conn.ResetSeen, Truncated: true}
	}
}
