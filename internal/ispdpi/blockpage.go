package ispdpi

import (
	"fmt"
	"strings"
)

// Blockpage templates per ISP. Each Russian ISP serves its own page (§6.2),
// which is what makes blockpage fingerprinting [53] possible: the templates
// carry stable, ISP-specific markers.
var blockpageTemplates = map[string]string{
	"rostelecom": `<html><head><title>Доступ ограничен</title></head>
<body class="rt-block"><h1>Уважаемый абонент!</h1>
<p>Доступ к запрашиваемому ресурсу ограничен по решению Роскомнадзора.</p>
<p>rostelecom-block-id: %s</p></body></html>`,
	"ertelecom": `<html><head><title>Dom.ru — доступ закрыт</title></head>
<body id="ertelecom-blocked"><h2>Сайт заблокирован</h2>
<p>Ресурс внесён в единый реестр запрещённой информации.</p>
<p>ref: %s</p></body></html>`,
	"obit": `<html><head><title>OBIT: access restricted</title></head>
<body><div class="obit-banner">Доступ к сайту ограничен</div>
<p>Основание: федеральный закон 139-ФЗ. id=%s</p></body></html>`,
}

// fingerprint markers: a stable substring unique to each template.
var blockpageMarkers = map[string]string{
	"rostelecom": `class="rt-block"`,
	"ertelecom":  `id="ertelecom-blocked"`,
	"obit":       `class="obit-banner"`,
}

// BlockpageHTML renders the ISP's blockpage for a blocked domain.
func BlockpageHTML(isp, domain string) string {
	tpl, ok := blockpageTemplates[isp]
	if !ok {
		return fmt.Sprintf("<html><body>blocked: %s</body></html>", domain)
	}
	return fmt.Sprintf(tpl, domain)
}

// FingerprintBlockpage identifies which ISP served a page, in the spirit of
// Jones et al.'s blockpage fingerprinting [53]: match against known template
// markers. ok is false for ordinary content.
func FingerprintBlockpage(body string) (isp string, ok bool) {
	for name, marker := range blockpageMarkers {
		if strings.Contains(body, marker) {
			return name, true
		}
	}
	return "", false
}

// KnownBlockpageISPs lists the ISPs with registered templates.
func KnownBlockpageISPs() []string {
	return []string{"ertelecom", "obit", "rostelecom"}
}
