package ispdpi

import (
	"net/netip"
	"testing"
	"time"

	"tspusim/internal/dnsx"
	"tspusim/internal/hostnet"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tspu"
)

func twoHosts(t *testing.T) (*sim.Sim, *hostnet.Stack, *hostnet.Stack, *netem.Link) {
	t.Helper()
	s := sim.New()
	n := netem.New(s)
	a := n.AddHost("a")
	b := n.AddHost("b")
	ai := a.AddIface(packet.MustAddr("10.0.0.2"))
	bi := b.AddIface(packet.MustAddr("10.0.0.53"))
	link := n.Connect(ai, bi, time.Millisecond)
	a.AddDefaultRoute(ai)
	b.AddDefaultRoute(bi)
	return s, hostnet.NewStack(n, a), hostnet.NewStack(n, b), link
}

func TestBlockpageResolver(t *testing.T) {
	s, client, resolver, _ := twoHosts(t)
	blockpage := netip.MustParseAddr("192.0.2.200")
	real := netip.MustParseAddr("203.0.113.80")
	bl := tspu.NewDomainSet("banned.ru")
	r := NewBlockpageResolver(resolver, "obit", blockpage, bl, func(string) []netip.Addr {
		return []netip.Addr{real}
	})
	cl := dnsx.NewClient(client, resolver.Addr())
	var blocked, ok *dnsx.Message
	cl.Lookup("banned.ru", func(m *dnsx.Message) { blocked = m })
	cl.Lookup("fine.ru", func(m *dnsx.Message) { ok = m })
	s.Run()
	if blocked == nil || blocked.Answers[0].Addr != blockpage {
		t.Fatalf("blockpage = %+v", blocked)
	}
	if ok == nil || ok.Answers[0].Addr != real {
		t.Fatalf("upstream = %+v", ok)
	}
	if r.BlockpageServed != 1 {
		t.Fatalf("BlockpageServed = %d", r.BlockpageServed)
	}
}

func TestBlockpageSubdomains(t *testing.T) {
	s, client, resolver, _ := twoHosts(t)
	bl := tspu.NewDomainSet("banned.ru")
	blockpage := netip.MustParseAddr("192.0.2.200")
	NewBlockpageResolver(resolver, "rostelecom", blockpage, bl, nil)
	cl := dnsx.NewClient(client, resolver.Addr())
	var got *dnsx.Message
	cl.Lookup("cdn.banned.ru", func(m *dnsx.Message) { got = m })
	s.Run()
	if got == nil || len(got.Answers) == 0 || got.Answers[0].Addr != blockpage {
		t.Fatalf("subdomain not blockpaged: %+v", got)
	}
}

func TestKeywordDPI(t *testing.T) {
	s, client, server, link := twoHosts(t)
	dpi := &KeywordDPI{ISP: "ertelecom", Keywords: []string{"forbidden-word"}}
	link.Attach(dpi)
	server.Listen(80, hostnet.ListenOptions{
		OnData: func(c *hostnet.TCPConn, d []byte) { c.Send([]byte("forbidden-word in response")) },
	})
	conn := client.Dial(server.Addr(), 80, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send([]byte("GET /ok")) }
	s.Run()
	if !conn.ResetSeen {
		t.Fatal("keyword in response not reset")
	}
	if dpi.Resets != 1 {
		t.Fatalf("Resets = %d", dpi.Resets)
	}
}

func TestKeywordDPIIgnoresCleanTraffic(t *testing.T) {
	s, client, server, link := twoHosts(t)
	dpi := &KeywordDPI{ISP: "x", Keywords: []string{"zzz"}}
	link.Attach(dpi)
	server.Listen(80, hostnet.ListenOptions{Echo: true})
	conn := client.Dial(server.Addr(), 80, hostnet.DialOptions{})
	conn.OnEstablished = func() { conn.Send([]byte("harmless")) }
	s.Run()
	if conn.ResetSeen || string(conn.Received) != "harmless" {
		t.Fatal("clean traffic affected")
	}
}

func TestFragLimitMiddleboxReassembles(t *testing.T) {
	s, client, server, link := twoHosts(t)
	mb := NewFragLimitMiddlebox("cisco", 24)
	link.Attach(mb)
	var synack bool
	client.Tap(func(p *packet.Packet) {
		if p.TCP != nil && p.TCP.Flags.Has(packet.FlagsSYNACK) {
			synack = true
		}
	})
	server.Listen(443, hostnet.ListenOptions{})
	p := packet.NewTCP(client.Addr(), server.Addr(), 42001, 443, packet.FlagSYN, 1, 0, nil)
	p.IP.ID = 5
	frags, err := packet.FragmentCount(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		client.Send(f)
	}
	s.Run()
	if !synack {
		t.Fatal("reassembled SYN not delivered")
	}
}

func TestFragLimitMiddleboxDiscardsOverLimit(t *testing.T) {
	s, client, server, link := twoHosts(t)
	mb := NewFragLimitMiddlebox("cisco", 24)
	link.Attach(mb)
	got := 0
	client.Tap(func(p *packet.Packet) {
		if p.TCP != nil && p.TCP.Flags.Has(packet.FlagsSYNACK) {
			got++
		}
	})
	server.Listen(443, hostnet.ListenOptions{})
	p := packet.NewTCP(client.Addr(), server.Addr(), 42002, 443, packet.FlagSYN, 1, 0, nil)
	p.IP.ID = 6
	frags, err := packet.FragmentCount(p, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		client.Send(f)
	}
	s.Run()
	if got != 0 {
		t.Fatal("over-limit queue leaked")
	}
	if mb.Discarded != 1 {
		t.Fatalf("Discarded = %d", mb.Discarded)
	}
}

func TestTable7Integrity(t *testing.T) {
	rows := Table7()
	if len(rows) != 32 {
		t.Fatalf("Table 7 rows = %d, want 32", len(rows))
	}
	systems := map[string]bool{}
	for _, r := range rows {
		if r.Timeout <= 0 {
			t.Fatalf("row %+v has non-positive timeout", r)
		}
		systems[r.System] = true
	}
	for _, want := range []string{"rdp", "freebsd", "windows", "linux", "rfc 5382", "rfc 7857", "huawei", "cisco", "juniper"} {
		if !systems[want] {
			t.Fatalf("missing system %q", want)
		}
	}
}

func TestTSPUTimeoutsMatchNoProfile(t *testing.T) {
	// The paper's headline: the TSPU's measured values (60, 105, 480, 75,
	// 420, 40) match no documented implementation.
	for _, d := range []time.Duration{60 * time.Second, 105 * time.Second, 480 * time.Second,
		75 * time.Second, 420 * time.Second, 40 * time.Second} {
		if hits := MatchesKnownProfile(d); len(hits) != 0 {
			// 60s matches two documented rows (windows TCP FIN, linux
			// syn_recv and close_wait) — the paper's claim is about the set
			// as a whole; assert only the distinctive values are unmatched.
			if d != 60*time.Second {
				t.Fatalf("TSPU timeout %v matches %v", d, hits)
			}
		}
	}
}

func TestFragQueueLimitsFingerprint(t *testing.T) {
	limits := FragQueueLimits()
	if limits["tspu"] != 45 {
		t.Fatal("TSPU limit wrong")
	}
	for sysName, l := range limits {
		if sysName != "tspu" && l == 45 {
			t.Fatalf("%s shares the TSPU limit; fingerprint broken", sysName)
		}
	}
}
