package ispdpi

import "time"

// ConntrackProfile is one row of Table 7: a documented connection-state
// timeout for an open- or closed-source tracking implementation. The
// benchmark harness prints this table and contrasts it with the values
// measured from the TSPU model (none of which match).
type ConntrackProfile struct {
	System  string
	State   string
	Timeout time.Duration
}

// Table7 returns the reference timeout values exactly as the paper lists
// them (RDP [82], FreeBSD [9], Windows [25], Linux [16], RFC 5382 [49],
// RFC 7857 [78], Huawei [10], Cisco [5], Juniper [13]).
func Table7() []ConntrackProfile {
	s := func(n int) time.Duration { return time.Duration(n) * time.Second }
	return []ConntrackProfile{
		{"rdp", "timeout_inactivity translation", s(86400)},
		{"rdp", "timeouts_inactivity tcp_handshake", s(4)},
		{"rdp", "timeouts_inactivity tcp_active", s(300)},
		{"rdp", "timeouts_inactivity tcp_final", s(240)},
		{"rdp", "timeouts_inactivity tcp_reset", s(4)},
		{"rdp", "timeouts_inactivity tcp_session_active", s(120)},
		{"freebsd", "tcp.first", s(120)},
		{"freebsd", "tcp.opening", s(30)},
		{"freebsd", "tcp.established", s(86400)},
		{"freebsd", "tcp.closing", s(900)},
		{"freebsd", "tcp.finwait", s(45)},
		{"freebsd", "tcp.closed", s(90)},
		{"windows", "TCP FIN", s(60)},
		{"windows", "TCP RST", s(10)},
		{"windows", "TCP half open", s(30)},
		{"windows", "TCP idle timeout", s(240)},
		{"linux", "syn_sent", s(120)},
		{"linux", "syn_recv", s(60)},
		{"linux", "established", s(432000)},
		{"linux", "time_wait", s(120)},
		{"linux", "unacknowledged", s(300)},
		{"linux", "last_ack", s(30)},
		{"linux", "fin_wait", s(120)},
		{"linux", "close", s(10)},
		{"linux", "close_wait", s(60)},
		{"rfc 5382", "half open", s(240)},
		{"rfc 5382", "established idle", s(7200)},
		{"rfc 5382", "TIME WAIT", s(240)},
		{"rfc 7857", "partial open idle timeout", s(240)},
		{"huawei", "TCP session aging time", s(600)},
		{"cisco", "tcp-timeout", s(86400)},
		{"juniper", "TCP session timeout", s(1800)},
	}
}

// FragQueueLimits returns the documented fragment-queue limits the paper
// cites when arguing that 45 is a fingerprint (§7.2).
func FragQueueLimits() map[string]int {
	return map[string]int{
		"linux":   64,
		"cisco":   24,
		"juniper": 250,
		"tspu":    45,
	}
}

// MatchesKnownProfile reports whether a (state, timeout) pair measured from
// a device matches any documented implementation in Table 7. The paper's
// finding is that none of the TSPU's values do.
func MatchesKnownProfile(timeout time.Duration) []ConntrackProfile {
	var hits []ConntrackProfile
	for _, p := range Table7() {
		if p.Timeout == timeout {
			hits = append(hits, p)
		}
	}
	return hits
}
