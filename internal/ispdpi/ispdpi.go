// Package ispdpi implements the baselines the paper compares the TSPU
// against: the pre-2019 "decentralized model" (§2, [81]) in which each ISP
// runs its own blocking — typically DNS blockpage injection at the ISP
// resolver, with its own (often stale) subset of the registry — plus the
// comparator middleboxes and OS connection-tracking profiles (Table 7) used
// to show that the TSPU's fragment-queue limit and timeouts match no known
// implementation.
package ispdpi

import (
	"net/netip"
	"strings"
	"time"

	"tspusim/internal/censor"
	"tspusim/internal/dnsx"
	"tspusim/internal/hostnet"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/tspu"
)

// BlockpageResolver is an ISP resolver that answers censored names with the
// ISP's blockpage IP. Each ISP maintains its own blocklist — a subset of the
// registry updated at its own pace — which is exactly the non-uniformity
// Fig. 6 contrasts with the TSPU.
type BlockpageResolver struct {
	// ISP names the operator.
	ISP string
	// Blockpage is this ISP's blockpage address (differs per ISP).
	Blockpage netip.Addr
	// Blocklist is the ISP-maintained blocklist.
	Blocklist *tspu.DomainSet
	// Upstream resolves uncensored names.
	Upstream func(name string) []netip.Addr

	Server *dnsx.Server
	// BlockpageServed counts censored answers.
	BlockpageServed int
}

// NewBlockpageResolver installs a blockpage resolver on st.
func NewBlockpageResolver(st *hostnet.Stack, isp string, blockpage netip.Addr, blocklist *tspu.DomainSet, upstream func(string) []netip.Addr) *BlockpageResolver {
	r := &BlockpageResolver{ISP: isp, Blockpage: blockpage, Blocklist: blocklist, Upstream: upstream}
	r.Server = dnsx.NewServer(st, func(name string) []netip.Addr {
		if r.Blocklist.Contains(name) {
			r.BlockpageServed++
			return []netip.Addr{r.Blockpage}
		}
		if r.Upstream != nil {
			return r.Upstream(name)
		}
		return nil
	})
	return r
}

// KeywordDPI is the other ISP-deployed mechanism previous work observed [81]:
// a naive substring matcher over packet payloads that injects RSTs. Unlike
// the TSPU it does not parse protocols, so it both overblocks (keyword
// anywhere in any payload) and underblocks (misses anything not matching
// byte-for-byte).
type KeywordDPI struct {
	ISP      string
	Keywords []string
	// Resets counts connections it killed.
	Resets int
}

// Name implements netem.Middlebox.
func (k *KeywordDPI) Name() string { return "keyword-dpi/" + k.ISP }

// ConntrackSize implements censor.Censor: the keyword matcher is stateless —
// every packet is judged in isolation, so nothing outlives a flow.
func (k *KeywordDPI) ConntrackSize() int { return 0 }

// PendingFragQueues implements censor.Censor: no reassembly, fragments pass
// uninspected (which is precisely why fragmentation evades it).
func (k *KeywordDPI) PendingFragQueues() int { return 0 }

// Counters implements censor.Censor.
func (k *KeywordDPI) Counters() censor.Counters {
	return censor.Counters{ContentTriggers: k.Resets, Rewritten: k.Resets}
}

// Handle implements netem.Middlebox.
func (k *KeywordDPI) Handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	if pkt.TCP == nil || len(pkt.TCP.Payload) == 0 {
		return netem.Pass
	}
	payload := string(pkt.TCP.Payload)
	for _, kw := range k.Keywords {
		if strings.Contains(payload, kw) {
			pkt.TCP.Payload = nil
			pkt.TCP.Flags = packet.FlagsRSTACK
			k.Resets++
			return netem.Pass
		}
	}
	return netem.Pass
}

// FragLimitMiddlebox is a non-TSPU middlebox that also bounds fragment
// queues — the population responsible for the 0.708% of US hosts that look
// TSPU-like in §7.2. It reassembles (unlike the TSPU) and forwards the whole
// packet, discarding over-limit queues.
type FragLimitMiddlebox struct {
	Label string
	Limit int // Cisco 24, Juniper 250, etc.

	queues map[packet.FragKey]*fragBuf
	// Discarded counts dropped queues.
	Discarded int
}

type fragBuf struct {
	frags    []*packet.Packet
	poisoned bool
}

// NewFragLimitMiddlebox builds a comparator with the given queue limit.
func NewFragLimitMiddlebox(label string, limit int) *FragLimitMiddlebox {
	return &FragLimitMiddlebox{Label: label, Limit: limit, queues: make(map[packet.FragKey]*fragBuf)}
}

// Name implements netem.Middlebox.
func (m *FragLimitMiddlebox) Name() string { return "fraglimit/" + m.Label }

// ConntrackSize implements censor.Censor: the comparator tracks no flows,
// only fragment queues.
func (m *FragLimitMiddlebox) ConntrackSize() int { return 0 }

// PendingFragQueues implements censor.Censor.
func (m *FragLimitMiddlebox) PendingFragQueues() int { return len(m.queues) }

// Counters implements censor.Censor.
func (m *FragLimitMiddlebox) Counters() censor.Counters {
	return censor.Counters{Dropped: m.Discarded}
}

// Both ISP-era comparators are censor models the cross-censor battery can
// drive alongside the TSPU and the TM/IN profiles.
var (
	_ censor.Censor = (*KeywordDPI)(nil)
	_ censor.Censor = (*FragLimitMiddlebox)(nil)
)

// Handle implements netem.Middlebox.
func (m *FragLimitMiddlebox) Handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	if !pkt.IsFragment() {
		return netem.Pass
	}
	key := packet.FragKeyOf(pkt)
	q, ok := m.queues[key]
	if !ok {
		q = &fragBuf{}
		m.queues[key] = q
		pipe.After(30*time.Second, func() {
			if cur, live := m.queues[key]; live && cur == q {
				delete(m.queues, key)
			}
		})
	}
	if q.poisoned {
		return netem.Drop
	}
	if len(q.frags)+1 > m.Limit {
		q.poisoned = true
		q.frags = nil
		m.Discarded++
		return netem.Drop
	}
	q.frags = append(q.frags, pkt.Clone())
	whole, err := packet.Reassemble(q.frags)
	if err != nil {
		return netem.Drop // buffered, waiting
	}
	delete(m.queues, key)
	pipe.Inject(whole, dir)
	return netem.Drop
}
