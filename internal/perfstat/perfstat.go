// Package perfstat is the benchmark-regression harness: it parses `go test
// -bench` output into structured results, persists a baseline as sorted JSON,
// and compares a fresh run against the baseline under a configurable
// threshold. The policy it enforces mirrors the tentpole's contract — time
// may drift within a tolerance (CI machines jitter), but allocation counts
// are exact and may never regress at all: an allocs/op increase on a pinned-
// zero benchmark is a broken invariant, not noise.
//
// The package never executes benchmarks or reads clocks itself; it consumes
// text produced elsewhere (make bench pipes `go test -bench` through
// cmd/tspu-bench). That keeps it trivially deterministic: same input bytes,
// same verdict.
package perfstat

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurements.
type Result struct {
	// Name is the benchmark name with the -N GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// NsPerOp is the minimum ns/op across samples: the least-noisy estimate
	// of the code's true cost, standard for regression gating.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the maximum across samples: allocation
	// behavior is deterministic, so any sample exceeding the baseline is a
	// real regression, not scheduling noise.
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Pps is the maximum packets/sec across samples, taken from a custom
	// `pps` metric emitted via b.ReportMetric. Throughput is a
	// bigger-is-better axis: the max is the least-noisy estimate of what the
	// code can do, and a fresh run falling below baseline by more than the
	// threshold is a regression. Zero means the benchmark reports no pps.
	Pps float64 `json:"pps,omitempty"`
	// Samples counts how many lines were aggregated (go test -count=N).
	Samples int `json:"samples"`
}

// ParseBench reads `go test -bench` output and aggregates per-benchmark
// samples. Lines that are not benchmark results (headers, PASS, pkg lines)
// are ignored.
func ParseBench(r io.Reader) ([]Result, error) {
	agg := make(map[string]*Result)
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then value/unit pairs.
		if len(fields) < 4 {
			continue
		}
		name := trimProcSuffix(fields[0])
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not a result line
		}
		res, ok := agg[name]
		if !ok {
			res = &Result{Name: name}
			agg[name] = res
			order = append(order, name)
		}
		res.Samples++
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				if res.Samples == 1 || val < res.NsPerOp {
					res.NsPerOp = val
				}
			case "B/op":
				if val > res.BytesPerOp {
					res.BytesPerOp = val
				}
			case "allocs/op":
				if val > res.AllocsPerOp {
					res.AllocsPerOp = val
				}
			case "pps":
				if val > res.Pps {
					res.Pps = val
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("perfstat: reading bench output: %w", err)
	}
	out := make([]Result, 0, len(order))
	for _, name := range order {
		out = append(out, *agg[name])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// trimProcSuffix strips the trailing -N GOMAXPROCS marker go test appends.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Baseline is the committed reference a fresh run is compared against.
type Baseline struct {
	// Note documents provenance for humans reading the JSON; the harness
	// ignores it.
	Note    string   `json:"note,omitempty"`
	Results []Result `json:"results"`
}

// WriteBaseline renders the baseline as stable, indented JSON (results
// sorted by name).
func WriteBaseline(w io.Writer, b Baseline) error {
	sort.Slice(b.Results, func(i, j int) bool { return b.Results[i].Name < b.Results[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBaseline parses a baseline written by WriteBaseline.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("perfstat: parsing baseline: %w", err)
	}
	return b, nil
}

// Verdict classifies one benchmark's comparison.
type Verdict int

// Verdicts, from benign to fatal.
const (
	OK Verdict = iota
	// Improved means ns/op got meaningfully faster (candidate for a baseline
	// refresh).
	Improved
	// Missing means the baseline names a benchmark the fresh run lacks — a
	// silently deleted benchmark must fail the gate, or the harness rots.
	Missing
	// TimeRegressed means ns/op exceeded baseline by more than the threshold.
	TimeRegressed
	// ThroughputRegressed means the pps metric fell below baseline by more
	// than the threshold (throughput is bigger-is-better).
	ThroughputRegressed
	// AllocRegressed means B/op or allocs/op exceeded the baseline at all.
	AllocRegressed
)

func (v Verdict) String() string {
	switch v {
	case OK:
		return "ok"
	case Improved:
		return "improved"
	case Missing:
		return "missing"
	case TimeRegressed:
		return "time-regressed"
	case ThroughputRegressed:
		return "throughput-regressed"
	case AllocRegressed:
		return "alloc-regressed"
	}
	return "?"
}

// Delta is one benchmark's comparison against the baseline.
type Delta struct {
	Name     string
	Verdict  Verdict
	Old, New Result
	// NsRatio is new/old ns/op (0 when old is 0).
	NsRatio float64
	// PpsRatio is new/old pps (0 when the baseline carries no pps).
	PpsRatio float64
}

func (d Delta) String() string {
	switch d.Verdict {
	case Missing:
		return fmt.Sprintf("%-45s %s (in baseline, not in run)", d.Name, d.Verdict)
	default:
		s := fmt.Sprintf("%-45s %s ns/op %.1f -> %.1f (%.2fx) allocs %g -> %g",
			d.Name, d.Verdict, d.Old.NsPerOp, d.New.NsPerOp, d.NsRatio,
			d.Old.AllocsPerOp, d.New.AllocsPerOp)
		if d.Old.Pps > 0 {
			s += fmt.Sprintf(" pps %.3gM -> %.3gM (%.2fx)", d.Old.Pps/1e6, d.New.Pps/1e6, d.PpsRatio)
		}
		return s
	}
}

// allocSlack is the fractional headroom on B/op and allocs/op comparisons.
// It exists only for concurrent benchmarks whose counts jitter by parts per
// million with goroutine scheduling (the fleet sweeps); for the hot-path
// benchmarks pinned at zero it changes nothing — 0 × 1.01 is still 0, so any
// allocation at all remains a failure.
const allocSlack = 0.01

// Compare evaluates fresh results against the baseline. threshold is the
// allowed fractional ns/op growth (0.25 allows 25%); allocation regressions
// get only allocSlack, and zero-alloc baselines are exact. Benchmarks present
// only in the fresh run are ignored — adding a benchmark must not require
// touching the baseline in the same change — but every baseline entry must be
// present in the run.
func Compare(base Baseline, fresh []Result, threshold float64) []Delta {
	byName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		byName[r.Name] = r
	}
	deltas := make([]Delta, 0, len(base.Results))
	for _, old := range base.Results {
		d := Delta{Name: old.Name, Old: old}
		cur, ok := byName[old.Name]
		if !ok {
			d.Verdict = Missing
			deltas = append(deltas, d)
			continue
		}
		d.New = cur
		if old.NsPerOp > 0 {
			d.NsRatio = cur.NsPerOp / old.NsPerOp
		}
		if old.Pps > 0 {
			d.PpsRatio = cur.Pps / old.Pps
		}
		switch {
		case cur.AllocsPerOp > old.AllocsPerOp*(1+allocSlack) || cur.BytesPerOp > old.BytesPerOp*(1+allocSlack):
			d.Verdict = AllocRegressed
		case old.Pps > 0 && d.PpsRatio < 1-threshold:
			d.Verdict = ThroughputRegressed
		case old.NsPerOp > 0 && d.NsRatio > 1+threshold:
			d.Verdict = TimeRegressed
		case old.NsPerOp > 0 && d.NsRatio < 1-threshold,
			old.Pps > 0 && d.PpsRatio > 1+threshold:
			d.Verdict = Improved
		default:
			d.Verdict = OK
		}
		deltas = append(deltas, d)
	}
	return deltas
}

// Failures filters deltas down to the ones that must fail a CI gate.
func Failures(deltas []Delta) []Delta {
	var bad []Delta
	for _, d := range deltas {
		switch d.Verdict {
		case Missing, TimeRegressed, ThroughputRegressed, AllocRegressed:
			bad = append(bad, d)
		}
	}
	return bad
}
