package perfstat

import (
	"bytes"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: tspusim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDevice_PassThroughData  	25691485	        46.83 ns/op	       0 B/op	       0 allocs/op
BenchmarkDevice_PassThroughData  	25000000	        48.10 ns/op	       0 B/op	       0 allocs/op
BenchmarkDevice_ManyFlows-8      	24381603	        47.83 ns/op	       0 B/op	       0 allocs/op
BenchmarkAblation_SNIMatch/structural-parse-8 	 8000000	       150.0 ns/op	      64 B/op	       2 allocs/op
BenchmarkFleet_AllExperiments/workers=8          	      12	  90000000 ns/op	        3.100 speedup
PASS
ok  	tspusim	3.761s
`

func TestParseBench(t *testing.T) {
	results, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range results {
		byName[r.Name] = r
	}
	pt, ok := byName["BenchmarkDevice_PassThroughData"]
	if !ok {
		t.Fatalf("PassThroughData missing from %v", results)
	}
	if pt.Samples != 2 {
		t.Fatalf("samples = %d, want 2", pt.Samples)
	}
	if pt.NsPerOp != 46.83 {
		t.Fatalf("ns/op = %v, want min 46.83", pt.NsPerOp)
	}
	if pt.AllocsPerOp != 0 || pt.BytesPerOp != 0 {
		t.Fatalf("allocs = %v B = %v, want 0", pt.AllocsPerOp, pt.BytesPerOp)
	}
	if _, ok := byName["BenchmarkDevice_ManyFlows"]; !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	sub, ok := byName["BenchmarkAblation_SNIMatch/structural-parse"]
	if !ok {
		t.Fatal("sub-benchmark name not parsed")
	}
	if sub.AllocsPerOp != 2 || sub.BytesPerOp != 64 {
		t.Fatalf("sub-benchmark mem = %v/%v", sub.BytesPerOp, sub.AllocsPerOp)
	}
	// Custom metrics (speedup) must not corrupt parsing.
	if fl := byName["BenchmarkFleet_AllExperiments/workers=8"]; fl.NsPerOp != 90000000 {
		t.Fatalf("fleet ns/op = %v", fl.NsPerOp)
	}
	// Results are sorted by name.
	for i := 1; i < len(results); i++ {
		if results[i-1].Name >= results[i].Name {
			t.Fatal("results not sorted")
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	results, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, Baseline{Note: "test", Results: results}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "test" || len(got.Results) != len(results) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range results {
		if got.Results[i] != results[i] {
			t.Fatalf("result %d: %+v != %+v", i, got.Results[i], results[i])
		}
	}
	// Writing twice yields identical bytes (stable ordering).
	var buf2 bytes.Buffer
	if err := WriteBaseline(&buf2, got); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := WriteBaseline(&buf3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Fatal("baseline serialization not stable")
	}
}

func TestCompareVerdicts(t *testing.T) {
	base := Baseline{Results: []Result{
		{Name: "A", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "B", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "C", NsPerOp: 100, AllocsPerOp: 2, BytesPerOp: 64},
		{Name: "D", NsPerOp: 100, AllocsPerOp: 0},
		{Name: "E", NsPerOp: 100, AllocsPerOp: 0},
	}}
	fresh := []Result{
		{Name: "A", NsPerOp: 110, AllocsPerOp: 0},                // within 25%
		{Name: "B", NsPerOp: 140, AllocsPerOp: 0},                // time regression
		{Name: "C", NsPerOp: 90, AllocsPerOp: 3, BytesPerOp: 64}, // alloc regression
		{Name: "D", NsPerOp: 50, AllocsPerOp: 0},                 // improved
		// E missing
		{Name: "F", NsPerOp: 10, AllocsPerOp: 9}, // new benchmark: ignored
	}
	deltas := Compare(base, fresh, 0.25)
	want := map[string]Verdict{
		"A": OK, "B": TimeRegressed, "C": AllocRegressed, "D": Improved, "E": Missing,
	}
	if len(deltas) != len(want) {
		t.Fatalf("got %d deltas, want %d", len(deltas), len(want))
	}
	for _, d := range deltas {
		if d.Verdict != want[d.Name] {
			t.Errorf("%s: verdict %v, want %v", d.Name, d.Verdict, want[d.Name])
		}
	}
	bad := Failures(deltas)
	if len(bad) != 3 {
		t.Fatalf("failures = %d, want 3 (%v)", len(bad), bad)
	}
}

func TestCompareAllocRegressionHasNoTolerance(t *testing.T) {
	// A zero-alloc baseline is exact: a single allocation fails regardless of
	// the time threshold.
	base := Baseline{Results: []Result{{Name: "X", NsPerOp: 100, AllocsPerOp: 0, BytesPerOp: 0}}}
	fresh := []Result{{Name: "X", NsPerOp: 100, AllocsPerOp: 1, BytesPerOp: 8}}
	deltas := Compare(base, fresh, 10.0) // huge time tolerance
	if deltas[0].Verdict != AllocRegressed {
		t.Fatalf("verdict = %v, want alloc-regressed", deltas[0].Verdict)
	}
}

func TestCompareAllocSlackAbsorbsSchedulerJitter(t *testing.T) {
	// Concurrent benchmarks jitter by parts per million; within allocSlack is
	// OK, beyond it is a regression.
	base := Baseline{Results: []Result{{Name: "F", NsPerOp: 1e9, AllocsPerOp: 41726664, BytesPerOp: 3427727552}}}
	within := []Result{{Name: "F", NsPerOp: 1e9, AllocsPerOp: 41726700, BytesPerOp: 3427727552}}
	if v := Compare(base, within, 0.25)[0].Verdict; v != OK {
		t.Fatalf("jitter within slack judged %v, want ok", v)
	}
	beyond := []Result{{Name: "F", NsPerOp: 1e9, AllocsPerOp: 43000000, BytesPerOp: 3427727552}}
	if v := Compare(base, beyond, 0.25)[0].Verdict; v != AllocRegressed {
		t.Fatalf("3%% alloc growth judged %v, want alloc-regressed", v)
	}
}

func TestParsePpsMetric(t *testing.T) {
	in := `BenchmarkEngine_Passthrough-8 	 5000	    250000 ns/op	  9500000 pps	       0 B/op	       0 allocs/op
BenchmarkEngine_Passthrough-8 	 5000	    260000 ns/op	  9100000 pps	       0 B/op	       0 allocs/op
`
	results, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	// Throughput aggregates as the max across samples (bigger is better).
	if results[0].Pps != 9500000 {
		t.Fatalf("pps = %v, want max 9500000", results[0].Pps)
	}
	if results[0].NsPerOp != 250000 {
		t.Fatalf("ns/op = %v, want min 250000", results[0].NsPerOp)
	}
}

func TestCompareThroughputVerdicts(t *testing.T) {
	base := Baseline{Results: []Result{
		{Name: "T1", NsPerOp: 100, Pps: 10e6},
		{Name: "T2", NsPerOp: 100, Pps: 10e6},
		{Name: "T3", NsPerOp: 100, Pps: 10e6},
	}}
	fresh := []Result{
		{Name: "T1", NsPerOp: 100, Pps: 9e6},  // -10%: within threshold
		{Name: "T2", NsPerOp: 100, Pps: 6e6},  // -40%: regression
		{Name: "T3", NsPerOp: 100, Pps: 15e6}, // +50%: improved
	}
	deltas := Compare(base, fresh, 0.25)
	want := map[string]Verdict{"T1": OK, "T2": ThroughputRegressed, "T3": Improved}
	for _, d := range deltas {
		if d.Verdict != want[d.Name] {
			t.Errorf("%s: verdict %v, want %v", d.Name, d.Verdict, want[d.Name])
		}
	}
	if bad := Failures(deltas); len(bad) != 1 || bad[0].Name != "T2" {
		t.Fatalf("failures = %v, want just T2", bad)
	}
}

func TestParseBenchIgnoresGarbage(t *testing.T) {
	in := "Benchmark\nBenchmarkX notanumber 5 ns/op\nrandom text\nBenchmarkY 10 bad ns/op\n"
	results, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	// BenchmarkY parses (10 iterations) but its malformed value pair is
	// skipped; BenchmarkX is dropped entirely.
	for _, r := range results {
		if r.Name == "BenchmarkX" {
			t.Fatal("malformed line parsed as a result")
		}
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":            "BenchmarkFoo",
		"BenchmarkFoo":              "BenchmarkFoo",
		"BenchmarkFoo/sub-case":     "BenchmarkFoo/sub-case",
		"BenchmarkFoo/sub-case-16":  "BenchmarkFoo/sub-case",
		"BenchmarkFoo/workers=8-16": "BenchmarkFoo/workers=8",
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
