package armsrace

import (
	"strings"
	"testing"
	"time"

	"tspusim/internal/evolve"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
)

// The full-race ledger, corpus replay, and worker-independence pins live in
// the root package (armsrace_golden_test.go) next to the other experiment
// goldens; this file covers the package's own moving parts.

func TestContainsFold(t *testing.T) {
	needle := foldBytes("rferl.org")
	for _, tc := range []struct {
		hay  string
		want bool
	}{
		{"rferl.org", true},
		{"xxRFERL.ORGxx", true},
		{"RfErL.oRg", true},
		{"rferl.or", false},
		{"", false},
		{"rferl_org", false},
	} {
		if got := containsFold([]byte(tc.hay), needle); got != tc.want {
			t.Errorf("containsFold(%q) = %v, want %v", tc.hay, got, tc.want)
		}
	}
}

func TestSlug(t *testing.T) {
	for in, want := range map[string]string{
		"segment(64)":                "segment-64",
		"junk(ttl=5)":                "junk-ttl-5",
		"srv-delay(61s)":             "srv-delay-61s",
		"segment(16)+prepend-record": "segment-16-prepend-record",
	} {
		if got := slug(in); got != want {
			t.Errorf("slug(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestVerdictEncodeRoundTrip(t *testing.T) {
	for _, v := range []Verdict{
		{},
		{Evaded: true, ServerSawTrigger: true, ClientGotReply: true, FollowUps: 4},
		{ServerSawTrigger: true, ResetSeen: true, FollowUps: 1},
	} {
		got, err := parseVerdict(encodeVerdict(v))
		if err != nil || got != v {
			t.Errorf("verdict %+v did not round-trip: %+v %v", v, got, err)
		}
	}
}

// TestMenusAreCoherent pins menu-table integrity: every countermeasure must
// carry exactly one mechanism (tspu config knob or watcher), a Defeats
// predicate, and a unique name within its family.
func TestMenusAreCoherent(t *testing.T) {
	for _, fam := range Families() {
		names := map[string]bool{}
		for _, cm := range fam.Menu {
			if names[cm.Name] {
				t.Errorf("%s: duplicate countermeasure %q", fam.Name, cm.Name)
			}
			names[cm.Name] = true
			if cm.Defeats == nil {
				t.Errorf("%s/%s: nil Defeats", fam.Name, cm.Name)
			}
			if (cm.Reconfig == nil) == (cm.Watcher == nil) {
				t.Errorf("%s/%s: want exactly one of Reconfig/Watcher", fam.Name, cm.Name)
			}
			if cm.Reconfig != nil && fam.Name != "tspu" {
				t.Errorf("%s/%s: config countermeasures only apply to the tspu", fam.Name, cm.Name)
			}
		}
	}
	if _, ok := FamilyByName("tspu"); !ok {
		t.Error("FamilyByName cannot resolve tspu")
	}
	if _, ok := FamilyByName("nosuch"); ok {
		t.Error("FamilyByName resolved a nonexistent family")
	}
	fam, _ := FamilyByName("tm")
	if _, ok := menuByName(fam, []string{"frag-reassembly", "stream-scan"}); !ok {
		t.Error("menuByName failed on valid posture")
	}
	if _, ok := menuByName(fam, []string{"reassemble-tcp"}); ok {
		t.Error("menuByName resolved a tspu-only countermeasure for tm")
	}
}

// TestWatchersCounterKnownEvasions drives each watcher end-to-end on a real
// testbed: the evasion it claims to defeat must flip from evades to blocked
// when the watcher is attached in front of the censor, and the baseline noop
// must stay blocked either way (no overblocking of the reply path).
func TestWatchersCounterKnownEvasions(t *testing.T) {
	tm, _ := FamilyByName("tm")
	cases := []struct {
		name   string
		cmName string
		genome evolve.Genome
	}{
		{"frag-reassembly kills fragmentation", "frag-reassembly", evolve.Genome{FragmentPayload: 64}},
		{"stream-scan kills segmentation", "stream-scan", evolve.Genome{SegmentSize: 64}},
		{"stream-scan kills record-prepending", "stream-scan", evolve.Genome{PrependRecord: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cms, ok := menuByName(tm, []string{tc.cmName})
			if !ok {
				t.Fatalf("unknown countermeasure %s", tc.cmName)
			}
			before := runTrial(tm, tm.Probe, nil, tc.genome, nil)
			if !before.Evaded {
				t.Fatalf("%s should evade baseline tm, got %s", tc.genome, before)
			}
			after := runTrial(tm, tm.Probe, cms, tc.genome, nil)
			if after.Evaded {
				t.Fatalf("%s should be blocked under %s, got %s", tc.genome, tc.cmName, after)
			}
			control := runTrial(tm, tm.Probe, cms, evolve.Genome{}, nil)
			if control.Evaded {
				t.Fatalf("noop should stay blocked under %s, got %s", tc.cmName, control)
			}
		})
	}
}

// TestByteScanCountersPrependRecord: the tspu's parser-bypass countermeasure
// must kill record-prepending while the reassemble knob alone does not.
func TestByteScanCountersPrependRecord(t *testing.T) {
	tspuFam, _ := FamilyByName("tspu")
	g := evolve.Genome{PrependRecord: true}
	if v := runTrial(tspuFam, tspuFam.Probe, nil, g, nil); !v.Evaded {
		t.Fatalf("prepend-record should evade baseline tspu, got %s", v)
	}
	cms, _ := menuByName(tspuFam, []string{"byte-scan"})
	if v := runTrial(tspuFam, tspuFam.Probe, cms, g, nil); v.Evaded {
		t.Fatalf("prepend-record should be blocked under byte-scan, got %s", v)
	}
}

// TestTraceUnknownInputs: the replayer must reject stale corpus headers
// instead of silently replaying something else.
func TestTraceUnknownInputs(t *testing.T) {
	if _, err := Trace(TraceHeader{Family: "nosuch", Genome: "segment(64)"}); err == nil {
		t.Error("Trace accepted an unknown family")
	}
	if _, err := Trace(TraceHeader{Family: "tspu", Posture: []string{"frag-reassembly"}, Genome: "segment(64)"}); err == nil {
		t.Error("Trace accepted a posture not on the family's menu")
	}
	if _, err := Trace(TraceHeader{Family: "tspu", Genome: "segment(007)"}); err == nil {
		t.Error("Trace accepted an undecodable genome")
	}
	if _, err := ParseTraceHeader("no headers here\n"); err == nil {
		t.Error("ParseTraceHeader accepted content without header lines")
	}
}

// recordPipe satisfies netem.Pipe for driving watcher Handle directly; it
// records injections and scheduled timers so tests can fire them by hand.
type recordPipe struct {
	injected []*packet.Packet
	timers   []func()
}

func (p *recordPipe) Inject(pkt *packet.Packet, dir netem.Direction) {
	//tspuvet:retains test recorder owns watcher-built packets; nothing re-sends them
	p.injected = append(p.injected, pkt)
}
func (p *recordPipe) Now() time.Duration               { return 0 }
func (p *recordPipe) After(d time.Duration, fn func()) { p.timers = append(p.timers, fn) }

// TestFragReassembler covers both fates of a fragment queue: a completed
// queue re-injects the reassembled whole, and an incomplete one is garbage
// collected by its timeout instead of being retained forever.
func TestFragReassembler(t *testing.T) {
	src, dst := packet.MustAddr("10.0.0.2"), packet.MustAddr("203.0.113.10")
	whole := packet.NewTCP(src, dst, 40000, 443, packet.FlagsPSHACK, 100, 200,
		[]byte("GET / HTTP/1.1\r\nHost: rferl.org\r\n\r\n"))
	frags, err := packet.FragmentCount(whole, 2)
	if err != nil || len(frags) != 2 {
		t.Fatalf("FragmentCount: %v (%d frags)", err, len(frags))
	}

	m := newFragReassembler(netem.AtoB)
	pipe := &recordPipe{}

	// Complete queue: both fragments dropped, whole re-injected.
	if got := m.Handle(pipe, frags[0], netem.AtoB); got != netem.Drop {
		t.Fatalf("first fragment: got %v, want Drop", got)
	}
	if len(m.queues) != 1 {
		t.Fatalf("queue not buffered: %d queues", len(m.queues))
	}
	if got := m.Handle(pipe, frags[1], netem.AtoB); got != netem.Drop {
		t.Fatalf("second fragment: got %v, want Drop", got)
	}
	if m.Reassembled != 1 || len(pipe.injected) != 1 {
		t.Fatalf("want 1 reassembly+injection, got %d/%d", m.Reassembled, len(pipe.injected))
	}
	if got := pipe.injected[0].TCP; got == nil || !strings.Contains(string(got.Payload), "rferl.org") {
		t.Fatal("reassembled packet lost its payload")
	}
	if len(m.queues) != 0 {
		t.Fatal("completed queue not deleted")
	}

	// Completed queue's timer must be a no-op (identity-checked closure).
	for _, fire := range pipe.timers {
		fire()
	}

	// Incomplete queue: one fragment, then the timeout collects it.
	pipe.timers = nil
	m.Handle(pipe, frags[0].Clone(), netem.AtoB)
	if len(m.queues) != 1 || len(pipe.timers) != 1 {
		t.Fatalf("want 1 pending queue with 1 timer, got %d/%d", len(m.queues), len(pipe.timers))
	}
	pipe.timers[0]()
	if len(m.queues) != 0 {
		t.Fatal("incomplete queue not garbage collected by timeout")
	}

	// Wrong direction and non-fragments pass through untouched.
	if got := m.Handle(pipe, frags[0].Clone(), netem.BtoA); got != netem.Pass {
		t.Fatalf("reverse direction: got %v, want Pass", got)
	}
	if got := m.Handle(pipe, whole, netem.AtoB); got != netem.Pass {
		t.Fatalf("non-fragment: got %v, want Pass", got)
	}
}

// TestStreamScanCrossPacket: the stream scanner must match a needle split
// across two segments and tear the flow down with a TM-style RST pair.
func TestStreamScanCrossPacket(t *testing.T) {
	src, dst := packet.MustAddr("10.0.0.2"), packet.MustAddr("203.0.113.10")
	m := newStreamScan(BlockedDomain, netem.AtoB)
	pipe := &recordPipe{}

	a := packet.NewTCP(src, dst, 40000, 443, packet.FlagsPSHACK, 100, 200, []byte("xxRFER"))
	b := packet.NewTCP(src, dst, 40000, 443, packet.FlagsPSHACK, 106, 200, []byte("L.orgxx"))
	if got := m.Handle(pipe, a, netem.AtoB); got != netem.Pass {
		t.Fatalf("first segment: got %v, want Pass", got)
	}
	if got := m.Handle(pipe, b, netem.AtoB); got != netem.Drop {
		t.Fatalf("completing segment: got %v, want Drop", got)
	}
	if m.Hits != 1 || len(pipe.injected) != 2 {
		t.Fatalf("want 1 hit with an RST pair, got %d hits / %d injections", m.Hits, len(pipe.injected))
	}
	for _, rst := range pipe.injected {
		if rst.TCP.Flags != packet.FlagsRSTACK {
			t.Fatalf("injected packet is not RST+ACK: %v", rst.TCP.Flags)
		}
	}
	// Stragglers on a fired flow are eaten.
	if got := m.Handle(pipe, b.Clone(), netem.AtoB); got != netem.Drop {
		t.Fatalf("straggler after teardown: got %v, want Drop", got)
	}
}

// TestRaceSmallConfig is the in-package smoke: a trimmed race still finds at
// least one pin against the tspu and is deterministic across two runs.
func TestRaceSmallConfig(t *testing.T) {
	famAll := Families()
	cfg := Config{Rounds: 2, Population: 8, Generations: 3, PinsPerRound: 2, Workers: 1,
		Families: famAll[:1]} // tspu only
	a := Run(cfg)
	if len(a.Families) != 1 || len(a.Families[0].Pins) < 1 {
		t.Fatalf("trimmed race found no tspu pins:\n%s", a.Render())
	}
	if b := Run(cfg); a.Render() != b.Render() {
		t.Fatal("trimmed race is not deterministic across runs")
	}
	if !strings.Contains(a.Render(), "tspu") {
		t.Fatal("ledger missing family name")
	}
}
