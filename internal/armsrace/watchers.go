// Counter-evolution watcher middleboxes: the censor side's table-driven
// upgrades. Each watcher sits on the censor link *in front of* the base
// censor model (see topo.BuildCensorTestbedBare), so anything it re-injects
// re-enters the middlebox chain at the censor — a reassembled whole packet
// is inspected exactly as if the client had never split it.
package armsrace

import (
	"time"

	"tspusim/internal/netem"
	"tspusim/internal/packet"
)

// fragReassembler is the "add reassembly" countermeasure for censors whose
// fragment engines forward without inspection (TM §6.2, the IN profiles, the
// keyword DPI): buffer each queue, reassemble, and re-inject the whole
// packet in front of the censor. It only watches the client→server
// direction — the direction the probed triggers travel.
type fragReassembler struct {
	dir    netem.Direction
	queues map[packet.FragKey]*fragQueue
	// Reassembled counts whole packets re-injected.
	Reassembled int
}

type fragQueue struct{ frags []*packet.Packet }

func newFragReassembler(dir netem.Direction) *fragReassembler {
	return &fragReassembler{dir: dir, queues: make(map[packet.FragKey]*fragQueue)}
}

// Name implements netem.Middlebox.
func (m *fragReassembler) Name() string { return "cm/frag-reassembly" }

// Handle implements netem.Middlebox.
func (m *fragReassembler) Handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	if dir != m.dir || !pkt.IsFragment() {
		return netem.Pass
	}
	key := packet.FragKeyOf(pkt)
	q, ok := m.queues[key]
	if !ok {
		q = &fragQueue{}
		m.queues[key] = q
		// The timeout closure checks queue identity, so a completed or
		// replaced queue makes it a no-op (the ispdpi comparator's idiom).
		timeoutKey := key
		pipe.After(30*time.Second, func() {
			if cur, live := m.queues[timeoutKey]; live && cur == q {
				delete(m.queues, timeoutKey)
			}
		})
	}
	q.frags = append(q.frags, pkt.Clone())
	whole, err := packet.Reassemble(q.frags)
	if err != nil {
		return netem.Drop // buffered, waiting for the rest
	}
	delete(m.queues, key)
	m.Reassembled++
	pipe.Inject(whole, dir)
	return netem.Drop
}

// streamScan is the "add stream reassembly" countermeasure: it accumulates
// each flow's censor-ward payload bytes and tears the connection down
// TM-style (RST+ACK to both ends) once the blocked name appears anywhere in
// the accumulated stream — across TCP segment boundaries, behind a prepended
// record, inside a padded ClientHello. The per-flow buffer is capped;
// legitimate flows never accumulate more than the cap before the name would
// have appeared.
type streamScan struct {
	needle []byte // lowercase
	dir    netem.Direction
	bufs   map[packet.FlowKey4][]byte
	fired  map[packet.FlowKey4]bool
	// Hits counts flows torn down.
	Hits int
}

// streamScanCap bounds the per-flow accumulation window: a realistic
// ClientHello plus any modeled padding fits well inside it.
const streamScanCap = 8192

func newStreamScan(needle string, dir netem.Direction) *streamScan {
	return &streamScan{
		needle: foldBytes(needle),
		dir:    dir,
		bufs:   make(map[packet.FlowKey4][]byte),
		fired:  make(map[packet.FlowKey4]bool),
	}
}

// Name implements netem.Middlebox.
func (m *streamScan) Name() string { return "cm/stream-scan" }

// Handle implements netem.Middlebox.
func (m *streamScan) Handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	if dir != m.dir || pkt.TCP == nil || len(pkt.TCP.Payload) == 0 {
		return netem.Pass
	}
	key := packet.FlowKey4Of(pkt)
	if m.fired[key] {
		return netem.Drop // flow already torn down; eat stragglers
	}
	buf := m.bufs[key]
	if len(buf) < streamScanCap {
		buf = append(buf, pkt.TCP.Payload...)
		m.bufs[key] = buf
	}
	if !containsFold(buf, m.needle) {
		return netem.Pass
	}
	m.fired[key] = true
	delete(m.bufs, key)
	m.Hits++
	injectRSTPair(pipe, pkt, dir)
	return netem.Drop
}

// byteScan is the parser-bypass countermeasure: a stateless, case-folded
// raw-byte search over each packet's payload, no record or header parse at
// all. It catches prepend-record (whose whole trick is breaking the
// single-record parser) and padded ClientHellos, but still loses to
// segmentation and fragmentation — the name never appears whole in one
// packet.
type byteScan struct {
	needle []byte // lowercase
	dir    netem.Direction
	// Hits counts packets matched.
	Hits int
}

func newByteScan(needle string, dir netem.Direction) *byteScan {
	return &byteScan{needle: foldBytes(needle), dir: dir}
}

// Name implements netem.Middlebox.
func (m *byteScan) Name() string { return "cm/byte-scan" }

// Handle implements netem.Middlebox.
func (m *byteScan) Handle(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) netem.Action {
	if dir != m.dir || pkt.TCP == nil || len(pkt.TCP.Payload) == 0 {
		return netem.Pass
	}
	if !containsFold(pkt.TCP.Payload, m.needle) {
		return netem.Pass
	}
	m.Hits++
	injectRSTPair(pipe, pkt, dir)
	return netem.Drop
}

// injectRSTPair tears a connection down from the middle the way the TM model
// does (§5): RST+ACK toward the sender acknowledging the consumed payload,
// RST+ACK toward the receiver carrying the sender's sequence.
func injectRSTPair(pipe netem.Pipe, pkt *packet.Packet, dir netem.Direction) {
	payloadLen := uint32(len(pkt.TCP.Payload))
	toSender := packet.NewTCP(pkt.IP.Dst, pkt.IP.Src, pkt.TCP.DstPort, pkt.TCP.SrcPort,
		packet.FlagsRSTACK, pkt.TCP.Ack, pkt.TCP.Seq+payloadLen, nil)
	toReceiver := packet.NewTCP(pkt.IP.Src, pkt.IP.Dst, pkt.TCP.SrcPort, pkt.TCP.DstPort,
		packet.FlagsRSTACK, pkt.TCP.Seq, pkt.TCP.Ack, nil)
	pipe.Inject(toSender, dir.Reverse())
	pipe.Inject(toReceiver, dir)
}

// foldBytes lowercases an ASCII needle once at construction.
func foldBytes(s string) []byte {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return b
}

// containsFold reports whether the lowercase needle appears in hay under
// ASCII case folding, without allocating.
func containsFold(hay, needle []byte) bool {
	if len(needle) == 0 || len(hay) < len(needle) {
		return false
	}
	for i := 0; i+len(needle) <= len(hay); i++ {
		ok := true
		for j := 0; j < len(needle); j++ {
			c := hay[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != needle[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
