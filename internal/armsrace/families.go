// Package armsrace closes the loop the paper leaves open in §8: every
// circumvention strategy it reports is one move in an arms race the censor
// gets to answer. The harness runs a Geneva-style evasion search
// (internal/evolve) against each modeled censor family, then lets the censor
// counter-evolve between rounds by picking from a bounded, table-driven menu
// of countermeasures — the upgrades the paper's own measurements show the
// TSPU operators shipping (TTL-junk mitigation §8, QUIC filtering §5.3) and
// the ones the comparison censors would need (reassembly, stream scanning).
// Every surviving evasion is frozen as a replayable golden trace under
// testdata/evasions/, so a model change that silently breaks or un-breaks a
// strategy fails a pinned test, not a narrative.
package armsrace

import (
	"tspusim/internal/censor"
	"tspusim/internal/censor/in"
	"tspusim/internal/censor/tm"
	"tspusim/internal/evolve"
	"tspusim/internal/ispdpi"
	"tspusim/internal/netem"
	"tspusim/internal/sim"
	"tspusim/internal/topo"
	"tspusim/internal/tspu"
)

// BlockedDomain is the stimulus installed in every family's trigger tables —
// the same honest common denominator the cross-censor battery uses
// (measure.CrossBlockedDomain; the root-package tests pin the equality).
const BlockedDomain = "rferl.org"

// CorpusSeed seeds every simulation the arms race runs. The evasion corpus is
// a conformance artifact like the fingerprint matrix: it describes the model
// tables, not a sampled population, so it deliberately ignores the lab seed
// and is byte-identical across replicas and worker counts.
const CorpusSeed uint64 = 0x7575

// ProbeKind names the application-layer trigger a family is probed with.
type ProbeKind string

// Probe kinds: the two trigger planes every modeled censor family acts on.
const (
	ProbeTLS  ProbeKind = "tls-sni"
	ProbeHTTP ProbeKind = "http-host"
)

// Probe is the stimulus a family's trials carry: which trigger plane, on
// which port.
type Probe struct {
	Kind ProbeKind
	Port uint16
}

// Countermeasure is one entry of a family's upgrade menu. Defeats is the
// censor operator's (perfect) knowledge of which mechanisms the upgrade
// addresses — used only to *choose* from the menu; whether the upgrade
// actually kills a pinned evasion is decided by replaying it, never assumed.
type Countermeasure struct {
	Name string
	// Note says what the upgrade models.
	Note string
	// Defeats reports whether the countermeasure targets any of the genome's
	// active mechanisms.
	Defeats func(g evolve.Genome) bool
	// Reconfig, when non-nil, mutates the TSPU device config (the ablation
	// knobs are the counter-evolution surface for the stateful model).
	Reconfig func(c *tspu.Config)
	// Watcher, when non-nil, builds a fresh middlebox attached to the censor
	// link in front of the base model (topo.BuildCensorTestbedBare's pre
	// slot).
	Watcher func() netem.Middlebox
}

// Family is one censor lineage in the race: a base model, the probe that its
// tables block, and the bounded menu it may counter-evolve from.
type Family struct {
	Name string
	// Cite is the paper establishing the base model.
	Cite string
	Probe Probe
	// Build constructs a fresh censor on the testbed's simulator with the
	// applied countermeasures' config changes (watchers attach separately).
	Build func(s *sim.Sim, applied []Countermeasure) censor.Censor
	Menu  []Countermeasure
}

// tspuMenu is the TSPU's upgrade path: its config ablation knobs are exactly
// the counter-moves §8 discusses, plus a parser-bypass byte scanner for the
// record-prepending hole in the single-record SNI parser.
func tspuMenu() []Countermeasure {
	return []Countermeasure{
		{
			Name: "reassemble-tcp",
			Note: "reassemble upstream TCP before SNI inspection (kills segmentation and small-window)",
			Defeats: func(g evolve.Genome) bool {
				return g.SegmentSize > 0 || g.ServerWindow > 0
			},
			Reconfig: func(c *tspu.Config) { c.ReassembleTCP = true },
		},
		{
			Name: "frag-limit-2",
			Note: "tighten the fragment-queue cap from 45 to 2 so a split ClientHello poisons its queue",
			Defeats: func(g evolve.Genome) bool { return g.FragmentPayload > 0 },
			Reconfig: func(c *tspu.Config) { c.FragLimit = 2 },
		},
		{
			Name: "deep-inspect",
			Note: "raise the SNI parser's inspection depth past any padding extension",
			Defeats: func(g evolve.Genome) bool { return g.PadBeforeSNI > 0 },
			Reconfig: func(c *tspu.Config) { c.InspectDepth = 4096 },
		},
		{
			Name: "strict-roles",
			Note: "apply triggers regardless of inferred flow roles (kills split-handshake and delay)",
			Defeats: func(g evolve.Genome) bool {
				return g.ServerSplit || g.ServerDelaySec > 0
			},
			Reconfig: func(c *tspu.Config) { c.StrictRoles = true },
		},
		{
			Name: "byte-scan",
			Note: "raw per-packet byte scan beside the record parser (kills record-prepending)",
			Defeats: func(g evolve.Genome) bool { return g.PrependRecord },
			Watcher: func() netem.Middlebox { return newByteScan(BlockedDomain, topo.CensorTestbedLocalDir) },
		},
	}
}

// scanMenu is the upgrade path of the stateless per-packet censors (keyword
// DPI, TM, the IN profiles): they cannot grow TSPU-style conntrack knobs, but
// they can bolt reassembly middleboxes in front of the matcher.
func scanMenu() []Countermeasure {
	return []Countermeasure{
		{
			Name: "frag-reassembly",
			Note: "reassemble IP fragments in front of the matcher (the fragment engine forwarded them blind)",
			Defeats: func(g evolve.Genome) bool { return g.FragmentPayload > 0 },
			Watcher: func() netem.Middlebox { return newFragReassembler(topo.CensorTestbedLocalDir) },
		},
		{
			Name: "stream-scan",
			Note: "accumulate each flow's bytes and match across packet boundaries and record structure",
			Defeats: func(g evolve.Genome) bool {
				return g.SegmentSize > 0 || g.ServerWindow > 0 || g.PrependRecord || g.PadBeforeSNI > 0
			},
			Watcher: func() netem.Middlebox { return newStreamScan(BlockedDomain, topo.CensorTestbedLocalDir) },
		},
	}
}

// Families returns the race's lineages in corpus order: the same six models
// as the cross-censor battery, each probed on the plane its tables block
// (the pinned fingerprint matrix shows tspu/tm/jio/keyword block the TLS SNI
// and airtel/mtnl block the HTTP Host for the shared stimulus).
func Families() []Family {
	return []Family{
		{
			Name:  "tspu",
			Cite:  "TSPU (IMC '22)",
			Probe: Probe{Kind: ProbeTLS, Port: 443},
			Build: func(s *sim.Sim, applied []Countermeasure) censor.Censor {
				cfg := tspu.Config{
					Name:     "tspu",
					Sim:      s,
					Rand:     sim.NewRand(sim.StreamSeed(CorpusSeed, "armsrace/tspu")),
					LocalDir: topo.CensorTestbedLocalDir,
				}
				for _, cm := range applied {
					if cm.Reconfig != nil {
						cm.Reconfig(&cfg)
					}
				}
				d := tspu.NewDevice(cfg)
				ctl := tspu.NewController(nil)
				ctl.Register(d)
				ctl.Update(func(p *tspu.Policy) {
					p.SNI1Domains.Add(BlockedDomain)
					p.QUICFilter = true
				})
				return d
			},
			Menu: tspuMenu(),
		},
		{
			Name:  "ispdpi-keyword",
			Cite:  "pre-2019 RU ISP DPI (§2 [81])",
			Probe: Probe{Kind: ProbeTLS, Port: 443},
			Build: func(s *sim.Sim, applied []Countermeasure) censor.Censor {
				return &ispdpi.KeywordDPI{ISP: "armsrace", Keywords: []string{BlockedDomain}}
			},
			Menu: scanMenu(),
		},
		{
			Name:  "tm",
			Cite:  "arXiv:2304.04835",
			Probe: Probe{Kind: ProbeTLS, Port: 443},
			Build: func(s *sim.Sim, applied []Countermeasure) censor.Censor {
				c := tm.New(tm.Config{})
				c.Rules().AddAll(BlockedDomain)
				return c
			},
			Menu: scanMenu(),
		},
		{
			Name:  "in-airtel",
			Cite:  "arXiv:1808.01708",
			Probe: Probe{Kind: ProbeHTTP, Port: 80},
			Build: buildIN("airtel"),
			Menu:  scanMenu(),
		},
		{
			Name:  "in-jio",
			Cite:  "arXiv:1808.01708",
			Probe: Probe{Kind: ProbeTLS, Port: 443},
			Build: buildIN("jio"),
			Menu:  scanMenu(),
		},
		{
			Name:  "in-mtnl",
			Cite:  "arXiv:1808.01708",
			Probe: Probe{Kind: ProbeHTTP, Port: 80},
			Build: buildIN("mtnl"),
			Menu:  scanMenu(),
		},
	}
}

func buildIN(isp string) func(s *sim.Sim, applied []Countermeasure) censor.Censor {
	return func(s *sim.Sim, applied []Countermeasure) censor.Censor {
		p := in.ProfileFor(isp)
		p.Blocklist.Add(BlockedDomain)
		return in.New(in.Config{Profile: p, LocalDir: topo.CensorTestbedLocalDir})
	}
}

// FamilyByName returns the named lineage; the golden-trace replayer resolves
// trace headers through it.
func FamilyByName(name string) (Family, bool) {
	for _, f := range Families() {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// menuByName resolves posture names back to menu entries when replaying a
// trace. Unknown names mean a stale corpus file.
func menuByName(fam Family, names []string) ([]Countermeasure, bool) {
	var out []Countermeasure
	for _, n := range names {
		found := false
		for _, cm := range fam.Menu {
			if cm.Name == n {
				out = append(out, cm)
				found = true
				break
			}
		}
		if !found {
			return nil, false
		}
	}
	return out, true
}
