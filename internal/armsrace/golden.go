package armsrace

import (
	"fmt"
	"strconv"
	"strings"

	"tspusim/internal/evolve"
	"tspusim/internal/netem"
	"tspusim/internal/report"
)

// A golden trace is a pinned evasion replayed with a capture tapped on the
// censor link: a self-describing header (enough to re-run the trial from the
// file alone) followed by the packet log. The replay test re-executes each
// trace from its header and byte-compares the result, so the corpus stays
// honest against any model drift.

// TraceHeader is the replayable identity of a golden trace.
type TraceHeader struct {
	Family  string
	Round   int
	Posture []string // empty = baseline
	Genome  string   // canonical evolve.Genome string
}

// TraceName returns the corpus filename for a pin.
func TraceName(p Pin) string {
	name := fmt.Sprintf("%s__r%d__%s", p.Family, p.Round, slug(p.Genome.String()))
	if p.DefeatedRound != 0 {
		name += "__defeated"
	}
	return name + ".golden"
}

// slug maps a genome string to a filename-safe form: "segment(64)+srv-split"
// becomes "segment-64-srv-split".
func slug(s string) string {
	var b strings.Builder
	dash := false
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
			b.WriteRune(c)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// Trace replays one pinned trial with a censor-link capture and renders the
// golden file content. The header carries everything Replay needs; the body
// is the packet log, entry and delivery both, so middlebox rewrites (RST
// injection, fragment reassembly) are visible line by line.
func Trace(h TraceHeader) (string, error) {
	fam, ok := FamilyByName(h.Family)
	if !ok {
		return "", fmt.Errorf("armsrace: unknown family %q", h.Family)
	}
	applied, ok := menuByName(fam, h.Posture)
	if !ok {
		return "", fmt.Errorf("armsrace: family %q has no countermeasure among %v", h.Family, h.Posture)
	}
	g, err := evolve.Decode(h.Genome)
	if err != nil {
		return "", err
	}
	capt := netem.NewCapture("armsrace/" + h.Family)
	v := runTrial(fam, fam.Probe, applied, g, capt)

	var b strings.Builder
	b.WriteString("# arms-race golden trace (regenerate: go test -run TestArmsRaceLedgerGolden -update .)\n")
	fmt.Fprintf(&b, "censor: %s (%s)\n", fam.Name, fam.Cite)
	fmt.Fprintf(&b, "probe: %s port %d, domain %s\n", fam.Probe.Kind, fam.Probe.Port, BlockedDomain)
	fmt.Fprintf(&b, "round: %d\n", h.Round)
	fmt.Fprintf(&b, "posture: %s\n", postureLabel(h.Posture))
	fmt.Fprintf(&b, "strategy: %s\n", h.Genome)
	fmt.Fprintf(&b, "verdict: %s\n", v)
	b.WriteString("-- packet log (censor link) --\n")
	b.WriteString(capt.Dump())
	return b.String(), nil
}

// ParseTraceHeader recovers the replayable identity from golden file content.
func ParseTraceHeader(content string) (TraceHeader, error) {
	var h TraceHeader
	seen := map[string]bool{}
	for _, line := range strings.Split(content, "\n") {
		if line == "-- packet log (censor link) --" {
			break
		}
		key, val, ok := strings.Cut(line, ": ")
		if !ok {
			continue
		}
		seen[key] = true
		switch key {
		case "censor":
			h.Family, _, _ = strings.Cut(val, " (")
		case "round":
			n, err := strconv.Atoi(val)
			if err != nil {
				return h, fmt.Errorf("armsrace: bad round %q", val)
			}
			h.Round = n
		case "posture":
			if val != "baseline" {
				h.Posture = strings.Split(val, ",")
			}
		case "strategy":
			h.Genome = val
		}
	}
	for _, key := range []string{"censor", "round", "posture", "strategy"} {
		if !seen[key] {
			return h, fmt.Errorf("armsrace: trace header missing %q line", key)
		}
	}
	return h, nil
}

// Portability is the cross-censor transfer matrix: every distinct pinned
// strategy replayed against every family's *unmodified* censor. Families
// whose baseline never blocked the probed plane get an explicit control cell
// — the strategy is not run at all there, so a censor that never blocked the
// target can never be reported as "evaded".
type Portability struct {
	// Strategies are the rows: distinct (probe kind, genome) pairs.
	Strategies []PortRow
	// Families are the columns.
	Families []string
	// Cells is indexed [strategy][family].
	Cells [][]string
	// BaselineBlocked records, per family and probe plane, whether the
	// unmodified censor blocked the noop probe — the control guard the tests
	// assert against.
	BaselineBlocked map[string]map[ProbeKind]bool
}

// PortRow is one portability row.
type PortRow struct {
	Kind   ProbeKind
	Genome evolve.Genome
}

// Portability cell vocabulary.
const (
	cellEvades  = "evades"
	cellBlocked = "blocked"
	cellControl = "n/a (target not blocked)"
)

// probeFor maps a plane to its canonical probe.
func probeFor(kind ProbeKind) Probe {
	if kind == ProbeHTTP {
		return Probe{Kind: ProbeHTTP, Port: 80}
	}
	return Probe{Kind: ProbeTLS, Port: 443}
}

// RunPortability replays every distinct pinned strategy — on its own probe
// plane — against every family's unmodified censor.
func RunPortability(led *Ledger) *Portability {
	fams := led.Config.withDefaults().Families
	pm := &Portability{BaselineBlocked: make(map[string]map[ProbeKind]bool)}
	for _, fam := range fams {
		pm.Families = append(pm.Families, fam.Name)
		pm.BaselineBlocked[fam.Name] = map[ProbeKind]bool{}
		for _, kind := range []ProbeKind{ProbeTLS, ProbeHTTP} {
			blocked := !runTrial(fam, probeFor(kind), nil, evolve.Genome{}, nil).Evaded
			pm.BaselineBlocked[fam.Name][kind] = blocked
		}
	}

	seen := map[PortRow]bool{}
	for _, p := range led.AllPins() {
		fam, _ := FamilyByName(p.Family)
		row := PortRow{Kind: fam.Probe.Kind, Genome: p.Genome}
		if seen[row] {
			continue
		}
		seen[row] = true
		pm.Strategies = append(pm.Strategies, row)
	}

	for _, row := range pm.Strategies {
		cells := make([]string, 0, len(fams))
		for _, fam := range fams {
			switch {
			case !pm.BaselineBlocked[fam.Name][row.Kind]:
				// Control cell: never run the strategy against a censor that
				// does not block this plane's target, so it can never be
				// reported as "evaded" there.
				cells = append(cells, cellControl)
			case runTrial(fam, probeFor(row.Kind), nil, row.Genome, nil).Evaded:
				cells = append(cells, cellEvades)
			default:
				cells = append(cells, cellBlocked)
			}
		}
		pm.Cells = append(pm.Cells, cells)
	}
	return pm
}

// Cell returns the portability cell for (genome string, family), panicking
// on unknown labels — tests pass constants.
func (pm *Portability) Cell(genome, family string) string {
	si, fi := -1, -1
	for i, row := range pm.Strategies {
		if row.Genome.String() == genome {
			si = i
		}
	}
	for i, f := range pm.Families {
		if f == family {
			fi = i
		}
	}
	if si < 0 || fi < 0 {
		panic("armsrace: unknown portability cell " + genome + " × " + family)
	}
	return pm.Cells[si][fi]
}

// Render prints the transfer matrix.
func (pm *Portability) Render() string {
	headers := append([]string{"Strategy", "Plane"}, pm.Families...)
	t := report.NewTable("Strategy portability (pinned evasions vs. every unmodified censor)", headers...)
	for i, row := range pm.Strategies {
		cells := []any{row.Genome.String(), string(row.Kind)}
		for _, c := range pm.Cells[i] {
			cells = append(cells, c)
		}
		t.AddRow(cells...)
	}
	return t.String()
}
