package armsrace

import (
	"fmt"
	"strings"

	"tspusim/internal/evolve"
	"tspusim/internal/report"
	"tspusim/internal/sim"
)

// Config sizes the race. The defaults are the corpus configuration — the
// golden ledger and every trace under testdata/evasions/ are generated from
// DefaultConfig, so changing a default is changing the corpus.
type Config struct {
	// Rounds per family: search, counter-evolve, repeat.
	Rounds int
	// Population and Generations size each round's genetic search.
	Population  int
	Generations int
	// PinsPerRound caps how many new strategies a round may freeze.
	PinsPerRound int
	// Workers fans trial batches across the fleet pool; the outcome is
	// byte-identical at any value.
	Workers int
	// Families defaults to Families().
	Families []Family
}

// DefaultConfig returns the corpus configuration.
func DefaultConfig() Config {
	return Config{Rounds: 3, Population: 10, Generations: 4, PinsPerRound: 3, Workers: 1}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Rounds == 0 {
		c.Rounds = d.Rounds
	}
	if c.Population == 0 {
		c.Population = d.Population
	}
	if c.Generations == 0 {
		c.Generations = d.Generations
	}
	if c.PinsPerRound == 0 {
		c.PinsPerRound = d.PinsPerRound
	}
	if c.Workers == 0 {
		c.Workers = d.Workers
	}
	if c.Families == nil {
		c.Families = Families()
	}
	return c
}

// Pin is one frozen discovery: a shrunk, one-minimal genome that evaded its
// family under the posture of its round.
type Pin struct {
	Family string
	// Round the strategy was discovered in.
	Round int
	// Posture is the countermeasure set it evaded.
	Posture []string
	Genome  evolve.Genome
	Verdict Verdict
	// DefeatedRound is the round a later posture killed it, 0 if it survived
	// the whole race.
	DefeatedRound int
}

// Defeat records a pinned evasion dying to a counter-evolved posture — the
// arms-race outcome the ledger exists to witness.
type Defeat struct {
	Family         string
	Genome         evolve.Genome
	PinnedRound    int
	Round          int
	Countermeasure string
}

// RoundLog is one round's ledger entry.
type RoundLog struct {
	Round int
	// Posture entering the round.
	Posture []string
	// Candidates distinctly evaluated by the search.
	Candidates int
	// NewPins frozen this round (canonical genome strings).
	NewPins []string
	// Defeated prior pins (canonical genome strings).
	Defeated []string
	// Applied is the countermeasure chosen at round end ("" if none).
	Applied string
	Note    string
}

// FamilyLog is one lineage's full race.
type FamilyLog struct {
	Family string
	Probe  Probe
	// Baseline is the noop verdict under the unmodified censor.
	Baseline Verdict
	// NotApplicable: the family never blocked the probed target, so there is
	// nothing to evade (the portability matrix's control column).
	NotApplicable bool
	Rounds        []RoundLog
	Pins          []Pin
	Defeats       []Defeat
}

// Ledger is the race's complete deterministic record.
type Ledger struct {
	Config   Config
	Families []FamilyLog
}

// Run executes the full arms race: for every family, alternate a genetic
// evasion search with one counter-evolution step from the family's menu,
// replaying all prior pins under each new posture. Everything downstream of
// CorpusSeed is deterministic; Workers only changes wall time.
func Run(cfg Config) *Ledger {
	cfg = cfg.withDefaults()
	led := &Ledger{Config: cfg}
	for _, fam := range cfg.Families {
		led.Families = append(led.Families, runFamily(cfg, fam))
	}
	return led
}

func runFamily(cfg Config, fam Family) FamilyLog {
	fl := FamilyLog{Family: fam.Name, Probe: fam.Probe}

	// Control: if the unmodified censor never blocks the probed target,
	// "evasions" against it would be meaningless and the family sits out.
	fl.Baseline = runTrial(fam, fam.Probe, nil, evolve.Genome{}, nil)
	if fl.Baseline.Evaded {
		fl.NotApplicable = true
		return fl
	}

	var applied []Countermeasure
	pinnedSigs := make(map[uint8]bool)
	menuUsed := make(map[string]bool)
	for round := 1; round <= cfg.Rounds; round++ {
		rl := RoundLog{Round: round, Posture: postureNames(applied)}
		label := fmt.Sprintf("armsrace/%s/r%d", fam.Name, round)
		ec := newEvalCtx(fam, applied, cfg.Workers, label)

		// Replay every still-standing pin under the current posture; the ones
		// that stopped evading are this round's defeats, attributed to the
		// countermeasure applied at the end of the previous round.
		var survivors []evolve.Genome
		for i := range fl.Pins {
			p := &fl.Pins[i]
			if p.DefeatedRound != 0 {
				continue
			}
			if ec.verdict(p.Genome).Evaded {
				survivors = append(survivors, p.Genome)
				continue
			}
			p.DefeatedRound = round
			fl.Defeats = append(fl.Defeats, Defeat{
				Family:         fam.Name,
				Genome:         p.Genome,
				PinnedRound:    p.Round,
				Round:          round,
				Countermeasure: applied[len(applied)-1].Name,
			})
			rl.Defeated = append(rl.Defeated, p.Genome.String())
		}

		// Search under the current posture. The search rand derives from the
		// corpus seed and the round label, never from results, so the drawn
		// genomes are a pure function of (family, round).
		r := sim.NewRand(sim.StreamSeed(CorpusSeed, label+"/search"))
		found := evolve.SearchBatch(r, evolve.SearchOptions{
			Population:  cfg.Population,
			Generations: cfg.Generations,
		}, ec.batch)
		rl.Candidates = len(found)

		// Shrink winners to one-minimal form and freeze new mechanisms. Pins
		// dedup by gene signature: segment(64) after segment(112) is the same
		// discovery with a different parameter.
		for _, d := range found {
			if d.Fitness < 1 {
				break // sorted by fitness descending
			}
			g := evolve.Shrink(d.Genome, func(c evolve.Genome) bool { return ec.verdict(c).Evaded })
			if pinnedSigs[g.Signature()] || len(rl.NewPins) >= cfg.PinsPerRound {
				continue
			}
			pinnedSigs[g.Signature()] = true
			fl.Pins = append(fl.Pins, Pin{
				Family:  fam.Name,
				Round:   round,
				Posture: rl.Posture,
				Genome:  g,
				Verdict: ec.verdict(g),
			})
			survivors = append(survivors, g)
			rl.NewPins = append(rl.NewPins, g.String())
		}

		if len(survivors) == 0 {
			rl.Note = "censor holds: no evasion survives this posture"
			fl.Rounds = append(fl.Rounds, rl)
			break
		}

		// Counter-evolve: the first unapplied menu entry that targets any
		// surviving mechanism. No move after the final round — the last
		// search's winners must stay reproducible as pinned.
		if round < cfg.Rounds {
			for _, cm := range fam.Menu {
				if menuUsed[cm.Name] {
					continue
				}
				for _, g := range survivors {
					if cm.Defeats(g) {
						menuUsed[cm.Name] = true
						applied = append(applied, cm)
						rl.Applied = cm.Name
						break
					}
				}
				if rl.Applied != "" {
					break
				}
			}
			if rl.Applied == "" {
				rl.Note = "menu exhausted: no countermeasure targets the survivors"
				fl.Rounds = append(fl.Rounds, rl)
				break
			}
		}
		fl.Rounds = append(fl.Rounds, rl)
	}
	return fl
}

func postureNames(applied []Countermeasure) []string {
	var out []string
	for _, cm := range applied {
		out = append(out, cm.Name)
	}
	return out
}

// postureLabel renders a posture for ledgers and trace headers.
func postureLabel(names []string) string {
	if len(names) == 0 {
		return "baseline"
	}
	return strings.Join(names, ",")
}

// SurvivingPins returns every pin never defeated, in discovery order.
func (l *Ledger) SurvivingPins() []Pin {
	var out []Pin
	for _, fl := range l.Families {
		for _, p := range fl.Pins {
			if p.DefeatedRound == 0 {
				out = append(out, p)
			}
		}
	}
	return out
}

// AllPins returns every pin, defeated or not, in discovery order.
func (l *Ledger) AllPins() []Pin {
	var out []Pin
	for _, fl := range l.Families {
		out = append(out, fl.Pins...)
	}
	return out
}

// Render prints the race ledger: one round table per family, then the pin
// and defeat registers.
func (l *Ledger) Render() string {
	var b strings.Builder
	b.WriteString("== Arms race: evasion search vs. counter-evolving censors ==\n")
	fmt.Fprintf(&b, "stimulus: %s; search %d rounds x pop %d x gen %d per family; corpus seed %#x\n\n",
		BlockedDomain, l.Config.Rounds, l.Config.Population, l.Config.Generations, CorpusSeed)

	rounds := report.NewTable("Rounds (posture entering the round; pins frozen post-shrink)",
		"Censor", "Round", "Posture", "Cands", "New pins", "Defeated", "Counter-move")
	for _, fl := range l.Families {
		if fl.NotApplicable {
			rounds.AddRow(fl.Family, "-", "-", "-",
				fmt.Sprintf("n/a: %s target not blocked", fl.Probe.Kind), "-", "-")
			continue
		}
		for _, rl := range fl.Rounds {
			move := rl.Applied
			if move == "" {
				move = rl.Note
			}
			rounds.AddRow(fl.Family, rl.Round, postureLabel(rl.Posture), rl.Candidates,
				orDash(strings.Join(rl.NewPins, " ")),
				orDash(strings.Join(rl.Defeated, " ")), move)
		}
	}
	b.WriteString(rounds.String())

	pins := report.NewTable("Pinned evasions (one-minimal; frozen as golden traces under testdata/evasions/)",
		"Censor", "Strategy", "Found r", "Posture", "Fate")
	for _, p := range l.AllPins() {
		fate := "survives the race"
		if p.DefeatedRound != 0 {
			fate = fmt.Sprintf("defeated in round %d", p.DefeatedRound)
		}
		pins.AddRow(p.Family, p.Genome.String(), p.Round, postureLabel(p.Posture), fate)
	}
	b.WriteString(pins.String())

	var defeats int
	for _, fl := range l.Families {
		defeats += len(fl.Defeats)
	}
	fmt.Fprintf(&b, "pins: %d, defeats: %d, surviving: %d\n",
		len(l.AllPins()), defeats, len(l.SurvivingPins()))
	return b.String()
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
