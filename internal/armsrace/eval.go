package armsrace

import (
	"bytes"
	"fmt"

	"tspusim/internal/censor"
	"tspusim/internal/circumvent"
	"tspusim/internal/evolve"
	"tspusim/internal/fleet"
	"tspusim/internal/hostnet"
	"tspusim/internal/httpx"
	"tspusim/internal/netem"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/topo"
)

// Verdict is one trial's observable outcome, the unit both the search
// fitness and the golden traces are built from.
type Verdict struct {
	// Evaded is the headline: trigger delivered, reply received clean, and
	// every follow-up arrived.
	Evaded bool
	// ServerSawTrigger: the blocked name reached the origin.
	ServerSawTrigger bool
	// ClientGotReply: the origin's reply reached the client.
	ClientGotReply bool
	// ResetSeen: the client's connection was torn down.
	ResetSeen bool
	// FollowUps that arrived at the origin, out of followUpCount — sustained
	// usability, so a few-packet grace period does not count as evasion.
	FollowUps int
}

// followUpCount is the sustained-usability probe depth. Four is enough to
// cross every modeled grace period while keeping ~800 trials per run cheap.
const followUpCount = 4

// originMarker is the origin's reply to a delivered trigger; seeing it at
// the client is the ClientGotReply signal.
const originMarker = "ORIGIN-REPLY-OK"

// String renders the canonical verdict cell used in ledgers and traces.
func (v Verdict) String() string {
	if v.Evaded {
		return fmt.Sprintf("evades (trigger delivered, reply clean, %d/%d follow-ups)", v.FollowUps, followUpCount)
	}
	switch {
	case v.ResetSeen && !v.ServerSawTrigger:
		return "blocked (trigger killed, connection reset)"
	case v.ResetSeen:
		return "blocked (trigger delivered but connection reset)"
	case !v.ServerSawTrigger:
		return "blocked (trigger silently dropped)"
	case !v.ClientGotReply:
		return "blocked (reply lost or rewritten)"
	default:
		return fmt.Sprintf("blocked (only %d/%d follow-ups survived)", v.FollowUps, followUpCount)
	}
}

// encodeVerdict/parseVerdict carry a Verdict through a fleet job's string
// output, the only channel worker goroutines report through.
func encodeVerdict(v Verdict) string {
	return fmt.Sprintf("evaded=%t server=%t reply=%t rst=%t followups=%d",
		v.Evaded, v.ServerSawTrigger, v.ClientGotReply, v.ResetSeen, v.FollowUps)
}

func parseVerdict(s string) (Verdict, error) {
	var v Verdict
	_, err := fmt.Sscanf(s, "evaded=%t server=%t reply=%t rst=%t followups=%d",
		&v.Evaded, &v.ServerSawTrigger, &v.ClientGotReply, &v.ResetSeen, &v.FollowUps)
	return v, err
}

// runTrial evaluates one genome against one family under one posture on a
// fresh testbed — the arms race's analogue of circumvent.Evaluate, pointed at
// an arbitrary censor.Censor instead of the Lab's TSPU fleet. The probe is
// explicit because the portability matrix replays a strategy on its *own*
// plane against every family, not on the column family's plane. A non-nil
// capt taps the censor link for golden traces.
func runTrial(fam Family, probe Probe, applied []Countermeasure, g evolve.Genome, capt *netem.Capture) Verdict {
	var pre []func(s *sim.Sim) netem.Middlebox
	for _, cm := range applied {
		if cm.Watcher != nil {
			mk := cm.Watcher
			pre = append(pre, func(s *sim.Sim) netem.Middlebox { return mk() })
		}
	}
	t := topo.BuildCensorTestbedBare(func(s *sim.Sim) censor.Censor {
		return fam.Build(s, applied)
	}, pre...)
	if capt != nil {
		t.Link.Tap(capt)
	}

	strat := g.Strategy()
	var v Verdict

	// The origin accumulates bytes and replies once the blocked name has
	// arrived — however it was split on the wire, the host stack reassembles.
	var serverBuf []byte
	opts := hostnet.ListenOptions{}
	opts.OnData = func(c *hostnet.TCPConn, d []byte) {
		if v.ServerSawTrigger {
			return
		}
		serverBuf = append(serverBuf, d...)
		if bytes.Contains(serverBuf, []byte(BlockedDomain)) {
			v.ServerSawTrigger = true
			c.Send([]byte(originMarker))
		}
	}
	if strat.Listen != nil {
		strat.Listen(&opts)
	}
	listener := t.Server.Listen(probe.Port, opts)

	dialOpts := hostnet.DialOptions{}
	if strat.Dial != nil {
		strat.Dial(&dialOpts)
	}

	// The trigger payload matches the probe plane. ClientHello-shaping genes
	// apply only on TLS; on HTTP they are inert by construction, so an HTTP
	// family can never be "evaded" by a padding extension it would never see.
	var payload []byte
	if probe.Kind == ProbeHTTP {
		payload = httpx.FormatRequest("GET", BlockedDomain, "/")
	} else {
		payload = circumvent.RealisticCH(BlockedDomain)
		if strat.BuildCH != nil {
			payload = strat.BuildCH(BlockedDomain)
		}
	}

	conn := t.Client.Dial(t.ServerAddr(), probe.Port, dialOpts)
	conn.OnEstablished = func() {
		if strat.SendCH != nil {
			strat.SendCH(nil, conn, payload)
		} else {
			conn.Send(payload)
		}
	}
	t.Sim.Run()

	if conn.State == hostnet.StateEstablished {
		for i := 0; i < followUpCount; i++ {
			conn.SendRaw(packet.FlagsPSHACK, []byte("GET /follow-up"))
			t.Sim.Run()
		}
	}
	for _, sc := range listener.Conns {
		if sc.RemotePort == conn.LocalPort {
			v.FollowUps = bytes.Count(sc.Received, []byte("GET /follow-up"))
		}
	}
	v.ClientGotReply = bytes.Contains(conn.Received, []byte(originMarker))
	v.ResetSeen = conn.ResetSeen
	v.Evaded = v.ServerSawTrigger && v.ClientGotReply && !v.ResetSeen && v.FollowUps == followUpCount
	conn.Close()
	t.Sim.Run()
	return v
}

// evalCtx evaluates genomes for one (family, posture, round), fanning each
// generation out across fleet workers. Trials are pure functions of
// (family, posture, genome) — every one builds a fresh testbed — so results
// only need to land in plan order for the whole race to be byte-identical at
// any worker count.
type evalCtx struct {
	fam     Family
	applied []Countermeasure
	workers int
	label   string
	cache   map[evolve.Genome]Verdict
}

func newEvalCtx(fam Family, applied []Countermeasure, workers int, label string) *evalCtx {
	return &evalCtx{fam: fam, applied: applied, workers: workers, label: label,
		cache: make(map[evolve.Genome]Verdict)}
}

// evalAll runs every uncached, non-noop genome as one fleet batch.
//
//tspuvet:impure the fleet runner reads wall time for worker metrics; verdict bytes are seed-pure
func (ec *evalCtx) evalAll(gs []evolve.Genome) {
	var uniq []evolve.Genome
	batched := make(map[evolve.Genome]bool)
	for _, g := range gs {
		if g.IsNoop() || batched[g] {
			continue
		}
		if _, done := ec.cache[g]; done {
			continue
		}
		batched[g] = true
		uniq = append(uniq, g)
	}
	if len(uniq) == 0 {
		return
	}
	jobs := fleet.Plan(CorpusSeed, []string{ec.label}, 1, len(uniq))
	rep := fleet.NewRunner(fleet.Config{Workers: ec.workers}).Run(jobs, func(job fleet.Job) (string, []fleet.Stat, error) {
		return encodeVerdict(runTrial(ec.fam, ec.fam.Probe, ec.applied, uniq[job.Shard], nil)), nil, nil
	})
	for i, res := range rep.Results {
		if res.Err != nil {
			panic(fmt.Sprintf("armsrace: trial %s genome %q: %v", ec.label, uniq[i], res.Err))
		}
		v, err := parseVerdict(res.Output)
		if err != nil {
			panic(fmt.Sprintf("armsrace: trial %s genome %q: bad verdict %q: %v", ec.label, uniq[i], res.Output, err))
		}
		ec.cache[uniq[i]] = v
	}
}

// verdict returns one genome's verdict, evaluating on miss.
func (ec *evalCtx) verdict(g evolve.Genome) Verdict {
	if g.IsNoop() {
		return Verdict{} // the noop baseline is evaluated explicitly, never here
	}
	ec.evalAll([]evolve.Genome{g})
	return ec.cache[g]
}

// batch is the evolve.BatchFitness adapter: 1 if the genome evades this
// family under this posture, else 0.
func (ec *evalCtx) batch(gs []evolve.Genome) []int {
	ec.evalAll(gs)
	fits := make([]int, len(gs))
	for i, g := range gs {
		if !g.IsNoop() && ec.cache[g].Evaded {
			fits[i] = 1
		}
	}
	return fits
}
