// Package netem is a deterministic packet-level network emulator: hosts and
// routers connected by links, longest-prefix-match routing (which makes the
// asymmetric Russian routes of §7.1.1 directly expressible), TTL decrement
// with ICMP Time Exceeded generation (enabling traceroute and TTL-limited
// trigger probes), in-path middlebox chains on links, and packet capture.
//
// Middleboxes follow the XDP verdict model: for every packet crossing their
// link they return Pass or Drop, and may inject packets of their own. The
// TSPU device (internal/tspu), the ISP DPIs, and the comparator fragment
// middleboxes all attach through this one interface.
package netem

import (
	"fmt"
	"net/netip"
	"time"

	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

// MustPrefix parses a CIDR prefix, panicking on error. For topology literals
// and tests.
func MustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// Network owns the nodes and links of one emulated internet.
type Network struct {
	Sim   *sim.Sim
	nodes map[string]*Node
	links []*Link
	// freeDeliveries recycles pending-delivery records (struct + bound
	// closure); every in-flight hop otherwise allocates a fresh closure, the
	// single largest allocation site in whole-lab profiles. The network is
	// single-goroutine (one Sim), so a plain slice is safe.
	freeDeliveries []*delivery
}

// delivery is one scheduled far-end delivery. run is the closure handed to
// Sim.After, bound once when the record is first allocated and reused for
// every subsequent hop the record serves.
type delivery struct {
	net  *Network
	link *Link
	pkt  *packet.Packet
	dir  Direction
	dst  *Iface
	run  func()
}

func (n *Network) newDelivery() *delivery {
	if k := len(n.freeDeliveries); k > 0 {
		d := n.freeDeliveries[k-1]
		n.freeDeliveries = n.freeDeliveries[:k-1]
		return d
	}
	d := &delivery{net: n}
	d.run = d.fire
	return d
}

// fire delivers the packet and returns the record to the pool. The fields
// are copied out and cleared before delivery runs, because delivery can
// re-enter transmit and hand the same record to the next hop.
func (d *delivery) fire() {
	l, pkt, dir, dst := d.link, d.pkt, d.dir, d.dst
	d.link, d.pkt, d.dst = nil, nil, nil
	d.net.freeDeliveries = append(d.net.freeDeliveries, d)
	for _, t := range l.taps {
		t.record(l, pkt, dir, false)
	}
	dst.node.deliver(dst, pkt)
}

// New creates an empty network driven by s.
func New(s *sim.Sim) *Network {
	return &Network{Sim: s, nodes: make(map[string]*Node)}
}

// Node returns the named node, or nil.
func (n *Network) Node(name string) *Node { return n.nodes[name] }

// Nodes returns all nodes (map iteration order is not deterministic; callers
// that need determinism should track their own lists).
func (n *Network) Links() []*Link { return n.links }

// AddHost adds an end host. Hosts deliver packets addressed to them to their
// handler and refuse to forward anything else.
func (n *Network) AddHost(name string) *Node {
	return n.addNode(name, false)
}

// AddRouter adds a router, which forwards packets per its routing table,
// decrements TTL, and emits ICMP Time Exceeded when TTL reaches zero.
func (n *Network) AddRouter(name string) *Node {
	return n.addNode(name, true)
}

func (n *Network) addNode(name string, router bool) *Node {
	if _, dup := n.nodes[name]; dup {
		panic("netem: duplicate node name " + name)
	}
	node := &Node{net: n, name: name, router: router}
	n.nodes[name] = node
	return node
}

// Handler consumes packets locally delivered to a host.
type Handler func(pkt *packet.Packet)

// Node is a host or router.
type Node struct {
	net        *Network
	name       string
	router     bool
	ifaces     []*Iface
	routes     []route
	hostRoutes map[netip.Addr]*Iface
	handler    Handler
	// promiscuous hosts accept packets for any destination address — used
	// for "web farm" hosts that stand in for an entire prefix of servers.
	promiscuous bool
	// DropLocal counts locally-addressed packets discarded because the host
	// had no handler; useful in tests.
	DropLocal int
}

type route struct {
	prefix netip.Prefix
	out    *Iface
}

// hostRoutes indexes /32 routes for O(1) lookup; routers fronting many
// hosts (endpoint access routers, scan populations) would otherwise pay a
// linear scan per packet.

// Name returns the node name.
func (nd *Node) Name() string { return nd.name }

// IsRouter reports whether the node forwards packets.
func (nd *Node) IsRouter() bool { return nd.router }

// Ifaces returns the node's interfaces in creation order.
func (nd *Node) Ifaces() []*Iface { return nd.ifaces }

// SetHandler installs the local delivery handler (hosts and router control
// planes).
func (nd *Node) SetHandler(h Handler) { nd.handler = h }

// SetPromiscuous makes a host accept packets addressed to any destination,
// standing in for every server in the prefix routed to it.
func (nd *Node) SetPromiscuous(on bool) { nd.promiscuous = on }

// AddIface creates an interface with the given address.
func (nd *Node) AddIface(addr netip.Addr) *Iface {
	ifc := &Iface{node: nd, addr: addr, index: len(nd.ifaces)}
	nd.ifaces = append(nd.ifaces, ifc)
	return ifc
}

// Addr returns the address of the node's first interface. Panics if the node
// has no interfaces.
func (nd *Node) Addr() netip.Addr {
	if len(nd.ifaces) == 0 {
		panic("netem: node " + nd.name + " has no interfaces")
	}
	return nd.ifaces[0].addr
}

// HasAddr reports whether a packet addressed to a is local to this node.
func (nd *Node) HasAddr(a netip.Addr) bool {
	for _, ifc := range nd.ifaces {
		if ifc.addr == a {
			return true
		}
	}
	return false
}

// AddRoute installs a prefix route out the given interface. Longest prefix
// wins; ties go to the most recently added route.
func (nd *Node) AddRoute(prefix netip.Prefix, out *Iface) {
	if out.node != nd {
		panic("netem: route out of foreign interface")
	}
	if prefix.Bits() == 32 {
		if nd.hostRoutes == nil {
			nd.hostRoutes = make(map[netip.Addr]*Iface)
		}
		nd.hostRoutes[prefix.Addr()] = out
		return
	}
	nd.routes = append(nd.routes, route{prefix, out})
}

// AddDefaultRoute installs 0.0.0.0/0 out the given interface.
func (nd *Node) AddDefaultRoute(out *Iface) {
	nd.AddRoute(netip.PrefixFrom(netip.AddrFrom4([4]byte{}), 0), out)
}

// Lookup returns the output interface for dst, or nil if unroutable.
func (nd *Node) Lookup(dst netip.Addr) *Iface {
	if out, ok := nd.hostRoutes[dst]; ok {
		return out
	}
	var best *Iface
	bestLen := -1
	for _, r := range nd.routes {
		if r.prefix.Contains(dst) && r.prefix.Bits() >= bestLen {
			best, bestLen = r.out, r.prefix.Bits()
		}
	}
	return best
}

// Send originates a packet from this node: it is routed out the node's
// table without TTL decrement (the IP stack of the sender sets TTL).
func (nd *Node) Send(pkt *packet.Packet) {
	out := nd.Lookup(pkt.IP.Dst)
	if out == nil || out.link == nil {
		return // unroutable: silently dropped, like a missing default route
	}
	out.link.transmit(out, pkt.Clone())
}

// deliver handles a packet arriving at the node.
func (nd *Node) deliver(in *Iface, pkt *packet.Packet) {
	if nd.HasAddr(pkt.IP.Dst) || (nd.promiscuous && !nd.router) {
		if nd.handler != nil {
			nd.handler(pkt)
		} else {
			nd.DropLocal++
		}
		return
	}
	if !nd.router {
		return // hosts do not forward
	}
	if pkt.IP.TTL <= 1 {
		nd.sendTimeExceeded(in, pkt)
		return
	}
	out := nd.Lookup(pkt.IP.Dst)
	if out == nil || out.link == nil {
		return
	}
	// Forward in place, per the Middlebox retention contract (link.go):
	// nothing upstream holds the pointer, and cloning per hop dominated
	// whole-lab allocation profiles.
	pkt.IP.TTL--
	out.link.transmit(out, pkt)
}

// sendTimeExceeded emits ICMP Time Exceeded to the packet source, embedding
// the offending IP header + 8 bytes as real routers do, so traceroute can
// correlate probes.
func (nd *Node) sendTimeExceeded(in *Iface, orig *packet.Packet) {
	if orig.IP.Protocol == packet.ProtoICMP && orig.ICMP != nil &&
		(orig.ICMP.Type == packet.ICMPTimeExceed || orig.ICMP.Type == packet.ICMPUnreachable) {
		return // never ICMP about ICMP errors
	}
	embed, err := orig.Marshal()
	if err != nil {
		return
	}
	if len(embed) > 28 {
		embed = embed[:28]
	}
	reply := &packet.Packet{
		IP: packet.IPv4{
			TTL:      64,
			Protocol: packet.ProtoICMP,
			Src:      in.addr,
			Dst:      orig.IP.Src,
		},
		ICMP: &packet.ICMP{Type: packet.ICMPTimeExceed, Payload: embed},
	}
	nd.Send(reply)
}

// Iface is a network interface: one address, at most one link.
type Iface struct {
	node  *Node
	addr  netip.Addr
	link  *Link
	index int
}

// Addr returns the interface address.
func (i *Iface) Addr() netip.Addr { return i.addr }

// Node returns the owning node.
func (i *Iface) Node() *Node { return i.node }

// Link returns the attached link, or nil.
func (i *Iface) Link() *Link { return i.link }

func (i *Iface) String() string {
	return fmt.Sprintf("%s[%d]=%s", i.node.name, i.index, i.addr)
}

// Connect joins two interfaces with a link of the given one-way delay.
func (n *Network) Connect(a, b *Iface, delay time.Duration) *Link {
	if a.link != nil || b.link != nil {
		panic("netem: interface already linked")
	}
	l := &Link{net: n, a: a, b: b, delay: delay}
	a.link = l
	b.link = l
	n.links = append(n.links, l)
	return l
}
