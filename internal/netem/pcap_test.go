package netem

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"tspusim/internal/packet"
)

func TestWritePCAP(t *testing.T) {
	s, n, client, _, _, server := lineTopology(t)
	_ = n
	cap := NewCapture("test")
	// Tap the middle link.
	var mid *Link
	for _, l := range n.Links() {
		mid = l
	}
	mid.Tap(cap)
	server.SetHandler(func(p *packet.Packet) {})
	client.Send(packet.NewTCP(client.Addr(), server.Addr(), 40000, 443, packet.FlagSYN, 1, 0, []byte("x")))
	s.Run()

	var buf bytes.Buffer
	if err := cap.WritePCAP(&buf, false); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) < 24+16+20 {
		t.Fatalf("pcap too short: %d bytes", len(b))
	}
	if binary.LittleEndian.Uint32(b[0:4]) != 0xa1b2c3d4 {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(b[20:24]) != 101 {
		t.Fatal("bad linktype")
	}
	// Walk every record and re-parse the embedded IP packet.
	off := 24
	records := 0
	for off < len(b) {
		if off+16 > len(b) {
			t.Fatal("truncated record header")
		}
		caplen := int(binary.LittleEndian.Uint32(b[off+8 : off+12]))
		pktBytes := b[off+16 : off+16+caplen]
		if _, err := packet.Parse(pktBytes); err != nil {
			t.Fatalf("record %d unparseable: %v", records, err)
		}
		off += 16 + caplen
		records++
	}
	if records == 0 {
		t.Fatal("no records written")
	}
}

func TestWritePCAPIncludesEntries(t *testing.T) {
	s, n, client, _, _, server := lineTopology(t)
	cap := NewCapture("both")
	n.Links()[1].Tap(cap)
	server.SetHandler(func(p *packet.Packet) {})
	client.Send(packet.NewTCP(client.Addr(), server.Addr(), 1, 443, packet.FlagSYN, 0, 0, nil))
	s.Run()

	count := func(includeEntries bool) int {
		var buf bytes.Buffer
		if err := cap.WritePCAP(&buf, includeEntries); err != nil {
			t.Fatal(err)
		}
		b := buf.Bytes()
		off, n := 24, 0
		for off < len(b) {
			caplen := int(binary.LittleEndian.Uint32(b[off+8 : off+12]))
			off += 16 + caplen
			n++
		}
		return n
	}
	if count(true) != 2*count(false) {
		t.Fatalf("entries not doubled: %d vs %d", count(true), count(false))
	}
}

func TestWritePCAPTimestamps(t *testing.T) {
	s, n, client, _, _, server := lineTopology(t)
	cap := NewCapture("ts")
	n.Links()[1].Tap(cap)
	server.SetHandler(func(p *packet.Packet) {})
	s.After(3*time.Second+500*time.Millisecond, func() {
		client.Send(packet.NewTCP(client.Addr(), server.Addr(), 1, 443, packet.FlagSYN, 0, 0, nil))
	})
	s.Run()
	var buf bytes.Buffer
	if err := cap.WritePCAP(&buf, false); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	sec := binary.LittleEndian.Uint32(b[24:28])
	if sec != 3 {
		t.Fatalf("timestamp sec = %d, want 3", sec)
	}
}
