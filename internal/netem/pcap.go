package netem

import (
	"encoding/binary"
	"fmt"
	"io"
)

// WritePCAP serializes the capture to the classic libpcap format with
// LINKTYPE_RAW (IPv4 packets, no link-layer header), so traces taken inside
// the simulator open directly in Wireshark/tcpdump. Virtual timestamps are
// written as seconds/microseconds since the epoch of the simulation.
//
// Only delivery records are written by default — the wire truth after
// middlebox processing, which is what a tap at the far end would capture.
// Set includeEntries to also write pre-middlebox copies (both sides of a
// rewrite appear, like capturing on both device ports).
func (c *Capture) WritePCAP(w io.Writer, includeEntries bool) error {
	const (
		magic       = 0xa1b2c3d4
		verMajor    = 2
		verMinor    = 4
		snaplen     = 65535
		linktypeRaw = 101 // LINKTYPE_RAW: raw IP
	)
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magic)
	binary.LittleEndian.PutUint16(hdr[4:6], verMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], verMinor)
	binary.LittleEndian.PutUint32(hdr[16:20], snaplen)
	binary.LittleEndian.PutUint32(hdr[20:24], linktypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for i, r := range c.Records {
		if r.Entry && !includeEntries {
			continue
		}
		wire, err := r.Pkt.Marshal()
		if err != nil {
			return fmt.Errorf("netem: record %d: %w", i, err)
		}
		var rec [16]byte
		sec := uint32(r.Time.Seconds())
		usec := uint32(r.Time.Microseconds() % 1_000_000)
		binary.LittleEndian.PutUint32(rec[0:4], sec)
		binary.LittleEndian.PutUint32(rec[4:8], usec)
		binary.LittleEndian.PutUint32(rec[8:12], uint32(len(wire)))
		binary.LittleEndian.PutUint32(rec[12:16], uint32(len(wire)))
		if _, err := w.Write(rec[:]); err != nil {
			return err
		}
		if _, err := w.Write(wire); err != nil {
			return err
		}
	}
	return nil
}
