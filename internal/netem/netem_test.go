package netem

import (
	"net/netip"
	"testing"
	"time"

	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// lineTopology builds client -- r1 -- r2 -- server and returns the pieces.
func lineTopology(t *testing.T) (*sim.Sim, *Network, *Node, *Node, *Node, *Node) {
	t.Helper()
	s := sim.New()
	n := New(s)
	client := n.AddHost("client")
	r1 := n.AddRouter("r1")
	r2 := n.AddRouter("r2")
	server := n.AddHost("server")

	ci := client.AddIface(packet.MustAddr("10.0.0.2"))
	r1c := r1.AddIface(packet.MustAddr("10.0.0.1"))
	r1r := r1.AddIface(packet.MustAddr("10.1.0.1"))
	r2l := r2.AddIface(packet.MustAddr("10.1.0.2"))
	r2s := r2.AddIface(packet.MustAddr("203.0.113.1"))
	si := server.AddIface(packet.MustAddr("203.0.113.10"))

	n.Connect(ci, r1c, time.Millisecond)
	n.Connect(r1r, r2l, time.Millisecond)
	n.Connect(r2s, si, time.Millisecond)

	client.AddDefaultRoute(ci)
	r1.AddRoute(pfx("10.0.0.0/24"), r1c)
	r1.AddDefaultRoute(r1r)
	r2.AddRoute(pfx("203.0.113.0/24"), r2s)
	r2.AddDefaultRoute(r2l)
	server.AddDefaultRoute(si)
	return s, n, client, r1, r2, server
}

func TestEndToEndDelivery(t *testing.T) {
	s, _, client, _, _, server := lineTopology(t)
	var got *packet.Packet
	server.SetHandler(func(p *packet.Packet) { got = p })
	pkt := packet.NewTCP(client.Addr(), server.Addr(), 40000, 443, packet.FlagSYN, 1, 0, nil)
	client.Send(pkt)
	s.Run()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if got.IP.TTL != 62 {
		t.Fatalf("TTL = %d, want 62 after two router hops", got.IP.TTL)
	}
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("delivery time %v, want 3ms", s.Now())
	}
}

func TestSenderPacketNotAliased(t *testing.T) {
	s, _, client, _, _, server := lineTopology(t)
	var got *packet.Packet
	server.SetHandler(func(p *packet.Packet) { got = p })
	pkt := packet.NewTCP(client.Addr(), server.Addr(), 1, 2, packet.FlagSYN, 0, 0, []byte{1})
	client.Send(pkt)
	pkt.TCP.Payload[0] = 99 // mutate after send
	s.Run()
	if got.TCP.Payload[0] != 1 {
		t.Fatal("network aliased sender's buffer")
	}
}

func TestTTLExceededGeneratesICMP(t *testing.T) {
	s, _, client, _, _, server := lineTopology(t)
	var icmp *packet.Packet
	client.SetHandler(func(p *packet.Packet) {
		if p.ICMP != nil && p.ICMP.Type == packet.ICMPTimeExceed {
			icmp = p
		}
	})
	pkt := packet.NewTCP(client.Addr(), server.Addr(), 40000, 443, packet.FlagSYN, 1, 0, nil)
	pkt.IP.TTL = 1
	client.Send(pkt)
	s.Run()
	if icmp == nil {
		t.Fatal("no ICMP Time Exceeded")
	}
	if icmp.IP.Src != packet.MustAddr("10.0.0.1") {
		t.Fatalf("ICMP from %v, want first router", icmp.IP.Src)
	}
	// Embedded bytes must parse back to the offending header.
	if len(icmp.ICMP.Payload) < 20 {
		t.Fatal("ICMP payload missing embedded header")
	}
}

func TestTracerouteLadder(t *testing.T) {
	s, _, client, _, _, server := lineTopology(t)
	hops := map[uint8]netip.Addr{}
	var reached bool
	client.SetHandler(func(p *packet.Packet) {
		if p.ICMP != nil && p.ICMP.Type == packet.ICMPTimeExceed {
			// Recover probe TTL from embedded header's ID field.
			if len(p.ICMP.Payload) >= 6 {
				id := uint16(p.ICMP.Payload[4])<<8 | uint16(p.ICMP.Payload[5])
				hops[uint8(id)] = p.IP.Src
			}
		}
	})
	server.SetHandler(func(p *packet.Packet) { reached = true })
	for ttl := uint8(1); ttl <= 4; ttl++ {
		pkt := packet.NewTCP(client.Addr(), server.Addr(), 40000, 443, packet.FlagSYN, 1, 0, nil)
		pkt.IP.TTL = ttl
		pkt.IP.ID = uint16(ttl)
		client.Send(pkt)
	}
	s.Run()
	if hops[1] != packet.MustAddr("10.0.0.1") || hops[2] != packet.MustAddr("10.1.0.2") {
		t.Fatalf("traceroute hops wrong: %v", hops)
	}
	if !reached {
		t.Fatal("full-TTL probe did not reach server")
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	s := sim.New()
	n := New(s)
	r := n.AddRouter("r")
	a := r.AddIface(packet.MustAddr("10.0.0.1"))
	b := r.AddIface(packet.MustAddr("10.0.1.1"))
	r.AddDefaultRoute(a)
	r.AddRoute(pfx("192.168.0.0/16"), a)
	r.AddRoute(pfx("192.168.5.0/24"), b)
	if r.Lookup(packet.MustAddr("192.168.5.7")) != b {
		t.Fatal("longest prefix not preferred")
	}
	if r.Lookup(packet.MustAddr("192.168.9.7")) != a {
		t.Fatal("/16 not matched")
	}
	if r.Lookup(packet.MustAddr("8.8.8.8")) != a {
		t.Fatal("default not matched")
	}
}

func TestHostsDoNotForward(t *testing.T) {
	s := sim.New()
	n := New(s)
	h := n.AddHost("h")
	x := n.AddHost("x")
	hi := h.AddIface(packet.MustAddr("10.0.0.2"))
	xi := x.AddIface(packet.MustAddr("10.0.0.3"))
	n.Connect(hi, xi, time.Millisecond)
	h.AddDefaultRoute(hi)
	x.AddDefaultRoute(xi)
	// Packet addressed to a third party arrives at x; x must not loop it.
	delivered := false
	x.SetHandler(func(p *packet.Packet) { delivered = true })
	h.Send(packet.NewTCP(hi.Addr(), packet.MustAddr("99.9.9.9"), 1, 2, packet.FlagSYN, 0, 0, nil))
	s.Run()
	if delivered {
		t.Fatal("host handled foreign packet")
	}
}

func TestNoHandlerCountsDrop(t *testing.T) {
	s := sim.New()
	n := New(s)
	h := n.AddHost("h")
	x := n.AddHost("x")
	hi := h.AddIface(packet.MustAddr("10.0.0.2"))
	xi := x.AddIface(packet.MustAddr("10.0.0.3"))
	n.Connect(hi, xi, time.Millisecond)
	h.AddDefaultRoute(hi)
	h.Send(packet.NewTCP(hi.Addr(), xi.Addr(), 1, 2, packet.FlagSYN, 0, 0, nil))
	s.Run()
	if x.DropLocal != 1 {
		t.Fatalf("DropLocal = %d", x.DropLocal)
	}
}

// testMB is a scriptable middlebox.
type testMB struct {
	name    string
	fn      func(Pipe, *packet.Packet, Direction) Action
	seen    []Direction
	handled int
}

func (m *testMB) Name() string { return m.name }
func (m *testMB) Handle(p Pipe, pkt *packet.Packet, d Direction) Action {
	m.handled++
	m.seen = append(m.seen, d)
	if m.fn != nil {
		return m.fn(p, pkt, d)
	}
	return Pass
}

func TestMiddleboxSeesBothDirections(t *testing.T) {
	s, n, client, _, _, server := lineTopology(t)
	mb := &testMB{name: "tap"}
	n.Links()[1].Attach(mb) // r1--r2 link
	server.SetHandler(func(p *packet.Packet) {
		server.Send(packet.NewTCP(server.Addr(), client.Addr(), p.TCP.DstPort, p.TCP.SrcPort, packet.FlagsSYNACK, 0, p.TCP.Seq+1, nil))
	})
	client.Send(packet.NewTCP(client.Addr(), server.Addr(), 40000, 443, packet.FlagSYN, 1, 0, nil))
	s.Run()
	if mb.handled != 2 {
		t.Fatalf("middlebox handled %d packets, want 2", mb.handled)
	}
	if mb.seen[0] == mb.seen[1] {
		t.Fatal("middlebox did not see both directions")
	}
}

func TestMiddleboxDrop(t *testing.T) {
	s, n, client, _, _, server := lineTopology(t)
	mb := &testMB{name: "dropper", fn: func(p Pipe, pkt *packet.Packet, d Direction) Action {
		if pkt.TCP != nil && pkt.TCP.DstPort == 443 {
			return Drop
		}
		return Pass
	}}
	n.Links()[1].Attach(mb)
	delivered := 0
	server.SetHandler(func(p *packet.Packet) { delivered++ })
	client.Send(packet.NewTCP(client.Addr(), server.Addr(), 1, 443, packet.FlagSYN, 0, 0, nil))
	client.Send(packet.NewTCP(client.Addr(), server.Addr(), 1, 80, packet.FlagSYN, 0, 0, nil))
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered = %d, want only the :80 packet", delivered)
	}
}

func TestMiddleboxMutation(t *testing.T) {
	s, n, client, _, _, server := lineTopology(t)
	mb := &testMB{name: "rst-rewriter", fn: func(p Pipe, pkt *packet.Packet, d Direction) Action {
		if pkt.TCP != nil {
			pkt.TCP.Flags = packet.FlagsRSTACK
			pkt.TCP.Payload = nil
		}
		return Pass
	}}
	n.Links()[1].Attach(mb)
	var got *packet.Packet
	server.SetHandler(func(p *packet.Packet) { got = p })
	client.Send(packet.NewTCP(client.Addr(), server.Addr(), 1, 443, packet.FlagsPSHACK, 9, 9, []byte("data")))
	s.Run()
	if got == nil || got.TCP.Flags != packet.FlagsRSTACK || len(got.TCP.Payload) != 0 {
		t.Fatalf("mutation not applied: %v", got)
	}
}

func TestChainOrderPerDirection(t *testing.T) {
	s, n, client, _, _, server := lineTopology(t)
	var order []string
	mk := func(name string) *testMB {
		return &testMB{name: name, fn: func(p Pipe, pkt *packet.Packet, d Direction) Action {
			order = append(order, name)
			return Pass
		}}
	}
	link := n.Links()[1]
	link.Attach(mk("x")) // closer to A (r1, client side)
	link.Attach(mk("y")) // closer to B (r2, server side)
	server.SetHandler(func(p *packet.Packet) {
		server.Send(packet.NewTCP(server.Addr(), client.Addr(), 443, 40000, packet.FlagsSYNACK, 0, 1, nil))
	})
	client.Send(packet.NewTCP(client.Addr(), server.Addr(), 40000, 443, packet.FlagSYN, 1, 0, nil))
	s.Run()
	want := []string{"x", "y", "y", "x"}
	if len(order) != 4 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestInjectContinuesChain(t *testing.T) {
	// A middlebox that buffers a packet and re-injects it later must have the
	// re-injected packet traverse only the rest of the chain, not itself.
	s, n, client, _, _, server := lineTopology(t)
	link := n.Links()[1]
	buffering := &testMB{name: "buffer"}
	buffering.fn = func(p Pipe, pkt *packet.Packet, d Direction) Action {
		cp := pkt.Clone()
		dir := d
		p.After(5*time.Millisecond, func() { p.Inject(cp, dir) })
		return Drop
	}
	counter := &testMB{name: "counter"}
	link.Attach(buffering)
	link.Attach(counter)
	var deliveredAt time.Duration
	server.SetHandler(func(p *packet.Packet) { deliveredAt = s.Now() })
	client.Send(packet.NewTCP(client.Addr(), server.Addr(), 1, 443, packet.FlagSYN, 0, 0, nil))
	s.Run()
	// client->r1 (1ms) + buffer (5ms) + r1->r2 (1ms) + r2->server (1ms).
	if deliveredAt != 8*time.Millisecond {
		t.Fatalf("delivered at %v, want 8ms", deliveredAt)
	}
	if buffering.handled != 1 {
		t.Fatal("re-injected packet re-entered the injecting middlebox")
	}
	if counter.handled != 1 {
		t.Fatal("re-injected packet skipped the rest of the chain")
	}
}

func TestCaptureRecordsEntryAndDelivery(t *testing.T) {
	s, n, client, _, _, server := lineTopology(t)
	link := n.Links()[1]
	cap := NewCapture("mid")
	link.Tap(cap)
	mb := &testMB{name: "dropper", fn: func(Pipe, *packet.Packet, Direction) Action { return Drop }}
	link.Attach(mb)
	server.SetHandler(func(p *packet.Packet) {})
	client.Send(packet.NewTCP(client.Addr(), server.Addr(), 1, 443, packet.FlagSYN, 0, 0, nil))
	s.Run()
	if len(cap.Records) != 1 || !cap.Records[0].Entry {
		t.Fatalf("capture = %+v", cap.Records)
	}
	if len(cap.Delivered()) != 0 {
		t.Fatal("dropped packet shows as delivered")
	}
	if cap.Dump() == "" {
		t.Fatal("empty dump")
	}
}

func TestAsymmetricRouting(t *testing.T) {
	// client -- r1 == (two parallel paths via rA / rB) == r2 -- server,
	// with forward traffic via rA and return traffic via rB.
	s := sim.New()
	n := New(s)
	client := n.AddHost("client")
	r1 := n.AddRouter("r1")
	rA := n.AddRouter("rA")
	rB := n.AddRouter("rB")
	r2 := n.AddRouter("r2")
	server := n.AddHost("server")

	ci := client.AddIface(packet.MustAddr("10.0.0.2"))
	r1c := r1.AddIface(packet.MustAddr("10.0.0.1"))
	r1a := r1.AddIface(packet.MustAddr("10.2.0.1"))
	r1b := r1.AddIface(packet.MustAddr("10.3.0.1"))
	rAl := rA.AddIface(packet.MustAddr("10.2.0.2"))
	rAr := rA.AddIface(packet.MustAddr("10.4.0.1"))
	rBl := rB.AddIface(packet.MustAddr("10.3.0.2"))
	rBr := rB.AddIface(packet.MustAddr("10.5.0.1"))
	r2a := r2.AddIface(packet.MustAddr("10.4.0.2"))
	r2b := r2.AddIface(packet.MustAddr("10.5.0.2"))
	r2s := r2.AddIface(packet.MustAddr("203.0.113.1"))
	si := server.AddIface(packet.MustAddr("203.0.113.10"))

	n.Connect(ci, r1c, time.Millisecond)
	upLink := n.Connect(r1a, rAl, time.Millisecond)
	downLink := n.Connect(r1b, rBl, time.Millisecond)
	n.Connect(rAr, r2a, time.Millisecond)
	n.Connect(rBr, r2b, time.Millisecond)
	n.Connect(r2s, si, time.Millisecond)

	client.AddDefaultRoute(ci)
	r1.AddRoute(pfx("10.0.0.0/24"), r1c)
	r1.AddDefaultRoute(r1a) // forward via rA
	rA.AddDefaultRoute(rAr)
	rA.AddRoute(pfx("10.0.0.0/16"), rAl)
	rB.AddDefaultRoute(rBr)
	rB.AddRoute(pfx("10.0.0.0/16"), rBl)
	r2.AddDefaultRoute(r2s)
	r2.AddRoute(pfx("10.0.0.0/16"), r2b) // return via rB
	server.AddDefaultRoute(si)

	up := &testMB{name: "up"}
	down := &testMB{name: "down"}
	upLink.Attach(up)
	downLink.Attach(down)

	server.SetHandler(func(p *packet.Packet) {
		server.Send(packet.NewTCP(server.Addr(), client.Addr(), 443, p.TCP.SrcPort, packet.FlagsSYNACK, 0, p.TCP.Seq+1, nil))
	})
	gotReply := false
	client.SetHandler(func(p *packet.Packet) { gotReply = true })
	client.Send(packet.NewTCP(client.Addr(), server.Addr(), 40000, 443, packet.FlagSYN, 1, 0, nil))
	s.Run()

	if !gotReply {
		t.Fatal("no reply over asymmetric path")
	}
	if up.handled != 1 || down.handled != 1 {
		t.Fatalf("up=%d down=%d: middleboxes did not see one direction each", up.handled, down.handled)
	}
	if up.seen[0] != AtoB || down.seen[0] != BtoA {
		t.Fatalf("directions: up=%v down=%v", up.seen, down.seen)
	}
}

func TestNoICMPAboutICMPErrors(t *testing.T) {
	s, _, client, _, _, _ := lineTopology(t)
	// An ICMP TimeExceeded packet whose own TTL expires must vanish silently.
	got := 0
	client.SetHandler(func(p *packet.Packet) { got++ })
	p := &packet.Packet{
		IP:   packet.IPv4{TTL: 1, Protocol: packet.ProtoICMP, Src: client.Addr(), Dst: packet.MustAddr("203.0.113.10")},
		ICMP: &packet.ICMP{Type: packet.ICMPTimeExceed},
	}
	client.Send(p)
	s.Run()
	if got != 0 {
		t.Fatalf("got %d ICMP-about-ICMP replies", got)
	}
}

func TestDirectionHelpers(t *testing.T) {
	if AtoB.Reverse() != BtoA || BtoA.Reverse() != AtoB {
		t.Fatal("Reverse broken")
	}
	if AtoB.String() == BtoA.String() {
		t.Fatal("direction strings equal")
	}
}

func TestLinkLoss(t *testing.T) {
	s, n, client, _, _, server := lineTopology(t)
	link := n.Links()[1]
	link.SetLoss(0.5, sim.NewRand(3))
	delivered := 0
	server.SetHandler(func(p *packet.Packet) { delivered++ })
	const sent = 2000
	for i := 0; i < sent; i++ {
		client.Send(packet.NewTCP(client.Addr(), server.Addr(), uint16(1000+i), 443, packet.FlagSYN, 1, 0, nil))
	}
	s.Run()
	frac := float64(delivered) / sent
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("delivered fraction = %.3f with 50%% loss", frac)
	}
	if link.Lost != sent-delivered {
		t.Fatalf("Lost = %d, want %d", link.Lost, sent-delivered)
	}
}

func TestLinkLossDeterministic(t *testing.T) {
	run := func() int {
		s, n, client, _, _, server := lineTopology(t)
		n.Links()[1].SetLoss(0.3, sim.NewRand(11))
		delivered := 0
		server.SetHandler(func(p *packet.Packet) { delivered++ })
		for i := 0; i < 500; i++ {
			client.Send(packet.NewTCP(client.Addr(), server.Addr(), uint16(1000+i), 443, packet.FlagSYN, 1, 0, nil))
		}
		s.Run()
		return delivered
	}
	if run() != run() {
		t.Fatal("lossy runs diverged under the same seed")
	}
}
