package netem

import (
	"fmt"
	"strings"
	"time"

	"tspusim/internal/packet"
)

// Capture records packets crossing a link, in the spirit of a pcap tap. Each
// record notes whether it was taken at wire entry (before the middlebox
// chain) or at delivery (after the chain and propagation delay) so tests can
// observe middlebox rewrites.
type Capture struct {
	Name    string
	Records []CaptureRecord
	// Filter, when non-nil, limits recording to matching packets.
	Filter func(*packet.Packet) bool
}

// CaptureRecord is one captured packet.
type CaptureRecord struct {
	Time  time.Duration
	Link  *Link
	Dir   Direction
	Entry bool // true = entering the wire, false = delivered
	Pkt   *packet.Packet
}

// NewCapture returns an empty capture.
func NewCapture(name string) *Capture { return &Capture{Name: name} }

func (c *Capture) record(l *Link, pkt *packet.Packet, dir Direction, entry bool) {
	if c.Filter != nil && !c.Filter(pkt) {
		return
	}
	c.Records = append(c.Records, CaptureRecord{
		Time:  l.net.Sim.Now(),
		Link:  l,
		Dir:   dir,
		Entry: entry,
		Pkt:   pkt.Clone(),
	})
}

// Delivered returns only the records taken at delivery, i.e. packets that
// survived the middlebox chain.
func (c *Capture) Delivered() []CaptureRecord {
	var out []CaptureRecord
	for _, r := range c.Records {
		if !r.Entry {
			out = append(out, r)
		}
	}
	return out
}

// Clear empties the capture.
func (c *Capture) Clear() { c.Records = c.Records[:0] }

// Dump renders a human-readable trace, one packet per line, used by the
// examples to print Fig. 2-style diagrams.
func (c *Capture) Dump() string {
	var b strings.Builder
	for _, r := range c.Records {
		stage := "deliver"
		if r.Entry {
			stage = "entry  "
		}
		fmt.Fprintf(&b, "%8.3fms %s %s %s\n", float64(r.Time)/float64(time.Millisecond), stage, r.Dir, r.Pkt)
	}
	return b.String()
}
