package netem

import (
	"time"

	"tspusim/internal/packet"
	"tspusim/internal/sim"
)

// Direction is the travel direction of a packet over a link, expressed in
// the link's own A→B frame.
//
//tspuvet:closedenum
type Direction int

// Link directions.
const (
	AtoB Direction = iota
	BtoA
)

func (d Direction) String() string {
	if d == AtoB {
		return "a>b"
	}
	return "b>a"
}

// Reverse flips the direction.
func (d Direction) Reverse() Direction {
	if d == AtoB {
		return BtoA
	}
	return AtoB
}

// Action is a middlebox verdict for one packet, in the XDP style.
//
//tspuvet:closedenum
type Action int

// Verdicts.
const (
	// Pass forwards the (possibly mutated) packet onward.
	Pass Action = iota
	// Drop discards the packet. A middlebox that buffered the packet for
	// later release also returns Drop and re-emits via Pipe.Inject.
	Drop
)

// Middlebox is an in-path device attached to a link. Handle is called for
// every packet crossing the link in either direction; the device may mutate
// pkt in place, return a verdict, and inject packets through the pipe now or
// later.
//
// Retention contract (the canonical statement — everything else refers here):
// ownership of a packet is sequential. The same *packet.Packet instance
// traverses every link on the path; whoever holds it at the moment owns it,
// and routers forward it in place rather than copying per hop. A middlebox
// that keeps the packet — or anything aliasing its payload — past its Handle
// return MUST deep-copy first (Clone/CloneInto/Marshal), because the original
// is mutated and re-sent by downstream hops the moment Handle returns. The
// retaincheck analyzer in tspu-vet enforces this mechanically: any store of a
// packet-aliasing value that outlives Handle is a diagnostic unless the line
// carries a //tspuvet:retains annotation explaining who owns the copy.
type Middlebox interface {
	Name() string
	Handle(pipe Pipe, pkt *packet.Packet, dir Direction) Action
}

// Pipe lets a middlebox emit packets from its own position on the link and
// schedule work on the virtual clock.
type Pipe interface {
	// Inject sends pkt onward in dir, entering the chain after (for the
	// forward sense of dir) this middlebox, as if the device transmitted it.
	Inject(pkt *packet.Packet, dir Direction)
	// Now returns the current virtual time.
	Now() time.Duration
	// After schedules fn on the virtual clock.
	After(d time.Duration, fn func())
}

// Link is a full-duplex connection between two interfaces with an in-order
// middlebox chain. Chain order is physical, from the A side to the B side:
// packets traveling AtoB traverse index 0 first; BtoA traverse the highest
// index first.
type Link struct {
	net   *Network
	a, b  *Iface
	delay time.Duration
	mbs   []Middlebox
	taps  []*Capture
	// loss drops packets at wire entry with the given probability, driven
	// by a seeded stream so lossy runs stay reproducible. The paper repeats
	// every measurement >5 times precisely because real paths lose packets
	// and routes flap (§3); loss lets tests exercise that methodology.
	loss    float64
	lossRng *sim.Rand
	// Lost counts packets dropped by loss.
	Lost int
}

// SetLoss enables random packet loss on the link (both directions).
func (l *Link) SetLoss(p float64, rng *sim.Rand) {
	l.loss = p
	l.lossRng = rng
}

// A returns the A-side interface.
func (l *Link) A() *Iface { return l.a }

// B returns the B-side interface.
func (l *Link) B() *Iface { return l.b }

// Delay returns the one-way propagation delay.
func (l *Link) Delay() time.Duration { return l.delay }

// Attach appends a middlebox to the chain (closest to B among those already
// attached).
func (l *Link) Attach(mb Middlebox) { l.mbs = append(l.mbs, mb) }

// Middleboxes returns the chain in physical order.
func (l *Link) Middleboxes() []Middlebox { return l.mbs }

// Tap attaches a capture to the link, recording every packet that enters the
// link (before the middlebox chain) and every packet delivered from it.
func (l *Link) Tap(c *Capture) { l.taps = append(l.taps, c) }

// transmit is called by the node owning `from` to put a packet on the wire.
func (l *Link) transmit(from *Iface, pkt *packet.Packet) {
	dir := AtoB
	if from == l.b {
		dir = BtoA
	}
	for _, t := range l.taps {
		t.record(l, pkt, dir, true)
	}
	if l.loss > 0 && l.lossRng != nil && l.lossRng.Bool(l.loss) {
		l.Lost++
		return
	}
	start := l.entryIndex(dir)
	l.process(pkt, dir, start)
}

// entryIndex returns the first chain index a packet entering the link in dir
// must traverse.
func (l *Link) entryIndex(dir Direction) int {
	if dir == AtoB {
		return 0
	}
	return len(l.mbs) - 1
}

// process runs the chain from index idx (inclusive) in dir and, if the packet
// survives, schedules delivery at the far end.
func (l *Link) process(pkt *packet.Packet, dir Direction, idx int) {
	step := 1
	if dir == BtoA {
		step = -1
	}
	for ; idx >= 0 && idx < len(l.mbs); idx += step {
		mb := l.mbs[idx]
		pipe := &linkPipe{link: l, dir: dir, idx: idx}
		if mb.Handle(pipe, pkt, dir) == Drop {
			return
		}
	}
	dst := l.b
	if dir == BtoA {
		dst = l.a
	}
	dv := l.net.newDelivery()
	//tspuvet:retains pooled in-flight delivery owns the packet until the propagation timer fires; run clears it before recycling
	dv.link, dv.pkt, dv.dir, dv.dst = l, pkt, dir, dst
	l.net.Sim.After(l.delay, dv.run)
}

// linkPipe implements Pipe for one middlebox invocation.
type linkPipe struct {
	link *Link
	dir  Direction
	idx  int
}

func (p *linkPipe) Inject(pkt *packet.Packet, dir Direction) {
	// AtoB traverses increasing chain indices, BtoA decreasing; in both
	// cases the injected packet enters the chain one position past this
	// middlebox in its direction of travel.
	next := p.idx + 1
	if dir == BtoA {
		next = p.idx - 1
	}
	p.link.process(pkt, dir, next)
}

func (p *linkPipe) Now() time.Duration { return p.link.net.Sim.Now() }

func (p *linkPipe) After(d time.Duration, fn func()) { p.link.net.Sim.After(d, fn) }
