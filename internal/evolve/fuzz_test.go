package evolve

import (
	"testing"

	"tspusim/internal/sim"
)

// FuzzGenome pins the corpus serialization contract: any string Decode
// accepts round-trips through String() unchanged, mutation is a pure
// function of (genome, rand seed), and no decode/encode/mutate chain
// panics. The seed corpus is distilled from the smallest winning genomes the
// arms race pins — the forms the replay suite parses out of
// testdata/evasions, so a serialization regression breaks here before it
// breaks a golden.
func FuzzGenome(f *testing.F) {
	for _, s := range []string{
		"noop",
		"segment(64)",
		"fragment(64)",
		"pad-before-sni(600)",
		"prepend-record",
		"junk(ttl=3)",
		"srv-window(100)",
		"srv-split",
		"srv-delay(61s)",
		"segment(16)+prepend-record",
		"fragment(16)+junk(ttl=2)",
		"segment(64)+fragment(64)+pad-before-sni(50)+prepend-record",
		"srv-window(50)+srv-split+srv-delay(70s)",
		"segment(0)",
		"segment(-1)",
		"segment(64)+segment(64)",
		"pad-before-sni(99999999)",
		"srv-delay(61)",
		"unknown-gene",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		g, err := Decode(s)
		if err != nil {
			return // malformed input: rejection is the contract
		}
		// Decode ∘ String is the identity on decoded genomes.
		back, err := Decode(g.String())
		if err != nil {
			t.Fatalf("String() of decoded genome does not re-decode: %q -> %q: %v", s, g.String(), err)
		}
		if back != g {
			t.Fatalf("round trip drifted: %q -> %+v -> %q -> %+v", s, g, g.String(), back)
		}
		// Mutation under equal rand streams is deterministic.
		if g.Mutate(sim.NewRand(7)) != g.Mutate(sim.NewRand(7)) {
			t.Fatalf("Mutate not deterministic for %q", s)
		}
		// A mutation chain stays canonical: every intermediate form
		// re-decodes to itself (mutated values are always the generator's
		// canonical multiples).
		r := sim.NewRand(uint64(len(s)) + 1)
		m := g
		for i := 0; i < numGenes; i++ {
			m = m.Mutate(r)
			d, err := Decode(m.String())
			if err != nil || d != m {
				t.Fatalf("mutated form not canonical: %q (from %q): %v", m.String(), s, err)
			}
		}
		// Shrink under a pure predicate terminates and stays decodable.
		shr := Shrink(g, func(c Genome) bool { return c.Complexity() >= g.Complexity()-1 })
		if _, err := Decode(shr.String()); err != nil {
			t.Fatalf("shrunk form not decodable: %q", shr.String())
		}
	})
}

func TestDecodeRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"", "segment()", "segment(x)", "segment(-4)", "segment(0)",
		"segment(64)+segment(32)", "prepend-record+prepend-record",
		"srv-delay(61)", "srv-delay(s)", "pad-before-sni(1048577)",
		"segment(007)", "noop+segment(64)", "segment(64)x",
	} {
		if g, err := Decode(s); err == nil {
			t.Errorf("Decode(%q) accepted malformed input as %+v", s, g)
		}
	}
}

func TestDecodeRoundTripsRandom(t *testing.T) {
	r := sim.NewRand(41)
	for i := 0; i < 200; i++ {
		g := Random(r)
		d, err := Decode(g.String())
		if err != nil || d != g {
			t.Fatalf("Random genome %q did not round-trip: %+v %v", g.String(), d, err)
		}
	}
}

func TestShrinkFindsMinimalForm(t *testing.T) {
	// Predicate: the genome still carries a segmentation gene. Everything
	// else is junk and must be shrunk away.
	g := Genome{SegmentSize: 64, JunkTTL: 3, PadBeforeSNI: 100, ServerSplit: true}
	min := Shrink(g, func(c Genome) bool { return c.SegmentSize > 0 })
	if min != (Genome{SegmentSize: 64}) {
		t.Fatalf("shrink kept junk genes: %q", min.String())
	}
	// The all-zero genome is never offered even under an always-true
	// predicate: one gene must survive.
	min = Shrink(g, func(Genome) bool { return true })
	if min.IsNoop() || min.Complexity() != 1 {
		t.Fatalf("shrink under true-predicate should stop at one gene, got %q", min.String())
	}
}
