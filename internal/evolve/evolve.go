// Package evolve is a Geneva-style automated evasion search (Bock et al.,
// CCS 2019 — cited by the paper as [38]) run against the TSPU model: a small
// genetic search over client-side packet-manipulation genomes that
// rediscovers, without being told about them, the §8 strategies that work —
// segmentation, fragmentation, padding-before-SNI, record-prepending — and
// learns that TTL-limited junk no longer helps. Because the device model is
// the paper's executable spec, anything the search finds here is a strategy
// the paper's observations imply should work against the real device.
package evolve

import (
	"fmt"
	"sort"
	"strings"

	"tspusim/internal/circumvent"
	"tspusim/internal/hostnet"
	"tspusim/internal/packet"
	"tspusim/internal/sim"
	"tspusim/internal/tlsx"
	"tspusim/internal/topo"
)

// Genome is one candidate client-side strategy: a bundle of independently
// togglable packet manipulations.
type Genome struct {
	// SegmentSize, when non-zero, caps the client MSS (TCP segmentation).
	SegmentSize int
	// FragmentPayload, when non-zero, sends the CH as IP fragments of this
	// payload size (multiple of 8).
	FragmentPayload int
	// PadBeforeSNI, when non-zero, inserts a padding extension of this many
	// bytes before the SNI.
	PadBeforeSNI int
	// PrependRecord prepends a non-handshake TLS record.
	PrependRecord bool
	// JunkTTL, when non-zero, sends a TTL-limited garbage packet before the
	// CH (the historical, now-mitigated insertion strategy).
	JunkTTL int
	// Server-side genes (the "come as you are" space of Bock et al. [37]):
	// ServerWindow advertises a small receive window in the SYN/ACK;
	// ServerSplit answers SYN with a bare SYN; ServerDelaySec delays the
	// handshake reply past conntrack eviction.
	ServerWindow   int
	ServerSplit    bool
	ServerDelaySec int
}

// IsNoop reports whether the genome applies no manipulation.
func (g Genome) IsNoop() bool {
	return g.SegmentSize == 0 && g.FragmentPayload == 0 && g.PadBeforeSNI == 0 &&
		!g.PrependRecord && g.JunkTTL == 0 &&
		g.ServerWindow == 0 && !g.ServerSplit && g.ServerDelaySec == 0
}

// Complexity counts active genes — the search prefers simpler strategies.
func (g Genome) Complexity() int {
	n := 0
	if g.SegmentSize > 0 {
		n++
	}
	if g.FragmentPayload > 0 {
		n++
	}
	if g.PadBeforeSNI > 0 {
		n++
	}
	if g.PrependRecord {
		n++
	}
	if g.JunkTTL > 0 {
		n++
	}
	if g.ServerWindow > 0 {
		n++
	}
	if g.ServerSplit {
		n++
	}
	if g.ServerDelaySec > 0 {
		n++
	}
	return n
}

func (g Genome) String() string {
	var parts []string
	if g.SegmentSize > 0 {
		parts = append(parts, fmt.Sprintf("segment(%d)", g.SegmentSize))
	}
	if g.FragmentPayload > 0 {
		parts = append(parts, fmt.Sprintf("fragment(%d)", g.FragmentPayload))
	}
	if g.PadBeforeSNI > 0 {
		parts = append(parts, fmt.Sprintf("pad-before-sni(%d)", g.PadBeforeSNI))
	}
	if g.PrependRecord {
		parts = append(parts, "prepend-record")
	}
	if g.JunkTTL > 0 {
		parts = append(parts, fmt.Sprintf("junk(ttl=%d)", g.JunkTTL))
	}
	if g.ServerWindow > 0 {
		parts = append(parts, fmt.Sprintf("srv-window(%d)", g.ServerWindow))
	}
	if g.ServerSplit {
		parts = append(parts, "srv-split")
	}
	if g.ServerDelaySec > 0 {
		parts = append(parts, fmt.Sprintf("srv-delay(%ds)", g.ServerDelaySec))
	}
	if len(parts) == 0 {
		return "noop"
	}
	return strings.Join(parts, "+")
}

// Random draws a genome with a bias toward few active genes.
func Random(r *sim.Rand) Genome {
	var g Genome
	if r.Bool(0.4) {
		g.SegmentSize = 16 * r.IntRange(1, 16) // 16..256
	}
	if r.Bool(0.3) {
		g.FragmentPayload = 8 * r.IntRange(2, 16) // 16..128
	}
	if r.Bool(0.3) {
		g.PadBeforeSNI = 50 * r.IntRange(1, 14) // 50..700
	}
	if r.Bool(0.25) {
		g.PrependRecord = true
	}
	if r.Bool(0.25) {
		g.JunkTTL = r.IntRange(1, 5)
	}
	if r.Bool(0.2) {
		g.ServerWindow = 50 * r.IntRange(1, 6) // 50..300
	}
	if r.Bool(0.15) {
		g.ServerSplit = true
	}
	if r.Bool(0.1) {
		g.ServerDelaySec = []int{30, 61, 70}[r.Intn(3)]
	}
	return g
}

// Mutate flips or perturbs one gene.
func (g Genome) Mutate(r *sim.Rand) Genome {
	switch r.Intn(8) {
	case 0:
		if g.SegmentSize == 0 {
			g.SegmentSize = 16 * r.IntRange(1, 16)
		} else if r.Bool(0.5) {
			g.SegmentSize = 0
		} else {
			g.SegmentSize = 16 * r.IntRange(1, 16)
		}
	case 1:
		if g.FragmentPayload == 0 {
			g.FragmentPayload = 8 * r.IntRange(2, 16)
		} else {
			g.FragmentPayload = 0
		}
	case 2:
		if g.PadBeforeSNI == 0 {
			g.PadBeforeSNI = 50 * r.IntRange(1, 14)
		} else {
			g.PadBeforeSNI = 0
		}
	case 3:
		g.PrependRecord = !g.PrependRecord
	case 4:
		if g.JunkTTL == 0 {
			g.JunkTTL = r.IntRange(1, 5)
		} else {
			g.JunkTTL = 0
		}
	case 5:
		if g.ServerWindow == 0 {
			g.ServerWindow = 50 * r.IntRange(1, 6)
		} else {
			g.ServerWindow = 0
		}
	case 6:
		g.ServerSplit = !g.ServerSplit
	default:
		if g.ServerDelaySec == 0 {
			g.ServerDelaySec = []int{30, 61, 70}[r.Intn(3)]
		} else {
			g.ServerDelaySec = 0
		}
	}
	return g
}

// Strategy compiles the genome into an evaluable circumvention strategy.
func (g Genome) Strategy() circumvent.Strategy {
	side := circumvent.SideClient
	if g.ServerWindow > 0 || g.ServerSplit || g.ServerDelaySec > 0 {
		side = circumvent.SideServer
	}
	s := circumvent.Strategy{Name: g.String(), Side: side}
	if g.ServerWindow > 0 || g.ServerSplit || g.ServerDelaySec > 0 {
		win, split, delay := g.ServerWindow, g.ServerSplit, g.ServerDelaySec
		s.Listen = func(o *hostnet.ListenOptions) {
			if win > 0 {
				o.Window = uint16(win)
			}
			o.SplitHandshake = split
			if delay > 0 {
				o.ResponseDelay = delay * 1000
			}
		}
	}
	if g.SegmentSize > 0 {
		seg := g.SegmentSize
		s.Dial = func(o *hostnet.DialOptions) { o.MSS = seg }
	}
	if g.PadBeforeSNI > 0 || g.PrependRecord {
		pad, pre := g.PadBeforeSNI, g.PrependRecord
		s.BuildCH = func(domain string) []byte {
			spec := &tlsx.ClientHelloSpec{ServerName: domain, PrependRecord: pre}
			if pad > 0 {
				spec.ExtraExts = []tlsx.Extension{{Type: tlsx.ExtensionPadding, Data: make([]byte, pad)}}
			}
			return spec.Build()
		}
	}
	if g.FragmentPayload > 0 || g.JunkTTL > 0 {
		frag, junk := g.FragmentPayload, g.JunkTTL
		s.SendCH = func(lab *topo.Lab, conn *hostnet.TCPConn, ch []byte) {
			if junk > 0 {
				j := packet.NewTCP(conn.LocalAddr, conn.RemoteAddr, conn.LocalPort, conn.RemotePort,
					packet.FlagsPSHACK, conn.SndNxt, conn.RcvNxt, make([]byte, 32))
				j.IP.TTL = uint8(junk)
				j.IP.ID = conn.Stack().NextIPID()
				conn.Stack().Send(j)
			}
			if frag > 0 {
				p := packet.NewTCP(conn.LocalAddr, conn.RemoteAddr, conn.LocalPort, conn.RemotePort,
					packet.FlagsPSHACK, conn.SndNxt, conn.RcvNxt, ch)
				p.IP.ID = conn.Stack().NextIPID()
				frags, err := packet.Fragment(p, frag)
				if err == nil && len(frags) > 1 {
					for _, f := range frags {
						conn.Stack().Send(f)
					}
					conn.SndNxt += uint32(len(ch))
					return
				}
			}
			conn.Send(ch)
		}
	}
	return s
}

// Discovered is one search result.
type Discovered struct {
	Genome  Genome
	Fitness int // targets evaded (0..len(Targets))
}

// SearchOptions tune the genetic search.
type SearchOptions struct {
	Population  int // default 14
	Generations int // default 6
	Vantage     string
}

// sortDiscovered orders candidates by fitness (descending), then simplicity,
// keeping discovery order among ties.
func sortDiscovered(ds []Discovered) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Fitness != ds[j].Fitness {
			return ds[i].Fitness > ds[j].Fitness
		}
		return ds[i].Genome.Complexity() < ds[j].Genome.Complexity()
	})
}

// Search runs the genetic search against the lab and returns all evaluated
// candidates sorted by fitness (descending), then simplicity. Full-fitness
// winners are ddmin-shrunk to one-minimal genomes before reporting, so the
// top of the list names the necessary mechanisms, not whatever junk genes a
// random draw happened to carry along.
func Search(lab *topo.Lab, server *hostnet.Stack, opts SearchOptions) []Discovered {
	if opts.Vantage == "" {
		opts.Vantage = topo.ERTelecom
	}
	r := lab.Rand.Fork("evolve")
	targets := circumvent.Targets()

	fitness := func(g Genome) int {
		if g.IsNoop() {
			return 0
		}
		n := 0
		strat := g.Strategy()
		for _, t := range targets {
			if circumvent.Evaluate(lab, opts.Vantage, server, strat, t) {
				n++
			}
		}
		return n
	}

	all := SearchBatch(r, opts, func(gs []Genome) []int {
		// The lab is shared mutable state, so candidates — duplicates
		// included — are evaluated strictly in slice order, preserving the
		// exact evaluation sequence of the pre-batch search.
		fits := make([]int, len(gs))
		for i, g := range gs {
			fits[i] = fitness(g)
		}
		return fits
	})

	// Shrink after the search so the extra evaluations never perturb the
	// evaluation sequence the search itself saw. A memo keeps the repeated
	// sub-genome probes cheap: shrunk winners funnel through the same small
	// set of single-gene forms.
	memo := map[Genome]int{}
	memoFit := func(g Genome) int {
		if f, ok := memo[g]; ok {
			return f
		}
		f := fitness(g)
		memo[g] = f
		return f
	}
	out := make([]Discovered, 0, len(all))
	seen := map[string]bool{}
	for _, d := range all {
		if d.Fitness == len(targets) {
			d.Genome = Shrink(d.Genome, func(g Genome) bool { return memoFit(g) == len(targets) })
		}
		if !seen[d.Genome.String()] {
			seen[d.Genome.String()] = true
			out = append(out, d)
		}
	}
	sortDiscovered(out)
	return out
}

// Render summarizes a search.
func Render(results []Discovered) string {
	var b strings.Builder
	b.WriteString("== Geneva-style evasion search against the TSPU model ==\n")
	full, tried := 0, len(results)
	for _, d := range results {
		if d.Fitness == 3 {
			full++
		}
	}
	fmt.Fprintf(&b, "candidates evaluated: %d, full evasions found: %d\n", tried, full)
	top := results
	if len(top) > 8 {
		top = top[:8]
	}
	for _, d := range top {
		fmt.Fprintf(&b, "  fitness %d/3  %s\n", d.Fitness, d.Genome)
	}
	return b.String()
}
