package evolve

import (
	"fmt"
	"strconv"
	"strings"

	"tspusim/internal/sim"
)

// numGenes is the size of the genome's gene space, used by Shrink and the
// fuzz harness to enumerate single-gene removals.
const numGenes = 8

// zeroGene returns a copy of g with gene i cleared, in the fixed order
// SegmentSize, FragmentPayload, PadBeforeSNI, PrependRecord, JunkTTL,
// ServerWindow, ServerSplit, ServerDelaySec (the String() rendering order).
func (g Genome) zeroGene(i int) Genome {
	switch i {
	case 0:
		g.SegmentSize = 0
	case 1:
		g.FragmentPayload = 0
	case 2:
		g.PadBeforeSNI = 0
	case 3:
		g.PrependRecord = false
	case 4:
		g.JunkTTL = 0
	case 5:
		g.ServerWindow = 0
	case 6:
		g.ServerSplit = false
	default:
		g.ServerDelaySec = 0
	}
	return g
}

// Signature is the genome's active-gene bitmask — two genomes with the same
// signature use the same mechanisms with different parameters. The arms-race
// corpus dedups pins by signature so "segment(64)" and "segment(112)" count
// as one discovered strategy.
func (g Genome) Signature() uint8 {
	var s uint8
	for i := 0; i < numGenes; i++ {
		if g.zeroGene(i) != g {
			s |= 1 << uint(i)
		}
	}
	return s
}

// Shrink is one-minimal ddmin over the gene space: it repeatedly clears any
// single gene whose removal keeps the predicate true, until no single
// removal survives. Gene order is fixed, so the result is a pure function of
// (g, keep). The all-zero genome is never offered to keep — an empty
// strategy is no strategy, even if the predicate would vacuously accept it.
func Shrink(g Genome, keep func(Genome) bool) Genome {
	for changed := true; changed; {
		changed = false
		for i := 0; i < numGenes; i++ {
			c := g.zeroGene(i)
			if c == g || c.IsNoop() {
				continue
			}
			if keep(c) {
				g = c
				changed = true
			}
		}
	}
	return g
}

// Decode parses the String() rendering back into a Genome, making the
// human-readable strategy label the corpus serialization format too. Genes
// may appear in any order but at most once; values must be positive and
// small enough to be a plausible packet-manipulation parameter. For any
// successfully decoded g, Decode(g.String()) == g (pinned by FuzzGenome).
func Decode(s string) (Genome, error) {
	var g Genome
	if s == "noop" {
		return g, nil
	}
	if s == "" {
		return g, fmt.Errorf("evolve: empty genome string")
	}
	for _, part := range strings.Split(s, "+") {
		var err error
		switch {
		case part == "prepend-record":
			err = setFlag(&g.PrependRecord)
		case part == "srv-split":
			err = setFlag(&g.ServerSplit)
		case strings.HasPrefix(part, "segment("):
			err = setInt(&g.SegmentSize, part, "segment(", ")")
		case strings.HasPrefix(part, "fragment("):
			err = setInt(&g.FragmentPayload, part, "fragment(", ")")
		case strings.HasPrefix(part, "pad-before-sni("):
			err = setInt(&g.PadBeforeSNI, part, "pad-before-sni(", ")")
		case strings.HasPrefix(part, "junk(ttl="):
			err = setInt(&g.JunkTTL, part, "junk(ttl=", ")")
		case strings.HasPrefix(part, "srv-window("):
			err = setInt(&g.ServerWindow, part, "srv-window(", ")")
		case strings.HasPrefix(part, "srv-delay("):
			err = setInt(&g.ServerDelaySec, part, "srv-delay(", "s)")
		default:
			err = fmt.Errorf("unknown gene %q", part)
		}
		if err != nil {
			return Genome{}, fmt.Errorf("evolve: decode %q: %w", s, err)
		}
	}
	return g, nil
}

func setFlag(dst *bool) error {
	if *dst {
		return fmt.Errorf("duplicate gene")
	}
	*dst = true
	return nil
}

// maxGeneValue bounds decoded parameters: every legitimate gene value (MSS,
// fragment payload, pad bytes, TTL, window, delay seconds) is far below it,
// and it keeps a hostile corpus entry from requesting a gigabyte pad.
const maxGeneValue = 1 << 20

func setInt(dst *int, part, prefix, suffix string) error {
	if *dst != 0 {
		return fmt.Errorf("duplicate gene")
	}
	body := strings.TrimPrefix(part, prefix)
	if !strings.HasSuffix(body, suffix) {
		return fmt.Errorf("malformed gene %q", part)
	}
	body = strings.TrimSuffix(body, suffix)
	v, err := strconv.Atoi(body)
	if err != nil || v <= 0 || v > maxGeneValue || strconv.Itoa(v) != body {
		return fmt.Errorf("bad gene value %q", part)
	}
	*dst = v
	return nil
}

// BatchFitness evaluates one generation of candidates, in order, and returns
// a fitness per candidate. Candidates may repeat; callers that evaluate
// against shared mutable state (one Lab) must evaluate every element in
// slice order, while pure evaluators (fresh testbed per genome) are free to
// fan the batch out across workers as long as results land in order.
type BatchFitness func(gs []Genome) []int

// SearchBatch is the generic genetic loop behind Search: generation-batched
// evaluation against any fitness function, so the same elite/mutate schedule
// can run against a Lab's TSPU fleet or an arbitrary censor.Censor testbed.
// All randomness comes from r; children of a generation are drawn from the
// sorted elite before any of them is evaluated, so the rand stream never
// depends on fitness results within a generation — which is what lets the
// batch fan out across fleet workers without changing the search.
func SearchBatch(r *sim.Rand, opts SearchOptions, fitness BatchFitness) []Discovered {
	if opts.Population == 0 {
		opts.Population = 14
	}
	if opts.Generations == 0 {
		opts.Generations = 6
	}

	seen := map[string]bool{}
	var all []Discovered
	evalBatch := func(gs []Genome) []Discovered {
		fits := fitness(gs)
		ds := make([]Discovered, len(gs))
		for i, g := range gs {
			ds[i] = Discovered{Genome: g, Fitness: fits[i]}
			if !seen[g.String()] {
				seen[g.String()] = true
				all = append(all, ds[i])
			}
		}
		return ds
	}

	gen0 := make([]Genome, 0, opts.Population)
	for i := 0; i < opts.Population; i++ {
		gen0 = append(gen0, Random(r))
	}
	pop := evalBatch(gen0)
	for gen := 1; gen < opts.Generations; gen++ {
		sortDiscovered(pop)
		elite := pop[:len(pop)/2]
		children := make([]Genome, 0, opts.Population-len(elite))
		for len(elite)+len(children) < opts.Population {
			parent := elite[r.Intn(len(elite))].Genome
			children = append(children, parent.Mutate(r))
		}
		next := append([]Discovered{}, elite...)
		pop = append(next, evalBatch(children)...)
	}

	sortDiscovered(all)
	return all
}
