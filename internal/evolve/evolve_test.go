package evolve

import (
	"strings"
	"testing"

	"tspusim/internal/circumvent"
	"tspusim/internal/sim"
	"tspusim/internal/topo"
)

func evLab(t *testing.T) *topo.Lab {
	t.Helper()
	return topo.Build(topo.Options{Seed: 61, Endpoints: 40, ASes: 4, TrancoN: 100, RegistryN: 100})
}

// evalOne runs one strategy against one behavior target.
func evalOne(lab *topo.Lab, strat circumvent.Strategy, label, domain string) bool {
	return circumvent.Evaluate(lab, topo.ERTelecom, lab.US1, strat, circumvent.Target{Label: label, Domain: domain})
}

func TestSearchFindsEvasions(t *testing.T) {
	lab := evLab(t)
	results := Search(lab, lab.US1, SearchOptions{Population: 12, Generations: 5})
	if len(results) == 0 {
		t.Fatal("no candidates evaluated")
	}
	best := results[0]
	if best.Fitness != 3 {
		t.Fatalf("best fitness = %d/3: %s", best.Fitness, best.Genome)
	}
	// The winner must use at least one mechanism the paper documents as
	// effective; junk-only genomes cannot win.
	g := best.Genome
	if g.SegmentSize == 0 && g.FragmentPayload == 0 && g.PadBeforeSNI == 0 && !g.PrependRecord {
		t.Fatalf("winner uses no effective gene: %s", g)
	}
	if !strings.Contains(Render(results), "full evasions") {
		t.Fatal("render incomplete")
	}
}

func TestJunkOnlyGenomeFails(t *testing.T) {
	// The TTL-junk insertion strategy is mitigated (§8); a genome carrying
	// only that gene must not evade anything.
	lab := evLab(t)
	g := Genome{JunkTTL: 3}
	strat := g.Strategy()
	evaded := 0
	for _, tg := range []struct{ label, domain string }{
		{"SNI-I", "dw.com"}, {"SNI-II", "play.google.com"},
	} {
		if evalOne(lab, strat, tg.label, tg.domain) {
			evaded++
		}
	}
	if evaded != 0 {
		t.Fatalf("junk-only genome evaded %d targets", evaded)
	}
}

func TestSegmentationGenomeWins(t *testing.T) {
	lab := evLab(t)
	g := Genome{SegmentSize: 64}
	strat := g.Strategy()
	if !evalOne(lab, strat, "SNI-I", "dw.com") {
		t.Fatal("segmentation genome failed against SNI-I")
	}
	if !evalOne(lab, strat, "SNI-II", "play.google.com") {
		t.Fatal("segmentation genome failed against SNI-II")
	}
}

func TestGenomeDeterminism(t *testing.T) {
	a, b := sim.NewRand(9), sim.NewRand(9)
	for i := 0; i < 50; i++ {
		ga, gb := Random(a), Random(b)
		if ga != gb {
			t.Fatal("Random not deterministic")
		}
		if ga.Mutate(sim.NewRand(uint64(i))) != gb.Mutate(sim.NewRand(uint64(i))) {
			t.Fatal("Mutate not deterministic")
		}
	}
}

func TestGenomeStringAndComplexity(t *testing.T) {
	g := Genome{}
	if g.String() != "noop" || !g.IsNoop() || g.Complexity() != 0 {
		t.Fatal("noop genome misdescribed")
	}
	g = Genome{SegmentSize: 64, PrependRecord: true}
	if g.Complexity() != 2 {
		t.Fatalf("complexity = %d", g.Complexity())
	}
	if !strings.Contains(g.String(), "segment(64)") || !strings.Contains(g.String(), "prepend-record") {
		t.Fatalf("string = %s", g)
	}
}

func TestSearchDeterministic(t *testing.T) {
	labA, labB := evLab(t), evLab(t)
	ra := Search(labA, labA.US1, SearchOptions{Population: 8, Generations: 3})
	rb := Search(labB, labB.US1, SearchOptions{Population: 8, Generations: 3})
	if len(ra) != len(rb) {
		t.Fatalf("candidate counts differ: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Genome != rb[i].Genome || ra[i].Fitness != rb[i].Fitness {
			t.Fatalf("divergence at %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestServerGenes(t *testing.T) {
	lab := evLab(t)
	// Split handshake alone: evades SNI-I, not SNI-II (Table 8 semantics).
	split := Genome{ServerSplit: true}
	if !evalOne(lab, split.Strategy(), "SNI-I", "dw.com") {
		t.Fatal("srv-split failed against SNI-I")
	}
	if evalOne(lab, split.Strategy(), "SNI-II", "play.google.com") {
		t.Fatal("srv-split should not evade SNI-II")
	}
	// Delay past the 60 s SYN-SENT timeout evades; a 30 s delay does not.
	if !evalOne(lab, Genome{ServerDelaySec: 61}.Strategy(), "SNI-I", "dw.com") {
		t.Fatal("srv-delay(61) failed")
	}
	if evalOne(lab, Genome{ServerDelaySec: 30}.Strategy(), "SNI-I", "dw.com") {
		t.Fatal("srv-delay(30) should not evade")
	}
}

func TestSearchSpansBothSides(t *testing.T) {
	lab := evLab(t)
	results := Search(lab, lab.US1, SearchOptions{Population: 20, Generations: 6})
	var sawServer bool
	for _, d := range results {
		g := d.Genome
		if g.ServerWindow > 0 || g.ServerSplit || g.ServerDelaySec > 0 {
			sawServer = true
		}
	}
	if !sawServer {
		t.Fatal("search never tried a server-side gene")
	}
}
