package packet_test

import (
	"fmt"

	"tspusim/internal/packet"
)

func ExampleFragment() {
	p := packet.NewTCP(
		packet.MustAddr("10.0.0.2"), packet.MustAddr("203.0.113.10"),
		40000, 443, packet.FlagsPSHACK, 1, 1, make([]byte, 3000))
	frags, _ := packet.Fragment(p, 1480)
	for _, f := range frags {
		fmt.Printf("offset=%-5d mf=%v len=%d\n", f.IP.FragOffset, f.IP.MF, len(f.RawPayload))
	}
	whole, _ := packet.Reassemble(frags)
	fmt.Println("reassembled payload:", len(whole.TCP.Payload))
	// Output:
	// offset=0     mf=true len=1480
	// offset=1480  mf=true len=1480
	// offset=2960  mf=false len=60
	// reassembled payload: 3000
}

func ExampleFlowKey_Canonical() {
	a := packet.NewTCP(packet.MustAddr("10.0.0.2"), packet.MustAddr("203.0.113.10"), 40000, 443, packet.FlagSYN, 0, 0, nil)
	b := packet.NewTCP(packet.MustAddr("203.0.113.10"), packet.MustAddr("10.0.0.2"), 443, 40000, packet.FlagsSYNACK, 0, 0, nil)
	fmt.Println(packet.FlowOf(a).Canonical() == packet.FlowOf(b).Canonical())
	// Output: true
}

func ExampleTCPFlags_String() {
	fmt.Println(packet.FlagsSYNACK)
	fmt.Println(packet.FlagsRSTACK)
	// Output:
	// SYN/ACK
	// ACK/RST
}
