package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// FlowKey identifies a transport flow by 5-tuple. Following the gopacket
// Flow model, a key and its Reverse describe the two directions of one
// connection; Canonical gives a direction-independent form for map lookups.
type FlowKey struct {
	Proto            Protocol
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
}

// FlowOf extracts the flow key of a packet. For ICMP and raw packets the
// ports are zero, so all ICMP between two hosts shares one key — matching
// how the TSPU applies IP-based blocking "regardless of packet payload or
// TCP ports" (§5.2).
func FlowOf(p *Packet) FlowKey {
	return FlowKey{
		Proto:   p.IP.Protocol,
		Src:     p.IP.Src,
		Dst:     p.IP.Dst,
		SrcPort: p.SrcPort(),
		DstPort: p.DstPort(),
	}
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Proto: k.Proto, Src: k.Dst, Dst: k.Src, SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// Canonical returns a direction-independent key: the endpoint with the lower
// (addr, port) sorts first. Both directions of a flow canonicalize to the
// same value.
func (k FlowKey) Canonical() FlowKey {
	if k.Src.Compare(k.Dst) < 0 {
		return k
	}
	if k.Src.Compare(k.Dst) == 0 && k.SrcPort <= k.DstPort {
		return k
	}
	return k.Reverse()
}

func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s:%d>%s:%d", k.Proto, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// FlowKey4 is a compact, direction-independent IPv4 flow key: the full
// 5-tuple packed into 16 bytes with the lower (addr, port) endpoint first.
// It identifies exactly the same equivalence classes as
// FlowOf(p).Canonical() for IPv4 packets (the only kind this module models)
// but hashes and compares as two machine words instead of a 56-byte struct
// holding netip.Addr values, which is what makes it the conntrack map key on
// the per-packet hot path.
type FlowKey4 struct {
	// hi is src<<32|dst of the canonical direction; lo packs
	// proto<<32|srcPort<<16|dstPort.
	hi, lo uint64
}

// addr4 returns the big-endian uint32 form of an IPv4 (or 4-in-6) address.
// Non-IPv4 addresses (including the zero Addr) fold to 0 rather than
// panicking: they cannot occur in simulator-built traffic, and a middlebox
// must not crash on garbage.
func addr4(a netip.Addr) uint32 {
	if a.Is4() || a.Is4In6() {
		b := a.As4()
		return binary.BigEndian.Uint32(b[:])
	}
	return 0
}

// FlowKey4Of extracts the canonical compact flow key of a packet.
//
//tspuvet:hotpath
func FlowKey4Of(p *Packet) FlowKey4 {
	src, dst := addr4(p.IP.Src), addr4(p.IP.Dst)
	sp, dp := p.SrcPort(), p.DstPort()
	if src > dst || (src == dst && sp > dp) {
		src, dst = dst, src
		sp, dp = dp, sp
	}
	return FlowKey4{
		hi: uint64(src)<<32 | uint64(dst),
		lo: uint64(p.IP.Protocol)<<32 | uint64(sp)<<16 | uint64(dp),
	}
}

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit mixer.
// It is the hash behind FlowKey4 sharding; xoshiro's authors recommend it for
// exactly this kind of avalanche duty, and it is a pure function so sharded
// structures stay deterministic across runs.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash returns a well-mixed 64-bit hash of the full canonical 5-tuple. Used
// to derive per-flow deterministic random streams: the same flow hashes the
// same regardless of which shard, worker, or batch observes it.
//
//tspuvet:hotpath
func (k FlowKey4) Hash() uint64 {
	return mix64(k.hi ^ mix64(k.lo))
}

// PairHash returns a well-mixed hash of the key's canonical (src, dst)
// address word only. Every key between the same host pair — both directions
// of every flow, and every fragment of every queue between them (fragment
// queues are keyed by (src, dst, IPID)) — shares a PairHash. That makes it
// the shard-selection function for the sharded conntrack and the batch
// engine: all middlebox state is keyed by (src, dst, ...), so partitioning
// traffic by PairHash guarantees two workers never touch the same entry,
// fragment queue, or reassembly buffer.
//
//tspuvet:hotpath
func (k FlowKey4) PairHash() uint64 {
	return mix64(k.hi)
}

// FragKey identifies a fragment queue. Per §5.3.1 the TSPU keys its fragment
// state on the (source, destination, IPID) tuple.
type FragKey struct {
	Src, Dst netip.Addr
	ID       uint16
}

// FragKeyOf extracts the fragment-queue key of a packet.
func FragKeyOf(p *Packet) FragKey {
	return FragKey{Src: p.IP.Src, Dst: p.IP.Dst, ID: p.IP.ID}
}

// MustAddr parses a dotted-quad address, panicking on error. For use in
// tests, topology literals, and examples.
func MustAddr(s string) netip.Addr {
	a, err := netip.ParseAddr(s)
	if err != nil {
		panic(err)
	}
	if !a.Is4() {
		panic("packet: not an IPv4 address: " + s)
	}
	return a
}
