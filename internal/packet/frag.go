package packet

import (
	"errors"
	"fmt"
	"sort"
)

// Fragment splits p into IP fragments whose payloads are at most mtuPayload
// bytes each (mtuPayload excludes the 20-byte IP header and must be a
// multiple of 8, as fragment offsets are expressed in 8-byte units). The
// first fragment carries the transport header; subsequent fragments carry
// raw payload bytes, exactly as on the wire. TTLs are copied from p.
func Fragment(p *Packet, mtuPayload int) ([]*Packet, error) {
	if mtuPayload < 8 || mtuPayload%8 != 0 {
		return nil, fmt.Errorf("packet: fragment payload size %d must be a positive multiple of 8", mtuPayload)
	}
	if p.IP.DF {
		return nil, errors.New("packet: DF set, cannot fragment")
	}
	whole, err := p.marshalTransport()
	if err != nil {
		return nil, err
	}
	if len(whole) <= mtuPayload {
		return []*Packet{p.Clone()}, nil
	}
	var frags []*Packet
	for off := 0; off < len(whole); off += mtuPayload {
		end := off + mtuPayload
		last := false
		if end >= len(whole) {
			end = len(whole)
			last = true
		}
		f := &Packet{IP: p.IP}
		f.IP.FragOffset = uint16(off)
		f.IP.MF = !last
		f.RawPayload = append([]byte(nil), whole[off:end]...)
		frags = append(frags, f)
	}
	return frags, nil
}

// FragmentCount splits p into exactly n fragments of near-equal size. It is
// the primitive behind the remote fragmentation probes (§7.2), which need
// "a SYN packet broken into 45 vs 46 fragments". The transport payload is
// padded so that n 8-byte-aligned fragments exist.
func FragmentCount(p *Packet, n int) ([]*Packet, error) {
	if n < 2 {
		return nil, fmt.Errorf("packet: FragmentCount needs n >= 2, got %d", n)
	}
	// Each non-final fragment must carry a multiple of 8 bytes. If the
	// transport segment is too short to split n ways, grow the application
	// payload first (the paper's probes are "SYN packets with random
	// payloads" for exactly this reason) so checksums stay valid.
	need := n * 8
	src := p
	if p.TotalLen()-20 < need {
		src = p.Clone()
		pad := make([]byte, need-(p.TotalLen()-20))
		switch {
		case src.TCP != nil:
			src.TCP.Payload = append(src.TCP.Payload, pad...)
		case src.UDP != nil:
			src.UDP.Payload = append(src.UDP.Payload, pad...)
		case src.ICMP != nil:
			src.ICMP.Payload = append(src.ICMP.Payload, pad...)
		default:
			src.RawPayload = append(src.RawPayload, pad...)
		}
	}
	whole, err := src.marshalTransport()
	if err != nil {
		return nil, err
	}
	per := (len(whole) / n / 8) * 8
	if per == 0 {
		per = 8
	}
	var frags []*Packet
	off := 0
	for i := 0; i < n; i++ {
		end := off + per
		if i == n-1 {
			end = len(whole)
		}
		f := &Packet{IP: p.IP}
		f.IP.FragOffset = uint16(off)
		f.IP.MF = i != n-1
		f.RawPayload = append([]byte(nil), whole[off:end]...)
		frags = append(frags, f)
		off = end
	}
	return frags, nil
}

// Reassemble combines fragments (any order) back into a whole packet,
// parsing the transport layer from the concatenated bytes. It returns an
// error on gaps, overlaps, or a missing final fragment. This models what a
// reassembling endpoint or DPI does — notably, the TSPU forwards without
// doing this (§5.3.1).
func Reassemble(frags []*Packet) (*Packet, error) {
	if len(frags) == 0 {
		return nil, errors.New("packet: no fragments")
	}
	sorted := append([]*Packet(nil), frags...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].IP.FragOffset < sorted[j].IP.FragOffset })
	var buf []byte
	expect := 0
	sawLast := false
	for i, f := range sorted {
		off := int(f.IP.FragOffset)
		payload := f.RawPayload
		if off == 0 && len(payload) == 0 {
			// First fragment may exist only in parsed form.
			var err error
			payload, err = f.marshalTransport()
			if err != nil {
				return nil, err
			}
		}
		if off != expect {
			if off < expect {
				return nil, fmt.Errorf("packet: overlapping fragment at offset %d", off)
			}
			return nil, fmt.Errorf("packet: gap before offset %d", off)
		}
		buf = append(buf, payload...)
		expect += len(payload)
		if !f.IP.MF {
			if i != len(sorted)-1 {
				return nil, errors.New("packet: data after final fragment")
			}
			sawLast = true
		}
	}
	if !sawLast {
		return nil, errors.New("packet: missing final fragment")
	}
	first := sorted[0]
	whole := &Packet{IP: first.IP}
	whole.IP.MF = false
	whole.IP.FragOffset = 0
	// Re-parse the transport from the reassembled bytes by round-tripping
	// through the wire format.
	tmp := &Packet{IP: whole.IP, RawPayload: buf}
	wire, err := tmp.Marshal()
	if err != nil {
		return nil, err
	}
	parsed, err := Parse(wire)
	if err != nil {
		return nil, fmt.Errorf("packet: reassembled parse: %w", err)
	}
	return parsed, nil
}
