package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

// The allocation budgets pinned here are what the device benchmarks rely on:
// a packet round-tripped through MarshalAppend/ParseInto with recycled
// buffers must not touch the heap, and neither may CloneInto or FlowKey4Of.

func allocTestPacket() *Packet {
	src := MustAddr("10.0.0.2")
	dst := MustAddr("203.0.113.10")
	payload := bytes.Repeat([]byte{0xab}, 1400)
	p := NewTCP(src, dst, 40000, 443, FlagsPSHACK, 1000, 2000, payload)
	p.IP.TTL = 64
	return p
}

func TestMarshalAppendParseIntoRoundTripNoAllocs(t *testing.T) {
	p := allocTestPacket()
	var buf []byte
	scratch := new(Packet)
	// Warm up: grow buf and scratch's transport buffers once.
	var err error
	if buf, err = p.MarshalAppend(buf[:0]); err != nil {
		t.Fatal(err)
	}
	if err := ParseInto(scratch, buf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(500, func() {
		buf, err = p.MarshalAppend(buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := ParseInto(scratch, buf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Marshal/Parse round trip allocates %v/op, want 0", allocs)
	}
	if scratch.TCP == nil || !bytes.Equal(scratch.TCP.Payload, p.TCP.Payload) {
		t.Fatal("round trip corrupted payload")
	}
}

func TestCloneIntoNoAllocs(t *testing.T) {
	p := allocTestPacket()
	dst := new(Packet)
	p.CloneInto(dst) // warm up: allocate dst's transport struct and slices
	allocs := testing.AllocsPerRun(500, func() {
		p.CloneInto(dst)
	})
	if allocs != 0 {
		t.Fatalf("CloneInto allocates %v/op, want 0", allocs)
	}
	if !bytes.Equal(dst.TCP.Payload, p.TCP.Payload) || dst.TCP.SrcPort != p.TCP.SrcPort {
		t.Fatal("CloneInto corrupted packet")
	}
	// Deep copy: mutating the clone must not touch the original.
	dst.TCP.Payload[0] ^= 0xff
	if p.TCP.Payload[0] == dst.TCP.Payload[0] {
		t.Fatal("CloneInto aliased the payload")
	}
}

func TestCloneIntoPreservesRawPayloadNilness(t *testing.T) {
	p := allocTestPacket()
	dst := new(Packet)
	dst.RawPayload = []byte{1, 2, 3}
	p.CloneInto(dst)
	if dst.RawPayload != nil {
		t.Fatal("CloneInto left stale RawPayload on a nil-RawPayload source")
	}
}

func TestFlowKey4OfNoAllocs(t *testing.T) {
	p := allocTestPacket()
	allocs := testing.AllocsPerRun(500, func() {
		_ = FlowKey4Of(p)
	})
	if allocs != 0 {
		t.Fatalf("FlowKey4Of allocates %v/op, want 0", allocs)
	}
}

// TestFlowKey4Equivalence property-checks that FlowKey4 partitions packets
// into exactly the equivalence classes of FlowOf(p).Canonical(): two IPv4
// packets share a compact key iff they share a canonical FlowKey.
func TestFlowKey4Equivalence(t *testing.T) {
	mk := func(a, b [4]byte, sp, dp uint16, proto uint8, udp bool) *Packet {
		src := netip.AddrFrom4(a)
		dst := netip.AddrFrom4(b)
		if udp {
			return NewUDP(src, dst, sp, dp, nil)
		}
		p := NewTCP(src, dst, sp, dp, FlagSYN, 1, 0, nil)
		_ = proto
		return p
	}
	f := func(a1, a2 [4]byte, sp1, dp1, sp2, dp2 uint16, udp1, udp2 bool) bool {
		p1 := mk(a1, a2, sp1, dp1, 0, udp1)
		p2 := mk(a2, a1, sp2, dp2, 0, udp2)
		sameSlow := FlowOf(p1).Canonical() == FlowOf(p2).Canonical()
		sameFast := FlowKey4Of(p1) == FlowKey4Of(p2)
		return sameSlow == sameFast
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// TestFlowKey4DirectionIndependent pins the canonicalization directly: a
// packet and its reversed twin share a key; distinct flows do not.
func TestFlowKey4DirectionIndependent(t *testing.T) {
	a, b := MustAddr("10.0.0.2"), MustAddr("203.0.113.10")
	fwd := NewTCP(a, b, 40000, 443, FlagSYN, 1, 0, nil)
	rev := NewTCP(b, a, 443, 40000, FlagsSYNACK, 1, 2, nil)
	if FlowKey4Of(fwd) != FlowKey4Of(rev) {
		t.Fatal("two directions of one flow got different keys")
	}
	other := NewTCP(a, b, 40001, 443, FlagSYN, 1, 0, nil)
	if FlowKey4Of(fwd) == FlowKey4Of(other) {
		t.Fatal("distinct flows collided")
	}
	u := NewUDP(a, b, 40000, 443, nil)
	if FlowKey4Of(fwd) == FlowKey4Of(u) {
		t.Fatal("TCP and UDP flows on the same tuple collided")
	}
}
