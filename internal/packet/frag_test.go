package packet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func bigTCP(n int) *Packet {
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i)
	}
	p := NewTCP(srcA, dstA, 40000, 443, FlagsPSHACK, 100, 200, payload)
	p.IP.ID = 4242
	return p
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	p := bigTCP(3000)
	frags, err := Fragment(p, 1400*8/8) // 1400 not multiple of 8
	if err == nil && 1400%8 != 0 {
		t.Fatal("expected error for non-multiple-of-8 mtu")
	}
	frags, err = Fragment(p, 1400-(1400%8))
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 2 {
		t.Fatalf("expected multiple fragments, got %d", len(frags))
	}
	for i, f := range frags {
		if (i == len(frags)-1) == f.IP.MF {
			t.Fatalf("fragment %d MF flag wrong", i)
		}
		if f.IP.ID != p.IP.ID {
			t.Fatal("fragment lost IP ID")
		}
	}
	whole, err := Reassemble(frags)
	if err != nil {
		t.Fatal(err)
	}
	if whole.TCP == nil || !bytes.Equal(whole.TCP.Payload, p.TCP.Payload) {
		t.Fatal("reassembled payload mismatch")
	}
	if whole.TCP.Seq != p.TCP.Seq || whole.TCP.Flags != p.TCP.Flags {
		t.Fatal("reassembled header mismatch")
	}
}

func TestFragmentSmallPacketPassthrough(t *testing.T) {
	p := NewTCP(srcA, dstA, 1, 2, FlagSYN, 0, 0, nil)
	frags, err := Fragment(p, 576)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || frags[0].IsFragment() {
		t.Fatal("small packet should not be fragmented")
	}
}

func TestFragmentDFRefused(t *testing.T) {
	p := bigTCP(3000)
	p.IP.DF = true
	if _, err := Fragment(p, 1392); err == nil {
		t.Fatal("DF packet fragmented")
	}
}

func TestFragmentCountExact(t *testing.T) {
	for _, n := range []int{2, 3, 10, 45, 46} {
		p := NewTCP(srcA, dstA, 33000, 7547, FlagSYN, 1, 0, nil)
		frags, err := FragmentCount(p, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(frags) != n {
			t.Fatalf("n=%d: got %d fragments", n, len(frags))
		}
		for i, f := range frags {
			if (i == len(frags)-1) == f.IP.MF {
				t.Fatalf("n=%d fragment %d MF wrong", n, i)
			}
			if i > 0 && f.IP.FragOffset%8 != 0 {
				t.Fatalf("n=%d fragment %d offset %d not 8-aligned", n, i, f.IP.FragOffset)
			}
		}
		whole, err := Reassemble(frags)
		if err != nil {
			t.Fatalf("n=%d reassemble: %v", n, err)
		}
		if whole.TCP == nil || !whole.TCP.Flags.Has(FlagSYN) || whole.TCP.DstPort != 7547 {
			t.Fatalf("n=%d reassembled SYN wrong", n)
		}
	}
}

func TestReassembleDetectsGap(t *testing.T) {
	p := bigTCP(4000)
	frags, _ := Fragment(p, 1000-(1000%8))
	missing := append([]*Packet(nil), frags[:1]...)
	missing = append(missing, frags[2:]...)
	if _, err := Reassemble(missing); err == nil {
		t.Fatal("gap not detected")
	}
}

func TestReassembleDetectsMissingLast(t *testing.T) {
	p := bigTCP(4000)
	frags, _ := Fragment(p, 992)
	if _, err := Reassemble(frags[:len(frags)-1]); err == nil {
		t.Fatal("missing last fragment not detected")
	}
}

func TestReassembleDetectsOverlap(t *testing.T) {
	p := bigTCP(4000)
	frags, _ := Fragment(p, 992)
	dup := append([]*Packet(nil), frags...)
	dup = append(dup, frags[1].Clone())
	if _, err := Reassemble(dup); err == nil {
		t.Fatal("duplicate fragment not detected")
	}
}

func TestFragmentsAreWireRealistic(t *testing.T) {
	// Every fragment must marshal and parse as an independent IP packet.
	p := bigTCP(5000)
	frags, _ := Fragment(p, 1480)
	for i, f := range frags {
		b, err := f.Marshal()
		if err != nil {
			t.Fatalf("fragment %d marshal: %v", i, err)
		}
		q, err := Parse(b)
		if err != nil {
			t.Fatalf("fragment %d parse: %v", i, err)
		}
		if q.IP.FragOffset != f.IP.FragOffset || q.IP.MF != f.IP.MF {
			t.Fatalf("fragment %d lost frag fields", i)
		}
	}
}

func TestFirstFragmentKeepsTransportBytes(t *testing.T) {
	// First fragment (offset 0, MF=1) of a TCP packet must start with the
	// TCP header so a DPI can read ports without reassembly.
	p := bigTCP(3000)
	frags, _ := Fragment(p, 1480)
	first := frags[0]
	if !first.IsFirstFragment() {
		t.Fatal("first fragment flags wrong")
	}
	if len(first.RawPayload) < 20 {
		t.Fatal("first fragment too short for TCP header")
	}
	sport := uint16(first.RawPayload[0])<<8 | uint16(first.RawPayload[1])
	dport := uint16(first.RawPayload[2])<<8 | uint16(first.RawPayload[3])
	if sport != 40000 || dport != 443 {
		t.Fatalf("first fragment ports %d>%d", sport, dport)
	}
}

func TestPropertyFragmentReassemble(t *testing.T) {
	f := func(size uint16, mtu8 uint8) bool {
		n := int(size)%4000 + 100
		mtu := (int(mtu8)%180 + 4) * 8 // 32..1464
		p := bigTCP(n)
		frags, err := Fragment(p, mtu)
		if err != nil {
			return false
		}
		whole, err := Reassemble(frags)
		if err != nil {
			return false
		}
		return whole.TCP != nil && bytes.Equal(whole.TCP.Payload, p.TCP.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFragmentCoverage(t *testing.T) {
	// Fragments must partition [0, len) with 8-aligned non-final sizes.
	f := func(size uint16) bool {
		n := int(size)%3000 + 1500
		p := bigTCP(n)
		frags, err := Fragment(p, 512)
		if err != nil {
			return false
		}
		expect := 0
		for i, fr := range frags {
			if int(fr.IP.FragOffset) != expect {
				return false
			}
			if i < len(frags)-1 && len(fr.RawPayload)%8 != 0 {
				return false
			}
			expect += len(fr.RawPayload)
		}
		return expect == 20+len(p.TCP.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
