// Package packet models IPv4 packets with TCP, UDP, and ICMP transports at
// the wire level: structures serialize to and parse from real header bytes
// (including checksums), fragment and reassemble per RFC 791, and expose flow
// keys for connection tracking. The layering follows the gopacket model —
// each layer owns its header fields and treats the next layer as payload —
// but is specialized to the four protocols the TSPU interacts with.
package packet

import (
	"fmt"
	"net/netip"
	"strings"
)

// Protocol is the IPv4 protocol number of the transport layer.
type Protocol uint8

// Protocol numbers per the IANA registry.
const (
	ProtoICMP Protocol = 1
	ProtoTCP  Protocol = 6
	ProtoUDP  Protocol = 17
)

func (p Protocol) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TCPFlags is the 8-bit TCP flag field.
type TCPFlags uint8

// TCP flag bits.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
	FlagECE
	FlagCWR
)

// Common flag combinations used throughout the measurement code.
const (
	FlagsSYN    = FlagSYN
	FlagsSYNACK = FlagSYN | FlagACK
	FlagsRSTACK = FlagRST | FlagACK
	FlagsPSHACK = FlagPSH | FlagACK
	FlagsFINACK = FlagFIN | FlagACK
)

// Has reports whether all bits in want are set.
func (f TCPFlags) Has(want TCPFlags) bool { return f&want == want }

func (f TCPFlags) String() string {
	if f == 0 {
		return "NULL"
	}
	names := []struct {
		bit  TCPFlags
		name string
	}{
		{FlagSYN, "SYN"}, {FlagACK, "ACK"}, {FlagRST, "RST"},
		{FlagPSH, "PSH"}, {FlagFIN, "FIN"}, {FlagURG, "URG"},
		{FlagECE, "ECE"}, {FlagCWR, "CWR"},
	}
	var parts []string
	for _, n := range names {
		if f&n.bit != 0 {
			parts = append(parts, n.name)
		}
	}
	return strings.Join(parts, "/")
}

// IPv4 is an IPv4 header. Fragmentation state lives in ID, MF, and FragOffset
// (the byte offset, always a multiple of 8 on the wire).
type IPv4 struct {
	TOS        uint8
	ID         uint16
	DF         bool // don't-fragment
	MF         bool // more-fragments
	FragOffset uint16
	TTL        uint8
	Protocol   Protocol
	Src, Dst   netip.Addr
}

// TCP is a TCP header plus payload. Options carries raw option bytes and must
// be a multiple of 4 bytes long when serialized.
type TCP struct {
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            TCPFlags
	Window           uint16
	Urgent           uint16
	Options          []byte
	Payload          []byte
}

// UDP is a UDP header plus payload.
type UDP struct {
	SrcPort, DstPort uint16
	Payload          []byte
}

// ICMPType is the ICMP message type.
type ICMPType uint8

// ICMP types used by the simulator.
const (
	ICMPEchoReply   ICMPType = 0
	ICMPUnreachable ICMPType = 3
	ICMPEchoRequest ICMPType = 8
	ICMPTimeExceed  ICMPType = 11
)

// ICMP is an ICMP message. For TimeExceeded/Unreachable, Payload carries the
// embedded original IP header + 8 bytes, as routers put on the wire.
type ICMP struct {
	Type    ICMPType
	Code    uint8
	ID, Seq uint16 // echo request/reply only
	Payload []byte
}

// Packet is a full IPv4 packet: exactly one of TCP, UDP, ICMP is non-nil, or
// all are nil and RawPayload holds opaque bytes (used for non-first fragments,
// whose transport header lives in the zero-offset fragment).
type Packet struct {
	IP         IPv4
	TCP        *TCP
	UDP        *UDP
	ICMP       *ICMP
	RawPayload []byte
}

// Clone deep-copies the packet so middleboxes can mutate their copy without
// aliasing the sender's buffers.
func (p *Packet) Clone() *Packet {
	q := &Packet{}
	p.CloneInto(q)
	return q
}

// CloneInto deep-copies p into dst, reusing dst's transport structs and the
// capacity of its byte slices. A caller cycling packets through a scratch
// Packet pays no allocations once the scratch buffers have grown to the
// working set's payload sizes.
func (p *Packet) CloneInto(dst *Packet) {
	dst.IP = p.IP
	if p.TCP != nil {
		t := dst.TCP
		if t == nil {
			t = new(TCP)
		}
		opts, pay := t.Options[:0], t.Payload[:0]
		*t = *p.TCP
		t.Options = append(opts, p.TCP.Options...)
		t.Payload = append(pay, p.TCP.Payload...)
		dst.TCP = t
	} else {
		dst.TCP = nil
	}
	if p.UDP != nil {
		u := dst.UDP
		if u == nil {
			u = new(UDP)
		}
		pay := u.Payload[:0]
		*u = *p.UDP
		u.Payload = append(pay, p.UDP.Payload...)
		dst.UDP = u
	} else {
		dst.UDP = nil
	}
	if p.ICMP != nil {
		ic := dst.ICMP
		if ic == nil {
			ic = new(ICMP)
		}
		pay := ic.Payload[:0]
		*ic = *p.ICMP
		ic.Payload = append(pay, p.ICMP.Payload...)
		dst.ICMP = ic
	} else {
		dst.ICMP = nil
	}
	if p.RawPayload == nil {
		// Preserve nil-ness: consumers distinguish "no raw payload" (nil)
		// from a zero-length one.
		dst.RawPayload = nil
	} else {
		dst.RawPayload = append(dst.RawPayload[:0], p.RawPayload...)
	}
}

// IsFragment reports whether the packet is part of a fragmented IP packet
// (either a non-final fragment or a fragment at non-zero offset).
func (p *Packet) IsFragment() bool {
	return p.IP.MF || p.IP.FragOffset != 0
}

// IsFirstFragment reports whether this is the zero-offset fragment of a
// fragmented packet.
func (p *Packet) IsFirstFragment() bool {
	return p.IP.MF && p.IP.FragOffset == 0
}

// PayloadLen returns the length in bytes of the IP payload.
func (p *Packet) PayloadLen() int {
	switch {
	case p.TCP != nil:
		return 20 + len(p.TCP.Options) + len(p.TCP.Payload)
	case p.UDP != nil:
		return 8 + len(p.UDP.Payload)
	case p.ICMP != nil:
		return 8 + len(p.ICMP.Payload)
	default:
		return len(p.RawPayload)
	}
}

// TotalLen returns the on-wire total length (IP header + payload).
func (p *Packet) TotalLen() int { return 20 + p.PayloadLen() }

// SrcPort returns the transport source port, or 0 for ICMP/raw packets.
func (p *Packet) SrcPort() uint16 {
	switch {
	case p.TCP != nil:
		return p.TCP.SrcPort
	case p.UDP != nil:
		return p.UDP.SrcPort
	}
	return 0
}

// DstPort returns the transport destination port, or 0 for ICMP/raw packets.
func (p *Packet) DstPort() uint16 {
	switch {
	case p.TCP != nil:
		return p.TCP.DstPort
	case p.UDP != nil:
		return p.UDP.DstPort
	}
	return 0
}

// AppPayload returns the application-layer payload bytes, or nil.
func (p *Packet) AppPayload() []byte {
	switch {
	case p.TCP != nil:
		return p.TCP.Payload
	case p.UDP != nil:
		return p.UDP.Payload
	case p.ICMP != nil:
		return p.ICMP.Payload
	}
	return p.RawPayload
}

// String renders a one-line tcpdump-style summary, used by capture dumps.
func (p *Packet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s > %s", p.IP.Src, p.IP.Dst)
	switch {
	case p.TCP != nil:
		fmt.Fprintf(&b, " TCP %d>%d [%s] seq=%d ack=%d win=%d len=%d",
			p.TCP.SrcPort, p.TCP.DstPort, p.TCP.Flags, p.TCP.Seq, p.TCP.Ack, p.TCP.Window, len(p.TCP.Payload))
	case p.UDP != nil:
		fmt.Fprintf(&b, " UDP %d>%d len=%d", p.UDP.SrcPort, p.UDP.DstPort, len(p.UDP.Payload))
	case p.ICMP != nil:
		fmt.Fprintf(&b, " ICMP type=%d code=%d", p.ICMP.Type, p.ICMP.Code)
	default:
		fmt.Fprintf(&b, " raw len=%d", len(p.RawPayload))
	}
	if p.IsFragment() {
		fmt.Fprintf(&b, " frag id=%d off=%d mf=%v", p.IP.ID, p.IP.FragOffset, p.IP.MF)
	}
	fmt.Fprintf(&b, " ttl=%d", p.IP.TTL)
	return b.String()
}

// NewTCP builds a TCP packet with the defaults experiments use (TTL 64).
func NewTCP(src, dst netip.Addr, sport, dport uint16, flags TCPFlags, seq, ack uint32, payload []byte) *Packet {
	return &Packet{
		IP: IPv4{TTL: 64, Protocol: ProtoTCP, Src: src, Dst: dst},
		TCP: &TCP{
			SrcPort: sport, DstPort: dport,
			Seq: seq, Ack: ack, Flags: flags, Window: 65535,
			Payload: payload,
		},
	}
}

// NewUDP builds a UDP packet with TTL 64.
func NewUDP(src, dst netip.Addr, sport, dport uint16, payload []byte) *Packet {
	return &Packet{
		IP:  IPv4{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst},
		UDP: &UDP{SrcPort: sport, DstPort: dport, Payload: payload},
	}
}

// NewICMPEcho builds an ICMP echo request with TTL 64.
func NewICMPEcho(src, dst netip.Addr, id, seq uint16) *Packet {
	return &Packet{
		IP:   IPv4{TTL: 64, Protocol: ProtoICMP, Src: src, Dst: dst},
		ICMP: &ICMP{Type: ICMPEchoRequest, ID: id, Seq: seq},
	}
}
