package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Errors returned by Parse.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: not IPv4")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadHeader   = errors.New("packet: malformed header")
)

// Marshal serializes the packet to wire bytes with valid IP and transport
// checksums. Non-first fragments marshal their RawPayload verbatim.
func (p *Packet) Marshal() ([]byte, error) {
	payload, err := p.marshalTransport()
	if err != nil {
		return nil, err
	}
	total := 20 + len(payload)
	if total > 65535 {
		return nil, fmt.Errorf("packet: total length %d exceeds 65535", total)
	}
	b := make([]byte, total)
	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.IP.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], p.IP.ID)
	frag := p.IP.FragOffset / 8
	if p.IP.FragOffset%8 != 0 {
		return nil, fmt.Errorf("packet: fragment offset %d not multiple of 8", p.IP.FragOffset)
	}
	if frag > 0x1fff {
		return nil, fmt.Errorf("packet: fragment offset %d too large", p.IP.FragOffset)
	}
	flagsFrag := frag
	if p.IP.DF {
		flagsFrag |= 0x4000
	}
	if p.IP.MF {
		flagsFrag |= 0x2000
	}
	binary.BigEndian.PutUint16(b[6:8], flagsFrag)
	b[8] = p.IP.TTL
	b[9] = uint8(p.IP.Protocol)
	src := p.IP.Src.As4()
	dst := p.IP.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dst[:])
	binary.BigEndian.PutUint16(b[10:12], 0)
	binary.BigEndian.PutUint16(b[10:12], checksum(b[:20]))
	copy(b[20:], payload)
	return b, nil
}

func (p *Packet) marshalTransport() ([]byte, error) {
	if p.IP.FragOffset != 0 {
		// Non-first fragment: opaque payload bytes.
		return p.RawPayload, nil
	}
	switch {
	case p.TCP != nil:
		return p.marshalTCP()
	case p.UDP != nil:
		return p.marshalUDP()
	case p.ICMP != nil:
		return p.marshalICMP()
	default:
		return p.RawPayload, nil
	}
}

func (p *Packet) marshalTCP() ([]byte, error) {
	t := p.TCP
	if len(t.Options)%4 != 0 {
		return nil, fmt.Errorf("packet: TCP options length %d not multiple of 4", len(t.Options))
	}
	if len(t.Options) > 40 {
		return nil, fmt.Errorf("packet: TCP options too long (%d bytes)", len(t.Options))
	}
	hlen := 20 + len(t.Options)
	b := make([]byte, hlen+len(t.Payload))
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = uint8(hlen/4) << 4
	b[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[18:20], t.Urgent)
	copy(b[20:], t.Options)
	copy(b[hlen:], t.Payload)
	cs := pseudoChecksum(p.IP.Src, p.IP.Dst, ProtoTCP, b)
	binary.BigEndian.PutUint16(b[16:18], cs)
	return b, nil
}

func (p *Packet) marshalUDP() ([]byte, error) {
	u := p.UDP
	if 8+len(u.Payload) > 65535 {
		return nil, fmt.Errorf("packet: UDP payload too long")
	}
	b := make([]byte, 8+len(u.Payload))
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(b)))
	copy(b[8:], u.Payload)
	cs := pseudoChecksum(p.IP.Src, p.IP.Dst, ProtoUDP, b)
	if cs == 0 {
		cs = 0xffff // RFC 768: zero checksum means "none"; transmit as all-ones
	}
	binary.BigEndian.PutUint16(b[6:8], cs)
	return b, nil
}

func (p *Packet) marshalICMP() ([]byte, error) {
	ic := p.ICMP
	b := make([]byte, 8+len(ic.Payload))
	b[0] = uint8(ic.Type)
	b[1] = ic.Code
	binary.BigEndian.PutUint16(b[4:6], ic.ID)
	binary.BigEndian.PutUint16(b[6:8], ic.Seq)
	copy(b[8:], ic.Payload)
	binary.BigEndian.PutUint16(b[2:4], checksum(b))
	return b, nil
}

// Parse decodes wire bytes into a Packet, verifying the IP header checksum
// and, for zero-offset packets, the transport checksum.
func Parse(b []byte) (*Packet, error) {
	if len(b) < 20 {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return nil, ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		return nil, ErrBadHeader
	}
	if checksum(b[:ihl]) != 0 {
		return nil, fmt.Errorf("%w: IP header", ErrBadChecksum)
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return nil, fmt.Errorf("%w: total length %d", ErrBadHeader, total)
	}
	flagsFrag := binary.BigEndian.Uint16(b[6:8])
	p := &Packet{IP: IPv4{
		TOS:        b[1],
		ID:         binary.BigEndian.Uint16(b[4:6]),
		DF:         flagsFrag&0x4000 != 0,
		MF:         flagsFrag&0x2000 != 0,
		FragOffset: (flagsFrag & 0x1fff) * 8,
		TTL:        b[8],
		Protocol:   Protocol(b[9]),
		Src:        netip.AddrFrom4([4]byte(b[12:16])),
		Dst:        netip.AddrFrom4([4]byte(b[16:20])),
	}}
	payload := b[ihl:total]
	if p.IP.FragOffset != 0 {
		p.RawPayload = append([]byte(nil), payload...)
		return p, nil
	}
	var err error
	switch p.IP.Protocol {
	case ProtoTCP:
		err = p.parseTCP(payload)
	case ProtoUDP:
		err = p.parseUDP(payload)
	case ProtoICMP:
		err = p.parseICMP(payload)
	default:
		p.RawPayload = append([]byte(nil), payload...)
	}
	if err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Packet) parseTCP(b []byte) error {
	if len(b) < 20 {
		return fmt.Errorf("%w: TCP header", ErrTruncated)
	}
	doff := int(b[12]>>4) * 4
	if doff < 20 || doff > len(b) {
		return fmt.Errorf("%w: TCP data offset %d", ErrBadHeader, doff)
	}
	// Only verify the transport checksum on unfragmented packets: a
	// first-fragment's TCP checksum covers bytes not present here.
	if !p.IP.MF && pseudoChecksum(p.IP.Src, p.IP.Dst, ProtoTCP, b) != 0 {
		return fmt.Errorf("%w: TCP", ErrBadChecksum)
	}
	p.TCP = &TCP{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   TCPFlags(b[13]),
		Window:  binary.BigEndian.Uint16(b[14:16]),
		Urgent:  binary.BigEndian.Uint16(b[18:20]),
		Options: append([]byte(nil), b[20:doff]...),
		Payload: append([]byte(nil), b[doff:]...),
	}
	return nil
}

func (p *Packet) parseUDP(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("%w: UDP header", ErrTruncated)
	}
	ulen := int(binary.BigEndian.Uint16(b[4:6]))
	if ulen < 8 || ulen > len(b) {
		return fmt.Errorf("%w: UDP length %d", ErrBadHeader, ulen)
	}
	if cs := binary.BigEndian.Uint16(b[6:8]); cs != 0 && !p.IP.MF {
		if pseudoChecksum(p.IP.Src, p.IP.Dst, ProtoUDP, b[:ulen]) != 0 {
			return fmt.Errorf("%w: UDP", ErrBadChecksum)
		}
	}
	p.UDP = &UDP{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Payload: append([]byte(nil), b[8:ulen]...),
	}
	return nil
}

func (p *Packet) parseICMP(b []byte) error {
	if len(b) < 8 {
		return fmt.Errorf("%w: ICMP header", ErrTruncated)
	}
	if checksum(b) != 0 {
		return fmt.Errorf("%w: ICMP", ErrBadChecksum)
	}
	p.ICMP = &ICMP{
		Type:    ICMPType(b[0]),
		Code:    b[1],
		ID:      binary.BigEndian.Uint16(b[4:6]),
		Seq:     binary.BigEndian.Uint16(b[6:8]),
		Payload: append([]byte(nil), b[8:]...),
	}
	return nil
}

// checksum computes the Internet checksum (RFC 1071) of b. Computing it over
// data that already includes a valid checksum field yields zero.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header.
func pseudoChecksum(src, dst netip.Addr, proto Protocol, seg []byte) uint16 {
	var sum uint32
	s, d := src.As4(), dst.As4()
	sum += uint32(binary.BigEndian.Uint16(s[0:2])) + uint32(binary.BigEndian.Uint16(s[2:4]))
	sum += uint32(binary.BigEndian.Uint16(d[0:2])) + uint32(binary.BigEndian.Uint16(d[2:4]))
	sum += uint32(proto)
	sum += uint32(len(seg))
	for i := 0; i+1 < len(seg); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(seg[i : i+2]))
	}
	if len(seg)%2 == 1 {
		sum += uint32(seg[len(seg)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
