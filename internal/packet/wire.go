package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"slices"
)

// Errors returned by Parse.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrBadVersion  = errors.New("packet: not IPv4")
	ErrBadChecksum = errors.New("packet: bad checksum")
	ErrBadHeader   = errors.New("packet: malformed header")
)

// Detailed failures, predeclared so the zero-alloc marshal/parse paths stay
// allocation-free even on malformed input: an adversarial flood of bad
// packets must not perturb the simulator's timing any more than good ones
// would. Each wraps its base sentinel so errors.Is keeps working; the
// offending value (length, offset) is omitted from the message — callers
// that need it still hold the packet.
var (
	errTotalTooLong    = errors.New("packet: total length exceeds 65535")
	errFragNotAligned  = errors.New("packet: fragment offset not multiple of 8")
	errFragTooLarge    = errors.New("packet: fragment offset too large")
	errTCPOptionsAlign = errors.New("packet: TCP options length not multiple of 4")
	errTCPOptionsLong  = errors.New("packet: TCP options too long")
	errUDPPayloadLong  = errors.New("packet: UDP payload too long")
	errIPChecksum      = fmt.Errorf("%w: IP header", ErrBadChecksum)
	errIPTotalLen      = fmt.Errorf("%w: total length", ErrBadHeader)
	errTCPTruncated    = fmt.Errorf("%w: TCP header", ErrTruncated)
	errTCPDataOff      = fmt.Errorf("%w: TCP data offset", ErrBadHeader)
	errTCPChecksum     = fmt.Errorf("%w: TCP", ErrBadChecksum)
	errUDPTruncated    = fmt.Errorf("%w: UDP header", ErrTruncated)
	errUDPLength       = fmt.Errorf("%w: UDP length", ErrBadHeader)
	errUDPChecksum     = fmt.Errorf("%w: UDP", ErrBadChecksum)
	errICMPTruncated   = fmt.Errorf("%w: ICMP header", ErrTruncated)
	errICMPChecksum    = fmt.Errorf("%w: ICMP", ErrBadChecksum)
)

// Marshal serializes the packet to wire bytes with valid IP and transport
// checksums. Non-first fragments marshal their RawPayload verbatim.
func (p *Packet) Marshal() ([]byte, error) {
	return p.MarshalAppend(nil)
}

// MarshalAppend appends the packet's wire bytes to dst and returns the
// extended slice. It is the allocation-free serialization path: a caller
// that recycles dst (b = b[:0]) pays nothing once the buffer has grown to
// the working packet size. All header bytes are written explicitly, so dst's
// stale contents never leak into the output.
//
//tspuvet:hotpath
func (p *Packet) MarshalAppend(dst []byte) ([]byte, error) {
	plen, err := p.wirePayloadLen()
	if err != nil {
		return nil, err
	}
	total := 20 + plen
	if total > 65535 {
		return nil, errTotalTooLong
	}
	frag := p.IP.FragOffset / 8
	if p.IP.FragOffset%8 != 0 {
		return nil, errFragNotAligned
	}
	if frag > 0x1fff {
		return nil, errFragTooLarge
	}

	base := len(dst)
	dst = slices.Grow(dst, total)[:base+total]
	b := dst[base:]
	b[0] = 0x45 // version 4, IHL 5
	b[1] = p.IP.TOS
	binary.BigEndian.PutUint16(b[2:4], uint16(total))
	binary.BigEndian.PutUint16(b[4:6], p.IP.ID)
	flagsFrag := frag
	if p.IP.DF {
		flagsFrag |= 0x4000
	}
	if p.IP.MF {
		flagsFrag |= 0x2000
	}
	binary.BigEndian.PutUint16(b[6:8], flagsFrag)
	b[8] = p.IP.TTL
	b[9] = uint8(p.IP.Protocol)
	src := p.IP.Src.As4()
	dstAddr := p.IP.Dst.As4()
	copy(b[12:16], src[:])
	copy(b[16:20], dstAddr[:])
	binary.BigEndian.PutUint16(b[10:12], 0)
	binary.BigEndian.PutUint16(b[10:12], checksum(b[:20]))
	p.marshalTransportInto(b[20:])
	return dst, nil
}

// wirePayloadLen returns the transport-payload length Marshal will emit,
// validating the transport-level invariants up front so marshalTransportInto
// can write without error paths.
func (p *Packet) wirePayloadLen() (int, error) {
	if p.IP.FragOffset != 0 {
		// Non-first fragment: opaque payload bytes.
		return len(p.RawPayload), nil
	}
	switch {
	case p.TCP != nil:
		t := p.TCP
		if len(t.Options)%4 != 0 {
			return 0, errTCPOptionsAlign
		}
		if len(t.Options) > 40 {
			return 0, errTCPOptionsLong
		}
		return 20 + len(t.Options) + len(t.Payload), nil
	case p.UDP != nil:
		if 8+len(p.UDP.Payload) > 65535 {
			return 0, errUDPPayloadLong
		}
		return 8 + len(p.UDP.Payload), nil
	case p.ICMP != nil:
		return 8 + len(p.ICMP.Payload), nil
	default:
		return len(p.RawPayload), nil
	}
}

// marshalTransport returns the transport segment bytes (header, options,
// payload, valid checksum) without the IP header — the unit the fragmenter
// slices into 8-byte-aligned pieces.
func (p *Packet) marshalTransport() ([]byte, error) {
	plen, err := p.wirePayloadLen()
	if err != nil {
		return nil, err
	}
	b := make([]byte, plen)
	p.marshalTransportInto(b)
	return b, nil
}

// marshalTransportInto writes the transport bytes into b, which has exactly
// the length wirePayloadLen reported. Validation already happened there.
func (p *Packet) marshalTransportInto(b []byte) {
	if p.IP.FragOffset != 0 {
		copy(b, p.RawPayload)
		return
	}
	switch {
	case p.TCP != nil:
		p.marshalTCPInto(b)
	case p.UDP != nil:
		p.marshalUDPInto(b)
	case p.ICMP != nil:
		p.marshalICMPInto(b)
	default:
		copy(b, p.RawPayload)
	}
}

func (p *Packet) marshalTCPInto(b []byte) {
	t := p.TCP
	hlen := 20 + len(t.Options)
	binary.BigEndian.PutUint16(b[0:2], t.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], t.DstPort)
	binary.BigEndian.PutUint32(b[4:8], t.Seq)
	binary.BigEndian.PutUint32(b[8:12], t.Ack)
	b[12] = uint8(hlen/4) << 4
	b[13] = uint8(t.Flags)
	binary.BigEndian.PutUint16(b[14:16], t.Window)
	binary.BigEndian.PutUint16(b[16:18], 0)
	binary.BigEndian.PutUint16(b[18:20], t.Urgent)
	copy(b[20:], t.Options)
	copy(b[hlen:], t.Payload)
	cs := pseudoChecksum(p.IP.Src, p.IP.Dst, ProtoTCP, b)
	binary.BigEndian.PutUint16(b[16:18], cs)
}

func (p *Packet) marshalUDPInto(b []byte) {
	u := p.UDP
	binary.BigEndian.PutUint16(b[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(b[2:4], u.DstPort)
	binary.BigEndian.PutUint16(b[4:6], uint16(len(b)))
	binary.BigEndian.PutUint16(b[6:8], 0)
	copy(b[8:], u.Payload)
	cs := pseudoChecksum(p.IP.Src, p.IP.Dst, ProtoUDP, b)
	if cs == 0 {
		cs = 0xffff // RFC 768: zero checksum means "none"; transmit as all-ones
	}
	binary.BigEndian.PutUint16(b[6:8], cs)
}

func (p *Packet) marshalICMPInto(b []byte) {
	ic := p.ICMP
	b[0] = uint8(ic.Type)
	b[1] = ic.Code
	binary.BigEndian.PutUint16(b[2:4], 0)
	binary.BigEndian.PutUint16(b[4:6], ic.ID)
	binary.BigEndian.PutUint16(b[6:8], ic.Seq)
	copy(b[8:], ic.Payload)
	binary.BigEndian.PutUint16(b[2:4], checksum(b))
}

// Parse decodes wire bytes into a Packet, verifying the IP header checksum
// and, for zero-offset packets, the transport checksum.
func Parse(b []byte) (*Packet, error) {
	p := new(Packet)
	if err := ParseInto(p, b); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseInto decodes wire bytes into p, reusing p's transport structs and the
// capacity of its payload slices: parsing a stream of packets through one
// scratch Packet is allocation-free once its buffers have grown. On error p
// is left in an unspecified state.
//
//tspuvet:hotpath
func ParseInto(p *Packet, b []byte) error {
	if len(b) < 20 {
		return ErrTruncated
	}
	if b[0]>>4 != 4 {
		return ErrBadVersion
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || len(b) < ihl {
		return ErrBadHeader
	}
	if checksum(b[:ihl]) != 0 {
		return errIPChecksum
	}
	total := int(binary.BigEndian.Uint16(b[2:4]))
	if total < ihl || total > len(b) {
		return errIPTotalLen
	}
	flagsFrag := binary.BigEndian.Uint16(b[6:8])
	p.IP = IPv4{
		TOS:        b[1],
		ID:         binary.BigEndian.Uint16(b[4:6]),
		DF:         flagsFrag&0x4000 != 0,
		MF:         flagsFrag&0x2000 != 0,
		FragOffset: (flagsFrag & 0x1fff) * 8,
		TTL:        b[8],
		Protocol:   Protocol(b[9]),
		Src:        netip.AddrFrom4([4]byte(b[12:16])),
		Dst:        netip.AddrFrom4([4]byte(b[16:20])),
	}
	payload := b[ihl:total]
	if p.IP.FragOffset != 0 {
		p.TCP, p.UDP, p.ICMP = nil, nil, nil
		p.RawPayload = append(p.RawPayload[:0], payload...)
		return nil
	}
	switch p.IP.Protocol {
	case ProtoTCP:
		p.UDP, p.ICMP, p.RawPayload = nil, nil, nil
		return p.parseTCP(payload)
	case ProtoUDP:
		p.TCP, p.ICMP, p.RawPayload = nil, nil, nil
		return p.parseUDP(payload)
	case ProtoICMP:
		p.TCP, p.UDP, p.RawPayload = nil, nil, nil
		return p.parseICMP(payload)
	default:
		p.TCP, p.UDP, p.ICMP = nil, nil, nil
		p.RawPayload = append(p.RawPayload[:0], payload...)
	}
	return nil
}

func (p *Packet) parseTCP(b []byte) error {
	if len(b) < 20 {
		p.TCP = nil
		return errTCPTruncated
	}
	doff := int(b[12]>>4) * 4
	if doff < 20 || doff > len(b) {
		p.TCP = nil
		return errTCPDataOff
	}
	// Only verify the transport checksum on unfragmented packets: a
	// first-fragment's TCP checksum covers bytes not present here.
	if !p.IP.MF && pseudoChecksum(p.IP.Src, p.IP.Dst, ProtoTCP, b) != 0 {
		p.TCP = nil
		return errTCPChecksum
	}
	t := p.TCP
	if t == nil {
		t = new(TCP) //tspuvet:allow hotpath: lazy first-parse init; reused for every later packet through this scratch struct
	}
	opts, pay := t.Options[:0], t.Payload[:0]
	*t = TCP{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Seq:     binary.BigEndian.Uint32(b[4:8]),
		Ack:     binary.BigEndian.Uint32(b[8:12]),
		Flags:   TCPFlags(b[13]),
		Window:  binary.BigEndian.Uint16(b[14:16]),
		Urgent:  binary.BigEndian.Uint16(b[18:20]),
		Options: append(opts, b[20:doff]...),
		Payload: append(pay, b[doff:]...),
	}
	p.TCP = t
	return nil
}

func (p *Packet) parseUDP(b []byte) error {
	if len(b) < 8 {
		p.UDP = nil
		return errUDPTruncated
	}
	ulen := int(binary.BigEndian.Uint16(b[4:6]))
	if ulen < 8 || ulen > len(b) {
		p.UDP = nil
		return errUDPLength
	}
	if cs := binary.BigEndian.Uint16(b[6:8]); cs != 0 && !p.IP.MF {
		if pseudoChecksum(p.IP.Src, p.IP.Dst, ProtoUDP, b[:ulen]) != 0 {
			p.UDP = nil
			return errUDPChecksum
		}
	}
	u := p.UDP
	if u == nil {
		u = new(UDP) //tspuvet:allow hotpath: lazy first-parse init; reused for every later packet through this scratch struct
	}
	pay := u.Payload[:0]
	*u = UDP{
		SrcPort: binary.BigEndian.Uint16(b[0:2]),
		DstPort: binary.BigEndian.Uint16(b[2:4]),
		Payload: append(pay, b[8:ulen]...),
	}
	p.UDP = u
	return nil
}

func (p *Packet) parseICMP(b []byte) error {
	if len(b) < 8 {
		p.ICMP = nil
		return errICMPTruncated
	}
	if checksum(b) != 0 {
		p.ICMP = nil
		return errICMPChecksum
	}
	ic := p.ICMP
	if ic == nil {
		ic = new(ICMP) //tspuvet:allow hotpath: lazy first-parse init; reused for every later packet through this scratch struct
	}
	pay := ic.Payload[:0]
	*ic = ICMP{
		Type:    ICMPType(b[0]),
		Code:    b[1],
		ID:      binary.BigEndian.Uint16(b[4:6]),
		Seq:     binary.BigEndian.Uint16(b[6:8]),
		Payload: append(pay, b[8:]...),
	}
	p.ICMP = ic
	return nil
}

// checksum computes the Internet checksum (RFC 1071) of b. Computing it over
// data that already includes a valid checksum field yields zero.
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// pseudoChecksum computes the TCP/UDP checksum including the IPv4
// pseudo-header.
func pseudoChecksum(src, dst netip.Addr, proto Protocol, seg []byte) uint16 {
	var sum uint32
	s, d := src.As4(), dst.As4()
	sum += uint32(binary.BigEndian.Uint16(s[0:2])) + uint32(binary.BigEndian.Uint16(s[2:4]))
	sum += uint32(binary.BigEndian.Uint16(d[0:2])) + uint32(binary.BigEndian.Uint16(d[2:4]))
	sum += uint32(proto)
	sum += uint32(len(seg))
	for i := 0; i+1 < len(seg); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(seg[i : i+2]))
	}
	if len(seg)%2 == 1 {
		sum += uint32(seg[len(seg)-1]) << 8
	}
	for sum > 0xffff {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}
