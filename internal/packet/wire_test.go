package packet

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"
	"testing/quick"
)

var (
	srcA = MustAddr("10.1.0.2")
	dstA = MustAddr("203.0.113.10")
)

func TestTCPRoundTrip(t *testing.T) {
	p := NewTCP(srcA, dstA, 43210, 443, FlagsPSHACK, 1000, 2000, []byte("hello tls"))
	p.IP.ID = 777
	p.IP.TTL = 57
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.TCP == nil {
		t.Fatal("parsed packet has no TCP layer")
	}
	if q.IP != p.IP {
		t.Fatalf("IP mismatch: %+v vs %+v", q.IP, p.IP)
	}
	if q.TCP.SrcPort != 43210 || q.TCP.DstPort != 443 || q.TCP.Seq != 1000 ||
		q.TCP.Ack != 2000 || q.TCP.Flags != FlagsPSHACK || !bytes.Equal(q.TCP.Payload, []byte("hello tls")) {
		t.Fatalf("TCP mismatch: %+v", q.TCP)
	}
}

func TestUDPRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 1200)
	p := NewUDP(srcA, dstA, 5000, 443, payload)
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.UDP == nil || !bytes.Equal(q.UDP.Payload, payload) {
		t.Fatal("UDP payload mismatch")
	}
}

func TestICMPRoundTrip(t *testing.T) {
	p := NewICMPEcho(srcA, dstA, 9, 3)
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.ICMP == nil || q.ICMP.Type != ICMPEchoRequest || q.ICMP.ID != 9 || q.ICMP.Seq != 3 {
		t.Fatalf("ICMP mismatch: %+v", q.ICMP)
	}
}

func TestCorruptionDetected(t *testing.T) {
	p := NewTCP(srcA, dstA, 1, 2, FlagSYN, 0, 0, nil)
	b, _ := p.Marshal()
	// Flip a bit in the IP header.
	b[8] ^= 0xff
	if _, err := Parse(b); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("IP corruption not detected: %v", err)
	}
	b2, _ := p.Marshal()
	// Flip a bit in the TCP segment.
	b2[25] ^= 0x01
	if _, err := Parse(b2); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("TCP corruption not detected: %v", err)
	}
}

func TestParseTruncated(t *testing.T) {
	if _, err := Parse([]byte{0x45, 0x00}); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	p := NewTCP(srcA, dstA, 1, 2, FlagSYN, 0, 0, nil)
	b, _ := p.Marshal()
	b[0] = 0x65 // version 6
	if _, err := Parse(b); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("want ErrBadVersion, got %v", err)
	}
}

func TestTCPOptionsValidation(t *testing.T) {
	p := NewTCP(srcA, dstA, 1, 2, FlagSYN, 0, 0, nil)
	p.TCP.Options = []byte{1, 2, 3} // not multiple of 4
	if _, err := p.Marshal(); err == nil {
		t.Fatal("odd options length accepted")
	}
	p.TCP.Options = bytes.Repeat([]byte{1}, 44) // > 40
	if _, err := p.Marshal(); err == nil {
		t.Fatal("oversized options accepted")
	}
	p.TCP.Options = []byte{2, 4, 0x05, 0xb4} // MSS option
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.TCP.Options, p.TCP.Options) {
		t.Fatal("options round-trip mismatch")
	}
}

func TestPropertyTCPRoundTrip(t *testing.T) {
	f := func(sport, dport uint16, seq, ack uint32, flags uint8, win uint16, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		p := NewTCP(srcA, dstA, sport, dport, TCPFlags(flags), seq, ack, payload)
		p.TCP.Window = win
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := Parse(b)
		if err != nil {
			return false
		}
		return q.TCP.SrcPort == sport && q.TCP.DstPort == dport &&
			q.TCP.Seq == seq && q.TCP.Ack == ack &&
			q.TCP.Flags == TCPFlags(flags) && q.TCP.Window == win &&
			bytes.Equal(q.TCP.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyChecksumZero(t *testing.T) {
	// The Internet checksum of any marshalled header must verify to zero.
	f := func(id uint16, ttl uint8, payload []byte) bool {
		if len(payload) > 600 {
			payload = payload[:600]
		}
		p := NewUDP(srcA, dstA, 1234, 5678, payload)
		p.IP.ID = id
		if ttl == 0 {
			ttl = 1
		}
		p.IP.TTL = ttl
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		return checksum(b[:20]) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewTCP(srcA, dstA, 1, 2, FlagsPSHACK, 5, 6, []byte{1, 2, 3})
	q := p.Clone()
	q.TCP.Payload[0] = 99
	q.IP.TTL = 1
	if p.TCP.Payload[0] != 1 || p.IP.TTL != 64 {
		t.Fatal("Clone aliases original")
	}
}

func TestFlowKeys(t *testing.T) {
	p := NewTCP(srcA, dstA, 1111, 443, FlagSYN, 0, 0, nil)
	k := FlowOf(p)
	if k.Reverse().Reverse() != k {
		t.Fatal("double reverse not identity")
	}
	if k.Canonical() != k.Reverse().Canonical() {
		t.Fatal("directions canonicalize differently")
	}
	// ICMP shares a portless key.
	e := NewICMPEcho(srcA, dstA, 1, 1)
	if FlowOf(e).SrcPort != 0 || FlowOf(e).DstPort != 0 {
		t.Fatal("ICMP flow key has ports")
	}
}

func TestFlowCanonicalSameAddr(t *testing.T) {
	a := MustAddr("10.0.0.1")
	k := FlowKey{Proto: ProtoTCP, Src: a, Dst: a, SrcPort: 9000, DstPort: 80}
	if k.Canonical() != k.Reverse().Canonical() {
		t.Fatal("same-addr flow canonicalization broken")
	}
}

func TestFlagStrings(t *testing.T) {
	if s := FlagsSYNACK.String(); s != "SYN/ACK" {
		t.Fatalf("SYNACK = %q", s)
	}
	if s := TCPFlags(0).String(); s != "NULL" {
		t.Fatalf("zero flags = %q", s)
	}
	if !FlagsRSTACK.Has(FlagRST) || FlagsRSTACK.Has(FlagSYN) {
		t.Fatal("Has broken")
	}
}

func TestStringSummary(t *testing.T) {
	p := NewTCP(srcA, dstA, 1, 443, FlagSYN, 7, 0, nil)
	s := p.String()
	for _, want := range []string{"10.1.0.2", "203.0.113.10", "SYN", "ttl=64"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}

func TestMustAddrPanics(t *testing.T) {
	for _, bad := range []string{"nonsense", "2001:db8::1"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("MustAddr(%q) did not panic", bad)
				}
			}()
			MustAddr(bad)
		}()
	}
}

func TestRawProtocolRoundTrip(t *testing.T) {
	p := &Packet{
		IP:         IPv4{TTL: 64, Protocol: Protocol(47), Src: srcA, Dst: dstA},
		RawPayload: []byte{0xde, 0xad},
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.RawPayload, p.RawPayload) {
		t.Fatal("raw payload mismatch")
	}
}

func TestProtocolString(t *testing.T) {
	if ProtoTCP.String() != "TCP" || ProtoUDP.String() != "UDP" || ProtoICMP.String() != "ICMP" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(99).String() != "proto(99)" {
		t.Fatal("unknown protocol name wrong")
	}
}

func netipLess(a, b netip.Addr) bool { return a.Compare(b) < 0 }

func TestCanonicalOrdering(t *testing.T) {
	lo, hi := MustAddr("1.1.1.1"), MustAddr("2.2.2.2")
	k := FlowKey{Proto: ProtoTCP, Src: hi, Dst: lo, SrcPort: 1, DstPort: 2}
	c := k.Canonical()
	if !netipLess(c.Src, c.Dst) {
		t.Fatalf("canonical did not order addrs: %v", c)
	}
}
