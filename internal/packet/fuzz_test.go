package packet

import "testing"

// FuzzParse drives the wire parser with arbitrary bytes. The invariant is a
// full round trip: anything that parses must re-marshal and re-parse to the
// same header fields. Run with: go test -fuzz=FuzzParse
func FuzzParse(f *testing.F) {
	seed1, _ := NewTCP(MustAddr("10.0.0.2"), MustAddr("203.0.113.10"), 1, 443, FlagsPSHACK, 5, 6, []byte("hi")).Marshal()
	seed2, _ := NewUDP(MustAddr("10.0.0.2"), MustAddr("203.0.113.10"), 53, 53, []byte("q")).Marshal()
	seed3, _ := NewICMPEcho(MustAddr("10.0.0.2"), MustAddr("203.0.113.10"), 1, 1).Marshal()
	frags, _ := FragmentCount(NewTCP(MustAddr("10.0.0.2"), MustAddr("203.0.113.10"), 1, 7547, FlagSYN, 1, 0, nil), 3)
	seed4, _ := frags[1].Marshal()
	f.Add(seed1)
	f.Add(seed2)
	f.Add(seed3)
	f.Add(seed4)
	f.Add([]byte{0x45})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			return
		}
		wire, err := p.Marshal()
		if err != nil {
			t.Fatalf("parsed packet failed to marshal: %v", err)
		}
		q, err := Parse(wire)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if q.IP != p.IP {
			t.Fatalf("IP header drifted: %+v vs %+v", q.IP, p.IP)
		}
	})
}
