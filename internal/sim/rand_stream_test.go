package sim

import "testing"

// TestForkStreamIndependence checks the invariant fleet seed derivation
// relies on: differently-labelled forks are uncorrelated yet individually
// stable across runs.
func TestForkStreamIndependence(t *testing.T) {
	const n = 4096

	// Stability: identically-seeded parents fork identical children.
	a1 := NewRand(11).Fork("a")
	a2 := NewRand(11).Fork("a")
	for i := 0; i < n; i++ {
		if a1.Uint64() != a2.Uint64() {
			t.Fatalf("Fork(%q) not stable across runs at draw %d", "a", i)
		}
	}

	// Independence: Fork("a") and Fork("b") disagree everywhere a correlated
	// pair would not, and their bitstreams are uncorrelated.
	fa := NewRand(11).Fork("a")
	fb := NewRand(11).Fork("b")
	equal, bitAgree := 0, 0
	for i := 0; i < n; i++ {
		x, y := fa.Uint64(), fb.Uint64()
		if x == y {
			equal++
		}
		for b := 0; b < 64; b++ {
			if (x>>b)&1 == (y>>b)&1 {
				bitAgree++
			}
		}
	}
	if equal > 0 {
		t.Errorf("Fork(a) and Fork(b) produced %d identical draws of %d", equal, n)
	}
	frac := float64(bitAgree) / float64(n*64)
	if frac < 0.49 || frac > 0.51 {
		t.Errorf("Fork(a)/Fork(b) bit agreement %.4f, want ~0.5 (uncorrelated)", frac)
	}
}

// TestStreamSeedOrderIndependence checks that StreamSeed is a pure function
// of (base, label): deriving sibling seeds in any order, any number of
// times, from any goroutine schedule cannot perturb them. (Fork, by
// contrast, consumes parent state, so fleet planning uses StreamSeed.)
func TestStreamSeedOrderIndependence(t *testing.T) {
	labels := []string{"x/seed=0", "x/seed=1", "y/seed=0", "y/seed=1"}
	forward := make(map[string]uint64)
	for _, l := range labels {
		forward[l] = StreamSeed(9, l)
	}
	for i := len(labels) - 1; i >= 0; i-- {
		if got := StreamSeed(9, labels[i]); got != forward[labels[i]] {
			t.Fatalf("StreamSeed(9, %q) changed with derivation order: %#x vs %#x",
				labels[i], got, forward[labels[i]])
		}
	}
	seen := map[uint64]string{}
	for l, s := range forward {
		if prev, dup := seen[s]; dup {
			t.Fatalf("labels %q and %q collide on seed %#x", l, prev, s)
		}
		seen[s] = l
	}
}

// TestStreamSeedGolden pins StreamSeed's outputs so fleet seed derivation
// stays stable across Go releases and refactors — EXPERIMENTS.md records
// multi-seed numbers that must be regenerable.
func TestStreamSeedGolden(t *testing.T) {
	cases := []struct {
		base  uint64
		label string
		want  uint64
	}{
		{1, "table1/seed=0/shard=0", 0x78ed7b0940cf492e},
		{1, "table1/seed=1/shard=0", 0xdacdf6b76f1d4b34},
		{2, "table1/seed=0/shard=0", 0x3b0bdeb0a2c02d79},
	}
	for _, c := range cases {
		if got := StreamSeed(c.base, c.label); got != c.want {
			t.Errorf("StreamSeed(%d, %q) = %#x, want %#x", c.base, c.label, got, c.want)
		}
	}
}

// TestStreamSeedDistinctStreams checks that Rands built from sibling
// StreamSeeds are themselves uncorrelated — deriving many shard streams from
// one root must not produce overlapping sequences.
func TestStreamSeedDistinctStreams(t *testing.T) {
	const streams, draws = 16, 512
	seen := make(map[uint64]int, streams*draws)
	for s := 0; s < streams; s++ {
		r := NewRand(StreamSeed(7, "shard"+string(rune('a'+s))))
		for i := 0; i < draws; i++ {
			v := r.Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("streams %d and %d both produced %#x", prev, s, v)
			}
			seen[v] = s
		}
	}
}
