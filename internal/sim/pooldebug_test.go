//go:build pooldebug

package sim

import "testing"

func mustPanicSim(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic under -tags=pooldebug", what)
		}
	}()
	fn()
}

// TestEventUseAfterRecyclePanics proves a recycled event's trap function
// fires: a stale queue reference that executes the event panics instead of
// silently running whoever reused the struct.
func TestEventUseAfterRecyclePanics(t *testing.T) {
	s := New()
	ev := s.alloc()
	s.recycle(ev)
	mustPanicSim(t, "firing a recycled event", func() { ev.fn() })
}

func TestEventDoubleRecyclePanics(t *testing.T) {
	s := New()
	ev := s.alloc()
	s.recycle(ev)
	mustPanicSim(t, "second recycle of the same event", func() { s.recycle(ev) })
}

// TestEventReuseUnpoisons proves normal scheduling over a recycled event
// stays panic-free.
func TestEventReuseUnpoisons(t *testing.T) {
	s := New()
	fired := 0
	s.After(1, func() { fired++ })
	s.Run()
	s.After(1, func() { fired++ }) // reuses the pooled event
	s.Run()
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if s.PoolReuses() == 0 {
		t.Fatalf("expected the second event to come from the pool")
	}
}
