// Package sim provides a deterministic discrete-event simulator: a virtual
// clock, an event queue, and a seeded random source. Every other package in
// this module that needs time or randomness takes them from here, which makes
// whole-network experiments reproducible bit-for-bit from a single seed and
// lets timeout measurements that take minutes of "wall time" in the paper
// (§5.3.3) complete in microseconds.
//
// The event queue is allocation-free in steady state: event structs are
// pooled per-Sim (the free list refills as events are popped), the Timer
// handle is a value type, and the binary heap is hand-rolled so scheduling
// never round-trips through interface boxing. Pools are per-Sim and the
// simulator is single-threaded, so pooling cannot introduce cross-run
// nondeterminism: execution order depends only on (when, seq), never on
// event identity.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Sim is a discrete-event simulator. The zero value is not usable; construct
// with New. Sim is not safe for concurrent use: the simulation model is
// single-threaded by design (events execute in timestamp order, ties broken
// by scheduling order), which is what makes runs deterministic.
type Sim struct {
	now    time.Duration
	queue  eventQueue
	nextID uint64
	// processed counts executed events, exposed for tests and benchmarks.
	processed uint64
	running   bool
	// free is the event pool. Events are returned here when popped (fired or
	// cancelled) and reused by the next At, so After+Stop refresh cycles stop
	// churning the heap.
	free       []*event
	poolReuses uint64
}

// New returns an empty simulator whose clock starts at zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Processed reports how many events have been executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending reports how many events are scheduled but not yet executed.
func (s *Sim) Pending() int { return len(s.queue) }

// PoolReuses reports how many scheduled events were served from the event
// pool instead of a fresh allocation. Exposed so tests can pin that stopped
// timers actually become collectible and reusable.
func (s *Sim) PoolReuses() uint64 { return s.poolReuses }

// PoolSize reports how many recycled events are waiting in the pool.
func (s *Sim) PoolSize() int { return len(s.free) }

func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		unpoisonEvent(ev)
		s.poolReuses++
		return ev
	}
	return &event{} //tspuvet:allow hotpath: pool-miss refill, amortized to zero across a run
}

// recycle returns a popped event to the pool. The generation bump invalidates
// every outstanding Timer handle to it, so a stale Stop or Reset on a reused
// event is a no-op rather than a cancellation of someone else's event.
func (s *Sim) recycle(ev *event) {
	checkEventLive(ev, "recycled")
	ev.fn = nil
	ev.cancelled = false
	ev.gen++
	poisonEvent(ev)
	s.free = append(s.free, ev)
}

// Reset returns the simulator to its initial state — clock at zero, empty
// queue, event counters cleared — while keeping the event pool, so a Sim
// reused across runs (fleet seeds, benchmark iterations) schedules without
// reallocating. Pending events are recycled with the usual generation bump,
// so Timer handles issued before the Reset turn into no-ops rather than
// cancelling whoever reuses their event structs. Pool accounting
// (PoolReuses) is cumulative across resets. Panics if called from within an
// executing event.
func (s *Sim) Reset() {
	if s.running {
		panic("sim: Reset called re-entrantly from within an event")
	}
	for len(s.queue) > 0 {
		s.recycle(s.queue.pop())
	}
	s.now = 0
	s.nextID = 0
	s.processed = 0
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality and mask bugs.
//
//tspuvet:hotpath
func (s *Sim) At(t time.Duration, fn func()) Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now)) //tspuvet:allow hotpath: panic formatting runs once, as the program dies
	}
	ev := s.alloc()
	ev.when = t
	ev.seq = s.nextID
	ev.fn = fn
	s.nextID++
	s.queue.push(ev)
	return Timer{s: s, ev: ev, gen: ev.gen, when: t}
}

// After schedules fn to run d from now. Negative d panics via At.
//
//tspuvet:hotpath
func (s *Sim) After(d time.Duration, fn func()) Timer {
	return s.At(s.now+d, fn)
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	s.RunUntil(math.MaxInt64)
}

// RunUntil executes events with timestamps <= deadline, advancing the clock.
// The clock is left at the deadline or at the time of the last event,
// whichever is later... precisely: if events remain beyond the deadline the
// clock is advanced to the deadline so subsequent After calls are relative to
// it.
func (s *Sim) RunUntil(deadline time.Duration) {
	if s.running {
		panic("sim: RunUntil called re-entrantly from within an event")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.when > deadline {
			break
		}
		s.queue.pop()
		fn, when, cancelled := next.fn, next.when, next.cancelled
		s.recycle(next)
		if cancelled {
			continue
		}
		s.now = when
		s.processed++
		fn()
	}
	if deadline != math.MaxInt64 && deadline > s.now {
		s.now = deadline
	}
}

// RunBatch executes up to max events with timestamps <= deadline and returns
// how many ran. Unlike RunUntil it never advances the clock past the last
// executed event, so a caller can interleave simulation with external work
// (ingesting packets, checking invariants) in bounded slices.
//
//tspuvet:hotpath
func (s *Sim) RunBatch(deadline time.Duration, max int) int {
	if s.running {
		panic("sim: RunBatch called re-entrantly from within an event")
	}
	s.running = true
	defer func() { s.running = false }()
	ran := 0
	for ran < max && len(s.queue) > 0 {
		next := s.queue[0]
		if next.when > deadline {
			break
		}
		s.queue.pop()
		fn, when, cancelled := next.fn, next.when, next.cancelled
		s.recycle(next)
		if cancelled {
			continue
		}
		s.now = when
		s.processed++
		fn()
		ran++
	}
	return ran
}

// Step executes the single next pending event, if any, and reports whether
// one was executed.
//
//tspuvet:hotpath
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		next := s.queue.pop()
		fn, when, cancelled := next.fn, next.when, next.cancelled
		s.recycle(next)
		if cancelled {
			continue
		}
		s.now = when
		s.processed++
		fn()
		return true
	}
	return false
}

// Timer is a handle to a scheduled event that can be cancelled or
// rescheduled. It is a value type: creating one does not allocate. The
// zero Timer is inert (Stop and Reset report false).
type Timer struct {
	s    *Sim
	ev   *event
	gen  uint32
	when time.Duration
}

// live reports whether the handle still refers to its original, pending
// event (not fired, not recycled into another timer).
func (t *Timer) live() bool {
	return t.ev != nil && t.ev.gen == t.gen && !t.ev.cancelled
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing (false if it already fired or was already stopped). The
// event's closure is released immediately — a stopped timer does not keep
// its captures alive while the dead event waits to be popped.
//
//tspuvet:hotpath
func (t *Timer) Stop() bool {
	if !t.live() {
		return false
	}
	t.ev.cancelled = true
	t.ev.fn = nil
	return true
}

// Reset reschedules a still-pending timer to fire d from now, without
// touching the pool or allocating. It reports whether the timer was
// rescheduled (false if it already fired or was stopped). A reset timer
// behaves like a freshly scheduled one for tie-breaking purposes.
//
//tspuvet:hotpath
func (t *Timer) Reset(d time.Duration) bool {
	if !t.live() {
		return false
	}
	nt := t.s.now + d
	if nt < t.s.now {
		panic(fmt.Sprintf("sim: resetting event to %v before now %v", nt, t.s.now)) //tspuvet:allow hotpath: panic formatting runs once, as the program dies
	}
	t.ev.when = nt
	t.ev.seq = t.s.nextID
	t.s.nextID++
	t.s.queue.fix(t.ev.index)
	t.when = nt
	return true
}

// When returns the virtual time the timer is (or was) scheduled for.
func (t *Timer) When() time.Duration { return t.when }

type event struct {
	when      time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	// gen is bumped every time the event is recycled; Timer handles carry
	// the generation they were issued against.
	gen   uint32
	index int
}

// eventQueue is a hand-rolled binary min-heap ordered by (when, seq). It
// replaces container/heap to keep Push/Pop free of interface boxing on the
// per-event path.
type eventQueue []*event

func (q eventQueue) less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) push(ev *event) {
	*q = append(*q, ev)
	i := len(*q) - 1
	ev.index = i
	q.up(i)
}

func (q *eventQueue) pop() *event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h.swap(0, n)
	h[n] = nil
	*q = h[:n]
	if n > 0 {
		q.down(0)
	}
	top.index = -1
	return top
}

func (q eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q eventQueue) down(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && q.less(r, l) {
			small = r
		}
		if !q.less(small, i) {
			break
		}
		q.swap(i, small)
		i = small
	}
}

// fix restores heap order after q[i].when or q[i].seq changed in place.
func (q eventQueue) fix(i int) {
	q.down(i)
	q.up(i)
}
