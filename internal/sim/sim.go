// Package sim provides a deterministic discrete-event simulator: a virtual
// clock, an event queue, and a seeded random source. Every other package in
// this module that needs time or randomness takes them from here, which makes
// whole-network experiments reproducible bit-for-bit from a single seed and
// lets timeout measurements that take minutes of "wall time" in the paper
// (§5.3.3) complete in microseconds.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Sim is a discrete-event simulator. The zero value is not usable; construct
// with New. Sim is not safe for concurrent use: the simulation model is
// single-threaded by design (events execute in timestamp order, ties broken
// by scheduling order), which is what makes runs deterministic.
type Sim struct {
	now    time.Duration
	queue  eventQueue
	nextID uint64
	// processed counts executed events, exposed for tests and benchmarks.
	processed uint64
	running   bool
}

// New returns an empty simulator whose clock starts at zero.
func New() *Sim {
	return &Sim{}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Processed reports how many events have been executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending reports how many events are scheduled but not yet executed.
func (s *Sim) Pending() int { return len(s.queue) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality and mask bugs.
func (s *Sim) At(t time.Duration, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil function")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	ev := &event{when: t, seq: s.nextID, fn: fn}
	s.nextID++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now. Negative d panics via At.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	s.RunUntil(math.MaxInt64)
}

// RunUntil executes events with timestamps <= deadline, advancing the clock.
// The clock is left at the deadline or at the time of the last event,
// whichever is later... precisely: if events remain beyond the deadline the
// clock is advanced to the deadline so subsequent After calls are relative to
// it.
func (s *Sim) RunUntil(deadline time.Duration) {
	if s.running {
		panic("sim: RunUntil called re-entrantly from within an event")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.when > deadline {
			break
		}
		heap.Pop(&s.queue)
		if next.cancelled {
			continue
		}
		s.now = next.when
		s.processed++
		next.fn()
	}
	if deadline != math.MaxInt64 && deadline > s.now {
		s.now = deadline
	}
}

// Step executes the single next pending event, if any, and reports whether
// one was executed.
func (s *Sim) Step() bool {
	for len(s.queue) > 0 {
		next := heap.Pop(&s.queue).(*event)
		if next.cancelled {
			continue
		}
		s.now = next.when
		s.processed++
		next.fn()
		return true
	}
	return false
}

// Timer is a handle to a scheduled event that can be cancelled.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// When returns the virtual time the timer is scheduled for.
func (t *Timer) When() time.Duration { return t.ev.when }

type event struct {
	when      time.Duration
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
	index     int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.fired = true
	*q = old[:n-1]
	return ev
}
