//go:build pooldebug

package sim

import "time"

// Event-pool poisoning (-tags=pooldebug), the sim half of the tspu package's
// pooled-record debugging: a recycled event gets a trap function and a
// sentinel timestamp, so a stale reference that fires or re-queues it panics
// instead of silently running — or cancelling — whoever reused the struct.
// The normal build compiles these hooks to no-ops (pooldebug_off.go).

// poisonedWhen marks a recycled event; no legitimate event is ever scheduled
// at a negative time (At panics on past times, and now never goes negative).
const poisonedWhen = time.Duration(-0xDD)

func poisonEvent(ev *event) {
	ev.when = poisonedWhen
	ev.fn = func() { panic("sim: pooled event fired after recycle (pooldebug)") }
}

func unpoisonEvent(ev *event) {
	ev.when = 0
	ev.fn = nil
}

// checkEventLive panics when an already-recycled event is recycled again or
// pushed back on the queue.
func checkEventLive(ev *event, op string) {
	if ev.when == poisonedWhen {
		panic("sim: pooled event " + op + " after recycle (pooldebug)")
	}
}
