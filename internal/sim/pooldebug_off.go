//go:build !pooldebug

package sim

// No-op counterparts of the pooldebug hooks (pooldebug.go).

func poisonEvent(*event)            {}
func unpoisonEvent(*event)          {}
func checkEventLive(*event, string) {}
