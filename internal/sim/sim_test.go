package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(30*time.Millisecond, func() { order = append(order, 3) })
	s.At(10*time.Millisecond, func() { order = append(order, 1) })
	s.At(20*time.Millisecond, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events ran out of order: %v", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("clock = %v, want 30ms", s.Now())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-broken order[%d] = %d, want %d", i, got, i)
		}
	}
}

func TestAfterIsRelative(t *testing.T) {
	s := New()
	var at time.Duration
	s.At(time.Second, func() {
		s.After(2*time.Second, func() { at = s.Now() })
	})
	s.Run()
	if at != 3*time.Second {
		t.Fatalf("nested After fired at %v, want 3s", at)
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New()
	fired := false
	s.At(10*time.Second, func() { fired = true })
	s.RunUntil(5 * time.Second)
	if fired {
		t.Fatal("event beyond deadline fired")
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", s.Now())
	}
	s.RunUntil(15 * time.Second)
	if !fired {
		t.Fatal("event not fired after extending deadline")
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	fired := false
	tm := s.At(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if s.Processed() != 0 {
		t.Fatalf("processed = %d, want 0", s.Processed())
	}
}

func TestStopAfterFire(t *testing.T) {
	s := New()
	tm := s.At(time.Second, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop after fire returned true")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestStep(t *testing.T) {
	s := New()
	n := 0
	s.At(time.Second, func() { n++ })
	s.At(2*time.Second, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatalf("first Step: n=%d", n)
	}
	if !s.Step() || n != 2 {
		t.Fatalf("second Step: n=%d", n)
	}
	if s.Step() {
		t.Fatal("Step on empty queue returned true")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewRand(43)
	same := true
	for i := 0; i < 10; i++ {
		if NewRand(42).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRandForkIndependence(t *testing.T) {
	r := NewRand(1)
	f1 := r.Fork("alpha")
	r2 := NewRand(1)
	f2 := r2.Fork("alpha")
	for i := 0; i < 100; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatal("fork of same seed/name diverged")
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRand(7)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Bounds(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := NewRand(13)
	xs := make([]int, 100)
	for i := range xs {
		xs[i] = i
	}
	got := Sample(r, xs, 10)
	if len(got) != 10 {
		t.Fatalf("Sample returned %d elements", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate in sample: %v", got)
		}
		seen[v] = true
	}
	// Oversampling returns everything.
	if len(Sample(r, xs, 1000)) != 100 {
		t.Fatal("oversample did not return all elements")
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(17)
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.25) {
			n++
		}
	}
	frac := float64(n) / trials
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) rate = %v", frac)
	}
}

func TestIntRange(t *testing.T) {
	r := NewRand(19)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(5, 8)
		if v < 5 || v > 8 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
	if r.IntRange(3, 3) != 3 {
		t.Fatal("degenerate range")
	}
}

func TestPropertyEventOrdering(t *testing.T) {
	// Whatever order events are scheduled in, they must execute in
	// timestamp order with scheduling order breaking ties.
	if err := quick.Check(func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		if len(delays) > 200 {
			delays = delays[:200]
		}
		s := New()
		type fired struct {
			at  time.Duration
			seq int
		}
		var order []fired
		for i, d := range delays {
			i, at := i, time.Duration(d)*time.Millisecond
			s.At(at, func() { order = append(order, fired{at, i}) })
		}
		s.Run()
		if len(order) != len(delays) {
			return false
		}
		for i := 1; i < len(order); i++ {
			if order[i].at < order[i-1].at {
				return false
			}
			if order[i].at == order[i-1].at && order[i].seq < order[i-1].seq {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
