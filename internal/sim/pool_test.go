package sim

import (
	"testing"
	"time"
)

// noop is package-level so scheduling it never allocates a closure; the
// allocation budgets below measure the simulator, not the test.
func noop() {}

func TestAfterStopCycleDoesNotAllocate(t *testing.T) {
	s := New()
	// Warm up: grow the pool, the free list, and the heap slice once.
	for i := 0; i < 64; i++ {
		tm := s.After(time.Second, noop)
		tm.Stop()
		s.Step()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tm := s.After(time.Second, noop)
		tm.Stop()
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("After+Stop+Step cycle allocates %v/op, want 0", allocs)
	}
}

func TestRunBatchSteadyStateDoesNotAllocate(t *testing.T) {
	s := New()
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i), noop)
	}
	s.Run()
	allocs := testing.AllocsPerRun(500, func() {
		for i := 0; i < 8; i++ {
			s.After(time.Duration(i)*time.Millisecond, noop)
		}
		if got := s.RunBatch(s.Now()+time.Second, 8); got != 8 {
			t.Fatalf("RunBatch ran %d, want 8", got)
		}
	})
	if allocs != 0 {
		t.Fatalf("RunBatch steady state allocates %v/op, want 0", allocs)
	}
}

// TestStoppedTimerIsCollectible pins the Timer.Stop retention fix two ways:
// the closure is released at Stop time (fn nil immediately, not at pop), and
// the event itself returns to the pool and is reused by later scheduling.
func TestStoppedTimerIsCollectible(t *testing.T) {
	s := New()
	tm := s.After(time.Hour, noop)
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.ev.fn != nil {
		t.Fatal("Stop left the event closure alive")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	// Drain the cancelled event; it must be recycled, and the next After must
	// come from the pool.
	s.Run()
	if s.PoolSize() != 1 {
		t.Fatalf("PoolSize = %d after draining stopped timer, want 1", s.PoolSize())
	}
	before := s.PoolReuses()
	tm2 := s.After(time.Second, noop)
	if s.PoolReuses() != before+1 {
		t.Fatalf("PoolReuses = %d, want %d: stopped timer's event not reused", s.PoolReuses(), before+1)
	}
	if tm2.ev != tm.ev {
		t.Fatal("pool returned a different event than the one recycled")
	}
	// The stale handle must not be able to cancel the new timer (ABA).
	if tm.Stop() {
		t.Fatal("stale handle stopped a reused event")
	}
	fired := false
	tm2.ev.fn = func() { fired = true }
	s.Run()
	if !fired {
		t.Fatal("reused event did not fire")
	}
}

func TestStopPreventsFiring(t *testing.T) {
	s := New()
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	tm.Stop()
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if s.Processed() != 0 {
		t.Fatalf("Processed = %d, want 0", s.Processed())
	}
}

func TestResetReschedules(t *testing.T) {
	s := New()
	var order []string
	tm := s.After(10*time.Second, func() { order = append(order, "reset") })
	s.After(5*time.Second, func() { order = append(order, "fixed") })
	if !tm.Reset(2 * time.Second) {
		t.Fatal("Reset on pending timer returned false")
	}
	if tm.When() != 2*time.Second {
		t.Fatalf("When = %v after Reset, want 2s", tm.When())
	}
	s.Run()
	if len(order) != 2 || order[0] != "reset" || order[1] != "fixed" {
		t.Fatalf("order = %v, want [reset fixed]", order)
	}
	if tm.Reset(time.Second) {
		t.Fatal("Reset on fired timer returned true")
	}
}

func TestResetDoesNotAllocate(t *testing.T) {
	s := New()
	tm := s.After(time.Hour, noop)
	allocs := testing.AllocsPerRun(1000, func() {
		if !tm.Reset(time.Hour) {
			t.Fatal("Reset failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Reset allocates %v/op, want 0", allocs)
	}
}

func TestRunBatchBounds(t *testing.T) {
	s := New()
	for i := 1; i <= 10; i++ {
		s.After(time.Duration(i)*time.Second, noop)
	}
	if got := s.RunBatch(time.Hour, 3); got != 3 {
		t.Fatalf("RunBatch ran %d, want 3", got)
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock = %v after batch, want 3s (never past last executed event)", s.Now())
	}
	// Deadline bound: only events <= 5s remain eligible.
	if got := s.RunBatch(5*time.Second, 100); got != 2 {
		t.Fatalf("RunBatch ran %d, want 2", got)
	}
	if s.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", s.Pending())
	}
}

func TestPoolDeterminism(t *testing.T) {
	// Two runs with identical schedules must execute identically even though
	// one run's pool is pre-warmed: execution order depends on (when, seq),
	// never on event identity.
	run := func(s *Sim) []int {
		var got []int
		for i := 0; i < 50; i++ {
			i := i
			s.After(time.Duration(i%7)*time.Millisecond, func() { got = append(got, i) })
		}
		s.Run()
		return got
	}
	fresh := New()
	warmed := New()
	for i := 0; i < 32; i++ {
		warmed.After(0, noop)
	}
	warmed.Run()
	a, b := run(fresh), run(warmed)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("execution order diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestResetReusesEventPool pins the Sim reuse contract: Reset drains pending
// events into the pool and restores the zero-time state, so a reused Sim
// serves its next run's scheduling from recycled events instead of the
// allocator.
func TestResetReusesEventPool(t *testing.T) {
	s := New()
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Millisecond, noop)
	}
	s.RunBatch(30*time.Millisecond, 16) // fire some, leave some pending
	if s.Pending() == 0 {
		t.Fatal("test needs pending events at Reset time")
	}
	s.Reset()
	if s.Now() != 0 || s.Pending() != 0 || s.Processed() != 0 {
		t.Fatalf("Reset left now=%v pending=%d processed=%d", s.Now(), s.Pending(), s.Processed())
	}
	if s.PoolSize() != 64 {
		t.Fatalf("pool holds %d events after Reset, want all 64", s.PoolSize())
	}
	base := s.PoolReuses()
	for i := 0; i < 64; i++ {
		s.After(time.Duration(i)*time.Millisecond, noop)
	}
	if got := s.PoolReuses() - base; got != 64 {
		t.Fatalf("post-Reset scheduling reused %d events, want 64", got)
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.Reset()
		for i := 0; i < 64; i++ {
			s.After(time.Duration(i)*time.Millisecond, noop)
		}
		s.Run()
	})
	if allocs != 0 {
		t.Fatalf("Reset+reschedule+Run cycle allocates %v/op, want 0", allocs)
	}
}

// TestResetInvalidatesTimers pins that a Timer handle from before a Reset
// cannot cancel an event scheduled after it, even when the pool hands the
// new event the same struct.
func TestResetInvalidatesTimers(t *testing.T) {
	s := New()
	old := s.After(time.Second, noop)
	s.Reset()
	fired := false
	s.After(time.Second, func() { fired = true })
	if old.Stop() {
		t.Fatal("stale pre-Reset timer claimed to stop something")
	}
	s.Run()
	if !fired {
		t.Fatal("stale timer Stop cancelled a post-Reset event")
	}
}
