package sim

// Rand is a small, self-contained deterministic random source
// (splitmix64-seeded xoshiro256**). We implement it directly rather than
// relying on math/rand so that experiment outputs are stable across Go
// releases: EXPERIMENTS.md records numbers that must be regenerable.
type Rand struct {
	s [4]uint64
}

// NewRand returns a Rand seeded from seed via splitmix64, as recommended by
// the xoshiro authors to avoid correlated low-entropy states.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Fork derives an independent stream labelled by name. Experiments fork the
// lab RNG per subsystem so adding randomness in one place does not perturb
// another ("random stability").
func (r *Rand) Fork(name string) *Rand {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return NewRand(r.Uint64() ^ h)
}

// StreamSeed derives a labelled child seed as a pure function of
// (base, label). Unlike Fork it consumes no generator state, so derivation
// order, interleaving, and concurrency cannot perturb sibling streams: the
// fleet orchestrator relies on this to hand every (experiment, seed, shard)
// job an identical seed regardless of worker count or completion order.
func StreamSeed(base uint64, label string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	// Two splitmix64 finalizer rounds decorrelate (base, label) pairs that
	// differ in only a few bits, mirroring NewRand's seeding discipline.
	z := base ^ h
	for i := 0; i < 2; i++ {
		z += 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform int in [lo, hi] inclusive. Panics if hi < lo.
func (r *Rand) IntRange(lo, hi int) int {
	if hi < lo {
		panic("sim: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly random element of xs. Panics on empty input.
func Pick[T any](r *Rand, xs []T) T {
	if len(xs) == 0 {
		panic("sim: Pick from empty slice")
	}
	return xs[r.Intn(len(xs))]
}

// Sample returns k distinct elements sampled without replacement. If
// k >= len(xs) a shuffled copy of xs is returned.
func Sample[T any](r *Rand, xs []T, k int) []T {
	cp := make([]T, len(xs))
	copy(cp, xs)
	r.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	if k >= len(cp) {
		return cp
	}
	return cp[:k]
}
