package fleet

import (
	"fmt"
	"sync"
	"time"
)

// Snapshot is a point-in-time view of fleet progress. Everything here is
// diagnostic: wall times and speedups vary run to run, so snapshots are
// rendered separately from the deterministic aggregate report.
type Snapshot struct {
	Queued  int // jobs planned for this run
	Running int // jobs currently executing
	Done    int // jobs finished, ok or failed
	Failed  int // jobs that ended in error after retries
	Retried int // retry attempts consumed across all jobs

	// JobWall is summed per-job wall time — the sequential-equivalent cost.
	JobWall time.Duration
	// Elapsed is real wall time since the run began.
	Elapsed time.Duration
}

// Speedup estimates parallel speedup: summed job time over elapsed time. A
// sequential run reports ~1.0. When workers oversubscribe physical cores,
// per-job wall time includes runnable-but-descheduled time, so this is an
// upper bound; it is accurate when workers ≤ cores.
func (s Snapshot) Speedup() float64 {
	if s.Elapsed <= 0 {
		return 1
	}
	return float64(s.JobWall) / float64(s.Elapsed)
}

// String renders a one-line progress/summary string.
func (s Snapshot) String() string {
	return fmt.Sprintf("fleet: %d/%d done, %d running, %d failed, %d retried | job-time %.2fs, elapsed %.2fs, speedup %.2fx",
		s.Done, s.Queued, s.Running, s.Failed, s.Retried,
		s.JobWall.Seconds(), s.Elapsed.Seconds(), s.Speedup())
}

// metrics is the runner's internal mutex-guarded counter set.
type metrics struct {
	mu       sync.Mutex
	start    time.Time
	snap     Snapshot
	onUpdate func(Snapshot)
}

func (m *metrics) begin(queued int) {
	m.mu.Lock()
	m.start = time.Now() //tspuvet:allow walltime: progress metrics are stderr diagnostics, never aggregated
	m.snap = Snapshot{Queued: queued}
	m.mu.Unlock()
}

func (m *metrics) jobStarted() {
	m.update(func(s *Snapshot) { s.Running++ })
}

func (m *metrics) jobRetried() {
	m.update(func(s *Snapshot) { s.Retried++ })
}

func (m *metrics) jobDone(wall time.Duration, failed bool) {
	m.update(func(s *Snapshot) {
		s.Running--
		s.Done++
		s.JobWall += wall
		if failed {
			s.Failed++
		}
	})
}

func (m *metrics) update(f func(*Snapshot)) {
	m.mu.Lock()
	f(&m.snap)
	snap := m.snap
	snap.Elapsed = time.Since(m.start) //tspuvet:allow walltime: progress metrics are stderr diagnostics, never aggregated
	cb := m.onUpdate
	m.mu.Unlock()
	if cb != nil {
		cb(snap)
	}
}

func (m *metrics) snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	snap := m.snap
	snap.Elapsed = time.Since(m.start) //tspuvet:allow walltime: progress metrics are stderr diagnostics, never aggregated
	return snap
}
