package fleet

import (
	"fmt"
	"math"
	"strings"

	"tspusim/internal/report"
)

// Report is the completed output of a fleet run: every job's result in plan
// order plus the closing metrics snapshot.
type Report struct {
	Results []JobResult
	Metrics Snapshot
}

// Failed returns the results of jobs that ended in error, in plan order.
func (r *Report) Failed() []JobResult {
	var out []JobResult
	for _, res := range r.Results {
		if res.Failed() {
			out = append(out, res)
		}
	}
	return out
}

// keyAgg accumulates one stat key's samples with Welford's algorithm, which
// is numerically stable and — because samples arrive in plan order — yields
// bit-identical moments regardless of worker count.
type keyAgg struct {
	key      string
	n        int
	mean, m2 float64
	min, max float64
}

func (a *keyAgg) add(v float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
}

// stddev is the sample standard deviation (n-1), 0 for fewer than 2 samples.
func (a *keyAgg) stddev() float64 {
	if a.n < 2 {
		return 0
	}
	return math.Sqrt(a.m2 / float64(a.n-1))
}

// expGroup is one experiment's slice of the report.
type expGroup struct {
	exp     string
	results []JobResult
}

// groups splits results by experiment, preserving plan order.
func (r *Report) groups() []expGroup {
	byExp := map[string]int{}
	var out []expGroup
	for _, res := range r.Results {
		i, ok := byExp[res.Job.Exp]
		if !ok {
			i = len(out)
			byExp[res.Job.Exp] = i
			out = append(out, expGroup{exp: res.Job.Exp})
		}
		out[i].results = append(out[i].results, res)
	}
	return out
}

// RenderAggregate renders the deterministic fleet report: per-experiment
// pass/fail, per-key mean/stddev/min/max tables across seeds and shards, and
// a closing summary line. The output is a pure function of the job results
// in plan order — wall times, attempt counts, and stacks are excluded — so a
// sequential run and a 16-worker run render byte-identically.
func (r *Report) RenderAggregate() string {
	var b strings.Builder
	groups := r.groups()
	seeds, shards := 1, 1
	for _, res := range r.Results {
		if res.Job.SeedIndex+1 > seeds {
			seeds = res.Job.SeedIndex + 1
		}
		if res.Job.Shard+1 > shards {
			shards = res.Job.Shard + 1
		}
	}
	fmt.Fprintf(&b, "== fleet aggregate: %d jobs (%d experiments x %d seeds x %d shards) ==\n",
		len(r.Results), len(groups), seeds, shards)

	okN, failedN := 0, 0
	var failedLabels []string
	for _, g := range groups {
		var ok []JobResult
		var failed []JobResult
		for _, res := range g.results {
			if res.Failed() {
				failed = append(failed, res)
			} else {
				ok = append(ok, res)
			}
		}
		okN += len(ok)
		failedN += len(failed)

		fmt.Fprintf(&b, "\n### %s — %d/%d jobs ok\n", g.exp, len(ok), len(g.results))
		for _, res := range failed {
			failedLabels = append(failedLabels, res.Job.Label())
			fmt.Fprintf(&b, "FAILED %s: %v\n", res.Job.Label(), res.Err)
		}
		if len(ok) == 0 {
			continue
		}
		identical := true
		for _, res := range ok[1:] {
			if res.Output != ok[0].Output {
				identical = false
				break
			}
		}
		if identical {
			// A single replica has no spread to summarize, and seed-invariant
			// artifacts (reference tables, exactly-recovered timeouts) have
			// none either: include the artifact itself once.
			if len(ok) > 1 {
				fmt.Fprintf(&b, "all %d replicas rendered identically:\n", len(ok))
			}
			b.WriteString(ok[0].Output)
			if !strings.HasSuffix(ok[0].Output, "\n") {
				b.WriteByte('\n')
			}
			continue
		}
		if t := aggregateStats(g.exp, ok); t.NumRows() > 0 {
			b.WriteString(t.String())
		} else {
			fmt.Fprintf(&b, "outputs differ across %d replicas but expose no numeric stats\n", len(ok))
		}
	}

	fmt.Fprintf(&b, "\n%d ok, %d failed", okN, failedN)
	if failedN > 0 {
		fmt.Fprintf(&b, ": %s", strings.Join(failedLabels, ", "))
	}
	b.WriteByte('\n')
	return b.String()
}

// aggregateStats merges the ordered stats of one experiment's successful
// jobs into a summary table. Keys keep first-seen order (all replicas emit
// the same sequence when the artifact's structure is seed-stable); keys that
// appear in only some replicas show n < replicas.
func aggregateStats(exp string, ok []JobResult) *report.Table {
	index := map[string]int{}
	var aggs []*keyAgg
	for _, res := range ok {
		for _, st := range res.Stats {
			i, seen := index[st.Key]
			if !seen {
				i = len(aggs)
				index[st.Key] = i
				aggs = append(aggs, &keyAgg{key: st.Key})
			}
			aggs[i].add(st.Value)
		}
	}
	t := report.NewTable(fmt.Sprintf("%s across %d replicas", exp, len(ok)),
		"stat", "n", "mean", "stddev", "min", "max")
	for _, a := range aggs {
		t.AddRow(a.key, a.n,
			fmt.Sprintf("%.6g", a.mean), fmt.Sprintf("%.6g", a.stddev()),
			fmt.Sprintf("%.6g", a.min), fmt.Sprintf("%.6g", a.max))
	}
	return t
}
