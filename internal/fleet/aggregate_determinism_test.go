package fleet

import (
	"sort"
	"testing"
)

// buildReport assembles a Report from results handed over in any order: the
// runner's contract is that Results are in plan order, so the builder sorts
// by Job.Index exactly like the worker pool's indexed writes do.
func buildReport(results []JobResult) *Report {
	sorted := make([]JobResult, len(results))
	copy(sorted, results)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Job.Index < sorted[j].Job.Index })
	return &Report{Results: sorted}
}

// RenderAggregate groups by experiment and aggregates stat keys through
// internal maps; this golden check pins down that two independently-built
// reports — one assembled forward, one in reverse completion order — render
// byte-for-byte identically, which is the whole fleet determinism claim in
// miniature (workers complete in arbitrary order).
func TestRenderAggregateInsertionOrderInvariant(t *testing.T) {
	mk := func(idx int, exp string, seed int, out string, stats []Stat) JobResult {
		return JobResult{
			Job:    Job{Index: idx, Exp: exp, SeedIndex: seed, Shard: 0, Shards: 1},
			Output: out,
			Stats:  stats,
		}
	}
	results := []JobResult{
		mk(0, "table1", 0, "t1 seed0", []Stat{{"ER/SNI fail%", 1.5}, {"ER/QUIC fail%", 0.5}}),
		mk(1, "table1", 1, "t1 seed1", []Stat{{"ER/SNI fail%", 2.5}, {"ER/QUIC fail%", 0.75}}),
		mk(2, "fig12", 0, "hops seed0", []Stat{{"within2", 69.0}}),
		mk(3, "fig12", 1, "hops seed1", []Stat{{"within2", 71.0}}),
	}
	fwd := buildReport(results)
	reversed := make([]JobResult, 0, len(results))
	for i := len(results) - 1; i >= 0; i-- {
		reversed = append(reversed, results[i])
	}
	rev := buildReport(reversed)

	a, b := fwd.RenderAggregate(), rev.RenderAggregate()
	if a != b {
		t.Fatalf("aggregate depends on result insertion order:\n%s\nvs\n%s", a, b)
	}
}

// Stat keys that only some replicas emit must keep first-seen order and an
// honest n, independent of how the report was assembled.
func TestRenderAggregatePartialKeysStable(t *testing.T) {
	mk := func(idx int, stats []Stat) JobResult {
		return JobResult{Job: Job{Index: idx, Exp: "e", SeedIndex: idx, Shards: 1}, Output: "o" + string(rune('0'+idx)), Stats: stats}
	}
	results := []JobResult{
		mk(0, []Stat{{"always", 1}, {"sometimes", 10}}),
		mk(1, []Stat{{"always", 2}}),
		mk(2, []Stat{{"always", 3}, {"sometimes", 30}}),
	}
	fwd := buildReport(results)
	rev := buildReport([]JobResult{results[2], results[0], results[1]})
	if fwd.RenderAggregate() != rev.RenderAggregate() {
		t.Fatalf("partial-key aggregate depends on assembly order:\n%s\nvs\n%s",
			fwd.RenderAggregate(), rev.RenderAggregate())
	}
}
